// Command bench6 benchmarks the epoch day orchestrator against the
// fully serial day loop and emits BENCH_6.json: wall-clock for a
// multi-day APD + curated-sweep run at each overlap depth, plus the
// standing sweep and APD numbers. The environment is recorded (CPUs,
// GOMAXPROCS) because the orchestrator's speedup is pipeline
// parallelism across days — on a single-core host the overlap is
// structural only and the depths tie; the gain materializes wherever
// seal/sweep work runs beside the next day's probe chain.
//
// Usage:
//
//	bench6 [-scale 1.0] [-days 14] [-workers 8] [-out BENCH_6.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"expanse/internal/core"
	"expanse/internal/prof"
)

type run struct {
	Name        string  `json:"name"`
	Overlap     int     `json:"overlap"`
	Seconds     float64 `json:"seconds"`
	Epochs      int     `json:"epochs"`
	Day0Cands   int     `json:"day0_candidates"`
	FinalCands  int     `json:"final_candidates"`
	CleanFinal  int     `json:"final_clean_targets"`
	APDProbes   int     `json:"apd_probes_sent"`
	SpeedupOver float64 `json:"speedup_vs_serial"`
}

type report struct {
	Bench        string        `json:"bench"`
	Scale        float64       `json:"scale"`
	Days         int           `json:"days"`
	Workers      int           `json:"workers"`
	Host         prof.HostMeta `json:"host"`
	HitlistSize  int           `json:"hitlist_size"`
	CollectSec   float64       `json:"collect_seconds"`
	SweepSec     float64       `json:"full_sweep_seconds"`
	SweepTargets int           `json:"full_sweep_targets"`
	Runs         []run         `json:"runs"`
	Note         string        `json:"note"`
}

func main() {
	scale := flag.Float64("scale", 1.0, "simulation scale")
	days := flag.Int("days", 14, "APD days per run")
	workers := flag.Int("workers", 0, "scan-engine worker shards per protocol (0 = default)")
	out := flag.String("out", "BENCH_6.json", "output path")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Sim.Scale = *scale
	cfg.Workers = *workers
	cfg.EpochSweep = true // seal stage sweeps each day's curated targets

	rep := report{
		Bench: "epoch day orchestrator vs serial day loop",
		Scale: *scale,
		Days:  *days,
		Host:  prof.Host(),
	}

	var serial float64
	for _, depth := range []int{1, 2, 3} {
		c := cfg
		c.Overlap = depth
		p := core.New(c)
		t0 := time.Now()
		p.Collect()
		collect := time.Since(t0).Seconds()
		if depth == 1 {
			rep.Workers = p.Cfg.Workers
			rep.HitlistSize = p.Hitlist().Len()
			rep.CollectSec = collect
			// Standing sweep benchmark: one five-protocol pass over the
			// full hitlist through the batched columnar path.
			t0 = time.Now()
			s := p.SweepSet(p.Hitlist(), p.World.Horizon())
			rep.SweepSec = time.Since(t0).Seconds()
			rep.SweepTargets = len(s.Addrs)
		}
		t0 = time.Now()
		eps := p.RunDays(p.World.Horizon(), *days)
		dt := time.Since(t0).Seconds()
		name := fmt.Sprintf("orchestrated depth %d", depth)
		if depth == 1 {
			name = "serial day loop"
			serial = dt
		}
		last := eps[len(eps)-1]
		r := run{
			Name:        name,
			Overlap:     depth,
			Seconds:     dt,
			Epochs:      len(eps),
			Day0Cands:   len(eps[0].Candidates),
			FinalCands:  len(last.Candidates),
			CleanFinal:  len(last.CleanTargets()),
			APDProbes:   p.APDProbesSent(),
			SpeedupOver: serial / dt,
		}
		rep.Runs = append(rep.Runs, r)
		fmt.Printf("%-21s %6.2fs  speedup %.2fx  epochs %d  clean %d\n",
			name, dt, r.SpeedupOver, r.Epochs, r.CleanFinal)
	}
	rep.Note = "Overlap runs day d's window merge, filter compile and curated sweep " +
		"concurrently with day d+1's probe chain; published epochs are byte-identical " +
		"at every depth. Speedup scales with free cores — on a 1-CPU host the depths " +
		"tie and the pipelining is structural only."

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Println("wrote", *out)
}
