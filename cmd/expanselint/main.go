// Command expanselint runs the repo's static-analysis suite — the
// four invariant analyzers of internal/lint plus the //lint:allow
// bookkeeping — over module packages and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/expanselint ./...          # whole module (CI gate)
//	go run ./cmd/expanselint ./internal/apd # one package
//
// Patterns are module-relative directories; a trailing /... recurses.
// Non-test files are analyzed (the invariants police the shipped
// pipeline; tests exercise it). Suppress a finding with an explicit
//
//	//lint:allow <analyzer> <reason>
//
// on (or directly above) the flagged line; stale or reason-less allows
// are themselves findings. See DESIGN.md, "Correctness tooling".
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"expanse/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "expanselint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	modPath, modRoot, err := lint.FindModule(cwd)
	if err != nil {
		return err
	}
	paths, err := expand(patterns, cwd, modPath, modRoot)
	if err != nil {
		return err
	}

	loader := lint.NewLoader(modPath, modRoot)
	analyzers := lint.DefaultAnalyzers()
	total := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return err
		}
		for _, d := range lint.RunSuite(pkg, analyzers) {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			total++
		}
	}
	if total > 0 {
		return fmt.Errorf("%d finding(s) across %d package(s)", total, len(paths))
	}
	return nil
}

// expand resolves directory patterns to module import paths, sorted.
func expand(patterns []string, cwd, modPath, modRoot string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) error {
		names, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range names {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(modRoot, dir)
		if err != nil {
			return err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata holds analyzer fixtures (violations on
			// purpose); hidden and underscore dirs follow go tool
			// convention.
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
