package main

import "testing"

// TestTreeIsLintClean is the local mirror of the CI gate: the whole
// module must run the suite finding-free (modulo in-tree //lint:allow
// exceptions, which must each still be live and reasoned).
func TestTreeIsLintClean(t *testing.T) {
	if err := run([]string{"../../..."}); err != nil {
		t.Fatalf("expanselint over the tree: %v (findings above)", err)
	}
}

// TestExpandPatterns pins pattern expansion: recursion, testdata
// exclusion, dedup.
func TestExpandPatterns(t *testing.T) {
	paths, err := expand([]string{"../../internal/lint/..."}, ".", "expanse", "../..")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"expanse/internal/lint":          true,
		"expanse/internal/lint/linttest": true,
	}
	if len(paths) != len(want) {
		t.Fatalf("expand: got %v, want the %d keys of %v (testdata fixtures must be excluded)", paths, len(want), want)
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("unexpected package %q", p)
		}
	}
}
