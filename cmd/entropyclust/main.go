// Command entropyclust runs the paper's entropy-clustering method (§4)
// over the simulated hitlist: per-network nybble-entropy fingerprints,
// elbow-method k selection, and k-means clusters with their median
// entropy rows.
//
// Usage:
//
//	entropyclust [-scale 0.3] [-group prefix32|bgp|as] [-a 9] [-b 32] [-kmax 20] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"expanse/internal/cluster"
	"expanse/internal/core"
	"expanse/internal/entropy"
)

func main() {
	scale := flag.Float64("scale", 0.3, "simulation scale")
	group := flag.String("group", "prefix32", "grouping: prefix32, bgp, or as")
	a := flag.Int("a", 9, "first nybble of the fingerprint (1-based)")
	b := flag.Int("b", 32, "last nybble of the fingerprint")
	kmax := flag.Int("kmax", 20, "maximum k for the elbow method")
	min := flag.Int("min", 0, "minimum addresses per group (0 = scale-adjusted default)")
	workers := flag.Int("workers", 0, "scan-engine worker shards per protocol (0 = default)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Sim.Scale = *scale
	cfg.Workers = *workers
	p := core.New(cfg)
	p.Collect()
	addrs := p.Hitlist().Sorted()
	fmt.Printf("hitlist: %d addresses\n", len(addrs))

	threshold := *min
	if threshold <= 0 {
		threshold = int(100 * *scale)
		if threshold < 20 {
			threshold = 20
		}
	}
	var groups []entropy.Group
	switch *group {
	case "prefix32":
		groups = entropy.ByPrefixLen(addrs, 32, threshold, *a, *b)
	case "bgp":
		groups = entropy.ByBGPPrefix(addrs, p.World.Table, threshold, *a, *b)
	case "as":
		groups = entropy.ByAS(addrs, p.World.Table, threshold, *a, *b)
	default:
		fmt.Fprintf(os.Stderr, "unknown grouping %q\n", *group)
		os.Exit(2)
	}
	fmt.Printf("groups with >= %d addresses: %d\n", threshold, len(groups))
	if len(groups) == 0 {
		return
	}

	vectors := entropy.Vectors(groups)
	k, curve := cluster.ChooseK(vectors, *kmax, 0x16c18)
	fmt.Print("SSE(k):")
	for i, s := range curve {
		fmt.Printf(" k%d=%.2f", i+1, s)
	}
	fmt.Printf("\nelbow k = %d\n\n", k)

	res := cluster.KMeans(vectors, k, 0x16c18)
	for _, s := range cluster.Summarize(vectors, res) {
		fmt.Printf("cluster %d: %5.1f%% (%d networks)\n  median entropy F%d-%d:", s.ID, s.Share*100, s.Size, *a, *b)
		for _, h := range s.MedianEntropy {
			fmt.Printf(" %.2f", h)
		}
		fmt.Println()
	}
}
