// Command entropyclust runs the paper's entropy-clustering method (§4)
// over the simulated hitlist: per-network nybble-entropy fingerprints,
// elbow-method k selection, and k-means clusters with their median
// entropy rows.
//
// Usage:
//
//	entropyclust [-scale 0.3] [-group prefix32|bgp|as] [-a 9] [-b 32] [-kmax 20] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"expanse/internal/cluster"
	"expanse/internal/core"
	"expanse/internal/entropy"
)

func main() {
	scale := flag.Float64("scale", 0.3, "simulation scale")
	group := flag.String("group", "prefix32", "grouping: prefix32, bgp, or as")
	a := flag.Int("a", 9, "first nybble of the fingerprint (1-based)")
	b := flag.Int("b", 32, "last nybble of the fingerprint")
	kmax := flag.Int("kmax", 20, "maximum k for the elbow method")
	min := flag.Int("min", 0, "minimum addresses per group (0 = scale-adjusted default)")
	workers := flag.Int("workers", 0, "scan-engine worker shards per protocol (0 = default)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Sim.Scale = *scale
	cfg.Workers = *workers
	p := core.New(cfg)
	p.Collect()
	// The grouping stage consumes the store's cached sorted view directly;
	// nothing is flattened or map-bucketed per grouping.
	sorted := p.Hitlist().SortedSeq()
	fmt.Printf("hitlist: %d addresses\n", sorted.Len())

	threshold := *min
	if threshold <= 0 {
		threshold = int(100 * *scale)
		if threshold < 20 {
			threshold = 20
		}
	}
	var groups []entropy.Group
	switch *group {
	case "prefix32":
		groups = entropy.ByPrefixLen(sorted, 32, threshold, *a, *b, p.Cfg.Workers)
	case "bgp":
		groups = entropy.ByBGPPrefix(sorted, p.World.Table, threshold, *a, *b, p.Cfg.Workers)
	case "as":
		groups = entropy.ByAS(sorted, p.World.Table, threshold, *a, *b, p.Cfg.Workers)
	default:
		fmt.Fprintf(os.Stderr, "unknown grouping %q\n", *group)
		os.Exit(2)
	}
	fmt.Printf("groups with >= %d addresses: %d\n", threshold, len(groups))
	if len(groups) == 0 {
		return
	}

	// One elbow sweep yields both the curve and the winning k-means run;
	// the chosen k is never re-run.
	vectors := entropy.Vectors(groups)
	res, curve := cluster.ChooseK(vectors, *kmax, 0x16c18, p.Cfg.Workers)
	fmt.Print("SSE(k):")
	for i, s := range curve {
		fmt.Printf(" k%d=%.2f", i+1, s)
	}
	fmt.Printf("\nelbow k = %d\n\n", res.K)

	for _, s := range cluster.Summarize(vectors, res) {
		fmt.Printf("cluster %d: %5.1f%% (%d networks)\n  median entropy F%d-%d:", s.ID, s.Share*100, s.Size, *a, *b)
		for _, h := range s.MedianEntropy {
			fmt.Printf(" %.2f", h)
		}
		fmt.Println()
	}
}
