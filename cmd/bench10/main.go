// Command bench10 records the columnar world plane's footprint and
// sweep throughput and emits BENCH_10.json: per scale it builds the
// simulated world, reports the plane's self-measured bytes (sorted host
// columns, flat topology columns, record inputs), bytes per host, build
// wall time, and the wall clock of a full sweep over every finite host —
// batched (the sorted merge-cursor path) and a per-probe sample (the
// binary-search path).
//
// Usage:
//
//	bench10 [-scales 16,64,100] [-sample 200000] [-maxheap BYTES]
//	        [-out BENCH_10.json]
//
// -maxheap makes the run fail (exit 1) if any cell's peak RSS exceeds
// the bound — the CI memory-regression gate for world construction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/prof"
	"expanse/internal/wire"
)

type cell struct {
	Scale  float64 `json:"scale"`
	Hosts  int     `json:"hosts"`
	Nets   int     `json:"networks"`
	Aliens int     `json:"alias_regions"`

	BuildSec float64 `json:"build_seconds"`

	// World-plane self-accounting (netsim.Internet.MemBytes).
	HostBytes    int64   `json:"host_plane_bytes"`
	TopoBytes    int64   `json:"topo_plane_bytes"`
	RecordBytes  int64   `json:"record_plane_bytes"`
	BytesPerHost float64 `json:"host_plane_bytes_per_host"`

	// Sweep over finite hosts in sorted order, mask-only columns. The cold
	// pass pays the one-time machine-profile derivations; the warm pass
	// re-answers the same probes and isolates the resolution plane (merge
	// cursor + columns). Capped at -sweepcap probes so the machine memo
	// stays bounded at large scales.
	SweepProbes      int     `json:"sweep_probes"`
	SweepOK          int     `json:"sweep_responsive"`
	SweepColdSec     float64 `json:"sweep_cold_seconds"`
	SweepWarmSec     float64 `json:"sweep_warm_seconds"`
	SweepWarmMProbes float64 `json:"sweep_warm_mprobes_per_sec"`

	// Per-probe (binary search) reference over a deterministic sample.
	SampleProbes    int     `json:"sample_probes"`
	SampleSec       float64 `json:"sample_seconds"`
	SampleMProbesPS float64 `json:"sample_mprobes_per_sec"`

	PeakRSS  int64 `json:"peak_rss_bytes"`
	LiveHeap int64 `json:"live_heap_bytes"`
}

type report struct {
	Bench string        `json:"bench"`
	Host  prof.HostMeta `json:"host"`
	Cells []cell        `json:"cells"`
	Note  string        `json:"note"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func parseScales(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		s, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

const sweepChunk = 8192

// runCell builds one world and measures plane bytes and sweep rates.
func runCell(scale float64, sample, sweepcap int) cell {
	cfg := netsim.DefaultConfig()
	cfg.Scale = scale
	t0 := time.Now()
	world := netsim.New(cfg)
	c := cell{Scale: scale, BuildSec: time.Since(t0).Seconds()}

	m := world.MemBytes()
	c.Hosts = m.NHosts
	c.HostBytes, c.TopoBytes, c.RecordBytes = m.Hosts, m.Topo, m.Records
	c.BytesPerHost = m.BytesPerHost()
	c.Nets = len(world.Networks())
	c.Aliens = len(world.AliasedRegions())

	// Batched sweep: finite hosts in sorted address order (the shape a
	// sorted hitlist scan presents to the responder). Capped: an uncapped
	// sweep at scale 100 would memoize tens of millions of machine
	// profiles — first-touch state the pipeline never accumulates.
	addrs := make([]ip6.Addr, 0, m.NHosts)
	for _, h := range world.Hosts() {
		addrs = append(addrs, h.Addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	if sweepcap > 0 && len(addrs) > sweepcap {
		fmt.Printf("scale %4g: sweep capped at %d of %d hosts\n", scale, sweepcap, len(addrs))
		addrs = addrs[:sweepcap]
	}
	at := make([]wire.Time, sweepChunk)
	for i := range at {
		at[i] = wire.Time(i) * 3
	}
	var cols wire.ResultColumns
	cols.ResetOK(sweepChunk)
	sweep := func(tally bool) float64 {
		t0 := time.Now()
		for lo := 0; lo < len(addrs); lo += sweepChunk {
			hi := lo + sweepChunk
			if hi > len(addrs) {
				hi = len(addrs)
			}
			cols.OK.Reset(hi - lo)
			world.ProbeBatch(addrs[lo:hi], wire.ICMPv6, 3, at[:hi-lo], &cols, 0)
			if tally {
				c.SweepOK += cols.OK.Count()
			}
		}
		return time.Since(t0).Seconds()
	}
	c.SweepProbes = len(addrs)
	c.SweepColdSec = sweep(true)
	c.SweepWarmSec = sweep(false)
	if c.SweepWarmSec > 0 {
		c.SweepWarmMProbes = float64(c.SweepProbes) / 1e6 / c.SweepWarmSec
	}

	// Per-probe sample: a deterministic stride over the same addresses,
	// resolved through the binary-search path.
	if sample > len(addrs) {
		sample = len(addrs)
	}
	stride := 1
	if sample > 0 {
		stride = len(addrs) / sample
		if stride < 1 {
			stride = 1
		}
	}
	t0 = time.Now()
	for i := 0; i < len(addrs) && c.SampleProbes < sample; i += stride {
		world.Probe(addrs[i], wire.ICMPv6, 3, wire.Time(i))
		c.SampleProbes++
	}
	c.SampleSec = time.Since(t0).Seconds()
	if c.SampleSec > 0 {
		c.SampleMProbesPS = float64(c.SampleProbes) / 1e6 / c.SampleSec
	}

	c.LiveHeap = prof.LiveHeap()
	c.PeakRSS = prof.PeakRSS()
	runtime.KeepAlive(world)
	return c
}

func main() {
	scaleSpec := flag.String("scales", "16,64,100", "comma-separated world scales")
	sample := flag.Int("sample", 200_000, "per-probe reference sample size")
	sweepcap := flag.Int("sweepcap", 4_000_000, "max sweep probes per cell (0 = full population)")
	maxheap := flag.Int64("maxheap", 0, "fail if any cell's peak RSS exceeds this many bytes (0 = no bound)")
	out := flag.String("out", "BENCH_10.json", "output path")
	profiles := prof.Flags(flag.CommandLine)
	flag.Parse()
	if err := profiles.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	scales, err := parseScales(*scaleSpec)
	if err != nil {
		fail(err)
	}
	rep := report{Bench: "columnar world plane: footprint and sweep throughput by scale", Host: prof.Host()}
	for _, scale := range scales {
		c := runCell(scale, *sample, *sweepcap)
		rep.Cells = append(rep.Cells, c)
		fmt.Printf("scale %4g  hosts %9d  build %6.2fs  host plane %s (%.1f B/host)  topo %s  records %s  sweep cold %6.2fs warm %6.2fs (%.1f Mp/s)  peakRSS %s\n",
			scale, c.Hosts, c.BuildSec, prof.FmtBytes(c.HostBytes), c.BytesPerHost,
			prof.FmtBytes(c.TopoBytes), prof.FmtBytes(c.RecordBytes),
			c.SweepColdSec, c.SweepWarmSec, c.SweepWarmMProbes, prof.FmtBytes(c.PeakRSS))
		if *maxheap > 0 && c.PeakRSS > *maxheap {
			fail(fmt.Errorf("bench10: peak RSS %d exceeds -maxheap %d at scale %g", c.PeakRSS, *maxheap, scale))
		}
	}
	rep.Note = "Host plane is the sealed SoA columns (40 B/host flat: 16 addr + 4 asn + 1 meta + " +
		"1 serves + 8 machine + 2 death + 4 domain + 4 rank). The retired map/AoS plane measured " +
		"92.3 B/host at scale 16 and 99.0 B/host at scale 4 (live-heap deltas, pre-refactor). " +
		"Sweep is ProbeBatch over finite hosts in sorted order (merge-cursor resolution), capped " +
		"per -sweepcap; the cold pass pays one-time machine-profile derivation, the warm pass " +
		"re-answers the same probes and measures the resolution plane. Sample is the per-probe " +
		"Probe path (binary search) over a deterministic stride. Peak RSS is cumulative across " +
		"cells in one process (VmHWM never decreases): run scales ascending, so a cell's reading " +
		"bounds that cell from above."

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fail(err)
	}
	f.Close()
	fmt.Println("wrote", *out)
}
