// Command bench7 records the scale-memory trajectory of the pipeline
// and emits BENCH_7.json: per (scale, days) cell it runs the full
// collect → multi-day APD pipeline with per-epoch snapshots, and
// reports wall time, peak RSS, the planes' self-measured bytes (store
// shards, APD history), bytes per address, and snapshot save/load
// throughput (load is a timed, digest-verified Resume). With -audit,
// each cell is preceded by a baseline leg — membership maps retained,
// dense history columns — so the JSON carries the measured before/after
// bytes-per-address of the compaction work rather than an estimate.
//
// Usage:
//
//	bench7 [-cells 1:14,4:14,16:14] [-workers 8] [-audit] [-auditcap 14]
//	       [-maxheap BYTES] [-gcdays N] [-snapdir DIR] [-out BENCH_7.json]
//
// -maxheap makes the run fail (exit 1) if any cell's peak RSS exceeds
// the bound — the CI memory-regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"expanse/internal/core"
	"expanse/internal/prof"
)

type planeBytes struct {
	Bytes        int64   `json:"bytes"`
	BytesPerAddr float64 `json:"bytes_per_addr"`
}

type cell struct {
	Scale   float64 `json:"scale"`
	Days    int     `json:"days"`
	Mode    string  `json:"mode"` // "compact" or "baseline"
	Hitlist int     `json:"hitlist_size"`
	APDIDs  int     `json:"apd_id_space"`

	CollectSec float64 `json:"collect_seconds"`
	RunSec     float64 `json:"run_seconds"`
	PeakRSS    int64   `json:"peak_rss_bytes"`
	LiveHeap   int64   `json:"live_heap_bytes"`
	APDProbes  int     `json:"apd_probes_sent"`

	// Store is the sharded hitlist store (columns + membership maps),
	// per hitlist address. History is the APD observation history
	// (day columns + prefix index), per candidate-table ID.
	Store         planeBytes `json:"store_plane"`
	StoreMapBytes int64      `json:"store_map_bytes"`
	History       planeBytes `json:"history_plane"`
	HistDense     int64      `json:"history_dense_bytes"`
	HistSparse    int64      `json:"history_sparse_bytes"`

	SnapFiles      int     `json:"snapshot_files,omitempty"`
	SnapBytes      int64   `json:"snapshot_bytes,omitempty"`
	SnapSaveSec    float64 `json:"snapshot_save_seconds,omitempty"`
	SnapSaveMBs    float64 `json:"snapshot_save_mb_per_s,omitempty"`
	SnapLoadSec    float64 `json:"snapshot_load_seconds,omitempty"`
	SnapLoadMBs    float64 `json:"snapshot_load_mb_per_s,omitempty"`
	ResumeVerified bool    `json:"resume_digest_verified,omitempty"`
}

type report struct {
	Bench   string        `json:"bench"`
	Workers int           `json:"workers"`
	Host    prof.HostMeta `json:"host"`
	Cells   []cell        `json:"cells"`
	Note    string        `json:"note"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func parseCells(spec string) ([][2]float64, error) {
	var out [][2]float64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		sd := strings.Split(part, ":")
		if len(sd) != 2 {
			return nil, fmt.Errorf("bad cell %q (want scale:days)", part)
		}
		scale, err := strconv.ParseFloat(sd[0], 64)
		if err != nil {
			return nil, err
		}
		days, err := strconv.Atoi(sd[1])
		if err != nil {
			return nil, err
		}
		out = append(out, [2]float64{scale, float64(days)})
	}
	return out, nil
}

// runCell executes one pipeline run and measures it. In baseline mode
// the store keeps its membership maps (no Compact), the history records
// dense day columns, and no snapshots are written — the pre-compaction
// memory plane this PR's audit measured against.
func runCell(scale float64, days, workers, gcdays int, baseline bool, snapdir string) cell {
	cfg := core.DefaultConfig()
	cfg.Sim.Scale = scale
	cfg.Workers = workers
	cfg.ForceGCDays = gcdays
	dir := ""
	if !baseline {
		dir = filepath.Join(snapdir, fmt.Sprintf("s%g_d%d", scale, days))
		cfg.SnapshotDir = dir
	}
	p := core.New(cfg)
	c := cell{Scale: scale, Days: days, Mode: "compact"}
	t0 := time.Now()
	if baseline {
		c.Mode = "baseline"
		p.History().SetDenseColumns(true)
		// Collection epochs without the post-collect Compact.
		for e := 0; e < p.Cfg.Sim.Epochs; e++ {
			p.Store.CollectDay(e * p.Cfg.Sim.EpochDays)
		}
	} else {
		p.Collect()
	}
	c.CollectSec = time.Since(t0).Seconds()
	c.Hitlist = p.Hitlist().Len()

	t0 = time.Now()
	// Stream the epochs, keeping only the last: retaining a long run's
	// full epoch slice would hold every day's verdict map and filter
	// live (~hundreds of MB per day at scale 16) and swamp the very
	// memory plane this bench measures.
	var last *core.Epoch
	p.RunDaysFunc(p.World.Horizon(), days, func(e *core.Epoch) { last = e })
	c.RunSec = time.Since(t0).Seconds()
	if err := p.SnapshotErr(); err != nil {
		fail(err)
	}
	c.APDProbes = p.APDProbesSent()
	c.APDIDs = len(last.Merged)

	storeTotal, storeMaps := p.Store.MemBytes()
	histTotal, dense, sparse, _ := p.History().MemBytes()
	c.Store = planeBytes{Bytes: storeTotal, BytesPerAddr: float64(storeTotal) / float64(c.Hitlist)}
	c.StoreMapBytes = storeMaps
	c.History = planeBytes{Bytes: histTotal, BytesPerAddr: float64(histTotal) / float64(c.APDIDs)}
	c.HistDense, c.HistSparse = dense, sparse
	c.LiveHeap = prof.LiveHeap()
	c.PeakRSS = prof.PeakRSS()

	if !baseline {
		st := p.SnapshotStats()
		c.SnapFiles, c.SnapBytes, c.SnapSaveSec = st.Files, st.Bytes, st.Seconds
		if st.Seconds > 0 {
			c.SnapSaveMBs = float64(st.Bytes) / (1 << 20) / st.Seconds
		}
		// Release the original pipeline (and its simulated world) before
		// Resume builds a second one, so the cell's footprint is the max
		// of the two pipelines, not their sum.
		wantDigest := last.Digest()
		p, last = nil, nil
		runtime.GC()
		t0 = time.Now()
		_, ep, err := core.Resume(cfg, dir, days-1)
		c.SnapLoadSec = time.Since(t0).Seconds()
		if err != nil {
			fail(err)
		}
		if c.SnapLoadSec > 0 {
			c.SnapLoadMBs = float64(st.Bytes) / (1 << 20) / c.SnapLoadSec
		}
		c.ResumeVerified = ep.Digest() == wantDigest
		if !c.ResumeVerified {
			fail(fmt.Errorf("bench7: resumed epoch digest diverged at scale %g", scale))
		}
	}
	return c
}

func main() {
	cellSpec := flag.String("cells", "1:14,4:14,16:14", "comma-separated scale:days cells")
	workers := flag.Int("workers", 0, "scan-engine worker shards per protocol (0 = default)")
	audit := flag.Bool("audit", false, "run a baseline (uncompacted, dense-column) leg per cell")
	auditcap := flag.Int("auditcap", 14, "cap baseline-leg day count (memory planes plateau; wall time does not)")
	maxheap := flag.Int64("maxheap", 0, "fail if any cell's peak RSS exceeds this many bytes (0 = no bound)")
	gcdays := flag.Int("gcdays", 0, "force a full GC every N probed days (0 = off; bounds the mark-phase heap-goal ratchet on long runs)")
	snapdir := flag.String("snapdir", "", "snapshot directory (default: a temp dir, removed on exit)")
	out := flag.String("out", "BENCH_7.json", "output path")
	profiles := prof.Flags(flag.CommandLine)
	flag.Parse()
	if err := profiles.Start(); err != nil {
		fail(err)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	cells, err := parseCells(*cellSpec)
	if err != nil {
		fail(err)
	}
	dir := *snapdir
	if dir == "" {
		dir, err = os.MkdirTemp("", "bench7-snap-")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
	}

	rep := report{Bench: "scale-memory trajectory: per-address audit, compact columns, epoch snapshots", Host: prof.Host()}
	for _, sd := range cells {
		scale, days := sd[0], int(sd[1])
		if *audit {
			ad := days
			if ad > *auditcap {
				ad = *auditcap
			}
			c := runCell(scale, ad, *workers, *gcdays, true, dir)
			rep.Workers = p0Workers(*workers)
			rep.Cells = append(rep.Cells, c)
			fmt.Printf("scale %4g days %2d %-8s  wall %7.2fs  peakRSS %s  store %s (%.1f B/addr)  hist %s\n",
				scale, ad, c.Mode, c.CollectSec+c.RunSec, prof.FmtBytes(c.PeakRSS),
				prof.FmtBytes(c.Store.Bytes), c.Store.BytesPerAddr, prof.FmtBytes(c.History.Bytes))
		}
		c := runCell(scale, days, *workers, *gcdays, false, dir)
		rep.Workers = p0Workers(*workers)
		rep.Cells = append(rep.Cells, c)
		fmt.Printf("scale %4g days %2d %-8s  wall %7.2fs  peakRSS %s  store %s (%.1f B/addr)  hist %s  snap %s save %.1f MB/s load %.1f MB/s\n",
			scale, days, c.Mode, c.CollectSec+c.RunSec, prof.FmtBytes(c.PeakRSS),
			prof.FmtBytes(c.Store.Bytes), c.Store.BytesPerAddr, prof.FmtBytes(c.History.Bytes),
			prof.FmtBytes(c.SnapBytes), c.SnapSaveMBs, c.SnapLoadMBs)
		if *maxheap > 0 && c.PeakRSS > *maxheap {
			fail(fmt.Errorf("bench7: peak RSS %d exceeds -maxheap %d at scale %g", c.PeakRSS, *maxheap, scale))
		}
	}
	rep.Note = "Baseline legs keep per-shard membership maps and dense history day columns; " +
		"compact legs drop maps post-collection (sorted-column membership) and record sparse " +
		"day columns, with per-epoch snapshots whose load throughput is a timed, digest-verified " +
		"Resume. Peak RSS is cumulative across cells in one process (VmHWM never decreases): " +
		"per-cell ordering runs small scales first, so a cell's reading bounds that cell from above."

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fail(err)
	}
	f.Close()
	fmt.Println("wrote", *out)
}

// p0Workers resolves the effective worker count the way core.New does.
func p0Workers(w int) int {
	if w <= 0 {
		return core.DefaultConfig().Workers
	}
	return w
}
