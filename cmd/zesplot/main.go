// Command zesplot renders a squarified-treemap SVG of IPv6 prefixes.
// Input is "prefix[,count]" lines on stdin or from a file; without input
// it plots the simulated world's announced prefixes.
//
// Usage:
//
//	zesplot [-in FILE] [-out FILE] [-unsized] [-title T] [-workers N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/zesplot"
)

func main() {
	in := flag.String("in", "", "input file of 'prefix[,count]' lines (default: stdin if piped, else simulated world)")
	out := flag.String("out", "zesplot.svg", "output SVG file")
	unsized := flag.Bool("unsized", false, "equal-area boxes (pattern-spotting variant)")
	title := flag.String("title", "zesplot", "plot title")
	workers := flag.Int("workers", 0, "cap on CPU parallelism (0 = all cores)")
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var items []zesplot.Item
	var err error
	switch {
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			items, err = parse(f)
			f.Close()
		}
	default:
		if fi, _ := os.Stdin.Stat(); fi != nil && fi.Mode()&os.ModeCharDevice == 0 {
			items, err = parse(os.Stdin)
		} else {
			items = fromWorld()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	svg := zesplot.SVG(items, zesplot.Options{Sized: !*unsized, Title: *title})
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d prefixes)\n", *out, len(items))
}

func parse(r io.Reader) ([]zesplot.Item, error) {
	var items []zesplot.Item
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, ",", 2)
		p, err := ip6.ParsePrefix(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", line, err)
		}
		val := 0.0
		if len(parts) == 2 {
			if val, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
				return nil, fmt.Errorf("line %q: %v", line, err)
			}
		}
		items = append(items, zesplot.Item{Prefix: p, Value: val})
	}
	return items, sc.Err()
}

func fromWorld() []zesplot.Item {
	world := netsim.New(netsim.Config{
		Seed:     0x16C18,
		Registry: bgp.DefaultRegistryConfig(),
		Scale:    0.2,
	})
	var items []zesplot.Item
	for _, ann := range world.Table.Announcements() {
		items = append(items, zesplot.Item{Prefix: ann.Prefix, ASN: ann.Origin, Value: 1})
	}
	return items
}
