// Command hitlist runs the full IPv6 hitlist pipeline against the
// simulated Internet and prints any (or all) of the paper's reproduced
// tables and figures.
//
// Usage:
//
//	hitlist [-scale 1.0] [-seed 93208] [-workers 8] [-report all] [-svgdir DIR]
//
// Report identifiers match the paper: table1 table2 fig1a fig1b fig1c
// fig2a fig2b fig3a fig3b table3 table4 sec53 fig4 fig5 table5 table6
// sec55 fig6 fig7 fig8 sec72 sec73 table7 fig9 sec8 table8 fig10 table9
// sec93 ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"expanse/internal/core"
	"expanse/internal/prof"
)

func main() {
	scale := flag.Float64("scale", 1.0, "simulation scale (1.0 ≈ 1:100 of the paper)")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	report := flag.String("report", "all", "comma-separated report ids, or 'all'")
	svgdir := flag.String("svgdir", "", "directory to write zesplot SVGs (optional)")
	workers := flag.Int("workers", 0, "scan-engine worker shards per protocol (0 = default)")
	profiles := prof.Flags(flag.CommandLine)
	flag.Parse()
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	cfg := core.DefaultConfig()
	cfg.Sim.Scale = *scale
	cfg.Workers = *workers
	if *seed != 0 {
		cfg.Sim.Seed = *seed
	}
	lab := core.NewLab(cfg)

	reports := map[string]func() *core.Report{
		"table1": lab.Table1, "table2": lab.Table2,
		"fig1a": lab.Fig1a, "fig1b": lab.Fig1b, "fig1c": lab.Fig1c,
		"fig2a": lab.Fig2a, "fig2b": lab.Fig2b, "fig3a": lab.Fig3a, "fig3b": lab.Fig3b,
		"table3": lab.Table3, "table4": lab.Table4, "sec53": lab.Sec53,
		"fig4": lab.Fig4, "fig5": lab.Fig5, "table5": lab.Table5,
		"table6": lab.Table6, "sec55": lab.Sec55,
		"fig6": lab.Fig6, "fig7": lab.Fig7, "fig8": lab.Fig8,
		"sec72": lab.Sec72, "sec73": lab.Sec73, "table7": lab.Table7, "fig9": lab.Fig9,
		"sec8": lab.Sec8, "table8": lab.Table8, "fig10": lab.Fig10,
		"table9": lab.Table9, "sec93": lab.Sec93, "ablation": lab.AblationGenerators,
	}
	order := []string{
		"table1", "table2", "fig1a", "fig1b", "fig1c",
		"fig2a", "fig2b", "fig3a", "fig3b",
		"table3", "table4", "sec53", "fig4", "fig5", "table5", "table6", "sec55",
		"fig6", "fig7", "fig8",
		"sec72", "sec73", "table7", "fig9",
		"sec8", "table8", "fig10", "table9", "sec93", "ablation",
	}

	var selected []string
	if *report == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*report, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := reports[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown report %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}
	for _, id := range selected {
		fmt.Println(reports[id]().String())
	}

	if *svgdir != "" {
		if err := os.MkdirAll(*svgdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		write := func(name, svg string) {
			path := filepath.Join(*svgdir, name)
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		write("fig1c.svg", lab.Fig1cSVG())
		a, b := lab.Fig5SVGs()
		write("fig5a.svg", a)
		write("fig5b.svg", b)
		write("fig6.svg", lab.Fig6SVG())
	}
}
