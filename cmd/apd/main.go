// Command apd runs multi-level aliased prefix detection against the
// simulated Internet and prints detected aliased prefixes with their
// verification against ground truth.
//
// Usage:
//
//	apd [-scale 0.3] [-days 4] [-window 3] [-workers 8] [-overlap 2] [-murdock]
package main

import (
	"flag"
	"fmt"
	"os"

	"expanse/internal/apd"
	"expanse/internal/core"
	"expanse/internal/prof"
)

func main() {
	scale := flag.Float64("scale", 0.3, "simulation scale")
	days := flag.Int("days", 4, "APD probing days")
	window := flag.Int("window", 3, "sliding window (days)")
	workers := flag.Int("workers", 0, "scan-engine worker shards per protocol (0 = default)")
	overlap := flag.Int("overlap", 0, "day-orchestrator pipeline depth (0 = default, 1 = serial)")
	murdock := flag.Bool("murdock", false, "also run the Murdock et al. /96 baseline")
	profiles := prof.Flags(flag.CommandLine)
	flag.Parse()
	if err := profiles.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	cfg := core.DefaultConfig()
	cfg.Sim.Scale = *scale
	cfg.APDWindow = *window
	cfg.Workers = *workers
	if *overlap > 0 {
		cfg.Overlap = *overlap
	}
	p := core.New(cfg)
	fmt.Println("collecting hitlist sources…")
	p.Collect()
	fmt.Printf("hitlist: %d addresses\n", p.Hitlist().Len())

	day := p.World.Horizon()
	// Stream the epochs: the per-day line needs nothing past its own
	// epoch, and dropping each one keeps long -days runs at the
	// pipeline's working set instead of retaining every day's filter.
	p.RunDaysFunc(day, *days, func(ep *core.Epoch) {
		fmt.Printf("APD day %d: %d candidates probed\n", ep.Index, len(ep.Candidates))
	})

	aliased := p.Filter().AliasedPrefixes()
	fmt.Printf("\naliased prefixes detected: %d (probes sent: %d)\n", len(aliased), p.APDProbesSent())
	tp := 0
	byLen := map[int]int{}
	for _, pre := range aliased {
		byLen[pre.Bits()]++
		if p.World.GroundTruthAliased(pre.Addr()) {
			tp++
		}
	}
	fmt.Printf("ground-truth confirmed: %d/%d\n", tp, len(aliased))
	fmt.Print("by prefix length:")
	for l := 0; l <= 128; l++ {
		if byLen[l] > 0 {
			fmt.Printf(" /%d=%d", l, byLen[l])
		}
	}
	fmt.Println()

	clean, al, _ := p.Filter().SplitSorted(p.Hitlist().SortedSeq(), p.Cfg.Workers)
	fmt.Printf("hitlist split: %d clean, %d aliased (%.1f%%)\n",
		len(clean), len(al), 100*float64(len(al))/float64(p.Hitlist().Len()))

	if *murdock {
		md := apd.NewMurdockDetector(p.World)
		cands := md.Candidates(p.Hitlist().Sorted())
		verdicts := md.Detect(cands, day)
		fmt.Printf("\nMurdock /96 baseline: %d candidates, %d aliased, %d probes\n",
			len(cands), len(verdicts), md.ProbesSent)
	}
}
