// Command genaddr learns new IPv6 addresses from the simulated hitlist
// with Entropy/IP and 6Gen (§7) and reports their responsiveness.
//
// Usage:
//
//	genaddr [-scale 0.3] [-budget 1000] [-tool both|eip|6gen] [-workers 8] [-overlap 2] [-print 0]
package main

import (
	"flag"
	"fmt"

	"expanse/internal/bgp"
	"expanse/internal/core"
	"expanse/internal/eip"
	"expanse/internal/ip6"
	"expanse/internal/sixgen"
	"expanse/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 0.3, "simulation scale")
	budget := flag.Int("budget", 1000, "generation budget per AS")
	tool := flag.String("tool", "both", "generator: eip, 6gen, or both")
	printN := flag.Int("print", 0, "print the first N generated addresses")
	workers := flag.Int("workers", 0, "scan-engine worker shards per protocol (0 = default)")
	overlap := flag.Int("overlap", 0, "day-orchestrator pipeline depth (0 = default, 1 = serial)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Sim.Scale = *scale
	cfg.Workers = *workers
	if *overlap > 0 {
		cfg.Overlap = *overlap
	}
	p := core.New(cfg)
	p.Collect()
	day := p.World.Horizon()
	epochs := p.RunDays(day, cfg.APDWindow)
	clean := epochs[len(epochs)-1].CleanTargets()
	fmt.Printf("non-aliased seed addresses: %d\n", len(clean))

	perAS := map[bgp.ASN][]ip6.Addr{}
	for _, a := range clean {
		if asn, ok := p.World.Table.Origin(a); ok {
			perAS[asn] = append(perAS[asn], a)
		}
	}
	min := int(100 * *scale)
	if min < 20 {
		min = 20
	}

	// AS order fixes the generated-address order and with it the sweep's
	// probe schedule; raw map order would leak into the responsive
	// counts below.
	asns := stats.SortedKeys(perAS)

	runTool := func(name string, gen func(seeds []ip6.Addr) []ip6.Addr) {
		seen := ip6.NewSet(1 << 16)
		var out []ip6.Addr
		ases := 0
		for _, asn := range asns {
			seeds := perAS[asn]
			if len(seeds) < min {
				continue
			}
			ases++
			for _, a := range gen(seeds) {
				if p.World.Table.IsRouted(a) && !p.Hitlist().Contains(a) && seen.Add(a) {
					out = append(out, a)
				}
			}
		}
		scan := p.Sweep(out, day)
		resp := scan.AnyResponsive()
		fmt.Printf("%-10s ASes=%d generated(new,routable)=%d responsive=%d (%.2f%%)\n",
			name, ases, len(out), len(resp), 100*float64(len(resp))/float64(max(len(out), 1)))
		for i := 0; i < *printN && i < len(out); i++ {
			fmt.Println("  ", out[i])
		}
	}

	if *tool == "eip" || *tool == "both" {
		runTool("Entropy/IP", func(seeds []ip6.Addr) []ip6.Addr {
			return eip.Build(seeds).Generate(*budget)
		})
	}
	if *tool == "6gen" || *tool == "both" {
		runTool("6Gen", func(seeds []ip6.Addr) []ip6.Addr {
			return sixgen.Generate(seeds, *budget, sixgen.Config{})
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
