// Package expanse is a from-scratch Go reproduction of "Clusters in the
// Expanse: Understanding and Unbiasing IPv6 Hitlists" (Gasser et al.,
// IMC 2018): the complete hitlist pipeline — source collection, entropy
// clustering, multi-level aliased prefix detection, fingerprint
// validation, responsiveness probing, target generation with Entropy/IP
// and 6Gen, rDNS walking, and a crowdsourcing client study — running
// against a deterministic simulated IPv6 Internet.
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for measured-vs-paper results.
//
// Contributing: before sending a change, run the repo's own invariant
// checkers alongside the usual gates —
//
//	gofmt -l . && go vet ./... && go test ./...
//	go run ./cmd/expanselint ./...
//
// expanselint machine-checks the three contracts every plane depends
// on (deterministic output at any worker count, immutable published
// epochs, allocation-free hot paths) and fails on any finding; exceptions
// require an explicit "//lint:allow <analyzer> <reason>" comment. See
// DESIGN.md, "Correctness tooling".
package expanse
