module expanse

go 1.22
