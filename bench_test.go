package expanse

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates the experiment through
// the shared Lab (expensive pipeline stages are computed once and
// cached, exactly like the real system's daily artifacts) and prints the
// reproduced rows on its first iteration, so
//
//	go test -bench=. -benchmem
//
// emits the full evaluation. Paper-vs-measured comparisons are recorded
// in EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"

	"expanse/internal/core"
)

var (
	labOnce sync.Once
	lab     *core.Lab
)

// benchLab returns the shared full-scale lab.
func benchLab() *core.Lab {
	labOnce.Do(func() {
		lab = core.NewLab(core.DefaultConfig())
	})
	return lab
}

var printed sync.Map

// run executes one experiment inside a benchmark loop and prints its
// report once per process.
func run(b *testing.B, id string, exp func() *core.Report) {
	b.Helper()
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		rep = exp()
	}
	if _, dup := printed.LoadOrStore(id, true); !dup && rep != nil {
		fmt.Println(rep.String())
	}
}

func BenchmarkTable1_PriorWorkComparison(b *testing.B) {
	run(b, "t1", benchLab().Table1)
}

func BenchmarkTable2_SourcesOverview(b *testing.B) {
	run(b, "t2", benchLab().Table2)
}

func BenchmarkFig1a_Runup(b *testing.B) {
	run(b, "f1a", benchLab().Fig1a)
}

func BenchmarkFig1b_ASDistribution(b *testing.B) {
	run(b, "f1b", benchLab().Fig1b)
}

func BenchmarkFig1c_ZesplotHitlist(b *testing.B) {
	run(b, "f1c", benchLab().Fig1c)
}

func BenchmarkFig2a_EntropyClusteringFull(b *testing.B) {
	run(b, "f2a", benchLab().Fig2a)
}

func BenchmarkFig2b_EntropyClusteringIID(b *testing.B) {
	run(b, "f2b", benchLab().Fig2b)
}

func BenchmarkFig3a_DNSRespondersClustering(b *testing.B) {
	run(b, "f3a", benchLab().Fig3a)
}

func BenchmarkFig3b_ClusterZesplot(b *testing.B) {
	run(b, "f3b", benchLab().Fig3b)
}

func BenchmarkTable3_FanOut(b *testing.B) {
	run(b, "t3", benchLab().Table3)
}

func BenchmarkTable4_SlidingWindow(b *testing.B) {
	run(b, "t4", benchLab().Table4)
}

func BenchmarkSec53_APDImpact(b *testing.B) {
	run(b, "s53", benchLab().Sec53)
}

func BenchmarkFig4_AliasedDistribution(b *testing.B) {
	run(b, "f4", benchLab().Fig4)
}

func BenchmarkFig5_APDZesplot(b *testing.B) {
	run(b, "f5", benchLab().Fig5)
}

func BenchmarkTable5_FingerprintConsistency(b *testing.B) {
	run(b, "t5", benchLab().Table5)
}

func BenchmarkTable6_FingerprintValidation(b *testing.B) {
	run(b, "t6", benchLab().Table6)
}

func BenchmarkSec55_MurdockComparison(b *testing.B) {
	run(b, "s55", benchLab().Sec55)
}

func BenchmarkFig6_ResponsesZesplot(b *testing.B) {
	run(b, "f6", benchLab().Fig6)
}

func BenchmarkFig7_CrossProtocol(b *testing.B) {
	run(b, "f7", benchLab().Fig7)
}

func BenchmarkFig8_Longitudinal(b *testing.B) {
	run(b, "f8", benchLab().Fig8)
}

func BenchmarkSec72_Generation(b *testing.B) {
	run(b, "s72", benchLab().Sec72)
}

func BenchmarkSec73_GeneratedResponsiveness(b *testing.B) {
	run(b, "s73", benchLab().Sec73)
}

func BenchmarkTable7_ProtocolCombos(b *testing.B) {
	run(b, "t7", benchLab().Table7)
}

func BenchmarkFig9_GeneratedDistribution(b *testing.B) {
	run(b, "f9", benchLab().Fig9)
}

func BenchmarkSec8_RDNS(b *testing.B) {
	run(b, "s8", benchLab().Sec8)
}

func BenchmarkTable8_RDNSTopASes(b *testing.B) {
	run(b, "t8", benchLab().Table8)
}

func BenchmarkFig10_RDNSDistribution(b *testing.B) {
	run(b, "f10", benchLab().Fig10)
}

func BenchmarkTable9_Crowdsourcing(b *testing.B) {
	run(b, "t9", benchLab().Table9)
}

func BenchmarkSec93_ClientResponsiveness(b *testing.B) {
	run(b, "s93", benchLab().Sec93)
}

func BenchmarkAblation_GeneratorWalk(b *testing.B) {
	run(b, "abl-gen", benchLab().AblationGenerators)
}

// BenchmarkSweepWorkers measures the concurrent scan engine's worker
// scaling on a five-protocol sweep of a small world's hitlist. Results
// are bit-identical across worker counts (see DESIGN.md); only the
// wall-clock changes.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.TestConfig()
			cfg.Workers = workers
			p := core.New(cfg)
			p.Collect()
			targets := p.Hitlist().Sorted()
			day := p.World.Horizon()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Sweep(targets, day)
			}
		})
	}
}
