// Dailyscan: operate the hitlist as a service — the §11 use case. Runs a
// week of daily measurements over the curated hitlist and prints, per
// day, the responsive population and its stability versus day 0 (the
// data behind Figure 8 and the published daily snapshots).
package main

import (
	"fmt"

	"expanse/internal/core"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

func main() {
	p := core.New(core.TestConfig())
	p.Collect()
	day0 := p.World.Horizon()
	for d := 0; d < p.Cfg.APDWindow; d++ {
		p.RunAPD(day0 + d)
	}
	targets := p.CleanTargets()
	fmt.Printf("curated hitlist: %d targets\n\n", len(targets))

	// Day 0 establishes the responsive baseline that the "service"
	// publishes; subsequent days track stability and churn.
	baselineScan := p.Sweep(targets, day0)
	baseline := baselineScan.AnyResponsive()
	base := ip6.NewSet(len(baseline))
	base.AddSlice(baseline)
	fmt.Printf("day 0 responsive snapshot: %d addresses\n", base.Len())

	fmt.Printf("\n%-5s %10s %10s %8s %8s\n", "day", "responsive", "of-base", "lost", "icmp")
	for d := 0; d < 7; d++ {
		scan := p.Sweep(baseline, day0+d)
		resp := scan.AnyResponsive()
		lost := base.Len() - len(resp)
		fmt.Printf("%-5d %10d %9.1f%% %8d %8d\n",
			d, len(resp), 100*float64(len(resp))/float64(base.Len()), lost,
			scan.Count(wire.ICMPv6))
	}

	fmt.Println("\ntime-to-measurement lesson (§11): server addresses stay")
	fmt.Println("responsive for weeks; client and CPE addresses must be measured")
	fmt.Println("within minutes — compare the Scamper and DL rows of Figure 8.")
}
