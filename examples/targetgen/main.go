// Targetgen: the §7 workflow — learn previously unknown addresses from
// the hitlist with Entropy/IP and 6Gen, probe them, and compare the two
// tools' hit rates and population types.
package main

import (
	"fmt"
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/core"
	"expanse/internal/eip"
	"expanse/internal/ip6"
	"expanse/internal/sixgen"
)

func main() {
	p := core.New(core.TestConfig())
	p.Collect()
	day := p.World.Horizon()
	for d := 0; d < p.Cfg.APDWindow; d++ {
		p.RunAPD(day + d)
	}

	// Seeds: non-aliased addresses, split by AS (§7.1: aliased prefixes
	// would artificially inflate response rates).
	perAS := map[bgp.ASN][]ip6.Addr{}
	for _, a := range p.CleanTargets() {
		if asn, ok := p.World.Table.Origin(a); ok {
			perAS[asn] = append(perAS[asn], a)
		}
	}
	// Work on the five largest eligible ASes for a readable report.
	type asSeeds struct {
		asn   bgp.ASN
		seeds []ip6.Addr
	}
	var list []asSeeds
	for asn, seeds := range perAS {
		if len(seeds) >= 50 {
			list = append(list, asSeeds{asn, seeds})
		}
	}
	sort.Slice(list, func(i, j int) bool { return len(list[i].seeds) > len(list[j].seeds) })
	if len(list) > 5 {
		list = list[:5]
	}

	const budget = 800
	fmt.Printf("%-24s %7s %12s %12s %10s %10s\n", "AS", "seeds", "eip-new", "6gen-new", "eip-resp", "6gen-resp")
	for _, e := range list {
		model := eip.Build(e.seeds)
		eipGen := filterNew(p, model.Generate(budget))
		sixGen := filterNew(p, sixgen.Generate(e.seeds, budget, sixgen.Config{}))
		eipResp := len(p.Sweep(eipGen, day).AnyResponsive())
		sixResp := len(p.Sweep(sixGen, day).AnyResponsive())
		fmt.Printf("%-24s %7d %12d %12d %10d %10d\n",
			p.World.Table.AS(e.asn).Name, len(e.seeds), len(eipGen), len(sixGen), eipResp, sixResp)
	}
	fmt.Println("\nthe paper's lesson (§7.3): the tools find complementary sets —")
	fmt.Println("run both and merge.")
}

func filterNew(p *core.Pipeline, gen []ip6.Addr) []ip6.Addr {
	var out []ip6.Addr
	for _, a := range gen {
		if p.World.Table.IsRouted(a) && !p.Hitlist().Contains(a) {
			out = append(out, a)
		}
	}
	return out
}
