// Crowdsourcing: the §9 workflow — recruit participants on two
// marketplaces, collect client IPv6 addresses, and measure how quickly
// that client population decays under active probing.
package main

import (
	"fmt"

	"expanse/internal/core"
	"expanse/internal/crowd"
)

func main() {
	p := core.New(core.TestConfig())
	p.Collect()
	day := p.World.Horizon()

	parts := crowd.Recruit(p.World, crowd.DefaultPlatforms(0.06), day, 0x16c18)
	fmt.Printf("participants: %d\n\n", len(parts))

	fmt.Printf("%-8s %6s %6s %7s %7s %5s %5s\n", "platform", "IPv4", "IPv6", "ASes4", "ASes6", "cc4", "cc6")
	for _, row := range crowd.Table9(parts) {
		fmt.Printf("%-8s %6d %6d %7d %7d %5d %5d\n",
			row.Name, row.IPv4, row.IPv6, row.ASes4, row.ASes6, row.CC4, row.CC6)
	}
	asShare, common := crowd.ASOverlap(parts)
	fmt.Printf("\nIPv6 AS overlap between platforms: %.1f%%, common addresses: %d\n", asShare*100, common)

	// Ping the collected clients every 15 minutes for a week.
	res := crowd.PingStudy(p.World, parts, 7, 15)
	fmt.Printf("\nping study over 7 days:\n")
	fmt.Printf("  responsive clients: %d/%d (%.1f%%)\n", res.Responsive, res.Clients,
		100*float64(res.Responsive)/float64(max(res.Clients, 1)))
	fmt.Printf("  Atlas probes in same ASes: %.1f%% responsive (upper bound)\n", res.AtlasResponsive*100)
	fmt.Printf("  active <1h/day: %.0f%%; <=8h/day: %.0f%%; mean uptime %.1fh, median %.1fh\n",
		res.UnderHour*100, res.Under8h*100, res.MeanUptimeH, res.MedianUptimeH)
	fmt.Printf("  unresponsive with last hop outside their AS: %.0f%% (ISP filtering)\n",
		res.LastHopFiltered*100)

	fmt.Println("\nlesson (§9.3): measure crowdsourced clients immediately —")
	fmt.Println("the responsive population shrinks within hours.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
