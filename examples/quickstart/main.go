// Quickstart: build a small simulated Internet, collect the hitlist from
// all seven sources, remove aliased prefixes, and probe what remains —
// the §6 daily pipeline in ~40 lines.
package main

import (
	"fmt"

	"expanse/internal/core"
	"expanse/internal/wire"
)

func main() {
	// TestConfig is a small world that runs in seconds; DefaultConfig is
	// the full 1:100-scale reproduction.
	p := core.New(core.TestConfig())

	// 1-2. Collect and merge the sources (domain lists, FDNS, CT, AXFR,
	// Bitnodes, RIPE Atlas, scamper traceroutes).
	p.Collect()
	fmt.Printf("hitlist: %d addresses\n", p.Hitlist().Len())

	// 3. Multi-level aliased prefix detection with a 3-day sliding
	// window; day numbering continues after the collection horizon.
	day := p.World.Horizon()
	for d := 0; d < p.Cfg.APDWindow; d++ {
		p.RunAPD(day + d)
	}
	clean := p.CleanTargets()
	fmt.Printf("after de-aliasing: %d targets (%d aliased prefixes)\n",
		len(clean), len(p.Filter().AliasedPrefixes()))

	// 4-5. Probe the curated targets on all five protocols.
	scan := p.Sweep(clean, day)
	fmt.Printf("responsive: %d targets\n", len(scan.AnyResponsive()))
	for _, proto := range wire.Protos {
		fmt.Printf("  %-8s %d\n", proto, scan.Count(proto))
	}
}
