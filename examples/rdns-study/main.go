// rDNS study: the §8 workflow — walk the ip6.arpa reverse tree with
// NXDOMAIN pruning, filter unrouted and aliased addresses, probe the
// rest, and decide whether rDNS makes a good hitlist source.
package main

import (
	"fmt"

	"expanse/internal/core"
	"expanse/internal/ip6"
	"expanse/internal/rdns"
	"expanse/internal/wire"
)

func main() {
	p := core.New(core.TestConfig())
	p.Collect()
	day := p.World.Horizon()
	for d := 0; d < p.Cfg.APDWindow; d++ {
		p.RunAPD(day + d)
	}

	// Walk the reverse tree. The query counter shows why the paper calls
	// this source "semi-public": enumeration costs real DNS traffic.
	res := rdns.Walk(p.DNS.Reverse())
	fmt.Printf("rDNS walk: %d addresses from %d DNS queries (%.1f q/addr)\n",
		len(res.Addrs), res.Queries, float64(res.Queries)/float64(max(len(res.Addrs), 1)))

	newCount := 0
	var clean []ip6.Addr
	for _, a := range res.Addrs {
		if !p.Hitlist().Contains(a) {
			newCount++
		}
		if !p.World.Table.IsRouted(a) || p.Filter().IsAliased(a) {
			continue
		}
		clean = append(clean, a)
	}
	fmt.Printf("new vs hitlist: %d (%.1f%%); probing %d after filtering\n",
		newCount, 100*float64(newCount)/float64(len(res.Addrs)), len(clean))

	scan := p.Sweep(clean, day)
	fmt.Printf("responsive: ICMP %.1f%%, TCP/80 %.1f%%, TCP/443 %.1f%%\n",
		pct(scan.Count(wire.ICMPv6), len(clean)),
		pct(scan.Count(wire.TCP80), len(clean)),
		pct(scan.Count(wire.TCP443), len(clean)))

	// Client check (§8): SLAAC share among TCP/80 responders should be
	// low if the population is servers.
	slaac := 0
	tcp := scan.Responsive(wire.TCP80)
	for _, a := range tcp {
		if a.IsSLAAC() {
			slaac++
		}
	}
	if len(tcp) > 0 {
		fmt.Printf("TCP/80 responders with SLAAC addresses: %.1f%% (servers dominate)\n",
			pct(slaac, len(tcp)))
	}
	fmt.Println("\nconclusion (§8): balanced AS mix, mostly-new, server-heavy —")
	fmt.Println("add rDNS as a hitlist input.")
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
