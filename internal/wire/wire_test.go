package wire

import "testing"

func TestProtoStrings(t *testing.T) {
	want := map[Proto]string{
		ICMPv6: "ICMP", TCP80: "TCP/80", TCP443: "TCP/443",
		UDP53: "UDP/53", UDP443: "UDP/443",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Proto(99).String() != "proto(99)" {
		t.Error("unknown proto formatting")
	}
}

func TestIsTCP(t *testing.T) {
	if !TCP80.IsTCP() || !TCP443.IsTCP() {
		t.Error("TCP protos misclassified")
	}
	if ICMPv6.IsTCP() || UDP53.IsTCP() || UDP443.IsTCP() {
		t.Error("non-TCP protos misclassified")
	}
}

func TestRespMask(t *testing.T) {
	var m RespMask
	if m.Any() || m.Count() != 0 || m.String() != "-" {
		t.Error("zero mask wrong")
	}
	m.Set(ICMPv6)
	m.Set(UDP53)
	if !m.Has(ICMPv6) || !m.Has(UDP53) || m.Has(TCP80) {
		t.Error("Has wrong")
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d", m.Count())
	}
	if m.String() != "ICMP+UDP/53" {
		t.Errorf("String = %q", m.String())
	}
	v := m.Vector()
	if len(v) != NumProtos || !v[0] || v[1] || !v[3] {
		t.Errorf("Vector = %v", v)
	}
	// Setting twice is idempotent.
	m.Set(ICMPv6)
	if m.Count() != 2 {
		t.Error("double Set changed count")
	}
}

func TestProtosOrder(t *testing.T) {
	if len(Protos) != NumProtos {
		t.Fatal("Protos length")
	}
	for i, p := range Protos {
		if int(p) != i {
			t.Errorf("Protos[%d] = %d", i, p)
		}
	}
}
