// Package wire defines the probe/response vocabulary shared between the
// prober (the ZMapv6 analogue), the simulated Internet that answers
// probes, and the fingerprinting analyses. It plays the role gopacket's
// layer types play for real packet captures: a compact, protocol-neutral
// description of what was sent and what came back.
package wire

import (
	"fmt"
	"math/bits"

	"expanse/internal/ip6"
)

// Proto identifies one of the five probe protocols the paper scans
// (§6: "We send probes on ICMP, TCP/80, TCP/443, UDP/53, and UDP/443").
type Proto uint8

// The probed protocols, in the paper's order.
const (
	ICMPv6 Proto = iota
	TCP80
	TCP443
	UDP53
	UDP443
	NumProtos = 5
)

// Protos lists all probe protocols in canonical order.
var Protos = [NumProtos]Proto{ICMPv6, TCP80, TCP443, UDP53, UDP443}

// String returns the paper's display name for the protocol.
func (p Proto) String() string {
	switch p {
	case ICMPv6:
		return "ICMP"
	case TCP80:
		return "TCP/80"
	case TCP443:
		return "TCP/443"
	case UDP53:
		return "UDP/53"
	case UDP443:
		return "UDP/443"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// IsTCP reports whether the protocol elicits TCP option fingerprints.
func (p Proto) IsTCP() bool { return p == TCP80 || p == TCP443 }

// Time is a virtual timestamp in microseconds since the start of a
// simulation day. The prober assigns monotonically increasing send times;
// machines derive TCP timestamp values from it.
type Time uint64

// TCPInfo carries the fingerprint-relevant fields of a TCP SYN-ACK,
// mirroring the ZMap tcp_synopt module output the paper uses in §5.4.
type TCPInfo struct {
	// OptionsText is the order-preserving option layout string, e.g.
	// "MSS-SACK-TS-N-WS" ("N" is a padding byte).
	OptionsText string
	// MSS is the maximum segment size option value.
	MSS uint16
	// WScale is the window scale option value.
	WScale uint8
	// WSize is the advertised receive window.
	WSize uint16
	// TSPresent reports whether a TCP timestamp option was returned.
	TSPresent bool
	// TSVal is the remote timestamp value (only if TSPresent).
	TSVal uint32
}

// Response is the result of one probe.
type Response struct {
	// OK reports whether any positive response arrived (echo reply,
	// SYN-ACK, DNS answer, QUIC version negotiation).
	OK bool
	// HopLimit is the received hop limit, i.e. the initial TTL chosen by
	// the responder minus the path length. Zero when !OK.
	HopLimit uint8
	// TCP holds SYN-ACK option details for TCP probes that used the
	// options module; nil otherwise.
	TCP *TCPInfo
}

// Responder answers probes. The simulated Internet implements it; tests
// substitute simple fakes.
type Responder interface {
	// Probe sends one probe to dst on protocol p during simulation day
	// day at virtual time at, and reports the response.
	Probe(dst ip6.Addr, p Proto, day int, at Time) Response
}

// RespMask is a bitmask over Protos recording which protocols responded.
type RespMask uint8

// Set marks protocol p as responsive.
func (m *RespMask) Set(p Proto) { *m |= 1 << p }

// Has reports whether protocol p responded.
func (m RespMask) Has(p Proto) bool { return m&(1<<p) != 0 }

// Any reports whether any protocol responded.
func (m RespMask) Any() bool { return m != 0 }

// Count returns the number of responsive protocols.
func (m RespMask) Count() int { return bits.OnesCount8(uint8(m)) }

// Vector expands the mask to a boolean vector in Protos order, the form
// the conditional-probability matrix consumes.
func (m RespMask) Vector() []bool {
	v := make([]bool, NumProtos)
	for i, p := range Protos {
		v[i] = m.Has(p)
	}
	return v
}

// String renders the mask like "ICMP+TCP/80" ("-" when empty).
func (m RespMask) String() string {
	if m == 0 {
		return "-"
	}
	s := ""
	for _, p := range Protos {
		if m.Has(p) {
			if s != "" {
				s += "+"
			}
			s += p.String()
		}
	}
	return s
}
