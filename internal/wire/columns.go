package wire

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"expanse/internal/ip6"
)

// This file defines the columnar result vocabulary of the scan plane: the
// structure-of-arrays form of probe responses. Where Response is one
// 24-byte struct plus a heap TCPInfo per probe, a ResultColumns run is an
// OK bitset, a hop-limit byte column, and an interned-fingerprint index
// column — the shape the batched prober writes and the mask folds,
// fingerprint analyses and APD branch merges read without rematerializing
// per-probe structs.

// Bitset is a packed bit vector. Concurrent writers must not share 64-bit
// words; the scan engine guarantees this by aligning worker shards to
// 64-index boundaries.
type Bitset []uint64

// NewBitset returns a zeroed bitset covering n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Reset re-zeroes the bitset for n bits, reusing the backing array when
// large enough.
func (b *Bitset) Reset(n int) {
	words := (n + 63) / 64
	if cap(*b) < words {
		*b = make(Bitset, words)
		return
	}
	*b = (*b)[:words]
	for i := range *b {
		(*b)[i] = 0
	}
}

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (i & 63) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i>>6]>>(i&63)&1 != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Extract16 returns the 16 bits starting at bit offset off (bits beyond
// the bitset read as zero). APD folds fan-out responses into BranchMasks
// with it: one candidate's 16 branch bits in at most two word reads.
func (b Bitset) Extract16(off int) uint16 {
	w, sh := off>>6, uint(off&63)
	var v uint64
	if w < len(b) {
		v = b[w] >> sh
	}
	if sh > 48 && w+1 < len(b) {
		v |= b[w+1] << (64 - sh)
	}
	return uint16(v)
}

// TCPFingerprint is the per-machine static part of a SYN-ACK: everything
// in TCPInfo except the timestamp value, which advances per probe.
// Machine profiles are heavily cloned across addresses (one physical host
// answers for whole aliased regions), so distinct fingerprints number in
// the dozens — the reason interning them pays.
type TCPFingerprint struct {
	OptionsText string
	MSS         uint16
	WScale      uint8
	WSize       uint16
	TSPresent   bool
}

// TCPRef indexes an interned TCPFingerprint in a TCPTable. NoTCP marks
// probes without a usable SYN-ACK.
type TCPRef int32

// NoTCP is the null TCPRef.
const NoTCP TCPRef = -1

// TCPTable interns TCP fingerprints: an append-only value⇄id table safe
// for unlimited concurrent Intern/Fingerprint calls. Two refs are equal
// iff their fingerprints are field-for-field equal, which turns the §5.4
// consistency tests' string comparisons into integer compares.
//
// Ref numbering follows first-intern order, which depends on goroutine
// scheduling — refs are stable identities within one table, not
// deterministic values. Consumers compare refs or resolve them back to
// fingerprints; they must never rank or print raw ref numbers.
type TCPTable struct {
	mu   sync.Mutex
	byFP sync.Map // TCPFingerprint → TCPRef, the lock-free hit path
	fps  atomic.Pointer[[]TCPFingerprint]
}

// Intern returns the ref for fp, assigning the next id on first sight.
func (t *TCPTable) Intern(fp TCPFingerprint) TCPRef {
	if v, ok := t.byFP.Load(fp); ok {
		return v.(TCPRef)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.byFP.Load(fp); ok {
		return v.(TCPRef)
	}
	var next []TCPFingerprint
	if cur := t.fps.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, fp)
	ref := TCPRef(len(next) - 1)
	t.fps.Store(&next)
	t.byFP.Store(fp, ref)
	return ref
}

// Fingerprint resolves a ref back to its interned fingerprint.
func (t *TCPTable) Fingerprint(ref TCPRef) TCPFingerprint {
	return (*t.fps.Load())[ref]
}

// Len returns the number of interned fingerprints.
func (t *TCPTable) Len() int {
	cur := t.fps.Load()
	if cur == nil {
		return 0
	}
	return len(*cur)
}

// ResultColumns is the structure-of-arrays form of one scan's results:
// column i describes the probe of target i. Which columns exist is fixed
// at Reset time — mask-only consumers (the daily sweep, APD) carry just
// the OK bitset, fingerprint consumers carry all columns. Writers must
// check for nil columns; readers consult only columns they requested.
type ResultColumns struct {
	// Table interns TCP fingerprints for the TCPRef column; nil in
	// mask-only mode.
	Table *TCPTable
	// OK has bit i set iff target i answered.
	OK Bitset
	// HopLimit[i] is the received hop limit (0 when !OK).
	HopLimit []uint8
	// TCPRef[i] indexes the interned SYN-ACK fingerprint (NoTCP if none).
	TCPRef []TCPRef
	// TSVal[i] is the TCP timestamp value (valid iff TCPRef[i] != NoTCP
	// and the fingerprint has TSPresent).
	TSVal []uint32
	// SentAt[i] is the virtual send time of the last probe attempt.
	SentAt []Time
}

// Reset sizes all columns for n targets and clears them, reusing backing
// arrays across scans. table provides fingerprint interning.
func (c *ResultColumns) Reset(n int, table *TCPTable) {
	c.ResetOK(n)
	c.Table = table
	c.HopLimit = resetSlice(c.HopLimit, n)
	c.TSVal = resetSlice(c.TSVal, n)
	c.SentAt = resetSlice(c.SentAt, n)
	c.TCPRef = c.TCPRef[:0]
	if cap(c.TCPRef) < n {
		c.TCPRef = make([]TCPRef, n)
	} else {
		c.TCPRef = c.TCPRef[:n]
	}
	for i := range c.TCPRef {
		c.TCPRef[i] = NoTCP
	}
}

// ResetOK sizes the columns for mask-only use: just the OK bitset, the
// form the five-protocol responsiveness sweep and APD probing consume.
func (c *ResultColumns) ResetOK(n int) {
	c.OK.Reset(n)
	c.Table = nil
	c.HopLimit = nil
	c.TCPRef = nil
	c.TSVal = nil
	c.SentAt = nil
}

func resetSlice[T uint8 | uint32 | Time](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// SetResponse writes one Response into column i, interning the TCP
// fingerprint. It is the adapter between the per-probe Responder
// vocabulary and the columnar one; batch responders write columns
// directly instead.
func (c *ResultColumns) SetResponse(i int, r Response) {
	if !r.OK {
		return
	}
	c.OK.Set(i)
	if c.HopLimit != nil {
		c.HopLimit[i] = r.HopLimit
	}
	if r.TCP != nil && c.TCPRef != nil {
		c.TCPRef[i] = c.Table.Intern(TCPFingerprint{
			OptionsText: r.TCP.OptionsText,
			MSS:         r.TCP.MSS,
			WScale:      r.TCP.WScale,
			WSize:       r.TCP.WSize,
			TSPresent:   r.TCP.TSPresent,
		})
		c.TSVal[i] = r.TCP.TSVal
	}
}

// TCPInfoAt materializes column i back into a TCPInfo (nil if the probe
// carried no SYN-ACK). It exists for tests and per-probe compatibility
// paths; hot consumers read the columns directly.
func (c *ResultColumns) TCPInfoAt(i int) *TCPInfo {
	if c.TCPRef == nil || c.TCPRef[i] == NoTCP {
		return nil
	}
	fp := c.Table.Fingerprint(c.TCPRef[i])
	return &TCPInfo{
		OptionsText: fp.OptionsText,
		MSS:         fp.MSS,
		WScale:      fp.WScale,
		WSize:       fp.WSize,
		TSPresent:   fp.TSPresent,
		TSVal:       c.TSVal[i],
	}
}

// BatchResponder answers whole probe batches into result columns. The
// simulated Internet implements it to amortize destination resolution:
// sorted target runs stay inside one aliased region or subscriber
// network, so consecutive probes reuse one LPM result instead of
// re-walking a trie per packet.
//
// ProbeBatch(dsts, p, day, at, out, base) must answer probe k exactly as
// Probe(dsts[k], p, day, at[k]) would — the batched scan engine is pinned
// per-index against the single-probe reference — and write the result
// into out column base+k. Callers must ensure concurrent ProbeBatch calls
// on one out never share OK bitset words (the scan engine aligns shard
// boundaries to 64 indices).
type BatchResponder interface {
	Responder
	ProbeBatch(dsts []ip6.Addr, p Proto, day int, at []Time, out *ResultColumns, base int)
}

// ProbeBatchInto answers a batch through r, using the batched path when r
// implements BatchResponder and falling back to per-probe Probe calls
// (interning fingerprints on the way into the columns) otherwise.
func ProbeBatchInto(r Responder, dsts []ip6.Addr, p Proto, day int, at []Time, out *ResultColumns, base int) {
	if br, ok := r.(BatchResponder); ok {
		br.ProbeBatch(dsts, p, day, at, out, base)
		return
	}
	for k, dst := range dsts {
		out.SetResponse(base+k, r.Probe(dst, p, day, at[k]))
	}
}
