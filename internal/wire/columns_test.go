package wire

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if len(b) != 3 {
		t.Fatalf("words = %d", len(b))
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("count = %d", b.Count())
	}
	b.Reset(130)
	if b.Count() != 0 {
		t.Fatal("Reset left bits")
	}
	b.Reset(300)
	if len(b) != 5 {
		t.Fatalf("grown words = %d", len(b))
	}
}

// TestBitsetExtract16 pins the windowed extraction against per-bit reads,
// including windows straddling word boundaries and the bitset's end.
func TestBitsetExtract16(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	b := NewBitset(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	for off := 0; off < n; off += 5 {
		var want uint16
		for j := 0; j < 16; j++ {
			if off+j < n && b.Get(off+j) {
				want |= 1 << j
			}
		}
		if got := b.Extract16(off); got != want {
			t.Fatalf("Extract16(%d) = %04x, want %04x", off, got, want)
		}
	}
}

func TestTCPTableIntern(t *testing.T) {
	var tab TCPTable
	a := TCPFingerprint{OptionsText: "MSS-SACK-TS-N-WS", MSS: 1440, WScale: 7, WSize: 28800, TSPresent: true}
	b := a
	b.WSize++
	ra, rb := tab.Intern(a), tab.Intern(b)
	if ra == rb {
		t.Fatal("distinct fingerprints interned to one ref")
	}
	if tab.Intern(a) != ra || tab.Intern(b) != rb {
		t.Fatal("re-interning changed refs")
	}
	if tab.Len() != 2 {
		t.Fatalf("table len = %d", tab.Len())
	}
	if tab.Fingerprint(ra) != a || tab.Fingerprint(rb) != b {
		t.Fatal("Fingerprint roundtrip failed")
	}
}

// TestTCPTableConcurrent hammers one table from many goroutines: refs
// must stay consistent (equal fingerprints → equal refs, refs resolve
// back to their fingerprints). Run under -race in CI.
func TestTCPTableConcurrent(t *testing.T) {
	var tab TCPTable
	fps := make([]TCPFingerprint, 24)
	for i := range fps {
		fps[i] = TCPFingerprint{OptionsText: "MSS", MSS: uint16(i), WSize: 100}
	}
	var wg sync.WaitGroup
	refs := make([][]TCPRef, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			refs[g] = make([]TCPRef, len(fps))
			for i, fp := range fps {
				refs[g][i] = tab.Intern(fp)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range fps {
			if refs[g][i] != refs[0][i] {
				t.Fatalf("goroutine %d got ref %d for fp %d, want %d", g, refs[g][i], i, refs[0][i])
			}
		}
	}
	if tab.Len() != len(fps) {
		t.Fatalf("table len = %d, want %d", tab.Len(), len(fps))
	}
	for i, fp := range fps {
		if tab.Fingerprint(refs[0][i]) != fp {
			t.Fatalf("fingerprint %d does not roundtrip", i)
		}
	}
}

// TestResultColumnsRoundtrip pins SetResponse/TCPInfoAt as inverses: a
// Response pushed through the columns materializes back identically.
func TestResultColumnsRoundtrip(t *testing.T) {
	var tab TCPTable
	var cols ResultColumns
	cols.Reset(3, &tab)
	responses := []Response{
		{},
		{OK: true, HopLimit: 55},
		{OK: true, HopLimit: 240, TCP: &TCPInfo{
			OptionsText: "MSS-SACK-TS-N-WS", MSS: 1440, WScale: 7, WSize: 28800,
			TSPresent: true, TSVal: 12345,
		}},
	}
	for i, r := range responses {
		cols.SetResponse(i, r)
	}
	if cols.OK.Get(0) || !cols.OK.Get(1) || !cols.OK.Get(2) {
		t.Fatal("OK bits wrong")
	}
	if cols.HopLimit[1] != 55 || cols.HopLimit[2] != 240 {
		t.Fatal("hop limits wrong")
	}
	if cols.TCPInfoAt(0) != nil || cols.TCPInfoAt(1) != nil {
		t.Fatal("phantom TCP info")
	}
	if got := cols.TCPInfoAt(2); got == nil || *got != *responses[2].TCP {
		t.Fatalf("TCP roundtrip = %+v", got)
	}
	// Reset reuses arrays but clears state.
	cols.Reset(3, &tab)
	if cols.OK.Count() != 0 || cols.TCPRef[2] != NoTCP || cols.TSVal[2] != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestRespMaskCountExhaustive(t *testing.T) {
	for m := 0; m < 1<<NumProtos; m++ {
		mask := RespMask(m)
		want := 0
		for _, p := range Protos {
			if mask.Has(p) {
				want++
			}
		}
		if mask.Count() != want {
			t.Fatalf("Count(%05b) = %d, want %d", m, mask.Count(), want)
		}
	}
}
