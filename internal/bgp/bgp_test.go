package bgp

import (
	"math/rand"
	"testing"

	"expanse/internal/ip6"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable()
	tb.Register(ASInfo{ASN: 64496, Name: "Example", Kind: KindHoster, Country: "DE"})
	p := ip6.MustParsePrefix("2001:db8::/32")
	tb.Announce(p, 64496)

	got, asn, ok := tb.Lookup(ip6.MustParseAddr("2001:db8::1"))
	if !ok || asn != 64496 || got != p {
		t.Fatalf("Lookup = %v,%d,%v", got, asn, ok)
	}
	if _, _, ok := tb.Lookup(ip6.MustParseAddr("2001:db9::1")); ok {
		t.Error("unrouted address matched")
	}
	if !tb.IsRouted(ip6.MustParseAddr("2001:db8::1")) {
		t.Error("IsRouted false for routed address")
	}
	if asn, ok := tb.Origin(ip6.MustParseAddr("2001:db8::1")); !ok || asn != 64496 {
		t.Error("Origin wrong")
	}
	if info := tb.AS(64496); info.Name != "Example" {
		t.Error("registry lookup wrong")
	}
	if info := tb.AS(65000); info.Name != "AS65000" {
		t.Errorf("placeholder name = %q", info.Name)
	}
}

func TestMoreSpecificWins(t *testing.T) {
	tb := NewTable()
	tb.Announce(ip6.MustParsePrefix("2001:db8::/32"), 1)
	tb.Announce(ip6.MustParsePrefix("2001:db8:1::/48"), 2)
	if _, asn, _ := tb.Lookup(ip6.MustParseAddr("2001:db8:1::5")); asn != 2 {
		t.Errorf("more specific not preferred: ASN %d", asn)
	}
	if _, asn, _ := tb.Lookup(ip6.MustParseAddr("2001:db8:2::5")); asn != 1 {
		t.Errorf("covering prefix not used: ASN %d", asn)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := RegistryConfig{ASes: 100, PrefixesPerAS: 3, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.NumPrefixes() != b.NumPrefixes() || a.NumASes() != b.NumASes() {
		t.Fatal("generation not deterministic in counts")
	}
	pa, pb := a.Announcements(), b.Announcements()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("announcement %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestGenerateShape(t *testing.T) {
	tb := Generate(RegistryConfig{ASes: 500, PrefixesPerAS: 4.5, Seed: 1})
	if tb.NumASes() != 500+len(Majors) {
		t.Errorf("ASes = %d", tb.NumASes())
	}
	// Every announcement's origin is registered and every prefix is
	// between /29 and /48.
	for _, ann := range tb.Announcements() {
		if ann.Prefix.Bits() < 29 || ann.Prefix.Bits() > 48 {
			t.Fatalf("prefix length out of range: %v", ann.Prefix)
		}
		if tb.AS(ann.Origin).Name == "" {
			t.Fatalf("unregistered origin %d", ann.Origin)
		}
	}
	// Amazon must announce its 189 /48s plus 2 /32s.
	amazon := FindASN("Amazon")
	ps := tb.PrefixesOf(amazon)
	n48 := 0
	for _, p := range ps {
		if p.Bits() == 48 {
			n48++
		}
	}
	if n48 != 189 {
		t.Errorf("Amazon /48 count = %d, want 189", n48)
	}
	// Announcements must not collide across ASes: every /29 allocation is
	// distinct, so lookups of random addresses inside a prefix must return
	// the same origin as the announcement (or a more specific one from the
	// same AS).
	rng := rand.New(rand.NewSource(2))
	anns := tb.Announcements()
	for i := 0; i < 300; i++ {
		ann := anns[rng.Intn(len(anns))]
		a := ann.Prefix.RandomAddr(rng)
		_, asn, ok := tb.Lookup(a)
		if !ok {
			t.Fatalf("address %v inside announced %v not routed", a, ann.Prefix)
		}
		if asn != ann.Origin {
			// A more specific of another AS would be a generation bug.
			t.Fatalf("address %v: origin %d, announced %v by %d", a, asn, ann.Prefix, ann.Origin)
		}
	}
}

func TestGenerateScalesRoughly(t *testing.T) {
	cfg := DefaultRegistryConfig()
	tb := Generate(cfg)
	// ~2.2k ASes -> expect prefix count an order of magnitude above AS
	// count is wrong; should be a few per AS.
	ratio := float64(tb.NumPrefixes()) / float64(tb.NumASes())
	if ratio < 1.5 || ratio > 12 {
		t.Errorf("prefixes per AS = %.1f, outside plausible range", ratio)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindCDN: "cdn", KindCloud: "cloud", KindHoster: "hoster",
		KindISP: "isp", KindAcademic: "academic", KindEnterprise: "enterprise",
		KindInternetService: "service",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestFindASN(t *testing.T) {
	if FindASN("Amazon") == 0 {
		t.Error("Amazon not found")
	}
	if FindASN("NotAnAS") != 0 {
		t.Error("unknown AS should yield 0")
	}
}

func TestASesSorted(t *testing.T) {
	tb := Generate(RegistryConfig{ASes: 50, PrefixesPerAS: 2, Seed: 3})
	ases := tb.ASes()
	for i := 1; i < len(ases); i++ {
		if ases[i-1].ASN >= ases[i].ASN {
			t.Fatal("ASes() not sorted")
		}
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tb := Generate(DefaultRegistryConfig())
	rng := rand.New(rand.NewSource(9))
	anns := tb.Announcements()
	addrs := make([]ip6.Addr, 4096)
	for i := range addrs {
		addrs[i] = anns[rng.Intn(len(anns))].Prefix.RandomAddr(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(addrs[i%len(addrs)])
	}
}
