// Package bgp provides the routing substrate for the hitlist pipeline: a
// table of announced IPv6 prefixes with origin ASes (longest-prefix match
// backed by a radix trie), an AS registry with operator names and
// categories, and a generator that builds a synthetic-but-realistic global
// routing table for the simulated Internet.
//
// The paper resolves every hitlist address to its announced BGP prefix and
// origin AS (via pyasn over RIB dumps); this package plays that role.
package bgp

import (
	"fmt"
	"math/rand"
	"sort"

	"expanse/internal/ip6"
)

// ASN is an autonomous system number.
type ASN uint32

// Kind categorizes an AS by its dominant business; the simulator derives
// addressing schemes, host density, and aliasing behaviour from it.
type Kind int

// AS categories. The distribution over kinds drives hitlist bias: CDNs
// dominate DNS-derived sources, ISPs dominate traceroute-derived ones.
const (
	KindCDN Kind = iota
	KindCloud
	KindHoster
	KindISP
	KindAcademic
	KindEnterprise
	KindInternetService // search, mail, SaaS
	numKinds
)

// String returns a short human-readable category name.
func (k Kind) String() string {
	switch k {
	case KindCDN:
		return "cdn"
	case KindCloud:
		return "cloud"
	case KindHoster:
		return "hoster"
	case KindISP:
		return "isp"
	case KindAcademic:
		return "academic"
	case KindEnterprise:
		return "enterprise"
	case KindInternetService:
		return "service"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ASInfo describes a registered autonomous system.
type ASInfo struct {
	ASN     ASN
	Name    string
	Kind    Kind
	Country string // ISO 3166-1 alpha-2
}

// Announcement is one routing-table entry.
type Announcement struct {
	Prefix ip6.Prefix
	Origin ASN
}

// Table is an IPv6 routing table: announced prefixes with origin ASes and
// the AS registry. The zero value is an empty table ready for Announce.
type Table struct {
	trie ip6.Trie[ASN]
	as   map[ASN]ASInfo
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{as: make(map[ASN]ASInfo)}
}

// Register adds (or replaces) an AS in the registry.
func (t *Table) Register(info ASInfo) {
	if t.as == nil {
		t.as = make(map[ASN]ASInfo)
	}
	t.as[info.ASN] = info
}

// Announce inserts a prefix announcement. Re-announcing a prefix replaces
// its origin.
func (t *Table) Announce(p ip6.Prefix, origin ASN) {
	t.trie.Insert(p, origin)
}

// Lookup returns the most specific announced prefix covering a and its
// origin AS.
func (t *Table) Lookup(a ip6.Addr) (ip6.Prefix, ASN, bool) {
	return t.trie.Lookup(a)
}

// Origin returns only the origin AS for a (0, false if unrouted).
func (t *Table) Origin(a ip6.Addr) (ASN, bool) {
	_, asn, ok := t.trie.Lookup(a)
	return asn, ok
}

// IsRouted reports whether any announced prefix covers a.
func (t *Table) IsRouted(a ip6.Addr) bool {
	return t.trie.Covers(a)
}

// AS returns registry information for an ASN. Unregistered ASNs yield a
// placeholder with a synthesized name.
func (t *Table) AS(asn ASN) ASInfo {
	if info, ok := t.as[asn]; ok {
		return info
	}
	return ASInfo{ASN: asn, Name: fmt.Sprintf("AS%d", asn), Kind: KindEnterprise, Country: "ZZ"}
}

// NumPrefixes returns the number of announced prefixes.
func (t *Table) NumPrefixes() int { return t.trie.Len() }

// NumASes returns the number of registered ASes.
func (t *Table) NumASes() int { return len(t.as) }

// Announcements returns every announcement ordered by address then length.
func (t *Table) Announcements() []Announcement {
	out := make([]Announcement, 0, t.trie.Len())
	t.trie.Walk(func(p ip6.Prefix, asn ASN) bool {
		out = append(out, Announcement{Prefix: p, Origin: asn})
		return true
	})
	return out
}

// ASes returns all registered ASes sorted by ASN.
func (t *Table) ASes() []ASInfo {
	out := make([]ASInfo, 0, len(t.as))
	for _, info := range t.as {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// PrefixesOf returns all announcements originated by asn, ordered.
func (t *Table) PrefixesOf(asn ASN) []ip6.Prefix {
	var out []ip6.Prefix
	t.trie.Walk(func(p ip6.Prefix, a ASN) bool {
		if a == asn {
			out = append(out, p)
		}
		return true
	})
	return out
}

// RegistryConfig controls synthetic routing-table generation.
type RegistryConfig struct {
	// ASes is the number of autonomous systems beyond the named majors.
	ASes int
	// PrefixesPerAS is the mean number of announcements per synthetic AS
	// (geometric-ish tail; majors announce many more).
	PrefixesPerAS float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultRegistryConfig mirrors the paper's scale at roughly 1:5 — the
// paper sees 10.9k ASes and ~56k announced prefixes; the default builds
// ~2.2k ASes and ~11k prefixes, preserving the shape of the distributions
// while keeping a full pipeline run fast.
func DefaultRegistryConfig() RegistryConfig {
	return RegistryConfig{ASes: 2200, PrefixesPerAS: 4.5, Seed: 0x1970}
}

// Majors are the operators named in the paper's tables; the simulator
// gives them the roles the paper observed (Amazon hosting the aliased /48
// "hook", DTAG as a large ISP, and so on). Exported so that reports can
// label them.
var Majors = []ASInfo{
	{ASN: 16509, Name: "Amazon", Kind: KindCloud, Country: "US"},
	{ASN: 20773, Name: "Host Europe", Kind: KindHoster, Country: "DE"},
	{ASN: 13335, Name: "Cloudflare", Kind: KindCDN, Country: "US"},
	{ASN: 63949, Name: "Linode", Kind: KindCloud, Country: "US"},
	{ASN: 3320, Name: "DTAG", Kind: KindISP, Country: "DE"},
	{ASN: 12322, Name: "ProXad", Kind: KindISP, Country: "FR"},
	{ASN: 24940, Name: "Hetzner", Kind: KindHoster, Country: "DE"},
	{ASN: 7922, Name: "Comcast", Kind: KindISP, Country: "US"},
	{ASN: 3303, Name: "Swisscom", Kind: KindISP, Country: "CH"},
	{ASN: 15169, Name: "Google", Kind: KindInternetService, Country: "US"},
	{ASN: 6057, Name: "Antel", Kind: KindISP, Country: "UY"},
	{ASN: 8881, Name: "Versatel", Kind: KindISP, Country: "DE"},
	{ASN: 9146, Name: "BIHNET", Kind: KindISP, Country: "BA"},
	{ASN: 20940, Name: "Akamai", Kind: KindCDN, Country: "US"},
	{ASN: 19551, Name: "Incapsula", Kind: KindCDN, Country: "US"},
	{ASN: 7018, Name: "AT&T", Kind: KindISP, Country: "US"},
	{ASN: 55836, Name: "Reliance", Kind: KindISP, Country: "IN"},
	{ASN: 12876, Name: "Online S.A.S.", Kind: KindHoster, Country: "FR"},
	{ASN: 47583, Name: "Sunokman", Kind: KindHoster, Country: "AM"},
	{ASN: 2588, Name: "Latnet Serviss", Kind: KindHoster, Country: "LV"},
	{ASN: 13238, Name: "Yandex", Kind: KindInternetService, Country: "RU"},
	{ASN: 14340, Name: "Salesforce", Kind: KindInternetService, Country: "US"},
	{ASN: 6697, Name: "Belpak", Kind: KindISP, Country: "BY"},
	{ASN: 22606, Name: "AWeber", Kind: KindInternetService, Country: "US"},
	{ASN: 2519, Name: "Freebit", Kind: KindHoster, Country: "JP"},
	{ASN: 9370, Name: "Sakura", Kind: KindHoster, Country: "JP"},
	{ASN: 20857, Name: "TransIP", Kind: KindHoster, Country: "NL"},
	{ASN: 5607, Name: "Sky Broadband", Kind: KindISP, Country: "GB"},
	{ASN: 16591, Name: "Google Fiber", Kind: KindISP, Country: "US"},
	{ASN: 3265, Name: "Xs4all", Kind: KindISP, Country: "NL"},
	{ASN: 33915, Name: "HDNet", Kind: KindCDN, Country: "NL"},
	{ASN: 1955, Name: "ZTE Home", Kind: KindISP, Country: "CN"},
}

// countries used for the synthetic AS tail, weighted toward IPv6-heavy
// economies (matters for the crowdsourcing study in §9).
var tailCountries = []string{
	"US", "DE", "FR", "GB", "NL", "JP", "IN", "BR", "CN", "RU",
	"IT", "ES", "PL", "SE", "CH", "BE", "AT", "CZ", "FI", "GR",
	"CA", "AU", "KR", "MX", "AR", "ZA", "TR", "UA", "RO", "PT",
}

// Generate builds a deterministic synthetic global IPv6 routing table.
//
// Layout of the synthetic address space: every AS is carved out of
// 2a00::/12-style documentation-safe space by index, so prefixes never
// collide. Each AS gets a /29 "allocation" from which it announces:
//   - one or more /32s (the common RIR allocation unit, cf. §4.2),
//   - possibly /48 more-specifics (PI space, customer routes, CDN PoPs).
//
// Majors get role-appropriate announcements, most importantly Amazon's
// and Incapsula's many /48s that form the aliased "hook" of Figure 5.
func Generate(cfg RegistryConfig) *Table {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := NewTable()

	allocIdx := uint64(0)
	// nextAlloc returns a fresh /29 so every AS's space is disjoint:
	// 2000::/3 + 26 bits of index.
	nextAlloc := func() ip6.Prefix {
		base := ip6.AddrFromUint64(0x2000_0000_0000_0000|allocIdx<<35, 0)
		allocIdx++
		return ip6.PrefixFrom(base, 29)
	}

	for _, m := range Majors {
		t.Register(m)
		alloc := nextAlloc()
		switch m.Kind {
		case KindCloud, KindCDN:
			// A couple of /32s plus a swarm of /48s (PoPs, customer
			// ranges). Amazon and Incapsula get the big /48 groups that
			// dominate aliasing in §5.3.
			n48 := 12 + rng.Intn(12)
			if m.Name == "Amazon" {
				n48 = 189 // the paper: "189 /48 prefixes announced by Amazon"
			}
			if m.Name == "Incapsula" {
				n48 = 64
			}
			for i := 0; i < 2; i++ {
				t.Announce(alloc.Subprefix(32, uint64(i)), m.ASN)
			}
			for i := 0; i < n48; i++ {
				// /48s inside the third /32 of the allocation.
				p32 := alloc.Subprefix(32, 2)
				t.Announce(p32.Subprefix(48, uint64(i)), m.ASN)
			}
		case KindISP:
			// ISPs: one short prefix (/29 or /32) plus a handful of
			// regional /32-/36 more-specifics.
			t.Announce(alloc, m.ASN)
			for i := 0; i < 3+rng.Intn(5); i++ {
				t.Announce(alloc.Subprefix(32+4*rng.Intn(2), uint64(i)), m.ASN)
			}
		default:
			t.Announce(alloc.Subprefix(32, 0), m.ASN)
			for i := 0; i < rng.Intn(4); i++ {
				t.Announce(alloc.Subprefix(48, uint64(i)), m.ASN)
			}
		}
	}

	// Synthetic tail: ASNs from 100000 up (32-bit space), mixed kinds.
	for i := 0; i < cfg.ASes; i++ {
		asn := ASN(100000 + i)
		kind := pickKind(rng)
		t.Register(ASInfo{
			ASN:     asn,
			Name:    fmt.Sprintf("%s-net-%d", kind, i),
			Kind:    kind,
			Country: tailCountries[rng.Intn(len(tailCountries))],
		})
		alloc := nextAlloc()
		// Number of announcements: 1 + geometric tail around the mean.
		n := 1
		for rng.Float64() < 1-1/cfg.PrefixesPerAS && n < 40 {
			n++
		}
		t.Announce(alloc.Subprefix(32, 0), asn)
		for j := 1; j < n; j++ {
			length := 32 + 4*rng.Intn(5) // /32../48
			t.Announce(alloc.Subprefix(length, uint64(j)), asn)
		}
	}
	return t
}

func pickKind(rng *rand.Rand) Kind {
	// Rough global mix: ISPs and hosters dominate AS counts.
	r := rng.Float64()
	switch {
	case r < 0.40:
		return KindISP
	case r < 0.62:
		return KindHoster
	case r < 0.72:
		return KindEnterprise
	case r < 0.82:
		return KindAcademic
	case r < 0.90:
		return KindInternetService
	case r < 0.96:
		return KindCloud
	default:
		return KindCDN
	}
}

// FindASN returns the ASN of the named major operator, or 0 if unknown.
func FindASN(name string) ASN {
	for _, m := range Majors {
		if m.Name == name {
			return m.ASN
		}
	}
	return 0
}
