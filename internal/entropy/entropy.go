// Package entropy implements the paper's entropy-fingerprint analysis
// (§4): for a set of IPv6 addresses grouped by network, compute the
// normalized Shannon entropy of every nybble position, producing a
// fingerprint vector F_ab that characterizes the network's addressing
// scheme. Clustering these fingerprints (internal/cluster) reveals that
// the entire hitlist uses just a handful of schemes.
package entropy

import (
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/stats"
)

// MinGroupSize is the paper's minimum sample: groups with fewer addresses
// are skipped (equation (1): n >= 100).
const MinGroupSize = 100

// Fingerprint computes F_ab for a set of addresses: the normalized
// entropy of nybbles a..b, 1-based inclusive as in the paper (a=9, b=32
// is the full-address fingerprint F932 after the /32 network part; a=17,
// b=32 is the IID fingerprint F1732).
func Fingerprint(addrs []ip6.Addr, a, b int) []float64 {
	if a < 1 {
		a = 1
	}
	if b > 32 {
		b = 32
	}
	if b < a {
		return nil
	}
	counts := make([][16]int, b-a+1)
	for _, addr := range addrs {
		for j := a; j <= b; j++ {
			counts[j-a][addr.Nybble(j-1)]++
		}
	}
	fp := make([]float64, b-a+1)
	for i := range counts {
		fp[i] = stats.Entropy4(&counts[i])
	}
	return fp
}

// Group is a network (a /32, a BGP prefix, or an AS) with its sampled
// addresses' fingerprint.
type Group struct {
	// Key identifies the network (prefix string or "AS<n>").
	Key string
	// Prefix is set for prefix-based grouping (zero for AS grouping).
	Prefix ip6.Prefix
	// ASN is set for AS-based grouping (and best-effort otherwise).
	ASN bgp.ASN
	// Size is the number of addresses the fingerprint was computed from.
	Size int
	// FP is the fingerprint vector.
	FP []float64
}

// ByPrefixLen groups addresses by their enclosing fixed-length prefix
// (the paper's default: /32, "commonly the smallest blocks assigned to
// IPv6 networks") and fingerprints every group with at least min
// addresses over nybbles a..b. Groups are returned sorted by size
// descending, then by prefix.
func ByPrefixLen(addrs []ip6.Addr, bits, min, a, b int) []Group {
	if min <= 0 {
		min = MinGroupSize
	}
	buckets := make(map[ip6.Prefix][]ip6.Addr)
	for _, addr := range addrs {
		p := ip6.PrefixFrom(addr, bits)
		buckets[p] = append(buckets[p], addr)
	}
	return finish(buckets, nil, min, a, b)
}

// ByBGPPrefix groups addresses by their announced prefix. Unrouted
// addresses are skipped.
func ByBGPPrefix(addrs []ip6.Addr, table *bgp.Table, min, a, b int) []Group {
	if min <= 0 {
		min = MinGroupSize
	}
	buckets := make(map[ip6.Prefix][]ip6.Addr)
	origins := make(map[ip6.Prefix]bgp.ASN)
	for _, addr := range addrs {
		p, asn, ok := table.Lookup(addr)
		if !ok {
			continue
		}
		buckets[p] = append(buckets[p], addr)
		origins[p] = asn
	}
	return finish(buckets, origins, min, a, b)
}

// ByAS groups addresses by origin AS. Unrouted addresses are skipped.
func ByAS(addrs []ip6.Addr, table *bgp.Table, min, a, b int) []Group {
	if min <= 0 {
		min = MinGroupSize
	}
	buckets := make(map[bgp.ASN][]ip6.Addr)
	for _, addr := range addrs {
		if asn, ok := table.Origin(addr); ok {
			buckets[asn] = append(buckets[asn], addr)
		}
	}
	var out []Group
	for asn, list := range buckets {
		if len(list) < min {
			continue
		}
		out = append(out, Group{
			Key:  "AS" + itoa(uint64(asn)),
			ASN:  asn,
			Size: len(list),
			FP:   Fingerprint(list, a, b),
		})
	}
	sortGroups(out)
	return out
}

func finish(buckets map[ip6.Prefix][]ip6.Addr, origins map[ip6.Prefix]bgp.ASN, min, a, b int) []Group {
	var out []Group
	for p, list := range buckets {
		if len(list) < min {
			continue
		}
		g := Group{
			Key:    p.String(),
			Prefix: p,
			Size:   len(list),
			FP:     Fingerprint(list, a, b),
		}
		if origins != nil {
			g.ASN = origins[p]
		}
		out = append(out, g)
	}
	sortGroups(out)
	return out
}

func sortGroups(gs []Group) {
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Size != gs[j].Size {
			return gs[i].Size > gs[j].Size
		}
		return gs[i].Key < gs[j].Key
	})
}

// Vectors extracts the fingerprint matrix for clustering.
func Vectors(gs []Group) [][]float64 {
	out := make([][]float64, len(gs))
	for i, g := range gs {
		out[i] = g.FP
	}
	return out
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
