// Package entropy implements the paper's entropy-fingerprint analysis
// (§4): for a set of IPv6 addresses grouped by network, compute the
// normalized Shannon entropy of every nybble position, producing a
// fingerprint vector F_ab that characterizes the network's addressing
// scheme. Clustering these fingerprints (internal/cluster) reveals that
// the entire hitlist uses just a handful of schemes.
//
// The grouping stage consumes the data plane's cached globally-sorted
// view (ip6.AddrSeq) instead of a materialized []Addr: in a sorted view
// every fixed-length-prefix group is a contiguous run, so ByPrefixLen is
// a boundary scan over zero-copy views rather than a map-bucketing pass.
// BGP/AS grouping batches table lookups over worker chunks, and per-group
// fingerprint counting fans out over worker shards; every result is
// byte-identical for every worker count (nybble counts are integers, and
// chunk merges always happen in input order).
package entropy

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/stats"
)

// MinGroupSize is the paper's minimum sample: groups with fewer addresses
// are skipped (equation (1): n >= 100).
const MinGroupSize = 100

// parallelMin is the sequence length below which fingerprint counting is
// not worth fanning out: a 16-bucket histogram over a few thousand
// addresses is cheaper than the goroutine round trip.
const parallelMin = 1 << 12

// Fingerprint computes F_ab for a set of addresses: the normalized
// entropy of nybbles a..b, 1-based inclusive as in the paper (a=9, b=32
// is the full-address fingerprint F932 after the /32 network part; a=17,
// b=32 is the IID fingerprint F1732).
func Fingerprint(addrs []ip6.Addr, a, b int) []float64 {
	return FingerprintSeq(ip6.Addrs(addrs), a, b, 1)
}

// FingerprintSeq computes F_ab over an indexed address view, fanning the
// nybble counting out over up to workers chunks. Counts are integers and
// the chunk partials are summed position-wise, so the result is identical
// for every worker count.
func FingerprintSeq(addrs ip6.AddrSeq, a, b, workers int) []float64 {
	if a < 1 {
		a = 1
	}
	if b > 32 {
		b = 32
	}
	if b < a {
		return nil
	}
	counts := countNybbles(addrs, a, b, workers)
	fp := make([]float64, b-a+1)
	for i := range counts {
		fp[i] = stats.Entropy4(&counts[i])
	}
	return fp
}

// countNybbles tallies the per-position nybble histograms of addrs over
// positions a..b (1-based). With workers > 1 and a long enough sequence
// the tally is chunk-parallel; partial histograms are added together, so
// the merged counts never depend on the chunking.
func countNybbles(addrs ip6.AddrSeq, a, b, workers int) [][16]int {
	n := addrs.Len()
	counts := make([][16]int, b-a+1)
	if workers <= 1 || n < parallelMin {
		tally(addrs, a, b, 0, n, counts)
		return counts
	}
	w := chunkCount(n, workers, parallelMin)
	partials := make([][][16]int, w)
	forChunks(n, w, func(c, lo, hi int) {
		part := make([][16]int, b-a+1)
		tally(addrs, a, b, lo, hi, part)
		partials[c] = part
	})
	for _, part := range partials {
		for i := range counts {
			for v := 0; v < 16; v++ {
				counts[i][v] += part[i][v]
			}
		}
	}
	return counts
}

// chunkCount clamps a worker count so each contiguous chunk of [0, n)
// gets at least minPer elements (always at least one chunk).
func chunkCount(n, w, minPer int) int {
	if w <= 0 {
		w = 1
	}
	if w > n/minPer+1 {
		w = n/minPer + 1
	}
	return w
}

// forChunks splits [0, n) into nChunks contiguous chunks and runs
// fn(chunkIndex, lo, hi) on every chunk concurrently.
func forChunks(n, nChunks int, fn func(c, lo, hi int)) {
	chunk := (n + nChunks - 1) / nChunks
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}(c)
	}
	wg.Wait()
}

func tally(addrs ip6.AddrSeq, a, b, lo, hi int, counts [][16]int) {
	for i := lo; i < hi; i++ {
		addr := addrs.At(i)
		for j := a; j <= b; j++ {
			counts[j-a][addr.Nybble(j-1)]++
		}
	}
}

// Group is a network (a /32, a BGP prefix, or an AS) with its sampled
// addresses' fingerprint.
type Group struct {
	// Key identifies the network (prefix string or "AS<n>").
	Key string
	// Prefix is set for prefix-based grouping (zero for AS grouping).
	Prefix ip6.Prefix
	// ASN is set for AS-based grouping (and best-effort otherwise).
	ASN bgp.ASN
	// Size is the number of addresses the fingerprint was computed from.
	Size int
	// FP is the fingerprint vector.
	FP []float64
}

// ByPrefixLen groups addresses by their enclosing fixed-length prefix
// (the paper's default: /32, "commonly the smallest blocks assigned to
// IPv6 networks") and fingerprints every group with at least min
// addresses over nybbles a..b. Groups are returned sorted by size
// descending, then by prefix.
//
// sorted MUST be in ascending address order — pass the store's cached
// sorted view (ShardSet.SortedSeq). Fixed-length-prefix groups are then
// contiguous runs, located by a galloping boundary scan; nothing is
// materialized or map-bucketed. Fingerprints fan out over workers.
func ByPrefixLen(sorted ip6.AddrSeq, bits, min, a, b, workers int) []Group {
	if min <= 0 {
		min = MinGroupSize
	}
	type run struct {
		p      ip6.Prefix
		lo, hi int
	}
	var runs []run
	ip6.PrefixRuns(sorted, bits, func(p ip6.Prefix, lo, hi int) bool {
		if hi-lo >= min {
			runs = append(runs, run{p: p, lo: lo, hi: hi})
		}
		return true
	})
	out := make([]Group, len(runs))
	fingerprintEach(len(runs), workers, func(i, w int) {
		r := runs[i]
		out[i] = Group{
			Key:    r.p.String(),
			Prefix: r.p,
			Size:   r.hi - r.lo,
			FP:     FingerprintSeq(ip6.SeqSlice(sorted, r.lo, r.hi), a, b, w),
		}
	})
	sortGroups(out)
	return out
}

// pfxBucket accumulates one BGP prefix group during the parallel
// lookup+bucket stage.
type pfxBucket struct {
	asn bgp.ASN
	idx []int32
}

// ByBGPPrefix groups addresses by their announced prefix. Unrouted
// addresses are skipped. Lookups run batched over worker chunks (the
// routing trie is immutable, so lookups are safe to fan out); chunk
// buckets are merged in input order, so group membership, sizes and
// fingerprints are identical for every worker count.
func ByBGPPrefix(addrs ip6.AddrSeq, table *bgp.Table, min, a, b, workers int) []Group {
	if min <= 0 {
		min = MinGroupSize
	}
	chunks := lookupChunks(addrs, workers, func(addr ip6.Addr) (ip6.Prefix, bgp.ASN, bool) {
		return table.Lookup(addr)
	})
	// Merge chunk-major: chunks partition the input in order, so per-prefix
	// index lists follow input order and the first-seen key order is the
	// global first-occurrence order, independent of the worker count.
	buckets := make(map[ip6.Prefix]*pfxBucket)
	order := make([]ip6.Prefix, 0, 64)
	for _, ch := range chunks {
		for _, p := range ch.order {
			e := ch.m[p]
			g, ok := buckets[p]
			if !ok {
				g = &pfxBucket{asn: e.asn}
				buckets[p] = g
				order = append(order, p)
			}
			g.idx = append(g.idx, e.idx...)
		}
	}
	var kept []ip6.Prefix
	for _, p := range order {
		if len(buckets[p].idx) >= min {
			kept = append(kept, p)
		}
	}
	out := make([]Group, len(kept))
	fingerprintEach(len(kept), workers, func(i, w int) {
		p := kept[i]
		g := buckets[p]
		out[i] = Group{
			Key:    p.String(),
			Prefix: p,
			ASN:    g.asn,
			Size:   len(g.idx),
			FP:     FingerprintSeq(idxSeq{seq: addrs, idx: g.idx}, a, b, w),
		}
	})
	sortGroups(out)
	return out
}

// ByAS groups addresses by origin AS. Unrouted addresses are skipped.
// Like ByBGPPrefix, origin lookups are batched over worker chunks with an
// input-order merge.
func ByAS(addrs ip6.AddrSeq, table *bgp.Table, min, a, b, workers int) []Group {
	if min <= 0 {
		min = MinGroupSize
	}
	chunks := lookupChunks(addrs, workers, func(addr ip6.Addr) (bgp.ASN, bgp.ASN, bool) {
		asn, ok := table.Origin(addr)
		return asn, asn, ok
	})
	byAS := make(map[bgp.ASN][]int32)
	var order []bgp.ASN
	for _, ch := range chunks {
		for _, asn := range ch.order {
			if _, ok := byAS[asn]; !ok {
				order = append(order, asn)
			}
			byAS[asn] = append(byAS[asn], ch.m[asn].idx...)
		}
	}
	var kept []bgp.ASN
	for _, asn := range order {
		if len(byAS[asn]) >= min {
			kept = append(kept, asn)
		}
	}
	out := make([]Group, len(kept))
	fingerprintEach(len(kept), workers, func(i, w int) {
		asn := kept[i]
		idx := byAS[asn]
		out[i] = Group{
			Key:  "AS" + itoa(uint64(asn)),
			ASN:  asn,
			Size: len(idx),
			FP:   FingerprintSeq(idxSeq{seq: addrs, idx: idx}, a, b, w),
		}
	})
	sortGroups(out)
	return out
}

// lookupChunk is one worker's bucketed lookup results: per-key entries
// plus first-seen key order, so the merge can stay deterministic.
type lookupChunk[K comparable] struct {
	m     map[K]*chunkEntry
	order []K
}

type chunkEntry struct {
	asn bgp.ASN
	idx []int32
}

// lookupChunks splits addrs into up to workers contiguous chunks and runs
// the lookup over each concurrently, bucketing hit indices by key (the
// announced prefix or the origin ASN). The routing trie is immutable
// after construction, so concurrent lookups are safe. Bucketed indices
// are int32 — the same compactness trade the data plane's batch insert
// makes — so a view beyond 2^31 addresses (a >32 GB materialized slice)
// fails loudly instead of silently truncating.
func lookupChunks[K comparable](addrs ip6.AddrSeq, workers int, lookup func(ip6.Addr) (K, bgp.ASN, bool)) []lookupChunk[K] {
	n := addrs.Len()
	if n > math.MaxInt32 {
		panic("entropy: address view exceeds int32 index space")
	}
	w := chunkCount(n, workers, 256)
	chunks := make([]lookupChunk[K], w)
	forChunks(n, w, func(c, lo, hi int) {
		ch := lookupChunk[K]{m: make(map[K]*chunkEntry)}
		for i := lo; i < hi; i++ {
			key, asn, ok := lookup(addrs.At(i))
			if !ok {
				continue
			}
			e, ok := ch.m[key]
			if !ok {
				e = &chunkEntry{asn: asn}
				ch.m[key] = e
				ch.order = append(ch.order, key)
			}
			e.idx = append(e.idx, int32(i))
		}
		chunks[c] = ch
	})
	return chunks
}

// idxSeq is a zero-copy view of a subset of a sequence selected by index.
type idxSeq struct {
	seq ip6.AddrSeq
	idx []int32
}

func (s idxSeq) Len() int          { return len(s.idx) }
func (s idxSeq) At(i int) ip6.Addr { return s.seq.At(int(s.idx[i])) }

// fingerprintEach runs fn(i, innerWorkers) for every group index, with up
// to workers goroutines pulling group indices from a shared queue (group
// sizes are heavy-tailed, so contiguous chunks would idle the workers
// that drew small groups). Surplus workers beyond the group count fan out
// inside each group's counting via the inner budget. Scheduling cannot
// leak into the output: results are written per index and fingerprint
// counts are integers merged position-wise, identical for any inner
// worker count.
func fingerprintEach(n, workers int, fn func(i, innerWorkers int)) {
	if n == 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 1)
		}
		return
	}
	w := workers
	if w > n {
		w = n
	}
	inner := 1
	if workers > n {
		inner = (workers + n - 1) / n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < w; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, inner)
			}
		}()
	}
	wg.Wait()
}

func sortGroups(gs []Group) {
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Size != gs[j].Size {
			return gs[i].Size > gs[j].Size
		}
		return gs[i].Key < gs[j].Key
	})
}

// Vectors extracts the fingerprint matrix for clustering.
func Vectors(gs []Group) [][]float64 {
	out := make([][]float64, len(gs))
	for i, g := range gs {
		out[i] = g.FP
	}
	return out
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
