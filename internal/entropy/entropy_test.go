package entropy

import (
	"math"
	"math/rand"
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
)

func TestFingerprintCounterScheme(t *testing.T) {
	// Counter addresses: only the last nybbles vary.
	var addrs []ip6.Addr
	base := ip6.MustParseAddr("2001:db8:1:1::")
	for i := uint64(0); i < 256; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(base.Hi(), i))
	}
	fp := Fingerprint(addrs, 9, 32)
	if len(fp) != 24 {
		t.Fatalf("F932 length = %d, want 24", len(fp))
	}
	// Nybbles 9..30 constant (entropy 0); nybbles 31-32 (the counter)
	// close to 1.
	for i := 0; i < 22; i++ {
		if fp[i] != 0 {
			t.Errorf("nybble %d entropy = %v, want 0", i+9, fp[i])
		}
	}
	if fp[22] < 0.9 || fp[23] < 0.9 {
		t.Errorf("counter nybbles entropy = %v,%v, want ~1", fp[22], fp[23])
	}
}

func TestFingerprintRandomScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var addrs []ip6.Addr
	base := ip6.MustParseAddr("2001:db8:2::")
	for i := 0; i < 1000; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(base.Hi(), rng.Uint64()))
	}
	fp := Fingerprint(addrs, 17, 32)
	if len(fp) != 16 {
		t.Fatalf("F1732 length = %d", len(fp))
	}
	for i, h := range fp {
		if h < 0.9 {
			t.Errorf("random IID nybble %d entropy = %v, want ~1", i+17, h)
		}
	}
}

func TestFingerprintSLAAC(t *testing.T) {
	// EUI-64 addresses: ff:fe at nybbles 23-26 is constant.
	var addrs []ip6.Addr
	net := ip6.MustParseAddr("2001:db8:3::")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		mac := [6]byte{0x28, 0xfd, 0x80, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		addrs = append(addrs, ip6.FromMAC(net, mac))
	}
	fp := Fingerprint(addrs, 17, 32)
	// Nybbles 23-26 (indices 6..9 in F1732) are ff:fe — constant.
	for i := 6; i <= 9; i++ {
		if fp[i] != 0 {
			t.Errorf("ff:fe nybble %d entropy = %v, want 0", i+17, fp[i])
		}
	}
	// The OUI nybbles (17-22) are constant too for a single vendor.
	for i := 0; i < 6; i++ {
		if fp[i] > 0.3 {
			t.Errorf("OUI nybble entropy = %v, want low", fp[i])
		}
	}
	// Device-serial nybbles (27-32) vary.
	if fp[12] < 0.8 {
		t.Errorf("serial nybble entropy = %v, want high", fp[12])
	}
}

func TestFingerprintBoundsClamped(t *testing.T) {
	addrs := []ip6.Addr{ip6.MustParseAddr("::1")}
	if fp := Fingerprint(addrs, -3, 99); len(fp) != 32 {
		t.Errorf("clamped fingerprint length = %d, want 32", len(fp))
	}
	if fp := Fingerprint(addrs, 20, 10); fp != nil {
		t.Error("inverted range should give nil")
	}
}

func TestByPrefixLen(t *testing.T) {
	var addrs []ip6.Addr
	// Two /32s: one with 150 counter addresses, one with 150 random, one
	// with just 50 (below min).
	a32 := ip6.MustParseAddr("2001:db8::")
	b32 := ip6.MustParseAddr("2001:dead::")
	c32 := ip6.MustParseAddr("2001:beef::")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(a32.Hi(), uint64(i)))
		addrs = append(addrs, ip6.AddrFromUint64(b32.Hi(), rng.Uint64()))
	}
	for i := 0; i < 50; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(c32.Hi(), uint64(i)))
	}
	groups := ByPrefixLen(addrs, 32, 100, 9, 32)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (min filter)", len(groups))
	}
	for _, g := range groups {
		if g.Size != 150 || g.Prefix.Bits() != 32 {
			t.Errorf("group %+v wrong", g.Key)
		}
		if len(g.FP) != 24 {
			t.Errorf("fingerprint dim %d", len(g.FP))
		}
	}
	// Counter group has near-zero mean entropy; random group near 1.
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	var counterMean, randomMean float64
	for _, g := range groups {
		if g.Prefix.Contains(a32) {
			counterMean = mean(g.FP)
		} else {
			randomMean = mean(g.FP)
		}
	}
	// The random group still has constant subnet nybbles 9-16, so its
	// F932 mean is ~16/24 ≈ 0.67, not ~1.
	if counterMean > 0.2 || randomMean < 0.55 {
		t.Errorf("means: counter %v random %v", counterMean, randomMean)
	}
}

func TestByASAndByBGPPrefix(t *testing.T) {
	table := bgp.NewTable()
	table.Announce(ip6.MustParsePrefix("2001:db8::/32"), 100)
	table.Announce(ip6.MustParsePrefix("2001:dead::/32"), 200)
	var addrs []ip6.Addr
	for i := 0; i < 120; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(ip6.MustParseAddr("2001:db8::").Hi(), uint64(i)))
	}
	// Unrouted addresses must be skipped silently.
	addrs = append(addrs, ip6.MustParseAddr("fd00::1"))
	byAS := ByAS(addrs, table, 100, 9, 32)
	if len(byAS) != 1 || byAS[0].ASN != 100 || byAS[0].Key != "AS100" {
		t.Errorf("ByAS = %+v", byAS)
	}
	byPfx := ByBGPPrefix(addrs, table, 100, 9, 32)
	if len(byPfx) != 1 || byPfx[0].Prefix != ip6.MustParsePrefix("2001:db8::/32") {
		t.Errorf("ByBGPPrefix = %+v", byPfx)
	}
	if byPfx[0].ASN != 100 {
		t.Errorf("origin not recorded: %d", byPfx[0].ASN)
	}
}

func TestGroupOrdering(t *testing.T) {
	var addrs []ip6.Addr
	for i := 0; i < 300; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(ip6.MustParseAddr("2001:db8::").Hi(), uint64(i)))
	}
	for i := 0; i < 150; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(ip6.MustParseAddr("2001:dead::").Hi(), uint64(i)))
	}
	gs := ByPrefixLen(addrs, 32, 100, 9, 32)
	if len(gs) != 2 || gs[0].Size < gs[1].Size {
		t.Error("groups not sorted by size descending")
	}
}

func TestVectors(t *testing.T) {
	gs := []Group{{FP: []float64{0.1}}, {FP: []float64{0.9}}}
	v := Vectors(gs)
	if len(v) != 2 || v[0][0] != 0.1 || v[1][0] != 0.9 {
		t.Error("Vectors extraction wrong")
	}
}

func TestFingerprintEntropyInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var addrs []ip6.Addr
	for i := 0; i < 500; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(rng.Uint64(), rng.Uint64()))
	}
	for _, h := range Fingerprint(addrs, 1, 32) {
		if h < 0 || h > 1 || math.IsNaN(h) {
			t.Fatalf("entropy out of range: %v", h)
		}
	}
}
