package entropy

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
)

// sorted returns the addresses in ascending order as a view, the form the
// grouping APIs consume (the data plane's cached sorted view).
func sorted(addrs []ip6.Addr) ip6.AddrSeq {
	cp := append([]ip6.Addr(nil), addrs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Less(cp[j]) })
	return ip6.Addrs(cp)
}

func TestFingerprintCounterScheme(t *testing.T) {
	// Counter addresses: only the last nybbles vary.
	var addrs []ip6.Addr
	base := ip6.MustParseAddr("2001:db8:1:1::")
	for i := uint64(0); i < 256; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(base.Hi(), i))
	}
	fp := Fingerprint(addrs, 9, 32)
	if len(fp) != 24 {
		t.Fatalf("F932 length = %d, want 24", len(fp))
	}
	// Nybbles 9..30 constant (entropy 0); nybbles 31-32 (the counter)
	// close to 1.
	for i := 0; i < 22; i++ {
		if fp[i] != 0 {
			t.Errorf("nybble %d entropy = %v, want 0", i+9, fp[i])
		}
	}
	if fp[22] < 0.9 || fp[23] < 0.9 {
		t.Errorf("counter nybbles entropy = %v,%v, want ~1", fp[22], fp[23])
	}
}

func TestFingerprintRandomScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var addrs []ip6.Addr
	base := ip6.MustParseAddr("2001:db8:2::")
	for i := 0; i < 1000; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(base.Hi(), rng.Uint64()))
	}
	fp := Fingerprint(addrs, 17, 32)
	if len(fp) != 16 {
		t.Fatalf("F1732 length = %d", len(fp))
	}
	for i, h := range fp {
		if h < 0.9 {
			t.Errorf("random IID nybble %d entropy = %v, want ~1", i+17, h)
		}
	}
}

func TestFingerprintSLAAC(t *testing.T) {
	// EUI-64 addresses: ff:fe at nybbles 23-26 is constant.
	var addrs []ip6.Addr
	net := ip6.MustParseAddr("2001:db8:3::")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		mac := [6]byte{0x28, 0xfd, 0x80, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		addrs = append(addrs, ip6.FromMAC(net, mac))
	}
	fp := Fingerprint(addrs, 17, 32)
	// Nybbles 23-26 (indices 6..9 in F1732) are ff:fe — constant.
	for i := 6; i <= 9; i++ {
		if fp[i] != 0 {
			t.Errorf("ff:fe nybble %d entropy = %v, want 0", i+17, fp[i])
		}
	}
	// The OUI nybbles (17-22) are constant too for a single vendor.
	for i := 0; i < 6; i++ {
		if fp[i] > 0.3 {
			t.Errorf("OUI nybble entropy = %v, want low", fp[i])
		}
	}
	// Device-serial nybbles (27-32) vary.
	if fp[12] < 0.8 {
		t.Errorf("serial nybble entropy = %v, want high", fp[12])
	}
}

func TestFingerprintBoundsClamped(t *testing.T) {
	addrs := []ip6.Addr{ip6.MustParseAddr("::1")}
	if fp := Fingerprint(addrs, -3, 99); len(fp) != 32 {
		t.Errorf("clamped fingerprint length = %d, want 32", len(fp))
	}
	if fp := Fingerprint(addrs, 20, 10); fp != nil {
		t.Error("inverted range should give nil")
	}
}

// TestFingerprintSeqAcrossWorkers pins that the chunk-parallel nybble
// counting is byte-identical for every worker count, above and below the
// parallel threshold.
func TestFingerprintSeqAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{100, parallelMin - 1, parallelMin, 3*parallelMin + 17} {
		addrs := make([]ip6.Addr, n)
		for i := range addrs {
			addrs[i] = ip6.AddrFromUint64(rng.Uint64(), rng.Uint64())
		}
		ref := FingerprintSeq(ip6.Addrs(addrs), 1, 32, 1)
		for _, w := range []int{4, 16} {
			got := FingerprintSeq(ip6.Addrs(addrs), 1, 32, w)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("n=%d workers=%d: fingerprint differs from serial", n, w)
			}
		}
	}
}

func TestByPrefixLen(t *testing.T) {
	var addrs []ip6.Addr
	// Two /32s: one with 150 counter addresses, one with 150 random, one
	// with just 50 (below min).
	a32 := ip6.MustParseAddr("2001:db8::")
	b32 := ip6.MustParseAddr("2001:dead::")
	c32 := ip6.MustParseAddr("2001:beef::")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(a32.Hi(), uint64(i)))
		addrs = append(addrs, ip6.AddrFromUint64(b32.Hi(), rng.Uint64()))
	}
	for i := 0; i < 50; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(c32.Hi(), uint64(i)))
	}
	groups := ByPrefixLen(sorted(addrs), 32, 100, 9, 32, 1)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (min filter)", len(groups))
	}
	for _, g := range groups {
		if g.Size != 150 || g.Prefix.Bits() != 32 {
			t.Errorf("group %+v wrong", g.Key)
		}
		if len(g.FP) != 24 {
			t.Errorf("fingerprint dim %d", len(g.FP))
		}
	}
	// Counter group has near-zero mean entropy; random group near 1.
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	var counterMean, randomMean float64
	for _, g := range groups {
		if g.Prefix.Contains(a32) {
			counterMean = mean(g.FP)
		} else {
			randomMean = mean(g.FP)
		}
	}
	// The random group still has constant subnet nybbles 9-16, so its
	// F932 mean is ~16/24 ≈ 0.67, not ~1.
	if counterMean > 0.2 || randomMean < 0.55 {
		t.Errorf("means: counter %v random %v", counterMean, randomMean)
	}
}

// mapByPrefixLen is the pre-refactor map-bucketing implementation, kept as
// the reference for the sorted-run grouping property test.
func mapByPrefixLen(addrs []ip6.Addr, bits, min, a, b int) []Group {
	buckets := make(map[ip6.Prefix][]ip6.Addr)
	for _, addr := range addrs {
		p := ip6.PrefixFrom(addr, bits)
		buckets[p] = append(buckets[p], addr)
	}
	var out []Group
	for p, list := range buckets {
		if len(list) < min {
			continue
		}
		out = append(out, Group{
			Key:    p.String(),
			Prefix: p,
			Size:   len(list),
			FP:     Fingerprint(list, a, b),
		})
	}
	sortGroups(out)
	return out
}

// TestByPrefixLenMatchesMapReference pins the boundary-scan grouping over
// the sorted view against the old map-bucketing implementation on random
// address sets: same groups, same sizes, same fingerprints, same order.
func TestByPrefixLenMatchesMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		addrs := make([]ip6.Addr, n)
		for i := range addrs {
			// A handful of /32s with wildly different densities.
			hi := uint64(0x2001_0db8_0000_0000) | uint64(rng.Intn(6))<<32
			addrs[i] = ip6.AddrFromUint64(hi, uint64(rng.Intn(1<<uint(4+rng.Intn(16)))))
		}
		min := 1 + rng.Intn(200)
		want := mapByPrefixLen(addrs, 32, min, 9, 32)
		for _, w := range []int{1, 4} {
			got := ByPrefixLen(sorted(addrs), 32, min, 9, 32, w)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i].Key != want[i].Key || got[i].Size != want[i].Size ||
					got[i].Prefix != want[i].Prefix ||
					!reflect.DeepEqual(got[i].FP, want[i].FP) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestByASAndByBGPPrefix(t *testing.T) {
	table := bgp.NewTable()
	table.Announce(ip6.MustParsePrefix("2001:db8::/32"), 100)
	table.Announce(ip6.MustParsePrefix("2001:dead::/32"), 200)
	var addrs []ip6.Addr
	for i := 0; i < 120; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(ip6.MustParseAddr("2001:db8::").Hi(), uint64(i)))
	}
	// Unrouted addresses must be skipped silently.
	addrs = append(addrs, ip6.MustParseAddr("fd00::1"))
	byAS := ByAS(ip6.Addrs(addrs), table, 100, 9, 32, 1)
	if len(byAS) != 1 || byAS[0].ASN != 100 || byAS[0].Key != "AS100" {
		t.Errorf("ByAS = %+v", byAS)
	}
	byPfx := ByBGPPrefix(ip6.Addrs(addrs), table, 100, 9, 32, 1)
	if len(byPfx) != 1 || byPfx[0].Prefix != ip6.MustParsePrefix("2001:db8::/32") {
		t.Errorf("ByBGPPrefix = %+v", byPfx)
	}
	if byPfx[0].ASN != 100 {
		t.Errorf("origin not recorded: %d", byPfx[0].ASN)
	}
}

// routedWorld builds a table plus a routed address population with skewed
// per-prefix densities for the determinism tests.
func routedWorld(seed int64, nAddrs int) (*bgp.Table, []ip6.Addr) {
	rng := rand.New(rand.NewSource(seed))
	table := bgp.NewTable()
	var prefixes []ip6.Prefix
	for i := 0; i < 12; i++ {
		p := ip6.MustParsePrefix(fmt.Sprintf("2001:%x::/32", 0xd00+i))
		table.Announce(p, bgp.ASN(100+i%5)) // several prefixes share an AS
		prefixes = append(prefixes, p)
	}
	addrs := make([]ip6.Addr, nAddrs)
	for i := range addrs {
		p := prefixes[rng.Intn(len(prefixes))]
		addrs[i] = ip6.AddrFromUint64(p.Addr().Hi(), rng.Uint64()>>uint(rng.Intn(48)))
	}
	return table, addrs
}

// TestGroupingAcrossWorkers pins group order, membership and fingerprints
// of all three groupings across worker counts 1/4/16.
func TestGroupingAcrossWorkers(t *testing.T) {
	table, addrs := routedWorld(21, 20000)
	seq := sorted(addrs)
	type mk func(w int) []Group
	for name, make := range map[string]mk{
		"ByPrefixLen": func(w int) []Group { return ByPrefixLen(seq, 32, 50, 9, 32, w) },
		"ByBGPPrefix": func(w int) []Group { return ByBGPPrefix(seq, table, 50, 9, 32, w) },
		"ByAS":        func(w int) []Group { return ByAS(seq, table, 50, 9, 32, w) },
	} {
		ref := make(1)
		if len(ref) == 0 {
			t.Fatalf("%s: no groups formed", name)
		}
		for _, w := range []int{4, 16} {
			got := make(w)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: workers=%d differs from workers=1", name, w)
			}
		}
	}
}

func TestGroupOrdering(t *testing.T) {
	var addrs []ip6.Addr
	for i := 0; i < 300; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(ip6.MustParseAddr("2001:db8::").Hi(), uint64(i)))
	}
	for i := 0; i < 150; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(ip6.MustParseAddr("2001:dead::").Hi(), uint64(i)))
	}
	gs := ByPrefixLen(sorted(addrs), 32, 100, 9, 32, 1)
	if len(gs) != 2 || gs[0].Size < gs[1].Size {
		t.Error("groups not sorted by size descending")
	}
}

func TestVectors(t *testing.T) {
	gs := []Group{{FP: []float64{0.1}}, {FP: []float64{0.9}}}
	v := Vectors(gs)
	if len(v) != 2 || v[0][0] != 0.1 || v[1][0] != 0.9 {
		t.Error("Vectors extraction wrong")
	}
}

func TestFingerprintEntropyInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var addrs []ip6.Addr
	for i := 0; i < 500; i++ {
		addrs = append(addrs, ip6.AddrFromUint64(rng.Uint64(), rng.Uint64()))
	}
	for _, h := range Fingerprint(addrs, 1, 32) {
		if h < 0 || h > 1 || math.IsNaN(h) {
			t.Fatalf("entropy out of range: %v", h)
		}
	}
}

// benchAddrs builds a sorted synthetic hitlist: 64 /32s with a heavy-tail
// density split, the shape ByPrefixLen sees from the data plane.
func benchAddrs(n int) ip6.AddrSeq {
	rng := rand.New(rand.NewSource(99))
	addrs := make([]ip6.Addr, n)
	for i := range addrs {
		hi := uint64(0x2001_0db8_0000_0000) | uint64(rng.Intn(64))<<32
		addrs[i] = ip6.AddrFromUint64(hi, rng.Uint64())
	}
	return sorted(addrs)
}

func BenchmarkByPrefixLen(b *testing.B) {
	seq := benchAddrs(1 << 18)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ByPrefixLen(seq, 32, 100, 9, 32, w)
			}
		})
	}
}

// BenchmarkLegacyByPrefixLen measures the old map-bucketing path on the
// same (materialized) input for comparison.
func BenchmarkLegacyByPrefixLen(b *testing.B) {
	seq := benchAddrs(1 << 18)
	addrs := make([]ip6.Addr, seq.Len())
	for i := range addrs {
		addrs[i] = seq.At(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapByPrefixLen(addrs, 32, 100, 9, 32)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	seq := benchAddrs(1 << 18)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FingerprintSeq(seq, 9, 32, w)
			}
		})
	}
}
