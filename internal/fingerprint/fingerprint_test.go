package fingerprint

import (
	"math/rand"
	"testing"

	"expanse/internal/wire"
)

func tcp(opt string, mss uint16, ws uint8, wsize uint16, tsPresent bool, tsval uint32) *wire.TCPInfo {
	return &wire.TCPInfo{OptionsText: opt, MSS: mss, WScale: ws, WSize: wsize, TSPresent: tsPresent, TSVal: tsval}
}

func TestITTL(t *testing.T) {
	cases := map[uint8]uint8{
		1: 32, 30: 32, 32: 32,
		33: 64, 58: 64, 64: 64,
		65: 128, 120: 128, 128: 128,
		129: 255, 250: 255, 255: 255,
	}
	for hl, want := range cases {
		if got := ITTL(hl); got != want {
			t.Errorf("ITTL(%d) = %d, want %d", hl, got, want)
		}
	}
}

// aliasedSamples builds 16 samples that look like one machine with a
// monotonic timestamp clock.
func aliasedSamples() []Sample {
	var out []Sample
	for i := 0; i < 16; i++ {
		out = append(out, Sample{
			SentAt:   wire.Time(i * 1000),
			HopLimit: 57,
			TCP:      tcp("MSS-SACK-TS-N-WS", 1440, 7, 28800, true, 1000+uint32(i*10)),
		})
	}
	return out
}

func TestAnalyzeAliasedConsistent(t *testing.T) {
	rep := Analyze(aliasedSamples())
	if rep.Inconsistent() {
		t.Fatalf("aliased samples inconsistent: %+v", rep)
	}
	if !rep.TSConsistent || rep.TSWhichPassed != "monotonic" {
		t.Errorf("timestamp test: %+v", rep)
	}
	if rep.Samples != 16 {
		t.Errorf("samples = %d", rep.Samples)
	}
}

func TestAnalyzeSameTimestamp(t *testing.T) {
	s := aliasedSamples()
	for i := range s {
		s[i].TCP = tcp("MSS-SACK-TS-N-WS", 1440, 7, 28800, true, 777)
	}
	rep := Analyze(s)
	if !rep.TSConsistent || rep.TSWhichPassed != "same" {
		t.Errorf("same-TS not detected: %+v", rep)
	}
}

func TestAnalyzeNoTimestamps(t *testing.T) {
	s := aliasedSamples()
	for i := range s {
		s[i].TCP = tcp("MSS", 1440, 7, 28800, false, 0)
	}
	rep := Analyze(s)
	// Uniformly missing counts as "same (or missing)".
	if !rep.TSConsistent {
		t.Errorf("uniformly missing TS should pass check 1: %+v", rep)
	}
}

func TestAnalyzeMixedTimestampPresence(t *testing.T) {
	s := aliasedSamples()
	s[3].TCP = tcp("MSS-SACK-TS-N-WS", 1440, 7, 28800, false, 0)
	rep := Analyze(s)
	if rep.TSConsistent {
		t.Error("mixed TS presence cannot be one machine")
	}
	if !rep.TSIndecisive {
		t.Error("should be indecisive")
	}
}

func TestAnalyzeRegression(t *testing.T) {
	// Not strictly monotonic in probe order (small jitter), but globally
	// linear: regression must catch it.
	s := aliasedSamples()
	base := []uint32{1000, 1011, 1019, 1032, 1038, 1052, 1058, 1071,
		1082, 1089, 1102, 1108, 1121, 1131, 1139, 1152}
	for i := range s {
		v := base[i]
		if i == 5 {
			v -= 20 // one reordering blemish breaks monotonicity
		}
		s[i].TCP = tcp("MSS-SACK-TS-N-WS", 1440, 7, 28800, true, v)
	}
	rep := Analyze(s)
	if !rep.TSConsistent || rep.TSWhichPassed != "regression" {
		t.Errorf("regression test should pass: %+v", rep)
	}
}

func TestAnalyzePerTupleRandomized(t *testing.T) {
	// Linux ≥ 4.10 behaviour: random base per destination → no global
	// line, no monotonicity, not all same → indecisive, not inconsistent.
	s := aliasedSamples()
	bases := []uint32{0x1a2b3c4d, 0x9f8e7d6c, 0x22222222, 0x7b2a9c01,
		0x5d5d5d5d, 0x01020304, 0xdeadbeef, 0x13579bdf,
		0x2468ace0, 0x0f0f0f0f, 0xcafebabe, 0x31415926,
		0x27182818, 0x16180339, 0x70707070, 0x4a4b4c4e}
	for i := range s {
		s[i].TCP = tcp("MSS-SACK-TS-N-WS", 1440, 7, 28800, true, bases[i]+uint32(i*10))
	}
	rep := Analyze(s)
	if rep.Inconsistent() {
		t.Error("per-tuple TS must not make value tests inconsistent")
	}
	if rep.TSConsistent {
		t.Error("per-tuple randomized TS should not pass")
	}
	if !rep.TSIndecisive {
		t.Error("should be indecisive")
	}
}

func TestAnalyzeValueInconsistencies(t *testing.T) {
	mk := func(mut func(s []Sample)) Report {
		s := aliasedSamples()
		mut(s)
		return Analyze(s)
	}
	if r := mk(func(s []Sample) { s[2].HopLimit = 250 }); !r.ITTLInconsistent {
		t.Error("iTTL inconsistency missed")
	}
	// Differing raw hop limits with same iTTL are fine (on-path effects).
	if r := mk(func(s []Sample) { s[2].HopLimit = 60 }); r.ITTLInconsistent {
		t.Error("same-iTTL TTL jitter misflagged")
	}
	if r := mk(func(s []Sample) { s[2].TCP.OptionsText = "MSS" }); !r.OptionsInconsistent {
		t.Error("options inconsistency missed")
	}
	if r := mk(func(s []Sample) { s[2].TCP.WScale = 2 }); !r.WScaleInconsistent {
		t.Error("wscale inconsistency missed")
	}
	if r := mk(func(s []Sample) { s[2].TCP.MSS = 1380 }); !r.MSSInconsistent {
		t.Error("MSS inconsistency missed")
	}
	if r := mk(func(s []Sample) { s[2].TCP.WSize = 11111 }); !r.WSizeInconsistent {
		t.Error("wsize inconsistency missed")
	}
}

func TestAnalyzeFewSamples(t *testing.T) {
	if rep := Analyze(nil); rep.Samples != 0 || rep.Inconsistent() {
		t.Error("empty analysis wrong")
	}
	one := aliasedSamples()[:1]
	if rep := Analyze(one); rep.Samples != 1 || rep.TSConsistent {
		t.Error("single sample should be indecisive")
	}
	// Non-TCP samples are skipped.
	s := []Sample{{SentAt: 0, HopLimit: 50, TCP: nil}}
	if rep := Analyze(s); rep.Samples != 0 {
		t.Error("nil-TCP sample counted")
	}
}

func TestTabulate(t *testing.T) {
	var reports []Report
	// 3 fully consistent with TS; 1 MSS-inconsistent; 1 indecisive.
	for i := 0; i < 3; i++ {
		reports = append(reports, Report{TSConsistent: true})
	}
	reports = append(reports, Report{MSSInconsistent: true})
	reports = append(reports, Report{TSIndecisive: true})
	tal := Tabulate(reports)
	if tal.Prefixes != 5 || tal.MSS != 1 || tal.AnyInconsistent != 1 ||
		tal.TSConsistent != 3 || tal.Indecisive != 1 {
		t.Errorf("tally = %+v", tal)
	}
	// Cumulative: only the MSS failure, appearing from stage 3 on.
	want := [5]int{0, 0, 0, 1, 1}
	if tal.Cumulative != want {
		t.Errorf("cumulative = %v, want %v", tal.Cumulative, want)
	}
	inc, cons, ind := tal.Shares()
	if inc != 0.2 || cons != 0.6 || ind != 0.2 {
		t.Errorf("shares = %v, %v, %v", inc, cons, ind)
	}
}

func TestTallySharesEmpty(t *testing.T) {
	var tal Tally
	a, b, c := tal.Shares()
	if a != 0 || b != 0 || c != 0 {
		t.Error("empty shares must be zero")
	}
}

// TestAnalyzeRefsMatchesAnalyze property-pins the interned-ref analysis
// against the per-sample reference: random sample sets drawn from a small
// pool of machine personalities (with nil-TCP gaps, mixed timestamp
// presence, and per-field variations) must produce identical reports on
// both paths.
func TestAnalyzeRefsMatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf19e4))
	layouts := []string{"MSS-SACK-TS-N-WS", "MSS-N-WS-SACK-TS", "MSS"}
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(24)
		samples := make([]Sample, 0, n)
		refs := make([]RefSample, 0, n)
		var table wire.TCPTable
		for i := 0; i < n; i++ {
			at := wire.Time(i * 500)
			hl := uint8(40 + rng.Intn(4)*60)
			if rng.Intn(6) == 0 {
				samples = append(samples, Sample{SentAt: at, HopLimit: hl})
				refs = append(refs, RefSample{SentAt: at, HopLimit: hl, Ref: wire.NoTCP})
				continue
			}
			info := tcp(
				layouts[rng.Intn(len(layouts))],
				[]uint16{1440, 1460}[rng.Intn(2)],
				uint8(7+rng.Intn(2)),
				[]uint16{28800, 65535}[rng.Intn(2)],
				rng.Intn(4) != 0,
				0,
			)
			if info.TSPresent {
				// Mix of monotonic-ish, constant and noisy clocks.
				switch rng.Intn(3) {
				case 0:
					info.TSVal = 1000 + uint32(i*10)
				case 1:
					info.TSVal = 4242
				default:
					info.TSVal = rng.Uint32()
				}
			}
			samples = append(samples, Sample{SentAt: at, HopLimit: hl, TCP: info})
			refs = append(refs, RefSample{
				SentAt:   at,
				HopLimit: hl,
				Ref: table.Intern(wire.TCPFingerprint{
					OptionsText: info.OptionsText, MSS: info.MSS, WScale: info.WScale,
					WSize: info.WSize, TSPresent: info.TSPresent,
				}),
				TSVal: info.TSVal,
			})
		}
		want := Analyze(samples)
		got := AnalyzeRefs(refs, &table)
		if got != want {
			t.Fatalf("trial %d (n=%d): AnalyzeRefs = %+v, Analyze = %+v", trial, n, got, want)
		}
	}
}
