// Package fingerprint implements the TCP/IP fingerprint consistency tests
// of §5.4: given the SYN-ACK fingerprints collected from the 16 fan-out
// addresses of a prefix (two consecutive probes each), decide whether the
// prefix behaves like a single machine. The tests are, in the paper's
// order: iTTL, options layout ("optionstext"), window scale, MSS, window
// size, and the three-part TCP timestamp test (same value / monotonic /
// linear-regression R² > 0.8).
package fingerprint

import (
	"sort"

	"expanse/internal/stats"
	"expanse/internal/wire"
)

// Sample is one fingerprintable response.
type Sample struct {
	// SentAt is the probe's virtual send time (receive time differs by a
	// near-constant RTT, which linear regression absorbs).
	SentAt wire.Time
	// HopLimit is the received hop limit.
	HopLimit uint8
	// TCP is the SYN-ACK option data (nil = no usable response).
	TCP *wire.TCPInfo
}

// ITTL rounds a received hop limit up to the initial TTL the sender chose:
// one of 32, 64, 128, 255 (§5.4: "rounding the TTL value up to the next
// power of 2"; 255 is the ceiling for values above 128).
func ITTL(hopLimit uint8) uint8 {
	switch {
	case hopLimit <= 32:
		return 32
	case hopLimit <= 64:
		return 64
	case hopLimit <= 128:
		return 128
	default:
		return 255
	}
}

// Report is the per-prefix outcome of all consistency tests.
type Report struct {
	// Samples is the number of usable TCP responses analyzed.
	Samples int

	// Per-test inconsistency flags (a set bit means the prefix showed
	// differing values for that property — evidence against aliasing).
	ITTLInconsistent    bool
	OptionsInconsistent bool
	WScaleInconsistent  bool
	MSSInconsistent     bool
	WSizeInconsistent   bool

	// TSConsistent marks the high-confidence aliasing signal: one of the
	// three timestamp checks passed. TSIndecisive means timestamps were
	// present but no check passed (NOT evidence against aliasing —
	// Linux ≥ 4.10 randomizes per tuple).
	TSConsistent  bool
	TSIndecisive  bool
	TSWhichPassed string // "same", "monotonic", "regression", or ""
}

// Inconsistent reports whether any non-timestamp test failed.
func (r Report) Inconsistent() bool {
	return r.ITTLInconsistent || r.OptionsInconsistent ||
		r.WScaleInconsistent || r.MSSInconsistent || r.WSizeInconsistent
}

// R2Threshold is the paper's regression acceptance bound.
const R2Threshold = 0.8

// Analyze runs all §5.4 tests over the fingerprint samples of one prefix.
func Analyze(samples []Sample) Report {
	var rep Report
	var usable []Sample
	for _, s := range samples {
		if s.TCP != nil {
			usable = append(usable, s)
		}
	}
	rep.Samples = len(usable)
	if len(usable) < 2 {
		rep.TSIndecisive = true
		return rep
	}

	first := usable[0]
	for _, s := range usable[1:] {
		if ITTL(s.HopLimit) != ITTL(first.HopLimit) {
			rep.ITTLInconsistent = true
		}
		if s.TCP.OptionsText != first.TCP.OptionsText {
			rep.OptionsInconsistent = true
		}
		if s.TCP.WScale != first.TCP.WScale {
			rep.WScaleInconsistent = true
		}
		if s.TCP.MSS != first.TCP.MSS {
			rep.MSSInconsistent = true
		}
		if s.TCP.WSize != first.TCP.WSize {
			rep.WSizeInconsistent = true
		}
	}

	rep.TSConsistent, rep.TSWhichPassed = timestampTest(usable)
	rep.TSIndecisive = !rep.TSConsistent
	return rep
}

// RefSample is the columnar form of Sample: the SYN-ACK's static
// fingerprint as an interned table ref instead of a heap TCPInfo, plus
// the per-probe timestamp value. It is what the batched scan plane
// produces (wire.ResultColumns rows).
type RefSample struct {
	SentAt   wire.Time
	HopLimit uint8
	// Ref indexes the interned fingerprint (wire.NoTCP = no usable
	// response; such samples are skipped, like nil-TCP Samples).
	Ref wire.TCPRef
	// TSVal is the TCP timestamp value (meaningful iff the interned
	// fingerprint has TSPresent).
	TSVal uint32
}

// AnalyzeRefs is Analyze over interned fingerprint refs: two samples from
// the same machine profile compare as one integer, so the per-field value
// tests (options layout string included) run only when refs differ.
// Results are identical to Analyze on the materialized samples (pinned by
// test).
func AnalyzeRefs(samples []RefSample, table *wire.TCPTable) Report {
	var rep Report
	usable := make([]RefSample, 0, len(samples))
	for _, s := range samples {
		if s.Ref != wire.NoTCP {
			usable = append(usable, s)
		}
	}
	rep.Samples = len(usable)
	if len(usable) < 2 {
		rep.TSIndecisive = true
		return rep
	}

	first := usable[0]
	firstITTL := ITTL(first.HopLimit)
	firstFP := table.Fingerprint(first.Ref)
	for _, s := range usable[1:] {
		if ITTL(s.HopLimit) != firstITTL {
			rep.ITTLInconsistent = true
		}
		if s.Ref == first.Ref {
			continue // identical interned fingerprint: all value tests pass
		}
		fp := table.Fingerprint(s.Ref)
		if fp.OptionsText != firstFP.OptionsText {
			rep.OptionsInconsistent = true
		}
		if fp.WScale != firstFP.WScale {
			rep.WScaleInconsistent = true
		}
		if fp.MSS != firstFP.MSS {
			rep.MSSInconsistent = true
		}
		if fp.WSize != firstFP.WSize {
			rep.WSizeInconsistent = true
		}
	}

	rep.TSConsistent, rep.TSWhichPassed = timestampTestRefs(usable, table)
	rep.TSIndecisive = !rep.TSConsistent
	return rep
}

// timestampTestRefs is timestampTest over interned samples.
func timestampTestRefs(usable []RefSample, table *wire.TCPTable) (bool, string) {
	var ts []RefSample
	for _, s := range usable {
		if table.Fingerprint(s.Ref).TSPresent {
			ts = append(ts, s)
		}
	}
	// Check 1: "whether all hosts send the same (or missing) timestamps".
	if len(ts) == 0 {
		return true, "same" // uniformly missing
	}
	if len(ts) == len(usable) {
		same := true
		for _, s := range ts[1:] {
			if s.TSVal != ts[0].TSVal {
				same = false
				break
			}
		}
		if same {
			return true, "same"
		}
	} else {
		// Mixed present/missing: cannot be one machine's clock.
		return false, ""
	}
	if len(ts) < 3 {
		return false, ""
	}
	ordered := make([]RefSample, len(ts))
	copy(ordered, ts)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].SentAt < ordered[j].SentAt })
	// Check 2: monotonic across the whole prefix in probe order.
	monotonic := true
	for i := 1; i < len(ordered); i++ {
		if ordered[i].TSVal < ordered[i-1].TSVal {
			monotonic = false
			break
		}
	}
	if monotonic {
		return true, "monotonic"
	}
	// Check 3: global linear counter — regression of TSval against
	// receive time with R² > 0.8.
	x := make([]float64, len(ordered))
	y := make([]float64, len(ordered))
	for i, s := range ordered {
		x[i] = float64(s.SentAt) / 1e6
		y[i] = float64(s.TSVal)
	}
	if r := stats.LinearRegression(x, y); r.R2 > R2Threshold {
		return true, "regression"
	}
	return false, ""
}

// timestampTest applies the three §5.4 checks in order.
func timestampTest(usable []Sample) (bool, string) {
	// Split into with/without timestamps.
	var ts []Sample
	for _, s := range usable {
		if s.TCP.TSPresent {
			ts = append(ts, s)
		}
	}
	// Check 1: "whether all hosts send the same (or missing) timestamps".
	if len(ts) == 0 {
		return true, "same" // uniformly missing
	}
	if len(ts) == len(usable) {
		same := true
		for _, s := range ts[1:] {
			if s.TCP.TSVal != ts[0].TCP.TSVal {
				same = false
				break
			}
		}
		if same {
			return true, "same"
		}
	} else {
		// Mixed present/missing: cannot be one machine's clock.
		return false, ""
	}
	if len(ts) < 3 {
		return false, ""
	}
	ordered := make([]Sample, len(ts))
	copy(ordered, ts)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].SentAt < ordered[j].SentAt })
	// Check 2: monotonic across the whole prefix in probe order.
	monotonic := true
	for i := 1; i < len(ordered); i++ {
		if ordered[i].TCP.TSVal < ordered[i-1].TCP.TSVal {
			monotonic = false
			break
		}
	}
	if monotonic {
		return true, "monotonic"
	}
	// Check 3: global linear counter — regression of TSval against
	// receive time with R² > 0.8.
	x := make([]float64, len(ordered))
	y := make([]float64, len(ordered))
	for i, s := range ordered {
		x[i] = float64(s.SentAt) / 1e6
		y[i] = float64(s.TCP.TSVal)
	}
	if r := stats.LinearRegression(x, y); r.R2 > R2Threshold {
		return true, "regression"
	}
	return false, ""
}

// Tally aggregates reports into the rows of Tables 5 and 6.
type Tally struct {
	Prefixes int

	// Inconsistent prefixes per individual test (Table 5's "Incs.").
	ITTL, Options, WScale, MSS, WSize int

	// Cumulative inconsistents in the paper's test order
	// (iTTL → Options → WScale → MSS → WSize), Table 5's "Σ Incs.".
	Cumulative [5]int

	// AnyInconsistent counts prefixes failing at least one test.
	AnyInconsistent int
	// TSConsistent counts prefixes passing the timestamp test.
	TSConsistent int
	// Indecisive counts prefixes that pass all value tests but fail the
	// timestamp test (neither refuted nor confirmed).
	Indecisive int
}

// Tabulate computes the tally over per-prefix reports.
func Tabulate(reports []Report) Tally {
	var t Tally
	t.Prefixes = len(reports)
	for _, r := range reports {
		if r.ITTLInconsistent {
			t.ITTL++
		}
		if r.OptionsInconsistent {
			t.Options++
		}
		if r.WScaleInconsistent {
			t.WScale++
		}
		if r.MSSInconsistent {
			t.MSS++
		}
		if r.WSizeInconsistent {
			t.WSize++
		}
		// Cumulative: prefix counted at each stage if inconsistent in
		// any test up to and including that stage.
		stages := [5]bool{
			r.ITTLInconsistent,
			r.OptionsInconsistent,
			r.WScaleInconsistent,
			r.MSSInconsistent,
			r.WSizeInconsistent,
		}
		acc := false
		for i, s := range stages {
			acc = acc || s
			if acc {
				t.Cumulative[i]++
			}
		}
		switch {
		case r.Inconsistent():
			t.AnyInconsistent++
		case r.TSConsistent:
			t.TSConsistent++
		default:
			t.Indecisive++
		}
	}
	return t
}

// Shares returns the Table 6 row: fraction inconsistent, consistent
// (timestamp-confirmed), and indecisive.
func (t Tally) Shares() (inconsistent, consistent, indecisive float64) {
	if t.Prefixes == 0 {
		return 0, 0, 0
	}
	n := float64(t.Prefixes)
	return float64(t.AnyInconsistent) / n, float64(t.TSConsistent) / n, float64(t.Indecisive) / n
}
