package netsim

import (
	"math/rand"
	"sort"
	"testing"

	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// batchTargets assembles a destination mix that exercises every
// resolution path: finite hosts, aliased regions (including holes, the
// SYN proxy, and quirky regions), subscriber lines, and unrouted misses.
func batchTargets(in *Internet, rng *rand.Rand) []ip6.Addr {
	var out []ip6.Addr
	for _, h := range in.Hosts() {
		if rng.Intn(4) == 0 {
			out = append(out, h.Addr)
		}
	}
	for _, rec := range in.AliasRecords() {
		if rng.Intn(3) == 0 {
			out = append(out, rec.Addr)
		}
	}
	for _, r := range in.AliasedRegions() {
		for i := 0; i < 8; i++ {
			out = append(out, r.Prefix.RandomAddr(rng))
		}
		if !r.Hole.IsZero() {
			for i := 0; i < 8; i++ {
				out = append(out, r.Hole.RandomAddr(rng))
			}
		}
	}
	for _, a := range in.Table.Announcements() {
		if rng.Intn(3) == 0 {
			out = append(out, a.Prefix.RandomAddr(rng)) // lines + misses
		}
	}
	for i := 0; i < 200; i++ { // far-off misses
		out = append(out, ip6.AddrFromUint64(rng.Uint64(), rng.Uint64()))
	}
	return out
}

// TestProbeBatchMatchesProbe property-pins the batched responder against
// the per-probe reference: for every destination mix, order (sorted and
// shuffled), batch split, protocol and day, ProbeBatch must answer probe
// k exactly as Probe(dsts[k], …) — OK, hop limit, and the full SYN-ACK
// fingerprint including the timestamp value.
func TestProbeBatchMatchesProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(0xba7c4))
	targets := batchTargets(world, rng)

	sorted := append([]ip6.Addr(nil), targets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	for _, order := range [][]ip6.Addr{sorted, targets} {
		for _, chunk := range []int{len(order), 64, 7, 1} {
			for _, proto := range []wire.Proto{wire.ICMPv6, wire.TCP80, wire.UDP443} {
				day := 3 + int(proto)
				at := make([]wire.Time, len(order))
				for i := range at {
					at[i] = wire.Time(i) * 10
				}
				var table wire.TCPTable
				var cols wire.ResultColumns
				cols.Reset(len(order), &table)
				for lo := 0; lo < len(order); lo += chunk {
					hi := lo + chunk
					if hi > len(order) {
						hi = len(order)
					}
					world.ProbeBatch(order[lo:hi], proto, day, at[lo:hi], &cols, lo)
				}
				for i, dst := range order {
					want := world.Probe(dst, proto, day, at[i])
					if cols.OK.Get(i) != want.OK {
						t.Fatalf("chunk=%d proto=%v target %d (%v): OK=%v want %v",
							chunk, proto, i, dst, cols.OK.Get(i), want.OK)
					}
					if !want.OK {
						continue
					}
					if cols.HopLimit[i] != want.HopLimit {
						t.Fatalf("chunk=%d proto=%v target %d: hop=%d want %d",
							chunk, proto, i, cols.HopLimit[i], want.HopLimit)
					}
					got := cols.TCPInfoAt(i)
					if (got == nil) != (want.TCP == nil) {
						t.Fatalf("chunk=%d proto=%v target %d: TCP presence mismatch", chunk, proto, i)
					}
					if got != nil && *got != *want.TCP {
						t.Fatalf("chunk=%d proto=%v target %d: fingerprint %+v want %+v",
							chunk, proto, i, *got, *want.TCP)
					}
				}
			}
		}
	}
}

// TestProbeBatchMaskOnly pins the mask-only column mode: with just an OK
// bitset the batched responder must agree with Probe on responsiveness
// and leave no trace of fingerprint work.
func TestProbeBatchMaskOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(0xba7c5))
	targets := batchTargets(world, rng)
	at := make([]wire.Time, len(targets))
	for i := range at {
		at[i] = wire.Time(i) * 10
	}
	var cols wire.ResultColumns
	cols.ResetOK(len(targets))
	world.ProbeBatch(targets, wire.TCP80, 5, at, &cols, 0)
	for i, dst := range targets {
		if cols.OK.Get(i) != world.Probe(dst, wire.TCP80, 5, at[i]).OK {
			t.Fatalf("target %d: OK mismatch in mask-only mode", i)
		}
	}
}

// TestIntervalTablesMatchTries pins the interval-compiled resolution
// against the construction-time tries over a large random address set:
// the alias table against the LPM trie, the networkOf table against the
// announcement trie, and the pool table against LookupShortest.
func TestIntervalTablesMatchTries(t *testing.T) {
	tabs := world.batchTables()
	rng := rand.New(rand.NewSource(0x17ab))
	addrs := batchTargets(world, rng)
	aliasRun := ivalRun[int32]{tab: tabs.alias}
	netRun := ivalRun[int32]{tab: tabs.nets}
	poolRun := ivalRun[int32]{tab: tabs.pools}
	for _, a := range addrs {
		gotR, gotOK := aliasRun.lookup(a)
		_, wantR, wantOK := world.aliasT.Lookup(a)
		if gotOK != wantOK || (gotOK && gotR != wantR) {
			t.Fatalf("alias lookup differs at %v", a)
		}
		gotN, gotOK := netRun.lookup(a)
		_, wantN, wantOK := world.netT.Lookup(a)
		if gotOK != wantOK || (gotOK && gotN != wantN) {
			t.Fatalf("network lookup differs at %v", a)
		}
		gotP, gotOK := poolRun.lookup(a)
		_, wantP, wantOK := world.netT.LookupShortest(a)
		if gotOK != wantOK || (gotOK && gotP != wantP) {
			t.Fatalf("shortest lookup differs at %v", a)
		}
	}
}

// BenchmarkProbeBatch measures the batched responder on a sorted
// destination run inside aliased space — the shape a sorted hitlist scan
// presents — against the per-probe reference path doing the same work.
func BenchmarkProbeBatch(b *testing.B) {
	targets, at, cols := benchBatchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols.OK.Reset(len(targets))
		world.ProbeBatch(targets, wire.TCP80, 3, at, cols, 0)
	}
}

// BenchmarkProbeBatchLegacy is the same probe set answered one Probe call
// (with its trie walks and TCPInfo allocation) at a time.
func BenchmarkProbeBatchLegacy(b *testing.B) {
	targets, at, _ := benchBatchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, dst := range targets {
			_ = world.Probe(dst, wire.TCP80, 3, at[k])
		}
	}
}

func benchBatchInput() ([]ip6.Addr, []wire.Time, *wire.ResultColumns) {
	rng := rand.New(rand.NewSource(0xbe7c4))
	var targets []ip6.Addr
	for _, rec := range world.AliasRecords() {
		targets = append(targets, rec.Addr)
	}
	for _, h := range world.Hosts() {
		targets = append(targets, h.Addr)
	}
	for len(targets) < 20000 {
		targets = append(targets, world.regions[rng.Intn(len(world.regions))].Prefix.RandomAddr(rng))
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })
	at := make([]wire.Time, len(targets))
	for i := range at {
		at[i] = wire.Time(i) * 10
	}
	var table wire.TCPTable
	cols := &wire.ResultColumns{}
	cols.Reset(len(targets), &table)
	return targets, at, cols
}
