package netsim

import (
	"math"
	"math/rand"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// Scheme is the addressing-scheme archetype of a network. The six values
// correspond to the six entropy clusters of Figure 2a: the point of the
// paper's clustering experiment is to rediscover exactly this structure
// from probe data alone.
type Scheme uint8

// Addressing schemes.
const (
	// SchemeCounter: IIDs are small counters (::1, ::2, …) in very few
	// subnets — entropy ≈ 0 everywhere except the last nybbles.
	SchemeCounter Scheme = iota
	// SchemeStructured: subnets enumerate a plan and IIDs encode
	// service/rack/port — moderate entropy across several nybble groups.
	SchemeStructured
	// SchemeRandomIID: pseudo-random IIDs (privacy extensions, hashes) —
	// high entropy in nybbles 17-32.
	SchemeRandomIID
	// SchemeRandomFull: random subnet and IID (fully scattered plans).
	SchemeRandomFull
	// SchemeEUI64Single: SLAAC MAC-based IIDs, single dominant vendor —
	// ff:fe marker at nybbles 23-26, low entropy in the OUI nybbles.
	SchemeEUI64Single
	// SchemeEUI64Multi: SLAAC MAC-based IIDs from many vendors.
	SchemeEUI64Multi
	// NumSchemes is the number of archetypes.
	NumSchemes = 6
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeCounter:
		return "counter"
	case SchemeStructured:
		return "structured"
	case SchemeRandomIID:
		return "random-iid"
	case SchemeRandomFull:
		return "random-full"
	case SchemeEUI64Single:
		return "eui64-single"
	case SchemeEUI64Multi:
		return "eui64-multi"
	default:
		return "scheme?"
	}
}

// schemeWeights reproduces the cluster popularity of Figure 2a: counters
// dominate, structured second, then pseudo-random, then MAC-based.
var schemeWeights = []float64{0.46, 0.22, 0.15, 0.07, 0.07, 0.03}

// plan builds the whole world: per-announcement metadata, alias regions,
// server farms, routers, subscriber pools, Atlas probes and Bitcoin nodes.
func (in *Internet) plan() {
	anns := in.Table.Announcements()

	// Group announcements per AS so roles can be assigned per operator.
	byAS := map[bgp.ASN][]ip6.Prefix{}
	for _, a := range anns {
		byAS[a.Origin] = append(byAS[a.Origin], a.Prefix)
	}

	// Per-announcement network metadata: a flat, exactly-sized column.
	// The announcement count is final here, so net IDs handed to the trie
	// below stay stable for the world's lifetime.
	in.nets = make([]network, 0, len(anns))
	for _, a := range anns {
		info := in.Table.AS(a.Origin)
		key := hash3(in.key, uint64(a.Origin), a.Prefix.Addr().Hi())
		nw := network{
			prefix:  a.Prefix,
			asn:     a.Origin,
			kind:    info.Kind,
			key:     key,
			pathLen: uint8(3 + key%9),
			jitter:  chance(mix64(key^1), 0.28),
			loss:    0.004 + unit(mix64(key^2))*0.016,
			isp:     -1,
			// One operator, one addressing plan: all announcements of an
			// AS share a scheme (the homogeneity Fig. 3b observes).
			scheme: pickScheme(hash2(in.key, uint64(a.Origin))),
		}
		if chance(mix64(key^3), 0.03) {
			nw.loss = 0.08 + unit(mix64(key^4))*0.2 // high-loss networks (§5.2)
		}
		in.nets = append(in.nets, nw)
		in.netT.Insert(a.Prefix, int32(len(in.nets)-1))
	}

	domainID := uint32(1)
	nextDomain := func() uint32 { d := domainID; domainID++; return d }

	for i := range in.nets {
		nw := &in.nets[i]
		switch nw.kind {
		case bgp.KindISP:
			in.planISP(nw, byAS[nw.asn])
		default:
			in.planFarm(nw, nextDomain)
		}
		in.planRouters(nw)
	}

	in.planAliases(nextDomain)
	in.planAtlas()
	in.planBitnodes()
	in.planTier1()
	// Seal the bulk population before the rDNS pass: the host map drops
	// at the construction peak, and planRDNS sweeps the sorted columns.
	in.sealPhase1()
	in.planRDNS(nextDomain)
	in.sealDelta()
}

func pickScheme(key uint64) Scheme {
	r := unit(mix64(key ^ 0x5c3e3e))
	acc := 0.0
	for i, w := range schemeWeights {
		acc += w
		if r < acc {
			return Scheme(i)
		}
	}
	return SchemeCounter
}

// lognormalInt draws a deterministic lognormal-ish integer with the given
// median and spread.
func lognormalInt(rng *rand.Rand, median float64, sigma float64) int {
	v := median * math.Exp(rng.NormFloat64()*sigma)
	if v < 1 {
		v = 1
	}
	return int(v)
}

// deathDay draws the day a host stops responding: geometric with daily
// rate p, or -1 if beyond the simulation horizon.
func deathDay(h uint64, p float64, horizon int) int16 {
	if p <= 0 {
		return -1
	}
	u := unit(h)
	d := int(math.Log(1-u)/math.Log(1-p)) + 1
	if d > horizon {
		return -1
	}
	return int16(d)
}

// farmSubnet picks subnet s of a farm given its scheme.
func farmSubnet(nw *network, s uint64) ip6.Prefix {
	switch nw.scheme {
	case SchemeRandomFull:
		return nw.prefix.Subprefix(64, hash2(nw.key^0x50b4e7, s))
	case SchemeStructured:
		// Subnet plan: an enumerated row of /64s starting at a round base.
		return nw.prefix.Subprefix(64, 0x100+s)
	default:
		return nw.prefix.Subprefix(64, s)
	}
}

// hostIID derives host i's IID under the network's scheme.
func hostIID(nw *network, subnet ip6.Prefix, i uint64) ip6.Addr {
	base := subnet.Addr()
	switch nw.scheme {
	case SchemeCounter:
		return ip6.AddrFromUint64(base.Hi(), i+1)
	case SchemeStructured:
		// service nybble + rack byte + counter: e.g. ::a:2:0:N.
		svc := hash2(nw.key^0x57c, i%4)%6 + 1
		return ip6.AddrFromUint64(base.Hi(), svc<<40|(i/16)<<16|i%16+1)
	case SchemeRandomIID, SchemeRandomFull:
		iid := hash2(nw.key^0x4a4d, i)
		if iid>>24&0xffff == 0xfffe {
			iid ^= 0x1111 << 24
		}
		return ip6.AddrFromUint64(base.Hi(), iid)
	case SchemeEUI64Single:
		oui := [3]byte{0x00, 0x0c, 0x29} // single vendor (VMware-style farm)
		h := hash2(nw.key^0xe64, i)
		mac := [6]byte{oui[0], oui[1], oui[2], byte(h >> 16), byte(h >> 8), byte(h)}
		return ip6.FromMAC(base, mac)
	case SchemeEUI64Multi:
		h := hash2(nw.key^0xe65, i)
		mac := [6]byte{byte(h >> 40), byte(h >> 32), byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}
		mac[0] &^= 0x01 // unicast
		return ip6.FromMAC(base, mac)
	}
	return ip6.AddrFromUint64(base.Hi(), i+1)
}

// planFarm populates a hosting/CDN/service/academic network with servers
// plus stale sibling addresses (old DNS records that no longer respond).
func (in *Internet) planFarm(nw *network, nextDomain func() uint32) {
	rng := rand.New(rand.NewSource(int64(nw.key)))
	scale := in.cfg.Scale

	var median float64
	switch {
	case nw.asn == bgp.FindASN("Amazon"):
		median = 1200
	case nw.asn == bgp.FindASN("Akamai") || nw.asn == bgp.FindASN("Cloudflare"):
		median = 700
	case nw.asn == bgp.FindASN("Google") || nw.asn == bgp.FindASN("HDNet"):
		median = 400
	case nw.kind == bgp.KindHoster || nw.kind == bgp.KindCloud:
		median = 14
	case nw.kind == bgp.KindCDN:
		median = 40
	case nw.kind == bgp.KindInternetService:
		median = 18
	default: // academic, enterprise
		median = 8
	}
	// Only the first announcement of small operators hosts a farm; big
	// ones host on every /32 announcement but not on each tiny /48.
	if nw.prefix.Bits() > 40 && !chance(mix64(nw.key^7), 0.25) {
		return
	}
	n := int(float64(lognormalInt(rng, median, 0.9)) * scale)
	if n <= 0 {
		return
	}

	quicFlaky := nw.asn == bgp.FindASN("Akamai") || nw.asn == bgp.FindASN("HDNet")
	// A quarter of sizable pools are one machine with many bound
	// addresses (the §5.4 validation deep-dive population).
	cloned := n >= 16 && chance(mix64(nw.key^8), 0.25)
	clonedKey := hash2(nw.key, 0xc104ed)

	perSubnet := 200
	if nw.scheme == SchemeRandomFull {
		perSubnet = 30
	}
	for i := 0; i < n; i++ {
		subnet := farmSubnet(nw, uint64(i/perSubnet))
		addr := hostIID(nw, subnet, uint64(i%perSubnet))
		hk := hashAddr(nw.key, addr)

		serves := wire.RespMask(0)
		serves.Set(wire.ICMPv6)
		isDNS := chance(mix64(hk^1), dnsShare(nw.kind))
		if isDNS {
			serves.Set(wire.UDP53)
			if chance(mix64(hk^2), 0.14) {
				serves.Set(wire.TCP80)
			}
		} else {
			serves.Set(wire.TCP80)
			if chance(mix64(hk^3), 0.62) {
				serves.Set(wire.TCP443)
				if chance(mix64(hk^4), 0.30) || quicFlaky {
					serves.Set(wire.UDP443)
				}
			}
		}
		// A small share of hosts drop ICMP at the border.
		if chance(mix64(hk^5), 0.05) {
			m := serves
			m &^= 1 << wire.ICMPv6
			if m != 0 {
				serves = m
			}
		}
		mk := hash2(nw.key, uint64(i))
		if cloned {
			mk = clonedKey
		}
		class := ClassWebServer
		if isDNS {
			class = ClassDNSServer
		}
		in.addHost(Host{
			Addr:      addr,
			ASN:       nw.asn,
			Class:     class,
			Serves:    serves,
			Machine:   mk,
			DeathDay:  deathDay(mix64(hk^6), 0.0012, 3*in.Horizon()),
			QUICFlaky: quicFlaky,
			Domain:    nextDomain(),
		})
	}
	// Stale siblings: the counter continued past the live range in old
	// DNS records; they resolve but do not respond.
	nStale := int(float64(n) * (1.0 + unit(mix64(nw.key^9))*1.5))
	for i := 0; i < nStale; i++ {
		subnet := farmSubnet(nw, uint64((n+i)/perSubnet))
		addr := hostIID(nw, subnet, uint64((n+i)%perSubnet))
		in.stale = append(in.stale, StaleRecord{Addr: addr, ASN: nw.asn, Domain: nextDomain()})
	}
}

func dnsShare(k bgp.Kind) float64 {
	switch k {
	case bgp.KindInternetService:
		return 0.30
	case bgp.KindHoster:
		return 0.18
	case bgp.KindCloud:
		return 0.10
	default:
		return 0.08
	}
}

// planRouters adds core/border routers in the operator's router subnet.
func (in *Internet) planRouters(nw *network) {
	// Routers only on the covering announcement (not every /48).
	if nw.prefix.Bits() > 36 {
		return
	}
	n := 2 + int(hash2(nw.key, 0x4007e4)%6)
	sub := nw.prefix.Subprefix(64, 0xffff)
	for i := 0; i < n; i++ {
		addr := ip6.AddrFromUint64(sub.Addr().Hi(), uint64(i)+1)
		var serves wire.RespMask
		serves.Set(wire.ICMPv6)
		in.addHost(Host{
			Addr:     addr,
			ASN:      nw.asn,
			Class:    ClassRouter,
			Serves:   serves,
			Machine:  hash2(nw.key^0x4007, uint64(i)),
			DeathDay: -1,
		})
	}
}

// planISP attaches a subscriber-line pool to the operator's first (widest)
// announcement.
func (in *Internet) planISP(nw *network, all []ip6.Prefix) {
	// Only the covering announcement carries the pool.
	if len(all) > 0 && nw.prefix != all[0] {
		// Secondary announcements behave like small farms occasionally.
		if chance(mix64(nw.key^0x15b), 0.2) {
			in.planFarm(nw, func() uint32 { return 0 })
		}
		return
	}
	rng := rand.New(rand.NewSource(int64(nw.key ^ 0x115b)))
	scale := in.cfg.Scale
	var lines int
	switch nw.asn {
	case bgp.FindASN("DTAG"), bgp.FindASN("Comcast"), bgp.FindASN("ProXad"), bgp.FindASN("AT&T"), bgp.FindASN("Reliance"):
		lines = int(2800 * scale)
	case bgp.FindASN("Swisscom"), bgp.FindASN("Antel"), bgp.FindASN("Versatel"), bgp.FindASN("BIHNET"),
		bgp.FindASN("Sky Broadband"), bgp.FindASN("Google Fiber"), bgp.FindASN("Xs4all"), bgp.FindASN("ZTE Home"):
		lines = int(1200 * scale)
	default:
		lines = int(float64(lognormalInt(rng, 34, 1.0)) * scale)
	}
	if lines < 4 {
		lines = 4
	}
	bits := 2
	for 1<<bits < lines*4 {
		bits++
	}
	span := 56 - nw.prefix.Bits()
	if bits > span {
		bits = span
	}
	rotate := 0
	// Half of the large European ISPs renumber aggressively (DE/FR DSL).
	cc := in.Table.AS(nw.asn).Country
	if (cc == "DE" || cc == "FR" || cc == "CH" || cc == "AT" || cc == "PL") && chance(mix64(nw.key^0x407a), 0.75) {
		rotate = 1 + int(hash2(nw.key, 0x707)%3)
	} else if chance(mix64(nw.key^0x407b), 0.15) {
		rotate = 2 + int(hash2(nw.key, 0x708)%5)
	}
	g := hash2(nw.key, 0x6) | 1
	isp := lineISP{
		key:         hash2(nw.key, 0x11e5),
		asn:         nw.asn,
		base:        nw.prefix,
		lines:       lines,
		bits:        bits,
		mulG:        g,
		invG:        invOdd(g),
		rotate:      rotate,
		hostShare:   0.12 + unit(mix64(nw.key^0xd0))*0.18,
		clientShare: 0.3 + unit(mix64(nw.key^0xc1))*0.3,
	}
	// Count the domain-hosting lines once so LineHosts can pre-size its
	// output exactly instead of growing from nil.
	for i := uint64(0); i < uint64(isp.lines); i++ {
		if isp.hostsDomain(i) {
			isp.domainLines++
		}
	}
	nw.isp = int32(len(in.isps))
	in.isps = append(in.isps, isp)
}

// planAtlas scatters RIPE-Atlas-style probes over most ASes — the
// balanced, router-and-probe-flavoured source of §3.
func (in *Internet) planAtlas() {
	n := 0
	for i := range in.nets {
		nw := &in.nets[i]
		if nw.prefix.Bits() > 36 {
			continue
		}
		if !chance(mix64(nw.key^0xa71a5), 0.55) {
			continue
		}
		probes := 1 + int(hash2(nw.key, 0xa7)%3)
		sub := nw.prefix.Subprefix(64, 0xa71a)
		for i := 0; i < probes; i++ {
			iid := hash2(nw.key^0xa71a50, uint64(i)) | 1
			if iid>>24&0xffff == 0xfffe {
				iid ^= 0x2222 << 24
			}
			addr := ip6.AddrFromUint64(sub.Addr().Hi(), iid)
			var serves wire.RespMask
			serves.Set(wire.ICMPv6)
			in.addHost(Host{
				Addr:     addr,
				ASN:      nw.asn,
				Class:    ClassAtlas,
				Serves:   serves,
				Machine:  hash2(nw.key^0xa71a51, uint64(i)),
				DeathDay: deathDay(hash2(nw.key^0xa71a52, uint64(i)), 0.0008, 3*in.Horizon()),
			})
			n++
		}
	}
}

// planBitnodes places always-on Bitcoin peers on static subscriber lines
// and small hosters.
func (in *Internet) planBitnodes() {
	target := int(300 * in.cfg.Scale)
	placed := 0
	for ni := range in.nets {
		nw := &in.nets[ni]
		if placed >= target {
			return
		}
		if nw.isp < 0 {
			continue
		}
		isp := &in.isps[nw.isp]
		if isp.rotate != 0 {
			continue
		}
		k := 1 + int(hash2(nw.key, 0xb17)%3)
		for i := 0; i < k && placed < target; i++ {
			line := hash2(isp.key^0xb17c, uint64(i)) % uint64(isp.lines)
			p56 := isp.linePrefix(line, 0)
			sub := p56.Subprefix(64, 2)
			iid := hash2(isp.key^0xb17d, line)
			if iid>>24&0xffff == 0xfffe {
				iid ^= 0x3333 << 24
			}
			addr := ip6.AddrFromUint64(sub.Addr().Hi(), iid)
			var serves wire.RespMask
			serves.Set(wire.ICMPv6)
			if chance(mix64(iid), 0.5) {
				serves.Set(wire.TCP80) // some run web panels
			}
			in.addHost(Host{
				Addr:     addr,
				ASN:      nw.asn,
				Class:    ClassBitnode,
				Serves:   serves,
				Machine:  hash2(isp.key^0xb17e, line),
				DeathDay: deathDay(hash2(isp.key^0xb17f, line), 0.016, 3*in.Horizon()),
			})
			placed++
		}
	}
}

// planTier1 creates the shared transit routers traceroute paths traverse.
func (in *Internet) planTier1() {
	// Reuse the router subnets of the first eight ISP pools as "transit".
	count := 0
	for i := range in.nets {
		nw := &in.nets[i]
		if nw.isp < 0 {
			continue
		}
		sub := nw.prefix.Subprefix(64, 0xffff)
		for i := 0; i < 8; i++ {
			addr := ip6.AddrFromUint64(sub.Addr().Hi(), 0x100+uint64(i))
			var serves wire.RespMask
			serves.Set(wire.ICMPv6)
			in.addHost(Host{
				Addr: addr, ASN: nw.asn, Class: ClassRouter,
				Serves: serves, Machine: hash2(nw.key^0x7137, uint64(i)), DeathDay: -1,
			})
			in.tier1 = append(in.tier1, addr)
		}
		count++
		if count == 8 {
			return
		}
	}
}
