package netsim

import (
	"math/rand"

	"expanse/internal/wire"
)

// tsMode describes how a machine generates TCP timestamp values, the
// behaviours §5.4 of the paper distinguishes.
type tsMode uint8

const (
	// tsNone: no timestamp option in replies.
	tsNone tsMode = iota
	// tsMonotonic: one global counter (pre-4.10 Linux, BSDs) — the
	// high-confidence aliasing signal (same machine ⇒ one linear counter).
	tsMonotonic
	// tsPerTuple: randomized initial value per <SRC,DST> tuple
	// (Linux ≥ 4.10); monotonic per flow but useless across addresses.
	tsPerTuple
	// tsConstant: some middleboxes echo a fixed value.
	tsConstant
)

// machine is a fingerprint profile: the stable TCP/IP stack personality of
// one physical host. All addresses aliased to the same machine answer with
// the same profile; distinct hosts have their own.
type machine struct {
	iTTL    uint8 // initial hop limit: 32, 64, 128 or 255
	optText string
	mss     uint16
	wscale  uint8
	wsize   uint16
	tsMode  tsMode
	tsBase  uint32 // counter start (boot time offset)
	tsHz    uint32 // counter rate (100, 250, 1000 Hz)
	key     uint64 // per-machine hash key (per-tuple ts, jitter)
}

// Common option layouts: the paper finds 99.5% of responsive hosts choose
// MSS-SACK-TS-N-WS; the rest use variants.
var optLayouts = []string{
	"MSS-SACK-TS-N-WS",     // dominant (Linux-style)
	"MSS-N-WS-N-N-TS-SACK", // macOS-style
	"MSS-N-WS-SACK-TS",
	"MSS-SACK-TS",
	"MSS",
}

var optLayoutWeights = []float64{0.995, 0.002, 0.0015, 0.001, 0.0005}

var ittlValues = []uint8{64, 255, 128, 32}
var ittlWeights = []float64{0.72, 0.17, 0.10, 0.01}

// machineFor returns the memoized machine profile for a key. Keys come
// from a population bounded by the world's machines (hosts, CPE lines,
// alias regions, plus quirk-derived variants), but profiles are needed on
// every probe answer: deriving one seeds a full math/rand generator (a
// 607-word fill), which dominated probe cost before memoization. The
// cache lives on the Internet — keys are salted with the world key, so
// sharing across worlds would only accumulate dead entries — and
// sync.Map gives the lock-free read path the concurrent scanner workers
// need.
func (in *Internet) machineFor(key uint64) machine {
	if m, ok := in.machines.Load(key); ok {
		return m.(machine)
	}
	m := newMachine(key)
	in.machines.Store(key, m)
	return m
}

// newMachine derives a deterministic machine profile from a key.
func newMachine(key uint64) machine {
	rng := rand.New(rand.NewSource(int64(key)))
	m := machine{key: key}
	m.iTTL = pickWeighted(rng, ittlValues, ittlWeights)
	m.optText = pickWeighted(rng, optLayouts, optLayoutWeights)
	m.mss = []uint16{1440, 1460, 1380, 8940}[weightedIdx(rng, []float64{0.55, 0.35, 0.07, 0.03})]
	m.wscale = []uint8{7, 8, 9, 5, 2}[weightedIdx(rng, []float64{0.5, 0.2, 0.15, 0.1, 0.05})]
	m.wsize = []uint16{28800, 65535, 64240, 14600, 29200}[weightedIdx(rng, []float64{0.35, 0.25, 0.2, 0.1, 0.1})]
	switch weightedIdx(rng, []float64{0.52, 0.36, 0.04, 0.08}) {
	case 0:
		m.tsMode = tsMonotonic
	case 1:
		m.tsMode = tsPerTuple
	case 2:
		m.tsMode = tsConstant
	default:
		m.tsMode = tsNone
	}
	m.tsBase = rng.Uint32()
	m.tsHz = []uint32{1000, 250, 100}[weightedIdx(rng, []float64{0.6, 0.25, 0.15})]
	return m
}

func pickWeighted[T any](rng *rand.Rand, vals []T, w []float64) T {
	return vals[weightedIdx(rng, w)]
}

func weightedIdx(rng *rand.Rand, w []float64) int {
	total := 0.0
	for _, x := range w {
		total += x
	}
	r := rng.Float64() * total
	for i, x := range w {
		r -= x
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}

// hasTS reports whether the layout carries a timestamp option.
func (m *machine) hasTS() bool {
	return m.tsMode != tsNone && containsTS(m.optText)
}

func containsTS(layout string) bool {
	for i := 0; i+1 < len(layout); i++ {
		if layout[i] == 'T' && layout[i+1] == 'S' {
			return true
		}
	}
	return false
}

// tsVal returns whether the machine echoes a TCP timestamp and the value
// it sends for a probe to dst-hash dstKey at virtual time at on the given
// day. It is the per-probe part of the fingerprint; everything else about
// a SYN-ACK is static per machine (see fingerprint).
func (m *machine) tsVal(dstKey uint64, day int, at wire.Time) (bool, uint32) {
	if !m.hasTS() {
		return false, 0
	}
	// Elapsed virtual seconds since machine boot: days plus microseconds.
	elapsed := uint64(day)*86_400 + uint64(at)/1_000_000
	ticks := uint32(elapsed * uint64(m.tsHz))
	// Sub-second component so probes microseconds apart still advance.
	ticks += uint32(uint64(at) % 1_000_000 * uint64(m.tsHz) / 1_000_000)
	switch m.tsMode {
	case tsMonotonic:
		return true, m.tsBase + ticks
	case tsPerTuple:
		return true, uint32(hash2(m.key, dstKey)) + ticks
	default: // tsConstant
		return true, m.tsBase
	}
}

// fingerprint returns the static SYN-ACK personality in the scan plane's
// interned vocabulary.
func (m *machine) fingerprint() wire.TCPFingerprint {
	return wire.TCPFingerprint{
		OptionsText: m.optText,
		MSS:         m.mss,
		WScale:      m.wscale,
		WSize:       m.wsize,
		TSPresent:   m.hasTS(),
	}
}

// tcpAnswer builds the SYN-ACK fingerprint for a probe to dst-hash dstKey
// at virtual time at on the given day — the heap-allocated per-probe form;
// the batch path interns fingerprint() and writes tsVal into a column.
func (m *machine) tcpAnswer(dstKey uint64, day int, at wire.Time) *wire.TCPInfo {
	info := &wire.TCPInfo{
		OptionsText: m.optText,
		MSS:         m.mss,
		WScale:      m.wscale,
		WSize:       m.wsize,
	}
	info.TSPresent, info.TSVal = m.tsVal(dstKey, day, at)
	return info
}
