package netsim

import (
	"expanse/internal/ip6"
)

// Subscriber-line pools.
//
// Residential ISPs assign each subscriber line a /56 from a pool and many
// of them renumber lines periodically (German DSL famously re-dials every
// 24h). The CPE (home router) keeps its MAC across renumbering, so its
// SLAAC address moves to a fresh /64 every rotation period. This is what
// makes the paper's scamper source grow explosively (§3: 25.9M addresses,
// 90.7% SLAAC, ZTE/AVM-dominated): daily traceroutes towards subscriber-
// hosted targets keep revealing brand-new CPE addresses.
//
// The pool is functional: the current /56 slot of line i on day d is a
// keyed affine permutation of i, so both directions are O(1):
//
//	slot = (i*g + h(k)) mod 2^bits        (g odd ⇒ invertible)
//	i    = (slot - h(k)) * g⁻¹ mod 2^bits
//
// where k = d / rotationPeriod.

// addrKind distinguishes the computed members of a line's /56.
type addrKind uint8

const (
	lineNone addrKind = iota
	lineCPE
	lineClient
	lineNAS
)

// vendorOUIs are MAC prefixes for CPE vendors, weighted like the paper's
// finding: 47.9% ZTE, 47.7% AVM (Fritzbox), 1.2% Huawei, long tail.
var vendorOUIs = []struct {
	name string
	oui  [3]byte
	w    float64
}{
	{"ZTE", [3]byte{0x28, 0xfd, 0x80}, 0.479},
	{"AVM", [3]byte{0x3c, 0xa6, 0x2f}, 0.477},
	{"Huawei", [3]byte{0x00, 0x66, 0x4b}, 0.012},
	{"other", [3]byte{0x00, 0x00, 0x00}, 0.032}, // tail: OUI derived per line
}

// VendorName returns the CPE vendor for a MAC address, for the §3
// vendor-mix analysis.
func VendorName(mac [6]byte) string {
	oui := [3]byte{mac[0], mac[1], mac[2]}
	for _, v := range vendorOUIs[:3] {
		if v.oui == oui {
			return v.name
		}
	}
	return "other"
}

// rotEpoch returns the rotation epoch index for a day.
func (l *lineISP) rotEpoch(day int) uint64 {
	if l.rotate <= 0 {
		return 0
	}
	return uint64(day / l.rotate)
}

// slotOf returns the /56 slot of line i during rotation epoch k.
func (l *lineISP) slotOf(line uint64, k uint64) uint64 {
	mask := uint64(1)<<l.bits - 1
	return (line*l.mulG + hash2(l.key, k)) & mask
}

// lineOf inverts slotOf: which line occupies a slot during epoch k.
func (l *lineISP) lineOf(slot uint64, k uint64) (uint64, bool) {
	mask := uint64(1)<<l.bits - 1
	line := ((slot - hash2(l.key, k)) & mask) * l.invG & mask
	if line >= uint64(l.lines) {
		return 0, false
	}
	return line, true
}

// linePrefix returns line i's /56 during day.
func (l *lineISP) linePrefix(line uint64, day int) ip6.Prefix {
	return l.base.Subprefix(56, l.slotOf(line, l.rotEpoch(day)))
}

// mac returns the stable CPE MAC of a line.
func (l *lineISP) mac(line uint64) [6]byte {
	h := hash2(l.key^0xaabb, line)
	r := unit(h)
	var oui [3]byte
	acc := 0.0
	idx := len(vendorOUIs) - 1
	for i, v := range vendorOUIs {
		acc += v.w
		if r < acc {
			idx = i
			break
		}
	}
	oui = vendorOUIs[idx].oui
	if idx == len(vendorOUIs)-1 {
		// Long tail: synthesize one of ~240 other vendor OUIs.
		v := hash2(l.key^0xcdef, line) % 240
		oui = [3]byte{0x40, byte(v), byte(mix64(v) >> 3)}
	}
	return [6]byte{oui[0], oui[1], oui[2], byte(h >> 16), byte(h >> 8), byte(h)}
}

// cpeAddr returns the CPE's SLAAC address on the line's first /64 during
// the given day.
func (l *lineISP) cpeAddr(line uint64, day int) ip6.Addr {
	p56 := l.linePrefix(line, day)
	net64 := p56.Subprefix(64, 0)
	return ip6.FromMAC(net64.Addr(), l.mac(line))
}

// clientAddr returns the line's client device address (privacy-extension
// random IID, stable for the rotation epoch) or false if the line has no
// client.
func (l *lineISP) clientAddr(line uint64, day int) (ip6.Addr, bool) {
	if !chance(hash2(l.key^0xc11e47, line), l.clientShare) {
		return ip6.Addr{}, false
	}
	p56 := l.linePrefix(line, day)
	net64 := p56.Subprefix(64, 1)
	iid := hash3(l.key^0x9d1d, line, l.rotEpoch(day)) | 1<<63 // high weight, non-SLAAC
	if iid>>24&0xffff == 0xfffe {
		iid ^= 0xffff << 24 // never collide with the SLAAC marker
	}
	return ip6.AddrFromUint64(net64.Addr().Hi(), iid), true
}

// hostsDomain reports whether a line hosts a dynamic-DNS domain (making it
// a traceroute target and an FDNS/DL entry).
func (l *lineISP) hostsDomain(line uint64) bool {
	return chance(hash2(l.key^0xd07a11, line), l.hostShare)
}

// nasLine reports whether the line's hosted domain points at a separate
// NAS behind the CPE (~30%) rather than at the CPE itself (~70%, the
// common dyndns-on-router setup).
func (l *lineISP) nasLine(line uint64) bool {
	return hash2(l.key^0x4a51, line)%10 < 3
}

// cpeMachine returns the machine key of a line's CPE.
func (l *lineISP) cpeMachine(line uint64) uint64 { return hash2(l.key^0x3c9e, line) }

// clientMachine returns the machine key of a line's client device.
func (l *lineISP) clientMachine(line uint64) uint64 { return hash2(l.key^0x3c11, line) }

// lineAt resolves an address inside the pool to (line, member kind) for
// the given day. It reports lineNone if the address is not a currently
// valid line member.
func (l *lineISP) lineAt(addr ip6.Addr, day int) (uint64, addrKind, bool) {
	if !l.base.Contains(addr) {
		return 0, lineNone, false
	}
	// Slot index: bits [base.Bits(), 56) of the address.
	span := 56 - l.base.Bits()
	slot := addr.Hi() >> 8 & (1<<span - 1)
	if l.bits < span {
		// Slots only occupy the low l.bits of the span; higher slots are
		// never assigned.
		if slot>>l.bits != 0 {
			return 0, lineNone, false
		}
	}
	k := l.rotEpoch(day)
	line, ok := l.lineOf(slot, k)
	if !ok {
		return 0, lineNone, false
	}
	if addr == l.cpeAddr(line, day) {
		return line, lineCPE, true
	}
	if ca, ok := l.clientAddr(line, day); ok && addr == ca {
		return line, lineClient, true
	}
	if l.hostsDomain(line) && l.nasLine(line) && addr == l.nasAddr(line, day) {
		return line, lineNAS, true
	}
	return 0, lineNone, false
}

// invOdd computes the multiplicative inverse of odd g modulo 2^64 by
// Newton iteration; masked by callers to the pool width.
func invOdd(g uint64) uint64 {
	x := g // 3 bits correct
	for i := 0; i < 5; i++ {
		x *= 2 - g*x
	}
	return x
}
