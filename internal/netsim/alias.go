package netsim

import (
	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// StaleRecord is an address that DNS data still references but that no
// longer responds — the dominant reason only a fraction of hitlist
// addresses answer probes (§6).
type StaleRecord struct {
	Addr   ip6.Addr
	ASN    bgp.ASN
	Domain uint32
}

// AliasRecord is a "customer" DNS record pointing into an aliased region
// (CDN per-customer addresses, the IP_FREEBIND pattern of §5). These are
// how aliased prefixes flood hitlists with responsive but worthless
// addresses. Region is the ID of the owning region in AliasedRegions()
// order — an index into the flat region column, not a pointer, so record
// storage stays compact and relocatable.
type AliasRecord struct {
	Addr   ip6.Addr
	ASN    bgp.ASN
	Domain uint32
	Region int32
}

// addRegion registers an alias region in the trie and the flat region
// column, returning its dense ID.
func (in *Internet) addRegion(r AliasRegion) int32 {
	id := int32(len(in.regions))
	in.regions = append(in.regions, r)
	in.aliasT.Insert(r.Prefix, id)
	return id
}

// webMask is the protocol set aliased web front-ends answer.
func webMask(quic bool) wire.RespMask {
	var m wire.RespMask
	m.Set(wire.ICMPv6)
	m.Set(wire.TCP80)
	m.Set(wire.TCP443)
	if quic {
		m.Set(wire.UDP443)
	}
	return m
}

// planAliases builds the ground-truth aliased prefixes:
//
//   - most of Amazon's 189 /48s and Incapsula's 64 /48s (the "hook" of
//     Figure 5),
//   - a handful of fully aliased /32s, including one whole-/32 web server
//     (footnote 1 of the paper),
//   - many aliased /64s inside hoster/cloud networks (IP_FREEBIND on
//     individual machines; 20.7k in the paper),
//   - the §5.1 anomaly cases: a SYN-proxy /80, an aliased region with a
//     non-aliased 0x0-branch hole, and rate-limited neighbouring /120s.
func (in *Internet) planAliases(nextDomain func() uint32) {
	recordsPer := func(p ip6.Prefix, base float64) int {
		n := int(base * in.cfg.Scale * (0.5 + unit(hash2(in.key^0xa11a5, p.Addr().Hi()))))
		if n < 1 {
			n = 1
		}
		return n
	}
	// addRecords creates the customer DNS records pointing into a region.
	// CDN-style /48 regions hand out pseudo-random per-customer addresses
	// (Amazon's pattern); IP_FREEBIND machines binding a single /64 give
	// customers sequential addresses, so those records are counter-style —
	// which is also what keeps the per-/32 entropy fingerprints of hoster
	// space crisp (Figure 2).
	addRecords := func(ri int32, n int) {
		r := &in.regions[ri]
		rng := in.rngFor(r.Machine ^ 0x4ec04d5)
		counterStyle := r.Prefix.Bits() >= 64
		for i := 0; i < n; i++ {
			var addr ip6.Addr
			if counterStyle {
				addr = r.Prefix.NthAddr(uint64(i) + 1)
			} else {
				addr = r.Prefix.RandomAddr(rng)
			}
			if !r.Hole.IsZero() && r.Hole.Contains(addr) {
				continue
			}
			in.aliasRecords = append(in.aliasRecords, AliasRecord{
				Addr: addr, ASN: r.ASN, Domain: nextDomain(), Region: ri,
			})
		}
	}

	quirkFor := func(key uint64) AliasQuirk {
		var q AliasQuirk
		h := mix64(key ^ 0x9e12c5)
		// Rates tuned to Table 5: optionstext ~0.5%, WScale ~0.5%,
		// MSS ~5%, WSize ~5%, iTTL ≈ 0 (handled by explicit flip regions).
		if chance(h, 0.005) {
			q |= QuirkProxyMix
		}
		if chance(mix64(h^1), 0.052) {
			q |= QuirkWSizeVary
		}
		if chance(mix64(h^2), 0.050) {
			q |= QuirkMSSVary
		}
		return q
	}

	// 1. Amazon: ~90% of its /48s aliased.
	amazon := bgp.FindASN("Amazon")
	incap := bgp.FindASN("Incapsula")
	for _, asn := range []bgp.ASN{amazon, incap} {
		for i, p := range in.Table.PrefixesOf(asn) {
			if p.Bits() != 48 {
				continue
			}
			if !chance(hash3(in.key^0xa3a2, uint64(asn), uint64(i)), 0.90) {
				continue
			}
			key := hash3(in.key^0xa11, uint64(asn), p.Addr().Hi())
			r := AliasRegion{
				Prefix:  p,
				ASN:     asn,
				Machine: key,
				Serves:  webMask(chance(mix64(key), 0.4)),
				Quirks:  quirkFor(key),
				Loss:    0.004 + unit(mix64(key^3))*0.01,
			}
			if chance(mix64(key^4), 0.02) {
				r.Loss = 0.1 + unit(mix64(key^5))*0.15
			}
			addRecords(in.addRegion(r), recordsPer(p, 420))
		}
	}

	// 2. Aliased /32 group + the whole-/32 single web server.
	groupDone, wholeDone := 0, false
	for i := range in.nets {
		nw := &in.nets[i]
		if nw.kind != bgp.KindCloud || nw.prefix.Bits() != 32 {
			continue
		}
		if !wholeDone {
			key := hash2(in.key^0x3201, nw.key)
			ri := in.addRegion(AliasRegion{
				Prefix: nw.prefix, ASN: nw.asn, Machine: key,
				Serves: webMask(false), Quirks: 0, Loss: 0.006,
			})
			addRecords(ri, recordsPer(nw.prefix, 60))
			wholeDone = true
			continue
		}
		if groupDone < 8 && chance(hash2(in.key^0x3202, nw.key), 0.1) {
			key := hash2(in.key^0x3203, nw.key)
			ri := in.addRegion(AliasRegion{
				Prefix: nw.prefix, ASN: nw.asn, Machine: key,
				Serves: webMask(true), Quirks: quirkFor(key), Loss: 0.008,
			})
			addRecords(ri, recordsPer(nw.prefix, 40))
			groupDone++
		}
	}

	// 3. Aliased /64s in hosters/clouds (single machines binding a /64).
	for ni := range in.nets {
		nw := &in.nets[ni]
		if nw.kind != bgp.KindHoster && nw.kind != bgp.KindCloud && nw.kind != bgp.KindInternetService {
			continue
		}
		if nw.prefix.Bits() > 40 {
			continue
		}
		if !chance(mix64(nw.key^0x64a1), 0.42) {
			continue
		}
		n := 1 + int(hash2(nw.key, 0x64)%4)
		for i := 0; i < n; i++ {
			p64 := nw.prefix.Subprefix(64, 0xf1ee+uint64(i))
			key := hash3(in.key^0x64a2, nw.key, uint64(i))
			r := AliasRegion{
				Prefix: p64, ASN: nw.asn, Machine: key,
				Serves: webMask(chance(mix64(key), 0.3)),
				Quirks: quirkFor(key),
				Loss:   0.004 + unit(mix64(key^6))*0.012,
			}
			if chance(mix64(key^7), 0.012) {
				r.Quirks |= QuirkTTLFlip // the 2 iTTL-flipping /48 parents
			}
			if chance(mix64(key^8), 0.03) {
				r.Loss = 0.1 + unit(mix64(key^9))*0.12
			}
			addRecords(in.addRegion(r), recordsPer(p64, 16))
		}
	}

	// 4. §5.1 anomaly cases, placed in the first suitable hoster.
	anomalyNet := int32(-1)
	for i := range in.nets {
		if in.nets[i].kind == bgp.KindHoster && in.nets[i].prefix.Bits() == 32 {
			anomalyNet = int32(i)
			break
		}
	}
	if anomalyNet >= 0 {
		nw := &in.nets[anomalyNet]
		// 4a. SYN proxy /80: parent /72 aliased, /80 child behind a SYN
		// proxy answering 3-5 of 16 branches, varying per day.
		p72 := nw.prefix.Subprefix(72, 0xdead01)
		p80 := p72.Subprefix(80, 3)
		parent := in.addRegion(AliasRegion{
			Prefix: p72, ASN: nw.asn, Machine: hash2(in.key, 0x5a01),
			Serves: webMask(false), Hole: p80, Loss: 0.005,
		})
		in.addRegion(AliasRegion{
			Prefix: p80, ASN: nw.asn, Machine: hash2(in.key, 0x5a02),
			Quirks: QuirkSYNProxy, Loss: 0,
		})
		addRecords(parent, recordsPer(p72, 12))

		// 4b. DE-CIX case: aliased /112 whose 0x0-branch /120 inside one
		// /116 is answered by different infrastructure (a hole).
		p112 := nw.prefix.Subprefix(112, 0xdecc1)
		p116 := p112.Subprefix(116, 0xb)
		hole := p116.Subprefix(120, 0x0)
		in.addRegion(AliasRegion{
			Prefix: p112, ASN: nw.asn, Machine: hash2(in.key, 0x5a03),
			Serves: webMask(false), Hole: hole, Loss: 0.004,
		})

		// 4c. Six neighbouring rate-limited /120s: an aliased /116 whose
		// low /120s are ICMP-rate-limited.
		p116b := nw.prefix.Subprefix(116, 0xacdc2)
		in.addRegion(AliasRegion{
			Prefix: p116b, ASN: nw.asn, Machine: hash2(in.key, 0x5a04),
			Serves: webMask(false), Quirks: QuirkRateLimit, Loss: 0.02,
		})

		// 4d. Footnote-style /96 inside the same hoster for fan-out tests.
		p96 := nw.prefix.Subprefix(96, 0xfee1)
		r96 := in.addRegion(AliasRegion{
			Prefix: p96, ASN: nw.asn, Machine: hash2(in.key, 0x5a05),
			Serves: webMask(true), Loss: 0.006,
		})
		addRecords(r96, recordsPer(p96, 10))
	}
}

// planRDNS creates the reverse-DNS population of §8: a balanced,
// hosting-heavy set largely disjoint from the forward-DNS sources. A
// slice of existing hosts gets rDNS entries, and hosters carry additional
// rDNS-only hosts (plus stale rDNS records).
func (in *Internet) planRDNS(nextDomain func() uint32) {
	// Existing hosts: a PTR-share sweep over the sealed sorted columns.
	// Each host's draw is a pure function of its address, so sweeping in
	// sorted instead of insertion order selects the identical PTR set;
	// the rdns slice is consumed as a set (dnssim.NewRTree), so its
	// internal order is not observable.
	hc := &in.hc
	for i := int32(0); i < int32(hc.n()); i++ {
		addr := hc.addrAt(i)
		hk := hashAddr(in.key^0x4d45, addr)
		// Only a small slice of forward-DNS-visible machines also have
		// PTRs; the bulk of the rDNS tree is infrastructure the forward
		// sources never see (that is what makes rDNS "mostly new", §8).
		switch hc.classAt(i) {
		case ClassWebServer, ClassDNSServer:
			if chance(hk, 0.07) {
				in.rdns = append(in.rdns, addr)
			}
		case ClassRouter:
			if chance(hk, 0.10) {
				in.rdns = append(in.rdns, addr)
			}
		}
	}
	// rDNS-only hosts on hosters (provisioned-but-unlisted machines) —
	// these make rDNS "a valuable addition" (11.1M of 11.7M new in §8).
	for ni := range in.nets {
		nw := &in.nets[ni]
		if nw.kind != bgp.KindHoster && nw.kind != bgp.KindInternetService {
			continue
		}
		if nw.prefix.Bits() > 36 || !chance(mix64(nw.key^0x4d0), 0.5) {
			continue
		}
		n := int(float64(16+hash2(nw.key, 0x4d1)%48) * in.cfg.Scale)
		sub := nw.prefix.Subprefix(64, 0xd)
		for i := 0; i < n; i++ {
			addr := ip6.AddrFromUint64(sub.Addr().Hi(), 0x100+uint64(i))
			hk := hashAddr(nw.key, addr)
			var serves wire.RespMask
			serves.Set(wire.ICMPv6)
			if chance(mix64(hk^1), 0.35) {
				serves.Set(wire.TCP80)
			}
			if chance(mix64(hk^2), 0.2) {
				serves.Set(wire.TCP443)
			}
			in.addHost(Host{
				Addr: addr, ASN: nw.asn, Class: ClassWebServer,
				Serves: serves, Machine: hash2(nw.key^0x4d2, uint64(i)),
				DeathDay: deathDay(mix64(hk^3), 0.002, 3*in.Horizon()),
			})
			in.rdns = append(in.rdns, addr)
		}
		// Stale rDNS entries (PTR records for long-gone machines).
		nStale := n * 10
		for i := 0; i < nStale; i++ {
			addr := ip6.AddrFromUint64(sub.Addr().Hi(), 0x10000+uint64(i))
			in.rdns = append(in.rdns, addr)
		}
		_ = nextDomain
	}
}

// StaleRecords returns the stale forward-DNS records.
func (in *Internet) StaleRecords() []StaleRecord { return in.stale }

// AliasRecords returns the DNS records pointing into aliased regions.
func (in *Internet) AliasRecords() []AliasRecord { return in.aliasRecords }

// RDNSAddrs returns all addresses that have reverse-DNS entries.
func (in *Internet) RDNSAddrs() []ip6.Addr { return in.rdns }
