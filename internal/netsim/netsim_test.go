package netsim

import (
	"math/rand"
	"sync"
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// testConfig returns a small world for fast tests.
func testConfig() Config {
	return Config{
		Seed:      42,
		Registry:  bgp.RegistryConfig{ASes: 250, PrefixesPerAS: 3.5, Seed: 7},
		Scale:     0.08,
		EpochDays: 7,
		Epochs:    6,
	}
}

var world = New(testConfig()) // shared across tests (read-only)

func TestDeterminism(t *testing.T) {
	a, b := New(testConfig()), New(testConfig())
	if a.hc.n() != b.hc.n() {
		t.Fatalf("host counts differ: %d vs %d", a.hc.n(), b.hc.n())
	}
	for i := int32(0); i < int32(a.hc.n()); i++ {
		if a.hc.hostAt(i) != b.hc.hostAt(i) {
			t.Fatalf("host %d differs", i)
		}
	}
	if ad, bd := a.Digest(), b.Digest(); ad != bd {
		t.Fatal("world digests differ")
	}
	if len(a.regions) != len(b.regions) {
		t.Fatal("region counts differ")
	}
	// Same probes give same answers, including fingerprints.
	rng := rand.New(rand.NewSource(1))
	hosts := a.Hosts(ClassWebServer)
	for i := 0; i < 50 && i < len(hosts); i++ {
		h := hosts[rng.Intn(len(hosts))]
		for _, p := range wire.Protos {
			ra := a.Probe(h.Addr, p, 3, 1000)
			rb := b.Probe(h.Addr, p, 3, 1000)
			if ra.OK != rb.OK || ra.HopLimit != rb.HopLimit {
				t.Fatalf("probe mismatch for %v %v", h.Addr, p)
			}
			if (ra.TCP == nil) != (rb.TCP == nil) {
				t.Fatalf("TCP info mismatch for %v %v", h.Addr, p)
			}
			if ra.TCP != nil && *ra.TCP != *rb.TCP {
				t.Fatalf("fingerprint mismatch for %v %v", h.Addr, p)
			}
		}
	}
}

func TestPopulationsExist(t *testing.T) {
	classes := []HostClass{ClassWebServer, ClassDNSServer, ClassRouter, ClassBitnode, ClassAtlas}
	for _, c := range classes {
		if n := len(world.Hosts(c)); n == 0 {
			t.Errorf("no hosts of class %v", c)
		}
	}
	if len(world.AliasedRegions()) == 0 {
		t.Error("no aliased regions")
	}
	if len(world.StaleRecords()) == 0 {
		t.Error("no stale records")
	}
	if len(world.AliasRecords()) == 0 {
		t.Error("no alias records")
	}
	if len(world.RDNSAddrs()) == 0 {
		t.Error("no rDNS addresses")
	}
	if len(world.LineHosts()) == 0 {
		t.Error("no line hosts")
	}
}

func TestWebServerResponds(t *testing.T) {
	ok := 0
	hosts := world.Hosts(ClassWebServer)
	for i, h := range hosts {
		if i >= 300 {
			break
		}
		if h.DeathDay == 0 {
			continue
		}
		// Probe every protocol it serves a few times to ride out loss.
		responded := false
		for attempt := 0; attempt < 3 && !responded; attempt++ {
			for _, p := range wire.Protos {
				if h.Serves.Has(p) && world.Probe(h.Addr, p, 0, wire.Time(attempt*1000)).OK {
					responded = true
					break
				}
			}
		}
		if responded {
			ok++
		}
	}
	if ok < 250 {
		t.Errorf("only %d/300 live web servers responded", ok)
	}
}

func TestHostDeath(t *testing.T) {
	for _, h := range world.Hosts() {
		if h.DeathDay < 2 {
			continue
		}
		day := int(h.DeathDay)
		for _, p := range wire.Protos {
			if world.Probe(h.Addr, p, day, 0).OK {
				t.Fatalf("host %v responded on death day %d", h.Addr, day)
			}
			if world.Probe(h.Addr, p, day+10, 0).OK {
				t.Fatalf("host %v responded after death", h.Addr)
			}
		}
		return // one is enough
	}
	t.Skip("no dying host in sample")
}

func TestAliasedRegionsRespond(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, r := range world.AliasedRegions() {
		if r.Quirks&QuirkSYNProxy != 0 || r.Quirks&QuirkRateLimit != 0 || r.Loss > 0.05 {
			continue
		}
		hits := 0
		const n = 16
		for i := 0; i < n; i++ {
			a := r.Prefix.RandomAddr(rng)
			if !r.Hole.IsZero() && r.Hole.Contains(a) {
				continue
			}
			got := false
			for attempt := 0; attempt < 2 && !got; attempt++ {
				for _, p := range []wire.Proto{wire.ICMPv6, wire.TCP80} {
					if r.Serves.Has(p) && world.Probe(a, p, 1, wire.Time(i*100+attempt)).OK {
						got = true
						break
					}
				}
			}
			if got {
				hits++
			}
		}
		if hits < n-2 {
			t.Errorf("aliased region %v: only %d/%d random addresses responded", r.Prefix, hits, n)
		}
	}
}

func TestGroundTruthAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := world.AliasedRegions()[0]
	a := r.Prefix.RandomAddr(rng)
	if !r.Hole.IsZero() && r.Hole.Contains(a) {
		a = r.Prefix.Addr()
	}
	if !world.GroundTruthAliased(a) {
		t.Error("address in region not ground-truth aliased")
	}
	if world.GroundTruthAliased(ip6.MustParseAddr("fe80::1")) {
		t.Error("link-local aliased?")
	}
	// Holes are not aliased.
	for _, r := range world.AliasedRegions() {
		if r.Hole.IsZero() {
			continue
		}
		ha := r.Hole.RandomAddr(rng)
		if world.GroundTruthAliased(ha) {
			t.Errorf("hole %v of %v misreported as aliased", r.Hole, r.Prefix)
		}
	}
}

// TestRandomAddressesSilent is the property APD depends on: random
// addresses in non-aliased space almost never respond.
func TestRandomAddressesSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	anns := world.Table.Announcements()
	probes, hits := 0, 0
	for i := 0; i < 3000; i++ {
		ann := anns[rng.Intn(len(anns))]
		a := ann.Prefix.RandomAddr(rng)
		if world.GroundTruthAliased(a) {
			continue
		}
		probes++
		if world.Probe(a, wire.ICMPv6, 2, wire.Time(i)).OK ||
			world.Probe(a, wire.TCP80, 2, wire.Time(i)).OK {
			hits++
		}
	}
	if probes == 0 {
		t.Fatal("no non-aliased probes drawn")
	}
	if rate := float64(hits) / float64(probes); rate > 0.005 {
		t.Errorf("random-address response rate %.4f, want ~0", rate)
	}
}

func TestLinePoolRoundTrip(t *testing.T) {
	var pool *lineISP
	for i := range world.isps {
		if world.isps[i].rotate > 0 {
			pool = &world.isps[i]
			break
		}
	}
	if pool == nil {
		t.Fatal("no rotating pool")
	}
	for day := 0; day < 10; day += 3 {
		for line := uint64(0); line < 20 && line < uint64(pool.lines); line++ {
			cpe := pool.cpeAddr(line, day)
			gotLine, kind, ok := pool.lineAt(cpe, day)
			if !ok || kind != lineCPE || gotLine != line {
				t.Fatalf("day %d line %d: lineAt(cpe) = %d,%v,%v", day, line, gotLine, kind, ok)
			}
			if ca, has := pool.clientAddr(line, day); has {
				gotLine, kind, ok = pool.lineAt(ca, day)
				if !ok || kind != lineClient || gotLine != line {
					t.Fatalf("client round trip failed: %v %v %v", gotLine, kind, ok)
				}
			}
		}
	}
}

func TestLineRotation(t *testing.T) {
	var pool *lineISP
	for i := range world.isps {
		if world.isps[i].rotate > 0 {
			pool = &world.isps[i]
			break
		}
	}
	if pool == nil {
		t.Fatal("no rotating pool")
	}
	day0 := 0
	day1 := pool.rotate // next epoch
	a0 := pool.cpeAddr(0, day0)
	a1 := pool.cpeAddr(0, day1)
	if a0 == a1 {
		t.Fatal("CPE address did not rotate")
	}
	// IID (the MAC-derived part) must be stable across rotation.
	if a0.Lo() != a1.Lo() {
		t.Error("CPE IID changed across rotation; MAC should be stable")
	}
	// Yesterday's address must be dead today.
	if _, _, ok := pool.lineAt(a0, day1); ok {
		t.Error("stale CPE address still resolves after rotation")
	}
	// SLAAC.
	if !a0.IsSLAAC() {
		t.Error("CPE address not SLAAC")
	}
	mac, ok := a0.MAC()
	if !ok {
		t.Fatal("no MAC recoverable")
	}
	_ = VendorName(mac)
}

func TestCPERespondsOnlyWhileCurrent(t *testing.T) {
	var nw *network
	for i := range world.nets {
		n := &world.nets[i]
		if n.isp >= 0 && world.isps[n.isp].rotate > 0 {
			nw = n
			break
		}
	}
	if nw == nil {
		t.Fatal("no rotating pool")
	}
	pool := &world.isps[nw.isp]
	line := uint64(1)
	day := 0
	cpe := pool.cpeAddr(line, day)
	hits := 0
	for a := 0; a < 5; a++ {
		if world.Probe(cpe, wire.ICMPv6, day, wire.Time(a)).OK {
			hits++
		}
	}
	if hits == 0 {
		t.Error("current CPE never responds to ICMP")
	}
	later := day + pool.rotate*3
	if world.Probe(cpe, wire.ICMPv6, later, 0).OK {
		if pool.cpeAddr(line, later) == cpe {
			t.Skip("slot coincidentally same")
		}
		t.Error("stale CPE address still responds after renumbering")
	}
}

func TestVendorMix(t *testing.T) {
	var pool *lineISP
	for i := range world.isps {
		if world.isps[i].lines > 300 {
			pool = &world.isps[i]
			break
		}
	}
	if pool == nil {
		t.Skip("no large pool at this scale")
	}
	counts := map[string]int{}
	for i := 0; i < pool.lines; i++ {
		counts[VendorName(pool.mac(uint64(i)))]++
	}
	total := float64(pool.lines)
	if z := float64(counts["ZTE"]) / total; z < 0.35 || z > 0.6 {
		t.Errorf("ZTE share %.2f, want ~0.48", z)
	}
	if a := float64(counts["AVM"]) / total; a < 0.35 || a > 0.6 {
		t.Errorf("AVM share %.2f, want ~0.48", a)
	}
}

func TestTraceroutePath(t *testing.T) {
	// Pick a NAS-behind-CPE line: its traceroute crosses the CPE. (For
	// dyndns-on-router lines the CPE is the destination itself.)
	var lh LineHost
	found := false
	for _, cand := range world.LineHosts() {
		if cand.isp.nasLine(cand.Line) {
			lh, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no NAS line in world")
	}
	dst := lh.Addr(0)
	path := world.TraceroutePath(dst, 0)
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	// The path towards a line-hosted NAS must include the line's CPE
	// (an SLAAC address).
	foundSLAAC := false
	for _, hop := range path {
		if hop.Addr.IsSLAAC() {
			foundSLAAC = true
		}
		if hop.Addr == dst {
			t.Error("path contains destination")
		}
	}
	if !foundSLAAC {
		t.Error("no CPE (SLAAC) hop on path to subscriber target")
	}
}

func TestSchemesAllPresent(t *testing.T) {
	seen := map[Scheme]int{}
	for _, nw := range world.Networks() {
		seen[nw.Scheme]++
	}
	for s := Scheme(0); s < NumSchemes; s++ {
		if seen[s] == 0 {
			t.Errorf("scheme %v absent from world", s)
		}
	}
	// Counter must dominate, mirroring cluster popularity.
	if seen[SchemeCounter] <= seen[SchemeEUI64Multi] {
		t.Error("scheme popularity order wrong")
	}
}

func TestMachineFingerprints(t *testing.T) {
	m1, m2 := newMachine(1), newMachine(1)
	if m1 != m2 {
		t.Fatal("machine derivation not deterministic")
	}
	// Monotonic timestamps advance with time.
	m := machine{iTTL: 64, optText: "MSS-SACK-TS-N-WS", tsMode: tsMonotonic, tsHz: 1000, tsBase: 10}
	a := m.tcpAnswer(1, 0, 1_000_000)
	b := m.tcpAnswer(1, 0, 2_000_000)
	if !a.TSPresent || !b.TSPresent || b.TSVal <= a.TSVal {
		t.Errorf("monotonic TS did not advance: %d -> %d", a.TSVal, b.TSVal)
	}
	// Per-tuple: different destinations have different bases.
	m.tsMode = tsPerTuple
	x := m.tcpAnswer(111, 0, 1000)
	y := m.tcpAnswer(222, 0, 1000)
	if x.TSVal == y.TSVal {
		t.Error("per-tuple TS identical across destinations")
	}
	// No-TS layout never reports timestamps.
	m.optText = "MSS"
	if m.tcpAnswer(1, 0, 0).TSPresent {
		t.Error("TS present without TS option")
	}
}

func TestClientOnlineWindows(t *testing.T) {
	// Over many client-days, mean online fraction should be well below 1
	// and above 0 (uptime windows of ~30min..24h).
	online, total := 0, 0
	for key := uint64(0); key < 300; key++ {
		for day := 0; day < 5; day++ {
			for _, at := range []wire.Time{0, 21_600_000_000, 43_200_000_000, 64_800_000_000} {
				total++
				if clientOnline(key, day, at) {
					online++
				}
			}
		}
	}
	frac := float64(online) / float64(total)
	if frac < 0.1 || frac > 0.7 {
		t.Errorf("client online fraction %.2f implausible", frac)
	}
}

func TestSYNProxyBehaviour(t *testing.T) {
	var proxy *AliasRegion
	for _, r := range world.AliasedRegions() {
		if r.Quirks&QuirkSYNProxy != 0 {
			proxy = r
			break
		}
	}
	if proxy == nil {
		t.Fatal("no SYN proxy region")
	}
	rng := rand.New(rand.NewSource(9))
	// ICMP never answers; TCP answers some branches.
	tcpHits := 0
	for i := 0; i < 64; i++ {
		a := proxy.Prefix.RandomAddr(rng)
		if world.Probe(a, wire.ICMPv6, 1, 0).OK {
			t.Fatal("SYN proxy answered ICMP")
		}
		if world.Probe(a, wire.TCP80, 1, 0).OK {
			tcpHits++
		}
	}
	if tcpHits == 0 || tcpHits == 64 {
		t.Errorf("SYN proxy TCP hits = %d/64, want partial", tcpHits)
	}
}

func TestHoleAnsweredDifferently(t *testing.T) {
	var withHole *AliasRegion
	for _, r := range world.AliasedRegions() {
		// The DE-CIX-style case: hole answered by other infrastructure
		// (the SYN-proxy hole responds by design, so skip /80 holes).
		if !r.Hole.IsZero() && r.Hole.Bits() == 120 {
			withHole = r
			break
		}
	}
	if withHole == nil {
		t.Fatal("no hole region")
	}
	rng := rand.New(rand.NewSource(10))
	// Hole addresses don't respond via the region.
	hits := 0
	for i := 0; i < 20; i++ {
		a := withHole.Hole.RandomAddr(rng)
		if world.Probe(a, wire.TCP80, 1, 0).OK {
			hits++
		}
	}
	if hits > 0 {
		t.Errorf("hole responded %d/20 times", hits)
	}
}

func TestAmazonAliasShare(t *testing.T) {
	amazon := bgp.FindASN("Amazon")
	n48, aliased := 0, 0
	for _, p := range world.Table.PrefixesOf(amazon) {
		if p.Bits() == 48 {
			n48++
		}
	}
	for _, r := range world.AliasedRegions() {
		if r.ASN == amazon && r.Prefix.Bits() == 48 {
			aliased++
		}
	}
	if n48 != 189 {
		t.Fatalf("Amazon /48s = %d", n48)
	}
	if aliased < 150 || aliased > 189 {
		t.Errorf("Amazon aliased /48s = %d, want ~170", aliased)
	}
}

func TestClientSnapshots(t *testing.T) {
	snaps := world.ClientSnapshots(0, 200)
	if len(snaps) == 0 {
		t.Fatal("no client snapshots")
	}
	for _, s := range snaps[:min(20, len(snaps))] {
		if s.Addr.IsZero() || s.Country == "" {
			t.Errorf("bad snapshot %+v", s)
		}
		// Client addresses use privacy IIDs: high hamming weight, no ff:fe.
		if s.Addr.IsSLAAC() {
			t.Errorf("client %v has SLAAC address", s.Addr)
		}
	}
}

func TestLineHostRotatingAddrChanges(t *testing.T) {
	for _, lh := range world.LineHosts() {
		if !lh.Rotates() {
			continue
		}
		if lh.Addr(0) == lh.Addr(50) {
			t.Error("rotating line host address did not change over 50 days")
		}
		return
	}
	t.Skip("no rotating line hosts")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkProbe(b *testing.B) {
	hosts := world.Hosts(ClassWebServer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hosts[i%len(hosts)]
		world.Probe(h.Addr, wire.TCP80, 0, wire.Time(i))
	}
}

func BenchmarkProbeMiss(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	anns := world.Table.Announcements()
	addrs := make([]ip6.Addr, 1024)
	for i := range addrs {
		addrs[i] = anns[rng.Intn(len(anns))].Prefix.RandomAddr(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world.Probe(addrs[i%len(addrs)], wire.ICMPv6, 0, wire.Time(i))
	}
}

// TestProbeConcurrencyContract exercises the contract documented on
// Internet.Probe: concurrent probes from many goroutines — including
// duplicate probes racing on the machine-profile cache — must return
// exactly what a serial run returns.
func TestProbeConcurrencyContract(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type task struct {
		addr ip6.Addr
		p    wire.Proto
		day  int
		at   wire.Time
	}
	var tasks []task
	for _, h := range world.Hosts() {
		if len(tasks) >= 2000 {
			break
		}
		tasks = append(tasks, task{h.Addr, wire.Protos[len(tasks)%int(wire.NumProtos)], len(tasks) % 9, wire.Time(rng.Intn(1 << 20))})
	}
	for _, r := range world.AliasedRegions() {
		tasks = append(tasks, task{r.Prefix.RandomAddr(rng), wire.TCP80, 3, 17})
	}
	// Duplicate everything so distinct goroutines race on identical keys.
	tasks = append(tasks, tasks...)

	serial := make([]wire.Response, len(tasks))
	for i, tk := range tasks {
		serial[i] = world.Probe(tk.addr, tk.p, tk.day, tk.at)
	}
	for _, workers := range []int{4, 16} {
		conc := make([]wire.Response, len(tasks))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(tasks); i += workers {
					tk := tasks[i]
					conc[i] = world.Probe(tk.addr, tk.p, tk.day, tk.at)
				}
			}(w)
		}
		wg.Wait()
		for i := range serial {
			if serial[i].OK != conc[i].OK || serial[i].HopLimit != conc[i].HopLimit {
				t.Fatalf("workers=%d: probe %d differs from serial run", workers, i)
			}
			st, ct := serial[i].TCP, conc[i].TCP
			if (st == nil) != (ct == nil) {
				t.Fatalf("workers=%d: probe %d TCP presence differs", workers, i)
			}
			if st != nil && *st != *ct {
				t.Fatalf("workers=%d: probe %d fingerprint differs: %+v vs %+v", workers, i, *st, *ct)
			}
		}
	}
}
