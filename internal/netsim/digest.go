package netsim

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"

	"expanse/internal/ip6"
)

// Digest folds the observable content of a constructed world into a
// SHA-256. It is written against the enumeration API — host lists in
// insertion order, regions and networks in construction order, line pools,
// client snapshots, traceroute paths — so its value is independent of the
// internal representation. The columnar world-plane refactor is pinned
// against digests recorded with the map/AoS implementation: identical
// digests mean world construction is byte-identical, not merely similar.
//
// rDNS addresses are hashed as a sorted set: the PTR population is
// consumed through a set trie (dnssim.NewRTree), so slice order is not an
// observable of the world.
func (in *Internet) Digest() [32]byte {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wAddr := func(a ip6.Addr) { w64(a.Hi()); w64(a.Lo()) }
	wPrefix := func(p ip6.Prefix) { wAddr(p.Addr()); w64(uint64(p.Bits())) }
	wBool := func(b bool) {
		if b {
			w64(1)
		} else {
			w64(0)
		}
	}

	hosts := in.Hosts()
	w64(uint64(len(hosts)))
	for _, hst := range hosts {
		wAddr(hst.Addr)
		w64(uint64(hst.ASN))
		w64(uint64(hst.Class))
		w64(uint64(hst.Serves))
		w64(hst.Machine)
		w64(uint64(int64(hst.DeathDay)))
		wBool(hst.QUICFlaky)
		w64(uint64(hst.Domain))
	}

	regions := in.AliasedRegions()
	w64(uint64(len(regions)))
	for _, r := range regions {
		wPrefix(r.Prefix)
		w64(uint64(r.ASN))
		w64(r.Machine)
		w64(uint64(r.Serves))
		w64(uint64(r.Quirks))
		wPrefix(r.Hole)
		w64(math.Float64bits(r.Loss))
	}

	stale := in.StaleRecords()
	w64(uint64(len(stale)))
	for _, s := range stale {
		wAddr(s.Addr)
		w64(uint64(s.ASN))
		w64(uint64(s.Domain))
	}

	recs := in.AliasRecords()
	w64(uint64(len(recs)))
	for _, rec := range recs {
		wAddr(rec.Addr)
		w64(uint64(rec.ASN))
		w64(uint64(rec.Domain))
		wPrefix(in.recordRegionPrefix(rec))
	}

	rdns := append([]ip6.Addr(nil), in.RDNSAddrs()...)
	sort.Slice(rdns, func(i, j int) bool { return rdns[i].Less(rdns[j]) })
	w64(uint64(len(rdns)))
	for _, a := range rdns {
		wAddr(a)
	}

	nets := in.Networks()
	w64(uint64(len(nets)))
	for _, nw := range nets {
		wPrefix(nw.Prefix)
		w64(uint64(nw.ASN))
		w64(uint64(nw.Kind))
		w64(uint64(nw.Scheme))
		wBool(nw.IsISP)
	}

	lines := in.LineHosts()
	w64(uint64(len(lines)))
	for _, lh := range lines {
		w64(uint64(lh.ASN))
		w64(lh.Line)
		wAddr(lh.Addr(0))
		wAddr(lh.Addr(3))
		wBool(lh.Rotates())
	}

	for _, day := range []int{0, 3} {
		snaps := in.ClientSnapshots(day, 4096)
		w64(uint64(len(snaps)))
		for _, s := range snaps {
			wAddr(s.Addr)
			w64(uint64(s.ASN))
			h.Write([]byte(s.Country))
		}
	}

	// Traceroute sample: paths fold in the tier-1 transit set, per-network
	// router subnets, and CPE resolution.
	for i, lh := range lines {
		if i >= 64 {
			break
		}
		for _, day := range []int{0, 2} {
			path := in.TraceroutePath(lh.Addr(day), day)
			w64(uint64(len(path)))
			for _, hop := range path {
				wAddr(hop.Addr)
				w64(uint64(hop.ASN))
			}
		}
	}

	var out [32]byte
	h.Sum(out[:0])
	return out
}

// recordRegionPrefix resolves the aliased prefix an AliasRecord points
// into, keeping Digest independent of how the record stores its region.
func (in *Internet) recordRegionPrefix(rec AliasRecord) ip6.Prefix {
	return in.regions[rec.Region].Prefix
}
