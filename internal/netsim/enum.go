package netsim

import (
	"expanse/internal/bgp"
	"expanse/internal/ip6"
)

// Enumeration APIs for the hitlist sources: the collectors in
// internal/sources draw their raw material from these.

// LineHost identifies a subscriber line that hosts a dynamic-DNS domain
// (a NAS or self-hosted server behind the CPE). Its address changes when
// the line renumbers, so forward-DNS sources re-resolve it every epoch.
// ISP is the dense ID of the owning pool in the world's ISP column; the
// unexported pointer into that sealed column serves the Addr/Rotates
// methods without a world handle.
type LineHost struct {
	ASN  bgp.ASN
	Line uint64
	ISP  int32
	isp  *lineISP
}

// LineHosts enumerates every domain-hosting subscriber line. The output
// is pre-sized from the per-pool domain-line counts fixed at
// construction, so enumeration does one exact allocation.
func (in *Internet) LineHosts() []LineHost {
	total := 0
	for i := range in.isps {
		total += in.isps[i].domainLines
	}
	out := make([]LineHost, 0, total)
	for ni := range in.nets {
		nw := &in.nets[ni]
		if nw.isp < 0 {
			continue
		}
		isp := &in.isps[nw.isp]
		for i := uint64(0); i < uint64(isp.lines); i++ {
			if isp.hostsDomain(i) {
				out = append(out, LineHost{ASN: nw.asn, Line: i, ISP: nw.isp, isp: isp})
			}
		}
	}
	return out
}

// Addr returns the line-hosted domain's address on the given day: the CPE
// itself for dyndns-on-router lines, or the NAS behind the CPE (whose
// traceroutes then reveal the CPE as an intermediate hop).
func (lh LineHost) Addr(day int) ip6.Addr {
	if lh.isp.nasLine(lh.Line) {
		return lh.isp.nasAddr(lh.Line, day)
	}
	return lh.isp.cpeAddr(lh.Line, day)
}

// Rotates reports whether the line renumbers (period > 0).
func (lh LineHost) Rotates() bool { return lh.isp.rotate > 0 }

// ClientSnapshot is one end-user device observation for the crowdsourcing
// study (§9): the device's address on a given day plus line metadata.
type ClientSnapshot struct {
	Addr    ip6.Addr
	ASN     bgp.ASN
	Country string
}

// ClientSnapshots samples up to max client devices active on the given
// day, deterministically. The crowdsourcing platforms of §9 recruit from
// this population.
func (in *Internet) ClientSnapshots(day int, max int) []ClientSnapshot {
	var out []ClientSnapshot
	for ni := range in.nets {
		nw := &in.nets[ni]
		if nw.isp < 0 {
			continue
		}
		isp := &in.isps[nw.isp]
		cc := in.Table.AS(nw.asn).Country
		for i := uint64(0); i < uint64(isp.lines); i++ {
			if len(out) >= max {
				return out
			}
			// Only a subsample of client devices "participates".
			if !chance(hash3(in.key^0xc4a3d, isp.key, i), 0.25) {
				continue
			}
			if a, ok := isp.clientAddr(i, day); ok {
				out = append(out, ClientSnapshot{Addr: a, ASN: nw.asn, Country: cc})
			}
		}
	}
	return out
}

// Networks returns announced-prefix metadata: prefix, origin and scheme.
// Exposed for the per-experiment reports; detection code never uses it.
type NetworkInfo struct {
	Prefix ip6.Prefix
	ASN    bgp.ASN
	Kind   bgp.Kind
	Scheme Scheme
	IsISP  bool
}

// Networks lists all announced networks with their ground-truth schemes.
func (in *Internet) Networks() []NetworkInfo {
	out := make([]NetworkInfo, 0, len(in.nets))
	for i := range in.nets {
		nw := &in.nets[i]
		out = append(out, NetworkInfo{
			Prefix: nw.prefix, ASN: nw.asn, Kind: nw.kind,
			Scheme: nw.scheme, IsISP: nw.isp >= 0,
		})
	}
	return out
}

// InSubscriberSpace reports whether addr falls inside an ISP line pool —
// the space where traceroutes keep discovering fresh CPE hops.
func (in *Internet) InSubscriberSpace(addr ip6.Addr) bool {
	_, ni, ok := in.netT.LookupShortest(addr)
	return ok && in.nets[ni].isp >= 0
}

// nasAddr is the line's self-hosted server: subnet 3 of the /56, with a
// low-entropy IID (people configure ::3:1 style addresses by hand).
func (l *lineISP) nasAddr(line uint64, day int) ip6.Addr {
	p56 := l.linePrefix(line, day)
	sub := p56.Subprefix(64, 3)
	return ip6.AddrFromUint64(sub.Addr().Hi(), 1+hash2(l.key^0x4a5, line)%14)
}
