package netsim

import (
	"encoding/hex"
	"math/rand"
	"sort"
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// World-construction pins for the columnar plane. The digest constants
// below were captured from the pre-refactor map/AoS world (the one the
// published report checksums were produced on); the sealed columns must
// reproduce them bit for bit. The property tests then pin every columnar
// access path — construction order, HostAt, the batched merge cursor —
// against the retained legacy builder across populations, orders and
// batch splits.

// pinnedDigests maps config name → hex SHA-256 of Digest() captured at
// the last map/AoS commit. Changing world generation intentionally means
// re-capturing these and re-blessing every report checksum downstream.
var pinnedDigests = map[string]string{
	"test": "c0d07b1ae0626bea484e1028d21bc0cf19db19825b7caee9eb692ba59b82f717",
	"mid":  "1581874164345e578cec0d6792063d85deaa5f53080d429f762938d4593bd73a",
	"alt":  "98580e68f334bba7506b1c05802b9be5776a9b14912d27987ab85f761281a4b8",
}

func pinConfigs() map[string]Config {
	return map[string]Config{
		"test": testConfig(),
		"mid":  {Seed: 0x16C18, Registry: bgp.DefaultRegistryConfig(), Scale: 0.25, EpochDays: 7, Epochs: 10},
		"alt":  {Seed: 7, Registry: bgp.RegistryConfig{ASes: 400, PrefixesPerAS: 4.2, Seed: 11}, Scale: 0.12, EpochDays: 5, Epochs: 8},
	}
}

func TestWorldDigestPinned(t *testing.T) {
	for name, cfg := range pinConfigs() {
		if testing.Short() && name != "test" {
			continue
		}
		in := New(cfg)
		got := in.Digest()
		if hex.EncodeToString(got[:]) != pinnedDigests[name] {
			t.Errorf("config %q: world digest %x, want %s", name, got, pinnedDigests[name])
		}
	}
}

// buildWithRef builds a world retaining the legacy map/AoS builder as the
// reference representation.
func buildWithRef(t *testing.T, cfg Config) *Internet {
	t.Helper()
	retainBuilder = true
	defer func() { retainBuilder = false }()
	return New(cfg)
}

// refConfigs are small worlds diverse enough to cover every population
// (farms, anomalies, subscriber pools, rDNS-only routers).
func refConfigs() []Config {
	return []Config{
		testConfig(),
		{Seed: 3, Registry: bgp.RegistryConfig{ASes: 120, PrefixesPerAS: 2.5, Seed: 5}, Scale: 0.05, EpochDays: 5, Epochs: 4},
		{Seed: 0x5eed, Registry: bgp.RegistryConfig{ASes: 300, PrefixesPerAS: 4.0, Seed: 13}, Scale: 0.1, EpochDays: 7, Epochs: 8},
	}
}

// TestColumnsMatchBuilder pins the sealed columns against the retained
// builder: same population, same insertion order, same per-host fields.
func TestColumnsMatchBuilder(t *testing.T) {
	for ci, cfg := range refConfigs() {
		in := buildWithRef(t, cfg)
		ref := in.ref
		if ref == nil {
			t.Fatal("retainBuilder hook did not retain the builder")
		}
		if got, want := in.hc.n(), len(ref.arr); got != want {
			t.Fatalf("config %d: %d hosts in columns, %d in builder", ci, got, want)
		}
		// Insertion (rank) order: byRank must walk the columns in exactly
		// builder-append order.
		for rank, pos := range in.hc.byRank {
			if got, want := in.hc.hostAt(pos), ref.arr[rank]; got != want {
				t.Fatalf("config %d rank %d: columns %+v, builder %+v", ci, rank, got, want)
			}
		}
		// Sorted order: addresses strictly increasing (no duplicates).
		for i := 1; i < in.hc.n(); i++ {
			if !in.hc.addrAt(int32(i - 1)).Less(in.hc.addrAt(int32(i))) {
				t.Fatalf("config %d: columns not strictly sorted at %d", ci, i)
			}
		}
		// The map agrees with find for every member.
		for addr, idx := range ref.hosts {
			i, ok := in.hc.find(addr)
			if !ok {
				t.Fatalf("config %d: %v in builder map but not found in columns", ci, addr)
			}
			if in.hc.hostAt(i) != ref.arr[idx] {
				t.Fatalf("config %d: host at %v differs from builder", ci, addr)
			}
		}
	}
}

// TestHostAtMatchesReference pins HostAt (binary search) against the
// retained map for hits, near-misses (members ±1) and random misses.
func TestHostAtMatchesReference(t *testing.T) {
	in := buildWithRef(t, testConfig())
	ref := in.ref
	rng := rand.New(rand.NewSource(0x40a7))
	var queries []ip6.Addr
	for addr := range ref.hosts {
		queries = append(queries, addr)
		if rng.Intn(4) == 0 {
			queries = append(queries, addr.Next(), addr.Prev())
		}
	}
	for i := 0; i < 2000; i++ {
		queries = append(queries, ip6.AddrFromUint64(rng.Uint64(), rng.Uint64()))
	}
	for _, q := range queries {
		got, gotOK := in.HostAt(q)
		idx, wantOK := ref.hosts[q]
		if gotOK != wantOK {
			t.Fatalf("HostAt(%v): ok=%v, map says %v", q, gotOK, wantOK)
		}
		if gotOK && got != ref.arr[idx] {
			t.Fatalf("HostAt(%v): %+v, map says %+v", q, got, ref.arr[idx])
		}
	}
}

// TestHostRunMatchesReference pins the amortized merge cursor against the
// map across query orders (sorted ascending, descending, shuffled) and
// restart splits, over a mix dense in members, neighbours and misses.
func TestHostRunMatchesReference(t *testing.T) {
	in := buildWithRef(t, testConfig())
	ref := in.ref
	rng := rand.New(rand.NewSource(0x40a8))
	var queries []ip6.Addr
	for addr := range ref.hosts {
		queries = append(queries, addr)
		if rng.Intn(3) == 0 {
			queries = append(queries, addr.Next())
		}
	}
	for i := 0; i < 3000; i++ {
		queries = append(queries, ip6.AddrFromUint64(rng.Uint64(), rng.Uint64()))
	}
	sorted := append([]ip6.Addr(nil), queries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	desc := append([]ip6.Addr(nil), sorted...)
	for i, j := 0, len(desc)-1; i < j; i, j = i+1, j-1 {
		desc[i], desc[j] = desc[j], desc[i]
	}
	shuffled := append([]ip6.Addr(nil), queries...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	for oi, order := range [][]ip6.Addr{sorted, desc, shuffled} {
		for _, split := range []int{len(order), 64, 7, 1} {
			cur := hostRun{hc: &in.hc}
			for k, q := range order {
				if k%split == 0 {
					cur = hostRun{hc: &in.hc} // fresh cursor per batch
				}
				hi, ok := cur.lookup(q)
				idx, wantOK := ref.hosts[q]
				if ok != wantOK {
					t.Fatalf("order %d split %d: cursor(%v) ok=%v, map says %v", oi, split, q, ok, wantOK)
				}
				if ok && in.hc.hostAt(hi) != ref.arr[idx] {
					t.Fatalf("order %d split %d: cursor(%v) wrong host", oi, split, q)
				}
			}
		}
	}
}

// TestHostsClassFilter pins the class-filtered enumeration against a
// builder-side filter in insertion order.
func TestHostsClassFilter(t *testing.T) {
	in := buildWithRef(t, testConfig())
	ref := in.ref
	for _, classes := range [][]HostClass{
		nil,
		{ClassWebServer},
		{ClassRouter, ClassCPE},
		{ClassBitnode, ClassAtlas, ClassDNSServer},
	} {
		want := map[HostClass]bool{}
		for _, c := range classes {
			want[c] = true
		}
		var expect []Host
		for _, h := range ref.arr {
			if len(classes) == 0 || want[h.Class] {
				expect = append(expect, h)
			}
		}
		got := in.Hosts(classes...)
		if len(got) != len(expect) {
			t.Fatalf("classes %v: %d hosts, want %d", classes, len(got), len(expect))
		}
		for i := range got {
			if got[i] != expect[i] {
				t.Fatalf("classes %v: host %d differs", classes, i)
			}
		}
	}
}

// TestBatchMatchesPerProbeOnRefWorlds re-runs the batch-vs-probe pin on
// the reference worlds (the shared test world is covered by
// TestProbeBatchMatchesProbe) so the merge cursor is exercised against
// populations with different farm/pool mixes.
func TestBatchMatchesPerProbeOnRefWorlds(t *testing.T) {
	for ci, cfg := range refConfigs()[1:] {
		in := New(cfg)
		rng := rand.New(rand.NewSource(int64(0xba7c6 + ci)))
		targets := batchTargets(in, rng)
		sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })
		at := make([]wire.Time, len(targets))
		for i := range at {
			at[i] = wire.Time(i) * 7
		}
		var table wire.TCPTable
		var cols wire.ResultColumns
		cols.Reset(len(targets), &table)
		in.ProbeBatch(targets, wire.TCP80, 2, at, &cols, 0)
		for i, dst := range targets {
			want := in.Probe(dst, wire.TCP80, 2, at[i])
			if cols.OK.Get(i) != want.OK {
				t.Fatalf("config %d target %d: OK mismatch", ci, i)
			}
			if want.OK && cols.HopLimit[i] != want.HopLimit {
				t.Fatalf("config %d target %d: hop mismatch", ci, i)
			}
		}
	}
}
