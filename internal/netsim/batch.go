package netsim

import (
	"sort"

	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// This file implements the batched side of the responder: ProbeBatch
// answers whole probe batches into wire.ResultColumns. Resolution — which
// aliased region, finite host, or subscriber pool owns a destination —
// runs over interval-compiled forms of the construction-time tries, so a
// batch of sorted targets pays one binary search per *run* of addresses
// sharing a resolution instead of one trie walk per probe (the same
// flattening the alias plane's Filter uses, see ip6.CompileIntervals).
// Everything below the resolution step is shared with the per-probe
// Probe via rawResponse; TestProbeBatchMatchesProbe pins the two paths
// per-index.

// batchTabs are the interval-compiled lookup tables, built lazily on
// first ProbeBatch from the immutable world. Interval values are dense
// int32 IDs into the flat region/network columns — the tables carry no
// pointers.
type batchTabs struct {
	// alias is the most-specific-wins flattening of the alias-region trie.
	alias []ip6.Interval[int32]
	// nets is the most-specific-wins flattening of the announcement trie
	// (the networkOf resolution hosts use for loss/path parameters).
	nets []ip6.Interval[int32]
	// pools is the SHORTEST-match form of the announcement table: only the
	// outermost announcements, which are disjoint — subscriber pools hang
	// off the operator's covering announcement.
	pools []ip6.Interval[int32]
}

// batchTables compiles (once) and returns the interval tables.
func (in *Internet) batchTables() *batchTabs {
	in.batchOnce.Do(func() {
		regionIDs := idRange(len(in.regions))
		netIDs := idRange(len(in.nets))
		regionPrefix := func(i int32) ip6.Prefix { return in.regions[i].Prefix }
		netPrefix := func(i int32) ip6.Prefix { return in.nets[i].prefix }
		in.batch = &batchTabs{
			alias: compileLongest(regionIDs, regionPrefix),
			nets:  compileLongest(netIDs, netPrefix),
			pools: compileShortest(netIDs, netPrefix),
		}
	})
	return in.batch
}

// idRange returns the dense ID column [0, n).
func idRange(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// compileLongest flattens (prefix → value) entries into the disjoint
// interval table equivalent to a longest-prefix-match trie. Duplicate
// prefixes keep the last entry, matching trie insertion order.
func compileLongest[V comparable](items []V, prefixOf func(V) ip6.Prefix) []ip6.Interval[V] {
	prefixes, vals := dedupeByPrefix(items, prefixOf)
	return ip6.CompileIntervals(prefixes, vals)
}

// compileShortest flattens entries into the SHORTEST-match table: only
// prefixes not nested inside another entry survive, and since prefixes
// are nested or disjoint (never partially overlapping), the survivors are
// disjoint and each covers exactly its own range.
func compileShortest[V comparable](items []V, prefixOf func(V) ip6.Prefix) []ip6.Interval[V] {
	prefixes, vals := dedupeByPrefix(items, prefixOf)
	// dedupeByPrefix returns (base, bits)-sorted entries, so an entry is
	// outermost iff it is not contained in the last outermost before it.
	var op []ip6.Prefix
	var ov []V
	for i, p := range prefixes {
		if n := len(op); n > 0 && op[n-1].Contains(p.Addr()) {
			continue
		}
		op = append(op, p)
		ov = append(ov, vals[i])
	}
	return ip6.CompileIntervals(op, ov)
}

// dedupeByPrefix sorts entries by (base address, prefix length) and drops
// all but the last entry per exact prefix (trie Insert replaces).
func dedupeByPrefix[V any](items []V, prefixOf func(V) ip6.Prefix) ([]ip6.Prefix, []V) {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := prefixOf(items[order[a]]), prefixOf(items[order[b]])
		if c := pa.Addr().Compare(pb.Addr()); c != 0 {
			return c < 0
		}
		return pa.Bits() < pb.Bits()
	})
	var prefixes []ip6.Prefix
	var vals []V
	for _, oi := range order {
		p := prefixOf(items[oi])
		if n := len(prefixes); n > 0 && prefixes[n-1] == p {
			vals[n-1] = items[oi] // last insertion wins, like the trie
			continue
		}
		prefixes = append(prefixes, p)
		vals = append(vals, items[oi])
	}
	return prefixes, vals
}

// ivalRun is a cursor over a sorted disjoint interval table that caches
// the run containing the last query — the interval it hit, or the gap
// between intervals it missed into. Queries inside the cached run are two
// address compares; only a run change pays the binary search. This is
// what makes batched resolution cheap: sorted targets advance through
// runs monotonically.
type ivalRun[V any] struct {
	tab    []ip6.Interval[V]
	lo, hi ip6.Addr // cached run bounds (inclusive)
	val    V
	hit    bool // cached run is an interval (else a gap)
	valid  bool
}

func (c *ivalRun[V]) lookup(a ip6.Addr) (V, bool) {
	if c.valid && !a.Less(c.lo) && a.Compare(c.hi) <= 0 {
		return c.val, c.hit
	}
	var zero V
	c.val, c.hit, c.valid = zero, false, true
	i := sort.Search(len(c.tab), func(k int) bool { return a.Compare(c.tab[k].Hi) <= 0 })
	if i < len(c.tab) && !a.Less(c.tab[i].Lo) {
		c.lo, c.hi = c.tab[i].Lo, c.tab[i].Hi
		c.val, c.hit = c.tab[i].Val, true
		return c.val, true
	}
	// A gap: from past the previous interval (or the space's bottom) to
	// before the next (or the space's top).
	if i > 0 {
		c.lo = c.tab[i-1].Hi.Next()
	} else {
		c.lo = ip6.Addr{}
	}
	if i < len(c.tab) {
		c.hi = c.tab[i].Lo.Prev()
	} else {
		c.hi = ip6.MaxAddr()
	}
	return zero, false
}

// ProbeBatch implements wire.BatchResponder: it answers probe k exactly
// as Probe(dsts[k], p, day, at[k]) would, writing into out at base+k.
// Safe for unlimited concurrent use under the same contract as Probe;
// concurrent calls must target non-overlapping 64-aligned column ranges
// (see wire.BatchResponder).
func (in *Internet) ProbeBatch(dsts []ip6.Addr, p wire.Proto, day int, at []wire.Time, out *wire.ResultColumns, base int) {
	tabs := in.batchTables()
	aliasRun := ivalRun[int32]{tab: tabs.alias}
	netRun := ivalRun[int32]{tab: tabs.nets}
	poolRun := ivalRun[int32]{tab: tabs.pools}
	hosts := hostRun{hc: &in.hc}
	for k, dst := range dsts {
		var raw rawResponse
		handled := false
		if ri, ok := aliasRun.lookup(dst); ok {
			raw, handled = in.probeAliasRaw(&in.regions[ri], dst, p, day, at[k])
		}
		if !handled {
			if hi, ok := hosts.lookup(dst); ok {
				nwi, ok := netRun.lookup(dst)
				if !ok {
					nwi = -1
				}
				raw = in.probeHostRaw(hi, dst, p, day, at[k], nwi)
			} else if ni, ok := poolRun.lookup(dst); ok && in.nets[ni].isp >= 0 {
				raw = in.probeLineRaw(&in.nets[ni], dst, p, day, at[k])
			}
		}
		in.emit(out, base+k, raw, day, at[k])
	}
}

// emit writes a rawResponse into column i, interning the TCP fingerprint
// instead of allocating a TCPInfo.
func (in *Internet) emit(out *wire.ResultColumns, i int, raw rawResponse, day int, at wire.Time) {
	if !raw.ok {
		return
	}
	out.OK.Set(i)
	if out.HopLimit != nil {
		out.HopLimit[i] = raw.hop
	}
	if raw.tcp && out.TCPRef != nil {
		fp := raw.m.fingerprint()
		fp.WSize += raw.wsizeAdd
		fp.MSS -= raw.mssSub
		out.TCPRef[i] = out.Table.Intern(fp)
		if present, v := raw.m.tsVal(raw.dstKey, day, at); present {
			out.TSVal[i] = v
		}
	}
}

var _ wire.BatchResponder = (*Internet)(nil)
