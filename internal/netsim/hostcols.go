package netsim

import (
	"reflect"
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// The columnar world plane.
//
// Construction (plan.go) registers finite hosts through a map-backed
// builder — the exact map/AoS representation earlier versions kept for
// the world's whole lifetime. Sealing replaces it with sorted (hi,lo)
// address columns plus SoA parallel columns: the sorted column IS the
// membership structure (the PR 2/5 pattern the hitlist planes use), so
// the ~38 B/entry map overhead and the 40-byte padded Host structs are
// gone, and a host costs 40 bytes flat (16 addr + 4 ASN + 1 meta +
// 1 serves + 8 machine + 2 death + 4 domain + 4 rank).
//
// Lookup strategies:
//   - random access (Probe, HostAt, traceroute hops): binary search on
//     the address columns — hostCols.find;
//   - batch access (ProbeBatch over sorted probe runs): hostRun, an
//     amortized merge cursor that caches the hit-or-gap run containing
//     the last query and advances monotonically — one or two compares
//     per address on sorted input instead of a map probe;
//   - enumeration in insertion order (Hosts, and everything downstream
//     that is order-sensitive): the byRank permutation maps insertion
//     rank to sorted position, so the sealed plane reproduces the
//     builder's order byte-for-byte.

// hostMeta packs HostClass (low 3 bits) and flag bits into one byte.
const (
	hostClassMask uint8 = 0x07
	hostFlagQUIC  uint8 = 0x08 // QUICFlaky
)

// hostCols is the sealed SoA host plane. All columns are parallel and
// sorted by (hi,lo); byRank is the insertion-order permutation.
type hostCols struct {
	hi, lo   []uint64
	asn      []bgp.ASN
	meta     []uint8
	serves   []wire.RespMask
	machine  []uint64
	deathDay []int16
	domain   []uint32
	byRank   []int32
}

func (hc *hostCols) n() int { return len(hc.hi) }

func (hc *hostCols) addrAt(i int32) ip6.Addr {
	return ip6.AddrFromUint64(hc.hi[i], hc.lo[i])
}

func (hc *hostCols) classAt(i int32) HostClass {
	return HostClass(hc.meta[i] & hostClassMask)
}

// hostAt reconstructs the AoS Host view of sorted position i.
func (hc *hostCols) hostAt(i int32) Host {
	return Host{
		Addr:      hc.addrAt(i),
		ASN:       hc.asn[i],
		Class:     hc.classAt(i),
		Serves:    hc.serves[i],
		Machine:   hc.machine[i],
		DeathDay:  hc.deathDay[i],
		QUICFlaky: hc.meta[i]&hostFlagQUIC != 0,
		Domain:    hc.domain[i],
	}
}

// search returns the first position in [from, n) whose address is >= a.
func (hc *hostCols) search(from int32, a ip6.Addr) int32 {
	ah, al := a.Hi(), a.Lo()
	lo, hi := from, int32(len(hc.hi))
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if hc.hi[mid] > ah || (hc.hi[mid] == ah && hc.lo[mid] >= al) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// find binary-searches the sorted address columns for a.
func (hc *hostCols) find(a ip6.Addr) (int32, bool) {
	i := hc.search(0, a)
	if int(i) < len(hc.hi) && hc.hi[i] == a.Hi() && hc.lo[i] == a.Lo() {
		return i, true
	}
	return 0, false
}

// packMeta packs class and flags into the meta byte.
func packMeta(class HostClass, quicFlaky bool) uint8 {
	m := uint8(class) & hostClassMask
	if quicFlaky {
		m |= hostFlagQUIC
	}
	return m
}

// worldBuilder is the construction-time host registry: the map/AoS
// representation the sealed columns replace. plan() fills one, sealing
// gathers it into columns and drops it; the retainBuilder test hook
// keeps it alive as the in-test legacy reference.
type worldBuilder struct {
	hosts map[ip6.Addr]int32
	arr   []Host
}

func newWorldBuilder() *worldBuilder {
	return &worldBuilder{hosts: make(map[ip6.Addr]int32)}
}

// add registers a host; first insertion wins, as map semantics had it.
func (b *worldBuilder) add(h Host) {
	if _, dup := b.hosts[h.Addr]; dup {
		return
	}
	b.hosts[h.Addr] = int32(len(b.arr))
	b.arr = append(b.arr, h)
}

// sealHosts sorts a builder's hosts by address and gathers them into
// exact-size columns. byRank[r] is the sorted position of the host with
// insertion rank r.
func sealHosts(b *worldBuilder) hostCols {
	n := len(b.arr)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(x, y int) bool {
		return b.arr[perm[x]].Addr.Less(b.arr[perm[y]].Addr)
	})
	hc := makeHostCols(n)
	for pos, rank := range perm {
		hc.setFrom(int32(pos), &b.arr[rank])
		hc.byRank[rank] = int32(pos)
	}
	return hc
}

func makeHostCols(n int) hostCols {
	return hostCols{
		hi:       make([]uint64, n),
		lo:       make([]uint64, n),
		asn:      make([]bgp.ASN, n),
		meta:     make([]uint8, n),
		serves:   make([]wire.RespMask, n),
		machine:  make([]uint64, n),
		deathDay: make([]int16, n),
		domain:   make([]uint32, n),
		byRank:   make([]int32, n),
	}
}

func (hc *hostCols) setFrom(pos int32, h *Host) {
	hc.hi[pos] = h.Addr.Hi()
	hc.lo[pos] = h.Addr.Lo()
	hc.asn[pos] = h.ASN
	hc.meta[pos] = packMeta(h.Class, h.QUICFlaky)
	hc.serves[pos] = h.Serves
	hc.machine[pos] = h.Machine
	hc.deathDay[pos] = h.DeathDay
	hc.domain[pos] = h.Domain
}

// mergeSealed merges a (small) builder of late additions into sealed
// columns. Delta hosts take insertion ranks after the sealed ones —
// exactly the order the single-pass builder would have produced.
func mergeSealed(hc hostCols, delta *worldBuilder) hostCols {
	nd := len(delta.arr)
	if nd == 0 {
		return hc
	}
	dperm := make([]int32, nd)
	for i := range dperm {
		dperm[i] = int32(i)
	}
	sort.Slice(dperm, func(x, y int) bool {
		return delta.arr[dperm[x]].Addr.Less(delta.arr[dperm[y]].Addr)
	})
	n1 := hc.n()
	out := makeHostCols(n1 + nd)
	oldToNew := make([]int32, n1)
	deltaToNew := make([]int32, nd)
	i, j := int32(0), 0
	for pos := int32(0); pos < int32(n1+nd); pos++ {
		takeOld := j >= nd
		if !takeOld && int(i) < n1 {
			takeOld = hc.addrAt(i).Less(delta.arr[dperm[j]].Addr)
		}
		if takeOld {
			out.hi[pos] = hc.hi[i]
			out.lo[pos] = hc.lo[i]
			out.asn[pos] = hc.asn[i]
			out.meta[pos] = hc.meta[i]
			out.serves[pos] = hc.serves[i]
			out.machine[pos] = hc.machine[i]
			out.deathDay[pos] = hc.deathDay[i]
			out.domain[pos] = hc.domain[i]
			oldToNew[i] = pos
			i++
		} else {
			rank := dperm[j]
			out.setFrom(pos, &delta.arr[rank])
			deltaToNew[rank] = pos
			j++
		}
	}
	for r := 0; r < n1; r++ {
		out.byRank[r] = oldToNew[hc.byRank[r]]
	}
	for r := 0; r < nd; r++ {
		out.byRank[n1+r] = deltaToNew[r]
	}
	return out
}

// hostRun is the batch-path merge cursor over the sorted host columns:
// the parallel of ivalRun for point membership. It caches the *run*
// containing the last query — the exact address it hit, or the gap
// between neighbouring hosts it missed into — so a query inside the
// cached run is answered in at most two compares. A forward miss
// advances linearly a few steps (sorted probe runs and counter-style
// host blocks interleave tightly, so the next host is almost always
// adjacent) before falling back to binary search on the remaining
// suffix; a backward miss restarts the search from the left. On sorted
// input every column entry is passed at most once, so the whole batch
// resolves in O(len(batch) + len(columns)) — O(1) amortized per probe.
type hostRun struct {
	hc     *hostCols
	lo, hi ip6.Addr // cached run bounds (inclusive)
	idx    int32    // matching position when hit
	next   int32    // first position with address > hi
	hit    bool
	valid  bool
}

// hostRunAdvance bounds the linear walk of a forward miss before the
// cursor falls back to binary search.
const hostRunAdvance = 8

func (c *hostRun) lookup(a ip6.Addr) (int32, bool) {
	if c.valid && !a.Less(c.lo) && a.Compare(c.hi) <= 0 {
		return c.idx, c.hit
	}
	hc := c.hc
	n := int32(hc.n())
	var pos int32
	if c.valid && c.hi.Less(a) {
		// Forward of the cached run: walk a few entries, then search the
		// remaining suffix.
		pos = c.next
		steps := 0
		ah, al := a.Hi(), a.Lo()
		for pos < n && (hc.hi[pos] < ah || (hc.hi[pos] == ah && hc.lo[pos] < al)) {
			pos++
			steps++
			if steps >= hostRunAdvance {
				pos = hc.search(pos, a)
				break
			}
		}
	} else {
		pos = hc.search(0, a)
	}
	c.valid = true
	if pos < n && hc.hi[pos] == a.Hi() && hc.lo[pos] == a.Lo() {
		c.lo, c.hi = a, a
		c.idx, c.next, c.hit = pos, pos+1, true
		return pos, true
	}
	// A gap run: from past the previous host (or the space's bottom) to
	// before the next (or the space's top).
	c.idx, c.next, c.hit = 0, pos, false
	if pos > 0 {
		c.lo = hc.addrAt(pos - 1).Next()
	} else {
		c.lo = ip6.Addr{}
	}
	if pos < n {
		c.hi = hc.addrAt(pos).Prev()
	} else {
		c.hi = ip6.MaxAddr()
	}
	return 0, false
}

// WorldMem is the world plane's self-measured footprint, in bytes.
type WorldMem struct {
	NHosts int
	// Hosts is the sealed host-column plane (the part the map/AoS
	// representation dominated).
	Hosts int64
	// Topo covers flat networks, regions, ISP pools, tier-1 routers and
	// the compiled batch tables, when built.
	Topo int64
	// Records covers stale DNS, alias records and rDNS addresses — input
	// data for the sources, not lookup state.
	Records int64
}

// Total returns the full accounted footprint.
func (m WorldMem) Total() int64 { return m.Hosts + m.Topo + m.Records }

// BytesPerHost returns the host-plane cost per finite host.
func (m WorldMem) BytesPerHost() float64 {
	if m.NHosts == 0 {
		return 0
	}
	return float64(m.Hosts) / float64(m.NHosts)
}

// Exact element sizes for the flat topology columns, resolved once via
// reflection so the accounting tracks struct layout changes.
var (
	networkBytes     = int64(reflect.TypeOf(network{}).Size())
	aliasRegionBytes = int64(reflect.TypeOf(AliasRegion{}).Size())
	lineISPBytes     = int64(reflect.TypeOf(lineISP{}).Size())
	staleRecordBytes = int64(reflect.TypeOf(StaleRecord{}).Size())
	aliasRecordBytes = int64(reflect.TypeOf(AliasRecord{}).Size())
	intervalBytes    = int64(reflect.TypeOf(ip6.Interval[int32]{}).Size())
)

// MemBytes accounts the world's memory exactly from column lengths (the
// ShardSet.MemBytes idiom): caps × element sizes, no sampling.
func (in *Internet) MemBytes() WorldMem {
	hc := &in.hc
	var m WorldMem
	m.NHosts = hc.n()
	m.Hosts = int64(cap(hc.hi))*8 + int64(cap(hc.lo))*8 +
		int64(cap(hc.asn))*4 + int64(cap(hc.meta)) + int64(cap(hc.serves)) +
		int64(cap(hc.machine))*8 + int64(cap(hc.deathDay))*2 +
		int64(cap(hc.domain))*4 + int64(cap(hc.byRank))*4
	m.Topo = int64(cap(in.nets))*networkBytes +
		int64(cap(in.regions))*aliasRegionBytes +
		int64(cap(in.isps))*lineISPBytes +
		int64(cap(in.tier1))*16
	if in.batch != nil {
		m.Topo += int64(cap(in.batch.alias)+cap(in.batch.nets)+cap(in.batch.pools)) * intervalBytes
	}
	m.Records = int64(cap(in.stale))*staleRecordBytes +
		int64(cap(in.aliasRecords))*aliasRecordBytes +
		int64(cap(in.rdns))*16
	return m
}
