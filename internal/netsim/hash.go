package netsim

import "expanse/internal/ip6"

// The simulator answers questions like "does this address respond to
// TCP/80 on day 12?" for an address space far too large to materialize.
// All such answers derive from a keyed 64-bit mix function so they are
// deterministic (reproducible runs, stable tests) yet statistically
// indistinguishable from random for the algorithms under test.

// mix64 is the splitmix64 finalizer, a high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash2 combines a key and one value.
func hash2(key, a uint64) uint64 { return mix64(key ^ mix64(a)) }

// hash3 combines a key and two values.
func hash3(key, a, b uint64) uint64 { return mix64(hash2(key, a) ^ mix64(b+0x9e3779b97f4a7c15)) }

// hashAddr folds an address into the keyed hash chain.
func hashAddr(key uint64, a ip6.Addr) uint64 {
	return hash3(key, a.Hi(), a.Lo())
}

// unit converts a hash to a float in [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// chance reports a deterministic biased coin with probability p keyed on h.
func chance(h uint64, p float64) bool { return unit(h) < p }
