package netsim

import (
	"expanse/internal/bgp"
	"expanse/internal/ip6"
)

// Traceroute topology. Paths are deterministic per (destination network,
// day): a couple of shared transit routers, then the destination
// operator's core routers, then — for subscriber space — the line's CPE.
// This is the substrate for the scamper source (§3) whose router-address
// harvest is dominated by SLAAC home routers.

// Hop is one traceroute hop.
type Hop struct {
	Addr ip6.Addr
	ASN  bgp.ASN
}

// TraceroutePath returns the responsive intermediate hops towards dst on
// the given day, excluding dst itself. Unrouted destinations yield only
// transit hops. Some hops are silent (anonymous routers) and omitted, as
// in real traceroutes.
func (in *Internet) TraceroutePath(dst ip6.Addr, day int) []Hop {
	var path []Hop
	dk := hashAddr(in.key^0x7e4ace, dst)

	// Transit: 2-3 of the tier-1 routers, selected by destination ASN so
	// paths are stable but diverse.
	asn, _ := in.Table.Origin(dst)
	tk := hash3(in.key^0x7e4a, uint64(asn), dk%4) // mild path diversity
	nTransit := 2 + int(tk%2)
	for i := 0; i < nTransit && len(in.tier1) > 0; i++ {
		idx := hash3(tk, uint64(i), 0) % uint64(len(in.tier1))
		a := in.tier1[idx]
		if h, ok := in.HostAt(a); ok {
			path = append(path, Hop{Addr: a, ASN: h.ASN})
		}
	}

	nwi := in.networkOf(dst)
	if nwi < 0 {
		return path
	}
	nw := &in.nets[nwi]
	// Destination network core routers: 1-3 from the router subnet.
	sub := coveringRouterSubnet(in, nw)
	if !sub.IsZero() {
		n := 1 + int(hash2(nw.key, dk%8)%3)
		for i := 0; i < n; i++ {
			a := ip6.AddrFromUint64(sub.Addr().Hi(), 1+hash3(nw.key, dk%4, uint64(i))%6)
			if h, ok := in.HostAt(a); ok {
				// Anonymous-router probability.
				if !chance(hash3(in.key^0xa404, hashAddr(in.key, a), uint64(day/7)), 0.15) {
					path = append(path, Hop{Addr: a, ASN: h.ASN})
				}
			}
		}
	}
	// Last hop before subscriber targets: the line's CPE. The pool hangs
	// off the covering announcement, so resolve with the shortest match.
	if _, ni, ok := in.netT.LookupShortest(dst); ok && in.nets[ni].isp >= 0 {
		poolNw := &in.nets[ni]
		isp := &in.isps[poolNw.isp]
		if line, ok := lineContaining(isp, dst, day); ok {
			cpe := isp.cpeAddr(line, day)
			if cpe != dst {
				path = append(path, Hop{Addr: cpe, ASN: poolNw.asn})
			}
		}
	}
	return path
}

// coveringRouterSubnet finds the router /64 of the announcement covering
// the network (routers live on announcements of length <= 36).
func coveringRouterSubnet(in *Internet, nw *network) ip6.Prefix {
	if nw.prefix.Bits() <= 36 {
		return nw.prefix.Subprefix(64, 0xffff)
	}
	// Find a shorter covering announcement of the same AS.
	for i := range in.nets {
		cand := &in.nets[i]
		if cand.asn == nw.asn && cand.prefix.Bits() <= 36 && cand.prefix.Overlaps(nw.prefix) {
			return cand.prefix.Subprefix(64, 0xffff)
		}
	}
	return ip6.Prefix{}
}

// lineContaining returns the line whose current /56 contains dst.
func lineContaining(l *lineISP, dst ip6.Addr, day int) (uint64, bool) {
	if !l.base.Contains(dst) {
		return 0, false
	}
	span := 56 - l.base.Bits()
	slot := dst.Hi() >> 8 & (1<<span - 1)
	if l.bits < span && slot>>l.bits != 0 {
		return 0, false
	}
	return l.lineOf(slot, l.rotEpoch(day))
}
