// Package netsim implements the simulated IPv6 Internet that the hitlist
// pipeline measures. It is the substitute for the live Internet of the
// paper (see DESIGN.md): a deterministic world of autonomous systems,
// announced prefixes, addressing schemes, servers, routers, CPE devices,
// clients, and — crucially — aliased prefixes, answering probe packets
// with realistic responsiveness, fingerprints, churn, packet loss, and
// rate limiting.
//
// Determinism: the world is fully determined by Config.Seed. Any probe
// (address, protocol, day, time) always yields the same answer given the
// same prior state, which makes every experiment in the paper exactly
// reproducible.
//
// Concurrency: the world is immutable once built, and Probe is safe for
// unlimited concurrent use (see the contract on Internet.Probe). Answers
// depend only on probe arguments, so results are identical regardless of
// how many scanner workers interleave their probes. DESIGN.md documents
// the scan-engine concurrency model built on top of this contract.
package netsim

import (
	"math/rand"
	"sync"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// Config parameterizes world generation.
type Config struct {
	// Seed determines everything.
	Seed int64
	// Registry configures the synthetic routing table.
	Registry bgp.RegistryConfig
	// Scale multiplies host populations. 1.0 builds a world whose hitlist
	// is ~1:100 of the paper's (≈400-600k addresses).
	Scale float64
	// EpochDays is the number of days between source-collection
	// snapshots (the paper collects daily over ~9 months; we default to
	// weekly snapshots over the simulated period).
	EpochDays int
	// Epochs is the number of collection snapshots for the runup.
	Epochs int
}

// DefaultConfig returns the standard 1:100-scale world.
func DefaultConfig() Config {
	return Config{
		Seed:      0x16C18,
		Registry:  bgp.DefaultRegistryConfig(),
		Scale:     1.0,
		EpochDays: 7,
		Epochs:    10,
	}
}

// HostClass categorizes simulated hosts; sources and reports use it to
// reason about populations (§3's "servers, routers, and a share of
// clients").
type HostClass uint8

// Host classes.
const (
	ClassWebServer HostClass = iota
	ClassDNSServer
	ClassRouter  // core/border routers
	ClassCPE     // customer premises equipment (home routers)
	ClassClient  // end-user devices
	ClassBitnode // Bitcoin peers (clients that appear in the Bitnodes API)
	ClassAtlas   // RIPE Atlas probes/anchors
)

// String returns a short class name.
func (c HostClass) String() string {
	switch c {
	case ClassWebServer:
		return "web"
	case ClassDNSServer:
		return "dns"
	case ClassRouter:
		return "router"
	case ClassCPE:
		return "cpe"
	case ClassClient:
		return "client"
	case ClassBitnode:
		return "bitnode"
	case ClassAtlas:
		return "atlas"
	default:
		return "host"
	}
}

// Host is one finite simulated host.
type Host struct {
	Addr    ip6.Addr
	ASN     bgp.ASN
	Class   HostClass
	Serves  wire.RespMask
	Machine uint64 // machine profile key; hosts in a cloned pool share it
	// DeathDay is the first day the host no longer responds (-1: beyond
	// horizon). Drives the longitudinal decay of Figure 8.
	DeathDay int16
	// QUICFlaky marks hosts whose UDP/443 responsiveness flaps per day
	// (the Akamai/HDNet behaviour of §6.3).
	QUICFlaky bool
	// Domain is a nonzero domain ID if a DNS name points at this host.
	Domain uint32
}

// AliasQuirk flags unusual behaviours of an aliased region that the
// fingerprinting study (§5.4) must encounter.
type AliasQuirk uint8

// Alias quirks.
const (
	// QuirkTTLFlip: individual probes get iTTL 64 or 255 at random (the
	// paper's 22 inconsistent-iTTL addresses in 2 /48s).
	QuirkTTLFlip AliasQuirk = 1 << iota
	// QuirkProxyMix: a TCP-level proxy fronts different backends per
	// destination address, so options layouts differ per address.
	QuirkProxyMix
	// QuirkWSizeVary: advertised window varies per probe (host state).
	QuirkWSizeVary
	// QuirkMSSVary: MSS differs per destination address.
	QuirkMSSVary
	// QuirkRateLimit: ICMP(+TCP) responses are rate-limited; some
	// fan-out branches fail per day (the six /120s of §5.1).
	QuirkRateLimit
	// QuirkSYNProxy: a SYN proxy answers all TCP after a threshold;
	// responds to only some branches, changing daily (the /80 of §5.1).
	QuirkSYNProxy
)

// AliasRegion is a ground-truth aliased prefix: every address inside it
// (except inside Hole) is bound to one machine.
type AliasRegion struct {
	Prefix  ip6.Prefix
	ASN     bgp.ASN
	Machine uint64
	Serves  wire.RespMask
	Quirks  AliasQuirk
	// Hole is an optional carve-out that is NOT aliased (zero Prefix if
	// none) — the DE-CIX 0x0-branch case of §5.1.
	Hole ip6.Prefix
	// Loss is the per-probe loss probability (high-loss networks are what
	// the sliding window of §5.2 exists for).
	Loss float64
}

// lineISP describes a pool of subscriber lines inside one ISP
// announcement. CPE and client addresses of rotating lines are computed
// on demand (they are too numerous to materialize across days).
type lineISP struct {
	key    uint64
	asn    bgp.ASN
	base   ip6.Prefix // pool covering the line /56s
	lines  int
	bits   int // log2 of /56 slots in pool
	mulG   uint64
	invG   uint64
	rotate int // rotation period in days; 0 = static
	// hostShare is the fraction of lines that host a (dynamic-DNS) domain.
	hostShare float64
	// clientShare is the fraction of lines with an active client device.
	clientShare float64
}

// network is per-announcement metadata used when answering probes.
type network struct {
	prefix  ip6.Prefix
	asn     bgp.ASN
	kind    bgp.Kind
	key     uint64
	pathLen uint8
	jitter  bool // TTL varies per probe (on-path effects)
	loss    float64
	isp     *lineISP // non-nil for subscriber pools
	scheme  Scheme
}

// Internet is the simulated world.
type Internet struct {
	cfg     Config
	Table   *bgp.Table
	hosts   map[ip6.Addr]int32
	hostArr []Host
	regions []*AliasRegion
	aliasT  ip6.Trie[*AliasRegion]
	nets    []*network
	netT    ip6.Trie[*network]
	// tier1 transit router addresses shared across traceroute paths.
	tier1        []ip6.Addr
	stale        []StaleRecord
	aliasRecords []AliasRecord
	rdns         []ip6.Addr
	key          uint64
	// machines memoizes fingerprint profiles per machine key; the only
	// state Probe mutates (append-only, race-free — see machineFor).
	machines sync.Map // uint64 → machine
}

// New builds the world. Generation cost is O(total hosts); the default
// scale builds in well under a second.
func New(cfg Config) *Internet {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.EpochDays <= 0 {
		cfg.EpochDays = 7
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	in := &Internet{
		cfg:   cfg,
		Table: bgp.Generate(cfg.Registry),
		hosts: make(map[ip6.Addr]int32),
		key:   mix64(uint64(cfg.Seed)),
	}
	in.plan()
	return in
}

// Config returns the configuration the world was built with.
func (in *Internet) Config() Config { return in.cfg }

// Horizon returns the last simulated day (inclusive) covered by source
// collection.
func (in *Internet) Horizon() int { return in.cfg.Epochs * in.cfg.EpochDays }

// addHost registers a finite host (construction time only).
func (in *Internet) addHost(h Host) {
	if _, dup := in.hosts[h.Addr]; dup {
		return
	}
	in.hosts[h.Addr] = int32(len(in.hostArr))
	in.hostArr = append(in.hostArr, h)
}

// Hosts returns all finite hosts of the given classes (all if none given).
// The slice is freshly allocated; order is deterministic.
func (in *Internet) Hosts(classes ...HostClass) []Host {
	var want func(HostClass) bool
	if len(classes) == 0 {
		want = func(HostClass) bool { return true }
	} else {
		m := map[HostClass]bool{}
		for _, c := range classes {
			m[c] = true
		}
		want = func(c HostClass) bool { return m[c] }
	}
	var out []Host
	for _, h := range in.hostArr {
		if want(h.Class) {
			out = append(out, h)
		}
	}
	return out
}

// HostAt returns the finite host at addr, if any.
func (in *Internet) HostAt(addr ip6.Addr) (Host, bool) {
	if i, ok := in.hosts[addr]; ok {
		return in.hostArr[i], true
	}
	return Host{}, false
}

// AliasedRegions returns the ground-truth aliased regions (for validation
// and EXPERIMENTS.md accounting — the pipeline itself must *detect* them).
func (in *Internet) AliasedRegions() []*AliasRegion {
	out := make([]*AliasRegion, len(in.regions))
	copy(out, in.regions)
	return out
}

// GroundTruthAliased reports whether addr falls in an aliased region
// (outside any hole). SYN-proxy regions are not aliased: the proxy only
// mimics responsiveness under attack thresholds (§5.1).
func (in *Internet) GroundTruthAliased(addr ip6.Addr) bool {
	_, r, ok := in.aliasT.Lookup(addr)
	if !ok {
		return false
	}
	if r.Quirks&QuirkSYNProxy != 0 {
		return false
	}
	if !r.Hole.IsZero() && r.Hole.Contains(addr) {
		return false
	}
	return true
}

// Probe implements wire.Responder: it answers a single probe packet.
//
// Concurrency contract: Probe is safe for unlimited concurrent use once
// New has returned. The world is immutable after construction — every
// lookup structure (host map, alias trie, network trie) is read-only, all
// per-probe variation derives from pure keyed hashes, and the only shared
// mutable state is the machine-profile memo cache, which is append-only
// and race-free (see machineFor). A probe's answer depends solely on its
// arguments, never on probe ordering, so any interleaving of concurrent
// callers observes identical responses. The concurrent scan engine in
// internal/probe relies on this contract.
func (in *Internet) Probe(dst ip6.Addr, p wire.Proto, day int, at wire.Time) wire.Response {
	// 1. Aliased regions (including their special-behaviour quirks).
	if _, r, ok := in.aliasT.Lookup(dst); ok {
		if resp, handled := in.probeAlias(r, dst, p, day, at); handled {
			return resp
		}
	}
	// 2. Finite hosts.
	if i, ok := in.hosts[dst]; ok {
		return in.probeHost(&in.hostArr[i], dst, p, day, at)
	}
	// 3. Functional populations: rotating subscriber lines. Pools hang
	// off the operator's covering announcement, so resolve with the
	// SHORTEST match (more-specific announcements may overlap the pool).
	if _, nw, ok := in.netT.LookupShortest(dst); ok && nw.isp != nil {
		return in.probeLine(nw, dst, p, day, at)
	}
	return wire.Response{}
}

// probeAlias answers probes that land in an aliased region. handled=false
// means the address is in the region's hole and resolution must continue.
func (in *Internet) probeAlias(r *AliasRegion, dst ip6.Addr, p wire.Proto, day int, at wire.Time) (wire.Response, bool) {
	if !r.Hole.IsZero() && r.Hole.Contains(dst) {
		return wire.Response{}, false
	}
	dstKey := hashAddr(in.key, dst)
	if r.Quirks&QuirkSYNProxy != 0 {
		// SYN proxy: TCP only, and only when today's connection-count
		// threshold hash says the proxy is in "defence mode" for this
		// branch. 3-5 of 16 branches respond, differing per day (§5.1).
		if !p.IsTCP() {
			return wire.Response{}, true
		}
		branch := dst.Nybble(r.Prefix.Bits() / 4) // first nybble below prefix
		if !chance(hash3(r.Machine, uint64(day), uint64(branch)), 0.25) {
			return wire.Response{}, true
		}
		return in.answer(r.Machine, r.quirkedMachine(dstKey), dstKey, p, day, at, r.pathLen(in), false), true
	}
	if !r.Serves.Has(p) {
		return wire.Response{}, true
	}
	// Per-probe loss (plus rate limiting on specific branches per day).
	if chance(hash3(in.key, dstKey, uint64(day)<<3|uint64(p)), r.Loss) {
		return wire.Response{}, true
	}
	if r.Quirks&QuirkRateLimit != 0 {
		branch := dst.Nybble(r.Prefix.Bits() / 4)
		if chance(hash3(r.Machine^0xacce1, uint64(day)<<5|uint64(p), uint64(branch)), 0.18) {
			return wire.Response{}, true
		}
	}
	resp := in.answer(r.Machine, r.quirkedMachine(dstKey), dstKey, p, day, at, r.pathLen(in), r.Quirks&QuirkTTLFlip != 0)
	if resp.TCP != nil {
		if r.Quirks&QuirkWSizeVary != 0 {
			// Host-state-dependent receive window: varies per probe.
			resp.TCP.WSize += uint16(hash3(r.Machine, dstKey, uint64(at)) % 5 * 1460)
		}
		if r.Quirks&QuirkMSSVary != 0 && dstKey%5 == 0 {
			// Some addresses advertise path-specific MSS values.
			resp.TCP.MSS -= 8
		}
	}
	return resp, true
}

// quirkedMachine derives the effective machine key for a destination,
// implementing the per-address fingerprint variation quirks.
func (r *AliasRegion) quirkedMachine(dstKey uint64) uint64 {
	m := r.Machine
	if r.Quirks&QuirkProxyMix != 0 && dstKey%7 == 0 {
		// ~1/7 of addresses front a different backend.
		m = mix64(m ^ 0xbac0e4d)
	}
	return m
}

func (r *AliasRegion) pathLen(in *Internet) uint8 {
	return uint8(3 + hash2(in.key^0x9a70, uint64(r.ASN))%9)
}

// probeHost answers probes to finite hosts.
func (in *Internet) probeHost(h *Host, dst ip6.Addr, p wire.Proto, day int, at wire.Time) wire.Response {
	if h.DeathDay >= 0 && day >= int(h.DeathDay) {
		return wire.Response{}
	}
	if !h.Serves.Has(p) {
		return wire.Response{}
	}
	dstKey := hashAddr(in.key, dst)
	if h.QUICFlaky && p == wire.UDP443 {
		// Flapping QUIC deployment: up only on "test days" per address.
		if !chance(hash3(h.Machine^0x901c, uint64(day), dstKey), 0.75) {
			return wire.Response{}
		}
	}
	nw := in.networkOf(dst)
	loss, path, jitter := 0.01, uint8(5), false
	if nw != nil {
		loss, path, jitter = nw.loss, nw.pathLen, nw.jitter
	}
	if h.Class == ClassClient || h.Class == ClassBitnode {
		// Clients: session windows; see §9.3. Deterministic per (host,day).
		if !clientOnline(h.Machine, day, at) {
			return wire.Response{}
		}
	}
	if chance(hash3(in.key^0x1055, dstKey, uint64(day)<<3|uint64(p)), loss) {
		return wire.Response{}
	}
	return in.answer(h.Machine, h.Machine, dstKey, p, day, at, path, jitter)
}

// clientOnline models a client's daily uptime window (mean ≈ 8h).
func clientOnline(key uint64, day int, at wire.Time) bool {
	h := hash2(key, uint64(day))
	// 15% of days the device is off entirely.
	if chance(h, 0.15) {
		return false
	}
	start := h % 86_400_000_000 // μs offset of window start
	// Window length: roughly log-uniform between 30 min and 24 h.
	frac := unit(mix64(h))
	dur := uint64(1800_000_000) << uint(frac*5.5) // 0.5h .. 24h (capped)
	if dur > 86_400_000_000 {
		dur = 86_400_000_000
	}
	t := uint64(at) % 86_400_000_000
	end := start + dur
	if end <= 86_400_000_000 {
		return t >= start && t < end
	}
	return t >= start || t < end-86_400_000_000
}

// probeLine answers probes into subscriber pools (rotating CPE/clients).
func (in *Internet) probeLine(nw *network, dst ip6.Addr, p wire.Proto, day int, at wire.Time) wire.Response {
	isp := nw.isp
	line, kind, ok := isp.lineAt(dst, day)
	if !ok {
		return wire.Response{}
	}
	dstKey := hashAddr(in.key, dst)
	switch kind {
	case lineCPE:
		if p != wire.ICMPv6 {
			return wire.Response{}
		}
		if chance(hash3(in.key^0xc9e, dstKey, uint64(day)), nw.loss+0.02) {
			return wire.Response{}
		}
		return in.answer(isp.cpeMachine(line), isp.cpeMachine(line), dstKey, p, day, at, nw.pathLen, nw.jitter)
	case lineNAS:
		// Self-hosted servers behind CPE: web panel plus ICMP.
		if p != wire.ICMPv6 && p != wire.TCP80 {
			return wire.Response{}
		}
		mk := isp.cpeMachine(line) ^ 0x4a5
		if chance(hash3(in.key^0x4a5a, dstKey, uint64(day)<<3|uint64(p)), nw.loss+0.03) {
			return wire.Response{}
		}
		return in.answer(mk, mk, dstKey, p, day, at, nw.pathLen+1, nw.jitter)
	case lineClient:
		if p != wire.ICMPv6 {
			return wire.Response{}
		}
		mk := isp.clientMachine(line)
		// Most residential clients filter inbound ICMPv6 ("outbound
		// only", RFC 7084): only ~1 in 5 respond at all.
		if !chance(hash2(mk, 0xf117e8), 0.22) {
			return wire.Response{}
		}
		if !clientOnline(mk, day, at) {
			return wire.Response{}
		}
		return in.answer(mk, mk, dstKey, p, day, at, nw.pathLen+1, nw.jitter)
	}
	return wire.Response{}
}

// answer builds a positive response with fingerprint data.
func (in *Internet) answer(machineKey, effKey, dstKey uint64, p wire.Proto, day int, at wire.Time, path uint8, ttlFlip bool) wire.Response {
	m := in.machineFor(effKey)
	ittl := m.iTTL
	if ttlFlip && dstKey&1 == 1 {
		if ittl == 64 {
			ittl = 255
		} else {
			ittl = 64
		}
	}
	hops := path
	// On-path TTL jitter for a third of probes when flagged.
	if jh := hash3(in.key^0x771, dstKey, uint64(at)); ttlFlip == false && jh%3 == 0 {
		hops += uint8(jh >> 8 % 2)
	}
	hl := uint8(1)
	if ittl > hops {
		hl = ittl - hops
	}
	resp := wire.Response{OK: true, HopLimit: hl}
	if p.IsTCP() {
		resp.TCP = m.tcpAnswer(dstKey, day, at)
	}
	return resp
}

// networkOf returns per-announcement metadata covering addr.
func (in *Internet) networkOf(addr ip6.Addr) *network {
	_, nw, ok := in.netT.Lookup(addr)
	if !ok {
		return nil
	}
	return nw
}

// rngFor derives a deterministic rand.Rand for a construction sub-task.
func (in *Internet) rngFor(tag uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(hash2(in.key, tag))))
}
