// Package netsim implements the simulated IPv6 Internet that the hitlist
// pipeline measures. It is the substitute for the live Internet of the
// paper (see DESIGN.md): a deterministic world of autonomous systems,
// announced prefixes, addressing schemes, servers, routers, CPE devices,
// clients, and — crucially — aliased prefixes, answering probe packets
// with realistic responsiveness, fingerprints, churn, packet loss, and
// rate limiting.
//
// Determinism: the world is fully determined by Config.Seed. Any probe
// (address, protocol, day, time) always yields the same answer given the
// same prior state, which makes every experiment in the paper exactly
// reproducible.
//
// Concurrency: the world is immutable once built, and Probe is safe for
// unlimited concurrent use (see the contract on Internet.Probe). Answers
// depend only on probe arguments, so results are identical regardless of
// how many scanner workers interleave their probes. DESIGN.md documents
// the scan-engine concurrency model built on top of this contract.
package netsim

import (
	"math/rand"
	"sync"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// Config parameterizes world generation.
type Config struct {
	// Seed determines everything.
	Seed int64
	// Registry configures the synthetic routing table.
	Registry bgp.RegistryConfig
	// Scale multiplies host populations. 1.0 builds a world whose hitlist
	// is ~1:100 of the paper's (≈400-600k addresses).
	Scale float64
	// EpochDays is the number of days between source-collection
	// snapshots (the paper collects daily over ~9 months; we default to
	// weekly snapshots over the simulated period).
	EpochDays int
	// Epochs is the number of collection snapshots for the runup.
	Epochs int
}

// DefaultConfig returns the standard 1:100-scale world.
func DefaultConfig() Config {
	return Config{
		Seed:      0x16C18,
		Registry:  bgp.DefaultRegistryConfig(),
		Scale:     1.0,
		EpochDays: 7,
		Epochs:    10,
	}
}

// HostClass categorizes simulated hosts; sources and reports use it to
// reason about populations (§3's "servers, routers, and a share of
// clients").
type HostClass uint8

// Host classes.
const (
	ClassWebServer HostClass = iota
	ClassDNSServer
	ClassRouter  // core/border routers
	ClassCPE     // customer premises equipment (home routers)
	ClassClient  // end-user devices
	ClassBitnode // Bitcoin peers (clients that appear in the Bitnodes API)
	ClassAtlas   // RIPE Atlas probes/anchors
)

// String returns a short class name.
func (c HostClass) String() string {
	switch c {
	case ClassWebServer:
		return "web"
	case ClassDNSServer:
		return "dns"
	case ClassRouter:
		return "router"
	case ClassCPE:
		return "cpe"
	case ClassClient:
		return "client"
	case ClassBitnode:
		return "bitnode"
	case ClassAtlas:
		return "atlas"
	default:
		return "host"
	}
}

// Host is one finite simulated host.
type Host struct {
	Addr    ip6.Addr
	ASN     bgp.ASN
	Class   HostClass
	Serves  wire.RespMask
	Machine uint64 // machine profile key; hosts in a cloned pool share it
	// DeathDay is the first day the host no longer responds (-1: beyond
	// horizon). Drives the longitudinal decay of Figure 8.
	DeathDay int16
	// QUICFlaky marks hosts whose UDP/443 responsiveness flaps per day
	// (the Akamai/HDNet behaviour of §6.3).
	QUICFlaky bool
	// Domain is a nonzero domain ID if a DNS name points at this host.
	Domain uint32
}

// AliasQuirk flags unusual behaviours of an aliased region that the
// fingerprinting study (§5.4) must encounter.
type AliasQuirk uint8

// Alias quirks.
const (
	// QuirkTTLFlip: individual probes get iTTL 64 or 255 at random (the
	// paper's 22 inconsistent-iTTL addresses in 2 /48s).
	QuirkTTLFlip AliasQuirk = 1 << iota
	// QuirkProxyMix: a TCP-level proxy fronts different backends per
	// destination address, so options layouts differ per address.
	QuirkProxyMix
	// QuirkWSizeVary: advertised window varies per probe (host state).
	QuirkWSizeVary
	// QuirkMSSVary: MSS differs per destination address.
	QuirkMSSVary
	// QuirkRateLimit: ICMP(+TCP) responses are rate-limited; some
	// fan-out branches fail per day (the six /120s of §5.1).
	QuirkRateLimit
	// QuirkSYNProxy: a SYN proxy answers all TCP after a threshold;
	// responds to only some branches, changing daily (the /80 of §5.1).
	QuirkSYNProxy
)

// AliasRegion is a ground-truth aliased prefix: every address inside it
// (except inside Hole) is bound to one machine.
type AliasRegion struct {
	Prefix  ip6.Prefix
	ASN     bgp.ASN
	Machine uint64
	Serves  wire.RespMask
	Quirks  AliasQuirk
	// Hole is an optional carve-out that is NOT aliased (zero Prefix if
	// none) — the DE-CIX 0x0-branch case of §5.1.
	Hole ip6.Prefix
	// Loss is the per-probe loss probability (high-loss networks are what
	// the sliding window of §5.2 exists for).
	Loss float64
}

// lineISP describes a pool of subscriber lines inside one ISP
// announcement. CPE and client addresses of rotating lines are computed
// on demand (they are too numerous to materialize across days).
type lineISP struct {
	key    uint64
	asn    bgp.ASN
	base   ip6.Prefix // pool covering the line /56s
	lines  int
	bits   int // log2 of /56 slots in pool
	mulG   uint64
	invG   uint64
	rotate int // rotation period in days; 0 = static
	// hostShare is the fraction of lines that host a (dynamic-DNS) domain.
	hostShare float64
	// clientShare is the fraction of lines with an active client device.
	clientShare float64
	// domainLines counts lines with hostsDomain(line) true, fixed at
	// construction so LineHosts pre-sizes its output exactly.
	domainLines int
}

// network is per-announcement metadata used when answering probes. The
// topology is columnar: networks live in the flat Internet.nets slice and
// every lookup structure (trie, interval table) carries dense int32 IDs
// into it, so resolving a probe touches cache-line-contiguous data
// instead of chasing per-network heap pointers.
type network struct {
	prefix  ip6.Prefix
	asn     bgp.ASN
	kind    bgp.Kind
	key     uint64
	pathLen uint8
	jitter  bool // TTL varies per probe (on-path effects)
	loss    float64
	isp     int32 // index into Internet.isps; -1 for non-subscriber nets
	scheme  Scheme
}

// Internet is the simulated world. After New returns it is sealed: the
// host population lives in sorted SoA columns (hostCols), networks,
// alias regions and ISP pools in flat columns addressed by int32 IDs,
// and nothing is mutated again (cmd/expanselint's sealedwrite analyzer
// enforces the freeze outside this package).
type Internet struct {
	cfg   Config
	Table *bgp.Table
	// hc is the sealed columnar host plane (see hostcols.go).
	hc      hostCols
	regions []AliasRegion
	aliasT  ip6.Trie[int32]
	nets    []network
	netT    ip6.Trie[int32]
	isps    []lineISP
	// tier1 transit router addresses shared across traceroute paths.
	tier1        []ip6.Addr
	stale        []StaleRecord
	aliasRecords []AliasRecord
	rdns         []ip6.Addr
	key          uint64
	// machines memoizes fingerprint profiles per machine key; the only
	// state Probe mutates (append-only, race-free — see machineFor).
	machines sync.Map // uint64 → machine
	// batch holds the lazily compiled interval tables of the batched
	// responder path (see batch.go).
	batchOnce sync.Once
	batch     *batchTabs
	// b is the construction-time host builder; nil once sealed. ref
	// retains the builder as the in-test map/AoS reference when the
	// retainBuilder hook is set.
	b   *worldBuilder
	ref *worldBuilder
}

// retainBuilder makes New keep the map/AoS builder on Internet.ref after
// sealing. Test hook: the property tests pin the sealed columns against
// the retained legacy representation.
var retainBuilder bool

// New builds the world. Generation cost is O(total hosts); the default
// scale builds in well under a second.
func New(cfg Config) *Internet {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.EpochDays <= 0 {
		cfg.EpochDays = 7
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	in := &Internet{
		cfg:   cfg,
		Table: bgp.Generate(cfg.Registry),
		b:     newWorldBuilder(),
		key:   mix64(uint64(cfg.Seed)),
	}
	in.plan()
	return in
}

// sealPhase1 freezes the bulk of the host population into sorted columns
// and swaps in a small delta builder for the late (rDNS-only) additions.
// Sealing before planRDNS drops the host map at the construction peak and
// lets the rDNS sweep run over the sorted columns.
func (in *Internet) sealPhase1() {
	in.hc = sealHosts(in.b)
	if retainBuilder {
		in.ref = in.b
	}
	in.b = newWorldBuilder()
}

// sealDelta merges the post-seal additions into the columns and drops the
// builders for good.
func (in *Internet) sealDelta() {
	in.hc = mergeSealed(in.hc, in.b)
	if retainBuilder {
		for _, h := range in.b.arr {
			in.ref.add(h)
		}
	}
	in.b = nil
}

// Config returns the configuration the world was built with.
func (in *Internet) Config() Config { return in.cfg }

// Horizon returns the last simulated day (inclusive) covered by source
// collection.
func (in *Internet) Horizon() int { return in.cfg.Epochs * in.cfg.EpochDays }

// addHost registers a finite host (construction time only). First
// insertion wins; after the phase-1 seal the dedup check consults the
// sealed columns as well as the delta builder.
func (in *Internet) addHost(h Host) {
	if in.hc.n() > 0 {
		if _, ok := in.hc.find(h.Addr); ok {
			return
		}
	}
	in.b.add(h)
}

// Hosts returns all finite hosts of the given classes (all if none given).
// The slice is freshly allocated; order is deterministic.
func (in *Internet) Hosts(classes ...HostClass) []Host {
	var want func(HostClass) bool
	if len(classes) == 0 {
		want = func(HostClass) bool { return true }
	} else {
		m := map[HostClass]bool{}
		for _, c := range classes {
			m[c] = true
		}
		want = func(c HostClass) bool { return m[c] }
	}
	var out []Host
	for _, pos := range in.hc.byRank {
		if want(in.hc.classAt(pos)) {
			out = append(out, in.hc.hostAt(pos))
		}
	}
	return out
}

// HostAt returns the finite host at addr, if any: a binary search on the
// sorted address columns.
func (in *Internet) HostAt(addr ip6.Addr) (Host, bool) {
	if i, ok := in.hc.find(addr); ok {
		return in.hc.hostAt(i), true
	}
	return Host{}, false
}

// AliasedRegions returns the ground-truth aliased regions (for validation
// and EXPERIMENTS.md accounting — the pipeline itself must *detect* them).
// The pointers index into the sealed region column and stay valid for the
// world's lifetime.
func (in *Internet) AliasedRegions() []*AliasRegion {
	out := make([]*AliasRegion, len(in.regions))
	for i := range in.regions {
		out[i] = &in.regions[i]
	}
	return out
}

// GroundTruthAliased reports whether addr falls in an aliased region
// (outside any hole). SYN-proxy regions are not aliased: the proxy only
// mimics responsiveness under attack thresholds (§5.1).
func (in *Internet) GroundTruthAliased(addr ip6.Addr) bool {
	_, ri, ok := in.aliasT.Lookup(addr)
	if !ok {
		return false
	}
	r := &in.regions[ri]
	if r.Quirks&QuirkSYNProxy != 0 {
		return false
	}
	if !r.Hole.IsZero() && r.Hole.Contains(addr) {
		return false
	}
	return true
}

// Probe implements wire.Responder: it answers a single probe packet.
//
// Concurrency contract: Probe is safe for unlimited concurrent use once
// New has returned. The world is immutable after construction — every
// lookup structure (host map, alias trie, network trie) is read-only, all
// per-probe variation derives from pure keyed hashes, and the only shared
// mutable state is the machine-profile memo cache, which is append-only
// and race-free (see machineFor). A probe's answer depends solely on its
// arguments, never on probe ordering, so any interleaving of concurrent
// callers observes identical responses. The concurrent scan engine in
// internal/probe relies on this contract.
//
// Probe is the per-probe semantic reference: it resolves the destination
// through the construction-time tries. The batched path (ProbeBatch in
// batch.go) resolves through interval-compiled forms of the same tables
// and shares every decision below the resolution step, and is pinned
// per-index against Probe by test.
func (in *Internet) Probe(dst ip6.Addr, p wire.Proto, day int, at wire.Time) wire.Response {
	// 1. Aliased regions (including their special-behaviour quirks).
	if _, ri, ok := in.aliasT.Lookup(dst); ok {
		if raw, handled := in.probeAliasRaw(&in.regions[ri], dst, p, day, at); handled {
			return in.materialize(raw, day, at)
		}
	}
	// 2. Finite hosts: binary search on the sorted host columns.
	if i, ok := in.hc.find(dst); ok {
		return in.materialize(in.probeHostRaw(i, dst, p, day, at, in.networkOf(dst)), day, at)
	}
	// 3. Functional populations: rotating subscriber lines. Pools hang
	// off the operator's covering announcement, so resolve with the
	// SHORTEST match (more-specific announcements may overlap the pool).
	if _, ni, ok := in.netT.LookupShortest(dst); ok && in.nets[ni].isp >= 0 {
		return in.materialize(in.probeLineRaw(&in.nets[ni], dst, p, day, at), day, at)
	}
	return wire.Response{}
}

// rawResponse is the allocation-free internal probe answer shared by the
// per-probe and batched paths: the OK flag, the hop limit, and — for TCP
// probes — the responding machine profile plus the per-probe fingerprint
// deltas the alias quirks apply. materialize turns it into a wire.Response
// (heap TCPInfo); the batch emitter writes it straight into result columns
// with the fingerprint interned instead.
type rawResponse struct {
	ok       bool
	tcp      bool
	hop      uint8
	wsizeAdd uint16 // QuirkWSizeVary per-probe window delta
	mssSub   uint16 // QuirkMSSVary per-address MSS delta
	m        machine
	dstKey   uint64
}

// materialize expands a rawResponse into the per-probe Response form,
// allocating the TCPInfo the legacy vocabulary carries.
func (in *Internet) materialize(raw rawResponse, day int, at wire.Time) wire.Response {
	if !raw.ok {
		return wire.Response{}
	}
	resp := wire.Response{OK: true, HopLimit: raw.hop}
	if raw.tcp {
		info := raw.m.tcpAnswer(raw.dstKey, day, at)
		info.WSize += raw.wsizeAdd
		info.MSS -= raw.mssSub
		resp.TCP = info
	}
	return resp
}

// probeAliasRaw answers probes that land in an aliased region.
// handled=false means the address is in the region's hole and resolution
// must continue.
func (in *Internet) probeAliasRaw(r *AliasRegion, dst ip6.Addr, p wire.Proto, day int, at wire.Time) (rawResponse, bool) {
	if !r.Hole.IsZero() && r.Hole.Contains(dst) {
		return rawResponse{}, false
	}
	dstKey := hashAddr(in.key, dst)
	if r.Quirks&QuirkSYNProxy != 0 {
		// SYN proxy: TCP only, and only when today's connection-count
		// threshold hash says the proxy is in "defence mode" for this
		// branch. 3-5 of 16 branches respond, differing per day (§5.1).
		if !p.IsTCP() {
			return rawResponse{}, true
		}
		branch := dst.Nybble(r.Prefix.Bits() / 4) // first nybble below prefix
		if !chance(hash3(r.Machine, uint64(day), uint64(branch)), 0.25) {
			return rawResponse{}, true
		}
		return in.answerRaw(r.quirkedMachine(dstKey), dstKey, p, at, r.pathLen(in), false), true
	}
	if !r.Serves.Has(p) {
		return rawResponse{}, true
	}
	// Per-probe loss (plus rate limiting on specific branches per day).
	if chance(hash3(in.key, dstKey, uint64(day)<<3|uint64(p)), r.Loss) {
		return rawResponse{}, true
	}
	if r.Quirks&QuirkRateLimit != 0 {
		branch := dst.Nybble(r.Prefix.Bits() / 4)
		if chance(hash3(r.Machine^0xacce1, uint64(day)<<5|uint64(p), uint64(branch)), 0.18) {
			return rawResponse{}, true
		}
	}
	raw := in.answerRaw(r.quirkedMachine(dstKey), dstKey, p, at, r.pathLen(in), r.Quirks&QuirkTTLFlip != 0)
	if raw.tcp {
		if r.Quirks&QuirkWSizeVary != 0 {
			// Host-state-dependent receive window: varies per probe.
			raw.wsizeAdd = uint16(hash3(r.Machine, dstKey, uint64(at)) % 5 * 1460)
		}
		if r.Quirks&QuirkMSSVary != 0 && dstKey%5 == 0 {
			// Some addresses advertise path-specific MSS values.
			raw.mssSub = 8
		}
	}
	return raw, true
}

// quirkedMachine derives the effective machine key for a destination,
// implementing the per-address fingerprint variation quirks.
func (r *AliasRegion) quirkedMachine(dstKey uint64) uint64 {
	m := r.Machine
	if r.Quirks&QuirkProxyMix != 0 && dstKey%7 == 0 {
		// ~1/7 of addresses front a different backend.
		m = mix64(m ^ 0xbac0e4d)
	}
	return m
}

func (r *AliasRegion) pathLen(in *Internet) uint8 {
	return uint8(3 + hash2(in.key^0x9a70, uint64(r.ASN))%9)
}

// probeHostRaw answers probes to the finite host at sorted column
// position hi. nwi is the most-specific announcement covering dst (-1 if
// unannounced); the per-probe path resolves it through the network trie,
// the batch path through the interval table. Taking indices instead of
// pointers keeps both resolution paths on the flat columns.
func (in *Internet) probeHostRaw(hi int32, dst ip6.Addr, p wire.Proto, day int, at wire.Time, nwi int32) rawResponse {
	hc := &in.hc
	if dd := hc.deathDay[hi]; dd >= 0 && day >= int(dd) {
		return rawResponse{}
	}
	if !hc.serves[hi].Has(p) {
		return rawResponse{}
	}
	dstKey := hashAddr(in.key, dst)
	meta, mk := hc.meta[hi], hc.machine[hi]
	if meta&hostFlagQUIC != 0 && p == wire.UDP443 {
		// Flapping QUIC deployment: up only on "test days" per address.
		if !chance(hash3(mk^0x901c, uint64(day), dstKey), 0.75) {
			return rawResponse{}
		}
	}
	loss, path, jitter := 0.01, uint8(5), false
	if nwi >= 0 {
		nw := &in.nets[nwi]
		loss, path, jitter = nw.loss, nw.pathLen, nw.jitter
	}
	if class := HostClass(meta & hostClassMask); class == ClassClient || class == ClassBitnode {
		// Clients: session windows; see §9.3. Deterministic per (host,day).
		if !clientOnline(mk, day, at) {
			return rawResponse{}
		}
	}
	if chance(hash3(in.key^0x1055, dstKey, uint64(day)<<3|uint64(p)), loss) {
		return rawResponse{}
	}
	return in.answerRaw(mk, dstKey, p, at, path, jitter)
}

// clientOnline models a client's daily uptime window (mean ≈ 8h).
func clientOnline(key uint64, day int, at wire.Time) bool {
	h := hash2(key, uint64(day))
	// 15% of days the device is off entirely.
	if chance(h, 0.15) {
		return false
	}
	start := h % 86_400_000_000 // μs offset of window start
	// Window length: roughly log-uniform between 30 min and 24 h.
	frac := unit(mix64(h))
	dur := uint64(1800_000_000) << uint(frac*5.5) // 0.5h .. 24h (capped)
	if dur > 86_400_000_000 {
		dur = 86_400_000_000
	}
	t := uint64(at) % 86_400_000_000
	end := start + dur
	if end <= 86_400_000_000 {
		return t >= start && t < end
	}
	return t >= start || t < end-86_400_000_000
}

// probeLineRaw answers probes into subscriber pools (rotating CPE/clients).
func (in *Internet) probeLineRaw(nw *network, dst ip6.Addr, p wire.Proto, day int, at wire.Time) rawResponse {
	isp := &in.isps[nw.isp]
	line, kind, ok := isp.lineAt(dst, day)
	if !ok {
		return rawResponse{}
	}
	dstKey := hashAddr(in.key, dst)
	switch kind {
	case lineCPE:
		if p != wire.ICMPv6 {
			return rawResponse{}
		}
		if chance(hash3(in.key^0xc9e, dstKey, uint64(day)), nw.loss+0.02) {
			return rawResponse{}
		}
		return in.answerRaw(isp.cpeMachine(line), dstKey, p, at, nw.pathLen, nw.jitter)
	case lineNAS:
		// Self-hosted servers behind CPE: web panel plus ICMP.
		if p != wire.ICMPv6 && p != wire.TCP80 {
			return rawResponse{}
		}
		mk := isp.cpeMachine(line) ^ 0x4a5
		if chance(hash3(in.key^0x4a5a, dstKey, uint64(day)<<3|uint64(p)), nw.loss+0.03) {
			return rawResponse{}
		}
		return in.answerRaw(mk, dstKey, p, at, nw.pathLen+1, nw.jitter)
	case lineClient:
		if p != wire.ICMPv6 {
			return rawResponse{}
		}
		mk := isp.clientMachine(line)
		// Most residential clients filter inbound ICMPv6 ("outbound
		// only", RFC 7084): only ~1 in 5 respond at all.
		if !chance(hash2(mk, 0xf117e8), 0.22) {
			return rawResponse{}
		}
		if !clientOnline(mk, day, at) {
			return rawResponse{}
		}
		return in.answerRaw(mk, dstKey, p, at, nw.pathLen+1, nw.jitter)
	}
	return rawResponse{}
}

// answerRaw builds a positive answer: hop limit plus, for TCP probes, the
// machine whose fingerprint the response carries. Timestamp values and
// TCPInfo materialization are deferred to the emitters (materialize for
// the per-probe path, the column emitter in batch.go for the batched one).
func (in *Internet) answerRaw(effKey, dstKey uint64, p wire.Proto, at wire.Time, path uint8, ttlFlip bool) rawResponse {
	m := in.machineFor(effKey)
	ittl := m.iTTL
	if ttlFlip && dstKey&1 == 1 {
		if ittl == 64 {
			ittl = 255
		} else {
			ittl = 64
		}
	}
	hops := path
	// On-path TTL jitter for a third of probes when flagged.
	if jh := hash3(in.key^0x771, dstKey, uint64(at)); ttlFlip == false && jh%3 == 0 {
		hops += uint8(jh >> 8 % 2)
	}
	hl := uint8(1)
	if ittl > hops {
		hl = ittl - hops
	}
	return rawResponse{ok: true, tcp: p.IsTCP(), hop: hl, m: m, dstKey: dstKey}
}

// networkOf returns the ID of the most-specific announcement covering
// addr, or -1 if unannounced.
func (in *Internet) networkOf(addr ip6.Addr) int32 {
	_, ni, ok := in.netT.Lookup(addr)
	if !ok {
		return -1
	}
	return ni
}

// rngFor derives a deterministic rand.Rand for a construction sub-task.
func (in *Internet) rngFor(tag uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(hash2(in.key, tag))))
}
