// Package prof is the shared profiling and host-metadata helper of the
// command-line tools: one place to hang -cpuprofile/-memprofile flags,
// read peak RSS, and stamp benchmark JSON with the host facts needed to
// interpret it (CPU count, GOMAXPROCS, GOMEMLIMIT, Go version) — so no
// emitted measurement needs a "what machine was this?" caveat.
package prof

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
)

// Profiles carries the -cpuprofile/-memprofile flag values and the
// running CPU profile's file handle between Start and Stop.
type Profiles struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// Flags registers -cpuprofile and -memprofile on the flag set (the
// standard `go test` spelling) and returns the holder to Start/Stop
// around the measured work.
func Flags(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&p.memPath, "memprofile", "", "write a heap profile to `file` on exit")
	return p
}

// Start begins the CPU profile if one was requested. Call after flag
// parsing, before the measured work.
func (p *Profiles) Start() error {
	if p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop ends the CPU profile and writes the heap profile, if requested.
// The heap profile is taken after a forced GC so it reflects live
// bytes, not garbage awaiting collection.
func (p *Profiles) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if p.memPath == "" {
		return nil
	}
	f, err := os.Create(p.memPath)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

// HeapSnapshotEnv writes an inuse heap profile to
// $EXPANSE_HEAPPROF_DIR/heap_<tag>.pprof and is a no-op when the
// variable is unset. Long-running phases call it from quiet points
// (the day loop's forced-GC hook) so a run's heap growth can be
// diffed profile-against-profile mid-flight — end-of-run -memprofile
// only shows the final state, which is exactly what a
// retention-during-the-run bug hides from.
func HeapSnapshotEnv(tag string) error {
	dir := os.Getenv("EXPANSE_HEAPPROF_DIR")
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, "heap_"+tag+".pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup("heap").WriteTo(f, 0)
}

// HostMeta is the host fingerprint embedded in benchmark JSON.
type HostMeta struct {
	GoVersion  string `json:"go_version"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GOMEMLIMIT is the soft memory limit in bytes, or 0 when unset.
	GOMEMLIMIT int64 `json:"gomemlimit,omitempty"`
}

// Host returns the current process's host fingerprint.
func Host() HostMeta {
	limit := debug.SetMemoryLimit(-1)
	if limit == int64(^uint64(0)>>1) { // math.MaxInt64: no limit set
		limit = 0
	}
	return HostMeta{
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOMEMLIMIT: limit,
	}
}

// PeakRSS returns the process's peak resident set size in bytes (Linux
// VmHWM), or 0 where /proc is unavailable.
func PeakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// LiveHeap forces a GC and returns the live heap bytes — the number
// memory audits compare against the planes' self-reported MemBytes.
func LiveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// FmtBytes renders a byte count human-readably (KiB/MiB/GiB) for log
// lines; JSON always carries raw byte counts.
func FmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
