package prof

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestHost(t *testing.T) {
	h := Host()
	if h.GoVersion == "" || h.CPUs < 1 || h.GOMAXPROCS < 1 {
		t.Fatalf("implausible host meta: %+v", h)
	}
}

func TestPeakRSS(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("VmHWM is Linux-only")
	}
	if rss := PeakRSS(); rss <= 0 {
		t.Fatalf("PeakRSS = %d on linux", rss)
	}
}

func TestLiveHeap(t *testing.T) {
	if n := LiveHeap(); n <= 0 {
		t.Fatalf("LiveHeap = %d", n)
	}
}

// TestProfilesRoundTrip drives the flag plumbing end to end: both
// profiles requested, Start/Stop, and non-empty pprof files on disk.
func TestProfilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb")
	mem := filepath.Join(dir, "mem.pb")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := Flags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 10: "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for n, want := range cases {
		if got := FmtBytes(n); got != want {
			t.Fatalf("FmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
