package core

import (
	"expanse/internal/crowd"
)

// crowdState caches the §9 crowdsourcing study.
type crowdState struct {
	parts []crowd.Participant
	ping  crowd.PingResult
}

// crowdScale maps the simulation scale onto platform task budgets so the
// recruited population fits the simulated client pool.
func (l *Lab) crowdScale() float64 {
	s := l.P.Cfg.Sim.Scale * 0.12
	if s <= 0 {
		s = 0.05
	}
	return s
}

func (l *Lab) ensureCrowd() {
	l.crowdOnce.Do(l.buildCrowd)
}

func (l *Lab) buildCrowd() {
	l.ensureCollected()
	parts := crowd.Recruit(l.P.World, crowd.DefaultPlatforms(l.crowdScale()), l.measureDay(), uint64(l.P.Cfg.Sim.Seed))
	// Ping every IPv6 participant at 15-minute cadence over 14 days (the
	// paper pings at 5-minute cadence over a month; the cadence scaling
	// keeps uptime statistics comparable at simulation cost).
	ping := crowd.PingStudy(l.P.World, parts, 14, 15)
	l.crowd = &crowdState{parts: parts, ping: ping}
}

// Table9 reproduces the crowdsourcing client distribution.
func (l *Lab) Table9() *Report {
	l.ensureCrowd()
	r := &Report{ID: "Table 9", Title: "Client distribution in the crowdsourcing study"}
	r.addf("%-8s %6s %6s %7s %7s %5s %5s", "platform", "IPv4", "IPv6", "ASes4", "ASes6", "#cc4", "#cc6")
	for _, row := range crowd.Table9(l.crowd.parts) {
		r.addf("%-8s %6d %6d %7d %7d %5d %5d", row.Name, row.IPv4, row.IPv6, row.ASes4, row.ASes6, row.CC4, row.CC6)
	}
	asShare, common := crowd.ASOverlap(l.crowd.parts)
	r.addf("IPv6 AS overlap between platforms: %.1f%%; common addresses: %d", asShare*100, common)
	return r
}

// Sec93 reproduces the client-responsiveness study.
func (l *Lab) Sec93() *Report {
	l.ensureCrowd()
	p := l.crowd.ping
	r := &Report{ID: "Sec 9.3", Title: "Client responsiveness"}
	share := 0.0
	if p.Clients > 0 {
		share = float64(p.Responsive) / float64(p.Clients)
	}
	r.addf("IPv6 clients pinged: %d; responsive: %d (%.1f%%)", p.Clients, p.Responsive, share*100)
	r.addf("RIPE Atlas probes in the same ASes responsive: %.1f%% (upper bound)", p.AtlasResponsive*100)
	r.addf("responsive the whole study period: %d", p.FullPeriod)
	r.addf("active < 1h/day: %.1f%%; active <= 8h/day: %.1f%%", p.UnderHour*100, p.Under8h*100)
	r.addf("daily uptime of dynamic clients: mean %.1f h, median %.1f h", p.MeanUptimeH, p.MedianUptimeH)
	r.addf("unresponsive clients with last hop outside their AS (ISP filtering): %.1f%%", p.LastHopFiltered*100)
	return r
}
