package core

import (
	"fmt"

	"expanse/internal/cluster"
	"expanse/internal/entropy"
	"expanse/internal/ip6"
	"expanse/internal/wire"
	"expanse/internal/zesplot"
)

// clusteringReport runs the full §4 method — fingerprint, elbow, k-means,
// summaries — over the given groups and renders the Figure 2-style rows.
// The fingerprints cover nybbles a..a+dim-1; the elbow sweep fans out
// over workers (byte-identical for every count), and the winning k-means
// run is the sweep's own — the chosen k is never re-run.
func clusteringReport(r *Report, groups []entropy.Group, a, workers int) (cluster.Result, []entropy.Group) {
	vectors := entropy.Vectors(groups)
	if len(vectors) == 0 {
		r.addf("no groups above the size threshold")
		return cluster.Result{}, groups
	}
	kmax := 20
	if kmax > len(vectors) {
		kmax = len(vectors)
	}
	res, curve := cluster.ChooseK(vectors, kmax, 0x16c18, workers)
	sums := cluster.Summarize(vectors, res)

	r.addf("groups (networks with >= threshold addresses): %d", len(groups))
	line := "SSE(k):"
	for i, s := range curve {
		if i >= 10 {
			break
		}
		line += fmt.Sprintf(" k%d=%.2f", i+1, s)
	}
	r.Lines = append(r.Lines, line)
	r.addf("elbow k = %d", res.K)
	r.addf("median entropy columns = nybbles %d..%d", a, a+len(vectors[0])-1)
	for _, s := range sums {
		row := fmt.Sprintf("cluster %d: %5.1f%% of networks | median entropy per nybble:", s.ID, s.Share*100)
		for _, h := range s.MedianEntropy {
			row += fmt.Sprintf(" %.1f", h)
		}
		r.Lines = append(r.Lines, row)
	}
	return res, groups
}

// Fig2a reproduces entropy clustering of /32 prefixes over full-address
// fingerprints F9-32 (the paper finds 6 clusters). Grouping consumes the
// hitlist's cached sorted view: /32 groups are contiguous runs located by
// a boundary scan, never map-bucketed from a materialized slice.
func (l *Lab) Fig2a() *Report {
	l.ensureCollected()
	r := &Report{ID: "Fig 2a", Title: "Entropy clustering of /32s, full-address fingerprints F9-32"}
	groups := entropy.ByPrefixLen(l.P.Hitlist().SortedSeq(), 32, l.groupMin(), 9, 32, l.P.Cfg.Workers)
	clusteringReport(r, groups, 9, l.P.Cfg.Workers)
	return r
}

// Fig2b reproduces entropy clustering over IID fingerprints F17-32 (the
// paper finds 4 clusters).
func (l *Lab) Fig2b() *Report {
	l.ensureCollected()
	r := &Report{ID: "Fig 2b", Title: "Entropy clustering of /32s, IID fingerprints F17-32"}
	groups := entropy.ByPrefixLen(l.P.Hitlist().SortedSeq(), 32, l.groupMin(), 17, 32, l.P.Cfg.Workers)
	clusteringReport(r, groups, 17, l.P.Cfg.Workers)
	return r
}

// Fig3a clusters the /32s of UDP/53 responders — the population whose
// low-entropy fingerprints make probabilistic DNS scanning easy (§4.1).
// The responder list inherits the clean scan's target order, which is the
// curated hitlist's sorted order, so the run-boundary grouping applies.
func (l *Lab) Fig3a() *Report {
	l.ensureScanClean()
	r := &Report{ID: "Fig 3a", Title: "Entropy clustering of /32s with UDP/53 responders, F9-32"}
	dns := l.scanClean.Responsive(wire.UDP53)
	min := l.groupMin() / 2
	if min < 10 {
		min = 10
	}
	groups := entropy.ByPrefixLen(ip6.Addrs(dns), 32, min, 9, 32, l.P.Cfg.Workers)
	r.addf("UDP/53 responsive addresses: %d", len(dns))
	clusteringReport(r, groups, 9, l.P.Cfg.Workers)
	return r
}

// Fig3b colors BGP prefixes by their entropy cluster (unsized zesplot)
// and reports how homogeneous the coloring is per AS — the paper's
// observation that equally sized prefixes of one AS share a scheme.
func (l *Lab) Fig3b() *Report {
	l.ensureCollected()
	r := &Report{ID: "Fig 3b", Title: "BGP prefixes colored by F9-32 cluster (unsized zesplot)"}
	groups := entropy.ByBGPPrefix(l.P.Hitlist().SortedSeq(), l.P.World.Table, l.groupMin(), 9, 32, l.P.Cfg.Workers)
	res, groups := clusteringReport(r, groups, 9, l.P.Cfg.Workers)
	if res.K == 0 {
		return r
	}
	// Homogeneity: share of multi-prefix ASes whose prefixes all landed
	// in one cluster (single-prefix ASes are trivially uniform and would
	// pad the share, so they are excluded).
	perAS := map[uint32]map[int]bool{}
	prefixes := map[uint32]int{}
	for i, g := range groups {
		asn := uint32(g.ASN)
		if perAS[asn] == nil {
			perAS[asn] = map[int]bool{}
		}
		perAS[asn][res.Assign[i]] = true
		prefixes[asn]++
	}
	multi, uniform := 0, 0
	for asn, cs := range perAS {
		if prefixes[asn] >= 2 {
			multi++
			if len(cs) == 1 {
				uniform++
			}
		}
	}
	r.addf("multi-prefix ASes with clustered prefixes: %d; single-scheme: %d (%.0f%%)",
		multi, uniform, 100*float64(uniform)/float64(maxInt(multi, 1)))
	items := make([]zesplot.Item, len(groups))
	for i, g := range groups {
		items[i] = zesplot.Item{Prefix: g.Prefix, ASN: g.ASN, Value: float64(res.Assign[i] + 1)}
	}
	rects := zesplot.Layout(items, zesplot.Options{Sized: false})
	r.addf("unsized zesplot rectangles: %d", len(rects))
	return r
}
