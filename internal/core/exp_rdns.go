package core

import (
	"fmt"
	"math/rand"
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/rdns"
	"expanse/internal/stats"
	"expanse/internal/wire"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// rdnsState caches the §8 rDNS study.
type rdnsState struct {
	walked    []ip6.Addr
	queries   int
	newAddrs  int
	unrouted  int
	inAliased int
	scan      *Scan
}

// ensureRDNS walks the reverse tree, applies the §8 filtering (unrouted
// and aliased addresses removed), and probes the rest.
func (l *Lab) ensureRDNS() {
	l.rdnsOnce.Do(l.buildRDNS)
}

func (l *Lab) buildRDNS() {
	l.ensureAPD()
	st := &rdnsState{}
	l.rdnsStudy = st
	res := rdns.Walk(l.P.DNS.Reverse())
	st.walked = res.Addrs
	st.queries = res.Queries

	hitlist := l.P.Hitlist()
	var targets []ip6.Addr
	for _, a := range st.walked {
		if !hitlist.Contains(a) {
			st.newAddrs++
		}
		if !l.P.World.Table.IsRouted(a) {
			st.unrouted++
			continue
		}
		if l.filter().IsAliased(a) {
			st.inAliased++
			continue
		}
		targets = append(targets, a)
	}
	st.scan = l.P.Sweep(targets, l.measureDay())
}

// Sec8 reproduces the rDNS source evaluation: novelty, filtering, and
// response rates compared with the curated hitlist.
func (l *Lab) Sec8() *Report {
	l.ensureRDNS()
	l.ensureScanClean()
	st := l.rdnsStudy
	r := &Report{ID: "Sec 8", Title: "rDNS as a data source"}
	r.addf("rDNS addresses walked: %d (DNS queries issued: %d)", len(st.walked), st.queries)
	r.addf("new vs hitlist: %d (%.1f%%)", st.newAddrs, 100*float64(st.newAddrs)/float64(maxInt(len(st.walked), 1)))
	r.addf("filtered: %d unrouted, %d in aliased prefixes", st.unrouted, st.inAliased)

	rate := func(s *Scan, p wire.Proto) float64 {
		if len(s.Addrs) == 0 {
			return 0
		}
		return float64(s.Count(p)) / float64(len(s.Addrs))
	}
	r.addf("%-10s %8s %8s %8s", "population", "ICMP", "TCP/80", "TCP/443")
	r.addf("%-10s %7.1f%% %7.1f%% %7.1f%%", "rDNS",
		100*rate(st.scan, wire.ICMPv6), 100*rate(st.scan, wire.TCP80), 100*rate(st.scan, wire.TCP443))
	r.addf("%-10s %7.1f%% %7.1f%% %7.1f%%", "hitlist",
		100*rate(l.scanClean, wire.ICMPv6), 100*rate(l.scanClean, wire.TCP80), 100*rate(l.scanClean, wire.TCP443))

	// Client indicators: SLAAC ff:fe share and IID hamming weight.
	slaac := 0
	weights := stats.NewHistogram(0, 64)
	tcp80 := st.scan.Responsive(wire.TCP80)
	for _, a := range tcp80 {
		if a.IsSLAAC() {
			slaac++
		}
		weights.Observe(a.IIDHammingWeight())
	}
	if len(tcp80) > 0 {
		r.addf("TCP/80 responders: %.1f%% SLAAC; %.0f%% with IID hamming weight <= 6",
			100*float64(slaac)/float64(len(tcp80)), 100*weights.FractionAtMost(6))
	}
	return r
}

// Table8 reproduces the top-5 rDNS ASes in the input and among ICMP and
// TCP/80 responders.
func (l *Lab) Table8() *Report {
	l.ensureRDNS()
	st := l.rdnsStudy
	r := &Report{ID: "Table 8", Title: "Top 5 rDNS ASes: input, ICMP responders, TCP/80 responders"}
	top5 := func(addrs []ip6.Addr) []string {
		counts := map[bgp.ASN]int{}
		for _, a := range addrs {
			if asn, ok := l.P.World.Table.Origin(a); ok {
				counts[asn]++
			}
		}
		type kv struct {
			asn bgp.ASN
			c   int
		}
		var list []kv
		for a, c := range counts {
			list = append(list, kv{a, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].c != list[j].c {
				return list[i].c > list[j].c
			}
			return list[i].asn < list[j].asn
		})
		var out []string
		for i := 0; i < 5 && i < len(list); i++ {
			out = append(out, fmt.Sprintf("%s %.1f%%",
				l.P.World.Table.AS(list[i].asn).Name,
				100*float64(list[i].c)/float64(maxInt(len(addrs), 1))))
		}
		return out
	}
	in := top5(st.walked)
	icmp := top5(st.scan.Responsive(wire.ICMPv6))
	tcp := top5(st.scan.Responsive(wire.TCP80))
	r.addf("%-2s %-28s %-28s %-28s", "#", "Input", "ICMP", "TCP/80")
	for i := 0; i < 5; i++ {
		get := func(s []string) string {
			if i < len(s) {
				return s[i]
			}
			return "-"
		}
		r.addf("%-2d %-28s %-28s %-28s", i+1, get(in), get(icmp), get(tcp))
	}
	return r
}

// Fig10 reproduces the prefix/AS concentration of hitlist vs rDNS input.
func (l *Lab) Fig10() *Report {
	l.ensureRDNS()
	r := &Report{ID: "Fig 10", Title: "Prefix/AS distribution: hitlist vs rDNS input"}
	points := stats.LogPoints(1000)
	header := fmt.Sprintf("%-18s", "population")
	for _, x := range points {
		header += fmt.Sprintf(" %6d", x)
	}
	r.Lines = append(r.Lines, header)
	hitlist := l.P.Hitlist().SortedSeq()
	walked := ip6.Addrs(l.rdnsStudy.walked)
	for _, row := range []struct {
		name  string
		addrs ip6.AddrSeq
		byAS  bool
	}{
		{"Hitlist [Prefix]", hitlist, false},
		{"Hitlist [AS]", hitlist, true},
		{"rDNS [Prefix]", walked, false},
		{"rDNS [AS]", walked, true},
	} {
		conc := l.concentrationOf(row.addrs, row.byAS)
		line := fmt.Sprintf("%-18s", row.name)
		for _, f := range conc.Curve(points) {
			line += fmt.Sprintf(" %6.3f", f)
		}
		line += fmt.Sprintf("  (gini %.2f)", conc.Gini())
		r.Lines = append(r.Lines, line)
	}
	return r
}
