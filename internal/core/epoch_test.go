package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// epochDigest flattens everything observable about a published epoch into
// a string, so byte-comparing digests pins the orchestrator's output — not
// just "same verdict counts" but the same hitlist pin, the same split, the
// same sweep masks — against the serial loop.
func epochDigest(e *Epoch) string {
	var b strings.Builder
	fmt.Fprintf(&b, "index=%d day=%d hitlist=%d cands=%d", e.Index, e.Day, e.Hitlist.Len(), len(e.Candidates))
	aliased := 0
	for _, v := range e.Verdicts {
		if v {
			aliased++
		}
	}
	fmt.Fprintf(&b, " verdicts=%d aliased=%d prefixes=%d", len(e.Verdicts), aliased, len(e.Filter.AliasedPrefixes()))
	var probedBits, mergedBits int
	for _, m := range e.Probed {
		probedBits += m.Count()
	}
	for _, m := range e.Merged {
		mergedBits += m.Count()
	}
	fmt.Fprintf(&b, " probed=%d/%d merged=%d/%d window=%d", len(e.Probed), probedBits, len(e.Merged), mergedBits, len(e.Window))
	clean, al, bits := e.Split()
	fmt.Fprintf(&b, " clean=%d aliasedAddrs=%d bits=%d", len(clean), len(al), len(bits))
	if len(clean) > 0 {
		fmt.Fprintf(&b, " first=%v last=%v", clean[0], clean[len(clean)-1])
	}
	if e.Scan != nil {
		var maskBits int
		for _, m := range e.Scan.Masks {
			maskBits += m.Count()
		}
		fmt.Fprintf(&b, " scan=%d/%d", len(e.Scan.Masks), maskBits)
	}
	return b.String()
}

func runEpochs(t *testing.T, workers, overlap, days int) []string {
	t.Helper()
	cfg := TestConfig()
	cfg.Sim.Scale = 0.03
	cfg.Sim.Registry.ASes = 120
	cfg.Workers = workers
	cfg.Overlap = overlap
	cfg.EpochSweep = true
	p := New(cfg)
	p.Collect()
	eps := p.RunDays(p.World.Horizon(), days)
	out := make([]string, len(eps))
	for i, e := range eps {
		out[i] = epochDigest(e)
	}
	return out
}

// TestEpochPipelineGoldens pins the orchestrator's determinism contract:
// the published epochs — hitlist pin, verdicts, filter, split, sweep
// masks — are byte-identical to the fully serial day loop at every
// worker count and overlap depth.
func TestEpochPipelineGoldens(t *testing.T) {
	const days = 6
	ref := runEpochs(t, 1, 1, days) // serial loop, one worker
	for _, tc := range []struct{ workers, overlap int }{
		{1, 3}, {4, 2}, {8, 1}, {16, 3},
	} {
		got := runEpochs(t, tc.workers, tc.overlap, days)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d overlap=%d: %d epochs, want %d", tc.workers, tc.overlap, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d overlap=%d: epoch %d differs:\nserial: %s\ngot:    %s",
					tc.workers, tc.overlap, i, ref[i], got[i])
			}
		}
	}
}

// TestRunDaysFuncStreams pins the streaming contract: the callback
// observes every epoch exactly once, in day order, after the publish
// point has swapped (Latest is the callback's epoch), and the stream
// is byte-identical to the slice RunDays returns for the same
// configuration. The streaming leg also forces periodic collections
// (ForceGCDays) to pin that the knob is output-neutral.
func TestRunDaysFuncStreams(t *testing.T) {
	const days = 5
	build := func(forceGC int) *Pipeline {
		cfg := TestConfig()
		cfg.Sim.Scale = 0.03
		cfg.Sim.Registry.ASes = 120
		cfg.Overlap = 2
		cfg.ForceGCDays = forceGC
		p := New(cfg)
		p.Collect()
		return p
	}
	ref := build(0)
	want := ref.RunDays(ref.World.Horizon(), days)

	p := build(2)
	var got []string
	p.RunDaysFunc(p.World.Horizon(), days, func(e *Epoch) {
		if latest := p.Latest(); latest != e {
			t.Errorf("epoch %d: Latest() is not the callback's epoch at publish", e.Index)
		}
		if e.Index != len(got) {
			t.Errorf("callback order: got epoch %d at position %d", e.Index, len(got))
		}
		got = append(got, epochDigest(e))
	})
	if len(got) != len(want) {
		t.Fatalf("streamed %d epochs, want %d", len(got), len(want))
	}
	for i, w := range want {
		if d := epochDigest(w); got[i] != d {
			t.Errorf("epoch %d: streamed digest differs:\nslice:  %s\nstream: %s", i, d, got[i])
		}
	}
}

// TestEpochConcurrentReaders is the -race stress test of the publish
// point: reader goroutines hammer Pipeline.Latest — filter lookups,
// memoized clean/aliased splits, sweep-column reads — while the
// orchestrator publishes days underneath them. Every epoch a reader
// observes must be fully built and internally consistent, and the
// observed sequence must be monotone in day order.
func TestEpochConcurrentReaders(t *testing.T) {
	cfg := TestConfig()
	cfg.Sim.Scale = 0.03
	cfg.Sim.Registry.ASes = 120
	cfg.Workers = 4
	cfg.Overlap = 3
	cfg.EpochSweep = true
	p := New(cfg)
	p.Collect()

	const days = 6
	done := make(chan struct{})
	var lastIndex atomic.Int64
	lastIndex.Store(-1)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				e := p.Latest()
				if e == nil {
					continue
				}
				// Publish-order monotonicity across all readers.
				for {
					prev := lastIndex.Load()
					if int64(e.Index) <= prev || lastIndex.CompareAndSwap(prev, int64(e.Index)) {
						break
					}
				}
				// No half-built epoch: every field a consumer reads is set.
				if e.Filter == nil || e.Verdicts == nil || e.Hitlist.Len() == 0 {
					t.Error("observed half-built epoch")
					return
				}
				if len(e.Probed) != len(e.Candidates) || len(e.Window) == 0 {
					t.Errorf("epoch %d: %d masks for %d candidates, window %d",
						e.Index, len(e.Probed), len(e.Candidates), len(e.Window))
					return
				}
				clean, aliased, bits := e.Split()
				if len(clean)+len(aliased) != e.Hitlist.Len() || len(bits) != e.Hitlist.Len() {
					t.Errorf("epoch %d: split %d+%d over hitlist %d",
						e.Index, len(clean), len(aliased), e.Hitlist.Len())
					return
				}
				// The filter and the split must agree (spot-check both ends).
				if len(clean) > 0 && e.IsAliased(clean[0]) {
					t.Errorf("epoch %d: clean target classified aliased", e.Index)
					return
				}
				if len(aliased) > 0 && !e.IsAliased(aliased[0]) {
					t.Errorf("epoch %d: aliased target classified clean", e.Index)
					return
				}
				if e.Scan == nil || len(e.Scan.Masks) != len(e.Scan.Addrs) {
					t.Errorf("epoch %d: malformed epoch sweep", e.Index)
					return
				}
			}
		}()
	}

	eps := p.RunDays(p.World.Horizon(), days)
	close(done)
	wg.Wait()

	if got := p.Latest(); got == nil || got.Index != days-1 {
		t.Fatalf("latest epoch = %v, want index %d", got, days-1)
	}
	for i, e := range eps {
		if e.Index != i {
			t.Errorf("epoch %d has index %d", i, e.Index)
		}
	}
}

// TestCleanTargetsBeforeEpochPanics pins the loud-failure contract: the
// pipeline refuses a curated-target query before any APD epoch exists,
// with a descriptive panic instead of a nil dereference.
func TestCleanTargetsBeforeEpochPanics(t *testing.T) {
	p := New(TestConfig())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CleanTargets before any epoch did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "RunAPD or RunDays") {
			t.Fatalf("panic = %v, want descriptive message", r)
		}
	}()
	p.CleanTargets()
}

// TestAccessorsNilBeforeEpoch pins the documented nil returns of the
// epoch-backed accessors before the first publish.
func TestAccessorsNilBeforeEpoch(t *testing.T) {
	p := New(TestConfig())
	if p.Latest() != nil || p.Filter() != nil || p.Verdicts() != nil || p.Candidates() != nil {
		t.Error("epoch accessors non-nil before first publish")
	}
}
