package core

import (
	"fmt"

	"expanse/internal/ip6"
	"expanse/internal/stats"
	"expanse/internal/wire"
	"expanse/internal/zesplot"
)

// Fig6 reproduces the response zesplot: non-aliased ICMP-responsive
// addresses per announced BGP prefix.
func (l *Lab) Fig6() *Report {
	l.ensureScanClean()
	r := &Report{ID: "Fig 6", Title: "ICMP-responsive addresses per BGP prefix (curated hitlist)"}
	icmp := l.scanClean.Responsive(wire.ICMPv6)
	counts, covered := l.prefixCounts(ip6.Addrs(icmp))
	anns := l.P.World.Table.NumPrefixes()
	asSet := map[uint32]bool{}
	for _, a := range icmp {
		if asn, ok := l.P.World.Table.Origin(a); ok {
			asSet[uint32(asn)] = true
		}
	}
	r.addf("responsive addresses (ICMP): %d", len(icmp))
	r.addf("responsive (any protocol):   %d of %d targets", len(l.scanClean.AnyResponsive()), len(l.scanClean.Addrs))
	r.addf("BGP prefixes with responses: %d of %d announced", covered, anns)
	r.addf("ASes with responses:         %d", len(asSet))
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	r.addf("max responses in one prefix: %d", max)
	return r
}

// Fig6SVG returns the Figure 6 zesplot SVG.
func (l *Lab) Fig6SVG() string {
	l.ensureScanClean()
	counts, _ := l.prefixCounts(ip6.Addrs(l.scanClean.Responsive(wire.ICMPv6)))
	items := l.allPrefixItems(counts)
	return zesplot.SVG(items, zesplot.Options{Sized: false, Title: "Fig 6: ICMP responses per BGP prefix"})
}

// Fig7 reproduces the conditional cross-protocol responsiveness matrix
// P(Y responds | X responds).
func (l *Lab) Fig7() *Report {
	l.ensureScanClean()
	r := &Report{ID: "Fig 7", Title: "Conditional probability of cross-protocol responsiveness"}
	names := make([]string, 0, wire.NumProtos)
	for _, p := range wire.Protos {
		names = append(names, p.String())
	}
	m := stats.NewCondMatrix(names)
	for _, mask := range l.scanClean.Masks {
		if mask.Any() {
			// RespMask bit i is protocol i in Protos order — the matrix
			// consumes the mask directly, no []bool per observation.
			m.ObserveMask(uint32(mask))
		}
	}
	header := fmt.Sprintf("%-8s", "Y\\X")
	for _, n := range names {
		header += fmt.Sprintf(" %6s", n)
	}
	r.Lines = append(r.Lines, header)
	r.Lines = append(r.Lines, m.Rows()...)
	r.addf("P(ICMP|TCP/80) = %.2f (the paper: >= 0.89 for all X)", m.P("ICMP", "TCP/80"))
	r.addf("P(TCP/80|UDP/443) = %.2f (QUIC servers are web servers)", m.P("TCP/80", "UDP/443"))
	return r
}

// Fig8 reproduces the longitudinal responsiveness study: for each source
// (with CT and AXFR split by QUIC), the fraction of day-0 responders
// still responding on each of 14 days.
func (l *Lab) Fig8() *Report {
	l.ensureLongitudinal()
	r := &Report{ID: "Fig 8", Title: "Responsiveness over time by source (baseline day 0)"}
	order := []string{
		"DL", "FDNS", "CT\\QUIC", "CT QUIC", "AXFR\\QUIC", "AXFR QUIC",
		"Bitnodes", "RIPE Atlas", "Scamper",
	}
	for _, name := range order {
		series, ok := l.longitudinal[name]
		if !ok {
			continue
		}
		line := fmt.Sprintf("%-11s", name)
		for _, v := range series {
			line += fmt.Sprintf(" %4.2f", v)
		}
		r.Lines = append(r.Lines, line)
	}
	return r
}

// ensureLongitudinal probes each source's day-0 responders daily for 14
// days, as in §6.3: stable sources (DL, FDNS, Atlas) barely decay, while
// client/CPE sources (Bitnodes, Scamper) lose a fifth to a third.
func (l *Lab) ensureLongitudinal() {
	l.longOnce.Do(l.buildLongitudinal)
}

func (l *Lab) buildLongitudinal() {
	l.ensureScanClean()
	l.longitudinal = map[string][]float64{}
	day0 := l.measureDay()
	masks := l.scanClean.maskIndex()

	type row struct {
		label    string
		baseline []ip6.Addr
		proto    wire.Proto // the protocol tracked; -1 = any
		any      bool
	}
	var rows []row
	srcLabel := map[string]string{
		"Domainlists": "DL", "FDNS": "FDNS", "Bitnodes": "Bitnodes",
		"RIPE Atlas": "RIPE Atlas", "Scamper": "Scamper",
	}
	for _, src := range l.sourceNames() {
		set := l.P.Store.PerSource(src)
		var anyBase, quicBase []ip6.Addr
		set.Each(func(a ip6.Addr) bool {
			m, ok := masks[a]
			if !ok {
				return true
			}
			if m.Any() {
				anyBase = append(anyBase, a)
			}
			if m.Has(wire.UDP443) {
				quicBase = append(quicBase, a)
			}
			return true
		})
		switch src {
		case "CT", "AXFR":
			rows = append(rows,
				row{label: src + "\\QUIC", baseline: anyBase, any: true},
				row{label: src + " QUIC", baseline: quicBase, proto: wire.UDP443})
		default:
			rows = append(rows, row{label: srcLabel[src], baseline: anyBase, any: true})
		}
	}

	// Each row streams its 14 daily sweeps through one reused buffer set
	// (5 protocols × 14 days × 9 rows of independent scans before — the
	// masks are folded into a counter per day, never retained).
	const days = 14
	for _, rw := range rows {
		if len(rw.baseline) == 0 {
			continue
		}
		series := make([]float64, 0, days)
		l.P.SweepDays(rw.baseline, day0, days, func(_ int, masks []wire.RespMask) {
			n := 0
			for _, m := range masks {
				if (rw.any && m.Any()) || (!rw.any && m.Has(rw.proto)) {
					n++
				}
			}
			series = append(series, float64(n)/float64(len(rw.baseline)))
		})
		l.longitudinal[rw.label] = series
	}
}
