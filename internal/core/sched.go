package core

import "sync"

// This file is the day orchestrator: the serial collect → probe → merge
// → publish day loop refactored into a small dependency DAG with a
// defined publish point per day, so consecutive days overlap without
// giving up byte-identical determinism.
//
// Per day d the DAG has two nodes:
//
//	probe(d)   ProbeDay: narrowing, fan-out probing, history append,
//	           running-mask update. Probe nodes form a serial chain —
//	           the detector reuses scan columns across days and the
//	           narrowing for day d+1 reads the running masks after day
//	           d's fold — which is also what keeps the probe sequence
//	           identical to the serial loop's.
//	seal(d)    Seal + publish: window merge over the draft's pinned
//	           column snapshots, verdict map, filter compilation, the
//	           optional epoch sweep, then the atomic publish. Seal reads
//	           only immutable draft state, so it runs concurrently with
//	           probe(d+1), probe(d+2), … and with other seals.
//
// Edges: probe(d) → seal(d) (the draft); seal(d-1) → seal(d)'s publish
// step (epochs publish in day order, so readers of Pipeline.Latest see
// a monotone sequence); seal(d-depth) → probe(d) (the overlap-depth
// backpressure: at most `depth` days are in flight, depth 1 degenerates
// to the fully serial loop).
//
// Determinism: every value a seal consumes is a pure function of its
// draft, and drafts come off the serial probe chain in the same order
// with the same contents as the serial loop produces — so the published
// epochs, and every report derived from them, are byte-identical at any
// worker count and overlap depth (pinned by TestEpochPipelineGoldens
// and the -race stress test).

// RunDays runs n consecutive APD days starting at absolute day `start`
// through the publish-point pipeline and returns the published epochs
// in day order. Cfg.Overlap bounds how many days are in flight (1 =
// serial); Cfg.EpochSweep adds each day's curated-target sweep to its
// epoch. Epochs are published to Pipeline.Latest in day order as they
// complete, so concurrent readers can consume epoch K while day K+1 is
// still probing.
//
// The returned slice pins every epoch of the run. At large scale each
// epoch retains its own verdict map, compiled filter and candidate
// columns (~hundreds of MB per day at scale 16), so a long run's slice
// can dwarf the pipeline's own working set — callers that only need
// the stream, or the final day, should use RunDaysFunc and let dead
// epochs be collected.
func (p *Pipeline) RunDays(start, n int) []*Epoch {
	if n <= 0 {
		return nil
	}
	epochs := make([]*Epoch, 0, n)
	p.RunDaysFunc(start, n, func(e *Epoch) { epochs = append(epochs, e) })
	return epochs
}

// RunDaysFunc is RunDays streaming: fn observes each epoch at its
// publish point — in day order, serially, after Pipeline.Latest has
// swapped — and the orchestrator keeps no reference of its own
// afterwards, so an epoch the callback drops becomes garbage as soon
// as the sliding window moves past its pinned columns. fn runs on the
// sealing goroutine ahead of the publish of day d+1 and the probe of
// day d+depth: a slow callback backpressures the pipeline rather than
// racing it.
func (p *Pipeline) RunDaysFunc(start, n int, fn func(*Epoch)) {
	if n <= 0 {
		return
	}
	depth := p.Cfg.Overlap
	if depth < 1 {
		depth = 1
	}
	published := make([]chan struct{}, n)
	for i := range published {
		published[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for d := 0; d < n; d++ {
		if d >= depth {
			<-published[d-depth]
		}
		draft := p.builder.ProbeDay(start + d)
		if p.Cfg.SnapshotDir != "" {
			// Checkpoint on the probe chain: the draft is complete and the
			// cumulative probe counter is exactly this day's (seals of
			// earlier days never touch it).
			p.saveCheckpoint(draft)
		}
		p.maybeForceGC()
		wg.Add(1)
		go func(d int, draft *EpochDraft) {
			defer wg.Done()
			ep := p.builder.Seal(draft)
			if d > 0 {
				<-published[d-1]
			}
			p.publish(ep)
			fn(ep)
			close(published[d])
		}(d, draft)
	}
	wg.Wait()
}
