package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"expanse/internal/apd"
	"expanse/internal/ip6"
	"expanse/internal/snap"
)

// This file is the persistence plane of the day pipeline: per-epoch
// checkpoints in the internal/snap format, and Resume, which restarts a
// multi-day run from any checkpointed epoch with byte-identical output.
//
// A snapshot directory holds three kinds of files:
//
//	hitlist.snap    the post-collection hitlist as one sorted address
//	                column — written once per run (the hitlist is
//	                static during the day loop).
//	table.snap      the frozen candidate universe in entry order —
//	                written once, after the first probed day derives it.
//	epoch_NNNN.snap one per APD day index: the day's history column
//	                (canonical Export form), the raw per-entry probe
//	                masks, and the cumulative probe budget.
//
// That is deliberately the *minimal* mutable state. Everything else a
// resumed pipeline needs is recomputed rather than stored, because it
// is a pure function of what is stored: the narrowed candidate subset
// and the running near-aliased masks replay from the column history
// (narrowing at day d reads the OR of columns 0..d-1), and the sealed
// epoch's merge/verdicts/filter/split/sweep replay through the normal
// Seal path. Storing only pure-function inputs is also what makes the
// byte-identity guarantee cheap to state: a resumed run feeds Seal and
// ProbeDay the same inputs the uninterrupted run fed them.
//
// Every file carries a config pin (simulation seed/scale/epochs plus
// the APD parameters). Resume refuses a directory whose pin differs
// from its Config — EXCEPT Workers and Overlap, which are throughput
// knobs with byte-identical results and may differ freely between the
// saving and the resuming run.

// EpochPath returns the snapshot file path of APD day index i.
func EpochPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("epoch_%04d.snap", i))
}

func hitlistPath(dir string) string { return filepath.Join(dir, "hitlist.snap") }
func tablePath(dir string) string   { return filepath.Join(dir, "table.snap") }

// SnapshotErr reports the first checkpoint-write error of the day loop.
// Saving is best-effort from the pipeline's point of view: a failed
// write latches the error and disables further saves, but never fails
// the run itself.
func (p *Pipeline) SnapshotErr() error { return p.snapErr }

// SnapStats tallies the day loop's checkpoint writes: file and byte
// counts, and the wall-clock seconds the probe chain spent encoding and
// writing them (the persistence overhead a run pays for resumability).
type SnapStats struct {
	Files   int
	Bytes   int64
	Seconds float64
}

// SnapshotStats returns the accumulated checkpoint-write statistics.
// Valid after RunDays/RunAPD return; not synchronized with a running
// day loop.
func (p *Pipeline) SnapshotStats() SnapStats { return p.snapStats }

// pin writes the config fingerprint shared by every snapshot file.
func (p *Pipeline) pin(w *snap.Writer) {
	w.U64(uint64(p.Cfg.Sim.Seed))
	w.F64(p.Cfg.Sim.Scale)
	w.Int(p.Cfg.Sim.Epochs)
	w.Int(p.Cfg.Sim.EpochDays)
	w.Int(p.Cfg.APDWindow)
	w.Int(p.Cfg.MinTargets)
}

// checkPin validates a file's config fingerprint against cfg.
func checkPin(r *snap.Reader, cfg Config) error {
	seed := r.U64()
	scale := r.F64()
	epochs := r.Int()
	epochDays := r.Int()
	window := r.Int()
	minTargets := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if seed != uint64(cfg.Sim.Seed) || scale != cfg.Sim.Scale ||
		epochs != cfg.Sim.Epochs || epochDays != cfg.Sim.EpochDays ||
		window != cfg.APDWindow || minTargets != cfg.MinTargets {
		return fmt.Errorf("core: snapshot config pin (seed=%#x scale=%g epochs=%d epochDays=%d window=%d minTargets=%d) does not match the resuming config",
			seed, scale, epochs, epochDays, window, minTargets)
	}
	return nil
}

// countWriter counts bytes on their way to the underlying writer.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writeSnapFile writes a snapshot atomically — temp file in the same
// directory, then rename, so a crash mid-write never leaves a
// plausible-looking truncated snapshot behind — and returns the bytes
// written.
func writeSnapFile(path string, fill func(w *snap.Writer)) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	cw := &countWriter{w: f}
	w := snap.NewWriter(cw)
	fill(w)
	err = w.Close()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, nil
}

// nextSection advances r to the section with the wanted tag, skipping
// unknown sections (the format's forward-compatibility rule).
func nextSection(r *snap.Reader, want string) error {
	for {
		tag, err := r.Next()
		if err != nil {
			return fmt.Errorf("core: reading snapshot section %q: %w", want, err)
		}
		if tag == want {
			return nil
		}
	}
}

func masksToU16(ms []apd.BranchMask) []uint16 {
	out := make([]uint16, len(ms))
	for i, m := range ms {
		out[i] = uint16(m)
	}
	return out
}

func u16ToMasks(vs []uint16) []apd.BranchMask {
	out := make([]apd.BranchMask, len(vs))
	for i, v := range vs {
		out[i] = apd.BranchMask(v)
	}
	return out
}

// saveCheckpoint persists one probed day. It runs on the serial probe
// chain — immediately after ProbeDay, before the seal goroutine is
// spawned — so the detector's cumulative probe counter is sampled at
// exactly the point the checkpoint represents. On the first saved day
// it also writes the run-static files (hitlist, candidate table) if
// they are not already present.
func (p *Pipeline) saveCheckpoint(d *EpochDraft) {
	if p.snapErr != nil {
		return
	}
	t0 := time.Now() //lint:allow detrand snapshot-save timing is observability for bench JSON; it never reaches pipeline state or output
	p.snapErr = p.trySave(d)
	p.snapStats.Seconds += time.Since(t0).Seconds()
}

func (p *Pipeline) trySave(d *EpochDraft) error {
	dir := p.Cfg.SnapshotDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(hitlistPath(dir)); os.IsNotExist(err) {
		n, err := writeSnapFile(hitlistPath(dir), func(w *snap.Writer) {
			w.Section("PIN ")
			p.pin(w)
			w.Section("HITL")
			w.AddrCols(p.Store.All().Sorted())
		})
		if err != nil {
			return err
		}
		p.snapStats.Files++
		p.snapStats.Bytes += n
	}
	if _, err := os.Stat(tablePath(dir)); os.IsNotExist(err) {
		entries := p.builder.table.Candidates()
		prefixes := make([]ip6.Prefix, len(entries))
		targets := make([]int32, len(entries))
		for i, c := range entries {
			prefixes[i] = c.Prefix
			targets[i] = int32(c.Targets)
		}
		n, err := writeSnapFile(tablePath(dir), func(w *snap.Writer) {
			w.Section("PIN ")
			p.pin(w)
			w.Section("CAND")
			w.PrefixCols(prefixes)
			w.I32s(targets)
		})
		if err != nil {
			return err
		}
		p.snapStats.Files++
		p.snapStats.Bytes += n
	}
	probesSent := p.detector.ProbesSent
	width, ids, masks := d.column.Export()
	n, err := writeSnapFile(EpochPath(dir, d.index), func(w *snap.Writer) {
		w.Section("PIN ")
		p.pin(w)
		w.Section("META")
		w.Int(d.index)
		w.Int(d.day)
		w.Int(probesSent)
		w.Section("HCOL")
		w.Int(width)
		w.I32s(ids)
		w.U16s(masksToU16(masks))
		w.Section("PROB")
		w.U16s(masksToU16(d.flat))
	})
	if err != nil {
		return err
	}
	p.snapStats.Files++
	p.snapStats.Bytes += n
	return nil
}

// openSnap opens a snapshot file and validates its config pin.
func openSnap(path string, cfg Config) (*snap.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := snap.NewReader(f)
	if err == nil {
		err = nextSection(r, "PIN ")
	}
	if err == nil {
		err = checkPin(r, cfg)
	}
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, f, nil
}

// Resume rebuilds a pipeline from a snapshot directory as of APD day
// index `epoch`: the post-collection hitlist, the candidate universe,
// and the full column history through that day are loaded; the
// narrowing and running-mask state replay from the columns; and the
// epoch itself is re-sealed and published. The returned pipeline
// continues with RunDays(ep.Day+1, …) exactly as the uninterrupted run
// would have — published epochs are byte-identical (Epoch.Digest) for
// any Workers and Overlap, which deliberately need not match the
// saving run's.
//
// Source-attribution state (per-source sets, new-address counts, runup
// points) is not checkpointed: resume restores the day pipeline, not
// the collection-phase reports.
func Resume(cfg Config, dir string, epoch int) (*Pipeline, *Epoch, error) {
	if epoch < 0 {
		return nil, nil, fmt.Errorf("core: Resume epoch %d out of range", epoch)
	}
	p := New(cfg)
	cfg = p.Cfg // defaults applied

	// Hitlist: one sorted column dump back into the sharded store.
	r, f, err := openSnap(hitlistPath(dir), cfg)
	if err != nil {
		return nil, nil, err
	}
	err = nextSection(r, "HITL")
	addrs := r.AddrCols()
	if err == nil {
		err = r.Err()
	}
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", hitlistPath(dir), err)
	}
	p.Store.All().AddSlice(addrs)
	p.Store.Compact()

	// Candidate universe: entries in original order rebuild the same
	// table (IDs are assigned by first occurrence).
	r, f, err = openSnap(tablePath(dir), cfg)
	if err != nil {
		return nil, nil, err
	}
	err = nextSection(r, "CAND")
	prefixes := r.PrefixCols()
	targets := r.I32s()
	if err == nil {
		err = r.Err()
	}
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", tablePath(dir), err)
	}
	if len(prefixes) != len(targets) {
		return nil, nil, fmt.Errorf("%s: %d prefixes vs %d target counts", tablePath(dir), len(prefixes), len(targets))
	}
	entries := make([]apd.Candidate, len(prefixes))
	for i := range entries {
		entries[i] = apd.Candidate{Prefix: prefixes[i], Targets: int(targets[i])}
	}
	table := apd.NewCandidateTable(entries)

	// Column history through the resume day, plus the resume day's raw
	// probe masks and cumulative probe budget.
	cols := make([]apd.DayColumn, epoch+1)
	var day, probesSent int
	var flat []apd.BranchMask
	for i := 0; i <= epoch; i++ {
		path := EpochPath(dir, i)
		r, f, err := openSnap(path, cfg)
		if err != nil {
			return nil, nil, err
		}
		err = nextSection(r, "META")
		index := r.Int()
		d := r.Int()
		sent := r.Int()
		if err == nil {
			err = nextSection(r, "HCOL")
		}
		width := r.Int()
		ids := r.I32s()
		masks := r.U16s()
		if err == nil && i == epoch {
			err = nextSection(r, "PROB")
			flat = u16ToMasks(r.U16s())
		}
		if err == nil {
			err = r.Err()
		}
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if index != i {
			return nil, nil, fmt.Errorf("%s: holds epoch %d", path, index)
		}
		if width != table.NumIDs() {
			return nil, nil, fmt.Errorf("%s: column width %d vs table ID space %d", path, width, table.NumIDs())
		}
		cols[i] = apd.ImportDayColumn(width, ids, u16ToMasks(masks))
		if i == epoch {
			day, probesSent = d, sent
		}
	}

	b := p.builder
	b.table = table
	b.hist.Restore(table, cols)

	// Replay the narrowing and the running near-aliased masks from the
	// column history: day 0 probes every entry; day d keeps entries
	// whose OR over columns 0..d-1 is near aliased, exactly as
	// ProbeDay's serial chain decided them the first time.
	cands := table.Candidates()
	candIDs := make([]int32, len(cands))
	for i := range cands {
		candIDs[i] = table.EntryID(i)
	}
	near := make([]apd.BranchMask, table.NumIDs())
	for d := 0; d <= epoch; d++ {
		if d > 0 {
			narrow := cands[:0:0]
			narrowIDs := candIDs[:0:0]
			for i, c := range cands {
				if near[candIDs[i]].Count() >= 12 {
					narrow = append(narrow, c)
					narrowIDs = append(narrowIDs, candIDs[i])
				}
			}
			cands, candIDs = narrow, narrowIDs
		}
		b.hist.ORDayInto(d, near, cfg.Workers)
	}
	if len(flat) != len(cands) {
		return nil, nil, fmt.Errorf("core: epoch %d probe column has %d masks for %d candidates — snapshot and replay disagree", epoch, len(flat), len(cands))
	}
	b.cands, b.candIDs, b.nearMask = cands, candIDs, near
	p.detector.ProbesSent = probesSent

	// Re-seal and publish the resume epoch through the normal path; the
	// draft fields are byte-equal to the original run's, so the epoch is
	// too (including the optional sweep, which is deterministic).
	ep := b.Seal(&EpochDraft{
		index:   epoch,
		day:     day,
		cands:   cands,
		candIDs: candIDs,
		flat:    flat,
		column:  b.hist.Column(epoch),
		window:  b.hist.WindowColumns(epoch, cfg.APDWindow),
		nIDs:    table.NumIDs(),
	})
	p.publish(ep)
	return p, ep, nil
}

// Digest returns a hex SHA-256 over the epoch's canonical binary form —
// every published field in a fixed little-endian section layout (the
// snap format over a hash instead of a file). Two epochs with equal
// digests agree on the pinned hitlist, filter intervals, verdicts,
// probed candidates and masks, history column and window, merged masks,
// and the optional sweep. The byte-identity acceptance tests pin resumed
// and overlapped runs with exactly this digest.
func (e *Epoch) Digest() string {
	h := sha256.New()
	w := snap.NewWriter(h)
	w.Section("META")
	w.Int(e.Index)
	w.Int(e.Day)
	w.Section("HITL")
	w.AddrCols(e.Hitlist.Sorted())
	w.Section("FILT")
	ivs := e.Filter.Intervals()
	w.Int(len(ivs))
	for _, iv := range ivs {
		w.U64(iv.Lo.Hi())
		w.U64(iv.Lo.Lo())
		w.U64(iv.Hi.Hi())
		w.U64(iv.Hi.Lo())
		w.Bool(iv.Val)
	}
	w.Section("VERD")
	ps := make([]ip6.Prefix, 0, len(e.Verdicts))
	for pfx := range e.Verdicts {
		ps = append(ps, pfx)
	}
	sort.Slice(ps, func(i, j int) bool {
		if c := ps[i].Addr().Compare(ps[j].Addr()); c != 0 {
			return c < 0
		}
		return ps[i].Bits() < ps[j].Bits()
	})
	verdictBits := make([]bool, len(ps))
	prefixes := make([]ip6.Prefix, len(e.Candidates))
	candTargets := make([]int32, len(e.Candidates))
	for i, c := range e.Candidates {
		prefixes[i] = c.Prefix
		candTargets[i] = int32(c.Targets)
	}
	for i, pfx := range ps {
		verdictBits[i] = e.Verdicts[pfx]
	}
	w.PrefixCols(ps)
	w.Bits(verdictBits)
	w.Section("CAND")
	w.PrefixCols(prefixes)
	w.I32s(candTargets)
	w.Section("PROB")
	w.U16s(masksToU16(e.Probed))
	w.Section("HCOL")
	writeColumn(w, e.Column)
	w.Section("WIND")
	w.Int(len(e.Window))
	for _, c := range e.Window {
		writeColumn(w, c)
	}
	w.Section("MERG")
	w.U16s(masksToU16(e.Merged))
	if e.Scan != nil {
		w.Section("SCAN")
		w.Int(e.Scan.Day)
		w.AddrCols(e.Scan.Addrs)
		raw := make([]byte, len(e.Scan.Masks))
		for i, m := range e.Scan.Masks {
			raw[i] = uint8(m)
		}
		w.Bytes(raw)
	}
	if err := w.Close(); err != nil {
		// The only writer is a hash; an error here is a programming bug.
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeColumn(w *snap.Writer, c apd.DayColumn) {
	width, ids, masks := c.Export()
	w.Int(width)
	w.I32s(ids)
	w.U16s(masksToU16(masks))
}
