// Package core is the public face of the library: the daily IPv6 hitlist
// pipeline of §6 (collect → preprocess → aliased-prefix detection →
// traceroute → probe → curate) and the Lab, which reproduces every table
// and figure of the paper on top of the pipeline.
//
// The pipeline mirrors the paper's architecture:
//
//  1. collect addresses from the seven sources (internal/sources),
//  2. preprocess, merge and deduplicate them (the accumulating store),
//  3. detect aliased prefixes with multi-level APD and a 3-day sliding
//     window (internal/apd),
//  4. traceroute all known addresses (the scamper source),
//  5. probe responsiveness with the ZMapv6-style scanner on ICMPv6,
//     TCP/80, TCP/443, UDP/53 and UDP/443 (internal/probe).
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"expanse/internal/apd"
	"expanse/internal/dnssim"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/probe"
	"expanse/internal/prof"
	"expanse/internal/sources"
	"expanse/internal/wire"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Sim configures the simulated Internet (the measurement target).
	Sim netsim.Config
	// APDWindow is the sliding-window length in days — the TOTAL number
	// of days merged per §5.2 evaluation, so the paper's 3-day window
	// merges exactly 3 days (default 3).
	APDWindow int
	// MinTargets is the APD candidate threshold (§5.1; default 100).
	MinTargets int
	// Workers is the per-protocol worker-shard count of the scan engine,
	// used by both the responsiveness scanner and the APD detector
	// (default 8). Scan results are identical for every value — see the
	// concurrency model in DESIGN.md — so this is purely a throughput
	// knob.
	Workers int
	// Overlap is the day orchestrator's pipeline depth: how many APD
	// days may be in flight at once in RunDays (default 2; 1 degenerates
	// to the fully serial day loop). Published epochs are byte-identical
	// for every value — like Workers, purely a throughput knob.
	Overlap int
	// EpochSweep, when set, gives every published epoch its own
	// five-protocol responsiveness sweep over the epoch's curated
	// targets (Epoch.Scan) — the daily service's published measurement,
	// and the heavy per-day stage the orchestrator overlaps with the
	// next day's probing. Off by default: the Lab's experiments schedule
	// their own sweeps.
	EpochSweep bool
	// SnapshotDir, when non-empty, makes the day loop checkpoint every
	// probed day into that directory in the internal/snap format; Resume
	// restarts a run from any checkpointed epoch byte-identically (see
	// checkpoint.go). Empty by default: no persistence.
	SnapshotDir string
	// ForceGCDays, when > 0, forces a full garbage collection on the
	// probe chain every N probed days. Long runs on large worlds ratchet
	// the heap goal otherwise: with multi-second concurrent mark phases,
	// each day's transient scan garbage is allocated black, inflating the
	// marked-live estimate — and with it the next goal — day after day
	// until peak RSS far exceeds true live (and any GOMEMLIMIT). A forced
	// collection from the quiet point between days re-measures live
	// honestly and resets the ratchet. Purely a memory/throughput knob;
	// published epochs are byte-identical with or without it. 0 (the
	// default) never forces a collection.
	ForceGCDays int
}

// DefaultConfig returns the paper-faithful configuration at default
// simulation scale.
func DefaultConfig() Config {
	return Config{Sim: netsim.DefaultConfig(), APDWindow: 3, MinTargets: 100, Workers: 8, Overlap: 2}
}

// TestConfig returns a small fast configuration for tests and examples.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Sim.Scale = 0.08
	cfg.Sim.Registry.ASes = 250
	return cfg
}

// Pipeline is the assembled system. All mutable day-loop state lives in
// the EpochBuilder; readers consume immutable Epoch snapshots through
// Latest (an RCU-style atomic pointer swapped at each day's publish
// point), so concurrent queries cost a pointer load, never a lock.
type Pipeline struct {
	Cfg   Config
	World *netsim.Internet
	DNS   *dnssim.Server
	Store *sources.Store

	scanner  *probe.Scanner
	detector *apd.Detector
	builder  *EpochBuilder
	latest   atomic.Pointer[Epoch]
	// snapErr latches the first checkpoint-write error; snapStats tallies
	// checkpoint writes (both probe-chain goroutine only; read via
	// SnapshotErr / SnapshotStats).
	snapErr   error
	snapStats SnapStats
}

// New builds the world, the DNS view, and the collectors.
func New(cfg Config) *Pipeline {
	if cfg.APDWindow <= 0 {
		cfg.APDWindow = 3
	}
	if cfg.MinTargets <= 0 {
		cfg.MinTargets = 100
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Overlap <= 0 {
		cfg.Overlap = 1
	}
	world := netsim.New(cfg.Sim)
	dns := dnssim.New(world)
	st := sources.NewStoreWorkers(cfg.Workers,
		sources.NewDL(dns, cfg.Sim),
		sources.NewFDNS(dns, cfg.Sim),
		sources.NewCT(dns, cfg.Sim),
		sources.NewAXFR(dns, cfg.Sim),
		sources.NewBitnodes(world),
		sources.NewAtlas(world),
		sources.NewScamper(world),
	)
	p := &Pipeline{
		Cfg:      cfg,
		World:    world,
		DNS:      dns,
		Store:    st,
		scanner:  probe.New(world, probe.WithWorkers(cfg.Workers), probe.WithSeed(uint64(cfg.Sim.Seed))),
		detector: apd.NewDetectorWorkers(world, cfg.Workers),
	}
	p.builder = &EpochBuilder{
		cfg:      p.Cfg,
		world:    world,
		store:    st,
		detector: p.detector,
		scanner:  p.scanner,
	}
	return p
}

// Collect runs every collection epoch, building the full hitlist (§3),
// then compacts the store: the probing phases read sorted views and
// shard columns, so the per-shard membership maps — the dominant
// per-address cost of the data plane — are dropped until the next
// mutation (see ip6.ShardSet.Compact).
func (p *Pipeline) Collect() {
	for e := 0; e < p.Cfg.Sim.Epochs; e++ {
		p.Store.CollectDay(e * p.Cfg.Sim.EpochDays)
	}
	p.Store.Compact()
}

// Hitlist returns the accumulated hitlist — the sharded columnar address
// store every pipeline stage reads from. Its Sorted view is cached and
// shared: treat it as read-only.
func (p *Pipeline) Hitlist() *ip6.ShardSet { return p.Store.All() }

// RunAPD performs one day's aliased prefix detection serially — probe
// chain and seal back to back — and publishes the resulting epoch. On
// the first call the builder derives the candidate set (hitlist
// multi-level mapping plus all BGP-announced prefixes); later calls
// re-probe only prefixes that were close to aliased before — full
// re-derivation daily would be probe-for-probe identical in the
// simulator but pointlessly slow (see DESIGN.md). For multi-day runs,
// RunDays (sched.go) pipelines the same two halves across days.
func (p *Pipeline) RunAPD(day int) *Epoch {
	draft := p.builder.ProbeDay(day)
	if p.Cfg.SnapshotDir != "" {
		p.saveCheckpoint(draft)
	}
	p.maybeForceGC()
	ep := p.builder.Seal(draft)
	p.publish(ep)
	return ep
}

// maybeForceGC runs the Config.ForceGCDays collection when the probe
// chain has just finished a multiple-of-N day. Called from the probe
// chain only (RunAPD and the orchestrator), where the builder's day
// count is stable.
func (p *Pipeline) maybeForceGC() {
	if n := p.Cfg.ForceGCDays; n > 0 && p.builder.Days()%n == 0 {
		runtime.GC()
		// Post-collection quiet point: the ideal moment for a mid-run
		// heap snapshot (no-op unless EXPANSE_HEAPPROF_DIR is set).
		prof.HeapSnapshotEnv(fmt.Sprintf("day%03d", p.builder.Days()))
	}
}

// publish is the epoch publish point: one atomic pointer swap. Readers
// holding the previous epoch keep a fully-consistent view; new readers
// see the new day. Epochs must be published in day order (RunAPD and
// the orchestrator both guarantee this).
func (p *Pipeline) publish(e *Epoch) { p.latest.Store(e) }

// Latest returns the most recently published epoch, RCU-style: a single
// atomic load, safe from any goroutine, nil before the first APD day.
// The returned epoch is immutable — hold it as long as needed.
func (p *Pipeline) Latest() *Epoch { return p.latest.Load() }

// Filter returns the latest published epoch's alias filter. It returns
// nil before the first APD epoch is published — callers that cannot
// tolerate that should go through Latest and check for nil once.
func (p *Pipeline) Filter() *apd.Filter {
	if e := p.Latest(); e != nil {
		return e.Filter
	}
	return nil
}

// Verdicts returns the latest published epoch's per-prefix aliased
// verdicts (nil before the first epoch). Read-only.
func (p *Pipeline) Verdicts() map[ip6.Prefix]bool {
	if e := p.Latest(); e != nil {
		return e.Verdicts
	}
	return nil
}

// Candidates returns the candidate subset probed on the latest
// published epoch's day (nil before the first epoch). Read-only.
func (p *Pipeline) Candidates() []apd.Candidate {
	if e := p.Latest(); e != nil {
		return e.Candidates
	}
	return nil
}

// Builder exposes the epoch builder that owns the day loop's mutable
// state. Probing methods must only be driven from one goroutine at a
// time; casual consumers want Latest instead.
func (p *Pipeline) Builder() *EpochBuilder { return p.builder }

// History exposes the live APD observation history. It must not be read
// concurrently with RunAPD/RunDays; published epochs carry immutable
// per-day column snapshots for concurrent consumption.
func (p *Pipeline) History() *apd.History { return &p.builder.hist }

// APDProbesSent reports probe packets spent on APD so far.
func (p *Pipeline) APDProbesSent() int { return p.detector.ProbesSent }

// Scan is one day's responsiveness measurement over the given targets: a
// view over the target list and the mask column the sweep wrote. Addrs
// and Masks are shared, read-only columns; the accessors below memoize
// their counts, so repeated consumers (Fig 6 alone queries a ~10^5-address
// scan several times) pay one counting pass total and every extraction
// allocates its exact output size.
type Scan struct {
	Day   int
	Addrs []ip6.Addr
	Masks []wire.RespMask

	countOnce sync.Once
	counts    [wire.NumProtos]int
	anyCount  int
}

// ensureCounts tallies per-protocol and any-protocol responder counts in
// one pass over the mask column.
func (s *Scan) ensureCounts() {
	s.countOnce.Do(func() {
		for _, m := range s.Masks {
			if !m.Any() {
				continue
			}
			s.anyCount++
			for rest := uint8(m); rest != 0; rest &= rest - 1 {
				s.counts[bits.TrailingZeros8(rest)]++
			}
		}
	})
}

// Responsive returns the addresses that answered on the given protocol.
func (s *Scan) Responsive(p wire.Proto) []ip6.Addr {
	s.ensureCounts()
	out := make([]ip6.Addr, 0, s.counts[p])
	for i, m := range s.Masks {
		if m.Has(p) {
			out = append(out, s.Addrs[i])
		}
	}
	return out
}

// AnyResponsive returns addresses that answered at least one protocol.
func (s *Scan) AnyResponsive() []ip6.Addr {
	s.ensureCounts()
	out := make([]ip6.Addr, 0, s.anyCount)
	for i, m := range s.Masks {
		if m.Any() {
			out = append(out, s.Addrs[i])
		}
	}
	return out
}

// Count returns how many targets answered on the protocol.
func (s *Scan) Count(p wire.Proto) int {
	s.ensureCounts()
	return s.counts[p]
}

// Sweep probes the targets on all five protocols for one day (§6).
func (p *Pipeline) Sweep(targets []ip6.Addr, day int) *Scan {
	return &Scan{Day: day, Addrs: targets, Masks: p.scanner.Sweep(targets, day)}
}

// SweepSet probes every address of the set in sorted order on all five
// protocols. The scan indexes the set's cached sorted view directly —
// the hitlist is sorted at most once per mutation epoch and never copied
// per sweep. The returned Scan shares that view in Addrs: read-only.
func (p *Pipeline) SweepSet(set *ip6.ShardSet, day int) *Scan {
	sorted := set.Sorted()
	return &Scan{Day: day, Addrs: sorted, Masks: p.scanner.SweepSeq(ip6.Addrs(sorted), day)}
}

// ScanOne probes the targets on a single protocol.
func (p *Pipeline) ScanOne(targets []ip6.Addr, proto wire.Proto, day int) []probe.Result {
	return p.scanner.Scan(targets, proto, day)
}

// ProbePairs sends the §5.4 fingerprinting probe pairs (the per-probe
// reference path, routed through the AddrSeq entry point).
func (p *Pipeline) ProbePairs(targets []ip6.Addr, day int) []probe.Pair {
	return p.scanner.ProbePairsSeq(ip6.Addrs(targets), wire.TCP80, day)
}

// ProbePairsSeq is ProbePairs over an indexed target view — no
// flatten-copy when fed from the ShardSet's cached sorted view.
func (p *Pipeline) ProbePairsSeq(targets ip6.AddrSeq, day int) []probe.Pair {
	return p.scanner.ProbePairsSeq(targets, wire.TCP80, day)
}

// ProbePairColumns sends the §5.4 pairs on the batched columnar path,
// with SYN-ACK fingerprints interned in the pipeline's table (TCPTable).
func (p *Pipeline) ProbePairColumns(targets []ip6.Addr, day int, out *probe.PairColumns) {
	p.scanner.ProbePairColumns(ip6.Addrs(targets), wire.TCP80, day, out)
}

// TCPTable returns the scanner's interned fingerprint table — the
// resolver for TCPRef columns produced by the pipeline's scans.
func (p *Pipeline) TCPTable() *wire.TCPTable { return p.scanner.TCPTable() }

// SweepDays streams sweeps of the targets over consecutive days starting
// at day0, reusing one set of scan buffers throughout; fn sees each day's
// masks, valid only during the call (see probe.Scanner.SweepDays).
func (p *Pipeline) SweepDays(targets []ip6.Addr, day0, days int, fn func(day int, masks []wire.RespMask)) {
	p.scanner.SweepDays(ip6.Addrs(targets), day0, days, fn)
}

// CleanTargets returns the latest published epoch's curated hitlist —
// the epoch's pinned sorted view minus aliased addresses, classified by
// the filter's chunk-parallel interval merge (memoized per epoch). It
// requires a published APD epoch and fails loudly — with a descriptive
// panic rather than an opaque nil dereference — when called before one
// exists.
func (p *Pipeline) CleanTargets() []ip6.Addr {
	e := p.Latest()
	if e == nil {
		panic("core: CleanTargets called before any APD epoch was published — run RunAPD or RunDays first")
	}
	return e.CleanTargets()
}
