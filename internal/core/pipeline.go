// Package core is the public face of the library: the daily IPv6 hitlist
// pipeline of §6 (collect → preprocess → aliased-prefix detection →
// traceroute → probe → curate) and the Lab, which reproduces every table
// and figure of the paper on top of the pipeline.
//
// The pipeline mirrors the paper's architecture:
//
//  1. collect addresses from the seven sources (internal/sources),
//  2. preprocess, merge and deduplicate them (the accumulating store),
//  3. detect aliased prefixes with multi-level APD and a 3-day sliding
//     window (internal/apd),
//  4. traceroute all known addresses (the scamper source),
//  5. probe responsiveness with the ZMapv6-style scanner on ICMPv6,
//     TCP/80, TCP/443, UDP/53 and UDP/443 (internal/probe).
package core

import (
	"math/bits"
	"sync"

	"expanse/internal/apd"
	"expanse/internal/dnssim"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/probe"
	"expanse/internal/sources"
	"expanse/internal/wire"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Sim configures the simulated Internet (the measurement target).
	Sim netsim.Config
	// APDWindow is the sliding-window length in days — the TOTAL number
	// of days merged per §5.2 evaluation, so the paper's 3-day window
	// merges exactly 3 days (default 3).
	APDWindow int
	// MinTargets is the APD candidate threshold (§5.1; default 100).
	MinTargets int
	// Workers is the per-protocol worker-shard count of the scan engine,
	// used by both the responsiveness scanner and the APD detector
	// (default 8). Scan results are identical for every value — see the
	// concurrency model in DESIGN.md — so this is purely a throughput
	// knob.
	Workers int
}

// DefaultConfig returns the paper-faithful configuration at default
// simulation scale.
func DefaultConfig() Config {
	return Config{Sim: netsim.DefaultConfig(), APDWindow: 3, MinTargets: 100, Workers: 8}
}

// TestConfig returns a small fast configuration for tests and examples.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Sim.Scale = 0.08
	cfg.Sim.Registry.ASes = 250
	return cfg
}

// Pipeline is the assembled system.
type Pipeline struct {
	Cfg   Config
	World *netsim.Internet
	DNS   *dnssim.Server
	Store *sources.Store

	scanner  *probe.Scanner
	detector *apd.Detector

	// APD state, columnar: the day-0 candidate universe is frozen into
	// table (stable integer IDs per distinct prefix); candidates/candIDs
	// are the currently probed subset in probe order; the day history and
	// the running near-aliased masks are arrays indexed by table ID.
	table      *apd.CandidateTable
	candidates []apd.Candidate
	candIDs    []int32
	hist       apd.History
	filter     *apd.Filter
	verdicts   map[ip6.Prefix]bool
	// nearMask[id] is the running OR of candidate id's daily branch
	// masks, updated once per probing day by a chunk-parallel column OR.
	// A candidate is "near aliased" — and worth re-probing on later days —
	// iff its running mask has >= 12 responding branches, which is exactly
	// the old O(days) history scan folded into O(1) bookkeeping per day
	// (masks only ever accumulate under the OR-merge).
	nearMask []apd.BranchMask
}

// New builds the world, the DNS view, and the collectors.
func New(cfg Config) *Pipeline {
	if cfg.APDWindow <= 0 {
		cfg.APDWindow = 3
	}
	if cfg.MinTargets <= 0 {
		cfg.MinTargets = 100
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	world := netsim.New(cfg.Sim)
	dns := dnssim.New(world)
	st := sources.NewStoreWorkers(cfg.Workers,
		sources.NewDL(dns, cfg.Sim),
		sources.NewFDNS(dns, cfg.Sim),
		sources.NewCT(dns, cfg.Sim),
		sources.NewAXFR(dns, cfg.Sim),
		sources.NewBitnodes(world),
		sources.NewAtlas(world),
		sources.NewScamper(world),
	)
	return &Pipeline{
		Cfg:      cfg,
		World:    world,
		DNS:      dns,
		Store:    st,
		scanner:  probe.New(world, probe.WithWorkers(cfg.Workers), probe.WithSeed(uint64(cfg.Sim.Seed))),
		detector: apd.NewDetectorWorkers(world, cfg.Workers),
	}
}

// Collect runs every collection epoch, building the full hitlist (§3).
func (p *Pipeline) Collect() {
	for e := 0; e < p.Cfg.Sim.Epochs; e++ {
		p.Store.CollectDay(e * p.Cfg.Sim.EpochDays)
	}
}

// Hitlist returns the accumulated hitlist — the sharded columnar address
// store every pipeline stage reads from. Its Sorted view is cached and
// shared: treat it as read-only.
func (p *Pipeline) Hitlist() *ip6.ShardSet { return p.Store.All() }

// RunAPD performs the day's aliased prefix detection. On the first call
// it derives the candidate set (hitlist multi-level mapping plus all
// BGP-announced prefixes); later calls re-probe only prefixes that were
// close to aliased before — full re-derivation daily would be probe-for-
// probe identical in the simulator but pointlessly slow (see DESIGN.md).
func (p *Pipeline) RunAPD(day int) {
	if p.table == nil {
		cands := apd.HitlistCandidates(p.Hitlist(), p.Cfg.MinTargets)
		cands = append(cands, apd.BGPCandidates(p.World.Table)...)
		p.table = apd.NewCandidateTable(cands)
		p.hist.Bind(p.table)
		p.nearMask = make([]apd.BranchMask, p.table.NumIDs())
		p.candidates = cands
		p.candIDs = make([]int32, len(cands))
		for i := range cands {
			p.candIDs[i] = p.table.EntryID(i)
		}
	} else if p.hist.Len() > 0 {
		// Narrow to near-aliased prefixes (running mask >= 12 branches).
		narrow := p.candidates[:0:0]
		narrowIDs := p.candIDs[:0:0]
		for i, c := range p.candidates {
			if p.nearMask[p.candIDs[i]].Count() >= 12 {
				narrow = append(narrow, c)
				narrowIDs = append(narrowIDs, p.candIDs[i])
			}
		}
		p.candidates, p.candIDs = narrow, narrowIDs
	}
	flat := p.detector.ProbeDayFlat(p.candidates, day)
	p.hist.AddIDs(p.candIDs, flat)
	di := p.hist.Len() - 1
	p.hist.ORDayInto(di, p.nearMask, p.Cfg.Workers)
	merged := p.hist.MergedColumn(di, p.Cfg.APDWindow, p.Cfg.Workers)
	p.verdicts = make(map[ip6.Prefix]bool, len(p.candidates))
	for i, c := range p.candidates {
		p.verdicts[c.Prefix] = merged[p.candIDs[i]] == apd.AllBranches
	}
	p.filter = apd.NewFilter(p.verdicts)
}

// Filter returns the current alias filter (nil before RunAPD).
func (p *Pipeline) Filter() *apd.Filter { return p.filter }

// Verdicts returns the current per-prefix aliased verdicts.
func (p *Pipeline) Verdicts() map[ip6.Prefix]bool { return p.verdicts }

// Candidates returns the APD candidate set.
func (p *Pipeline) Candidates() []apd.Candidate { return p.candidates }

// History exposes the APD observation history.
func (p *Pipeline) History() *apd.History { return &p.hist }

// APDProbesSent reports probe packets spent on APD so far.
func (p *Pipeline) APDProbesSent() int { return p.detector.ProbesSent }

// Scan is one day's responsiveness measurement over the given targets: a
// view over the target list and the mask column the sweep wrote. Addrs
// and Masks are shared, read-only columns; the accessors below memoize
// their counts, so repeated consumers (Fig 6 alone queries a ~10^5-address
// scan several times) pay one counting pass total and every extraction
// allocates its exact output size.
type Scan struct {
	Day   int
	Addrs []ip6.Addr
	Masks []wire.RespMask

	countOnce sync.Once
	counts    [wire.NumProtos]int
	anyCount  int
}

// ensureCounts tallies per-protocol and any-protocol responder counts in
// one pass over the mask column.
func (s *Scan) ensureCounts() {
	s.countOnce.Do(func() {
		for _, m := range s.Masks {
			if !m.Any() {
				continue
			}
			s.anyCount++
			for rest := uint8(m); rest != 0; rest &= rest - 1 {
				s.counts[bits.TrailingZeros8(rest)]++
			}
		}
	})
}

// Responsive returns the addresses that answered on the given protocol.
func (s *Scan) Responsive(p wire.Proto) []ip6.Addr {
	s.ensureCounts()
	out := make([]ip6.Addr, 0, s.counts[p])
	for i, m := range s.Masks {
		if m.Has(p) {
			out = append(out, s.Addrs[i])
		}
	}
	return out
}

// AnyResponsive returns addresses that answered at least one protocol.
func (s *Scan) AnyResponsive() []ip6.Addr {
	s.ensureCounts()
	out := make([]ip6.Addr, 0, s.anyCount)
	for i, m := range s.Masks {
		if m.Any() {
			out = append(out, s.Addrs[i])
		}
	}
	return out
}

// Count returns how many targets answered on the protocol.
func (s *Scan) Count(p wire.Proto) int {
	s.ensureCounts()
	return s.counts[p]
}

// Sweep probes the targets on all five protocols for one day (§6).
func (p *Pipeline) Sweep(targets []ip6.Addr, day int) *Scan {
	return &Scan{Day: day, Addrs: targets, Masks: p.scanner.Sweep(targets, day)}
}

// SweepSet probes every address of the set in sorted order on all five
// protocols. The scan indexes the set's cached sorted view directly —
// the hitlist is sorted at most once per mutation epoch and never copied
// per sweep. The returned Scan shares that view in Addrs: read-only.
func (p *Pipeline) SweepSet(set *ip6.ShardSet, day int) *Scan {
	sorted := set.Sorted()
	return &Scan{Day: day, Addrs: sorted, Masks: p.scanner.SweepSeq(ip6.Addrs(sorted), day)}
}

// ScanOne probes the targets on a single protocol.
func (p *Pipeline) ScanOne(targets []ip6.Addr, proto wire.Proto, day int) []probe.Result {
	return p.scanner.Scan(targets, proto, day)
}

// ProbePairs sends the §5.4 fingerprinting probe pairs (the per-probe
// reference path, routed through the AddrSeq entry point).
func (p *Pipeline) ProbePairs(targets []ip6.Addr, day int) []probe.Pair {
	return p.scanner.ProbePairsSeq(ip6.Addrs(targets), wire.TCP80, day)
}

// ProbePairsSeq is ProbePairs over an indexed target view — no
// flatten-copy when fed from the ShardSet's cached sorted view.
func (p *Pipeline) ProbePairsSeq(targets ip6.AddrSeq, day int) []probe.Pair {
	return p.scanner.ProbePairsSeq(targets, wire.TCP80, day)
}

// ProbePairColumns sends the §5.4 pairs on the batched columnar path,
// with SYN-ACK fingerprints interned in the pipeline's table (TCPTable).
func (p *Pipeline) ProbePairColumns(targets []ip6.Addr, day int, out *probe.PairColumns) {
	p.scanner.ProbePairColumns(ip6.Addrs(targets), wire.TCP80, day, out)
}

// TCPTable returns the scanner's interned fingerprint table — the
// resolver for TCPRef columns produced by the pipeline's scans.
func (p *Pipeline) TCPTable() *wire.TCPTable { return p.scanner.TCPTable() }

// SweepDays streams sweeps of the targets over consecutive days starting
// at day0, reusing one set of scan buffers throughout; fn sees each day's
// masks, valid only during the call (see probe.Scanner.SweepDays).
func (p *Pipeline) SweepDays(targets []ip6.Addr, day0, days int, fn func(day int, masks []wire.RespMask)) {
	p.scanner.SweepDays(ip6.Addrs(targets), day0, days, fn)
}

// CleanTargets returns the hitlist minus aliased addresses (requires a
// prior RunAPD), sorted. The hitlist's cached sorted view is classified
// by the filter's chunk-parallel interval merge, never per-address.
func (p *Pipeline) CleanTargets() []ip6.Addr {
	clean, _, _ := p.filter.SplitSorted(p.Hitlist().SortedSeq(), p.Cfg.Workers)
	return clean
}
