package core

import (
	"sync"

	"expanse/internal/apd"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/probe"
	"expanse/internal/sources"
)

// Epoch is one published day of the daily hitlist service: an immutable,
// cheaply-shareable snapshot of everything the day's consumers read.
// The publish point is atomic (Pipeline.publish swaps an RCU pointer),
// so a reader that obtains an epoch — via Pipeline.Latest or a RunDays
// result — sees a fully-built, internally-consistent view forever: the
// hitlist pinned at its sorted mutation epoch (ip6.FrozenView), the
// interval-compiled alias filter, the per-prefix verdicts, the day's
// probed candidates with their raw scan masks, the day's history column
// plus the sliding window it was judged under, and (when the pipeline
// runs with EpochSweep) the day's responsiveness sweep of the curated
// targets.
//
// All exported fields are read-only after publish. The clean/aliased
// split of the hitlist is memoized per epoch (logically immutable —
// computing it twice yields identical bytes), so N concurrent consumers
// of one epoch pay for one chunk-parallel interval merge.
type Epoch struct {
	// Index is the 0-based APD day index — epoch K is the K+1-th
	// published day since the candidate universe was frozen.
	Index int
	// Day is the absolute simulated day the epoch was probed on.
	Day int
	// Hitlist pins the sorted hitlist view the epoch was published
	// against. Later mutations of the live store are invisible here.
	Hitlist ip6.FrozenView
	// Filter is the day's interval-compiled longest-prefix-match alias
	// filter (never nil on a published epoch).
	Filter *apd.Filter
	// Verdicts maps each candidate prefix probed this day to its
	// window-merged aliased verdict. Read-only.
	Verdicts map[ip6.Prefix]bool
	// Candidates is the day's probed candidate subset in probe order
	// (day 0: the full universe; later days: the near-aliased narrowing),
	// and Probed its raw per-entry branch masks — the day's scan columns
	// as they came off the wire, before duplicate prefixes OR-merge in
	// the history. Probed[i] belongs to Candidates[i].
	Candidates []apd.Candidate
	Probed     []apd.BranchMask
	// Column is the day's appended history column; Window holds the
	// sliding window's column snapshots ending at this day (oldest
	// first); Merged is the window-merged mask per candidate-table ID.
	Column apd.DayColumn
	Window []apd.DayColumn
	Merged []apd.BranchMask
	// Scan is the day's five-protocol sweep over the epoch's clean
	// targets — nil unless the pipeline runs with Config.EpochSweep.
	Scan *Scan

	workers      int
	splitOnce    sync.Once
	splitClean   []ip6.Addr
	splitAliased []ip6.Addr
	splitBits    []bool
}

// Split returns the memoized clean/aliased partition of the epoch's
// hitlist under the epoch's filter, plus the raw per-address
// classification aligned with Hitlist.Sorted(). All slices are shared
// between callers: read-only.
func (e *Epoch) Split() (clean, aliased []ip6.Addr, bits []bool) {
	e.splitOnce.Do(func() {
		e.splitClean, e.splitAliased, e.splitBits =
			e.Filter.SplitSorted(e.Hitlist.Seq(), e.workers)
	})
	return e.splitClean, e.splitAliased, e.splitBits
}

// CleanTargets returns the epoch's curated hitlist — the pinned sorted
// view minus aliased addresses. Shared, read-only.
func (e *Epoch) CleanTargets() []ip6.Addr {
	clean, _, _ := e.Split()
	return clean
}

// AliasedTargets returns the aliased partition of the epoch's hitlist.
// Shared, read-only.
func (e *Epoch) AliasedTargets() []ip6.Addr {
	_, aliased, _ := e.Split()
	return aliased
}

// IsAliased reports whether addr falls under an aliased prefix per this
// epoch's filter.
func (e *Epoch) IsAliased(addr ip6.Addr) bool { return e.Filter.IsAliased(addr) }

// EpochDraft carries one probed day from the probe chain to the seal
// stage: the day's candidate subset, its raw scan masks, and pinned
// window-column snapshots. Every field is immutable once the draft is
// returned — later ProbeDay calls build fresh narrowing slices and
// append fresh history columns — which is exactly what lets Seal run
// concurrently with subsequent probing.
type EpochDraft struct {
	index, day int
	cands      []apd.Candidate
	candIDs    []int32
	flat       []apd.BranchMask
	column     apd.DayColumn
	window     []apd.DayColumn
	nIDs       int
}

// Index returns the draft's 0-based APD day index.
func (d *EpochDraft) Index() int { return d.index }

// EpochBuilder owns all the mutable state of the day loop that used to
// smear across Pipeline's fields: the frozen candidate universe, the
// currently-probed (narrowed) candidate subset, the columnar day
// history, and the running near-aliased masks. The contract splits each
// day in two:
//
//   - ProbeDay (the probe chain) mutates: it narrows candidates, probes
//     the day's fan-out targets, appends the history column and updates
//     the running masks. Calls must come from one goroutine, in day
//     order.
//   - Seal (the publish side) only reads immutable draft snapshots and
//     the post-collection hitlist, so any number of Seal calls may run
//     concurrently with each other and with later ProbeDay calls.
//
// The day orchestrator (sched.go) pipelines the two; the serial
// Pipeline.RunAPD composes them back to back.
type EpochBuilder struct {
	cfg      Config
	world    *netsim.Internet
	store    *sources.Store
	detector *apd.Detector
	scanner  *probe.Scanner

	table    *apd.CandidateTable
	cands    []apd.Candidate
	candIDs  []int32
	hist     apd.History
	nearMask []apd.BranchMask
}

// Days returns how many APD days have been probed so far.
func (b *EpochBuilder) Days() int { return b.hist.Len() }

// History exposes the builder's live observation history. Callers must
// not read it concurrently with ProbeDay; published epochs carry
// immutable column snapshots for that.
func (b *EpochBuilder) History() *apd.History { return &b.hist }

// ProbeDay runs the probe-chain half of one APD day: on the first call
// it derives and freezes the candidate universe (hitlist multi-level
// mapping plus all BGP-announced prefixes); later calls first narrow to
// prefixes whose running mask is near aliased (>= 12 branches), since a
// full daily re-derivation would be probe-for-probe identical in the
// simulator but pointlessly slow (see DESIGN.md). It then probes the
// day's fan-out targets, appends the history column, and folds it into
// the running masks. The returned draft is immutable.
func (b *EpochBuilder) ProbeDay(day int) *EpochDraft {
	if b.table == nil {
		cands := apd.HitlistCandidates(b.store.All(), b.cfg.MinTargets)
		cands = append(cands, apd.BGPCandidates(b.world.Table)...)
		b.table = apd.NewCandidateTable(cands)
		b.hist.Bind(b.table)
		b.nearMask = make([]apd.BranchMask, b.table.NumIDs())
		b.cands = cands
		b.candIDs = make([]int32, len(cands))
		for i := range cands {
			b.candIDs[i] = b.table.EntryID(i)
		}
	} else if b.hist.Len() > 0 {
		// Narrow to near-aliased prefixes (running mask >= 12 branches).
		// Fresh slices every day: the previous day's draft keeps the old
		// ones, so sealed-but-unpublished epochs never see this mutation.
		narrow := b.cands[:0:0]
		narrowIDs := b.candIDs[:0:0]
		for i, c := range b.cands {
			if b.nearMask[b.candIDs[i]].Count() >= 12 {
				narrow = append(narrow, c)
				narrowIDs = append(narrowIDs, b.candIDs[i])
			}
		}
		b.cands, b.candIDs = narrow, narrowIDs
	}
	flat := b.detector.ProbeDayFlat(b.cands, day)
	b.hist.AddIDs(b.candIDs, flat)
	di := b.hist.Len() - 1
	b.hist.ORDayInto(di, b.nearMask, b.cfg.Workers)
	return &EpochDraft{
		index:   di,
		day:     day,
		cands:   b.cands,
		candIDs: b.candIDs,
		flat:    flat,
		column:  b.hist.Column(di),
		window:  b.hist.WindowColumns(di, b.cfg.APDWindow),
		nIDs:    b.table.NumIDs(),
	}
}

// Seal turns a probed draft into a publish-ready epoch: the window
// merge over the draft's pinned columns, the verdict map, the interval
// compilation of the filter, the frozen hitlist pin, and (with
// Config.EpochSweep) the day's sweep of the curated targets. Seal is a
// pure function of the draft and the post-collection hitlist — it never
// touches the builder's mutable state — so seals of different days may
// run concurrently with each other and with later ProbeDay calls, and
// the result is byte-identical to the serial loop's for every worker
// count and overlap depth.
func (b *EpochBuilder) Seal(d *EpochDraft) *Epoch {
	merged := apd.MergeColumns(d.window, d.nIDs, b.cfg.Workers)
	verdicts := make(map[ip6.Prefix]bool, len(d.cands))
	for i, c := range d.cands {
		verdicts[c.Prefix] = merged[d.candIDs[i]] == apd.AllBranches
	}
	e := &Epoch{
		Index:      d.index,
		Day:        d.day,
		Hitlist:    b.store.All().Freeze(),
		Filter:     apd.NewFilter(verdicts),
		Verdicts:   verdicts,
		Candidates: d.cands,
		Probed:     d.flat,
		Column:     d.column,
		Window:     d.window,
		Merged:     merged,
		workers:    b.cfg.Workers,
	}
	if b.cfg.EpochSweep {
		clean := e.CleanTargets()
		e.Scan = &Scan{
			Day:   d.day,
			Addrs: clean,
			Masks: b.scanner.SweepSeqInto(ip6.Addrs(clean), d.day, nil),
		}
	}
	return e
}
