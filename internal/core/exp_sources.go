package core

import (
	"fmt"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/stats"
	"expanse/internal/zesplot"
)

// Table1 reproduces the prior-work comparison: the static rows are the
// published numbers of the four previous studies; the "This work" row is
// measured from the pipeline.
func (l *Lab) Table1() *Report {
	l.ensureCollected()
	r := &Report{ID: "Table 1", Title: "Comparison with previous work"}
	r.addf("%-22s %10s %8s %8s  %3s %5s %4s", "Work", "#publ.", "#pfx.", "#ASes", "Cts", "Prob.", "APD")
	r.addf("%-22s %10s %8s %8s  %3s %5s %4s", "Gasser et al. [36]", "2.7M", "5.8k", "8.6k", "y", "y", "n")
	r.addf("%-22s %10s %8s %8s  %3s %5s %4s", "Foremski et al. [33]", "620k", "<100", "<100", "y", "y", "n")
	r.addf("%-22s %10s %8s %8s  %3s %5s %4s", "Fiebig et al. [29]", "2.8M", "n/a", "n/a", "y", "n", "n")
	r.addf("%-22s %10s %8s %8s  %3s %5s %4s", "Murdock et al. [56]", "1.0M", "2.8k", "2.4k", "y", "y", "~")
	tot := l.P.Store.TotalStat(l.P.World.Table)
	r.addf("%-22s %10d %8d %8d  %3s %5s %4s", "This work (measured)", tot.IPs, tot.Prefixes, tot.ASes, "y", "y", "y")
	return r
}

// Table2 reproduces the hitlist-source overview.
func (l *Lab) Table2() *Report {
	l.ensureCollected()
	r := &Report{ID: "Table 2", Title: "Overview of hitlist sources"}
	r.addf("%-12s %9s %9s %7s %7s  %s", "Name", "IPs", "new IPs", "#ASes", "#PFXes", "Top-3 ASes")
	rows := l.P.Store.Stats(l.P.World.Table)
	rows = append(rows, l.P.Store.TotalStat(l.P.World.Table))
	for _, s := range rows {
		top := ""
		for _, ts := range s.TopAS {
			top += fmt.Sprintf(" %s=%.1f%%", ts.Name, ts.Share*100)
		}
		r.addf("%-12s %9d %9d %7d %7d %s", s.Name, s.IPs, s.NewIPs, s.ASes, s.Prefixes, top)
	}
	return r
}

// Fig1a reproduces the cumulative source runup.
func (l *Lab) Fig1a() *Report {
	l.ensureCollected()
	r := &Report{ID: "Fig 1a", Title: "Cumulative runup of IPv6 addresses per source"}
	runup := l.P.Store.Runup()
	names := l.sourceNames()
	r.Lines = append(r.Lines, fmt.Sprintf("%-6s%s %12s", "day", joinPadded(names, 12), "total"))
	for _, pt := range runup {
		line := fmt.Sprintf("%-6d", pt.Day)
		for _, n := range names {
			line += fmt.Sprintf(" %11d", pt.Cumulative[n])
		}
		line += fmt.Sprintf(" %12d", pt.Total)
		r.Lines = append(r.Lines, line)
	}
	if len(runup) >= 2 {
		first, last := runup[0].Total, runup[len(runup)-1].Total
		r.addf("growth factor over the period: %.1fx", float64(last)/float64(maxInt(first, 1)))
	}
	return r
}

// Fig1b reproduces the per-source AS-distribution CDFs: the fraction of
// each source's addresses inside its top-X ASes.
func (l *Lab) Fig1b() *Report {
	l.ensureCollected()
	r := &Report{ID: "Fig 1b", Title: "AS distribution per source (fraction in top-X ASes)"}
	points := stats.LogPoints(1000)
	header := fmt.Sprintf("%-12s", "source")
	for _, x := range points {
		header += fmt.Sprintf(" %6d", x)
	}
	r.Lines = append(r.Lines, header)
	for _, name := range l.sourceNames() {
		conc := l.sourceConcentration(name, true)
		line := fmt.Sprintf("%-12s", name)
		for _, f := range conc.Curve(points) {
			line += fmt.Sprintf(" %6.3f", f)
		}
		line += fmt.Sprintf("   (gini %.2f)", conc.Gini())
		r.Lines = append(r.Lines, line)
	}
	return r
}

// Fig1c renders the zesplot of hitlist addresses over BGP prefixes and
// reports summary statistics; the SVG itself is written by cmd/zesplot.
func (l *Lab) Fig1c() *Report {
	l.ensureCollected()
	r := &Report{ID: "Fig 1c", Title: "Hitlist addresses mapped to BGP prefixes (zesplot)"}
	counts, covered := l.prefixCounts(l.P.Hitlist().SortedSeq())
	items := l.allPrefixItems(counts)
	rects := zesplot.Layout(items, zesplot.Options{Sized: true})
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	r.addf("announced prefixes plotted: %d", len(rects))
	r.addf("prefixes with hitlist addresses: %d (%.1f%%)", covered, 100*float64(covered)/float64(maxInt(len(items), 1)))
	r.addf("max addresses in one prefix: %d", max)
	return r
}

// Fig1cSVG returns the actual SVG document for Figure 1c.
func (l *Lab) Fig1cSVG() string {
	l.ensureCollected()
	counts, _ := l.prefixCounts(l.P.Hitlist().SortedSeq())
	items := l.allPrefixItems(counts)
	return zesplot.SVG(items, zesplot.Options{Sized: true, Title: "Fig 1c: hitlist addresses per BGP prefix"})
}

// prefixCounts maps addresses onto their announced prefixes. Reports
// pass either a plain slice (ip6.Addrs) or a set's cached sorted view
// (ShardSet.SortedSeq) — the latter costs no per-report address copy.
func (l *Lab) prefixCounts(addrs ip6.AddrSeq) (map[ip6.Prefix]int, int) {
	counts := map[ip6.Prefix]int{}
	for i := 0; i < addrs.Len(); i++ {
		if p, _, ok := l.P.World.Table.Lookup(addrs.At(i)); ok {
			counts[p]++
		}
	}
	return counts, len(counts)
}

// allPrefixItems builds zesplot items for every announced prefix with
// the given counts (zero-count prefixes render white).
func (l *Lab) allPrefixItems(counts map[ip6.Prefix]int) []zesplot.Item {
	anns := l.P.World.Table.Announcements()
	items := make([]zesplot.Item, 0, len(anns))
	for _, ann := range anns {
		items = append(items, zesplot.Item{
			Prefix: ann.Prefix, ASN: ann.Origin, Value: float64(counts[ann.Prefix]),
		})
	}
	return items
}

func (l *Lab) sourceNames() []string {
	return []string{"Domainlists", "FDNS", "CT", "AXFR", "Bitnodes", "RIPE Atlas", "Scamper"}
}

// sourceConcentration builds the AS (or prefix) concentration of one
// source's accumulated addresses.
func (l *Lab) sourceConcentration(name string, byAS bool) *stats.Concentration {
	set := l.P.Store.PerSource(name)
	asCounts := map[bgp.ASN]int{}
	pfxCounts := map[ip6.Prefix]int{}
	set.Each(func(a ip6.Addr) bool {
		if p, asn, ok := l.P.World.Table.Lookup(a); ok {
			asCounts[asn]++
			pfxCounts[p]++
		}
		return true
	})
	if byAS {
		return stats.NewConcentration(asCounts)
	}
	return stats.NewConcentration(pfxCounts)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pad(s string, w int) string {
	for len(s) < w {
		s = " " + s
	}
	return s
}

func joinPadded(ss []string, w int) string {
	out := ""
	for _, s := range ss {
		out += pad(s, w)
	}
	return out
}
