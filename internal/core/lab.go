package core

import (
	"fmt"
	"strings"
	"sync"

	"expanse/internal/apd"
	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// Report is the uniform output of every reproduced experiment: an
// identifier matching the paper's table/figure numbering, a title, and
// preformatted result lines.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Lab caches the expensive pipeline stages shared between experiments so
// the whole suite runs each stage exactly once (collection, APD, the
// daily sweeps, the generation study, …).
//
// A Lab is safe for concurrent use: every stage is memoized behind a
// sync.Once (or, for the incrementally extended APD history, a mutex), so
// independent experiments — e.g. parallel benchmarks — can share one Lab
// and each stage still runs exactly once. Experiments that need the
// curated post-APD view consume the window snapshot (see ensureAPDDays),
// which makes their results independent of how many extra APD days other
// experiments have appended concurrently.
type Lab struct {
	P *Pipeline

	collectOnce sync.Once

	// apdMu guards the published-epoch list and the pipeline's probe
	// chain (epoch extension is serialized; concurrent experiments just
	// read the immutable epochs below).
	apdMu  sync.Mutex
	epochs []*Epoch // published APD epochs, day order

	scanFullOnce  sync.Once
	scanFull      *Scan // day-0 sweep over the FULL hitlist (pre-APD view)
	scanCleanOnce sync.Once
	scanClean     *Scan // day-0 sweep over non-aliased targets (the curated view)

	longOnce     sync.Once
	longitudinal map[string][]float64 // Fig 8 series, keyed by row label

	genOnce   sync.Once
	genStudy  *genStudyState
	rdnsOnce  sync.Once
	rdnsStudy *rdnsState
	crowdOnce sync.Once
	crowd     *crowdState
}

// NewLab builds a lab over a fresh pipeline.
func NewLab(cfg Config) *Lab {
	return &Lab{P: New(cfg)}
}

// measureDay returns the first day after collection (the paper's
// "May 11" snapshot).
func (l *Lab) measureDay() int { return l.P.World.Horizon() }

func (l *Lab) ensureCollected() {
	l.collectOnce.Do(func() { l.P.Collect() })
}

// ensureAPD runs APD for enough days to fill the sliding window and set
// the filter (window semantics: APDWindow = total days merged).
func (l *Lab) ensureAPD() {
	l.ensureAPDDays(l.P.Cfg.APDWindow)
}

// ensureAPDDays extends the published epoch sequence to at least n days
// through the day orchestrator (Cfg.Overlap days in flight). Extension
// is serialized under apdMu, so the day sequence — and the window epoch
// captured the moment the sliding window fills — is identical no matter
// which experiments race to extend the history.
func (l *Lab) ensureAPDDays(n int) {
	l.ensureCollected()
	l.apdMu.Lock()
	defer l.apdMu.Unlock()
	if len(l.epochs) < n {
		start := l.measureDay() + len(l.epochs)
		l.epochs = append(l.epochs, l.P.RunDays(start, n-len(l.epochs))...)
	}
}

// windowEpoch returns the epoch published the moment the APD history
// first filled Cfg.APDWindow days — the state the paper's daily hitlist
// would publish. Later APD days keep extending the history for the
// stability study without disturbing this snapshot: epochs are
// immutable, so no lock is needed once the pointer is out.
func (l *Lab) windowEpoch() *Epoch {
	l.ensureAPD()
	l.apdMu.Lock()
	defer l.apdMu.Unlock()
	return l.epochs[l.P.Cfg.APDWindow-1]
}

// hitlistSplit returns the clean/aliased partition of the sorted
// hitlist under the window epoch's filter, plus the raw per-address
// classification aligned with Hitlist().Sorted(). The split is memoized
// on the epoch, so every consumer — Sec53, Fig4, Fig5, the curated-scan
// targets — shares one chunk-parallel interval merge.
func (l *Lab) hitlistSplit() (clean, aliased []ip6.Addr, bits []bool) {
	return l.windowEpoch().Split()
}

// cleanTargets returns the curated hitlist of the window epoch.
func (l *Lab) cleanTargets() []ip6.Addr {
	return l.windowEpoch().CleanTargets()
}

// filter returns the alias filter of the window epoch.
func (l *Lab) filter() *apd.Filter {
	return l.windowEpoch().Filter
}

// verdicts returns the per-prefix verdicts of the window epoch.
func (l *Lab) verdicts() map[ip6.Prefix]bool {
	return l.windowEpoch().Verdicts
}

// unstablePrefixes evaluates the Table 4 metric under the APD mutex, so
// it never reads the history while another experiment is extending it.
func (l *Lab) unstablePrefixes(window int) int {
	l.apdMu.Lock()
	defer l.apdMu.Unlock()
	return l.P.History().UnstablePrefixesWorkers(window, l.P.Cfg.Workers)
}

// ensureScanFull sweeps the complete hitlist once (the pre-APD view that
// Figure 5a needs).
func (l *Lab) ensureScanFull() {
	l.scanFullOnce.Do(func() {
		l.ensureCollected()
		l.scanFull = l.P.SweepSet(l.P.Hitlist(), l.measureDay())
	})
}

// ensureScanClean sweeps the curated (non-aliased) targets.
func (l *Lab) ensureScanClean() {
	l.scanCleanOnce.Do(func() {
		l.scanClean = l.P.Sweep(l.cleanTargets(), l.measureDay())
	})
}

// maskIndex builds the scan's full address → responsiveness-mask index
// (one entry per scanned target), for consumers that look masks up by
// address rather than walking the columns.
func (s *Scan) maskIndex() map[ip6.Addr]wire.RespMask {
	m := make(map[ip6.Addr]wire.RespMask, len(s.Addrs))
	for i, a := range s.Addrs {
		m[a] = s.Masks[i]
	}
	return m
}

// groupMin adapts the paper's ≥100-address group threshold to the
// simulation scale so the clustering experiments keep enough groups.
func (l *Lab) groupMin() int {
	min := int(100 * l.P.Cfg.Sim.Scale)
	if min < 20 {
		min = 20
	}
	return min
}
