package core

import (
	"fmt"
	"strings"

	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// Report is the uniform output of every reproduced experiment: an
// identifier matching the paper's table/figure numbering, a title, and
// preformatted result lines.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Lab caches the expensive pipeline stages shared between experiments so
// the whole suite runs each stage exactly once (collection, APD, the
// daily sweeps, the generation study, …).
type Lab struct {
	P *Pipeline

	collected bool
	apdDays   int // number of APD days run so far

	scanFull  *Scan // day-0 sweep over the FULL hitlist (pre-APD view)
	scanClean *Scan // day-0 sweep over non-aliased targets (the curated view)

	longitudinal map[string][]float64 // Fig 8 series, keyed by row label

	genStudy  *genStudyState
	rdnsStudy *rdnsState
	crowd     *crowdState
}

// NewLab builds a lab over a fresh pipeline.
func NewLab(cfg Config) *Lab {
	return &Lab{P: New(cfg)}
}

// measureDay returns the first day after collection (the paper's
// "May 11" snapshot).
func (l *Lab) measureDay() int { return l.P.World.Horizon() }

func (l *Lab) ensureCollected() {
	if l.collected {
		return
	}
	l.P.Collect()
	l.collected = true
}

// ensureAPD runs APD for enough days to fill the sliding window and set
// the filter.
func (l *Lab) ensureAPD() {
	l.ensureCollected()
	l.ensureAPDDays(l.P.Cfg.APDWindow + 1)
}

// ensureAPDDays extends the APD history to at least n days.
func (l *Lab) ensureAPDDays(n int) {
	l.ensureCollected()
	for ; l.apdDays < n; l.apdDays++ {
		l.P.RunAPD(l.measureDay() + l.apdDays)
	}
}

// ensureScanFull sweeps the complete hitlist once (the pre-APD view that
// Figure 5a needs).
func (l *Lab) ensureScanFull() {
	l.ensureCollected()
	if l.scanFull == nil {
		l.scanFull = l.P.Sweep(l.P.Hitlist().Sorted(), l.measureDay())
	}
}

// ensureScanClean sweeps the curated (non-aliased) targets.
func (l *Lab) ensureScanClean() {
	l.ensureAPD()
	if l.scanClean == nil {
		l.scanClean = l.P.Sweep(l.P.CleanTargets(), l.measureDay())
	}
}

// maskOf returns the day-0 clean-scan mask for an address.
func (s *Scan) maskIndex() map[ip6.Addr]wire.RespMask {
	m := make(map[ip6.Addr]wire.RespMask, len(s.Addrs))
	for i, a := range s.Addrs {
		m[a] = s.Masks[i]
	}
	return m
}

// groupMin adapts the paper's ≥100-address group threshold to the
// simulation scale so the clustering experiments keep enough groups.
func (l *Lab) groupMin() int {
	min := int(100 * l.P.Cfg.Sim.Scale)
	if min < 20 {
		min = 20
	}
	return min
}
