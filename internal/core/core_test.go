package core

import (
	"expanse/internal/ip6"
	"strings"
	"sync"
	"testing"

	"expanse/internal/wire"
)

// The lab is shared: stages are cached, so the whole file costs one
// pipeline run.
var lab = NewLab(TestConfig())

func TestPipelineEndToEnd(t *testing.T) {
	lab.ensureScanClean()
	p := lab.P
	if p.Hitlist().Len() == 0 {
		t.Fatal("empty hitlist")
	}
	all := p.Hitlist().Sorted()
	clean, aliased := p.Filter().Split(all)
	share := float64(len(aliased)) / float64(len(all))
	if share < 0.15 || share > 0.75 {
		t.Errorf("aliased share = %.2f, want ~half", share)
	}
	if len(clean) == 0 {
		t.Fatal("no clean targets")
	}
	// Detection quality vs ground truth.
	tp, fp, fn := 0, 0, 0
	for _, a := range aliased {
		if p.World.GroundTruthAliased(a) {
			tp++
		} else {
			fp++
		}
	}
	for _, a := range clean {
		if p.World.GroundTruthAliased(a) {
			fn++
		}
	}
	prec := float64(tp) / float64(maxInt(tp+fp, 1))
	rec := float64(tp) / float64(maxInt(tp+fn, 1))
	if prec < 0.95 {
		t.Errorf("APD precision = %.3f", prec)
	}
	if rec < 0.90 {
		t.Errorf("APD recall = %.3f", rec)
	}
	// Responsiveness: some but far from all targets answer.
	resp := len(lab.scanClean.AnyResponsive())
	frac := float64(resp) / float64(len(lab.scanClean.Addrs))
	if frac < 0.02 || frac > 0.9 {
		t.Errorf("responsive fraction = %.3f", frac)
	}
}

func TestReportsNonEmpty(t *testing.T) {
	reports := []*Report{
		lab.Table1(), lab.Table2(), lab.Fig1a(), lab.Fig1b(), lab.Fig1c(),
		lab.Fig2a(), lab.Fig2b(), lab.Fig3a(), lab.Fig3b(),
		lab.Table3(), lab.Sec53(), lab.Fig4(), lab.Fig5(),
		lab.Table5(), lab.Table6(), lab.Sec55(),
		lab.Fig6(), lab.Fig7(),
	}
	for _, r := range reports {
		if len(r.Lines) == 0 {
			t.Errorf("%s produced no lines", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("%s String() missing ID", r.ID)
		}
	}
}

func TestTable3FanOutShape(t *testing.T) {
	r := lab.Table3()
	if len(r.Lines) != 16 {
		t.Fatalf("fan-out rows = %d", len(r.Lines))
	}
	for i, line := range r.Lines {
		if !strings.HasPrefix(line, "2001:0db8:0407:8000:") {
			t.Errorf("row %d not in prefix: %s", i, line)
		}
		// Branch nybble must equal the row index.
		nyb := line[len("2001:0db8:0407:8000:"):][0]
		want := "0123456789abcdef"[i]
		if nyb != want {
			t.Errorf("row %d branch = %c, want %c", i, nyb, want)
		}
	}
}

func TestFig7ICMPDominance(t *testing.T) {
	lab.ensureScanClean()
	// Recompute the matrix directly to assert the paper's key number:
	// if anything responds, ICMP responds with high probability.
	masks := lab.scanClean.Masks
	respAny, respICMPGivenTCP80, tcp80 := 0, 0, 0
	for _, m := range masks {
		if m.Any() {
			respAny++
		}
		if m.Has(wire.TCP80) {
			tcp80++
			if m.Has(wire.ICMPv6) {
				respICMPGivenTCP80++
			}
		}
	}
	if respAny == 0 || tcp80 == 0 {
		t.Skip("not enough responders at test scale")
	}
	if p := float64(respICMPGivenTCP80) / float64(tcp80); p < 0.80 {
		t.Errorf("P(ICMP|TCP80) = %.2f, want >= 0.8 (paper: 0.89+)", p)
	}
}

func TestTable4WindowMonotone(t *testing.T) {
	lab.ensureAPDDays(14)
	prev := -1
	for w := 0; w <= 5; w++ {
		u := lab.P.History().UnstablePrefixes(w)
		if prev >= 0 && u > prev+2 {
			t.Errorf("unstable count rose sharply at window %d: %d -> %d", w, prev, u)
		}
		prev = u
	}
	if lab.P.History().UnstablePrefixes(3) > lab.P.History().UnstablePrefixes(0) {
		t.Error("window 3 must not be worse than window 0")
	}
}

func TestSec55MultiLevelWins(t *testing.T) {
	r := lab.Sec55()
	text := r.String()
	// The report includes "aliased only by multi-level" and it should be
	// substantial — parse is brittle, so recompute the key relationship.
	if !strings.Contains(text, "multi-level") {
		t.Fatal("report malformed")
	}
}

func TestFig8Longitudinal(t *testing.T) {
	lab.ensureLongitudinal()
	dl, ok := lab.longitudinal["DL"]
	if !ok || len(dl) != 14 {
		t.Fatalf("DL series missing or wrong length: %v", dl)
	}
	if dl[0] < 0.99 {
		t.Errorf("day-0 baseline fraction = %v, want 1.0", dl[0])
	}
	// Stable server sources decay slowly.
	if dl[13] < 0.85 {
		t.Errorf("DL day-13 = %v, want > 0.85 (paper: 0.98)", dl[13])
	}
	// Scamper's day-0-responsive baseline is router-dominated at test
	// scale, so it tracks DL within noise; the hard client-churn signal
	// of the paper is Bitnodes, whose peers disconnect and never answer
	// again. (A strict scamper<DL comparison here flips on sub-0.001
	// margins — before the deterministic data plane it silently depended
	// on Go map iteration order feeding the sweep.)
	if sc, ok := lab.longitudinal["Scamper"]; ok {
		if sc[13] > dl[13]+0.01 {
			t.Errorf("scamper (%v) decays well above DL (%v)", sc[13], dl[13])
		}
	}
	if bit, ok := lab.longitudinal["Bitnodes"]; ok {
		if bit[13] > 0.5 {
			t.Errorf("bitnodes day-13 = %v, want client-churn collapse", bit[13])
		}
	}
}

func TestGenerationStudy(t *testing.T) {
	r72 := lab.Sec72()
	r73 := lab.Sec73()
	t7 := lab.Table7()
	f9 := lab.Fig9()
	for _, r := range []*Report{r72, r73, t7, f9} {
		if len(r.Lines) == 0 {
			t.Errorf("%s empty", r.ID)
		}
	}
	g := lab.genStudy
	if g.newEIP == 0 || g.new6Gen == 0 {
		t.Fatalf("generation produced nothing: eip=%d 6gen=%d", g.newEIP, g.new6Gen)
	}
	// Overlap between tools is small (paper: 0.2%).
	total := g.newEIP + g.new6Gen
	if share := float64(len(g.overlap)) / float64(total); share > 0.2 {
		t.Errorf("tool overlap = %.3f, want small", share)
	}
	// Some learned addresses respond, but only a small fraction.
	resp := len(g.respEIP) + len(g.resp6Gen)
	if resp == 0 {
		t.Error("no learned address responded")
	}
	if rate := float64(resp) / float64(total); rate > 0.5 {
		t.Errorf("learned response rate = %.3f, implausibly high", rate)
	}
}

func TestRDNSStudy(t *testing.T) {
	r8 := lab.Sec8()
	t8 := lab.Table8()
	f10 := lab.Fig10()
	for _, r := range []*Report{r8, t8, f10} {
		if len(r.Lines) == 0 {
			t.Errorf("%s empty", r.ID)
		}
	}
	st := lab.rdnsStudy
	if len(st.walked) == 0 {
		t.Fatal("rDNS walk found nothing")
	}
	// Mostly new vs the hitlist (paper: 11.1M of 11.7M).
	if share := float64(st.newAddrs) / float64(len(st.walked)); share < 0.5 {
		t.Errorf("rDNS new share = %.2f, want mostly new", share)
	}
	if st.queries == 0 {
		t.Error("no DNS queries counted")
	}
}

func TestCrowdStudy(t *testing.T) {
	t9 := lab.Table9()
	s93 := lab.Sec93()
	if len(t9.Lines) == 0 || len(s93.Lines) == 0 {
		t.Fatal("crowd reports empty")
	}
	p := lab.crowd.ping
	if p.Clients == 0 {
		t.Fatal("no clients in ping study")
	}
	share := float64(p.Responsive) / float64(p.Clients)
	if share > 0.6 {
		t.Errorf("client responsiveness = %.2f, residential filtering missing", share)
	}
	if p.AtlasResponsive > 0 && p.AtlasResponsive < share {
		t.Error("Atlas probes should respond more than clients")
	}
}

func TestAblationGenerators(t *testing.T) {
	r := lab.AblationGenerators()
	if len(r.Lines) < 2 {
		t.Fatal("ablation report empty")
	}
}

// TestLabConcurrentExperiments exercises the Lab's once-per-stage
// memoization: independent experiments racing on a shared Lab must
// produce exactly the reports a serial run produces, with every cached
// stage built once. Run under -race in CI.
func TestLabConcurrentExperiments(t *testing.T) {
	cfg := TestConfig()
	cfg.Sim.Scale = 0.03
	cfg.Sim.Registry.ASes = 120

	experiments := func(l *Lab) []func() *Report {
		return []func() *Report{l.Table2, l.Sec53, l.Fig7, l.Table4, l.Fig1a}
	}

	serial := NewLab(cfg)
	want := make([]string, 0, 5)
	for _, exp := range experiments(serial) {
		want = append(want, exp().String())
	}

	conc := NewLab(cfg)
	got := make([]string, len(want))
	var wg sync.WaitGroup
	for i, exp := range experiments(conc) {
		wg.Add(1)
		go func(i int, exp func() *Report) {
			defer wg.Done()
			got[i] = exp().String()
		}(i, exp)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("experiment %d differs between serial and concurrent lab:\nserial:\n%s\nconcurrent:\n%s", i, want[i], got[i])
		}
	}
}

// TestReportsIdenticalAcrossWorkers pins end-to-end determinism of the
// sharded data plane, the analysis plane, the alias plane AND the batched
// scan plane: every report — collection statistics, the Fig 2/3
// entropy-clustering family (run-boundary grouping, parallel
// fingerprints, the concurrent elbow sweep), the APD family (Table 4's
// chunk-parallel window merges, Sec 5.3's and Fig 4's interval-merge
// hitlist split, Sec 5.5's Murdock comparison), the scan family (Fig 6's
// pre-sized extractions, Fig 7's mask-fed matrix, Fig 8's streamed
// multi-day sweep, Table 8's rDNS scans, the §5.4 interned-fingerprint
// pair analyses of Tables 5/6) — must be byte-identical no matter how
// many workers the store, scanner, detector, history scans and clustering
// engine fan out over.
func TestReportsIdenticalAcrossWorkers(t *testing.T) {
	cfg := TestConfig()
	cfg.Sim.Scale = 0.03
	cfg.Sim.Registry.ASes = 120

	experiments := func(l *Lab) []func() *Report {
		return []func() *Report{
			l.Table1, l.Table2, l.Fig1a, l.Fig1c,
			l.Fig2a, l.Fig2b, l.Fig3a, l.Fig3b,
			l.Table4, l.Sec53, l.Fig4, l.Table5, l.Table6, l.Sec55,
			l.Fig6, l.Fig7, l.Fig8, l.Table8, l.Fig10,
		}
	}
	build := func(workers, overlap int) []string {
		c := cfg
		c.Workers = workers
		c.Overlap = overlap
		l := NewLab(c)
		var out []string
		for _, exp := range experiments(l) {
			out = append(out, exp().String())
		}
		return out
	}
	// Reference: one worker, fully serial day loop (overlap depth 1).
	ref := build(1, 1)
	for _, tc := range []struct{ workers, overlap int }{
		{4, 1}, {16, 1}, // data parallelism only
		{1, 2}, {4, 2}, {16, 3}, // orchestrated day loop on top
	} {
		got := build(tc.workers, tc.overlap)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d overlap=%d: report %d differs:\nserial:\n%s\ngot:\n%s",
					tc.workers, tc.overlap, i, ref[i], got[i])
			}
		}
	}
}

// TestAPDNarrowingEquivalence pins the O(1)-per-day near-aliased
// bookkeeping: before each later APD day, the candidates the running
// mask keeps must be exactly those the old O(days²) full-history scan
// would keep.
func TestAPDNarrowingEquivalence(t *testing.T) {
	cfg := TestConfig()
	cfg.Sim.Scale = 0.03
	cfg.Sim.Registry.ASes = 120
	p := New(cfg)
	p.Collect()
	day := p.World.Horizon()
	p.RunAPD(day)
	b := p.Builder()
	for d := 1; d < 5; d++ {
		// Old condition over the full history, evaluated on the candidate
		// set as it stands before the next narrowing.
		expected := map[ip6.Prefix]bool{}
		for _, c := range b.cands {
			for di := 0; di < b.hist.Len(); di++ {
				if b.hist.MergedAt(c.Prefix, di, b.hist.Len()).Count() >= 12 {
					expected[c.Prefix] = true
					break
				}
			}
		}
		p.RunAPD(day + d)
		if len(b.cands) != len(expected) {
			t.Fatalf("day %d: kept %d candidates, history scan keeps %d",
				d, len(b.cands), len(expected))
		}
		for _, c := range b.cands {
			if !expected[c.Prefix] {
				t.Errorf("day %d: kept %v, which the history scan drops", d, c.Prefix)
			}
		}
	}
}

func TestSVGOutputs(t *testing.T) {
	for name, svg := range map[string]string{
		"fig1c": lab.Fig1cSVG(),
		"fig6":  lab.Fig6SVG(),
	} {
		if !strings.HasPrefix(svg, "<svg") {
			t.Errorf("%s: not an SVG", name)
		}
	}
	a, b := lab.Fig5SVGs()
	if !strings.HasPrefix(a, "<svg") || !strings.HasPrefix(b, "<svg") {
		t.Error("fig5 SVGs malformed")
	}
}
