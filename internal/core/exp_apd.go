package core

import (
	"fmt"
	"sort"

	"expanse/internal/apd"
	"expanse/internal/bgp"
	"expanse/internal/fingerprint"
	"expanse/internal/ip6"
	"expanse/internal/probe"
	"expanse/internal/stats"
	"expanse/internal/wire"
	"expanse/internal/zesplot"
)

// Table3 reproduces the fan-out example: the 16 pseudo-random targets of
// 2001:db8:407:8000::/64, one per /68 subprefix.
func (l *Lab) Table3() *Report {
	r := &Report{ID: "Table 3", Title: "Multi-level APD fan-out for 2001:db8:407:8000::/64"}
	p := ip6.MustParsePrefix("2001:db8:407:8000::/64")
	for _, a := range apd.FanOut(p) {
		r.addf("%s", a.Expanded())
	}
	return r
}

// Table4 reproduces the sliding-window study: unstable prefixes under
// window sizes of 1 to 6 merged days over 14 APD days (window = total
// days merged; 1 = no smoothing).
func (l *Lab) Table4() *Report {
	l.ensureAPDDays(14)
	r := &Report{ID: "Table 4", Title: "Impact of sliding window on unstable prefix count"}
	line1, line2 := "window:  ", "unstable:"
	prev := -1
	for w := 1; w <= 6; w++ {
		u := l.unstablePrefixes(w)
		line1 += fmt.Sprintf(" %5d", w)
		line2 += fmt.Sprintf(" %5d", u)
		if w == l.P.Cfg.APDWindow && prev > 0 {
			r.addf("reduction at window %d vs 1: %.0f%%", w, 100*(1-float64(u)/float64(prev)))
		}
		if w == 1 {
			prev = u
		}
	}
	r.Lines = append([]string{line1, line2}, r.Lines...)
	return r
}

// Sec53 reproduces the de-aliasing impact numbers: hitlist share removed,
// AS and prefix coverage change, and the Amazon concentration.
func (l *Lab) Sec53() *Report {
	l.ensureAPD()
	r := &Report{ID: "Sec 5.3", Title: "Impact of de-aliasing on the hitlist"}
	all := l.P.Hitlist().Sorted()
	clean, aliased, _ := l.hitlistSplit()
	r.addf("hitlist before filtering: %d", len(all))
	r.addf("after removing aliased:  %d (%.1f%% remain)", len(clean), 100*float64(len(clean))/float64(len(all)))
	r.addf("aliased addresses:       %d (%.1f%%)", len(aliased), 100*float64(len(aliased))/float64(len(all)))

	asCover := func(addrs []ip6.Addr) (int, int) {
		ases, pfx := map[bgp.ASN]bool{}, map[ip6.Prefix]bool{}
		for _, a := range addrs {
			if p, asn, ok := l.P.World.Table.Lookup(a); ok {
				ases[asn] = true
				pfx[p] = true
			}
		}
		return len(ases), len(pfx)
	}
	asAll, pfxAll := asCover(all)
	asClean, pfxClean := asCover(clean)
	r.addf("AS coverage: %d -> %d (lost %d)", asAll, asClean, asAll-asClean)
	r.addf("prefix coverage: %d -> %d (-%.1f%%)", pfxAll, pfxClean, 100*(1-float64(pfxClean)/float64(maxInt(pfxAll, 1))))

	// Where do aliased addresses live? (The paper: mostly Amazon /48s.)
	asCount := map[bgp.ASN]int{}
	for _, a := range aliased {
		if asn, ok := l.P.World.Table.Origin(a); ok {
			asCount[asn]++
		}
	}
	top := ""
	type kv struct {
		asn bgp.ASN
		c   int
	}
	var list []kv
	for a, c := range asCount {
		list = append(list, kv{a, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].asn < list[j].asn // deterministic tie-break over map order
	})
	for i := 0; i < 3 && i < len(list); i++ {
		top += fmt.Sprintf(" %s=%.1f%%", l.P.World.Table.AS(list[i].asn).Name,
			100*float64(list[i].c)/float64(maxInt(len(aliased), 1)))
	}
	r.addf("top ASes among aliased addresses:%s", top)

	// Ground-truth check (simulator only): detection quality.
	tp, fp, fn := 0, 0, 0
	for _, a := range aliased {
		if l.P.World.GroundTruthAliased(a) {
			tp++
		} else {
			fp++
		}
	}
	for _, a := range clean {
		if l.P.World.GroundTruthAliased(a) {
			fn++
		}
	}
	r.addf("ground truth: precision %.3f, recall %.3f",
		float64(tp)/float64(maxInt(tp+fp, 1)), float64(tp)/float64(maxInt(tp+fn, 1)))
	return r
}

// Fig4 reproduces the prefix/AS concentration curves for aliased,
// non-aliased, and all hitlist addresses.
func (l *Lab) Fig4() *Report {
	l.ensureAPD()
	r := &Report{ID: "Fig 4", Title: "Prefix and AS distribution: aliased vs non-aliased vs all"}
	all := l.P.Hitlist().Sorted()
	clean, aliased, _ := l.hitlistSplit()
	points := stats.LogPoints(1000)
	header := fmt.Sprintf("%-24s", "population")
	for _, x := range points {
		header += fmt.Sprintf(" %6d", x)
	}
	r.Lines = append(r.Lines, header)
	for _, row := range []struct {
		name  string
		addrs []ip6.Addr
		byAS  bool
	}{
		{"All IPs [AS]", all, true},
		{"All IPs [Prefix]", all, false},
		{"Aliased IPs [AS]", aliased, true},
		{"Aliased IPs [Prefix]", aliased, false},
		{"Non-aliased [AS]", clean, true},
		{"Non-aliased [Prefix]", clean, false},
	} {
		conc := l.concentrationOf(ip6.Addrs(row.addrs), row.byAS)
		line := fmt.Sprintf("%-24s", row.name)
		for _, f := range conc.Curve(points) {
			line += fmt.Sprintf(" %6.3f", f)
		}
		r.Lines = append(r.Lines, line)
	}
	// The headline shape: aliased concentrated in very few ASes.
	ac := l.concentrationOf(ip6.Addrs(aliased), true)
	nc := l.concentrationOf(ip6.Addrs(clean), true)
	r.addf("top-1 AS share: aliased %.2f vs non-aliased %.2f", ac.TopFraction(1), nc.TopFraction(1))
	return r
}

// concentrationOf builds the AS (or prefix) concentration of a
// population, given as a slice (ip6.Addrs) or a set's cached sorted view
// (ShardSet.SortedSeq).
func (l *Lab) concentrationOf(addrs ip6.AddrSeq, byAS bool) *stats.Concentration {
	asC, pfxC := map[bgp.ASN]int{}, map[ip6.Prefix]int{}
	for i := 0; i < addrs.Len(); i++ {
		if p, asn, ok := l.P.World.Table.Lookup(addrs.At(i)); ok {
			asC[asn]++
			pfxC[p]++
		}
	}
	if byAS {
		return stats.NewConcentration(asC)
	}
	return stats.NewConcentration(pfxC)
}

// Fig5 reproduces the APD zesplot pair: ICMP responses without APD
// filtering, and the detected aliased prefixes.
func (l *Lab) Fig5() *Report {
	l.ensureScanFull()
	l.ensureAPD()
	r := &Report{ID: "Fig 5", Title: "Responses to ICMP echo: full input vs detected aliased prefixes"}
	icmp := l.scanFull.Responsive(wire.ICMPv6)
	counts, _ := l.prefixCounts(ip6.Addrs(icmp))
	r.addf("(a) prefixes with ICMP responses (no APD): %d, responses: %d", len(counts), len(icmp))

	aliasedPrefixes := l.filter().AliasedPrefixes()
	// The "hook": aliased /48s by AS.
	by48 := map[bgp.ASN]int{}
	n48 := 0
	for _, p := range aliasedPrefixes {
		if p.Bits() == 48 {
			n48++
			if asn, ok := l.P.World.Table.Origin(p.Addr()); ok {
				by48[asn]++
			}
		}
	}
	r.addf("(b) detected aliased prefixes: %d (%.1f%% of plotted)", len(aliasedPrefixes),
		100*float64(len(aliasedPrefixes))/float64(maxInt(len(counts), 1)))
	amazon := by48[bgp.FindASN("Amazon")]
	incap := by48[bgp.FindASN("Incapsula")]
	r.addf("aliased /48s: %d total; Amazon %d (outer hook), Incapsula %d (inner hook)", n48, amazon, incap)
	return r
}

// Fig5SVGs returns the two SVG documents of Figure 5.
func (l *Lab) Fig5SVGs() (noAPD, aliased string) {
	l.ensureScanFull()
	l.ensureAPD()
	icmp := l.scanFull.Responsive(wire.ICMPv6)
	counts, _ := l.prefixCounts(ip6.Addrs(icmp))
	items := l.allPrefixItems(counts)
	noAPD = zesplot.SVG(items, zesplot.Options{Sized: false, Title: "Fig 5a: ICMP responses without APD"})
	var alItems []zesplot.Item
	for _, p := range l.filter().AliasedPrefixes() {
		asn, _ := l.P.World.Table.Origin(p.Addr())
		alItems = append(alItems, zesplot.Item{Prefix: p, ASN: asn, Value: float64(counts[p] + 1)})
	}
	aliased = zesplot.SVG(alItems, zesplot.Options{Sized: false, Title: "Fig 5b: detected aliased prefixes"})
	return noAPD, aliased
}

// pairRefSamples folds one target's two pair probes into the interned
// sample slice, First before Second, skipping unanswered probes — the
// same interleave the per-probe path produced from []Pair.
func pairRefSamples(samples []fingerprint.RefSample, cols *probe.PairColumns, i int) []fingerprint.RefSample {
	for _, c := range [2]*wire.ResultColumns{&cols.First, &cols.Second} {
		if c.OK.Get(i) {
			samples = append(samples, fingerprint.RefSample{
				SentAt:   c.SentAt[i],
				HopLimit: c.HopLimit[i],
				Ref:      c.TCPRef[i],
				TSVal:    c.TSVal[i],
			})
		}
	}
	return samples
}

// aliasedFingerprintReports collects §5.4 fingerprint reports over
// aliased /64s whose 16 fan-out addresses all answered TCP/80. The pairs
// are probed on the batched columnar path and analyzed over interned
// fingerprint refs — one pair-column buffer set reused across prefixes,
// no TCPInfo or options-string comparison anywhere.
func (l *Lab) aliasedFingerprintReports() []fingerprint.Report {
	l.ensureAPD()
	day := l.measureDay()
	table := l.P.TCPTable()
	var reports []fingerprint.Report
	var cols probe.PairColumns
	var samples []fingerprint.RefSample
	// Sorted keys pin the per-prefix probe schedule and the reports
	// order; Tabulate's sums are order-insensitive, but the probes
	// themselves should not follow map iteration.
	verdicts := l.verdicts()
	for _, p := range ip6.SortedKeys(verdicts) {
		if !verdicts[p] || p.Bits() != 64 {
			continue
		}
		fo := apd.FanOut(p)
		l.P.ProbePairColumns(fo[:], day, &cols)
		samples = samples[:0]
		answered := 0
		for i := 0; i < apd.Branches; i++ {
			if cols.First.OK.Get(i) {
				answered++
			}
			samples = pairRefSamples(samples, &cols, i)
		}
		if answered < apd.Branches {
			continue // the paper analyzes fully-responsive prefixes only
		}
		reports = append(reports, fingerprint.AnalyzeRefs(samples, table))
	}
	return reports
}

// Table5 reproduces the fingerprint consistency table over aliased /64s.
func (l *Lab) Table5() *Report {
	r := &Report{ID: "Table 5", Title: "Fingerprinting aliased /64 prefixes: inconsistencies per test"}
	reports := l.aliasedFingerprintReports()
	t := fingerprint.Tabulate(reports)
	r.addf("aliased /64 prefixes with all 16 TCP/80 fan-out answers: %d", t.Prefixes)
	names := []string{"iTTL", "Optionstext", "WScale", "MSS", "WSize"}
	per := []int{t.ITTL, t.Options, t.WScale, t.MSS, t.WSize}
	for i, n := range names {
		r.addf("%-12s incs=%-5d cum-incs=%-5d cum-consistent=%d", n, per[i], t.Cumulative[i], t.Prefixes-t.Cumulative[i])
	}
	r.addf("%-12s consistent=%d (%.1f%%)", "Timestamps", t.TSConsistent,
		100*float64(t.TSConsistent)/float64(maxInt(t.Prefixes, 1)))
	return r
}

// Table6 reproduces the validation: the same tests on non-aliased /64s
// with at least 16 responding addresses.
func (l *Lab) Table6() *Report {
	l.ensureScanClean()
	r := &Report{ID: "Table 6", Title: "Validation: consistency of aliased vs non-aliased prefixes"}
	day := l.measureDay()

	// Non-aliased /64s with >= 16 TCP/80-responsive addresses.
	per64 := map[ip6.Prefix][]ip6.Addr{}
	for i, a := range l.scanClean.Addrs {
		if l.scanClean.Masks[i].Has(wire.TCP80) {
			p := ip6.PrefixFrom(a, 64)
			per64[p] = append(per64[p], a)
		}
	}
	var nonAliased []fingerprint.Report
	var cols probe.PairColumns
	var samples []fingerprint.RefSample
	table := l.P.TCPTable()
	for _, p64 := range ip6.SortedKeys(per64) {
		addrs := per64[p64]
		if len(addrs) < 16 {
			continue
		}
		l.P.ProbePairColumns(addrs[:16], day, &cols)
		samples = samples[:0]
		for i := 0; i < 16; i++ {
			samples = pairRefSamples(samples, &cols, i)
		}
		if len(samples) < 16 {
			continue
		}
		nonAliased = append(nonAliased, fingerprint.AnalyzeRefs(samples, table))
	}

	aliasedT := fingerprint.Tabulate(l.aliasedFingerprintReports())
	nonT := fingerprint.Tabulate(nonAliased)
	ai, ac, aid := aliasedT.Shares()
	ni, nc, nid := nonT.Shares()
	r.addf("%-22s %8s %8s %8s  (n)", "Scan type", "Incons.", "Cons.", "Indec.")
	r.addf("%-22s %7.1f%% %7.1f%% %7.1f%%  (%d)", "Non-aliased prefixes", ni*100, nc*100, nid*100, nonT.Prefixes)
	r.addf("%-22s %7.1f%% %7.1f%% %7.1f%%  (%d)", "Aliased prefixes", ai*100, ac*100, aid*100, aliasedT.Prefixes)
	return r
}

// Sec55 reproduces the comparison with Murdock et al.'s static-/96 APD:
// addresses found aliased by each method and probe budgets.
func (l *Lab) Sec55() *Report {
	l.ensureAPD()
	r := &Report{ID: "Sec 5.5", Title: "Multi-level APD vs Murdock et al. static /96"}
	hitlist := l.P.Hitlist().Sorted()
	md := apd.NewMurdockDetector(l.P.World)
	cands := md.Candidates(hitlist)
	verdicts := md.Detect(cands, l.measureDay())
	mf := apd.MurdockFilter(verdicts)

	// Both filters classify the sorted hitlist by linear interval merge;
	// ours is the memoized window-snapshot split.
	_, _, oursBits := l.hitlistSplit()
	theirsBits := mf.Classify(ip6.Addrs(hitlist), l.P.Cfg.Workers)
	oursOnly, theirsOnly, both := 0, 0, 0
	for i := range hitlist {
		ours := oursBits[i]
		theirs := theirsBits[i]
		switch {
		case ours && theirs:
			both++
		case ours:
			oursOnly++
		case theirs:
			theirsOnly++
		}
	}
	r.addf("aliased by both methods:        %d", both)
	r.addf("aliased only by multi-level:    %d", oursOnly)
	r.addf("aliased only by Murdock (/96):  %d", theirsOnly)
	r.addf("probe packets: multi-level %d vs Murdock %d (%.2fx)",
		l.P.APDProbesSent(), md.ProbesSent, float64(md.ProbesSent)/float64(maxInt(l.P.APDProbesSent(), 1)))
	// §5.1 case taxonomy over our verdicts.
	cc := apd.CaseCounts(l.verdicts())
	r.addf("nested-pair cases: both-aliased=%d both-clean=%d more-aliased=%d anomaly(case 4)=%d",
		cc[apd.CaseBothAliased], cc[apd.CaseBothNonAliased], cc[apd.CaseMoreAliasedLessNot], cc[apd.CaseMoreNotLessAliased])
	return r
}
