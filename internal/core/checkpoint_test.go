package core

import (
	"os"
	"strings"
	"testing"
)

func snapTestConfig(workers, overlap int) Config {
	cfg := TestConfig()
	cfg.Sim.Scale = 0.03
	cfg.Sim.Registry.ASes = 120
	cfg.Workers = workers
	cfg.Overlap = overlap
	cfg.EpochSweep = true
	return cfg
}

// baselineRun runs an uninterrupted checkpointing day loop and returns
// the pipeline's published digests.
func baselineRun(t *testing.T, dir string, days int) []string {
	t.Helper()
	cfg := snapTestConfig(8, 2)
	cfg.SnapshotDir = dir
	p := New(cfg)
	p.Collect()
	eps := p.RunDays(p.World.Horizon(), days)
	if err := p.SnapshotErr(); err != nil {
		t.Fatalf("SnapshotErr: %v", err)
	}
	for i := range eps {
		if _, err := os.Stat(EpochPath(dir, i)); err != nil {
			t.Fatalf("missing checkpoint for epoch %d: %v", i, err)
		}
	}
	out := make([]string, len(eps))
	for i, e := range eps {
		out[i] = e.Digest()
	}
	return out
}

// TestResumeByteIdentical pins the persistence plane's core guarantee:
// restarting the day loop from a checkpointed epoch republishes that
// epoch and every later one byte-identically (SHA-256 over the full
// canonical epoch encoding), for every worker count and overlap depth —
// which deliberately need not match the saving run's.
func TestResumeByteIdentical(t *testing.T) {
	const days = 6
	dir := t.TempDir()
	base := baselineRun(t, dir, days)

	// Full workers × overlap matrix at a mid-run resume point.
	const resumeAt = 3
	for _, workers := range []int{1, 4, 16} {
		for _, overlap := range []int{1, 2, 3} {
			rp, ep, err := Resume(snapTestConfig(workers, overlap), dir, resumeAt)
			if err != nil {
				t.Fatalf("Resume(w=%d o=%d): %v", workers, overlap, err)
			}
			if got := ep.Digest(); got != base[resumeAt] {
				t.Fatalf("Resume(w=%d o=%d): epoch %d digest %s != baseline %s",
					workers, overlap, resumeAt, got, base[resumeAt])
			}
			rest := rp.RunDays(ep.Day+1, days-1-resumeAt)
			for i, e := range rest {
				if got := e.Digest(); got != base[resumeAt+1+i] {
					t.Fatalf("Resume(w=%d o=%d): continued epoch %d digest diverged",
						workers, overlap, resumeAt+1+i)
				}
			}
		}
	}

	// Resume from the very first epoch, replaying the whole run.
	rp, ep, err := Resume(snapTestConfig(16, 3), dir, 0)
	if err != nil {
		t.Fatalf("Resume(0): %v", err)
	}
	if ep.Digest() != base[0] {
		t.Fatal("Resume(0): epoch 0 digest diverged")
	}
	rest := rp.RunDays(ep.Day+1, days-1)
	for i, e := range rest {
		if e.Digest() != base[1+i] {
			t.Fatalf("Resume(0): continued epoch %d digest diverged", 1+i)
		}
	}
	if latest := rp.Latest(); latest == nil || latest.Index != days-1 {
		t.Fatal("resumed pipeline did not publish through Latest")
	}
}

// TestResumeRejectsCorruption pins the failure modes: truncated files,
// mismatched config pins, and absent checkpoints must surface as errors
// (never panics, never silently-wrong pipelines).
func TestResumeRejectsCorruption(t *testing.T) {
	const days = 3
	dir := t.TempDir()
	baselineRun(t, dir, days)
	cfg := snapTestConfig(4, 2)

	if _, _, err := Resume(cfg, dir, days+5); err == nil {
		t.Fatal("Resume past the last checkpoint succeeded")
	}
	if _, _, err := Resume(cfg, dir, -1); err == nil {
		t.Fatal("Resume(-1) succeeded")
	}

	other := cfg
	other.Sim.Scale = cfg.Sim.Scale * 2
	if _, _, err := Resume(other, dir, 1); err == nil ||
		!strings.Contains(err.Error(), "config pin") {
		t.Fatalf("config-pin mismatch err = %v", err)
	}

	// Truncate one epoch file: resume through it must error.
	path := EpochPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(cfg, dir, 2); err == nil {
		t.Fatal("Resume over a truncated checkpoint succeeded")
	}
	// Restore and flip one payload byte instead: checksum must catch it.
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 1
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(cfg, dir, 2); err == nil {
		t.Fatal("Resume over a corrupted checkpoint succeeded")
	}
}
