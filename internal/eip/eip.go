// Package eip reimplements Entropy/IP (Foremski, Plonka, Berger, IMC
// 2016) as used in §7 of the hitlist paper: it learns an addressing-
// scheme model from seed addresses — entropy-based segmentation of the
// address into nybble segments, per-segment value mining, and a Bayesian
// network (chain) over segment values — and generates candidate addresses.
//
// The generator implements the paper's §7.1 improvement: instead of
// random sampling, it walks the model exhaustively in probability order
// (best-first), so a constrained scanning budget is spent on the most
// probable addresses.
package eip

import (
	"container/heap"
	"math"
	"sort"

	"expanse/internal/ip6"
	"expanse/internal/stats"
)

// Segment is a run of consecutive nybbles with homogeneous entropy.
type Segment struct {
	Start, End int // nybble indexes, 0-based inclusive
	Entropy    float64
}

// Value is one mined value of a segment with its empirical probability.
type Value struct {
	Bits uint64 // the segment's nybbles packed MSB-first
	P    float64
}

// Model is a learned Entropy/IP model.
type Model struct {
	Segments []Segment
	// Values[s] are segment s's mined values, sorted by P descending.
	Values [][]Value
	// trans[s] maps a value index of segment s-1 to the conditional
	// distribution over segment s's value indexes (Bayesian chain).
	trans []map[int][]float64
	seeds map[ip6.Addr]bool
}

// maxValuesPerSegment caps the mined value list; rarer values are dropped
// (the model focuses budget on probable addresses anyway).
const maxValuesPerSegment = 64

// entropySplitThreshold starts a new segment when adjacent nybble
// entropies differ by more than this.
const entropySplitThreshold = 0.25

// maxSegmentLen bounds segment width so value spaces stay enumerable.
const maxSegmentLen = 4

// Build learns a model from seed addresses. It needs at least 2 seeds.
func Build(seeds []ip6.Addr) *Model {
	m := &Model{seeds: make(map[ip6.Addr]bool, len(seeds))}
	for _, a := range seeds {
		m.seeds[a] = true
	}
	if len(seeds) == 0 {
		return m
	}

	// 1. Per-nybble entropy → segmentation.
	var ent [32]float64
	for j := 0; j < 32; j++ {
		var counts [16]int
		for _, a := range seeds {
			counts[a.Nybble(j)]++
		}
		ent[j] = stats.Entropy4(&counts)
	}
	start := 0
	for j := 1; j <= 32; j++ {
		if j == 32 || math.Abs(ent[j]-ent[j-1]) > entropySplitThreshold || j-start >= maxSegmentLen {
			seg := Segment{Start: start, End: j - 1}
			s := 0.0
			for k := start; k < j; k++ {
				s += ent[k]
			}
			seg.Entropy = s / float64(j-start)
			m.Segments = append(m.Segments, seg)
			start = j
		}
	}

	// 2. Value mining per segment.
	segVal := func(a ip6.Addr, s Segment) uint64 {
		v := uint64(0)
		for k := s.Start; k <= s.End; k++ {
			v = v<<4 | uint64(a.Nybble(k))
		}
		return v
	}
	valIdx := make([]map[uint64]int, len(m.Segments))
	for si, seg := range m.Segments {
		counts := map[uint64]int{}
		for _, a := range seeds {
			counts[segVal(a, seg)]++
		}
		type kv struct {
			v uint64
			c int
		}
		var all []kv
		for v, c := range counts {
			all = append(all, kv{v, c})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].c != all[j].c {
				return all[i].c > all[j].c
			}
			return all[i].v < all[j].v
		})
		if len(all) > maxValuesPerSegment {
			all = all[:maxValuesPerSegment]
		}
		kept := 0
		for _, e := range all {
			kept += e.c
		}
		vals := make([]Value, len(all))
		idx := make(map[uint64]int, len(all))
		for i, e := range all {
			vals[i] = Value{Bits: e.v, P: float64(e.c) / float64(kept)}
			idx[e.v] = i
		}
		m.Values = append(m.Values, vals)
		valIdx[si] = idx
	}

	// 3. Bayesian chain: P(value_s | value_{s-1}) with Laplace smoothing.
	m.trans = make([]map[int][]float64, len(m.Segments))
	for si := 1; si < len(m.Segments); si++ {
		counts := map[int][]float64{}
		for _, a := range seeds {
			pv, ok1 := valIdx[si-1][segVal(a, m.Segments[si-1])]
			cv, ok2 := valIdx[si][segVal(a, m.Segments[si])]
			if !ok1 || !ok2 {
				continue
			}
			row := counts[pv]
			if row == nil {
				row = make([]float64, len(m.Values[si]))
				counts[pv] = row
			}
			row[cv]++
		}
		for _, row := range counts {
			total := 0.0
			for i := range row {
				row[i]++ // Laplace
				total += row[i]
			}
			for i := range row {
				row[i] /= total
			}
		}
		m.trans[si] = counts
	}
	return m
}

// condP returns P(value cv of segment si | value pv of segment si-1),
// falling back to the marginal when the context was never seen.
func (m *Model) condP(si, pv, cv int) float64 {
	if si == 0 {
		return m.Values[0][cv].P
	}
	if row, ok := m.trans[si][pv]; ok {
		return row[cv]
	}
	return m.Values[si][cv].P
}

// partial is a best-first search node: a prefix of segment choices.
type partial struct {
	logP    float64
	choices []int // value index per segment, len = depth
}

type pqueue []*partial

func (q pqueue) Len() int           { return len(q) }
func (q pqueue) Less(i, j int) bool { return q[i].logP > q[j].logP }
func (q pqueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pqueue) Push(x any)        { *q = append(*q, x.(*partial)) }
func (q *pqueue) Pop() any          { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }

// Generate walks the model exhaustively in probability order and returns
// up to budget addresses, most probable first. Seed addresses are
// excluded (the point is learning NEW addresses).
func (m *Model) Generate(budget int) []ip6.Addr {
	if budget <= 0 || len(m.Segments) == 0 {
		return nil
	}
	var out []ip6.Addr
	q := &pqueue{}
	// Beam-bound the frontier so generation stays near-linear in budget.
	maxFrontier := budget*8 + 1024

	for ci := range m.Values[0] {
		heap.Push(q, &partial{logP: math.Log(m.Values[0][ci].P), choices: []int{ci}})
	}
	for q.Len() > 0 && len(out) < budget {
		node := heap.Pop(q).(*partial)
		depth := len(node.choices)
		if depth == len(m.Segments) {
			a := m.assemble(node.choices)
			if !m.seeds[a] {
				out = append(out, a)
			}
			continue
		}
		prev := node.choices[depth-1]
		for ci := range m.Values[depth] {
			p := m.condP(depth, prev, ci)
			if p <= 0 {
				continue
			}
			child := &partial{
				logP:    node.logP + math.Log(p),
				choices: append(append([]int(nil), node.choices...), ci),
			}
			heap.Push(q, child)
		}
		// Trim the frontier: drop the least probable half when oversized.
		if q.Len() > maxFrontier {
			sort.Sort(*q) // heap order is partial; full sort then cut
			*q = (*q)[:maxFrontier/2]
			heap.Init(q)
		}
	}
	return out
}

// assemble builds the address for a full choice vector.
func (m *Model) assemble(choices []int) ip6.Addr {
	var nyb [32]byte
	for si, seg := range m.Segments {
		v := m.Values[si][choices[si]].Bits
		for k := seg.End; k >= seg.Start; k-- {
			nyb[k] = byte(v & 0xf)
			v >>= 4
		}
	}
	return ip6.AddrFromNybbles(nyb)
}

// RandomGenerate is the pre-§7.1 baseline: it samples the chain randomly
// instead of walking it exhaustively, for the ablation benchmark.
func (m *Model) RandomGenerate(budget int, seed int64) []ip6.Addr {
	if budget <= 0 || len(m.Segments) == 0 {
		return nil
	}
	rng := newSplitMix(uint64(seed))
	seen := make(map[ip6.Addr]bool, budget)
	var out []ip6.Addr
	attempts := 0
	for len(out) < budget && attempts < budget*30 {
		attempts++
		choices := make([]int, len(m.Segments))
		prev := 0
		ok := true
		for si := range m.Segments {
			r := float64(rng.next()>>11) / float64(1<<53)
			acc := 0.0
			pick := -1
			for ci := range m.Values[si] {
				acc += m.condP(si, prev, ci)
				if r < acc {
					pick = ci
					break
				}
			}
			if pick < 0 {
				pick = len(m.Values[si]) - 1
			}
			if pick < 0 {
				ok = false
				break
			}
			choices[si] = pick
			prev = pick
		}
		if !ok {
			continue
		}
		a := m.assemble(choices)
		if m.seeds[a] || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}
