package eip

import (
	"math/rand"
	"testing"

	"expanse/internal/ip6"
)

// counterSeeds builds a classic low-nybble-counter scheme: hosts ::1..::N
// in a couple of /64s.
func counterSeeds(n int) []ip6.Addr {
	var out []ip6.Addr
	nets := []ip6.Addr{
		ip6.MustParseAddr("2001:db8:100:1::"),
		ip6.MustParseAddr("2001:db8:100:2::"),
	}
	for i := 0; i < n; i++ {
		out = append(out, ip6.AddrFromUint64(nets[i%2].Hi(), uint64(i/2)+1))
	}
	return out
}

func TestBuildSegments(t *testing.T) {
	m := Build(counterSeeds(200))
	if len(m.Segments) == 0 {
		t.Fatal("no segments")
	}
	// Segments must tile nybbles 0..31 without gaps.
	pos := 0
	for _, s := range m.Segments {
		if s.Start != pos || s.End < s.Start {
			t.Fatalf("segment tiling broken: %+v at pos %d", s, pos)
		}
		if s.End-s.Start+1 > maxSegmentLen {
			t.Fatalf("segment too wide: %+v", s)
		}
		pos = s.End + 1
	}
	if pos != 32 {
		t.Fatalf("segments end at %d", pos)
	}
	// Values exist for every segment and probabilities sum to ~1.
	for si, vals := range m.Values {
		if len(vals) == 0 {
			t.Fatalf("segment %d has no values", si)
		}
		sum := 0.0
		for i, v := range vals {
			sum += v.P
			if i > 0 && vals[i-1].P < v.P {
				t.Fatalf("segment %d values not sorted by P", si)
			}
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("segment %d P sum = %v", si, sum)
		}
	}
}

func TestGenerateLearnsCounterScheme(t *testing.T) {
	// Train on hosts 1..100 per subnet; generation should propose other
	// low IIDs in the SAME subnets (the neighboring unseen addresses).
	seeds := counterSeeds(200)
	m := Build(seeds)
	gen := m.Generate(500)
	if len(gen) == 0 {
		t.Fatal("nothing generated")
	}
	seedSet := map[ip6.Addr]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}
	inNets := 0
	for _, a := range gen {
		if seedSet[a] {
			t.Fatalf("generated a seed address: %v", a)
		}
		hi := a.Hi()
		if hi == ip6.MustParseAddr("2001:db8:100:1::").Hi() || hi == ip6.MustParseAddr("2001:db8:100:2::").Hi() {
			inNets++
		}
	}
	if float64(inNets)/float64(len(gen)) < 0.9 {
		t.Errorf("only %d/%d generated addresses in the seed networks", inNets, len(gen))
	}
}

func TestGenerateUniqueAndBudget(t *testing.T) {
	m := Build(counterSeeds(150))
	gen := m.Generate(100)
	if len(gen) > 100 {
		t.Fatalf("budget exceeded: %d", len(gen))
	}
	seen := map[ip6.Addr]bool{}
	for _, a := range gen {
		if seen[a] {
			t.Fatalf("duplicate generated: %v", a)
		}
		seen[a] = true
	}
}

func TestGenerateCrossProduct(t *testing.T) {
	// The model generalizes by recombining segment values: a subnet that
	// only used IIDs 1..15 should get proposed the IIDs its sibling
	// subnet demonstrated (16..150) — that is how Entropy/IP finds new
	// addresses at all.
	var seeds []ip6.Addr
	popular := ip6.MustParseAddr("2001:db8:a::")
	rare := ip6.MustParseAddr("2001:db8:b::")
	for i := uint64(1); i <= 150; i++ {
		seeds = append(seeds, ip6.AddrFromUint64(popular.Hi(), i))
	}
	for i := uint64(1); i <= 15; i++ {
		seeds = append(seeds, ip6.AddrFromUint64(rare.Hi(), i))
	}
	m := Build(seeds)
	gen := m.Generate(60)
	if len(gen) == 0 {
		t.Fatal("nothing generated")
	}
	rareNew := 0
	for _, a := range gen {
		if a.Hi() == rare.Hi() && a.Lo() > 15 {
			rareNew++
		}
	}
	if rareNew < len(gen)/2 {
		t.Errorf("only %d/%d candidates recombine rare subnet with popular IIDs", rareNew, len(gen))
	}
}

func TestRandomGenerateBaseline(t *testing.T) {
	m := Build(counterSeeds(200))
	gen := m.RandomGenerate(100, 7)
	if len(gen) == 0 {
		t.Fatal("random generator produced nothing")
	}
	seen := map[ip6.Addr]bool{}
	for _, a := range gen {
		if seen[a] {
			t.Fatal("duplicate from random generator")
		}
		seen[a] = true
	}
	// Determinism.
	gen2 := m.RandomGenerate(100, 7)
	if len(gen) != len(gen2) {
		t.Fatal("random generation not deterministic")
	}
	for i := range gen {
		if gen[i] != gen2[i] {
			t.Fatal("random generation not deterministic")
		}
	}
}

func TestBuildDegenerate(t *testing.T) {
	if m := Build(nil); len(m.Segments) != 0 || m.Generate(10) != nil {
		t.Error("empty build should not generate")
	}
	// Single seed: model exists; generation may be empty (everything is
	// a seed) but must not panic.
	m := Build([]ip6.Addr{ip6.MustParseAddr("2001:db8::1")})
	if g := m.Generate(10); len(g) > 10 {
		t.Error("budget exceeded")
	}
}

func TestSLAACSeedsKeepFFFE(t *testing.T) {
	// Training on SLAAC addresses must generate addresses with ff:fe.
	var seeds []ip6.Addr
	rng := rand.New(rand.NewSource(5))
	net := ip6.MustParseAddr("2001:db8:5::")
	for i := 0; i < 200; i++ {
		mac := [6]byte{0x28, 0xfd, 0x80, byte(rng.Intn(4)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		seeds = append(seeds, ip6.FromMAC(net, mac))
	}
	m := Build(seeds)
	gen := m.Generate(50)
	if len(gen) == 0 {
		t.Skip("model memorized all combinations")
	}
	for _, a := range gen {
		if !a.IsSLAAC() {
			t.Fatalf("generated non-SLAAC address %v from SLAAC seeds", a)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	seeds := counterSeeds(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(seeds)
	}
}

func BenchmarkGenerate(b *testing.B) {
	m := Build(counterSeeds(2000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(1000)
	}
}
