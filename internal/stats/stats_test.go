package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConcentration(t *testing.T) {
	c := NewConcentration(map[string]int{"a": 50, "b": 30, "c": 20})
	if c.Groups() != 3 || c.Total() != 100 {
		t.Fatalf("Groups=%d Total=%d", c.Groups(), c.Total())
	}
	if got := c.TopFraction(1); got != 0.5 {
		t.Errorf("TopFraction(1) = %v", got)
	}
	if got := c.TopFraction(2); got != 0.8 {
		t.Errorf("TopFraction(2) = %v", got)
	}
	if got := c.TopFraction(3); got != 1.0 {
		t.Errorf("TopFraction(3) = %v", got)
	}
	if got := c.TopFraction(99); got != 1.0 {
		t.Errorf("TopFraction beyond groups = %v", got)
	}
}

func TestConcentrationMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := map[int]int{}
		for i := 0; i < 50; i++ {
			m[i] = rng.Intn(1000) + 1
		}
		c := NewConcentration(m)
		prev := 0.0
		for x := 1; x <= 50; x++ {
			cur := c.TopFraction(x)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return math.Abs(prev-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLogPoints(t *testing.T) {
	pts := LogPoints(100)
	want := []int{1, 2, 5, 10, 20, 50, 100}
	if len(pts) != len(want) {
		t.Fatalf("LogPoints(100) = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("LogPoints(100) = %v, want %v", pts, want)
		}
	}
	pts = LogPoints(7)
	if pts[len(pts)-1] != 7 {
		t.Errorf("LogPoints must end at max: %v", pts)
	}
}

func TestGini(t *testing.T) {
	even := NewConcentration(map[int]int{0: 10, 1: 10, 2: 10, 3: 10})
	if g := even.Gini(); math.Abs(g) > 1e-9 {
		t.Errorf("even Gini = %v, want 0", g)
	}
	skewed := NewConcentration(map[int]int{0: 1000, 1: 1, 2: 1, 3: 1})
	if g := skewed.Gini(); g < 0.7 {
		t.Errorf("skewed Gini = %v, want high", g)
	}
	if g := NewConcentration(map[int]int{}).Gini(); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
}

func TestCondMatrix(t *testing.T) {
	m := NewCondMatrix([]string{"icmp", "tcp80"})
	// 10 targets respond to ICMP, of which 5 also to TCP80; 2 respond to
	// TCP80 only.
	for i := 0; i < 5; i++ {
		m.Observe([]bool{true, true})
	}
	for i := 0; i < 5; i++ {
		m.Observe([]bool{true, false})
	}
	for i := 0; i < 2; i++ {
		m.Observe([]bool{false, true})
	}
	if got := m.P("tcp80", "icmp"); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("P(tcp80|icmp) = %v, want 0.5", got)
	}
	if got := m.P("icmp", "tcp80"); math.Abs(got-5.0/7.0) > 1e-9 {
		t.Errorf("P(icmp|tcp80) = %v, want 5/7", got)
	}
	if got := m.P("icmp", "icmp"); got != 1.0 {
		t.Errorf("P(x|x) = %v, want 1", got)
	}
	if m.Count("icmp") != 10 || m.Count("tcp80") != 7 {
		t.Errorf("counts: %d, %d", m.Count("icmp"), m.Count("tcp80"))
	}
	if m.P("nope", "icmp") != 0 {
		t.Error("unknown name should give 0")
	}
	if rows := m.Rows(); len(rows) != 2 {
		t.Errorf("Rows() = %d", len(rows))
	}
}

func TestLinearRegression(t *testing.T) {
	// Perfect line y = 2 + 3x.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 8, 11, 14, 17}
	r := LinearRegression(x, y)
	if math.Abs(r.Slope-3) > 1e-9 || math.Abs(r.Intercept-2) > 1e-9 || math.Abs(r.R2-1) > 1e-9 {
		t.Errorf("fit = %+v", r)
	}
	// Noise destroys R².
	yn := []float64{10, 2, 15, 3, 9}
	rn := LinearRegression(x, yn)
	if rn.R2 > 0.5 {
		t.Errorf("noisy R2 = %v", rn.R2)
	}
	// Degenerate inputs.
	if r := LinearRegression([]float64{1}, []float64{2}); r.N != 1 || r.R2 != 0 {
		t.Errorf("single point: %+v", r)
	}
	if r := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); r.R2 != 0 {
		t.Errorf("zero x-variance: %+v", r)
	}
	if r := LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5}); r.R2 != 1 {
		t.Errorf("constant y with varying x should be degenerate-perfect: %+v", r)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 64)
	for _, v := range []int{1, 1, 2, 6, 6, 6, 32, 70, -5} {
		h.Observe(v)
	}
	if h.N != 9 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Buckets[64] != 1 || h.Buckets[0] != 1 {
		t.Error("clamping failed")
	}
	if got := h.FractionAtMost(6); math.Abs(got-7.0/9.0) > 1e-9 {
		t.Errorf("FractionAtMost(6) = %v", got)
	}
	if h.Median() != 6 {
		t.Errorf("Median = %d", h.Median())
	}
}

func TestSampleCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	s := SampleCap(items, 10, rng)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate in sample")
		}
		seen[v] = true
	}
	// No-op below cap, same backing array.
	small := []int{1, 2, 3}
	if got := SampleCap(small, 10, rng); len(got) != 3 {
		t.Errorf("below-cap sample changed length: %d", len(got))
	}
	// Original slice unmodified when sampling.
	for i, v := range items {
		if v != i {
			t.Fatal("SampleCap mutated input")
		}
	}
}

func TestSampleCapUniform(t *testing.T) {
	// Each element should appear with roughly equal frequency.
	rng := rand.New(rand.NewSource(2))
	items := []int{0, 1, 2, 3, 4}
	counts := make([]int, 5)
	const trials = 5000
	for i := 0; i < trials; i++ {
		for _, v := range SampleCap(items, 2, rng) {
			counts[v]++
		}
	}
	for i, c := range counts {
		got := float64(c) / float64(trials)
		if math.Abs(got-0.4) > 0.05 {
			t.Errorf("element %d frequency %v, want ~0.4", i, got)
		}
	}
}

func TestMedianMean(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("Median even = %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("Median empty = %v", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean empty = %v", m)
	}
}

func TestEntropy4(t *testing.T) {
	var c [16]int
	// Constant nybble: zero entropy.
	c[5] = 100
	if h := Entropy4(&c); h != 0 {
		t.Errorf("constant entropy = %v", h)
	}
	// Uniform over 16 symbols: normalized entropy 1.
	for i := range c {
		c[i] = 10
	}
	if h := Entropy4(&c); math.Abs(h-1) > 1e-9 {
		t.Errorf("uniform entropy = %v", h)
	}
	// Uniform over 2 symbols: 1 bit / 4 = 0.25.
	c = [16]int{}
	c[0], c[1] = 50, 50
	if h := Entropy4(&c); math.Abs(h-0.25) > 1e-9 {
		t.Errorf("two-symbol entropy = %v", h)
	}
	// Empty: 0.
	c = [16]int{}
	if h := Entropy4(&c); h != 0 {
		t.Errorf("empty entropy = %v", h)
	}
}

// Property: entropy is always within [0,1].
func TestEntropyBounds(t *testing.T) {
	f := func(vals [16]uint16) bool {
		var c [16]int
		for i, v := range vals {
			c[i] = int(v)
		}
		h := Entropy4(&c)
		return h >= 0 && h <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestObserveMaskMatchesObserve pins the packed-mask observation against
// the []bool path over every possible 5-protocol mask.
func TestObserveMaskMatchesObserve(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	ma, mb := NewCondMatrix(names), NewCondMatrix(names)
	for mask := 0; mask < 1<<5; mask++ {
		v := make([]bool, 5)
		for i := range v {
			v[i] = mask>>i&1 != 0
		}
		ma.Observe(v)
		mb.ObserveMask(uint32(mask))
	}
	for _, y := range names {
		for _, x := range names {
			if ma.P(y, x) != mb.P(y, x) {
				t.Fatalf("P(%s|%s): Observe %v vs ObserveMask %v", y, x, ma.P(y, x), mb.P(y, x))
			}
		}
		if ma.Count(y) != mb.Count(y) {
			t.Fatalf("Count(%s) differs", y)
		}
	}
}

// TestSortedKeys pins the ordered-key helper the maporder analyzer
// points violators at.
func TestSortedKeys(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b"}
	got := SortedKeys(m)
	want := []int{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}
