// Package stats provides the small statistical toolkit used throughout the
// hitlist pipeline: concentration curves ("fraction of addresses in the top
// X ASes", Figures 1b, 4, 9, 10 of the paper), conditional probability
// matrices (Figure 7), simple linear regression (the TCP timestamp R² test
// in §5.4), histograms, and deterministic sampling.
package stats

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// Concentration summarizes how addresses distribute over groups (ASes or
// prefixes). It is built from a count per group and supports CDF queries
// of the form "what fraction of addresses live in the top X groups".
type Concentration struct {
	counts []int // sorted descending
	total  int
}

// NewConcentration builds a concentration curve from group→count data.
func NewConcentration[K comparable](counts map[K]int) *Concentration {
	c := &Concentration{counts: make([]int, 0, len(counts))}
	for _, n := range counts {
		c.counts = append(c.counts, n)
		c.total += n
	}
	sort.Sort(sort.Reverse(sort.IntSlice(c.counts)))
	return c
}

// Groups returns the number of distinct groups.
func (c *Concentration) Groups() int { return len(c.counts) }

// Total returns the total count over all groups.
func (c *Concentration) Total() int { return c.total }

// TopFraction returns the fraction of the total contributed by the top x
// groups. x larger than the number of groups returns 1.
func (c *Concentration) TopFraction(x int) float64 {
	if c.total == 0 {
		return 0
	}
	if x > len(c.counts) {
		x = len(c.counts)
	}
	s := 0
	for _, n := range c.counts[:x] {
		s += n
	}
	return float64(s) / float64(c.total)
}

// Curve evaluates TopFraction at the given support points, producing the
// series plotted in the paper's CDF figures (log-spaced X axis).
func (c *Concentration) Curve(points []int) []float64 {
	out := make([]float64, len(points))
	for i, x := range points {
		out[i] = c.TopFraction(x)
	}
	return out
}

// LogPoints returns 1, 2, 5, 10, 20, 50, ... up to max — the support used
// for the paper's log-X concentration plots.
func LogPoints(max int) []int {
	var pts []int
	for base := 1; base <= max; base *= 10 {
		for _, m := range []int{1, 2, 5} {
			if p := base * m; p <= max {
				pts = append(pts, p)
			}
		}
	}
	if len(pts) == 0 || pts[len(pts)-1] != max {
		pts = append(pts, max)
	}
	return pts
}

// Gini returns the Gini coefficient of the distribution, a single-number
// summary of bias: 0 = perfectly even over groups, →1 = concentrated in
// one group. Used to compare source balance in reports.
func (c *Concentration) Gini() float64 {
	n := len(c.counts)
	if n == 0 || c.total == 0 {
		return 0
	}
	// counts sorted descending; Gini over sorted ascending values.
	var cum, sum float64
	for i := n - 1; i >= 0; i-- {
		v := float64(c.counts[i])
		// position weight: 2*(rank) - n - 1 with ascending rank
		cum += v * float64(2*(n-i)-n-1)
		sum += v
	}
	return cum / (float64(n) * sum)
}

// CondMatrix is a square conditional-probability matrix over named
// protocols: M[y][x] = P(Y responds | X responds). Figure 7.
type CondMatrix struct {
	Names []string
	// joint[i][j] = count of targets responding to both i and j;
	// joint[i][i] = count responding to i.
	joint [][]int
}

// NewCondMatrix creates a matrix over the given protocol names.
func NewCondMatrix(names []string) *CondMatrix {
	m := &CondMatrix{Names: names, joint: make([][]int, len(names))}
	for i := range m.joint {
		m.joint[i] = make([]int, len(names))
	}
	return m
}

// Observe records one target's responsiveness vector (resp[i] = protocol i
// responded).
func (m *CondMatrix) Observe(resp []bool) {
	var mask uint32
	for i, ri := range resp {
		if ri {
			mask |= 1 << i
		}
	}
	m.ObserveMask(mask)
}

// ObserveMask is Observe with the responsiveness vector packed into a
// bitmask (bit i set = protocol i responded) — the form mask-columned
// scans hold natively, so per-observation []bool expansion disappears.
func (m *CondMatrix) ObserveMask(resp uint32) {
	for ri := resp; ri != 0; ri &= ri - 1 {
		row := m.joint[bits.TrailingZeros32(ri)]
		for rj := resp; rj != 0; rj &= rj - 1 {
			row[bits.TrailingZeros32(rj)]++
		}
	}
}

// P returns P(Y=y responds | X=x responds) by name.
func (m *CondMatrix) P(y, x string) float64 {
	yi, xi := m.index(y), m.index(x)
	if yi < 0 || xi < 0 || m.joint[xi][xi] == 0 {
		return 0
	}
	return float64(m.joint[xi][yi]) / float64(m.joint[xi][xi])
}

// Count returns the number of targets responding to protocol x.
func (m *CondMatrix) Count(x string) int {
	xi := m.index(x)
	if xi < 0 {
		return 0
	}
	return m.joint[xi][xi]
}

func (m *CondMatrix) index(name string) int {
	for i, n := range m.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Rows renders the matrix as formatted text rows (Y major), mirroring the
// layout of Figure 7.
func (m *CondMatrix) Rows() []string {
	rows := make([]string, 0, len(m.Names))
	for yi := len(m.Names) - 1; yi >= 0; yi-- {
		row := fmt.Sprintf("%-8s", m.Names[yi])
		for xi := range m.Names {
			row += fmt.Sprintf(" %6.3f", m.P(m.Names[yi], m.Names[xi]))
		}
		rows = append(rows, row)
	}
	return rows
}

// LinReg holds the result of an ordinary least squares fit y = a + b*x.
type LinReg struct {
	Intercept, Slope, R2 float64
	N                    int
}

// LinearRegression fits y against x. With fewer than two points or zero
// variance in x, R2 is 0 and the slope undefined (0).
func LinearRegression(x, y []float64) LinReg {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return LinReg{N: n}
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinReg{N: n}
	}
	b := sxy / sxx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	} else {
		r2 = 1 // y constant and x varies: perfect (degenerate) fit
	}
	return LinReg{Intercept: my - b*mx, Slope: b, R2: r2, N: n}
}

// Histogram counts values into unit buckets [min,max]; values outside are
// clamped. Used for IID hamming-weight analysis (§8).
type Histogram struct {
	Min, Max int
	Buckets  []int
	N        int
}

// NewHistogram creates a histogram over the inclusive integer range.
func NewHistogram(min, max int) *Histogram {
	return &Histogram{Min: min, Max: max, Buckets: make([]int, max-min+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v int) {
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	h.Buckets[v-h.Min]++
	h.N++
}

// FractionAtMost returns the fraction of samples ≤ v.
func (h *Histogram) FractionAtMost(v int) float64 {
	if h.N == 0 {
		return 0
	}
	s := 0
	for i := h.Min; i <= v && i <= h.Max; i++ {
		s += h.Buckets[i-h.Min]
	}
	return float64(s) / float64(h.N)
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	s := 0
	for i, n := range h.Buckets {
		s += (h.Min + i) * n
	}
	return float64(s) / float64(h.N)
}

// Median returns the (lower) median sample value.
func (h *Histogram) Median() int {
	if h.N == 0 {
		return h.Min
	}
	half := (h.N + 1) / 2
	s := 0
	for i, n := range h.Buckets {
		s += n
		if s >= half {
			return h.Min + i
		}
	}
	return h.Max
}

// SampleCap returns up to max elements drawn uniformly without replacement
// from items, deterministically from rng. If len(items) <= max the input
// order is preserved (no copy). This is the paper's "capped random sample
// of at most 100k addresses per AS" (§7.1).
func SampleCap[T any](items []T, max int, rng *rand.Rand) []T {
	if len(items) <= max {
		return items
	}
	// Partial Fisher-Yates over a copied slice.
	cp := make([]T, len(items))
	copy(cp, items)
	for i := 0; i < max; i++ {
		j := i + rng.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:max]
}

// Median returns the median of a float slice (empty → 0). The input is not
// modified.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	cp := make([]float64, len(v))
	copy(cp, v)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Mean returns the arithmetic mean (empty → 0).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Entropy4 returns the Shannon entropy (base 2) of a distribution over 16
// symbols, normalized to [0,1] by dividing by 4 bits — equation (5) of the
// paper. counts holds occurrences per symbol.
func Entropy4(counts *[16]int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h / 4
}

// SortedKeys returns the map's keys in ascending order — the sanctioned
// way to iterate a map whose order could otherwise leak into a report
// or digest (expanselint's maporder analyzer flags the raw range).
// Prefix-keyed maps have their own ip6.SortedKeys in ComparePrefix
// order.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
