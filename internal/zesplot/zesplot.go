// Package zesplot reimplements the paper's zesplot visualization (§3): a
// squarified-treemap rendering of IPv6 prefixes where each prefix is a
// rectangle, ordered by {prefix-size, ASN} so large prefixes land in the
// top-left and the same input always lands in the same spot. Rectangles
// are colored by address/response counts on a log scale. Both the sized
// variant (area from prefix length) and the unsized variant (equal boxes,
// Figures 3b/5/6) are supported. Output is SVG.
package zesplot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
)

// Item is one prefix to plot.
type Item struct {
	Prefix ip6.Prefix
	ASN    bgp.ASN
	// Value colors the rectangle (e.g. number of hitlist addresses or
	// responses inside the prefix). Zero renders white ("no addresses").
	Value float64
}

// Rect is a laid-out rectangle.
type Rect struct {
	X, Y, W, H float64
	Item       Item
}

// Options controls layout and rendering.
type Options struct {
	// Width and Height of the canvas (default 1000×600).
	Width, Height float64
	// Sized weights rectangle areas by prefix size (log scale); unsized
	// gives every prefix the same area (the pattern-spotting variant).
	Sized bool
	// Title is rendered at the top of the SVG.
	Title string
}

func (o *Options) defaults() {
	if o.Width <= 0 {
		o.Width = 1000
	}
	if o.Height <= 0 {
		o.Height = 600
	}
}

// weight returns the area weight of a prefix: sized plots give shorter
// prefixes (larger networks) more area, compressed logarithmically so a
// /19 does not drown out everything.
func weight(p ip6.Prefix, sized bool) float64 {
	if !sized {
		return 1
	}
	// /19 → ~110, /32 → ~97, /64 → 65, /128 → 1.
	return float64(129 - p.Bits())
}

// Sort orders items the zesplot way: by prefix length ascending (big
// prefixes first), then ASN, then address — so a prefix keeps its spot
// across plots with the same input.
func Sort(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.Prefix.Bits() != b.Prefix.Bits() {
			return a.Prefix.Bits() < b.Prefix.Bits()
		}
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		return a.Prefix.Addr().Less(b.Prefix.Addr())
	})
}

// Layout computes the squarified treemap (Bruls et al.) of the items,
// after zesplot ordering. The caller's slice is re-ordered in place.
func Layout(items []Item, opt Options) []Rect {
	opt.defaults()
	Sort(items)
	if len(items) == 0 {
		return nil
	}
	total := 0.0
	weights := make([]float64, len(items))
	for i, it := range items {
		weights[i] = weight(it.Prefix, opt.Sized)
		total += weights[i]
	}
	// Normalize weights to canvas area.
	area := opt.Width * opt.Height
	for i := range weights {
		weights[i] *= area / total
	}

	out := make([]Rect, 0, len(items))
	x, y, w, h := 0.0, 0.0, opt.Width, opt.Height
	i := 0
	for i < len(items) {
		// Fill one row along the shorter side, adding items while the
		// worst aspect ratio improves (the squarify criterion).
		short := math.Min(w, h)
		rowSum := weights[i]
		rowEnd := i + 1
		worst := worstAspect(weights[i:rowEnd], rowSum, short)
		for rowEnd < len(items) {
			nextSum := rowSum + weights[rowEnd]
			nw := worstAspect(weights[i:rowEnd+1], nextSum, short)
			if nw > worst {
				break
			}
			worst = nw
			rowSum = nextSum
			rowEnd++
		}
		// Lay the row: vertical strip when width >= height, else
		// horizontal — which alternates naturally as the free rectangle
		// shrinks, matching the "vertical row, then horizontal row"
		// description in §3.
		thick := rowSum / short
		off := 0.0
		for j := i; j < rowEnd; j++ {
			ext := weights[j] / thick
			var r Rect
			if w >= h {
				r = Rect{X: x, Y: y + off, W: thick, H: ext, Item: items[j]}
			} else {
				r = Rect{X: x + off, Y: y, W: ext, H: thick, Item: items[j]}
			}
			out = append(out, r)
			off += ext
		}
		if w >= h {
			x += thick
			w -= thick
		} else {
			y += thick
			h -= thick
		}
		if w < 0 {
			w = 0
		}
		if h < 0 {
			h = 0
		}
		i = rowEnd
	}
	return out
}

func worstAspect(ws []float64, sum, short float64) float64 {
	if sum <= 0 || short <= 0 {
		return math.Inf(1)
	}
	thick := sum / short
	worst := 0.0
	for _, w := range ws {
		ext := w / thick
		var ar float64
		if ext > thick {
			ar = ext / thick
		} else {
			ar = thick / ext
		}
		if ar > worst {
			worst = ar
		}
	}
	return worst
}

// color maps a value to a white→yellow→red heat ramp on a log scale
// relative to max.
func color(v, max float64) string {
	if v <= 0 {
		return "#ffffff"
	}
	if max <= 1 {
		max = 1
	}
	t := math.Log1p(v) / math.Log1p(max) // 0..1
	// ramp: white (1,1,1) → yellow (1,0.85,0.2) → red (0.85,0.1,0.1)
	var r, g, b float64
	if t < 0.5 {
		u := t * 2
		r, g, b = 1, 1-0.15*u, 1-0.8*u
	} else {
		u := (t - 0.5) * 2
		r, g, b = 1-0.15*u, 0.85-0.75*u, 0.2-0.1*u
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r*255), int(g*255), int(b*255))
}

// SVG renders the items to an SVG document.
func SVG(items []Item, opt Options) string {
	opt.defaults()
	rects := Layout(items, opt)
	max := 0.0
	for _, r := range rects {
		if r.Item.Value > max {
			max = r.Item.Value
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		opt.Width, opt.Height+24, opt.Width, opt.Height+24)
	b.WriteString("\n")
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="4" y="16" font-family="sans-serif" font-size="14">%s</text>`, xmlEscape(opt.Title))
		b.WriteString("\n")
	}
	for _, r := range rects {
		fmt.Fprintf(&b,
			`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#888" stroke-width="0.3"><title>%s AS%d: %.0f</title></rect>`,
			r.X, r.Y+24, r.W, r.H, color(r.Item.Value, max),
			xmlEscape(r.Item.Prefix.String()), r.Item.ASN, r.Item.Value)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// FromCounts builds items from a prefix→count map with AS attribution.
func FromCounts(counts map[ip6.Prefix]int, table *bgp.Table) []Item {
	// Sort (via Layout) re-orders items with full tie-breaks anyway,
	// but the returned slice should never carry map iteration order to
	// callers that skip it.
	items := make([]Item, 0, len(counts))
	for _, p := range ip6.SortedKeys(counts) {
		var asn bgp.ASN
		if a, ok := table.Origin(p.Addr()); ok {
			asn = a
		}
		items = append(items, Item{Prefix: p, ASN: asn, Value: float64(counts[p])})
	}
	return items
}
