package zesplot

import (
	"math"
	"strings"
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
)

func sampleItems() []Item {
	return []Item{
		{Prefix: ip6.MustParsePrefix("2001:db8::/48"), ASN: 2, Value: 10},
		{Prefix: ip6.MustParsePrefix("2a00::/19"), ASN: 1, Value: 5000},
		{Prefix: ip6.MustParsePrefix("2001:db9::/32"), ASN: 3, Value: 0},
		{Prefix: ip6.MustParsePrefix("2001:dead::/32"), ASN: 2, Value: 120},
		{Prefix: ip6.MustParsePrefix("2001:db8:1::/64"), ASN: 2, Value: 7},
		{Prefix: ip6.MustParsePrefix("2001:db8:2::/127"), ASN: 9, Value: 1},
	}
}

func TestSortOrder(t *testing.T) {
	items := sampleItems()
	Sort(items)
	// Shortest prefix first (the /19 in the "top-left"), /127 last.
	if items[0].Prefix.Bits() != 19 {
		t.Errorf("first item /%d, want /19", items[0].Prefix.Bits())
	}
	if items[len(items)-1].Prefix.Bits() != 127 {
		t.Errorf("last item /%d, want /127", items[len(items)-1].Prefix.Bits())
	}
	// Same length → ASN ascending.
	for i := 1; i < len(items); i++ {
		a, b := items[i-1], items[i]
		if a.Prefix.Bits() == b.Prefix.Bits() && a.ASN > b.ASN {
			t.Error("ASN tiebreak violated")
		}
	}
}

func TestLayoutCoversCanvas(t *testing.T) {
	for _, sized := range []bool{true, false} {
		items := sampleItems()
		opt := Options{Width: 800, Height: 400, Sized: sized}
		rects := Layout(items, opt)
		if len(rects) != len(items) {
			t.Fatalf("sized=%v: %d rects", sized, len(rects))
		}
		area := 0.0
		for _, r := range rects {
			if r.W < 0 || r.H < 0 {
				t.Fatalf("negative extent: %+v", r)
			}
			if r.X < -1e-6 || r.Y < -1e-6 || r.X+r.W > 800+1e-6 || r.Y+r.H > 400+1e-6 {
				t.Fatalf("rect outside canvas: %+v", r)
			}
			area += r.W * r.H
		}
		if math.Abs(area-800*400) > 1 {
			t.Errorf("sized=%v: total area %f, want %f", sized, area, 800.0*400)
		}
	}
}

func TestLayoutNoOverlap(t *testing.T) {
	items := sampleItems()
	rects := Layout(items, Options{Width: 500, Height: 500, Sized: true})
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			a, b := rects[i], rects[j]
			xOverlap := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
			yOverlap := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
			if xOverlap > 1e-6 && yOverlap > 1e-6 {
				t.Fatalf("rects %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

func TestUnsizedEqualAreas(t *testing.T) {
	items := sampleItems()
	rects := Layout(items, Options{Width: 600, Height: 300, Sized: false})
	want := 600.0 * 300 / float64(len(items))
	for _, r := range rects {
		if math.Abs(r.W*r.H-want) > 1e-6 {
			t.Errorf("unsized area %f, want %f", r.W*r.H, want)
		}
	}
}

func TestSizedLargerPrefixBigger(t *testing.T) {
	items := sampleItems()
	rects := Layout(items, Options{Width: 600, Height: 300, Sized: true})
	var a19, a127 float64
	for _, r := range rects {
		switch r.Item.Prefix.Bits() {
		case 19:
			a19 = r.W * r.H
		case 127:
			a127 = r.W * r.H
		}
	}
	if a19 <= a127 {
		t.Errorf("/19 area %f not bigger than /127 area %f", a19, a127)
	}
}

func TestStablePlacement(t *testing.T) {
	// Same input prefixes → same spot, regardless of values.
	a := sampleItems()
	b := sampleItems()
	for i := range b {
		b[i].Value *= 42
	}
	ra := Layout(a, Options{Width: 640, Height: 480, Sized: true})
	rb := Layout(b, Options{Width: 640, Height: 480, Sized: true})
	for i := range ra {
		if ra[i].X != rb[i].X || ra[i].Y != rb[i].Y || ra[i].Item.Prefix != rb[i].Item.Prefix {
			t.Fatalf("placement moved for %v", ra[i].Item.Prefix)
		}
	}
}

func TestAspectRatiosReasonable(t *testing.T) {
	// Squarified layout on many equal items should stay near-square.
	var items []Item
	base := ip6.MustParsePrefix("2001:db8::/32")
	for i := uint64(0); i < 100; i++ {
		items = append(items, Item{Prefix: base.Subprefix(48, i), ASN: bgp.ASN(i % 7), Value: float64(i)})
	}
	rects := Layout(items, Options{Width: 500, Height: 500, Sized: false})
	bad := 0
	for _, r := range rects {
		ar := r.W / r.H
		if ar < 1 {
			ar = 1 / ar
		}
		if ar > 8 {
			bad++
		}
	}
	if bad > 5 {
		t.Errorf("%d/100 rectangles have aspect ratio > 8", bad)
	}
}

func TestSVGOutput(t *testing.T) {
	items := sampleItems()
	svg := SVG(items, Options{Title: "Hitlist & <prefixes>", Sized: true})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<rect") != len(items) {
		t.Errorf("rect count = %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "Hitlist &amp; &lt;prefixes&gt;") {
		t.Error("title not escaped")
	}
	// Zero-value prefix rendered white.
	if !strings.Contains(svg, "#ffffff") {
		t.Error("no white rectangle for empty prefix")
	}
}

func TestColorRamp(t *testing.T) {
	if color(0, 100) != "#ffffff" {
		t.Error("zero not white")
	}
	low, mid, high := color(1, 10000), color(100, 10000), color(10000, 10000)
	if low == mid || mid == high || low == high {
		t.Error("color ramp not monotone-ish")
	}
	if high != color(10000, 10000) {
		t.Error("color not deterministic")
	}
}

func TestLayoutEmpty(t *testing.T) {
	if r := Layout(nil, Options{}); r != nil {
		t.Error("empty layout should be nil")
	}
}

func TestFromCounts(t *testing.T) {
	table := bgp.NewTable()
	p := ip6.MustParsePrefix("2001:db8::/32")
	table.Announce(p, 64496)
	items := FromCounts(map[ip6.Prefix]int{p: 42}, table)
	if len(items) != 1 || items[0].ASN != 64496 || items[0].Value != 42 {
		t.Errorf("FromCounts = %+v", items)
	}
}

func BenchmarkLayout(b *testing.B) {
	var items []Item
	base := ip6.MustParsePrefix("2000::/12")
	for i := uint64(0); i < 5000; i++ {
		items = append(items, Item{Prefix: base.Subprefix(32+4*int(i%5), i), ASN: bgp.ASN(i), Value: float64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Layout(items, Options{Sized: true})
	}
}
