package ip6

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseAddrValid(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical RFC 5952
	}{
		{"::", "::"},
		{"::1", "::1"},
		{"1::", "1::"},
		{"2001:db8::1", "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"2001:DB8::1", "2001:db8::1"},
		{"fe80::1:2:3:4", "fe80::1:2:3:4"},
		{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
		{"0:0:0:0:0:0:0:0", "::"},
		{"1:0:0:2:0:0:0:3", "1:0:0:2::3"},                // rightmost longer run wins
		{"1:0:0:0:2:0:0:3", "1::2:0:0:3"},                // leftmost longest run
		{"2001:db8:0:1:1:1:1:1", "2001:db8:0:1:1:1:1:1"}, // no :: for single zero group
		{"::ffff:192.0.2.128", "::ffff:c000:280"},
		{"64:ff9b::192.0.2.33", "64:ff9b::c000:221"},
		{"2001:db8::192.168.1.1", "2001:db8::c0a8:101"},
		{"ff02::2", "ff02::2"},
		{"2001:db8:407:8000::", "2001:db8:407:8000::"},
	}
	for _, c := range cases {
		a, err := ParseAddr(c.in)
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", c.in, err)
			continue
		}
		if got := a.String(); got != c.want {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseAddrInvalid(t *testing.T) {
	cases := []string{
		"", ":", ":::", "1:2:3:4:5:6:7:8:9", "1:2:3:4:5:6:7",
		"2001:db8::1::2", "12345::", "g::1", "1:2:3:4:5:6:7:",
		":1:2:3:4:5:6:7", "::ffff:256.0.0.1", "::ffff:1.2.3",
		"::ffff:1.2.3.4.5", "1.2.3.4", "2001:db8::1 ", " 2001:db8::1",
		"2001:db8:::1",
	}
	for _, c := range cases {
		if a, err := ParseAddr(c); err == nil {
			t.Errorf("ParseAddr(%q) = %v, want error", c, a)
		}
	}
}

// TestFormatMatchesNetip cross-validates our RFC 5952 formatter against the
// standard library for random addresses.
func TestFormatMatchesNetip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFromUint64(hi, lo)
		std := netip.AddrFrom16(a.As16())
		return a.String() == std.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestParseMatchesNetip cross-validates parsing: anything netip parses as
// a pure IPv6 literal, we parse to the same bytes.
func TestParseMatchesNetip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		std := netip.AddrFrom16(AddrFromUint64(hi, lo).As16())
		a, err := ParseAddr(std.String())
		if err != nil {
			return false
		}
		return a.As16() == std.As16()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFromUint64(hi, lo)
		b, err := ParseAddr(a.String())
		return err == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestAs16RoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFromUint64(hi, lo)
		return AddrFrom16(a.As16()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNybbleAccess(t *testing.T) {
	a := MustParseAddr("2001:db8:407:8000:0151:2900:77e9:03a8")
	want := "20010db8040780000151290077e903a8"
	for i := 0; i < 32; i++ {
		got := a.Nybble(i)
		exp := hexVal(want[i])
		if got != exp {
			t.Errorf("nybble %d = %x, want %x", i, got, exp)
		}
	}
}

func hexVal(c byte) byte {
	if c >= '0' && c <= '9' {
		return c - '0'
	}
	return c - 'a' + 10
}

func TestWithNybble(t *testing.T) {
	f := func(hi, lo uint64, idx uint8, v uint8) bool {
		a := AddrFromUint64(hi, lo)
		i := int(idx) % 32
		b := a.WithNybble(i, v)
		if b.Nybble(i) != v&0xf {
			return false
		}
		// All other nybbles unchanged.
		for j := 0; j < 32; j++ {
			if j != i && a.Nybble(j) != b.Nybble(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNybblesRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := AddrFromUint64(hi, lo)
		return AddrFromNybbles(a.Nybbles()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpanded(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	if got, want := a.Expanded(), "2001:0db8:0000:0000:0000:0000:0000:0001"; got != want {
		t.Errorf("Expanded() = %q, want %q", got, want)
	}
}

func TestCompareNextPrev(t *testing.T) {
	a := MustParseAddr("2001:db8::ffff:ffff:ffff:ffff")
	b := a.Next()
	if want := MustParseAddr("2001:db8:0:1::"); b != want {
		t.Errorf("Next() = %v, want %v", b, want)
	}
	if b.Prev() != a {
		t.Errorf("Prev(Next(a)) != a")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less ordering wrong")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"2001:db8::", "2001:db8::", 128},
		{"2001:db8::", "2001:db8::1", 127},
		{"2001:db8::", "2001:db9::", 31},
		{"::", "8000::", 0},
		{"2001:db8::", "2001:db8:0:0:8000::", 64},
	}
	for _, c := range cases {
		a, b := MustParseAddr(c.a), MustParseAddr(c.b)
		if got := a.CommonPrefixLen(b); got != c.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.CommonPrefixLen(a); got != c.want {
			t.Errorf("CommonPrefixLen symmetric (%s,%s) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestSLAACAndMAC(t *testing.T) {
	mac := [6]byte{0x00, 0x1a, 0x2b, 0x3c, 0x4d, 0x5e}
	net := MustParseAddr("2001:db8:1:2::")
	a := FromMAC(net, mac)
	if !a.IsSLAAC() {
		t.Fatalf("FromMAC result %v not detected as SLAAC", a)
	}
	got, ok := a.MAC()
	if !ok || got != mac {
		t.Errorf("MAC() = %v,%v want %v,true", got, ok, mac)
	}
	// The u/l bit must be flipped in the IID.
	if want := MustParseAddr("2001:db8:1:2:21a:2bff:fe3c:4d5e"); a != want {
		t.Errorf("FromMAC = %v, want %v", a, want)
	}
	if MustParseAddr("2001:db8::1").IsSLAAC() {
		t.Error("counter address misdetected as SLAAC")
	}
}

func TestIIDHammingWeight(t *testing.T) {
	if w := MustParseAddr("2001:db8::1").IIDHammingWeight(); w != 1 {
		t.Errorf("weight = %d, want 1", w)
	}
	if w := MustParseAddr("2001:db8::ffff:ffff:ffff:ffff").IIDHammingWeight(); w != 64 {
		t.Errorf("weight = %d, want 64", w)
	}
}

func TestBit(t *testing.T) {
	a := MustParseAddr("8000::1")
	if a.Bit(0) != 1 || a.Bit(1) != 0 || a.Bit(127) != 1 || a.Bit(126) != 0 {
		t.Error("Bit() extraction wrong")
	}
}

func TestXor(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	if x := a.Xor(a); !x.IsZero() {
		t.Error("a^a should be zero")
	}
	b := MustParseAddr("2001:db8::3")
	if x := a.Xor(b); x != MustParseAddr("::2") {
		t.Errorf("xor = %v", x)
	}
}

func BenchmarkParseAddr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = ParseAddr("2001:db8:407:8000:151:2900:77e9:3a8")
	}
}

func BenchmarkFormatAddr(b *testing.B) {
	a := MustParseAddr("2001:db8:407:8000:151:2900:77e9:3a8")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.String()
	}
}

func BenchmarkNybbles(b *testing.B) {
	a := MustParseAddr("2001:db8:407:8000:151:2900:77e9:3a8")
	for i := 0; i < b.N; i++ {
		_ = a.Nybbles()
	}
}

func randAddrs(n int, seed int64) []Addr {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Addr, n)
	for i := range out {
		out[i] = AddrFromUint64(rng.Uint64(), rng.Uint64())
	}
	return out
}
