package ip6

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// NumShards is the fixed shard count of a ShardSet. Shard assignment is a
// pure function of the address (Hash64 & (NumShards-1)), so two sets with
// the same contents always agree shard by shard — the property AddAll and
// the reference-equivalence tests rely on.
const (
	shardBits = 6
	NumShards = 1 << shardBits
)

// ShardSet is the production-scale address set of the data plane: a
// hash-sharded, columnar collection of IPv6 addresses. It replaces the
// single global map[Addr]struct{} (ip6.Set) as the hitlist
// representation; Set remains for small scratch collections.
//
// Layout: each of the NumShards shards holds a membership map plus
// parallel (hi, lo) column arrays in insertion order. Batch mutation
// (AddSlice, AddAll) partitions work by shard and runs shards on parallel
// workers; membership reads take only a shard-local read lock.
//
// Sorted view: Sorted/EachSorted serve a cached globally-sorted view.
// The cache is invalidated by any write and rebuilt at most once per
// mutation epoch — parallel per-shard tail sorts, a k-way merge of the
// tails, and a linear merge with the previous cache — so N consumers of
// the sorted hitlist pay for one (incremental) sort, not N full ones.
//
// Determinism: contents, counts, the sorted view, and the Each iteration
// order (shard-major, insertion order within a shard) are all independent
// of the worker count. A ShardSet never removes addresses — hitlist
// entries "stay indefinitely" (§3) — which is what makes the epoch
// accounting a single monotone counter.
//
// The zero value is an empty set ready to use.
type ShardSet struct {
	workers int
	shards  [NumShards]shard
	count   atomic.Int64 // total addresses; doubles as the mutation epoch

	sortedMu sync.Mutex
	sorted   []Addr // cached sorted view; valid iff len == count

	// compacted, when non-nil, points at the sorted view captured by
	// Compact: the per-shard membership maps are dropped and Contains
	// binary-searches this snapshot instead. Any mutation clears the
	// pointer first (see uncompact), so the fast path never serves a
	// stale view to a caller that could have observed the write.
	compacted atomic.Pointer[[]Addr]
}

type shard struct {
	mu     sync.RWMutex
	m      map[Addr]struct{}
	hi, lo []uint64 // columnar storage, insertion order; append-only

	// sortedN is the insertion-column prefix already covered by the
	// set's global sorted cache, touched only during rebuilds (under the
	// set's sortedMu, never under mu).
	sortedN int
}

// NewShardSet returns a set preallocated for about n addresses, using all
// available CPUs for batch operations.
func NewShardSet(n int) *ShardSet { return NewShardSetWorkers(n, 0) }

// NewShardSetWorkers returns a set with an explicit parallelism cap for
// batch operations (<= 0 selects GOMAXPROCS). The worker count is purely
// a throughput knob: every observable result is identical for every
// value.
func NewShardSetWorkers(n, workers int) *ShardSet {
	s := &ShardSet{workers: workers}
	if per := n / NumShards; per > 0 {
		for i := range s.shards {
			s.shards[i].m = make(map[Addr]struct{}, per)
			s.shards[i].hi = make([]uint64, 0, per)
			s.shards[i].lo = make([]uint64, 0, per)
		}
	}
	return s
}

// shardOf assigns an address to its shard — a pure hash, never dependent
// on insertion history or worker count.
func shardOf(a Addr) int { return int(a.Hash64() & (NumShards - 1)) }

func (s *ShardSet) workerCount() int {
	w := s.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > NumShards {
		w = NumShards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// add inserts a into its shard, reporting whether it was new. Callers
// hold no locks; the shard lock is taken here. A nil membership map with
// populated columns means the shard was compacted: the map is rebuilt
// from the columns before the insert, so compaction never admits
// duplicates.
func (sh *shard) add(a Addr) bool {
	if sh.m == nil {
		sh.m = make(map[Addr]struct{}, len(sh.hi))
		for i := range sh.hi {
			sh.m[Addr{hi: sh.hi[i], lo: sh.lo[i]}] = struct{}{}
		}
	}
	if _, ok := sh.m[a]; ok {
		return false
	}
	sh.m[a] = struct{}{}
	sh.hi = append(sh.hi, a.hi)
	sh.lo = append(sh.lo, a.lo)
	return true
}

// Add inserts a, reporting whether it was newly added.
func (s *ShardSet) Add(a Addr) bool {
	s.uncompact()
	sh := &s.shards[shardOf(a)]
	sh.mu.Lock()
	isNew := sh.add(a)
	sh.mu.Unlock()
	if isNew {
		s.count.Add(1)
	}
	return isNew
}

// Contains reports membership. On a live set it takes only the owning
// shard's read lock, so lookups scale with readers and never contend
// across shards; on a compacted set it binary-searches the captured
// sorted view without touching any lock.
func (s *ShardSet) Contains(a Addr) bool {
	if snap := s.compacted.Load(); snap != nil {
		sorted := *snap
		i := sort.Search(len(sorted), func(k int) bool { return !sorted[k].Less(a) })
		return i < len(sorted) && sorted[i] == a
	}
	sh := &s.shards[shardOf(a)]
	sh.mu.RLock()
	if sh.m != nil || len(sh.hi) == 0 {
		_, ok := sh.m[a]
		sh.mu.RUnlock()
		return ok
	}
	// Compacted shard whose map has not been rebuilt yet (a mutation
	// cleared the compaction pointer moments ago): rebuild and answer.
	sh.mu.RUnlock()
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[Addr]struct{}, len(sh.hi))
		for i := range sh.hi {
			sh.m[Addr{hi: sh.hi[i], lo: sh.lo[i]}] = struct{}{}
		}
	}
	_, ok := sh.m[a]
	sh.mu.Unlock()
	return ok
}

// Compact drops the per-shard membership maps and the insertion
// columns' append slack — on a frozen hitlist the sorted column IS the
// membership structure, and the maps plus growth slack are the dominant
// per-address cost of the store (see MemBytes). Contains switches to a
// lock-free binary search over the sorted view captured here; Each,
// Sorted, ShardSeqs and every other read path are untouched. The set
// stays fully mutable: the first write after Compact rebuilds the
// affected shard maps from the insertion columns, at the cost of one
// pass over the shard. Compact is idempotent and safe to call
// concurrently with readers (but not with writers, like any mutation).
func (s *ShardSet) Compact() {
	sorted := s.Sorted()
	s.compacted.Store(&sorted)
	s.clipAndDropMaps()
}

// CompactCols drops the membership maps and append slack WITHOUT
// building a sorted view — the compaction flavor for write-complete
// sets whose remaining readers are columnar (Each, ShardSeqs, Len): a
// sorted view they never consult would cost 16 bytes per address. A
// later Contains falls back to a lazy per-shard map rebuild, and a
// later mutation behaves exactly as after Compact.
func (s *ShardSet) CompactCols() { s.clipAndDropMaps() }

// clipAndDropMaps releases every shard's membership map and reallocates
// its insertion columns at exact length (append growth leaves up to ~2×
// slack on sets built by many small batches).
func (s *ShardSet) clipAndDropMaps() {
	runChunks(NumShards, s.workerCount(), func(lo, hi int) {
		for si := lo; si < hi; si++ {
			sh := &s.shards[si]
			sh.mu.Lock()
			sh.m = nil
			if cap(sh.hi) > len(sh.hi) {
				sh.hi = append(make([]uint64, 0, len(sh.hi)), sh.hi...)
			}
			if cap(sh.lo) > len(sh.lo) {
				sh.lo = append(make([]uint64, 0, len(sh.lo)), sh.lo...)
			}
			sh.mu.Unlock()
		}
	})
}

// Compacted reports whether the set is currently in compacted form.
func (s *ShardSet) Compacted() bool { return s.compacted.Load() != nil }

// uncompact clears the compaction snapshot before a mutation, so the
// lock-free Contains fast path cannot serve a view that predates a write
// the caller already observed. Shard maps rebuild lazily in add.
func (s *ShardSet) uncompact() {
	if s.compacted.Load() != nil {
		s.compacted.Store(nil)
	}
}

// mapEntryBytes is the accounting estimate for one map[Addr]struct{}
// entry: Go's map buckets hold 8 slots of (tophash byte + 16-byte key)
// plus an overflow pointer, and run at ~²⁄₃ average load — about 28
// bytes per resident entry. An estimate, not a measurement; MemBytes is
// for relative plane accounting, pprof is the ground truth.
const mapEntryBytes = 28

// MemBytes estimates the set's resident heap footprint: insertion
// columns (by capacity), the cached sorted view if built, and the
// per-shard membership maps unless compacted away. The breakdown drives
// the bytes-per-address audit in EXPERIMENTS.md.
func (s *ShardSet) MemBytes() (total, maps, columns, sortedView int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		columns += int64(cap(sh.hi)+cap(sh.lo)) * 8
		maps += int64(len(sh.m)) * mapEntryBytes
		sh.mu.RUnlock()
	}
	s.sortedMu.Lock()
	sortedView = int64(cap(s.sorted)) * 16
	s.sortedMu.Unlock()
	return maps + columns + sortedView, maps, columns, sortedView
}

// Len returns the number of addresses.
func (s *ShardSet) Len() int { return int(s.count.Load()) }

// AddSlice inserts every address in addrs in parallel, returning how many
// were new. Within each shard, insertion order follows input order, so
// iteration order is independent of the worker count.
func (s *ShardSet) AddSlice(addrs []Addr) int {
	n, _ := s.addBatch(addrs, false)
	return n
}

// AddSliceCollect inserts every address in addrs in parallel and returns
// the newly added ones (each distinct new address exactly once, in
// shard-major order). This is the batch analog of "Add returned true",
// used for new-address attribution without a second membership pass.
func (s *ShardSet) AddSliceCollect(addrs []Addr) []Addr {
	_, fresh := s.addBatch(addrs, true)
	return fresh
}

func (s *ShardSet) addBatch(addrs []Addr, collect bool) (int, []Addr) {
	n := len(addrs)
	if n == 0 {
		return 0, nil
	}
	s.uncompact()
	w := s.workerCount()
	// Phase 1: each contiguous input chunk buckets its element indices by
	// shard, in parallel. (Indices fit int32: a batch beyond 2^31
	// addresses is a >32GB argument slice, far past any hitlist batch.)
	// Bucketing pays off even at w=1: phase 2 then takes each shard lock
	// once and fills each shard map in a tight run — about 2× faster than
	// per-address lock/insert on a batch of 10⁶ (see the benchmarks).
	chunk := (n + w - 1) / w
	nChunks := (n + chunk - 1) / chunk
	buckets := make([][NumShards][]int32, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			b := &buckets[c]
			for i := lo; i < hi; i++ {
				si := shardOf(addrs[i])
				b[si] = append(b[si], int32(i))
			}
		}(c)
	}
	wg.Wait()
	// Phase 2: each worker owns a contiguous shard range and visits only
	// its shards' bucketed indices, chunk-major — chunks partition the
	// input in order, so per-shard insertion order equals input order
	// regardless of w, and no two workers ever touch the same shard.
	counts := make([]int, NumShards)
	var freshPer [][]Addr
	if collect {
		freshPer = make([][]Addr, NumShards)
	}
	runChunks(NumShards, w, func(slo, shi int) {
		for si := slo; si < shi; si++ {
			sh := &s.shards[si]
			sh.mu.Lock()
			for c := 0; c < nChunks; c++ {
				for _, i := range buckets[c][si] {
					if sh.add(addrs[i]) {
						counts[si]++
						if collect {
							freshPer[si] = append(freshPer[si], addrs[i])
						}
					}
				}
			}
			sh.mu.Unlock()
		}
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total > 0 {
		s.count.Add(int64(total))
	}
	if !collect {
		return total, nil
	}
	fresh := make([]Addr, 0, total)
	for _, f := range freshPer {
		fresh = append(fresh, f...)
	}
	return total, fresh
}

// AddAll inserts every address of other, returning how many were new.
// Shard assignment is content-determined, so shard i of other feeds only
// shard i of s and all shards proceed in parallel without cross-locking.
func (s *ShardSet) AddAll(other *ShardSet) int {
	s.uncompact()
	views := other.ShardSeqs()
	counts := make([]int, NumShards)
	runChunks(NumShards, s.workerCount(), func(slo, shi int) {
		for si := slo; si < shi; si++ {
			v := views[si]
			if v.Len() == 0 {
				continue
			}
			sh := &s.shards[si]
			sh.mu.Lock()
			for i := 0; i < v.Len(); i++ {
				if sh.add(v.At(i)) {
					counts[si]++
				}
			}
			sh.mu.Unlock()
		}
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total > 0 {
		s.count.Add(int64(total))
	}
	return total
}

// Each calls fn for every address — shard-major, insertion order within a
// shard — stopping early if fn returns false. Unlike a Go map walk the
// order is deterministic, and independent of the worker count used to
// build the set.
func (s *ShardSet) Each(fn func(Addr) bool) {
	for i := range s.shards {
		v := s.shardView(i)
		for j := range v.Hi {
			if !fn(Addr{hi: v.Hi[j], lo: v.Lo[j]}) {
				return
			}
		}
	}
}

// shardView captures a shard's column headers under its read lock.
// Appends by concurrent writers go beyond the captured length and never
// move earlier elements, so iterating the view afterwards is safe.
func (s *ShardSet) shardView(i int) ShardCols {
	sh := &s.shards[i]
	sh.mu.RLock()
	v := ShardCols{Hi: sh.hi, Lo: sh.lo}
	sh.mu.RUnlock()
	return v
}

// ShardSeqs returns point-in-time columnar views of all shards, the unit
// of work for shard-parallel consumers (Store.Stats attribution, APD
// candidate bucketing).
func (s *ShardSet) ShardSeqs() []ShardCols {
	out := make([]ShardCols, NumShards)
	for i := range out {
		out[i] = s.shardView(i)
	}
	return out
}

// Sorted returns the addresses in ascending numeric order. The returned
// slice is the set's cached sorted view, rebuilt at most once per
// mutation epoch and SHARED between callers: treat it as read-only. The
// rebuild sorts dirty shards' columns in parallel and k-way merges the
// shard streams in address order.
func (s *ShardSet) Sorted() []Addr {
	s.sortedMu.Lock()
	defer s.sortedMu.Unlock()
	// Writes only ever grow the set, so the cache is valid exactly when
	// it covers every address counted so far.
	n := int(s.count.Load())
	if s.sorted != nil && len(s.sorted) == n {
		return s.sorted
	}
	s.sorted = s.rebuildSorted()
	return s.sorted
}

// EachSorted calls fn for every address in ascending order, stopping
// early if fn returns false. It consumes the cached sorted view.
func (s *ShardSet) EachSorted(fn func(Addr) bool) {
	for _, a := range s.Sorted() {
		if !fn(a) {
			return
		}
	}
}

// SortedSeq returns the cached sorted view as an AddrSeq, for consumers
// (e.g. the scan engine) that index targets without copying them.
func (s *ShardSet) SortedSeq() AddrSeq { return Addrs(s.Sorted()) }

// FrozenView is an immutable handle on a ShardSet's sorted view at one
// mutation epoch. Sorted-view rebuilds always allocate a fresh slice and
// leave the previous cache intact for existing readers (see
// rebuildSorted), so a frozen view keeps serving exactly the addresses
// it was taken over, no matter how the live set mutates afterwards —
// the pin an epoch snapshot needs so concurrent readers never observe a
// half-grown hitlist. The zero value is an empty view.
type FrozenView struct {
	addrs []Addr
}

// Freeze captures the current sorted view as an immutable snapshot. The
// capture costs a cached-view lookup (one incremental rebuild at most,
// shared with every other sorted-view consumer), never a copy.
func (s *ShardSet) Freeze() FrozenView { return FrozenView{addrs: s.Sorted()} }

// FrozenOf wraps an already-sorted address slice as a frozen view (test
// fixtures, ad-hoc snapshots). The slice must not be mutated afterwards.
func FrozenOf(sorted []Addr) FrozenView { return FrozenView{addrs: sorted} }

// Len returns the number of addresses in the snapshot.
func (v FrozenView) Len() int { return len(v.addrs) }

// Sorted returns the snapshot's addresses in ascending order. Read-only.
func (v FrozenView) Sorted() []Addr { return v.addrs }

// Seq returns the snapshot as an indexed sequence.
func (v FrozenView) Seq() AddrSeq { return Addrs(v.addrs) }

// At returns the i-th address of the snapshot.
func (v FrozenView) At(i int) Addr { return v.addrs[i] }

// Contains reports membership in the snapshot by binary search. Unlike
// the live set's Contains it never sees addresses added after Freeze —
// epoch-consistent reads are the point of the handle.
func (v FrozenView) Contains(a Addr) bool {
	i := sort.Search(len(v.addrs), func(k int) bool { return !v.addrs[k].Less(a) })
	return i < len(v.addrs) && v.addrs[i] == a
}

// rebuildSorted is the incremental sorted-view build: each shard's
// unsorted insertion tail is copied and sorted in parallel, the sorted
// tails are k-way merged, and the result is two-way merged with the
// previous global cache into a freshly allocated slice. Per rebuild that
// costs O(new·log(new)) sorting plus one linear merge, and the set's
// resident footprint stays at insertion columns + one sorted cache —
// no per-shard sorted mirrors. Called with sortedMu held; the insertion
// columns are read through point-in-time views and never mutated here,
// and the previous cache slice is left intact for existing readers.
func (s *ShardSet) rebuildSorted() []Addr {
	tails := make([]ShardCols, NumShards)
	runChunks(NumShards, s.workerCount(), func(slo, shi int) {
		for si := slo; si < shi; si++ {
			sh := &s.shards[si]
			v := s.shardView(si)
			if n := len(v.Hi); sh.sortedN < n {
				tailHi := append([]uint64(nil), v.Hi[sh.sortedN:n]...)
				tailLo := append([]uint64(nil), v.Lo[sh.sortedN:n]...)
				sortColumns(tailHi, tailLo)
				tails[si] = ShardCols{Hi: tailHi, Lo: tailLo}
				sh.sortedN = n
			}
		}
	})
	fresh := mergeShardCols(tails)
	if len(s.sorted) == 0 {
		return fresh
	}
	if len(fresh) == 0 {
		return s.sorted
	}
	old := s.sorted
	out := make([]Addr, 0, len(old)+len(fresh))
	i, j := 0, 0
	for i < len(old) && j < len(fresh) {
		if old[i].Less(fresh[j]) {
			out = append(out, old[i])
			i++
		} else {
			out = append(out, fresh[j])
			j++
		}
	}
	out = append(out, old[i:]...)
	out = append(out, fresh[j:]...)
	return out
}

// runChunks splits [0,n) into up to w contiguous chunks and runs fn on
// each concurrently. With w == 1 it runs inline.
func runChunks(n, w int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sortColumns sorts the parallel (hi, lo) arrays in ascending (hi, lo)
// order: an iterative median-of-three quicksort with an insertion-sort
// tail, working directly on the columns so no []Addr is materialized.
// Hand-rolled deliberately: a sort.Interface adapter over the same
// columns measures 2.4× slower at 2^20 elements (interface calls per
// comparison/swap dominate); correctness is pinned against sort.Slice by
// TestSortColumnsProperty.
func sortColumns(hi, lo []uint64) { quickCols(hi, lo, 0, len(hi)) }

func quickCols(hi, lo []uint64, a, b int) {
	for b-a > 16 {
		// Median-of-three pivot: order elements a, m, b-1 and take the
		// middle one's value.
		m := int(uint(a+b) >> 1)
		if colLess(hi, lo, m, a) {
			colSwap(hi, lo, m, a)
		}
		if colLess(hi, lo, b-1, m) {
			colSwap(hi, lo, b-1, m)
			if colLess(hi, lo, m, a) {
				colSwap(hi, lo, m, a)
			}
		}
		ph, pl := hi[m], lo[m]
		// Hoare partition around the pivot value.
		i, j := a, b-1
		for {
			for hi[i] < ph || (hi[i] == ph && lo[i] < pl) {
				i++
			}
			for hi[j] > ph || (hi[j] == ph && lo[j] > pl) {
				j--
			}
			if i >= j {
				break
			}
			colSwap(hi, lo, i, j)
			i++
			j--
		}
		// Recurse into the smaller side, loop on the larger.
		if j+1-a < b-(j+1) {
			quickCols(hi, lo, a, j+1)
			a = j + 1
		} else {
			quickCols(hi, lo, j+1, b)
			b = j + 1
		}
	}
	for i := a + 1; i < b; i++ {
		for k := i; k > a && colLess(hi, lo, k, k-1); k-- {
			colSwap(hi, lo, k, k-1)
		}
	}
}

func colLess(hi, lo []uint64, i, j int) bool {
	return hi[i] < hi[j] || (hi[i] == hi[j] && lo[i] < lo[j])
}

func colSwap(hi, lo []uint64, i, j int) {
	hi[i], hi[j] = hi[j], hi[i]
	lo[i], lo[j] = lo[j], lo[i]
}

// mergeShardCols k-way merges sorted shard columns into one ascending
// []Addr via a binary min-heap of shard cursors. Shards partition the
// address space by hash, so no address appears in two streams and the
// merge order is uniquely determined by the values.
func mergeShardCols(views []ShardCols) []Addr {
	total := 0
	type cursor struct {
		hi, lo []uint64
		i      int
	}
	heap := make([]cursor, 0, len(views))
	for _, v := range views {
		total += len(v.Hi)
		if len(v.Hi) > 0 {
			heap = append(heap, cursor{hi: v.Hi, lo: v.Lo})
		}
	}
	out := make([]Addr, 0, total)
	less := func(x, y cursor) bool {
		return x.hi[x.i] < y.hi[y.i] || (x.hi[x.i] == y.hi[y.i] && x.lo[x.i] < y.lo[y.i])
	}
	siftDown := func(k int) {
		for {
			c := 2*k + 1
			if c >= len(heap) {
				return
			}
			if c+1 < len(heap) && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[k]) {
				return
			}
			heap[k], heap[c] = heap[c], heap[k]
			k = c
		}
	}
	for k := len(heap)/2 - 1; k >= 0; k-- {
		siftDown(k)
	}
	for len(heap) > 0 {
		c := &heap[0]
		out = append(out, Addr{hi: c.hi[c.i], lo: c.lo[c.i]})
		c.i++
		if c.i == len(c.hi) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return out
}
