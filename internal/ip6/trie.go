package ip6

// Trie is a binary radix trie mapping IPv6 prefixes to values of type V.
// It supports exact insertion, longest-prefix-match lookup, and ordered
// walking. The zero value is an empty trie ready to use.
//
// The trie is the substrate for the BGP routing table and for the aliased
// prefix filter, both of which answer "which announced/aliased prefix most
// specifically covers this address" on the prober hot path.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val at the given prefix, replacing any existing value.
func (t *Trie[V]) Insert(p Prefix, val V) {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for i := 0; i < p.Bits(); i++ {
		b := p.Addr().Bit(i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val = val
	n.set = true
}

// Remove deletes the value stored at exactly p, reporting whether a value
// was present. Interior nodes are not pruned; for the sizes used here
// (tens of thousands of prefixes, built once per day) this is fine.
func (t *Trie[V]) Remove(p Prefix) bool {
	n := t.root
	for i := 0; n != nil && i < p.Bits(); i++ {
		n = n.child[p.Addr().Bit(i)]
	}
	if n == nil || !n.set {
		return false
	}
	n.set = false
	var zero V
	n.val = zero
	t.size--
	return true
}

// Get returns the value stored at exactly p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	for i := 0; n != nil && i < p.Bits(); i++ {
		n = n.child[p.Addr().Bit(i)]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Lookup returns the value of the most specific prefix containing a,
// together with that prefix, or ok=false if no stored prefix covers a.
func (t *Trie[V]) Lookup(a Addr) (p Prefix, val V, ok bool) {
	n := t.root
	depth := 0
	bestDepth := -1
	var bestVal V
	for n != nil {
		if n.set {
			bestDepth = depth
			bestVal = n.val
		}
		if depth == 128 {
			break
		}
		n = n.child[a.Bit(depth)]
		depth++
	}
	if bestDepth < 0 {
		var zero V
		return Prefix{}, zero, false
	}
	return PrefixFrom(a, bestDepth), bestVal, true
}

// LookupMax returns the value of the most specific stored prefix of
// length at most maxDepth containing a, together with that prefix, or
// ok=false if no such prefix exists. It is a single depth-capped LPM walk:
// APD's nested-pair taxonomy uses it to find a prefix's closest probed
// ancestor in one descent instead of one exact-match probe per bit length.
func (t *Trie[V]) LookupMax(a Addr, maxDepth int) (p Prefix, val V, ok bool) {
	if maxDepth > 128 {
		maxDepth = 128
	}
	n := t.root
	depth := 0
	bestDepth := -1
	var bestVal V
	for n != nil && depth <= maxDepth {
		if n.set {
			bestDepth = depth
			bestVal = n.val
		}
		if depth == 128 {
			break
		}
		n = n.child[a.Bit(depth)]
		depth++
	}
	if bestDepth < 0 {
		var zero V
		return Prefix{}, zero, false
	}
	return PrefixFrom(a, bestDepth), bestVal, true
}

// LookupShortest returns the value of the LEAST specific stored prefix
// containing a. APD uses this to find the enclosing BGP announcement.
func (t *Trie[V]) LookupShortest(a Addr) (p Prefix, val V, ok bool) {
	n := t.root
	depth := 0
	for n != nil {
		if n.set {
			return PrefixFrom(a, depth), n.val, true
		}
		if depth == 128 {
			break
		}
		n = n.child[a.Bit(depth)]
		depth++
	}
	var zero V
	return Prefix{}, zero, false
}

// Covers reports whether any stored prefix contains a.
func (t *Trie[V]) Covers(a Addr) bool {
	_, _, ok := t.Lookup(a)
	return ok
}

// Walk visits every stored prefix in address order (depth-first, zero
// branch first), stopping early if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	var rec func(n *trieNode[V], a Addr, depth int) bool
	rec = func(n *trieNode[V], a Addr, depth int) bool {
		if n == nil {
			return true
		}
		if n.set && !fn(PrefixFrom(a, depth), n.val) {
			return false
		}
		if depth == 128 {
			return true
		}
		if !rec(n.child[0], a, depth+1) {
			return false
		}
		return rec(n.child[1], setBit(a, depth), depth+1)
	}
	rec(t.root, Addr{}, 0)
}

func setBit(a Addr, i int) Addr {
	if i < 64 {
		a.hi |= 1 << (63 - i)
	} else {
		a.lo |= 1 << (127 - i)
	}
	return a
}

// Prefixes returns all stored prefixes in address order.
func (t *Trie[V]) Prefixes() []Prefix {
	out := make([]Prefix, 0, t.size)
	t.Walk(func(p Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
