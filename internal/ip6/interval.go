package ip6

import "sort"

// Interval is one row of a compiled prefix table: the inclusive address
// range [Lo, Hi] and the value of the most specific prefix covering it.
// A compiled table is the flat, branch-free form of a longest-prefix-match
// trie: sorted, disjoint, and directly mergeable against a sorted address
// stream.
type Interval[V any] struct {
	Lo, Hi Addr
	Val    V
}

// CompileIntervals flattens per-prefix value assignments into a sorted
// table of disjoint inclusive address intervals with most-specific-wins
// semantics: an address inside several of the prefixes lands in the
// interval carrying the longest (most specific) covering prefix's value,
// exactly as a trie longest-prefix-match would decide. Addresses covered
// by none of the prefixes fall between intervals. Adjacent intervals with
// equal values are coalesced, so the table is also minimal.
//
// The prefixes must be unique; the table is a pure function of the
// (prefix, value) set, independent of input order. Each prefix appears as
// at most O(len) rows (its range minus the ranges of its more-specifics),
// so the table has at most O(n·128) rows and in practice close to n.
func CompileIntervals[V comparable](prefixes []Prefix, vals []V) []Interval[V] {
	if len(prefixes) != len(vals) {
		panic("ip6: CompileIntervals length mismatch")
	}
	n := len(prefixes)
	if n == 0 {
		return nil
	}
	// Sort by (base address, length): a prefix precedes everything it
	// contains, and nesting is stack-shaped (prefixes are nested or
	// disjoint, never partially overlapping).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := prefixes[order[a]], prefixes[order[b]]
		if c := pa.Addr().Compare(pb.Addr()); c != 0 {
			return c < 0
		}
		return pa.Bits() < pb.Bits()
	})

	out := make([]Interval[V], 0, n)
	emit := func(lo, hi Addr, v V) {
		if k := len(out); k > 0 && out[k-1].Val == v && out[k-1].Hi.Next() == lo {
			out[k-1].Hi = hi
			return
		}
		out = append(out, Interval[V]{Lo: lo, Hi: hi, Val: v})
	}

	type frame struct {
		last Addr // highest address of the stacked prefix
		val  V
	}
	var stack []frame
	var cur Addr // next uncovered address inside the stack top
	// exhausted flags that an emitted interval reached the top of the
	// address space, so cur has wrapped to zero and nothing remains.
	exhausted := false
	closeTop := func(top frame) {
		if !exhausted && !top.last.Less(cur) {
			emit(cur, top.last, top.val)
			if top.last == (Addr{hi: ^uint64(0), lo: ^uint64(0)}) {
				exhausted = true
			}
			cur = top.last.Next()
		}
	}
	for _, oi := range order {
		p, v := prefixes[oi], vals[oi]
		start := p.Addr()
		// Pop every stacked prefix that ends before this one starts,
		// emitting its remaining uncovered tail.
		for len(stack) > 0 && stack[len(stack)-1].last.Less(start) {
			closeTop(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
		}
		// The enclosing prefix (if any) owns the gap up to this start.
		if len(stack) > 0 && cur.Less(start) {
			emit(cur, start.Prev(), stack[len(stack)-1].val)
		}
		cur = start
		stack = append(stack, frame{last: p.Last(), val: v})
	}
	for len(stack) > 0 {
		closeTop(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
	}
	return out
}

// LookupInterval returns the value of the table interval containing a, or
// ok=false if a falls outside every interval. The table must be sorted and
// disjoint (CompileIntervals output). It is the point-query complement of
// the linear merge: a single binary search, no trie walk.
func LookupInterval[V any](tab []Interval[V], a Addr) (val V, ok bool) {
	// First interval whose Hi is >= a; a is inside it iff its Lo is <= a.
	i := sort.Search(len(tab), func(k int) bool { return a.Compare(tab[k].Hi) <= 0 })
	if i < len(tab) && !a.Less(tab[i].Lo) {
		return tab[i].Val, true
	}
	return val, false
}
