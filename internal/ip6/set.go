package ip6

import "sort"

// Set is an insertion-deduplicating collection of IPv6 addresses backed
// by a single map — the right tool for small scratch collections (dedup
// inside one collector batch, generation-study bookkeeping). The hitlist
// itself lives in ShardSet, the sharded columnar store with parallel
// batch operations and a cached sorted view.
// The zero value is an empty set ready to use.
type Set struct {
	m map[Addr]struct{}
}

// NewSet returns a set preallocated for n addresses.
func NewSet(n int) *Set {
	return &Set{m: make(map[Addr]struct{}, n)}
}

// Add inserts a, reporting whether it was newly added.
func (s *Set) Add(a Addr) bool {
	if s.m == nil {
		s.m = make(map[Addr]struct{})
	}
	if _, ok := s.m[a]; ok {
		return false
	}
	s.m[a] = struct{}{}
	return true
}

// AddAll inserts every address of other, returning how many were new.
func (s *Set) AddAll(other *Set) int {
	n := 0
	for a := range other.m {
		if s.Add(a) {
			n++
		}
	}
	return n
}

// AddSlice inserts every address in addrs, returning how many were new.
func (s *Set) AddSlice(addrs []Addr) int {
	n := 0
	for _, a := range addrs {
		if s.Add(a) {
			n++
		}
	}
	return n
}

// Contains reports membership.
func (s *Set) Contains(a Addr) bool {
	_, ok := s.m[a]
	return ok
}

// Remove deletes a from the set, reporting whether it was present.
func (s *Set) Remove(a Addr) bool {
	if _, ok := s.m[a]; !ok {
		return false
	}
	delete(s.m, a)
	return true
}

// Len returns the number of addresses.
func (s *Set) Len() int { return len(s.m) }

// Sorted returns the addresses in ascending numeric order. The result is
// freshly allocated.
func (s *Set) Sorted() []Addr {
	out := make([]Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Each calls fn for every address in unspecified order, stopping early if
// fn returns false.
func (s *Set) Each(fn func(Addr) bool) {
	for a := range s.m {
		if !fn(a) {
			return
		}
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet(len(s.m))
	for a := range s.m {
		c.m[a] = struct{}{}
	}
	return c
}

// Diff returns the addresses in s that are not in other, in sorted order.
func (s *Set) Diff(other *Set) []Addr {
	var out []Addr
	for a := range s.m {
		if !other.Contains(a) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Intersect returns the number of addresses present in both sets.
func (s *Set) Intersect(other *Set) int {
	small, big := s, other
	if big.Len() < small.Len() {
		small, big = big, small
	}
	n := 0
	for a := range small.m {
		if big.Contains(a) {
			n++
		}
	}
	return n
}
