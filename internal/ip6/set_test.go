package ip6

import (
	"sort"
	"testing"
)

func TestSetBasics(t *testing.T) {
	var s Set // zero value usable
	a := MustParseAddr("2001:db8::1")
	if !s.Add(a) {
		t.Error("first Add should report new")
	}
	if s.Add(a) {
		t.Error("second Add should report duplicate")
	}
	if !s.Contains(a) || s.Len() != 1 {
		t.Error("Contains/Len wrong")
	}
	if !s.Remove(a) || s.Remove(a) || s.Len() != 0 {
		t.Error("Remove semantics wrong")
	}
}

func TestSetSorted(t *testing.T) {
	s := NewSet(0)
	addrs := randAddrs(500, 3)
	s.AddSlice(addrs)
	got := s.Sorted()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Less(got[j]) }) {
		t.Error("Sorted() not sorted")
	}
	if len(got) != s.Len() {
		t.Errorf("Sorted() length %d != Len %d", len(got), s.Len())
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := NewSet(0), NewSet(0)
	addrs := randAddrs(100, 4)
	a.AddSlice(addrs[:60])
	b.AddSlice(addrs[40:])
	if n := a.Intersect(b); n != 20 {
		t.Errorf("Intersect = %d, want 20", n)
	}
	if n := b.Intersect(a); n != 20 {
		t.Errorf("Intersect not symmetric: %d", n)
	}
	if d := a.Diff(b); len(d) != 40 {
		t.Errorf("Diff = %d, want 40", len(d))
	}
	c := a.Clone()
	if c.Len() != a.Len() || c.Intersect(a) != a.Len() {
		t.Error("Clone not equal")
	}
	c.Add(MustParseAddr("::9999"))
	if a.Contains(MustParseAddr("::9999")) {
		t.Error("Clone not deep")
	}
	n := a.AddAll(b)
	if n != 40 || a.Len() != 100 {
		t.Errorf("AddAll added %d, total %d", n, a.Len())
	}
}

func TestSetEach(t *testing.T) {
	s := NewSet(0)
	s.AddSlice(randAddrs(50, 5))
	n := 0
	s.Each(func(Addr) bool { n++; return true })
	if n != 50 {
		t.Errorf("Each visited %d", n)
	}
	n = 0
	s.Each(func(Addr) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("Each early stop visited %d", n)
	}
}
