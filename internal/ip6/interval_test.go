package ip6

import (
	"math/rand"
	"testing"
)

func TestCompileIntervalsBasic(t *testing.T) {
	p96 := MustParsePrefix("2001:db8:1::/96")
	p100 := MustParsePrefix("2001:db8:1::/100")
	tab := CompileIntervals([]Prefix{p96, p100}, []bool{true, false})
	// The /100 punches a hole in the /96: expect [/100 start, /100 last]
	// false surrounded by the aliased remainder.
	for _, tc := range []struct {
		addr    string
		val, ok bool
	}{
		{"2001:db8:1::", false, true},          // inside the /100
		{"2001:db8:1::123", false, true},       // inside the /100
		{"2001:db8:1::fff:ffff", false, true},  // last of the /100
		{"2001:db8:1::1000:0", true, true},     // /96 above the hole
		{"2001:db8:1::ffff:ffff", true, true},  // last of the /96
		{"2001:db8:0:0:1::", false, false},     // below the /96
		{"2001:db9::1", false, false},          // uncovered
		{"::", false, false},                   // uncovered
		{"ffff:ffff::ffff:ffff", false, false}, // uncovered
	} {
		v, ok := LookupInterval(tab, MustParseAddr(tc.addr))
		if ok != tc.ok || (ok && v != tc.val) {
			t.Errorf("%s: got (%v,%v), want (%v,%v)", tc.addr, v, ok, tc.val, tc.ok)
		}
	}
}

func TestCompileIntervalsDisjointSortedMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps, vals := randomPrefixSet(rng, 200)
	tab := CompileIntervals(ps, vals)
	for i, iv := range tab {
		if iv.Hi.Less(iv.Lo) {
			t.Fatalf("interval %d inverted: %v > %v", i, iv.Lo, iv.Hi)
		}
		if i > 0 {
			prev := tab[i-1]
			if !prev.Hi.Less(iv.Lo) {
				t.Fatalf("intervals %d/%d overlap or disorder: %v vs %v", i-1, i, prev.Hi, iv.Lo)
			}
			// Minimality: adjacent equal-value intervals must be coalesced.
			if prev.Hi.Next() == iv.Lo && prev.Val == iv.Val {
				t.Errorf("intervals %d/%d not coalesced (val=%v)", i-1, i, iv.Val)
			}
		}
	}
}

func TestCompileIntervalsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps, vals := randomPrefixSet(rng, 150)
	want := CompileIntervals(ps, vals)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(ps))
		sp := make([]Prefix, len(ps))
		sv := make([]bool, len(ps))
		for i, j := range perm {
			sp[i], sv[i] = ps[j], vals[j]
		}
		got := CompileIntervals(sp, sv)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d intervals, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: interval %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestCompileIntervalsMatchesTrieLPM is the property pin of the compiled
// filter: interval lookup must agree with the trie's longest-prefix-match
// on random nested prefix sets, probed at uniform addresses and at every
// interval boundary (the off-by-one hot spots).
func TestCompileIntervalsMatchesTrieLPM(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		ps, vals := randomPrefixSet(rng, 1+rng.Intn(120))
		var trie Trie[bool]
		for i, p := range ps {
			trie.Insert(p, vals[i])
		}
		tab := CompileIntervals(ps, vals)
		check := func(a Addr) {
			_, wantV, wantOK := trie.Lookup(a)
			gotV, gotOK := LookupInterval(tab, a)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("trial %d, addr %v: interval (%v,%v) vs trie (%v,%v)",
					trial, a, gotV, gotOK, wantV, wantOK)
			}
		}
		for i := 0; i < 300; i++ {
			check(Addr{hi: rng.Uint64(), lo: rng.Uint64()})
		}
		// Inside the covered ranges, plus exact boundaries and the
		// addresses one off each side.
		for _, p := range ps {
			check(p.RandomAddr(rng))
		}
		for _, iv := range tab {
			for _, a := range []Addr{iv.Lo, iv.Hi, iv.Lo.Prev(), iv.Hi.Next()} {
				check(a)
			}
		}
	}
}

func TestCompileIntervalsFullSpace(t *testing.T) {
	// ::/0 with nested more-specifics: every address is covered and the
	// top of the address space closes without wrapping.
	root := MustParsePrefix("::/0")
	hole := MustParsePrefix("ffff::/16")
	tab := CompileIntervals([]Prefix{root, hole}, []bool{true, false})
	max := Addr{hi: ^uint64(0), lo: ^uint64(0)}
	if v, ok := LookupInterval(tab, max); !ok || v {
		t.Errorf("max address: got (%v,%v), want (false,true)", v, ok)
	}
	if v, ok := LookupInterval(tab, Addr{}); !ok || !v {
		t.Errorf(":: : got (%v,%v), want (true,true)", v, ok)
	}
	if last := tab[len(tab)-1].Hi; last != max {
		t.Errorf("table does not reach the top: %v", last)
	}
	if len(CompileIntervals[bool](nil, nil)) != 0 {
		t.Error("empty input must compile to an empty table")
	}
}

// randomPrefixSet builds a set of unique random prefixes with aggressive
// nesting: children are derived from earlier prefixes so the stack sweep
// sees deep containment chains.
func randomPrefixSet(rng *rand.Rand, n int) ([]Prefix, []bool) {
	seen := map[Prefix]bool{}
	var ps []Prefix
	var vals []bool
	for len(ps) < n {
		var p Prefix
		if len(ps) > 0 && rng.Intn(2) == 0 {
			// More-specific of an existing prefix.
			parent := ps[rng.Intn(len(ps))]
			bits := parent.Bits() + 1 + rng.Intn(12)
			if bits > 128 {
				bits = 128
			}
			p = PrefixFrom(parent.RandomAddr(rng), bits)
		} else {
			p = PrefixFrom(Addr{hi: rng.Uint64(), lo: rng.Uint64()}, 1+rng.Intn(128))
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		ps = append(ps, p)
		vals = append(vals, rng.Intn(2) == 0)
	}
	return ps, vals
}
