package ip6

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Bits() != 32 || p.Addr() != MustParseAddr("2001:db8::") {
		t.Errorf("got %v", p)
	}
	// Address must be masked.
	p2 := MustParsePrefix("2001:db8::1/32")
	if p2 != p {
		t.Errorf("masking: %v != %v", p2, p)
	}
	if s := p.String(); s != "2001:db8::/32" {
		t.Errorf("String() = %q", s)
	}
	for _, bad := range []string{"", "2001:db8::", "2001:db8::/129", "2001:db8::/-1", "zz::/32", "2001:db8::/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	for _, in := range []string{"2001:db8::", "2001:db8::1", "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff"} {
		if !p.Contains(MustParseAddr(in)) {
			t.Errorf("%v should contain %s", p, in)
		}
	}
	for _, out := range []string{"2001:db9::", "2001:db7:ffff::", "::", "ffff::"} {
		if p.Contains(MustParseAddr(out)) {
			t.Errorf("%v should not contain %s", p, out)
		}
	}
	// /0 contains everything; /128 contains exactly itself.
	if !MustParsePrefix("::/0").Contains(MustParseAddr("ffff::1")) {
		t.Error("/0 must contain all")
	}
	p128 := MustParsePrefix("2001:db8::1/128")
	if !p128.Contains(MustParseAddr("2001:db8::1")) || p128.Contains(MustParseAddr("2001:db8::2")) {
		t.Error("/128 containment wrong")
	}
}

func TestPrefixContainsPrefixOverlaps(t *testing.T) {
	p32 := MustParsePrefix("2001:db8::/32")
	p48 := MustParsePrefix("2001:db8:1::/48")
	other := MustParsePrefix("2001:db9::/32")
	if !p32.ContainsPrefix(p48) || p48.ContainsPrefix(p32) {
		t.Error("ContainsPrefix wrong")
	}
	if !p32.ContainsPrefix(p32) {
		t.Error("prefix must contain itself")
	}
	if !p32.Overlaps(p48) || !p48.Overlaps(p32) {
		t.Error("Overlaps must be symmetric for nested prefixes")
	}
	if p32.Overlaps(other) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixLast(t *testing.T) {
	cases := []struct{ p, want string }{
		{"2001:db8::/32", "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff"},
		{"2001:db8::/64", "2001:db8::ffff:ffff:ffff:ffff"},
		{"2001:db8::/96", "2001:db8::ffff:ffff"},
		{"2001:db8::1/128", "2001:db8::1"},
	}
	for _, c := range cases {
		if got := MustParsePrefix(c.p).Last(); got != MustParseAddr(c.want) {
			t.Errorf("Last(%s) = %v, want %s", c.p, got, c.want)
		}
	}
}

func TestSubprefix(t *testing.T) {
	p := MustParsePrefix("2001:db8:407:8000::/64")
	// The paper's Table 3 fan-out: /68 subprefixes 2001:db8:407:8000:[0-f]000::
	for i := uint64(0); i < 16; i++ {
		sub := p.Subprefix(68, i)
		if sub.Bits() != 68 {
			t.Fatalf("bits = %d", sub.Bits())
		}
		if got := sub.Addr().Nybble(16); got != byte(i) {
			t.Errorf("subprefix %d: nybble 16 = %x", i, got)
		}
		if !p.ContainsPrefix(sub) {
			t.Errorf("subprefix %v not inside %v", sub, p)
		}
	}
	// Straddling the 64-bit boundary: /60 parent, /68 children.
	p60 := MustParsePrefix("2001:db8:407:80::/60")
	seen := map[Prefix]bool{}
	for i := uint64(0); i < 256; i++ {
		sub := p60.Subprefix(68, i)
		if !p60.ContainsPrefix(sub) {
			t.Fatalf("straddle subprefix %v outside %v", sub, p60)
		}
		seen[sub] = true
	}
	if len(seen) != 256 {
		t.Errorf("straddle fan-out produced %d distinct subprefixes, want 256", len(seen))
	}
}

func TestRandomAddrInPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ps := range []string{"::/0", "2001:db8::/32", "2001:db8::/64", "2001:db8::/96", "2001:db8::/124", "2001:db8::1/128"} {
		p := MustParsePrefix(ps)
		for i := 0; i < 100; i++ {
			a := p.RandomAddr(rng)
			if !p.Contains(a) {
				t.Fatalf("RandomAddr(%s) = %v outside prefix", ps, a)
			}
		}
	}
}

func TestRandomAddrCoversHostBits(t *testing.T) {
	// With 1000 draws from a /124 (16 addresses) we must see most values.
	rng := rand.New(rand.NewSource(7))
	p := MustParsePrefix("2001:db8::/124")
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		seen[p.RandomAddr(rng)] = true
	}
	if len(seen) < 14 {
		t.Errorf("only %d/16 addresses seen in 1000 draws", len(seen))
	}
}

func TestNthAddr(t *testing.T) {
	p := MustParsePrefix("2001:db8::/64")
	if got := p.NthAddr(0); got != MustParseAddr("2001:db8::") {
		t.Errorf("NthAddr(0) = %v", got)
	}
	if got := p.NthAddr(255); got != MustParseAddr("2001:db8::ff") {
		t.Errorf("NthAddr(255) = %v", got)
	}
	p96 := MustParsePrefix("2001:db8::/96")
	// Overflow wraps within host bits.
	if got := p96.NthAddr(1 << 40); !p96.Contains(got) {
		t.Errorf("NthAddr overflow escaped prefix: %v", got)
	}
}

func TestSupernet(t *testing.T) {
	p := MustParsePrefix("2001:db8:1:2::/64")
	if got := p.Supernet(32); got != MustParsePrefix("2001:db8::/32") {
		t.Errorf("Supernet = %v", got)
	}
	if got := p.Supernet(96); got != p {
		t.Errorf("Supernet longer than prefix should be identity, got %v", got)
	}
}

func TestNumAddresses(t *testing.T) {
	if n := MustParsePrefix("2001:db8::/124").NumAddresses(); n != 16 {
		t.Errorf("/124 = %d addrs", n)
	}
	if n := MustParsePrefix("2001:db8::1/128").NumAddresses(); n != 1 {
		t.Errorf("/128 = %d addrs", n)
	}
	if n := MustParsePrefix("2001:db8::/32").NumAddresses(); n != ^uint64(0) {
		t.Errorf("/32 should saturate, got %d", n)
	}
}

func TestComparePrefix(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8::/48")
	c := MustParsePrefix("2001:db9::/32")
	if ComparePrefix(a, b) >= 0 {
		t.Error("shorter prefix must sort first")
	}
	if ComparePrefix(a, c) >= 0 {
		t.Error("same length: lower address first")
	}
	if ComparePrefix(a, a) != 0 {
		t.Error("equal prefixes compare 0")
	}
}

// Property: prefix round-trips through its string form.
func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(hi, lo uint64, l uint8) bool {
		p := PrefixFrom(AddrFromUint64(hi, lo), int(l)%129)
		q, err := ParsePrefix(p.String())
		return err == nil && p == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every random address drawn from a prefix is contained in it,
// and masking is idempotent.
func TestPrefixRandomContainsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(hi, lo uint64, l uint8) bool {
		p := PrefixFrom(AddrFromUint64(hi, lo), int(l)%129)
		a := p.RandomAddr(rng)
		return p.Contains(a) && PrefixFrom(p.Addr(), p.Bits()) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSortedKeys pins the maporder-sanctioned helper: ComparePrefix
// order (length first, then base address), every key exactly once.
func TestSortedKeys(t *testing.T) {
	m := map[Prefix]int{
		MustParsePrefix("2001:db8:2::/48"):   1,
		MustParsePrefix("2001:db8::/32"):     2,
		MustParsePrefix("2001:db8:1::/48"):   3,
		MustParsePrefix("2001:db8::/64"):     4,
		MustParsePrefix("2001:db8:1::1/128"): 5,
	}
	keys := SortedKeys(m)
	if len(keys) != len(m) {
		t.Fatalf("SortedKeys: %d keys, want %d", len(keys), len(m))
	}
	for i := 1; i < len(keys); i++ {
		if ComparePrefix(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("SortedKeys out of order at %d: %v then %v", i, keys[i-1], keys[i])
		}
	}
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			t.Fatalf("SortedKeys invented key %v", k)
		}
	}
}
