package ip6

// AddrSeq is a read-only indexed view of a sequence of addresses. It is
// the currency between the columnar data plane (ShardSet shard views, the
// cached sorted hitlist) and batch consumers (the scan engine, APD
// candidate bucketing) that would otherwise force a flatten-copy into a
// fresh []Addr per consumer.
type AddrSeq interface {
	// Len returns the number of addresses in the sequence.
	Len() int
	// At returns the address at index i, 0 <= i < Len().
	At(i int) Addr
}

// Addrs adapts a plain slice to AddrSeq.
type Addrs []Addr

// Len returns the slice length.
func (s Addrs) Len() int { return len(s) }

// At returns the i-th address.
func (s Addrs) At(i int) Addr { return s[i] }

// ShardCols is a point-in-time columnar view of one ShardSet shard: the
// parallel (Hi, Lo) arrays in insertion order. The view captures the
// slice headers, so concurrent appends to the shard never move the
// elements it covers; callers must not modify the arrays.
type ShardCols struct {
	Hi, Lo []uint64
}

// Len returns the number of addresses in the shard view.
func (c ShardCols) Len() int { return len(c.Hi) }

// At returns the i-th address of the shard view.
func (c ShardCols) At(i int) Addr { return Addr{hi: c.Hi[i], lo: c.Lo[i]} }
