package ip6

// AddrSeq is a read-only indexed view of a sequence of addresses. It is
// the currency between the columnar data plane (ShardSet shard views, the
// cached sorted hitlist) and batch consumers (the scan engine, APD
// candidate bucketing) that would otherwise force a flatten-copy into a
// fresh []Addr per consumer.
type AddrSeq interface {
	// Len returns the number of addresses in the sequence.
	Len() int
	// At returns the address at index i, 0 <= i < Len().
	At(i int) Addr
}

// Addrs adapts a plain slice to AddrSeq.
type Addrs []Addr

// Len returns the slice length.
func (s Addrs) Len() int { return len(s) }

// At returns the i-th address.
func (s Addrs) At(i int) Addr { return s[i] }

// SeqSlice returns a zero-copy view of seq[lo:hi). It panics if the range
// is out of bounds. Slicing an Addrs or another SeqSlice view collapses to
// a direct window over the backing sequence, so nested views never stack
// indirection.
func SeqSlice(seq AddrSeq, lo, hi int) AddrSeq {
	if lo < 0 || hi < lo || hi > seq.Len() {
		panic("ip6: SeqSlice range out of bounds")
	}
	switch s := seq.(type) {
	case Addrs:
		return s[lo:hi]
	case subSeq:
		return subSeq{seq: s.seq, off: s.off + lo, n: hi - lo}
	}
	return subSeq{seq: seq, off: lo, n: hi - lo}
}

type subSeq struct {
	seq AddrSeq
	off int
	n   int
}

func (s subSeq) Len() int      { return s.n }
func (s subSeq) At(i int) Addr { return s.seq.At(s.off + i) }

// PrefixRuns iterates the maximal runs of consecutive addresses in sorted
// that share the same length-bits prefix, calling fn with the prefix and
// the half-open index range [lo, hi) of the run; iteration stops early if
// fn returns false. The sequence MUST be in ascending address order (the
// ShardSet's cached sorted view qualifies): then every fixed-length-prefix
// group is exactly one contiguous run, so grouping is a boundary scan over
// zero-copy views instead of a map-bucketing pass over a materialized
// slice. Run ends are located by galloping search, so a scan over g groups
// costs O(g·log(n/g)) comparisons, not O(n).
func PrefixRuns(sorted AddrSeq, bits int, fn func(p Prefix, lo, hi int) bool) {
	n := sorted.Len()
	for lo := 0; lo < n; {
		p := PrefixFrom(sorted.At(lo), bits)
		hi := runEnd(sorted, p, lo, n)
		if !fn(p, lo, hi) {
			return
		}
		lo = hi
	}
}

// runEnd returns the smallest index in (lo, n] at which the run of
// addresses covered by p ends: galloping doubles the step until it
// overshoots, then binary-searches the bracketed range.
func runEnd(sorted AddrSeq, p Prefix, lo, n int) int {
	// Invariant: sorted.At(a) is inside p; everything at or beyond b is not.
	a, step := lo, 1
	for {
		next := a + step
		if next >= n {
			if !p.Contains(sorted.At(n - 1)) {
				break
			}
			return n
		}
		if !p.Contains(sorted.At(next)) {
			break
		}
		a = next
		step <<= 1
	}
	b := a + step
	if b > n {
		b = n
	}
	for a+1 < b {
		m := int(uint(a+b) >> 1)
		if p.Contains(sorted.At(m)) {
			a = m
		} else {
			b = m
		}
	}
	return a + 1
}

// ShardCols is a point-in-time columnar view of one ShardSet shard: the
// parallel (Hi, Lo) arrays in insertion order. The view captures the
// slice headers, so concurrent appends to the shard never move the
// elements it covers; callers must not modify the arrays.
type ShardCols struct {
	Hi, Lo []uint64
}

// Len returns the number of addresses in the shard view.
func (c ShardCols) Len() int { return len(c.Hi) }

// At returns the i-th address of the shard view.
func (c ShardCols) At(i int) Addr { return Addr{hi: c.Hi[i], lo: c.Lo[i]} }
