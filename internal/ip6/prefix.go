package ip6

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Prefix is an IPv6 network prefix: an address plus a length in bits.
// The address is always kept in masked (canonical) form, so Prefix values
// are comparable with == and usable as map keys.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom returns the prefix of the given length containing addr.
// The address is masked to the prefix boundary. Lengths outside [0,128]
// are clamped.
func PrefixFrom(addr Addr, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > 128 {
		length = 128
	}
	return Prefix{addr: mask(addr, length), bits: uint8(length)}
}

func mask(a Addr, length int) Addr {
	switch {
	case length <= 0:
		return Addr{}
	case length >= 128:
		return a
	case length <= 64:
		return Addr{hi: a.hi &^ (^uint64(0) >> length)}
	default:
		return Addr{hi: a.hi, lo: a.lo &^ (^uint64(0) >> (length - 64))}
	}
}

// Addr returns the (masked) base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// IsZero reports whether p is the zero Prefix ("::/0").
func (p Prefix) IsZero() bool { return p.bits == 0 && p.addr.IsZero() }

// Contains reports whether the prefix covers addr.
func (p Prefix) Contains(a Addr) bool {
	return mask(a, int(p.bits)) == p.addr
}

// ContainsPrefix reports whether p covers all of q (p is a supernet of or
// equal to q).
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// Last returns the highest address inside the prefix.
func (p Prefix) Last() Addr {
	l := int(p.bits)
	switch {
	case l <= 0:
		return Addr{hi: ^uint64(0), lo: ^uint64(0)}
	case l >= 128:
		return p.addr
	case l <= 64:
		return Addr{hi: p.addr.hi | ^uint64(0)>>l, lo: ^uint64(0)}
	default:
		return Addr{hi: p.addr.hi, lo: p.addr.lo | ^uint64(0)>>(l-64)}
	}
}

// Supernet returns the prefix shortened to the given length.
func (p Prefix) Supernet(length int) Prefix {
	if length >= int(p.bits) {
		return p
	}
	return PrefixFrom(p.addr, length)
}

// Subprefix returns the idx-th subprefix of length newLen (newLen must be
// >= p.Bits()). Subprefixes are numbered from 0 in address order; only the
// low bits of idx that fit in newLen-p.Bits() are used.
func (p Prefix) Subprefix(newLen int, idx uint64) Prefix {
	if newLen <= int(p.bits) {
		return p
	}
	if newLen > 128 {
		newLen = 128
	}
	a := p.addr
	span := newLen - int(p.bits)
	if span < 64 {
		idx &= 1<<span - 1
	}
	// Place idx so its low bit lands at position (newLen-1).
	if newLen <= 64 {
		a.hi |= idx << (64 - newLen)
	} else if int(p.bits) >= 64 {
		a.lo |= idx << (128 - newLen)
	} else {
		// The sub-prefix bits straddle the 64-bit boundary.
		loBits := newLen - 64
		a.lo |= idx << (128 - newLen) // low part
		hiPart := idx >> loBits
		a.hi |= hiPart
	}
	return Prefix{addr: a, bits: uint8(newLen)}
}

// NumAddresses returns the number of addresses in the prefix, capped at
// MaxUint64 for prefixes shorter than /64.
func (p Prefix) NumAddresses() uint64 {
	if p.bits <= 64 {
		return ^uint64(0)
	}
	return uint64(1) << (128 - int(p.bits))
}

// RandomAddr returns a pseudo-random address inside the prefix drawn from
// rng. The host bits are uniform random; the network bits are fixed.
func (p Prefix) RandomAddr(rng *rand.Rand) Addr {
	r := Addr{hi: rng.Uint64(), lo: rng.Uint64()}
	l := int(p.bits)
	switch {
	case l <= 0:
		return r
	case l >= 128:
		return p.addr
	case l <= 64:
		return Addr{hi: p.addr.hi | r.hi&(^uint64(0)>>l), lo: r.lo}
	default:
		return Addr{hi: p.addr.hi, lo: p.addr.lo | r.lo&(^uint64(0)>>(l-64))}
	}
}

// NthAddr returns the base address plus n, staying within the prefix by
// masking overflow into the host bits.
func (p Prefix) NthAddr(n uint64) Addr {
	l := int(p.bits)
	if l >= 128 {
		return p.addr
	}
	hostBits := 128 - l
	if hostBits < 64 {
		n &= 1<<hostBits - 1
	}
	lo := p.addr.lo + n
	hi := p.addr.hi
	if lo < p.addr.lo && l < 64 {
		hi++
	}
	return Addr{hi: hi, lo: lo}
}

// String returns the canonical "addr/len" form.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// ParsePrefix parses an "addr/len" prefix string. The address part is
// masked to the prefix boundary.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrBadPrefix, s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q: %v", ErrBadPrefix, s, err)
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 0 || n > 128 {
		return Prefix{}, fmt.Errorf("%w: %q bad length", ErrBadPrefix, s)
	}
	return PrefixFrom(a, n), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ComparePrefix orders prefixes by length first (shorter prefixes sort
// first) and then by base address; this is the {prefix-size, ASN} zesplot
// order before the ASN tiebreak.
func ComparePrefix(a, b Prefix) int {
	if a.bits != b.bits {
		return int(a.bits) - int(b.bits)
	}
	return a.addr.Compare(b.addr)
}

// SortedKeys returns the keys of a prefix-keyed map in ComparePrefix
// order. Ranging over a map whose iteration order can reach a report,
// digest or probe schedule is the repo's canonical determinism bug
// (expanselint's maporder analyzer flags it); collecting through this
// helper is the sanctioned pattern.
func SortedKeys[V any](m map[Prefix]V) []Prefix {
	keys := make([]Prefix, 0, len(m))
	for p := range m {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return ComparePrefix(keys[i], keys[j]) < 0 })
	return keys
}
