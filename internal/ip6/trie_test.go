package ip6

import (
	"math/rand"
	"testing"
)

func TestTrieBasic(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("2001:db8::/32"), "a")
	tr.Insert(MustParsePrefix("2001:db8:1::/48"), "b")
	tr.Insert(MustParsePrefix("2001:db8:1:2::/64"), "c")

	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}

	cases := []struct {
		addr string
		want string
		bits int
	}{
		{"2001:db8::1", "a", 32},
		{"2001:db8:1::1", "b", 48},
		{"2001:db8:1:2::1", "c", 64},
		{"2001:db8:1:3::1", "b", 48},
		{"2001:db8:2::1", "a", 32},
	}
	for _, c := range cases {
		p, v, ok := tr.Lookup(MustParseAddr(c.addr))
		if !ok || v != c.want || p.Bits() != c.bits {
			t.Errorf("Lookup(%s) = %v,%q,%v want %q at /%d", c.addr, p, v, ok, c.want, c.bits)
		}
	}
	if _, _, ok := tr.Lookup(MustParseAddr("2001:db9::1")); ok {
		t.Error("Lookup outside stored prefixes should miss")
	}
}

func TestTrieLookupShortest(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("2001:db8::/32"), 1)
	tr.Insert(MustParsePrefix("2001:db8:1::/48"), 2)
	p, v, ok := tr.LookupShortest(MustParseAddr("2001:db8:1::5"))
	if !ok || v != 1 || p.Bits() != 32 {
		t.Errorf("LookupShortest = %v,%d,%v", p, v, ok)
	}
}

func TestTrieGetRemove(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("2001:db8::/32")
	tr.Insert(p, 7)
	if v, ok := tr.Get(p); !ok || v != 7 {
		t.Error("Get after Insert failed")
	}
	if _, ok := tr.Get(MustParsePrefix("2001:db8::/48")); ok {
		t.Error("Get of unstored more-specific must miss")
	}
	if !tr.Remove(p) || tr.Len() != 0 {
		t.Error("Remove failed")
	}
	if tr.Remove(p) {
		t.Error("double Remove should report false")
	}
	if tr.Covers(MustParseAddr("2001:db8::1")) {
		t.Error("Covers after Remove")
	}
}

func TestTrieInsertReplaces(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("2001:db8::/32")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert", tr.Len())
	}
	if v, _ := tr.Get(p); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("::/0"), "default")
	tr.Insert(MustParsePrefix("2001:db8::/32"), "specific")
	if _, v, _ := tr.Lookup(MustParseAddr("ffff::1")); v != "default" {
		t.Error("default route not matched")
	}
	if _, v, _ := tr.Lookup(MustParseAddr("2001:db8::1")); v != "specific" {
		t.Error("specific route not preferred")
	}
}

func TestTrieHostRoute(t *testing.T) {
	var tr Trie[int]
	a := MustParseAddr("2001:db8::1")
	tr.Insert(PrefixFrom(a, 128), 9)
	if _, v, ok := tr.Lookup(a); !ok || v != 9 {
		t.Error("host /128 route failed")
	}
	if _, _, ok := tr.Lookup(a.Next()); ok {
		t.Error("adjacent address must miss")
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ps := []string{"2001:db8::/32", "2001:db8::/48", "2001:db8:1::/48", "::/0", "ff00::/8"}
	for i, s := range ps {
		tr.Insert(MustParsePrefix(s), i)
	}
	var walked []Prefix
	tr.Walk(func(p Prefix, _ int) bool {
		walked = append(walked, p)
		return true
	})
	if len(walked) != len(ps) {
		t.Fatalf("walked %d prefixes, want %d", len(walked), len(ps))
	}
	// Depth-first zero-branch-first: supernets before subnets, addresses ascending.
	for i := 1; i < len(walked); i++ {
		a, b := walked[i-1], walked[i]
		if a.Addr().Compare(b.Addr()) > 0 {
			t.Errorf("walk order violated: %v before %v", a, b)
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

// TestTrieMatchesLinearScan is the core property test: for random prefix
// sets, trie LPM must agree with a brute-force longest-match scan.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		var tr Trie[int]
		type entry struct {
			p Prefix
			v int
		}
		var entries []entry
		seen := map[Prefix]bool{}
		for i := 0; i < 200; i++ {
			l := 8 + rng.Intn(14)*4 // 8..60 in 4-bit steps
			p := PrefixFrom(AddrFromUint64(rng.Uint64()&0xffff_ffff_0000_0000, 0), l)
			if seen[p] {
				continue
			}
			seen[p] = true
			tr.Insert(p, i)
			entries = append(entries, entry{p, i})
		}
		for probe := 0; probe < 500; probe++ {
			a := AddrFromUint64(rng.Uint64(), rng.Uint64())
			// Half the probes land inside a random stored prefix to
			// exercise hits, not just misses.
			if probe%2 == 0 && len(entries) > 0 {
				a = entries[rng.Intn(len(entries))].p.RandomAddr(rng)
			}
			bestLen, bestVal, found := -1, 0, false
			for _, e := range entries {
				if e.p.Contains(a) && e.p.Bits() > bestLen {
					bestLen, bestVal, found = e.p.Bits(), e.v, true
				}
			}
			p, v, ok := tr.Lookup(a)
			if ok != found {
				t.Fatalf("trial %d: Lookup(%v) ok=%v, brute=%v", trial, a, ok, found)
			}
			if ok && (v != bestVal || p.Bits() != bestLen) {
				t.Fatalf("trial %d: Lookup(%v) = %d at /%d, brute = %d at /%d",
					trial, a, v, p.Bits(), bestVal, bestLen)
			}
		}
	}
}

func TestTriePrefixes(t *testing.T) {
	var tr Trie[struct{}]
	in := []string{"2001:db8::/32", "2001:db8:1::/48", "fe80::/10"}
	for _, s := range in {
		tr.Insert(MustParsePrefix(s), struct{}{})
	}
	got := tr.Prefixes()
	if len(got) != len(in) {
		t.Fatalf("Prefixes() returned %d", len(got))
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	var tr Trie[int]
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25000; i++ { // ~ paper's 25.5k announced prefixes
		l := 16 + rng.Intn(13)*4
		tr.Insert(PrefixFrom(AddrFromUint64(rng.Uint64(), 0), l), i)
	}
	addrs := randAddrs(1024, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	prefixes := make([]Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = PrefixFrom(AddrFromUint64(rng.Uint64(), 0), 16+rng.Intn(13)*4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr Trie[int]
		for j, p := range prefixes {
			tr.Insert(p, j)
		}
	}
}

func TestTrieLookupMax(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("2001:db8::/32"), 32)
	tr.Insert(MustParsePrefix("2001:db8::/48"), 48)
	tr.Insert(MustParsePrefix("2001:db8::/64"), 64)
	a := MustParseAddr("2001:db8::1")
	for _, tc := range []struct {
		max  int
		want int
		ok   bool
	}{
		{128, 64, true}, {64, 64, true}, {63, 48, true}, {48, 48, true},
		{47, 32, true}, {32, 32, true}, {31, 0, false}, {-1, 0, false},
	} {
		p, v, ok := tr.LookupMax(a, tc.max)
		if ok != tc.ok || (ok && (v != tc.want || p.Bits() != tc.want)) {
			t.Errorf("LookupMax(max=%d) = (%v,%d,%v), want bits %d ok=%v", tc.max, p, v, ok, tc.want, tc.ok)
		}
	}
	// Uncovered address: no match at any cap.
	if _, _, ok := tr.LookupMax(MustParseAddr("2001:db9::1"), 128); ok {
		t.Error("uncovered address matched")
	}
}

// TestTrieLookupMaxMatchesGetLoop pins LookupMax against the retired
// closest-ancestor search (one exact Get per bit length, most specific
// first) on random prefix sets — the APD §5.1 taxonomy's old inner loop.
func TestTrieLookupMaxMatchesGetLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		var tr Trie[int]
		var ps []Prefix
		for i := 0; i < 1+rng.Intn(60); i++ {
			p := PrefixFrom(AddrFromUint64(rng.Uint64()&0xffff<<48, 0), 8+rng.Intn(20)*4)
			tr.Insert(p, p.Bits())
			ps = append(ps, p)
		}
		for i := 0; i < 200; i++ {
			var a Addr
			if i%2 == 0 {
				a = ps[rng.Intn(len(ps))].RandomAddr(rng)
			} else {
				a = AddrFromUint64(rng.Uint64()&0xffff<<48, rng.Uint64())
			}
			max := rng.Intn(130) - 1
			var wantV int
			wantOK := false
			for bits := max; bits >= 0 && !wantOK; bits-- {
				if bits > 128 {
					continue
				}
				if v, ok := tr.Get(PrefixFrom(a, bits)); ok {
					wantV, wantOK = v, true
				}
			}
			_, gotV, gotOK := tr.LookupMax(a, max)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("trial %d: LookupMax(%v, %d) = (%d,%v), Get loop = (%d,%v)",
					trial, a, max, gotV, gotOK, wantV, wantOK)
			}
		}
	}
}
