// Package ip6 provides the IPv6 address machinery that the rest of the
// library builds on: a compact 128-bit address type, RFC 4291 parsing and
// RFC 5952 canonical formatting, nybble-level access (the unit of analysis
// for entropy fingerprints and aliased prefix detection), prefixes, and a
// longest-prefix-match radix trie.
//
// The package is self-contained and deliberately does not depend on
// net/netip so that nybble arithmetic, prefix fan-out, and address
// generation stay allocation-free on the hot paths of the prober.
package ip6

import (
	"errors"
	"fmt"
	"math/bits"
)

// Addr is a 128-bit IPv6 address stored in network byte order.
// The zero value is the unspecified address "::".
type Addr struct {
	hi uint64 // bytes 0-7
	lo uint64 // bytes 8-15
}

// AddrFrom16 returns the address for the given 16-byte representation.
func AddrFrom16(b [16]byte) Addr {
	var a Addr
	for i := 0; i < 8; i++ {
		a.hi = a.hi<<8 | uint64(b[i])
	}
	for i := 8; i < 16; i++ {
		a.lo = a.lo<<8 | uint64(b[i])
	}
	return a
}

// AddrFromUint64 assembles an address from its two 64-bit halves.
func AddrFromUint64(hi, lo uint64) Addr { return Addr{hi: hi, lo: lo} }

// As16 returns the 16-byte representation of a.
func (a Addr) As16() [16]byte {
	var b [16]byte
	hi, lo := a.hi, a.lo
	for i := 7; i >= 0; i-- {
		b[i] = byte(hi)
		hi >>= 8
	}
	for i := 15; i >= 8; i-- {
		b[i] = byte(lo)
		lo >>= 8
	}
	return b
}

// Hi returns the upper 64 bits (network prefix + subnet for typical plans).
func (a Addr) Hi() uint64 { return a.hi }

// Lo returns the lower 64 bits (the interface identifier).
func (a Addr) Lo() uint64 { return a.lo }

// IsZero reports whether a is the unspecified address "::".
func (a Addr) IsZero() bool { return a.hi == 0 && a.lo == 0 }

// Compare returns -1, 0, or +1 ordering addresses numerically.
func (a Addr) Compare(b Addr) int {
	switch {
	case a.hi < b.hi:
		return -1
	case a.hi > b.hi:
		return 1
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	}
	return 0
}

// Less reports whether a sorts before b.
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// Next returns the address numerically one above a, wrapping at the top of
// the address space.
func (a Addr) Next() Addr {
	lo := a.lo + 1
	hi := a.hi
	if lo == 0 {
		hi++
	}
	return Addr{hi: hi, lo: lo}
}

// Prev returns the address numerically one below a, wrapping at zero.
func (a Addr) Prev() Addr {
	lo := a.lo - 1
	hi := a.hi
	if a.lo == 0 {
		hi--
	}
	return Addr{hi: hi, lo: lo}
}

// MaxAddr returns the highest address (ff…ff), the top of the address
// space — the upper bound of an interval table's final gap.
func MaxAddr() Addr { return Addr{hi: ^uint64(0), lo: ^uint64(0)} }

// Xor returns the bitwise exclusive-or of two addresses, used for
// similarity metrics in target generation.
func (a Addr) Xor(b Addr) Addr { return Addr{hi: a.hi ^ b.hi, lo: a.lo ^ b.lo} }

// CommonPrefixLen returns the length in bits of the longest common prefix
// of a and b (0..128).
func (a Addr) CommonPrefixLen(b Addr) int {
	if x := a.hi ^ b.hi; x != 0 {
		return bits.LeadingZeros64(x)
	}
	if x := a.lo ^ b.lo; x != 0 {
		return 64 + bits.LeadingZeros64(x)
	}
	return 128
}

// Bit returns bit i of the address (0 = most significant bit).
func (a Addr) Bit(i int) byte {
	if i < 64 {
		return byte(a.hi >> (63 - i) & 1)
	}
	return byte(a.lo >> (127 - i) & 1)
}

// Nybble returns the i-th 4-bit group of the address, i in [0,32).
// Nybble 0 is the most significant hex character. The paper numbers
// nybbles 1-32; callers in internal/entropy adjust by one.
func (a Addr) Nybble(i int) byte {
	if i < 16 {
		return byte(a.hi >> (60 - 4*i) & 0xf)
	}
	return byte(a.lo >> (124 - 4*i) & 0xf)
}

// WithNybble returns a copy of a with nybble i set to v (low 4 bits used).
func (a Addr) WithNybble(i int, v byte) Addr {
	val := uint64(v & 0xf)
	if i < 16 {
		shift := uint(60 - 4*i)
		return Addr{hi: a.hi&^(0xf<<shift) | val<<shift, lo: a.lo}
	}
	shift := uint(124 - 4*i)
	return Addr{hi: a.hi, lo: a.lo&^(0xf<<shift) | val<<shift}
}

// Nybbles returns all 32 nybbles of the address most-significant first.
func (a Addr) Nybbles() [32]byte {
	var n [32]byte
	for i := 0; i < 32; i++ {
		n[i] = a.Nybble(i)
	}
	return n
}

// AddrFromNybbles assembles an address from 32 nybbles (low 4 bits each).
func AddrFromNybbles(n [32]byte) Addr {
	var a Addr
	for i := 0; i < 16; i++ {
		a.hi = a.hi<<4 | uint64(n[i]&0xf)
	}
	for i := 16; i < 32; i++ {
		a.lo = a.lo<<4 | uint64(n[i]&0xf)
	}
	return a
}

// Hash64 returns a well-mixed 64-bit hash of the address. Hi and Lo are
// absorbed separately through the splitmix64 finalizer, so addresses that
// collide under a plain Hi^Lo fold still hash apart. It is the key for
// every hash-based decision on the address hot paths — shard assignment,
// deterministic sampling, per-host epoch draws — replacing the old
// pattern of hashing the formatted String() (an allocation plus a
// 39-byte format per call).
func (a Addr) Hash64() uint64 {
	h := hashMix64(a.hi + 0x9e3779b97f4a7c15)
	return hashMix64(h ^ a.lo)
}

// hashMix64 is the splitmix64 finalizer.
func hashMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// IID returns the low 64 bits, the interface identifier under the
// ubiquitous /64 subnetting convention.
func (a Addr) IID() uint64 { return a.lo }

// IIDHammingWeight returns the number of bits set in the interface
// identifier. Low weights indicate counter-style assignment; weights near
// 32 indicate pseudo-random (privacy extension) addresses. See §8 of the
// paper where this distinguishes servers from clients.
func (a Addr) IIDHammingWeight() int { return bits.OnesCount64(a.lo) }

// IsSLAAC reports whether the interface identifier carries the 0xfffe
// marker in bytes 11-12 that EUI-64 expansion inserts (the paper's "ff:fe"
// test for SLAAC MAC-derived addresses).
func (a Addr) IsSLAAC() bool { return a.lo>>24&0xffff == 0xfffe }

// MAC returns the 48-bit MAC address recovered from an EUI-64 interface
// identifier and true, or false if the address is not SLAAC MAC-derived.
// Recovery flips the universal/local bit per RFC 4291 appendix A.
func (a Addr) MAC() ([6]byte, bool) {
	var m [6]byte
	if !a.IsSLAAC() {
		return m, false
	}
	m[0] = byte(a.lo>>56) ^ 0x02
	m[1] = byte(a.lo >> 48)
	m[2] = byte(a.lo >> 40)
	m[3] = byte(a.lo >> 16)
	m[4] = byte(a.lo >> 8)
	m[5] = byte(a.lo)
	return m, true
}

// FromMAC builds a SLAAC EUI-64 interface identifier from a MAC address
// and combines it with the given /64 network (low 64 bits of network are
// ignored).
func FromMAC(network Addr, mac [6]byte) Addr {
	iid := uint64(mac[0]^0x02)<<56 | uint64(mac[1])<<48 | uint64(mac[2])<<40 |
		0xff_fe<<24 |
		uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])
	return Addr{hi: network.hi, lo: iid}
}

// String returns the RFC 5952 canonical text form: lowercase hex, leading
// zeros suppressed, and the leftmost longest run of two or more zero
// groups compressed to "::".
func (a Addr) String() string {
	var g [8]uint16
	for i := 0; i < 4; i++ {
		g[i] = uint16(a.hi >> (48 - 16*i))
	}
	for i := 0; i < 4; i++ {
		g[4+i] = uint16(a.lo >> (48 - 16*i))
	}

	// Find leftmost longest run of >=2 zero groups.
	best, bestLen := -1, 1 // require length >= 2
	for i := 0; i < 8; {
		if g[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && g[j] == 0 {
			j++
		}
		if j-i > bestLen {
			best, bestLen = i, j-i
		}
		i = j
	}

	buf := make([]byte, 0, 39)
	appendGroup := func(v uint16) {
		const hex = "0123456789abcdef"
		started := false
		for s := 12; s >= 0; s -= 4 {
			d := v >> s & 0xf
			if d != 0 || started || s == 0 {
				buf = append(buf, hex[d])
				started = true
			}
		}
	}
	for i := 0; i < 8; i++ {
		if i == best {
			buf = append(buf, ':', ':')
			i += bestLen - 1
			continue
		}
		if len(buf) > 0 && buf[len(buf)-1] != ':' {
			buf = append(buf, ':')
		}
		appendGroup(g[i])
	}
	if len(buf) == 0 { // all zero, no run found means impossible; guard anyway
		return "::"
	}
	return string(buf)
}

// Expanded returns the full 39-character form with all leading zeros, e.g.
// "2001:0db8:0000:0000:0000:0000:0000:0001". Useful for nybble-aligned
// display in reports.
func (a Addr) Expanded() string {
	const hex = "0123456789abcdef"
	buf := make([]byte, 0, 39)
	n := a.Nybbles()
	for i := 0; i < 32; i++ {
		if i > 0 && i%4 == 0 {
			buf = append(buf, ':')
		}
		buf = append(buf, hex[n[i]])
	}
	return string(buf)
}

// errors shared by the parsers.
var (
	ErrBadAddress = errors.New("ip6: invalid IPv6 address")
	ErrBadPrefix  = errors.New("ip6: invalid IPv6 prefix")
)

// ParseAddr parses an IPv6 address in any RFC 4291 text form, including
// "::" compression and an embedded dotted-quad IPv4 tail.
func ParseAddr(s string) (Addr, error) {
	var groups [8]uint16
	n := 0         // groups filled
	ellipsis := -1 // index where "::" occurred

	if len(s) == 0 {
		return Addr{}, fmt.Errorf("%w: empty string", ErrBadAddress)
	}
	i := 0
	// Leading "::".
	if len(s) >= 2 && s[0] == ':' && s[1] == ':' {
		ellipsis = 0
		i = 2
		if i == len(s) {
			return Addr{}, nil // "::"
		}
	} else if s[0] == ':' {
		return Addr{}, fmt.Errorf("%w: %q starts with single colon", ErrBadAddress, s)
	}

	for i < len(s) {
		if n == 8 {
			return Addr{}, fmt.Errorf("%w: %q has too many groups", ErrBadAddress, s)
		}
		// Try an IPv4 tail if there is a dot in the remaining text.
		if hasDot(s[i:]) {
			if n > 6 {
				return Addr{}, fmt.Errorf("%w: %q no room for IPv4 tail", ErrBadAddress, s)
			}
			v4, err := parseIPv4(s[i:])
			if err != nil {
				return Addr{}, fmt.Errorf("%w: %q bad IPv4 tail: %v", ErrBadAddress, s, err)
			}
			groups[n] = uint16(v4 >> 16)
			groups[n+1] = uint16(v4)
			n += 2
			i = len(s)
			break
		}
		// Parse one hex group.
		v, adv, err := parseHexGroup(s[i:])
		if err != nil {
			return Addr{}, fmt.Errorf("%w: %q: %v", ErrBadAddress, s, err)
		}
		groups[n] = v
		n++
		i += adv
		if i == len(s) {
			break
		}
		if s[i] != ':' {
			return Addr{}, fmt.Errorf("%w: %q unexpected character %q", ErrBadAddress, s, s[i])
		}
		i++
		if i < len(s) && s[i] == ':' {
			if ellipsis >= 0 {
				return Addr{}, fmt.Errorf("%w: %q has two '::'", ErrBadAddress, s)
			}
			ellipsis = n
			i++
			if i == len(s) {
				break
			}
		} else if i == len(s) {
			return Addr{}, fmt.Errorf("%w: %q ends with single colon", ErrBadAddress, s)
		}
	}

	if ellipsis < 0 {
		if n != 8 {
			return Addr{}, fmt.Errorf("%w: %q has %d groups, want 8", ErrBadAddress, s, n)
		}
	} else {
		if n == 8 {
			return Addr{}, fmt.Errorf("%w: %q '::' in full-length address", ErrBadAddress, s)
		}
		// Shift the groups after the ellipsis to the end.
		tail := n - ellipsis
		for k := 0; k < tail; k++ {
			groups[7-k] = groups[n-1-k]
		}
		for k := ellipsis; k < 8-tail; k++ {
			groups[k] = 0
		}
	}

	var a Addr
	for k := 0; k < 4; k++ {
		a.hi = a.hi<<16 | uint64(groups[k])
	}
	for k := 4; k < 8; k++ {
		a.lo = a.lo<<16 | uint64(groups[k])
	}
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
		if s[i] == ':' {
			return false
		}
	}
	return false
}

func parseHexGroup(s string) (uint16, int, error) {
	var v uint32
	i := 0
	for i < len(s) && i < 4 {
		c := s[i]
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			if i == 0 {
				return 0, 0, fmt.Errorf("empty group")
			}
			return uint16(v), i, nil
		}
		v = v<<4 | d
		i++
	}
	if i == 0 {
		return 0, 0, fmt.Errorf("empty group")
	}
	if i == 4 && i < len(s) && isHexDigit(s[i]) {
		return 0, 0, fmt.Errorf("group too long")
	}
	return uint16(v), i, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func parseIPv4(s string) (uint32, error) {
	var v uint32
	part := 0
	val := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if val < 0 || val > 255 {
				return 0, fmt.Errorf("octet out of range")
			}
			v = v<<8 | uint32(val)
			part++
			val = -1
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad octet character %q", c)
		}
		if val < 0 {
			val = 0
		}
		val = val*10 + int(c-'0')
		if val > 999 {
			return 0, fmt.Errorf("octet too long")
		}
	}
	if part != 4 {
		return 0, fmt.Errorf("want 4 octets, got %d", part)
	}
	return v, nil
}
