package ip6

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSeqSlice(t *testing.T) {
	addrs := Addrs{
		MustParseAddr("2001:db8::1"),
		MustParseAddr("2001:db8::2"),
		MustParseAddr("2001:db8::3"),
		MustParseAddr("2001:db8::4"),
	}
	v := SeqSlice(addrs, 1, 3)
	if v.Len() != 2 || v.At(0) != addrs[1] || v.At(1) != addrs[2] {
		t.Fatalf("SeqSlice view wrong: len=%d", v.Len())
	}
	// Nested slicing must not stack indirection and must stay correct.
	inner := SeqSlice(subSeq{seq: addrs, off: 1, n: 3}, 1, 3)
	if ss, ok := inner.(subSeq); !ok || ss.off != 2 || ss.n != 2 {
		t.Errorf("nested SeqSlice did not collapse: %+v", inner)
	}
	if inner.At(0) != addrs[2] || inner.At(1) != addrs[3] {
		t.Error("nested SeqSlice reads wrong elements")
	}
	if empty := SeqSlice(addrs, 2, 2); empty.Len() != 0 {
		t.Error("empty slice should have length 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds SeqSlice should panic")
		}
	}()
	SeqSlice(addrs, 3, 5)
}

// linearRuns is the obvious O(n) reference for PrefixRuns.
func linearRuns(sorted AddrSeq, bits int) [][3]uint64 {
	var out [][3]uint64 // prefix hi, lo index, hi index
	n := sorted.Len()
	for lo := 0; lo < n; {
		p := PrefixFrom(sorted.At(lo), bits)
		hi := lo + 1
		for hi < n && p.Contains(sorted.At(hi)) {
			hi++
		}
		out = append(out, [3]uint64{p.Addr().Hi(), uint64(lo), uint64(hi)})
		lo = hi
	}
	return out
}

// TestPrefixRunsMatchesLinearScan pins the galloping boundary scan against
// a linear reference on random sorted address sets with heavily duplicated
// prefixes (run lengths from 1 to thousands).
func TestPrefixRunsMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4000)
		addrs := make([]Addr, n)
		for i := range addrs {
			// Few distinct /32s, many distinct hosts: long and short runs.
			hi := uint64(0x2001_0db8_0000_0000) | uint64(rng.Intn(8))<<32 | uint64(rng.Intn(4))
			addrs[i] = AddrFromUint64(hi, rng.Uint64()>>uint(rng.Intn(60)))
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		seq := Addrs(addrs)
		want := linearRuns(seq, 32)
		var got [][3]uint64
		PrefixRuns(seq, 32, func(p Prefix, lo, hi int) bool {
			got = append(got, [3]uint64{p.Addr().Hi(), uint64(lo), uint64(hi)})
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrefixRunsEarlyStopAndEmpty(t *testing.T) {
	calls := 0
	PrefixRuns(Addrs(nil), 32, func(Prefix, int, int) bool { calls++; return true })
	if calls != 0 {
		t.Error("empty sequence must produce no runs")
	}
	addrs := Addrs{
		MustParseAddr("2001:db8::1"),
		MustParseAddr("2001:dead::1"),
		MustParseAddr("2001:beff::1"),
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	PrefixRuns(addrs, 32, func(Prefix, int, int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop ignored: %d calls", calls)
	}
}

func TestPrefixRunsCoversWholeSequence(t *testing.T) {
	// Runs must partition [0, n) in order for any prefix length.
	rng := rand.New(rand.NewSource(7))
	addrs := make([]Addr, 2000)
	for i := range addrs {
		addrs[i] = AddrFromUint64(rng.Uint64()&0xffff_0000_0000_0000, rng.Uint64())
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	for _, bits := range []int{0, 16, 32, 64, 128} {
		next := 0
		PrefixRuns(Addrs(addrs), bits, func(p Prefix, lo, hi int) bool {
			if lo != next || hi <= lo {
				t.Fatalf("bits=%d: run [%d,%d) does not continue at %d", bits, lo, hi, next)
			}
			for i := lo; i < hi; i++ {
				if !p.Contains(addrs[i]) {
					t.Fatalf("bits=%d: addr %d outside run prefix", bits, i)
				}
			}
			next = hi
			return true
		})
		if next != len(addrs) {
			t.Fatalf("bits=%d: runs cover %d of %d", bits, next, len(addrs))
		}
	}
}
