package ip6

import (
	"math/rand"
	"testing"
)

// TestShardSetCompactMembership pins that compaction changes memory
// layout only: membership answers, the sorted view, Each order and Len
// are identical before and after Compact, and the set resumes normal
// operation after post-compaction mutations.
func TestShardSetCompactMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pool := randAddrs(4000, 17)
	s := NewShardSet(0)
	ref := refSet{}
	for _, a := range pool[:3000] {
		s.Add(a)
		ref.add(a)
	}
	sortedBefore := append([]Addr(nil), s.Sorted()...)
	var eachBefore []Addr
	s.Each(func(a Addr) bool { eachBefore = append(eachBefore, a); return true })

	s.Compact()
	if !s.Compacted() {
		t.Fatal("Compact did not mark the set compacted")
	}
	for i := 0; i < 2000; i++ {
		a := pool[rng.Intn(len(pool))]
		_, want := ref[a]
		if s.Contains(a) != want {
			t.Fatalf("compacted Contains(%v) = %v, want %v", a, !want, want)
		}
	}
	if !addrsEqual(s.Sorted(), sortedBefore) {
		t.Fatal("compaction changed the sorted view")
	}
	var eachAfter []Addr
	s.Each(func(a Addr) bool { eachAfter = append(eachAfter, a); return true })
	if !addrsEqual(eachAfter, eachBefore) {
		t.Fatal("compaction changed the Each iteration order")
	}

	// Mutations after Compact leave the compacted fast path, rebuild the
	// affected shard maps, and keep exact dedup semantics.
	for _, a := range pool[2500:] {
		if s.Add(a) != ref.add(a) {
			t.Fatalf("post-compact Add(%v) disagreement", a)
		}
	}
	if s.Compacted() {
		t.Fatal("mutation did not clear the compacted state")
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
	}
	if !addrsEqual(s.Sorted(), ref.sorted()) {
		t.Fatal("sorted view diverged after post-compact mutations")
	}
	for i := 0; i < 2000; i++ {
		a := pool[rng.Intn(len(pool))]
		_, want := ref[a]
		if s.Contains(a) != want {
			t.Fatalf("post-compact Contains(%v) = %v, want %v", a, !want, want)
		}
	}
}

// TestShardSetCompactBatch exercises the batch mutation paths against
// compaction: AddSlice and AddAll must clear the snapshot and dedup
// exactly as on a never-compacted set.
func TestShardSetCompactBatch(t *testing.T) {
	pool := randAddrs(6000, 23)
	s := NewShardSet(0)
	ref := refSet{}
	s.AddSlice(pool[:4000])
	for _, a := range pool[:4000] {
		ref.add(a)
	}
	s.Compact()
	wantNew := 0
	for _, a := range pool[1000:5000] {
		if ref.add(a) {
			wantNew++
		}
	}
	if got := s.AddSlice(pool[1000:5000]); got != wantNew {
		t.Fatalf("post-compact AddSlice new = %d, want %d", got, wantNew)
	}
	if !addrsEqual(s.Sorted(), ref.sorted()) {
		t.Fatal("sorted view diverged after post-compact AddSlice")
	}

	other := NewShardSet(0)
	other.AddSlice(pool[3000:])
	s.Compact()
	wantNew = 0
	for _, a := range pool[3000:] {
		if ref.add(a) {
			wantNew++
		}
	}
	if got := s.AddAll(other); got != wantNew {
		t.Fatalf("post-compact AddAll new = %d, want %d", got, wantNew)
	}
	if !addrsEqual(s.Sorted(), ref.sorted()) {
		t.Fatal("sorted view diverged after post-compact AddAll")
	}
}

// TestShardSetCompactFreeze pins the epoch-snapshot interaction: a
// FrozenView taken before Compact keeps serving its addresses, and
// compaction reuses the same cached sorted view (no copy).
func TestShardSetCompactFreeze(t *testing.T) {
	pool := randAddrs(3000, 29)
	s := NewShardSet(0)
	s.AddSlice(pool)
	fv := s.Freeze()
	s.Compact()
	if got, want := fv.Len(), s.Len(); got != want {
		t.Fatalf("frozen view len = %d, want %d", got, want)
	}
	for _, a := range pool[:200] {
		if !fv.Contains(a) || !s.Contains(a) {
			t.Fatalf("address %v lost across Compact", a)
		}
	}
}

// TestShardSetMemBytes pins the accounting direction: compaction must
// drop the map component to zero and leave columns and the sorted view
// in place.
func TestShardSetMemBytes(t *testing.T) {
	s := NewShardSet(0)
	s.AddSlice(randAddrs(10000, 31))
	s.Sorted()
	total, maps, cols, sorted := s.MemBytes()
	if maps == 0 || cols == 0 || sorted == 0 {
		t.Fatalf("pre-compact accounting has empty components: maps=%d cols=%d sorted=%d", maps, cols, sorted)
	}
	if total != maps+cols+sorted {
		t.Fatalf("total %d != %d+%d+%d", total, maps, cols, sorted)
	}
	s.Compact()
	_, maps2, cols2, sorted2 := s.MemBytes()
	if maps2 != 0 {
		t.Fatalf("post-compact map accounting = %d, want 0", maps2)
	}
	// Clipping leaves the columns at exactly 16 bytes per address.
	if want := int64(s.Len()) * 16; cols2 != want {
		t.Fatalf("post-compact column accounting = %d, want exact %d (was %d)", cols2, want, cols)
	}
	if sorted2 != sorted {
		t.Fatalf("compaction changed sorted-view accounting: %d→%d", sorted, sorted2)
	}
}

// TestShardSetCompactCols pins the columnar compaction flavor: maps and
// slack drop, no sorted view is built, and membership, iteration and
// later mutations stay exact.
func TestShardSetCompactCols(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pool := randAddrs(5000, 37)
	s := NewShardSet(0)
	ref := refSet{}
	for _, a := range pool[:3500] {
		s.Add(a)
		ref.add(a)
	}
	var eachBefore []Addr
	s.Each(func(a Addr) bool { eachBefore = append(eachBefore, a); return true })

	s.CompactCols()
	if s.Compacted() {
		t.Fatal("CompactCols must not enter the sorted-snapshot fast path")
	}
	_, maps, cols, sorted := s.MemBytes()
	if maps != 0 {
		t.Fatalf("post-CompactCols map accounting = %d, want 0", maps)
	}
	if want := int64(s.Len()) * 16; cols != want {
		t.Fatalf("post-CompactCols column accounting = %d, want %d", cols, want)
	}
	if sorted != 0 {
		t.Fatalf("CompactCols built a sorted view (%d bytes)", sorted)
	}
	var eachAfter []Addr
	s.Each(func(a Addr) bool { eachAfter = append(eachAfter, a); return true })
	if !addrsEqual(eachAfter, eachBefore) {
		t.Fatal("CompactCols changed the Each iteration order")
	}
	// Contains falls back to the lazy map rebuild and answers exactly.
	for i := 0; i < 1500; i++ {
		a := pool[rng.Intn(len(pool))]
		_, want := ref[a]
		if s.Contains(a) != want {
			t.Fatalf("post-CompactCols Contains(%v) = %v, want %v", a, !want, want)
		}
	}
	for _, a := range pool[3000:] {
		if s.Add(a) != ref.add(a) {
			t.Fatalf("post-CompactCols Add(%v) disagreement", a)
		}
	}
	if !addrsEqual(s.Sorted(), ref.sorted()) {
		t.Fatal("sorted view diverged after post-CompactCols mutations")
	}
}
