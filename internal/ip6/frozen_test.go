package ip6

import "testing"

// TestFrozenViewPinsSortedEpoch pins the epoch-pinning contract of
// Freeze: the frozen view keeps the sorted snapshot it was taken at —
// contents, order, Contains — no matter how the live set mutates
// afterwards (rebuildSorted builds fresh backing arrays, never mutates
// a handed-out one).
func TestFrozenViewPinsSortedEpoch(t *testing.T) {
	pool := randAddrs(3000, 5)
	s := NewShardSet(0)
	s.AddSlice(pool[:2000])
	fv := s.Freeze()
	want := append([]Addr(nil), s.Sorted()...)

	// Mutate the live set; the frozen view must not move.
	s.AddSlice(pool[2000:])
	if s.Len() <= len(want) {
		t.Fatal("test needs the later adds to grow the live set")
	}
	if fv.Len() != len(want) {
		t.Fatalf("frozen Len = %d, want %d", fv.Len(), len(want))
	}
	if !addrsEqual(fv.Sorted(), want) {
		t.Fatal("frozen Sorted moved after live-set mutation")
	}
	for i, a := range want {
		if fv.At(i) != a {
			t.Fatalf("frozen At(%d) = %v, want %v", i, fv.At(i), a)
		}
	}
	seq := fv.Seq()
	if seq.Len() != len(want) || (len(want) > 0 && seq.At(0) != want[0]) {
		t.Fatal("frozen Seq disagrees with Sorted")
	}

	// Contains answers against the pinned epoch, not the live set.
	member := map[Addr]bool{}
	for _, a := range want {
		member[a] = true
		if !fv.Contains(a) {
			t.Fatalf("frozen Contains(%v) = false for a member", a)
		}
	}
	for _, a := range pool[2000:] {
		if !member[a] && fv.Contains(a) {
			t.Fatalf("frozen Contains(%v) = true for an address added after Freeze", a)
		}
	}

	if got := FrozenOf(want); got.Len() != len(want) || !addrsEqual(got.Sorted(), want) {
		t.Fatal("FrozenOf does not wrap the given slice")
	}
}
