package ip6

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refSet is the plain-map reference the property tests compare against.
type refSet map[Addr]struct{}

func (r refSet) add(a Addr) bool {
	if _, ok := r[a]; ok {
		return false
	}
	r[a] = struct{}{}
	return true
}

func (r refSet) sorted() []Addr {
	out := make([]Addr, 0, len(r))
	for a := range r {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func addrsEqual(a, b []Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardSetVsReference drives a ShardSet and a reference map through
// the same randomized mixed workload (Add, AddSlice with duplicates,
// Contains, Sorted) and requires identical observable state throughout.
func TestShardSetVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewShardSet(0)
	ref := refSet{}
	pool := randAddrs(2000, 11)
	for step := 0; step < 200; step++ {
		switch step % 4 {
		case 0: // single adds
			for i := 0; i < 20; i++ {
				a := pool[rng.Intn(len(pool))]
				if s.Add(a) != ref.add(a) {
					t.Fatalf("step %d: Add(%v) disagreement", step, a)
				}
			}
		case 1: // batch with intra-batch duplicates
			batch := make([]Addr, 0, 60)
			for i := 0; i < 30; i++ {
				a := pool[rng.Intn(len(pool))]
				batch = append(batch, a, a)
			}
			wantNew := 0
			for _, a := range batch {
				if ref.add(a) {
					wantNew++
				}
			}
			if got := s.AddSlice(batch); got != wantNew {
				t.Fatalf("step %d: AddSlice new = %d, want %d", step, got, wantNew)
			}
		case 2: // membership probes
			for i := 0; i < 50; i++ {
				a := pool[rng.Intn(len(pool))]
				_, want := ref[a]
				if s.Contains(a) != want {
					t.Fatalf("step %d: Contains(%v) = %v, want %v", step, a, !want, want)
				}
			}
		case 3: // sorted view equivalence mid-stream
			if !addrsEqual(s.Sorted(), ref.sorted()) {
				t.Fatalf("step %d: sorted view diverged", step)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
		}
	}
}

// TestShardSetAcrossWorkers pins worker-count independence: the same
// insertion history must yield identical Len, new-counts, Sorted views,
// Each order, and AddSliceCollect results for workers 1, 4 and 16.
func TestShardSetAcrossWorkers(t *testing.T) {
	batch1 := randAddrs(5000, 3)
	batch2 := randAddrs(5000, 4) // overlaps pool space of batch1? distinct seeds → mostly disjoint
	batch2 = append(batch2, batch1[:1000]...)

	type snapshot struct {
		new1, new2 int
		fresh2     []Addr
		sorted     []Addr
		each       []Addr
	}
	build := func(workers int) snapshot {
		s := NewShardSetWorkers(0, workers)
		n1 := s.AddSlice(batch1)
		fresh := s.AddSliceCollect(batch2)
		var each []Addr
		s.Each(func(a Addr) bool { each = append(each, a); return true })
		return snapshot{new1: n1, new2: len(fresh), fresh2: fresh, sorted: s.Sorted(), each: each}
	}
	ref := build(1)
	for _, w := range []int{4, 16} {
		got := build(w)
		if got.new1 != ref.new1 || got.new2 != ref.new2 {
			t.Errorf("workers=%d: new counts (%d,%d), want (%d,%d)", w, got.new1, got.new2, ref.new1, ref.new2)
		}
		if !addrsEqual(got.fresh2, ref.fresh2) {
			t.Errorf("workers=%d: AddSliceCollect order/content differs", w)
		}
		if !addrsEqual(got.sorted, ref.sorted) {
			t.Errorf("workers=%d: sorted view differs", w)
		}
		if !addrsEqual(got.each, ref.each) {
			t.Errorf("workers=%d: Each order differs", w)
		}
	}
}

// TestShardSetSortedInvalidation pins the caching contract: repeated
// Sorted calls without writes return the same cached slice; any
// interleaved write invalidates it and the next Sorted reflects the new
// contents.
func TestShardSetSortedInvalidation(t *testing.T) {
	s := NewShardSet(0)
	s.AddSlice(randAddrs(300, 9))
	v1 := s.Sorted()
	v2 := s.Sorted()
	if &v1[0] != &v2[0] || len(v1) != len(v2) {
		t.Error("Sorted without writes must return the cached slice")
	}
	extra := MustParseAddr("2001:db8:ffff::1")
	if s.Contains(extra) {
		t.Fatal("test address already present")
	}
	s.Add(extra)
	v3 := s.Sorted()
	if len(v3) != len(v1)+1 {
		t.Fatalf("post-write sorted len = %d, want %d", len(v3), len(v1)+1)
	}
	found := false
	for _, a := range v3 {
		if a == extra {
			found = true
		}
	}
	if !found {
		t.Error("sorted view missing address added after cache build")
	}
	if !sort.SliceIsSorted(v3, func(i, j int) bool { return v3[i].Less(v3[j]) }) {
		t.Error("rebuilt view not sorted")
	}
	// Duplicate insertion must NOT invalidate (no mutation happened).
	v4 := s.Sorted()
	s.Add(extra)
	v5 := s.Sorted()
	if &v4[0] != &v5[0] {
		t.Error("duplicate Add invalidated the cache")
	}
	// Interleaved batch writes across several epochs.
	ref := refSet{}
	for _, a := range v5 {
		ref.add(a)
	}
	rng := rand.New(rand.NewSource(21))
	for epoch := 0; epoch < 5; epoch++ {
		batch := randAddrs(100, int64(100+epoch))
		for i := range batch {
			if rng.Intn(2) == 0 {
				batch[i] = v5[rng.Intn(len(v5))] // mix in duplicates
			}
		}
		s.AddSlice(batch)
		for _, a := range batch {
			ref.add(a)
		}
		if !addrsEqual(s.Sorted(), ref.sorted()) {
			t.Fatalf("epoch %d: sorted view diverged after interleaved writes", epoch)
		}
	}
}

func TestShardSetAddAll(t *testing.T) {
	a, b := NewShardSet(0), NewShardSet(0)
	addrs := randAddrs(1000, 5)
	a.AddSlice(addrs[:600])
	b.AddSlice(addrs[400:])
	if n := a.AddAll(b); n != 400 {
		t.Errorf("AddAll new = %d, want 400", n)
	}
	if a.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", a.Len())
	}
	ref := refSet{}
	for _, x := range addrs {
		ref.add(x)
	}
	if !addrsEqual(a.Sorted(), ref.sorted()) {
		t.Error("AddAll contents wrong")
	}
}

func TestShardSetEachSorted(t *testing.T) {
	s := NewShardSet(0)
	s.AddSlice(randAddrs(500, 6))
	var got []Addr
	s.EachSorted(func(a Addr) bool { got = append(got, a); return true })
	if !addrsEqual(got, s.Sorted()) {
		t.Error("EachSorted != Sorted")
	}
	n := 0
	s.EachSorted(func(Addr) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("EachSorted early stop visited %d", n)
	}
	if s.SortedSeq().Len() != s.Len() || s.SortedSeq().At(0) != got[0] {
		t.Error("SortedSeq view inconsistent")
	}
}

// TestShardSetConcurrentReadersAndWriters exercises the locking story
// under -race: batch writers, point writers, membership readers, Each
// walkers and Sorted rebuilders all at once.
func TestShardSetConcurrentReadersAndWriters(t *testing.T) {
	s := NewShardSet(0)
	pool := randAddrs(4000, 8)
	s.AddSlice(pool[:1000])
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s.AddSlice(pool[g*1000 : (g+1)*1000])
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Contains(pool[(g*997+i)%len(pool)])
			}
		}(g)
		wg.Add(1)
		go func(int) {
			defer wg.Done()
			n := 0
			s.Each(func(Addr) bool { n++; return true })
			_ = s.Sorted()
		}(g)
	}
	wg.Wait()
	if s.Len() != len(refSetOf(pool)) {
		t.Errorf("Len = %d after concurrent writes, want %d", s.Len(), len(refSetOf(pool)))
	}
	if !addrsEqual(s.Sorted(), refSetOf(pool).sorted()) {
		t.Error("final sorted view wrong after concurrent writes")
	}
}

func refSetOf(addrs []Addr) refSet {
	r := refSet{}
	for _, a := range addrs {
		r.add(a)
	}
	return r
}

func TestSortColumnsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(400)
		hi := make([]uint64, n)
		lo := make([]uint64, n)
		for i := range hi {
			hi[i] = uint64(rng.Intn(8)) // dense duplicates in hi
			lo[i] = uint64(rng.Intn(64))
		}
		want := make([]Addr, n)
		for i := range want {
			want[i] = AddrFromUint64(hi[i], lo[i])
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
		sortColumns(hi, lo)
		for i := range want {
			if AddrFromUint64(hi[i], lo[i]) != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

// benchAddrs builds a deterministic synthetic hitlist of n addresses.
func benchAddrs(n int) []Addr {
	out := make([]Addr, n)
	x := uint64(0x16c18)
	for i := range out {
		x = hashMix64(x + 0x9e3779b97f4a7c15)
		out[i] = AddrFromUint64(0x2001_0db8_0000_0000|x>>40, x)
	}
	return out
}

// BenchmarkLegacySetSorted is the pre-refactor baseline: one global map,
// full materialize + sort per consumer (what every stage used to pay).
func BenchmarkLegacySetSorted(b *testing.B) {
	const n = 1 << 20
	s := NewSet(n)
	s.AddSlice(benchAddrs(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Sorted()) != n {
			b.Fatal("bad sort")
		}
	}
}

// BenchmarkLegacySetAddSlice is the pre-refactor baseline for batch
// insert + dedup into the single global map.
func BenchmarkLegacySetAddSlice(b *testing.B) {
	const n = 1 << 20
	addrs := benchAddrs(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSet(n)
		s.AddSlice(addrs[:n/2])
		s.AddSlice(addrs)
		if s.Len() != n {
			b.Fatal("bad dedup")
		}
	}
}

// BenchmarkShardSetAddSlice measures parallel batch insert + dedup at
// hitlist scale (half the batch duplicates an earlier epoch).
func BenchmarkShardSetAddSlice(b *testing.B) {
	const n = 1 << 20
	addrs := benchAddrs(n)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewShardSetWorkers(n, w)
				s.AddSlice(addrs[:n/2])
				s.AddSlice(addrs) // second epoch: 50% duplicates
				if s.Len() != n {
					b.Fatal("bad dedup")
				}
			}
		})
	}
}

// BenchmarkHitlistSorted measures sorted-view construction (parallel
// shard sorts + k-way merge) over a 2^20-address hitlist. Each iteration
// invalidates the cache with one insertion, so the incremental rebuild
// path (merge one-element tail) is measured by the cache=warm variant and
// the full build by cache=cold.
func BenchmarkHitlistSorted(b *testing.B) {
	const n = 1 << 20
	addrs := benchAddrs(n)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cold/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := NewShardSetWorkers(n, w)
				s.AddSlice(addrs)
				b.StartTimer()
				if len(s.Sorted()) != n {
					b.Fatal("bad sort")
				}
			}
		})
	}
	b.Run("warm-invalidate", func(b *testing.B) {
		s := NewShardSet(n)
		s.AddSlice(addrs)
		s.Sorted()
		x := uint64(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Add(AddrFromUint64(0xfd00, x))
			x++
			s.Sorted()
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := NewShardSet(n)
		s.AddSlice(addrs)
		s.Sorted()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(s.Sorted()) != s.Len() {
				b.Fatal("cache miss")
			}
		}
	})
}
