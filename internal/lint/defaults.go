package lint

// This file is the suite's single source of truth for what the repo
// considers sealed, deterministic and hot. cmd/expanselint runs
// DefaultAnalyzers over every package; changing an invariant's scope
// means changing a table here, in one reviewed place.

// DefaultSealedTypes lists the RCU-published snapshot types and their
// seal packages. core.Epoch is the published day (Pipeline.Latest);
// ip6.FrozenView pins the hitlist a published epoch was sealed
// against; apd.DayColumn and apd.CandidateTable are the write-once
// history column and frozen candidate universe the window merge reads
// lock-free.
var DefaultSealedTypes = []SealedType{
	{Qualified: "expanse/internal/core.Epoch", SealPkg: "expanse/internal/core"},
	{Qualified: "expanse/internal/ip6.FrozenView", SealPkg: "expanse/internal/ip6"},
	{Qualified: "expanse/internal/apd.DayColumn", SealPkg: "expanse/internal/apd"},
	{Qualified: "expanse/internal/apd.CandidateTable", SealPkg: "expanse/internal/apd"},
	// netsim.Internet is the sealed columnar world plane: sorted host
	// columns, flat net/region/ISP columns. Only construction (inside the
	// package) writes it; every probe-time reader depends on the freeze.
	{Qualified: "expanse/internal/netsim.Internet", SealPkg: "expanse/internal/netsim"},
}

// DefaultDetRand scopes detrand to the planes whose outputs must be
// byte-identical for a fixed seed at any worker count. cmd/bench* and
// internal/prof measure wall-clock on purpose and are exempt (they are
// also outside the deterministic set, but the carve-out is explicit so
// the policy survives future set growth).
var DefaultDetRand = DetRandConfig{
	Deterministic: []string{
		"expanse/internal/core",
		"expanse/internal/apd",
		"expanse/internal/probe",
		"expanse/internal/netsim",
		"expanse/internal/cluster",
		"expanse/internal/entropy",
	},
	Exempt: []string{
		"expanse/cmd/bench",
		"expanse/internal/prof",
	},
}

// DefaultHotFuncs designates the per-probe/per-candidate inner loops —
// the functions PRs 4-7 repeatedly had to de-allocate by profile.
var DefaultHotFuncs = []HotFunc{
	{PkgPath: "expanse/internal/probe", Func: "ScanColumns"},
	{PkgPath: "expanse/internal/probe", Func: "scanColumns"},
	{PkgPath: "expanse/internal/probe", Func: "scanChunk"},
	{PkgPath: "expanse/internal/netsim", Func: "ProbeBatch"},
	{PkgPath: "expanse/internal/netsim", Func: "emit"},
	// The columnar world plane's resolution primitives: the sorted-column
	// binary searches and the batch-path merge cursors (hostRun.lookup and
	// ivalRun.lookup both match "lookup" — both are per-probe hot).
	{PkgPath: "expanse/internal/netsim", Func: "find"},
	{PkgPath: "expanse/internal/netsim", Func: "search"},
	{PkgPath: "expanse/internal/netsim", Func: "lookup"},
	{PkgPath: "expanse/internal/apd", Func: "ProbeDayFlat"},
	{PkgPath: "expanse/internal/apd", Func: "MergeColumns"},
	{PkgPath: "expanse/internal/wire", Func: "ProbeBatchInto"},
	{PkgPath: "expanse/internal/ip6", Func: "LookupInterval"},
	{PkgPath: "expanse/internal/ip6", Func: "CompileIntervals"},
}

// DefaultAnalyzers returns the full suite wired to the repo tables.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewMapOrder(),
		NewSealedWrite(DefaultSealedTypes),
		NewDetRand(DefaultDetRand),
		NewHotAlloc(DefaultHotFuncs),
	}
}
