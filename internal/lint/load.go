package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages for the suite. Standard-
// library imports resolve through the toolchain's source importer (the
// environment has no module proxy, so everything type-checks from
// source); module-local imports resolve against ModuleRoot; Extra maps
// fixture import paths to directories for linttest.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string
	// Extra maps import paths to directories outside the module
	// (testdata fixture packages). Checked before module resolution.
	Extra map[string]string
	// IncludeTests adds _test.go files of the target package itself
	// (never of dependencies) to the analysis.
	IncludeTests bool

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module with the given path
// and directory.
func NewLoader(modulePath, moduleRoot string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleRoot: moduleRoot,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module path and root directory.
func FindModule(dir string) (modulePath, moduleRoot string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// dirFor maps an import path to a directory, or "" if the path is not
// module-local (and not an Extra fixture).
func (l *Loader) dirFor(path string) string {
	if d, ok := l.Extra[path]; ok {
		return d
	}
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
	}
	return ""
}

// Load parses and type-checks the package with the given import path
// (module-local or Extra), caching the result.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %s is not a module-local package", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// In-package test files share the package; external (_test suffix)
	// test packages are out of scope for the suite.
	files = samePackageFiles(files)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", path, terrs[0])
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer over the same resolution rules as
// Load, delegating non-local paths to the toolchain source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.dirFor(path) != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// goFilesIn lists the directory's buildable .go file names, sorted.
// Test files ride along only when tests is set.
func goFilesIn(dir string, tests bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// samePackageFiles drops files whose package clause differs from the
// majority clause (external _test packages sharing the directory).
func samePackageFiles(files []*ast.File) []*ast.File {
	count := map[string]int{}
	for _, f := range files {
		count[f.Name.Name]++
	}
	best, bestN := "", 0
	// Prefer the non-_test clause on ties: sort names for determinism.
	names := make([]string, 0, len(count))
	for n := range count {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if count[n] > bestN || (count[n] == bestN && !strings.HasSuffix(n, "_test")) {
			best, bestN = n, count[n]
		}
	}
	var out []*ast.File
	for _, f := range files {
		if f.Name.Name == best {
			out = append(out, f)
		}
	}
	return out
}
