package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRandConfig scopes the detrand analyzer to the deterministic
// planes.
type DetRandConfig struct {
	// Deterministic lists import-path prefixes where nondeterminism
	// sources are forbidden.
	Deterministic []string
	// Exempt lists import-path prefixes carved back out (benchmark
	// harnesses and profilers, where wall-clock is the point). They
	// are checked first, so an exempt prefix inside a deterministic
	// prefix wins.
	Exempt []string
}

// NewDetRand returns the detrand analyzer: the pipeline's planes must
// produce byte-identical output for a fixed seed at any worker count,
// so inside them every source of nondeterminism is a bug — time.Now
// (wall clock leaking into state), the global math/rand functions
// (process-wide source, seeded who-knows-where, shared across
// goroutines), and crypto/rand (hardware entropy). Seeded generators
// (rand.New(rand.NewSource(seed))) remain the sanctioned pattern; the
// global-function check is also what catches "unseeded" construction
// like rand.NewSource(rand.Int63()).
func NewDetRand(cfg DetRandConfig) *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc:  "flags wall-clock and global/unseeded randomness inside the deterministic planes",
	}
	a.Run = func(p *Pass) { runDetRand(p, cfg) }
	return a
}

// Global math/rand (and v2) functions driven by the shared process
// source. rand.New/NewSource/NewPCG/NewChaCha8/NewZipf take explicit
// seeds and stay legal.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

func runDetRand(p *Pass, cfg DetRandConfig) {
	path := p.Pkg.Path()
	for _, ex := range cfg.Exempt {
		if strings.HasPrefix(path, ex) {
			return
		}
	}
	active := false
	for _, det := range cfg.Deterministic {
		if path == det || strings.HasPrefix(path, det+"/") {
			active = true
			break
		}
	}
	if !active {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeFunc(p, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			sig, _ := obj.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true
			}
			switch pkg, name := obj.Pkg().Path(), obj.Name(); {
			case pkg == "time" && name == "Now":
				p.Reportf(call.Pos(), "time.Now in deterministic plane %s: wall clock must not reach pipeline state (use the simulated day/wire.Time)", path)
			case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRand[name]:
				p.Reportf(call.Pos(), "global %s.%s in deterministic plane %s: draws from the process-wide source; use an explicitly seeded *rand.Rand", pkg, name, path)
			case pkg == "crypto/rand":
				p.Reportf(call.Pos(), "crypto/rand.%s in deterministic plane %s: hardware entropy is nondeterministic by design", name, path)
			}
			return true
		})
	}
}

// calleeFunc resolves a call's callee to a *types.Func, or nil.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj, _ := p.ObjectOf(fun.Sel).(*types.Func)
		return obj
	case *ast.Ident:
		obj, _ := p.ObjectOf(fun).(*types.Func)
		return obj
	}
	return nil
}
