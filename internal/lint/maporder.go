package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewMapOrder returns the maporder analyzer: a `range` over a map whose
// loop body feeds an order-sensitive consumer — a formatting/print
// call, a writer or digest, or an append into a slice that is never
// sorted afterwards — silently couples output to Go's randomized map
// iteration order. This is the exact bug class PR 2 fixed by hand in
// the Fig 8 report; the byte-identical-at-any-worker-count invariant
// dies the moment one of these ships.
//
// Sanctioned patterns pass untouched: pure aggregation (counters, map-
// to-map writes) and the collect-keys-then-sort idiom, where every
// append target declared outside the loop is later passed to a sort
// call (sort.Slice, slices.Sort, a SortedKeys-style helper — any callee
// whose name contains "sort").
func NewMapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flags range-over-map iteration whose order can reach an output without an explicit sort",
	}
	a.Run = runMapOrder
	return a
}

// fmt print-family functions whose output depends on call order.
var printFamily = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// Method names treated as order-sensitive sinks: writers, digests, and
// the repo's report builders.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"addf": true, "addln": true,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, f, rs)
			return true
		})
	}
}

func checkMapRange(p *Pass, f *ast.File, rs *ast.RangeStmt) {
	var sink *ast.CallExpr
	appends := map[types.Object]bool{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Nested map ranges get their own diagnostic; don't charge
		// their sinks to the outer loop too.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs {
			if t := p.TypeOf(inner.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := appendTarget(p, call); obj != nil {
			if !within(obj.Pos(), rs) {
				appends[obj] = true
			}
			return true
		}
		if sink == nil && isOrderSink(p, call) {
			sink = call
		}
		return true
	})

	if sink != nil {
		p.Reportf(rs.Pos(), "range over map feeds %s: iteration order reaches the output; iterate sorted keys instead", calleeName(sink))
		return
	}
	for obj := range appends {
		if !sortedAfter(p, f, rs, obj) {
			p.Reportf(rs.Pos(), "range over map appends to %q which is never sorted afterwards: result order follows map iteration; sort it or collect via a SortedKeys helper", obj.Name())
			return // one diagnostic per range statement
		}
	}
}

// appendTarget returns the object of the slice being grown when call is
// `append(x, ...)` with x a plain identifier, else nil.
func appendTarget(p *Pass, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := p.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	if arg, ok := call.Args[0].(*ast.Ident); ok {
		return p.ObjectOf(arg)
	}
	return nil
}

// isOrderSink reports whether the call is an order-sensitive consumer.
func isOrderSink(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			sig, _ := obj.Type().(*types.Signature)
			if sig != nil && sig.Recv() == nil {
				// Package-level function: the fmt print family.
				return obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && printFamily[obj.Name()]
			}
			return sinkMethods[obj.Name()]
		}
	case *ast.Ident:
		if obj, ok := p.ObjectOf(fun).(*types.Func); ok {
			return obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && printFamily[obj.Name()]
		}
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort-flavored call
// after the range statement ends, anywhere in the file (the collect-
// then-sort idiom keeps both in one function).
func sortedAfter(p *Pass, f *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if !strings.Contains(strings.ToLower(calleeName(call)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeName returns the call's callee name, qualified by its package
// or receiver identifier when there is one ("sort.Slice", "b.Write").
func calleeName(call *ast.CallExpr) string {
	fun := call.Fun
	if ix, ok := fun.(*ast.IndexExpr); ok { // generic instantiation
		fun = ix.X
	}
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(p *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// within reports whether pos falls inside the range statement.
func within(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}
