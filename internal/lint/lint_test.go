package lint_test

import (
	"testing"

	"expanse/internal/lint"
	"expanse/internal/lint/linttest"
)

const src = "testdata/src"

// fixtureSealed seals the fixture's model types to their defining
// package, mirroring DefaultSealedTypes' shape.
var fixtureSealed = []lint.SealedType{
	{Qualified: "sealedtypes.Epoch", SealPkg: "sealedtypes"},
	{Qualified: "sealedtypes.Column", SealPkg: "sealedtypes"},
	{Qualified: "sealedtypes.World", SealPkg: "sealedtypes"},
	{Qualified: "sealedtypes.Net", SealPkg: "sealedtypes"},
}

// fixtureDetRand marks the detrand fixtures deterministic, with the
// exempt package carved back out.
var fixtureDetRand = lint.DetRandConfig{
	Deterministic: []string{"detrand", "detrandexempt", "allowfix"},
	Exempt:        []string{"detrandexempt"},
}

// fixtureHot designates the fixture's hot functions.
var fixtureHot = []lint.HotFunc{
	{PkgPath: "hotalloc", Func: "ScanColumns"},
	{PkgPath: "hotalloc", Func: "MergeColumns"},
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, src, "maporder", lint.NewMapOrder())
}

func TestSealedWrite(t *testing.T) {
	linttest.Run(t, src, "sealedwrite", lint.NewSealedWrite(fixtureSealed))
}

// TestSealedWriteBuilder pins the other half of the contract: inside
// the seal package the builder writes freely — zero diagnostics.
func TestSealedWriteBuilder(t *testing.T) {
	linttest.Run(t, src, "sealedtypes", lint.NewSealedWrite(fixtureSealed))
}

// TestSealedWriteWorld pins the columnar-world half of the fixture: the
// post-seal mutations (column patches, rank swaps, topology rewires)
// that the netsim.Internet entry in DefaultSealedTypes exists to catch.
func TestSealedWriteWorld(t *testing.T) {
	linttest.Run(t, src, "worldseal", lint.NewSealedWrite(fixtureSealed))
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, src, "detrand", lint.NewDetRand(fixtureDetRand))
}

// TestDetRandExempt pins the carve-out: a package in both sets is
// exempt (cmd/bench*, internal/prof).
func TestDetRandExempt(t *testing.T) {
	linttest.Run(t, src, "detrandexempt", lint.NewDetRand(fixtureDetRand))
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, src, "hotalloc", lint.NewHotAlloc(fixtureHot))
}

// TestAllow pins the suppression mechanism end to end: //lint:allow
// silences exactly the named analyzer on exactly the annotated line;
// stale and malformed allows are themselves findings.
func TestAllow(t *testing.T) {
	linttest.Run(t, src, "allowfix", lint.NewMapOrder(), lint.NewDetRand(fixtureDetRand))
}

// TestDefaultAnalyzers pins the shipped suite: four analyzers, unique
// names, all documented.
func TestDefaultAnalyzers(t *testing.T) {
	as := lint.DefaultAnalyzers()
	if len(as) != 4 {
		t.Fatalf("DefaultAnalyzers: got %d analyzers, want 4", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"maporder", "sealedwrite", "detrand", "hotalloc"} {
		if !seen[name] {
			t.Errorf("missing analyzer %q", name)
		}
	}
}
