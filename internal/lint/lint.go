// Package lint is expanse's static-analysis suite: a small
// go/analysis-style framework plus the analyzers that machine-check the
// repo's three standing invariants — byte-identical output at any worker
// count (maporder, detrand), immutable RCU-published epochs
// (sealedwrite), and allocation-free hot paths (hotalloc).
//
// The framework is deliberately stdlib-only (go/ast, go/parser,
// go/types): the build environment pins the Go toolchain but carries no
// module proxy, so golang.org/x/tools/go/analysis is unavailable. The
// shapes mirror x/tools — an Analyzer owns a Run func over a Pass, a
// Pass reports Diagnostics — so a future PR with network access can
// mechanically port the analyzers onto the real driver.
//
// Suppressions are explicit in-tree comments:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line (trailing comment) or alone on the line
// directly above it. The reason is mandatory, and a stale allow — one
// that no longer suppresses anything — is itself a diagnostic, so the
// exception inventory can only shrink honestly.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check. Run inspects a fully
// type-checked package through the Pass and reports violations; it must
// not retain the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package (Path() is the import path).
	Pkg *types.Package
	// Info carries Types, Defs, Uses and Selections for every file.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// A Diagnostic is one reported violation, positioned in the file set it
// was produced from.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiags orders diagnostics by file, line, column, analyzer, message
// — the deterministic presentation order of the suite.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
