// Package maporder is the maporder fixture: the PR 2 bug class, where
// the Fig 8 report inherited map-iteration order and shipped a
// different byte stream on every run, next to the sanctioned
// collect-then-sort idiom that fixed it.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// badReportLine is the historical Fig 8 shape: report text built
// directly while ranging a map.
func badReportLine(counts map[string]int) string {
	out := ""
	for k, v := range counts { // want `range over map feeds fmt.Sprintf`
		out += fmt.Sprintf("%s=%d ", k, v)
	}
	return out
}

// badWriter feeds a strings.Builder (an order-sensitive sink) from a
// map range.
func badWriter(set map[int]bool) string {
	var b strings.Builder
	for k := range set { // want `range over map feeds b.WriteString`
		b.WriteString(fmt.Sprint(k))
	}
	return b.String()
}

// badCollect gathers keys but never sorts them: the slice order is the
// map order.
func badCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

// goodCollect is the sanctioned idiom: collect, then sort, then emit.
func goodCollect(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d ", k, m[k])
	}
	return out
}

// goodSortSlice collects key/value pairs and sorts with sort.Slice —
// the exact shape of the repo's top-ASes report path.
func goodSortSlice(m map[string]int) []string {
	type kv struct {
		k string
		v int
	}
	var list []kv
	for k, v := range m {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].k < list[j].k })
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.k
	}
	return out
}

// goodAggregate only folds order-insensitive state out of the map.
func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodMapToMap rebuckets into another map: no order reaches any
// output.
func goodMapToMap(m map[string]int) map[int]int {
	inv := map[int]int{}
	for _, v := range m {
		inv[v]++
	}
	return inv
}

// goodSliceRange ranges a slice, not a map: slice order is
// deterministic.
func goodSliceRange(xs []string) string {
	out := ""
	for _, x := range xs {
		out += fmt.Sprintf("%s ", x)
	}
	return out
}

// innerCollect appends to a slice declared inside the loop iteration:
// per-iteration locals carry no cross-iteration order.
func innerCollect(m map[string][]int, sink func([]int)) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		sink(local)
	}
}
