// Package detrand is the detrand fixture: nondeterminism sources
// inside a deterministic plane (the analyzer runs with this package
// path in its Deterministic set), next to the sanctioned seeded-
// generator pattern the repo uses everywhere.
package detrand

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// badWallClock leaks the wall clock into plane state — the bug class
// that silently skews a day's probe schedule between two runs.
func badWallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic plane`
}

// badGlobalRand draws from the process-wide source: shared across
// goroutines, order-dependent, worker-count-dependent.
func badGlobalRand(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn in deterministic plane`
}

// badGlobalShuffle is the worst case: output order directly from the
// global source.
func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle in deterministic plane`
}

// badUnseeded constructs a generator whose seed comes from the global
// source — "unseeded" by laundering.
func badUnseeded() *rand.Rand {
	return rand.New(rand.NewSource(rand.Int63())) // want `global math/rand.Int63 in deterministic plane`
}

// badCryptoRand reads hardware entropy.
func badCryptoRand(buf []byte) {
	_, _ = crand.Read(buf) // want `crypto/rand.Read in deterministic plane`
}

// goodSeeded is the sanctioned pattern: an explicit seed threads
// through, identical on every run.
func goodSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// goodMethodCalls on a seeded generator are fine: only the package-
// level global functions are flagged.
func goodMethodCalls(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// goodDuration does arithmetic on time values without sampling the
// clock.
func goodDuration(d time.Duration) float64 {
	return d.Seconds()
}
