// Package worldseal is the world-plane half of the sealedwrite fixture:
// the mutations a consumer of the sealed columnar world (sorted host
// columns, flat topology columns) must never perform after New returns,
// next to the reads that stay legal. The analyzer runs with
// sealedtypes.World and sealedtypes.Net sealed to package sealedtypes.
package worldseal

import "sealedtypes"

// badColumnWrite patches a sorted address column element in place —
// breaking the binary-search invariant every lookup depends on.
func badColumnWrite(w *sealedtypes.World) {
	w.Lo[0] = 7 // want `write to field Lo of sealed type sealedtypes.World`
}

// badColumnAppend grows a sealed column: append may reallocate or write
// the shared backing array under a concurrent reader.
func badColumnAppend(w *sealedtypes.World) {
	w.Lo = append(w.Lo, 9) // want `write to field Lo of sealed type sealedtypes.World`
}

// badRankSwap reorders the insertion-order permutation — silently
// changing every downstream enumeration order.
func badRankSwap(w *sealedtypes.World) {
	w.ByRank[0], w.ByRank[1] = w.ByRank[1], w.ByRank[0] // want `write to field ByRank of sealed type sealedtypes.World` `write to field ByRank of sealed type sealedtypes.World`
}

// badNetPatch rewires a topology row through the flat column.
func badNetPatch(w *sealedtypes.World) {
	w.Nets[0].ISP = 3 // want `write to field Nets of sealed type sealedtypes.World` `write to field ISP of sealed type sealedtypes.Net`
}

// badColumnAlias takes a column's address, creating a mutable alias the
// analyzer can no longer see through.
func badColumnAlias(w *sealedtypes.World) *[]uint64 {
	return &w.Lo // want `address of field Lo of sealed type sealedtypes.World`
}

// badLiteral fabricates a sealed world outside the builder.
func badLiteral() sealedtypes.World {
	return sealedtypes.World{} // want `composite literal of sealed type sealedtypes.World`
}

// goodReads — binary-search-style reads over the sealed columns are the
// whole point and stay legal.
func goodReads(w *sealedtypes.World) int {
	lo, hi := 0, len(w.Lo)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.Lo[mid] < 42 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	n := int(w.ByRank[0])
	if len(w.Nets) > 0 && w.Nets[0].ISP >= 0 {
		n++
	}
	return lo + n
}
