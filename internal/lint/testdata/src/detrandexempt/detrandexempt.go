// Package detrandexempt is the detrand carve-out fixture: the analyzer
// runs with this path in both Deterministic and Exempt (modeling
// cmd/bench* and internal/prof, where measuring wall-clock is the
// point), so nothing here is flagged.
package detrandexempt

import "time"

// Elapsed measures real time — sanctioned in benchmark harnesses.
func Elapsed(f func()) float64 {
	t0 := time.Now()
	f()
	return time.Since(t0).Seconds()
}
