// Package sealedwrite is the sealedwrite fixture: every way a reader
// has historically been tempted to mutate a published epoch, next to
// the reads that stay legal. The analyzer runs with sealedtypes.Epoch
// and sealedtypes.Column sealed to package sealedtypes.
package sealedwrite

import "sealedtypes"

// badFieldWrite reassigns a field of a published epoch.
func badFieldWrite(e *sealedtypes.Epoch) {
	e.Index = 7 // want `write to field Index of sealed type sealedtypes.Epoch`
}

// badMapWrite mutates the published verdict map in place — the exact
// torn-read hazard for concurrent Pipeline.Latest readers.
func badMapWrite(e *sealedtypes.Epoch) {
	e.Verdicts["p"] = false // want `write to field Verdicts of sealed type sealedtypes.Epoch`
}

// badSliceWrite mutates a published column element.
func badSliceWrite(e *sealedtypes.Epoch) {
	e.Masks[0] |= 1 // want `write to field Masks of sealed type sealedtypes.Epoch`
}

// badAppend grows a published slice: append may write the shared
// backing array in place.
func badAppend(e *sealedtypes.Epoch) {
	e.Masks = append(e.Masks, 2) // want `write to field Masks of sealed type sealedtypes.Epoch`
}

// badNestedWrite writes through a nested sealed value.
func badNestedWrite(e *sealedtypes.Epoch) {
	e.Column.Width++ // want `write to field Column of sealed type sealedtypes.Epoch` `write to field Width of sealed type sealedtypes.Column`
}

// badAddr takes a field's address, creating a mutable alias that
// outlives the analyzer's sight.
func badAddr(e *sealedtypes.Epoch) *sealedtypes.Column {
	return &e.Column // want `address of field Column of sealed type sealedtypes.Epoch`
}

// badLiteral constructs the sealed type wholesale outside the builder.
func badLiteral() sealedtypes.Epoch {
	return sealedtypes.Epoch{Index: 1} // want `composite literal of sealed type sealedtypes.Epoch`
}

// goodReads only reads: always legal.
func goodReads(e *sealedtypes.Epoch) int {
	n := e.Index + len(e.Masks)
	if e.Verdicts["p"] {
		n++
	}
	return n + e.Column.Width
}

// goodLocalScalar copies a scalar out and works on that. (Note the
// analyzer intentionally also flags writes to local *copies* of sealed
// types outside the seal package: the type discipline, not escape
// analysis, is the contract.)
func goodLocalScalar(e *sealedtypes.Epoch) int {
	w := e.Column.Width
	w++
	return w
}
