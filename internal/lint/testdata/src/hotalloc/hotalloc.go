// Package hotalloc is the hotalloc fixture: the allocation regressions
// PRs 4-7 hunted by profile — per-probe Addr.String keys, fmt in
// responders, per-iteration scratch — written into a designated hot
// function (the analyzer runs with ScanColumns and MergeColumns of
// this package in its hot table), next to a cold function where the
// same constructs are fine and the hoisted patterns that keep hot
// paths clean.
package hotalloc

import (
	"fmt"

	"expanse/internal/ip6"
)

// ScanColumns is a designated hot function.
func ScanColumns(targets []ip6.Addr, out map[string]int) {
	for _, a := range targets {
		key := a.String() // want `Addr.String in hot path ScanColumns`
		out[key]++
		buf := make([]byte, 16) // want `make allocates per iteration in hot path ScanColumns`
		_ = buf
		scratch := []int{1, 2, 3} // want `composite literal allocates per iteration in hot path ScanColumns`
		_ = scratch
	}
}

// MergeColumns is a designated hot function: formatting is flagged
// even outside a loop, and per-iteration string building is flagged in
// one.
func MergeColumns(ids []int) string {
	header := fmt.Sprintf("n=%d", len(ids)) // want `fmt.Sprintf in hot path MergeColumns`
	for _, id := range ids {
		header = header + string(rune(id)) // want `string concatenation allocates per iteration in hot path MergeColumns`
	}
	return header
}

// coldHelper is not in the hot table: identical constructs pass.
func coldHelper(targets []ip6.Addr) []string {
	var out []string
	for _, a := range targets {
		out = append(out, fmt.Sprintf("%s", a.String()))
	}
	return out
}

// goodHoisted shows the sanctioned shape: scratch allocated once
// before the loop, reused inside it.
func goodHoisted(targets []ip6.Addr) int {
	scratch := make([]byte, 0, 64)
	n := 0
	for _, a := range targets {
		scratch = scratch[:0]
		if a.Hi()|a.Lo() != 0 {
			n++
		}
	}
	return n + cap(scratch)
}
