// Package sealedtypes models the repo's RCU-published snapshot types
// (core.Epoch and friends) for the sealedwrite fixture: exported
// fields, built and sealed here, immutable everywhere else.
package sealedtypes

// Epoch mirrors core.Epoch: a published, immutable day snapshot.
type Epoch struct {
	Index    int
	Verdicts map[string]bool
	Masks    []uint16
	Column   Column
}

// Column mirrors apd.DayColumn: a write-once history column.
type Column struct {
	Width int
}

// Build is the seal package's builder: writes here are sanctioned.
func Build(n int) *Epoch {
	e := &Epoch{Index: n}
	e.Verdicts = map[string]bool{}
	e.Verdicts["p"] = true
	e.Masks = append(e.Masks, 1)
	e.Column.Width = n
	return e
}
