// Package sealedtypes models the repo's RCU-published snapshot types
// (core.Epoch and friends) for the sealedwrite fixture: exported
// fields, built and sealed here, immutable everywhere else.
package sealedtypes

// Epoch mirrors core.Epoch: a published, immutable day snapshot.
type Epoch struct {
	Index    int
	Verdicts map[string]bool
	Masks    []uint16
	Column   Column
}

// Column mirrors apd.DayColumn: a write-once history column.
type Column struct {
	Width int
}

// World mirrors netsim.Internet's sealed columnar plane: sorted address
// columns, an insertion-order permutation, and flat topology columns
// addressed by dense IDs. Built here, frozen everywhere else.
type World struct {
	Lo     []uint64
	ByRank []int32
	Nets   []Net
}

// Net mirrors one row of the flat network column.
type Net struct {
	ISP int32
}

// Build is the seal package's builder: writes here are sanctioned.
func Build(n int) *Epoch {
	e := &Epoch{Index: n}
	e.Verdicts = map[string]bool{}
	e.Verdicts["p"] = true
	e.Masks = append(e.Masks, 1)
	e.Column.Width = n
	return e
}

// BuildWorld seals a world: sorts the columns, fixes the permutation.
func BuildWorld(n int) *World {
	w := &World{}
	for i := 0; i < n; i++ {
		w.Lo = append(w.Lo, uint64(n-i))
		w.ByRank = append(w.ByRank, int32(i))
		w.Nets = append(w.Nets, Net{ISP: -1})
	}
	return w
}
