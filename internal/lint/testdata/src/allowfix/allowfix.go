// Package allowfix is the suppression-mechanism fixture: an allow
// comment silences exactly the named analyzer on exactly the annotated
// line; everything else — wrong analyzer, wrong line, stale allows,
// missing reasons — still surfaces. The analyzer set for this fixture
// is maporder plus detrand (with this package in its Deterministic
// set).
package allowfix

import (
	"fmt"
	"time"
)

// trailingAllow: the allow rides the flagged line and names the right
// analyzer: silenced.
func trailingAllow() int64 {
	return time.Now().UnixNano() //lint:allow detrand fixture exercises trailing suppression
}

// standaloneAllow: the allow sits alone on the line above the flagged
// one: silenced.
func standaloneAllow() int64 {
	//lint:allow detrand fixture exercises standalone suppression
	return time.Now().UnixNano()
}

// wrongAnalyzer: the allow names maporder, so the detrand diagnostic
// survives — and the maporder allow, silencing nothing, is stale.
func wrongAnalyzer() int64 {
	//lint:allow maporder names the wrong analyzer // want `stale //lint:allow maporder`
	return time.Now().UnixNano() // want `time.Now in deterministic plane`
}

// wrongLine: an allow one line too early targets the blank statement,
// not the violation: the diagnostic survives, the allow goes stale.
func wrongLine() int64 {
	//lint:allow detrand targets the wrong line // want `stale //lint:allow detrand`
	_ = 0
	return time.Now().UnixNano() // want `time.Now in deterministic plane`
}

// exactLine: with two violations on adjacent lines, the allow silences
// only its own line.
func exactLine() (int64, int64) {
	a := time.Now().UnixNano() //lint:allow detrand fixture pins per-line exactness
	b := time.Now().UnixNano() // want `time.Now in deterministic plane`
	return a, b
}

// crossAnalyzer: a maporder violation and its allow coexist with the
// detrand run — no cross-talk between analyzers.
func crossAnalyzer(m map[string]int) string {
	out := ""
	//lint:allow maporder fixture proves allows are per-analyzer
	for k, v := range m {
		out += fmt.Sprintf("%s=%d", k, v)
	}
	return out
}

// staleAllow annotates a line with no diagnostic at all.
func staleAllow() int {
	//lint:allow detrand nothing to suppress here // want `stale //lint:allow detrand`
	return 42
}

// missingReason: an allow without a reason is malformed — every
// exception must be documented.
func missingReason() int {
	//lint:allow detrand // want `malformed //lint:allow`
	return time.Now().Nanosecond() // want `time.Now in deterministic plane`
}
