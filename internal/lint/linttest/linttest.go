// Package linttest runs lint analyzers over testdata fixture packages
// and checks their diagnostics against // want `regex` comments — the
// stdlib-only equivalent of golang.org/x/tools/go/analysis/analysistest
// (unavailable offline; see package lint).
//
// Expectations are written on the line they apply to:
//
//	for k := range m { // want `range over map`
//
// Multiple backquoted regexes on one comment expect multiple
// diagnostics on that line. Every diagnostic must be expected and
// every expectation must fire, or the test fails.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"expanse/internal/lint"
)

// Run loads srcRoot/<pkgPath> (fixture import paths resolve against
// srcRoot first, then the enclosing module, so fixtures may import
// real expanse packages), runs the analyzers through the full
// suppression-aware suite, and diffs diagnostics against want
// comments.
func Run(t *testing.T, srcRoot, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	diags, pkgDir, err := load(srcRoot, pkgPath, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	// Expectations come only from the package under test; shared
	// dependency fixtures carry none.
	wants, err := collectWants(pkgDir)
	if err != nil {
		t.Fatal(err)
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		hit := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i], hit = true, true
				break
			}
		}
		if !hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// load type-checks the fixture package and runs the suite, returning
// the diagnostics and the package's directory.
func load(srcRoot, pkgPath string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, string, error) {
	modPath, modRoot, err := lint.FindModule(srcRoot)
	if err != nil {
		return nil, "", err
	}
	loader := lint.NewLoader(modPath, modRoot)
	loader.Extra = map[string]string{}
	err = filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(srcRoot, path)
				if err != nil {
					return err
				}
				loader.Extra[filepath.ToSlash(rel)] = path
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		return nil, "", err
	}
	return lint.RunSuite(pkg, analyzers), pkg.Dir, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// collectWants scans every fixture file under dir for want comments.
// Scanning raw source lines (rather than the AST) keeps the
// expectation exactly where the text sits, including inside other
// comments.
func collectWants(dir string) ([]want, error) {
	var wants []want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return err
				}
				wants = append(wants, want{file: path, line: i + 1, re: re})
			}
		}
		return nil
	})
	return wants, err
}
