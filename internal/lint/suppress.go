package lint

import (
	"go/token"
	"os"
	"strings"
)

// AllowChecker is the pseudo-analyzer name under which malformed and
// stale //lint:allow comments are reported. It cannot itself be
// suppressed: the exception inventory stays honest.
const AllowChecker = "allowcheck"

const allowPrefix = "//lint:allow"

// An allow is one parsed //lint:allow comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	// target is the source line the allow suppresses: its own line for
	// a trailing comment, the next line for a standalone one.
	target int
	used   bool
}

// collectAllows parses every //lint:allow comment in the package.
// Malformed comments (missing analyzer or reason) are reported
// immediately under AllowChecker.
func collectAllows(pkg *Package) (allows []*allow, malformed []Diagnostic) {
	for _, f := range pkg.Files {
		var src []byte // lazily read, only for files that carry allows
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				// A nested // starts commentary about the allow
				// itself (fixture want annotations); the reason ends
				// there.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: AllowChecker,
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				if src == nil {
					src, _ = os.ReadFile(pos.Filename)
				}
				target := pos.Line
				if standaloneAt(src, pos.Offset) {
					target = pos.Line + 1
				}
				allows = append(allows, &allow{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
					target:   target,
				})
			}
		}
	}
	return allows, malformed
}

// standaloneAt reports whether the comment starting at offset is the
// first non-whitespace content on its source line (so it annotates the
// line below rather than trailing code on its own line).
func standaloneAt(src []byte, offset int) bool {
	if offset > len(src) {
		return true
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}
