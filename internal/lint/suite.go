package lint

// RunSuite runs the analyzers over one package and returns the
// surviving diagnostics: analyzer findings minus those silenced by a
// matching //lint:allow, plus AllowChecker findings for malformed and
// stale allow comments. The result is sorted deterministically.
func RunSuite(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		a.Run(pass)
	}
	allows, out := collectAllows(pkg)

	// An allow silences exactly the named analyzer on exactly its
	// target line; everything else passes through.
	for _, d := range raw {
		suppressed := false
		for _, al := range allows {
			if al.analyzer == d.Analyzer && al.pos.Filename == d.Pos.Filename && al.target == d.Pos.Line {
				al.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	// A stale allow — naming an analyzer that ran but silencing
	// nothing — is itself a finding, so dead exceptions get cleaned
	// up instead of accumulating. Allows naming analyzers outside
	// this run are left alone (linttest runs single analyzers).
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, al := range allows {
		if al.used || !ran[al.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: AllowChecker,
			Pos:      al.pos,
			Message:  "stale //lint:allow " + al.analyzer + ": no diagnostic suppressed on its target line",
		})
	}
	sortDiags(out)
	return out
}
