package lint

import (
	"go/ast"
	"go/types"
)

// A HotFunc designates one function or method as a hot path: called
// per-probe or per-candidate millions of times per simulated day.
type HotFunc struct {
	// PkgPath is the function's package import path.
	PkgPath string
	// Func is the function or method name (receiver type omitted).
	Func string
}

// NewHotAlloc returns the hotalloc analyzer: PRs 4 through 7 each
// burned a profiling session hunting allocations that had crept into
// the scan/merge inner loops (per-probe Addr.String keys, fmt.Sprintf
// in responders, per-iteration scratch slices). Inside the designated
// hot functions this analyzer flags the recurring offenders at review
// time instead: any fmt print-family call or ip6.Addr.String call
// anywhere in the function, and per-iteration allocations — make, new,
// slice/map composite literals, string concatenation — inside its
// loops. Hoist the allocation, use the pooled scratch the function
// already owns, or document the exception with //lint:allow.
func NewHotAlloc(hot []HotFunc) *Analyzer {
	table := map[string]map[string]bool{}
	for _, h := range hot {
		m := table[h.PkgPath]
		if m == nil {
			m = map[string]bool{}
			table[h.PkgPath] = m
		}
		m[h.Func] = true
	}
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flags formatting calls and per-iteration allocations inside designated hot-path functions",
	}
	a.Run = func(p *Pass) { runHotAlloc(p, table) }
	return a
}

func runHotAlloc(p *Pass, table map[string]map[string]bool) {
	funcs := table[p.Pkg.Path()]
	if len(funcs) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcs[fd.Name.Name] {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, inLoop)
				}
				if n.Cond != nil {
					walk(n.Cond, inLoop)
				}
				if n.Post != nil {
					walk(n.Post, inLoop)
				}
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.Body, true)
				return false
			case *ast.CallExpr:
				checkHotCall(p, fd, n, inLoop)
			case *ast.CompositeLit:
				if inLoop && allocatingLit(p.TypeOf(n)) {
					p.Reportf(n.Pos(), "composite literal allocates per iteration in hot path %s: hoist it or reuse scratch", fd.Name.Name)
				}
			case *ast.BinaryExpr:
				if inLoop && n.Op.String() == "+" && isString(p.TypeOf(n)) {
					p.Reportf(n.Pos(), "string concatenation allocates per iteration in hot path %s", fd.Name.Name)
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

func checkHotCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, inLoop bool) {
	// fmt print family and Addr.String: forbidden anywhere in a hot
	// function — both allocate and format per call.
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := p.ObjectOf(fun.Sel).(*types.Func); ok && obj.Pkg() != nil {
			sig, _ := obj.Type().(*types.Signature)
			if sig != nil && sig.Recv() == nil && obj.Pkg().Path() == "fmt" && printFamily[obj.Name()] {
				p.Reportf(call.Pos(), "fmt.%s in hot path %s: formatting allocates per call", obj.Name(), fd.Name.Name)
				return
			}
			if sig != nil && sig.Recv() != nil && obj.Name() == "String" {
				if q := qualifiedName(derefType(sig.Recv().Type())); q == "expanse/internal/ip6.Addr" {
					p.Reportf(call.Pos(), "Addr.String in hot path %s: allocates a fresh string per probe; key on the Addr value or its Hash64", fd.Name.Name)
					return
				}
			}
		}
	case *ast.Ident:
		if obj, ok := p.ObjectOf(fun).(*types.Builtin); ok && inLoop {
			switch obj.Name() {
			case "make":
				p.Reportf(call.Pos(), "make allocates per iteration in hot path %s: hoist it or reuse scratch", fd.Name.Name)
			case "new":
				p.Reportf(call.Pos(), "new allocates per iteration in hot path %s: hoist it or reuse scratch", fd.Name.Name)
			}
		}
	}
}

// allocatingLit reports whether a composite literal of type t heap-
// allocates per evaluation: slices and maps do; plain structs and
// arrays live on the stack unless they escape.
func allocatingLit(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
