package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A SealedType names one published-immutable type and the single
// package allowed to mutate it (its builder/seal package).
type SealedType struct {
	// Qualified is the type's qualified name: "<pkg path>.<type name>".
	Qualified string
	// SealPkg is the import path of the only package allowed to write
	// the type's fields.
	SealPkg string
}

// NewSealedWrite returns the sealedwrite analyzer: once an epoch is
// published through Pipeline.Latest, every reader walks it lock-free
// under the RCU contract — the only safe mutation is building a fresh
// value and swinging the pointer. A field write, an element write into
// a field's slice/map, an append into a field, taking a field's
// address, or constructing the sealed type wholesale anywhere outside
// the seal package is a latent torn read for every concurrent consumer
// (the invariant PR 6's TestEpochConcurrentReaders hammers at runtime;
// this analyzer catches the write at the line that introduces it).
func NewSealedWrite(sealed []SealedType) *Analyzer {
	table := map[string]string{}
	for _, s := range sealed {
		table[s.Qualified] = s.SealPkg
	}
	a := &Analyzer{
		Name: "sealedwrite",
		Doc:  "flags writes to sealed (RCU-published) types outside their builder/seal package",
	}
	a.Run = func(p *Pass) { runSealedWrite(p, table) }
	return a
}

func runSealedWrite(p *Pass, sealed map[string]string) {
	here := p.Pkg.Path()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkSealedWrite(p, sealed, here, lhs, "write to")
				}
			case *ast.IncDecStmt:
				checkSealedWrite(p, sealed, here, n.X, "write to")
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					checkSealedWrite(p, sealed, here, n.X, "address of")
				}
			case *ast.CompositeLit:
				if q := qualifiedName(derefType(p.TypeOf(n))); q != "" {
					if seal, ok := sealed[q]; ok && seal != here {
						p.Reportf(n.Pos(), "composite literal of sealed type %s outside its seal package %s: published values must come from the builder", q, seal)
					}
				}
			}
			return true
		})
	}
}

// checkSealedWrite walks the expression chain rooted at e (stripping
// parens, derefs and index steps) and reports every field selection
// whose receiver is a sealed type mutated outside its seal package.
func checkSealedWrite(p *Pass, sealed map[string]string, here string, e ast.Expr, verb string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if q := qualifiedName(derefType(sel.Recv())); q != "" {
					if seal, ok := sealed[q]; ok && seal != here {
						p.Reportf(x.Pos(), "%s field %s of sealed type %s outside its seal package %s: published epochs are immutable (RCU)", verb, x.Sel.Name, q, seal)
					}
				}
			}
			e = x.X
		default:
			return
		}
	}
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// qualifiedName returns "<pkg path>.<name>" for a named type, else "".
func qualifiedName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
