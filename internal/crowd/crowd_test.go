package crowd

import (
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/netsim"
)

func testWorld() *netsim.Internet {
	return netsim.New(netsim.Config{
		Seed:      42,
		Registry:  bgp.RegistryConfig{ASes: 250, PrefixesPerAS: 3.5, Seed: 7},
		Scale:     0.08,
		EpochDays: 7,
		Epochs:    6,
	})
}

var world = testWorld()

func recruitSmall(t *testing.T) []Participant {
	t.Helper()
	parts := Recruit(world, DefaultPlatforms(0.05), 0, 99)
	if len(parts) == 0 {
		t.Fatal("no participants recruited")
	}
	return parts
}

func TestRecruitBasics(t *testing.T) {
	parts := recruitSmall(t)
	platforms := map[string]int{}
	v6 := 0
	for _, p := range parts {
		platforms[p.Platform]++
		if p.HasIPv6 {
			v6++
			if p.V6.IsZero() || p.ASN == 0 {
				t.Fatal("IPv6 participant missing address/AS")
			}
		}
		if p.Country == "" {
			t.Fatal("participant without country")
		}
	}
	if platforms["Mturk"] == 0 || platforms["ProA"] == 0 {
		t.Fatalf("platform mix: %v", platforms)
	}
	if platforms["Mturk"] <= platforms["ProA"] {
		t.Errorf("Mturk (%d) should outnumber ProA (%d)", platforms["Mturk"], platforms["ProA"])
	}
	share := float64(v6) / float64(len(parts))
	// Paper: ~31% (Mturk) and ~21% (ProA) IPv6-enabled.
	if share < 0.05 || share > 0.6 {
		t.Errorf("IPv6 share = %.2f implausible", share)
	}
}

func TestRecruitDeterministic(t *testing.T) {
	a := Recruit(world, DefaultPlatforms(0.03), 0, 7)
	b := Recruit(world, DefaultPlatforms(0.03), 0, 7)
	if len(a) != len(b) {
		t.Fatal("recruitment not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("participants differ")
		}
	}
}

func TestTable9(t *testing.T) {
	parts := recruitSmall(t)
	rows := Table9(parts)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want platform×2 + unique", len(rows))
	}
	uniq := rows[len(rows)-1]
	if uniq.Name != "Unique" {
		t.Fatal("last row must be Unique")
	}
	if uniq.IPv4 != len(parts) {
		t.Errorf("unique IPv4 = %d, want %d", uniq.IPv4, len(parts))
	}
	for _, r := range rows {
		if r.IPv6 > r.IPv4 {
			t.Errorf("%s: IPv6 (%d) exceeds IPv4 (%d)", r.Name, r.IPv6, r.IPv4)
		}
		if r.IPv6 > 0 && (r.ASes6 == 0 || r.CC6 == 0) {
			t.Errorf("%s: missing AS/country attribution", r.Name)
		}
		if r.ASes6 > r.ASes4 {
			t.Errorf("%s: more IPv6 ASes than IPv4 ASes", r.Name)
		}
	}
}

func TestASOverlap(t *testing.T) {
	parts := recruitSmall(t)
	share, common := ASOverlap(parts)
	if share < 0 || share > 1 {
		t.Fatalf("overlap share = %v", share)
	}
	// The paper finds zero common addresses between platforms; our
	// recruitment draws per-device snapshots, so collisions are possible
	// but must be rare.
	if common > 3 {
		t.Errorf("common addresses = %d, want ~0", common)
	}
}

func TestPingStudy(t *testing.T) {
	parts := recruitSmall(t)
	res := PingStudy(world, parts, 5, 30)
	if res.Clients == 0 {
		t.Fatal("no IPv6 clients in study")
	}
	if res.Responsive > res.Clients {
		t.Fatal("responsive exceeds clients")
	}
	share := float64(res.Responsive) / float64(res.Clients)
	// Paper: 17.3% of client addresses respond. Residential filtering
	// dominates; accept a generous band around it.
	if share < 0.03 || share > 0.6 {
		t.Errorf("responsive share = %.2f, want around 0.2", share)
	}
	if res.FullPeriod > res.Responsive {
		t.Error("full-period count exceeds responsive")
	}
	if res.Responsive > 0 {
		if res.Under8h < res.UnderHour {
			t.Error("cumulative uptime shares inverted")
		}
		if res.MeanUptimeH < 0 || res.MeanUptimeH > 24 {
			t.Errorf("mean uptime = %v", res.MeanUptimeH)
		}
	}
	// Atlas probes answer far more reliably than clients.
	if res.AtlasResponsive > 0 && share > 0 && res.AtlasResponsive < share {
		t.Errorf("Atlas share (%.2f) below client share (%.2f)", res.AtlasResponsive, share)
	}
	if res.LastHopFiltered < 0 || res.LastHopFiltered > 1 {
		t.Errorf("filtered share = %v", res.LastHopFiltered)
	}
}

func TestDefaultPlatformsScale(t *testing.T) {
	ps := DefaultPlatforms(0.1)
	if ps[0].Tasks != 578 || ps[1].Tasks != 118 {
		t.Errorf("scaled tasks = %d, %d", ps[0].Tasks, ps[1].Tasks)
	}
	if DefaultPlatforms(0)[0].Tasks != 5781 {
		t.Error("zero scale should default to 1")
	}
}
