// Package crowd implements the crowdsourcing client study of §9: two
// platforms (modeled on Amazon Mechanical Turk and Prolific Academic)
// recruit participants whose browsers run the test-ipv6.com-style check,
// yielding client IPv4/IPv6 addresses with AS and country attribution
// (Table 9); collected IPv6 clients are then pinged every few minutes to
// measure client responsiveness and uptime (§9.3), with RIPE Atlas
// probes in the same ASes as the upper-bound comparison.
package crowd

import (
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/wire"
)

// Platform describes one crowdsourcing marketplace.
type Platform struct {
	Name string
	// Tasks is how many assignments the budget buys (budget / reward).
	Tasks int
	// CountryBias weights recruitment by country (unlisted = 1).
	CountryBias map[string]float64
}

// DefaultPlatforms returns MTurk- and ProA-like platforms scaled to the
// paper's participant counts ($150 each; $0.01 vs $0.12 per task).
func DefaultPlatforms(scale float64) []Platform {
	if scale <= 0 {
		scale = 1
	}
	return []Platform{
		{
			Name:  "Mturk",
			Tasks: int(5781 * scale),
			// MTurk skews to the US and India (§9.2).
			CountryBias: map[string]float64{"US": 6, "IN": 5, "CA": 1.5, "GB": 1.2},
		},
		{
			Name:        "ProA",
			Tasks:       int(1186 * scale),
			CountryBias: map[string]float64{"GB": 4, "US": 3, "PL": 1.5, "PT": 1.3},
		},
	}
}

// v6Adoption is the per-country probability that a recruited client has
// working IPv6 (coarse 2018 adoption numbers; default 0.10).
var v6Adoption = map[string]float64{
	"US": 0.36, "IN": 0.32, "DE": 0.40, "BE": 0.52, "GR": 0.34,
	"CH": 0.30, "GB": 0.24, "FR": 0.28, "BR": 0.26, "JP": 0.28,
	"CA": 0.22, "NL": 0.18, "PT": 0.16, "FI": 0.18, "AT": 0.16,
	"PL": 0.08, "IT": 0.05, "ES": 0.04, "RU": 0.05, "CN": 0.03,
}

func adoption(cc string) float64 {
	if p, ok := v6Adoption[cc]; ok {
		return p
	}
	return 0.10
}

// Participant is one crowdsourcing submission.
type Participant struct {
	Platform string
	Country  string
	HasIPv6  bool
	// V6 and ASN are set when HasIPv6 (the client device's address).
	V6  ip6.Addr
	ASN bgp.ASN
	// ASN4 is the synthetic IPv4-side AS identifier (every participant
	// has IPv4; mapped from the same access network).
	ASN4 uint32
}

func hash64(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + h<<6 + h>>2
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	return h
}

// Recruit runs both platforms' campaigns on the given day: each buys
// Tasks submissions from the world's client population, one per user per
// platform. IPv6 presence follows country adoption.
func Recruit(world *netsim.Internet, platforms []Platform, day int, seed uint64) []Participant {
	// Pull a large pool of candidate clients (device snapshots).
	pool := world.ClientSnapshots(day, 1<<20)
	var out []Participant
	// A device participates at most once across platforms: the paper
	// finds overlapping ASes between platforms but no common addresses.
	used := map[ip6.Addr]bool{}
	for pi, pl := range platforms {
		if len(pool) == 0 {
			break
		}
		taken := 0
		// Deterministic weighted pass over the pool, offset per platform
		// so the two platforms see different (possibly overlapping-AS,
		// never overlapping-address) populations.
		for i := 0; taken < pl.Tasks && i < len(pool)*4; i++ {
			c := pool[hash64(seed, uint64(pi), uint64(i))%uint64(len(pool))]
			if used[c.Addr] {
				continue
			}
			used[c.Addr] = true
			bias := 1.0
			if b, ok := pl.CountryBias[c.Country]; ok {
				bias = b
			}
			h := hash64(seed, uint64(pi), uint64(i), 0xacce)
			if float64(h%1000)/1000 > bias/6 {
				continue
			}
			p := Participant{
				Platform: pl.Name,
				Country:  c.Country,
				ASN4:     uint32(c.ASN), // same access network carries IPv4
			}
			if float64(hash64(seed, c.Addr.Hi(), c.Addr.Lo())%1000)/1000 < adoption(c.Country) {
				p.HasIPv6 = true
				p.V6 = c.Addr
				p.ASN = c.ASN
			}
			out = append(out, p)
			taken++
		}
	}
	return out
}

// Table9Row is one row of Table 9.
type Table9Row struct {
	Name  string
	IPv4  int // participants (all have IPv4)
	IPv6  int // participants with IPv6
	ASes4 int
	ASes6 int
	CC4   int
	CC6   int
}

// Table9 computes the per-platform and unique rows.
func Table9(parts []Participant) []Table9Row {
	platforms := []string{}
	seen := map[string]bool{}
	for _, p := range parts {
		if !seen[p.Platform] {
			seen[p.Platform] = true
			platforms = append(platforms, p.Platform)
		}
	}
	var rows []Table9Row
	for _, name := range platforms {
		rows = append(rows, tallyRow(name, parts, func(p Participant) bool { return p.Platform == name }))
	}
	rows = append(rows, tallyRow("Unique", parts, func(Participant) bool { return true }))
	return rows
}

func tallyRow(name string, parts []Participant, keep func(Participant) bool) Table9Row {
	row := Table9Row{Name: name}
	as4, as6 := map[uint32]bool{}, map[bgp.ASN]bool{}
	cc4, cc6 := map[string]bool{}, map[string]bool{}
	for _, p := range parts {
		if !keep(p) {
			continue
		}
		row.IPv4++
		as4[p.ASN4] = true
		cc4[p.Country] = true
		if p.HasIPv6 {
			row.IPv6++
			as6[p.ASN] = true
			cc6[p.Country] = true
		}
	}
	row.ASes4, row.ASes6 = len(as4), len(as6)
	row.CC4, row.CC6 = len(cc4), len(cc6)
	return row
}

// ASOverlap returns the share of IPv6 ASes seen on both platforms and
// the number of IPv6 addresses common to both (the paper: 31.5% and 0).
func ASOverlap(parts []Participant) (asShare float64, commonAddrs int) {
	perPlatform := map[string]map[bgp.ASN]bool{}
	perAddr := map[string]map[ip6.Addr]bool{}
	for _, p := range parts {
		if !p.HasIPv6 {
			continue
		}
		if perPlatform[p.Platform] == nil {
			perPlatform[p.Platform] = map[bgp.ASN]bool{}
			perAddr[p.Platform] = map[ip6.Addr]bool{}
		}
		perPlatform[p.Platform][p.ASN] = true
		perAddr[p.Platform][p.V6] = true
	}
	var names []string
	for n := range perPlatform {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) < 2 {
		return 0, 0
	}
	a, b := perPlatform[names[0]], perPlatform[names[1]]
	union, inter := 0, 0
	for asn := range a {
		union++
		if b[asn] {
			inter++
		}
	}
	for asn := range b {
		if !a[asn] {
			union++
		}
	}
	for addr := range perAddr[names[0]] {
		if perAddr[names[1]][addr] {
			commonAddrs++
		}
	}
	if union == 0 {
		return 0, commonAddrs
	}
	return float64(inter) / float64(union), commonAddrs
}

// PingResult summarizes the §9.3 responsiveness study.
type PingResult struct {
	Clients    int
	Responsive int // clients answering ≥1 echo request
	// FullPeriod counts clients responsive on every study day.
	FullPeriod int
	// UnderHour / Under8h are shares of responsive clients whose total
	// observed uptime was <1h / ≤8h per day on average.
	UnderHour float64
	Under8h   float64
	// MeanUptimeH / MedianUptimeH are the mean/median daily uptime hours
	// of clients with dynamic (on/off) behaviour.
	MeanUptimeH   float64
	MedianUptimeH float64
	// AtlasResponsive is the responsive share of RIPE Atlas probes in
	// the participants' ASes (the upper bound: probes always answer
	// unless the ISP filters).
	AtlasResponsive float64
	// LastHopFiltered is the share of unresponsive clients whose
	// traceroute dies before the destination AS (ISP inbound filtering).
	LastHopFiltered float64
}

// PingStudy probes every IPv6 participant at the given interval (in
// minutes) for the given number of days, mirroring the paper's 5-minute
// echo cadence over a month.
func PingStudy(world *netsim.Internet, parts []Participant, days, intervalMin int) PingResult {
	var res PingResult
	if intervalMin <= 0 {
		intervalMin = 5
	}
	slotsPerDay := 24 * 60 / intervalMin
	var uptimes []float64
	asSet := map[bgp.ASN]bool{}
	for _, p := range parts {
		if !p.HasIPv6 {
			continue
		}
		res.Clients++
		asSet[p.ASN] = true
		daysSeen := 0
		activeSlots := 0
		for d := 0; d < days; d++ {
			dayActive := 0
			for s := 0; s < slotsPerDay; s++ {
				at := wire.Time(uint64(s) * uint64(intervalMin) * 60_000_000)
				if world.Probe(p.V6, wire.ICMPv6, d, at).OK {
					dayActive++
				}
			}
			if dayActive > 0 {
				daysSeen++
			}
			activeSlots += dayActive
		}
		if daysSeen == 0 {
			continue
		}
		res.Responsive++
		if daysSeen == days {
			res.FullPeriod++
		}
		uptimeH := float64(activeSlots) * float64(intervalMin) / 60 / float64(days)
		uptimes = append(uptimes, uptimeH)
	}
	if res.Responsive > 0 {
		under1, under8 := 0, 0
		for _, u := range uptimes {
			if u < 1 {
				under1++
			}
			if u <= 8 {
				under8++
			}
		}
		res.UnderHour = float64(under1) / float64(res.Responsive)
		res.Under8h = float64(under8) / float64(res.Responsive)
		sort.Float64s(uptimes)
		sum := 0.0
		for _, u := range uptimes {
			sum += u
		}
		res.MeanUptimeH = sum / float64(len(uptimes))
		res.MedianUptimeH = uptimes[len(uptimes)/2]
	}

	// Atlas comparison: probes in participant ASes.
	atlasTotal, atlasUp := 0, 0
	for _, h := range world.Hosts(netsim.ClassAtlas) {
		if !asSet[h.ASN] {
			continue
		}
		atlasTotal++
		for attempt := 0; attempt < 3; attempt++ {
			if world.Probe(h.Addr, wire.ICMPv6, 0, wire.Time(attempt*1000)).OK {
				atlasUp++
				break
			}
		}
	}
	if atlasTotal > 0 {
		res.AtlasResponsive = float64(atlasUp) / float64(atlasTotal)
	}

	// Filtering analysis: unresponsive clients whose path ends in a
	// foreign AS.
	unresp, filtered := 0, 0
	for _, p := range parts {
		if !p.HasIPv6 {
			continue
		}
		up := false
		for s := 0; s < 10 && !up; s++ {
			up = world.Probe(p.V6, wire.ICMPv6, 0, wire.Time(s*3_600_000_000)).OK
		}
		if up {
			continue
		}
		unresp++
		path := world.TraceroutePath(p.V6, 0)
		if len(path) > 0 && path[len(path)-1].ASN != p.ASN {
			filtered++
		}
	}
	if unresp > 0 {
		res.LastHopFiltered = float64(filtered) / float64(unresp)
	}
	return res
}
