package sixgen

import (
	"testing"

	"expanse/internal/ip6"
)

func TestRangeBasics(t *testing.T) {
	a := ip6.MustParseAddr("2001:db8::1")
	r := NewRange(a)
	if r.Size() != 1 || !r.Contains(a) {
		t.Fatal("singleton range wrong")
	}
	b := ip6.MustParseAddr("2001:db8::2")
	r.Add(b)
	if r.Size() != 2 {
		t.Errorf("two-address range size = %d", r.Size())
	}
	if !r.Contains(a) || !r.Contains(b) {
		t.Error("range lost members")
	}
	// Contiguous ranges: low nybble interval is [1,2]; ::3 is outside.
	if r.Contains(ip6.MustParseAddr("2001:db8::3")) {
		t.Error("3 should not be in interval [1,2]")
	}
	// But a value between observed extremes IS covered (the gap-filling
	// property 6Gen exploits).
	r.Add(ip6.MustParseAddr("2001:db8::9"))
	if !r.Contains(ip6.MustParseAddr("2001:db8::5")) {
		t.Error("5 should be inside interval [1,9]")
	}
}

func TestRangeUnionLogSize(t *testing.T) {
	r1 := NewRange(ip6.MustParseAddr("2001:db8::1"))
	r2 := NewRange(ip6.MustParseAddr("2001:db8::2"))
	u := r1.Union(r2)
	if u.Size() != 2 {
		t.Errorf("union size = %d", u.Size())
	}
	if u.LogSize() <= r1.LogSize() {
		t.Error("union log size must grow")
	}
	// Saturation: the range spanning :: to ffff:…:ffff is the whole
	// space and must saturate rather than overflow.
	full := NewRange(ip6.MustParseAddr("::"))
	full.Add(ip6.MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"))
	if full.Size() != ^uint64(0) {
		t.Error("full range should saturate")
	}
}

func TestGrowClustersCounters(t *testing.T) {
	// Two dense counter blocks far apart → at least 2 clusters, each
	// small and dense.
	var seeds []ip6.Addr
	n1 := ip6.MustParseAddr("2001:db8:1:1::")
	n2 := ip6.MustParseAddr("2a00:42:9:9::")
	for i := uint64(1); i <= 50; i++ {
		seeds = append(seeds, ip6.AddrFromUint64(n1.Hi(), i))
		seeds = append(seeds, ip6.AddrFromUint64(n2.Hi(), i))
	}
	clusters := Grow(seeds, Config{})
	if len(clusters) < 2 {
		t.Fatalf("clusters = %d, want >= 2", len(clusters))
	}
	totalSeeds := 0
	for _, c := range clusters {
		totalSeeds += c.Seeds
		if c.Range.LogSize() > 8 {
			t.Errorf("cluster exceeded size bound: %v", c.Range.LogSize())
		}
	}
	if totalSeeds != len(seeds) {
		t.Errorf("clusters cover %d seeds, want %d", totalSeeds, len(seeds))
	}
}

func TestGenerateNeighbors(t *testing.T) {
	// Seeds ::1..::40 (even only) — generation should fill the odd gaps
	// and nearby values in the same /64.
	var seeds []ip6.Addr
	net := ip6.MustParseAddr("2001:db8:7::")
	for i := uint64(2); i <= 80; i += 2 {
		seeds = append(seeds, ip6.AddrFromUint64(net.Hi(), i))
	}
	gen := Generate(seeds, 100, Config{})
	if len(gen) == 0 {
		t.Fatal("nothing generated")
	}
	seedSet := map[ip6.Addr]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}
	sameNet := 0
	for _, a := range gen {
		if seedSet[a] {
			t.Fatalf("generated seed %v", a)
		}
		if a.Hi() == net.Hi() {
			sameNet++
		}
	}
	if sameNet != len(gen) {
		t.Errorf("%d/%d generated outside the seed /64", len(gen)-sameNet, len(gen))
	}
	// The odd counters are prime candidates (inside the dense range).
	found := map[ip6.Addr]bool{}
	for _, a := range gen {
		found[a] = true
	}
	hits := 0
	for i := uint64(3); i < 80; i += 2 {
		// Odd values composed of the nybbles observed in even seeds may
		// not all be expressible; count those that are.
		if found[ip6.AddrFromUint64(net.Hi(), i)] {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no in-gap addresses generated")
	}
}

func TestGenerateBudgetAndUniqueness(t *testing.T) {
	var seeds []ip6.Addr
	net := ip6.MustParseAddr("2001:db8:8::")
	for i := uint64(1); i <= 100; i++ {
		seeds = append(seeds, ip6.AddrFromUint64(net.Hi(), i*3))
	}
	gen := Generate(seeds, 50, Config{})
	if len(gen) > 50 {
		t.Fatalf("budget exceeded: %d", len(gen))
	}
	seen := map[ip6.Addr]bool{}
	for _, a := range gen {
		if seen[a] {
			t.Fatal("duplicate generated")
		}
		seen[a] = true
	}
}

func TestGenerateEmpty(t *testing.T) {
	if g := Generate(nil, 100, Config{}); g != nil {
		t.Error("no seeds should generate nothing")
	}
	if g := Generate([]ip6.Addr{ip6.MustParseAddr("::1")}, 0, Config{}); g != nil {
		t.Error("zero budget should generate nothing")
	}
}

func TestDensestClusterFirst(t *testing.T) {
	// A dense block and a sparse pair: generation budget must go to the
	// dense block first.
	var seeds []ip6.Addr
	dense := ip6.MustParseAddr("2001:db8:d::")
	for i := uint64(1); i <= 60; i++ {
		seeds = append(seeds, ip6.AddrFromUint64(dense.Hi(), i))
	}
	sparse1 := ip6.MustParseAddr("2a00:1:2:3:4:5:6:7")
	sparse2 := ip6.MustParseAddr("2a00:9:8:7:6:5:4:3")
	seeds = append(seeds, sparse1, sparse2)
	gen := Generate(seeds, 30, Config{})
	inDense := 0
	for _, a := range gen {
		if a.Hi() == dense.Hi() {
			inDense++
		}
	}
	if inDense < len(gen)*3/4 {
		t.Errorf("only %d/%d budget went to the dense cluster", inDense, len(gen))
	}
}

func BenchmarkGrow(b *testing.B) {
	var seeds []ip6.Addr
	net := ip6.MustParseAddr("2001:db8::")
	for i := uint64(0); i < 5000; i++ {
		seeds = append(seeds, ip6.AddrFromUint64(net.Hi()+i/500, i%500+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Grow(seeds, Config{})
	}
}

func BenchmarkGenerate6Gen(b *testing.B) {
	var seeds []ip6.Addr
	net := ip6.MustParseAddr("2001:db8::")
	for i := uint64(0); i < 2000; i++ {
		seeds = append(seeds, ip6.AddrFromUint64(net.Hi(), i*2+2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(seeds, 1000, Config{})
	}
}
