// Package sixgen reimplements 6Gen (Murdock et al., IMC 2017), the
// second target-generation tool evaluated in §7: it finds dense regions
// of the seed address space by growing nybble ranges around seeds with
// minimal dilation while the range stays dense, then generates the
// unseen addresses of the densest ranges first.
package sixgen

import (
	"math"
	"sort"

	"expanse/internal/ip6"
)

// Range is a cluster's bounding box in nybble space: a contiguous
// [lo,hi] interval of observed values per nybble position — 6Gen's range
// representation (which is what lets it propose the gaps between seeds).
type Range struct {
	lo, hi [32]byte
}

// NewRange returns the range covering a single address.
func NewRange(a ip6.Addr) Range {
	var r Range
	n := a.Nybbles()
	r.lo, r.hi = n, n
	return r
}

// Add widens the range to cover a.
func (r *Range) Add(a ip6.Addr) {
	n := a.Nybbles()
	for i := 0; i < 32; i++ {
		if n[i] < r.lo[i] {
			r.lo[i] = n[i]
		}
		if n[i] > r.hi[i] {
			r.hi[i] = n[i]
		}
	}
}

// Union returns the bounding range of two ranges.
func (r Range) Union(o Range) Range {
	u := r
	for i := 0; i < 32; i++ {
		if o.lo[i] < u.lo[i] {
			u.lo[i] = o.lo[i]
		}
		if o.hi[i] > u.hi[i] {
			u.hi[i] = o.hi[i]
		}
	}
	return u
}

// LogSize returns log16 of the number of addresses in the range.
func (r Range) LogSize() float64 {
	s := 0.0
	for i := 0; i < 32; i++ {
		s += math.Log2(float64(int(r.hi[i]-r.lo[i]) + 1))
	}
	return s / 4
}

// Size returns the number of addresses in the range, saturating at
// MaxUint64.
func (r Range) Size() uint64 {
	prod := uint64(1)
	for i := 0; i < 32; i++ {
		c := uint64(r.hi[i]-r.lo[i]) + 1
		if c > 1 && prod > math.MaxUint64/c {
			return math.MaxUint64
		}
		prod *= c
	}
	return prod
}

// Contains reports whether the range covers a.
func (r Range) Contains(a ip6.Addr) bool {
	n := a.Nybbles()
	for i := 0; i < 32; i++ {
		if n[i] < r.lo[i] || n[i] > r.hi[i] {
			return false
		}
	}
	return true
}

// Cluster is a grown dense region.
type Cluster struct {
	Range Range
	Seeds int
}

// Density is seeds per address of range (comparable between clusters
// only through logs for big ranges).
func (c Cluster) Density() float64 {
	return float64(c.Seeds) / math.Max(1, float64(c.Range.Size()))
}

// Config bounds cluster growth.
type Config struct {
	// MaxClusterLogSize caps a cluster's range at 16^MaxClusterLogSize
	// addresses regardless of density (default 8).
	MaxClusterLogSize float64
	// MaxDilution caps how sparse a cluster may get: the range may hold
	// at most 16^MaxDilution × seeds addresses (default 1.5, i.e. ~64×).
	MaxDilution float64
}

func (c *Config) defaults() {
	if c.MaxClusterLogSize <= 0 {
		c.MaxClusterLogSize = 8
	}
	if c.MaxDilution <= 0 {
		c.MaxDilution = 1.5
	}
}

// fits reports whether a range with the given seed count respects the
// growth bounds.
func (cfg Config) fits(r Range, seeds int) bool {
	ls := r.LogSize()
	if ls > cfg.MaxClusterLogSize {
		return false
	}
	return ls <= math.Log2(float64(seeds))/4+cfg.MaxDilution
}

// Grow clusters the seeds: sorted seeds are absorbed greedily while the
// range stays dense; a merge pass then joins adjacent compatible
// clusters. This is the greedy variant of 6Gen's tightest-range growth.
func Grow(seeds []ip6.Addr, cfg Config) []Cluster {
	cfg.defaults()
	if len(seeds) == 0 {
		return nil
	}
	sorted := make([]ip6.Addr, len(seeds))
	copy(sorted, seeds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	var clusters []Cluster
	cur := Cluster{Range: NewRange(sorted[0]), Seeds: 1}
	for _, a := range sorted[1:] {
		u := cur.Range
		u.Add(a)
		if cfg.fits(u, cur.Seeds+1) {
			cur.Range = u
			cur.Seeds++
		} else {
			clusters = append(clusters, cur)
			cur = Cluster{Range: NewRange(a), Seeds: 1}
		}
	}
	clusters = append(clusters, cur)

	// Merge pass: neighbours whose union is still dense are combined.
	merged := clusters[:1]
	for _, c := range clusters[1:] {
		last := &merged[len(merged)-1]
		u := last.Range.Union(c.Range)
		if cfg.fits(u, last.Seeds+c.Seeds) {
			last.Range = u
			last.Seeds += c.Seeds
		} else {
			merged = append(merged, c)
		}
	}
	// Densest clusters first: they get generation budget first.
	sort.Slice(merged, func(i, j int) bool {
		di := math.Log2(float64(merged[i].Seeds))/4 - merged[i].Range.LogSize()
		dj := math.Log2(float64(merged[j].Seeds))/4 - merged[j].Range.LogSize()
		if di != dj {
			return di > dj
		}
		return merged[i].Seeds > merged[j].Seeds
	})
	return merged
}

// Generate enumerates up to budget unseen addresses from the clusters,
// densest cluster first, skipping seeds.
func Generate(seeds []ip6.Addr, budget int, cfg Config) []ip6.Addr {
	if budget <= 0 {
		return nil
	}
	clusters := Grow(seeds, cfg)
	seedSet := make(map[ip6.Addr]bool, len(seeds))
	for _, a := range seeds {
		seedSet[a] = true
	}
	var out []ip6.Addr
	emitted := make(map[ip6.Addr]bool, budget)
	for _, c := range clusters {
		if len(out) >= budget {
			break
		}
		enumerateRange(c.Range, func(a ip6.Addr) bool {
			if !seedSet[a] && !emitted[a] {
				emitted[a] = true
				out = append(out, a)
			}
			return len(out) < budget
		})
	}
	return out
}

// enumerateRange iterates the cartesian product of the per-nybble
// intervals in ascending address order, calling fn until it returns
// false.
func enumerateRange(r Range, fn func(ip6.Addr) bool) {
	var nyb [32]byte
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == 32 {
			return fn(ip6.AddrFromNybbles(nyb))
		}
		for v := r.lo[pos]; ; v++ {
			nyb[pos] = v
			if !rec(pos + 1) {
				return false
			}
			if v == r.hi[pos] {
				break
			}
		}
		return true
	}
	rec(0)
}
