package probe

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// fakeResponder answers deterministically from a map and counts probes.
type fakeResponder struct {
	up     map[ip6.Addr]wire.RespMask
	probes atomic.Int64
	// failFirst makes the first attempt to any address fail (for retry
	// tests): responds only when at >= threshold.
	failBefore wire.Time
}

func (f *fakeResponder) Probe(dst ip6.Addr, p wire.Proto, day int, at wire.Time) wire.Response {
	f.probes.Add(1)
	if at < f.failBefore {
		return wire.Response{}
	}
	if m, ok := f.up[dst]; ok && m.Has(p) {
		r := wire.Response{OK: true, HopLimit: 58}
		if p.IsTCP() {
			r.TCP = &wire.TCPInfo{OptionsText: "MSS-SACK-TS-N-WS", MSS: 1440, TSPresent: true, TSVal: uint32(at)}
		}
		return r
	}
	return wire.Response{}
}

func addrs(n int) []ip6.Addr {
	out := make([]ip6.Addr, n)
	base := ip6.MustParseAddr("2001:db8::")
	for i := range out {
		out[i] = ip6.AddrFromUint64(base.Hi(), uint64(i)+1)
	}
	return out
}

func TestScanBasic(t *testing.T) {
	targets := addrs(100)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	for i, a := range targets {
		if i%2 == 0 {
			var m wire.RespMask
			m.Set(wire.ICMPv6)
			f.up[a] = m
		}
	}
	s := New(f, WithWorkers(4))
	res := s.Scan(targets, wire.ICMPv6, 0)
	if len(res) != 100 {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.Addr != targets[i] {
			t.Fatalf("result %d misaligned", i)
		}
		if want := i%2 == 0; r.OK != want {
			t.Errorf("target %d OK=%v want %v", i, r.OK, want)
		}
	}
}

// TestScanDeterministicAcrossWorkers pins the engine's core contract:
// Scan, Sweep and ProbePairs return identical results for any worker
// count, because virtual send times follow permutation position, not
// goroutine scheduling.
func TestScanDeterministicAcrossWorkers(t *testing.T) {
	targets := addrs(500)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	for i, a := range targets {
		var m wire.RespMask
		if i%3 == 0 {
			m.Set(wire.TCP80)
		}
		if i%4 == 0 {
			m.Set(wire.ICMPv6)
			m.Set(wire.UDP53)
		}
		if m.Any() {
			f.up[a] = m
		}
	}
	ref := New(f, WithWorkers(1))
	refScan := ref.Scan(targets, wire.TCP80, 2)
	refSweep := ref.Sweep(targets, 2)
	refPairs := ref.ProbePairs(targets, wire.TCP80, 2)
	for _, workers := range []int{1, 4, 16} {
		s := New(f, WithWorkers(workers))
		res := s.Scan(targets, wire.TCP80, 2)
		for i := range refScan {
			if refScan[i].OK != res[i].OK || refScan[i].SentAt != res[i].SentAt {
				t.Fatalf("workers=%d: result %d differs from serial scan", workers, i)
			}
			if refScan[i].TCP != nil && res[i].TCP != nil && refScan[i].TCP.TSVal != res[i].TCP.TSVal {
				t.Fatalf("workers=%d: fingerprint %d differs", workers, i)
			}
		}
		sweep := s.Sweep(targets, 2)
		for i := range refSweep {
			if sweep[i] != refSweep[i] {
				t.Fatalf("workers=%d: sweep mask %d = %v, want %v", workers, i, sweep[i], refSweep[i])
			}
		}
		pairs := s.ProbePairs(targets, wire.TCP80, 2)
		for i := range refPairs {
			if pairs[i].First.SentAt != refPairs[i].First.SentAt ||
				pairs[i].Second.SentAt != refPairs[i].Second.SentAt ||
				pairs[i].First.OK != refPairs[i].First.OK {
				t.Fatalf("workers=%d: pair %d differs", workers, i)
			}
		}
	}
}

func TestScanRateSpacing(t *testing.T) {
	targets := addrs(10)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	s := New(f, WithRate(1000), WithWorkers(1)) // 1000 μs interval
	res := s.Scan(targets, wire.ICMPv6, 0)
	seen := map[wire.Time]bool{}
	for _, r := range res {
		if r.SentAt%1000 != 0 {
			t.Errorf("send time %d not on 1000μs grid", r.SentAt)
		}
		if seen[r.SentAt] {
			t.Errorf("duplicate send slot %d", r.SentAt)
		}
		seen[r.SentAt] = true
	}
}

func TestRetries(t *testing.T) {
	targets := addrs(20)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}, failBefore: 100_000}
	for _, a := range targets {
		var m wire.RespMask
		m.Set(wire.ICMPv6)
		f.up[a] = m
	}
	// Without retries, early probes fail (sent before failBefore).
	s0 := New(f, WithRate(1000), WithWorkers(1), WithRetries(0))
	ok0 := 0
	for _, r := range s0.Scan(targets, wire.ICMPv6, 0) {
		if r.OK {
			ok0++
		}
	}
	// With retries, the second pass lands after the threshold.
	s3 := New(f, WithRate(1000), WithWorkers(1), WithRetries(9))
	ok3 := 0
	for _, r := range s3.Scan(targets, wire.ICMPv6, 0) {
		if r.OK {
			ok3++
		}
	}
	if ok3 <= ok0 {
		t.Errorf("retries did not help: %d vs %d", ok3, ok0)
	}
	if ok3 != len(targets) {
		t.Errorf("with retries %d/%d responded", ok3, len(targets))
	}
}

func TestSweep(t *testing.T) {
	targets := addrs(50)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	var m wire.RespMask
	m.Set(wire.ICMPv6)
	m.Set(wire.UDP53)
	f.up[targets[7]] = m
	s := New(f, WithWorkers(3))
	masks := s.Sweep(targets, 0)
	if !masks[7].Has(wire.ICMPv6) || !masks[7].Has(wire.UDP53) || masks[7].Has(wire.TCP80) {
		t.Errorf("mask[7] = %v", masks[7])
	}
	if masks[8].Any() {
		t.Errorf("mask[8] = %v, want empty", masks[8])
	}
}

func TestProbePairs(t *testing.T) {
	targets := addrs(30)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	for _, a := range targets {
		var m wire.RespMask
		m.Set(wire.TCP80)
		f.up[a] = m
	}
	s := New(f, WithWorkers(4))
	pairs := s.ProbePairs(targets, wire.TCP80, 0)
	for i, pr := range pairs {
		if !pr.First.OK || !pr.Second.OK {
			t.Fatalf("pair %d not answered", i)
		}
		if pr.Second.SentAt <= pr.First.SentAt {
			t.Errorf("pair %d out of order", i)
		}
		if pr.First.TCP == nil || pr.Second.TCP == nil {
			t.Fatalf("pair %d missing fingerprints", i)
		}
	}
}

// TestPermutationIsBijective: every index appears exactly once.
func TestPermutationIsBijective(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		size := int(n)%2000 + 1
		p := NewPermutation(size, seed)
		if p.Len() != size {
			return false
		}
		seen := make([]bool, size)
		for i := 0; i < size; i++ {
			v := p.At(i)
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPermutationScatters: consecutive probe positions should not be
// consecutive target indices (that is the whole point).
func TestPermutationScatters(t *testing.T) {
	p := NewPermutation(10000, 7)
	adjacent := 0
	for i := 1; i < 10000; i++ {
		d := p.At(i) - p.At(i-1)
		if d == 1 || d == -1 {
			adjacent++
		}
	}
	if adjacent > 100 {
		t.Errorf("%d adjacent pairs out of 9999 — not scattering", adjacent)
	}
}

func TestPermutationEmptyAndOne(t *testing.T) {
	p0 := NewPermutation(0, 3)
	if p0.Len() != 0 {
		t.Error("empty permutation length")
	}
	p1 := NewPermutation(1, 3)
	if p1.At(0) != 0 {
		t.Error("singleton permutation")
	}
}

func TestProbeCount(t *testing.T) {
	targets := addrs(100)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	s := New(f, WithRetries(0), WithWorkers(2))
	s.Scan(targets, wire.ICMPv6, 0)
	if got := f.probes.Load(); got != 100 {
		t.Errorf("sent %d probes, want 100", got)
	}
	f.probes.Store(0)
	s.Sweep(targets, 0)
	if got := f.probes.Load(); got != 500 {
		t.Errorf("sweep sent %d probes, want 500", got)
	}
}

func BenchmarkScan(b *testing.B) {
	targets := addrs(10000)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	s := New(f, WithWorkers(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(targets, wire.ICMPv6, 0)
	}
}
