// Package probe implements the measurement engine of the pipeline — the
// role ZMapv6 plays in the paper (§6). It scans target lists over the five
// probe protocols, with ZMap-style address-space permutation (so probes to
// the same network are spread over the scan), token-bucket pacing mapped
// onto virtual send times, a concurrent worker pool, and a TCP options
// module that records fingerprint data (§5.4).
//
// Concurrency model (see DESIGN.md): a sweep fans out protocols × worker
// shards. Virtual send times are a pure function of a probe's position in
// the per-protocol permutation, never of goroutine scheduling, so scan
// results are bit-identical for every worker count — determinism is a
// property of the virtual clock, parallelism only decides who walks which
// slice of the sequence.
//
// The engine is generic over wire.Responder: production code plugs in the
// simulated Internet, tests plug in fakes.
package probe

import (
	"sync"

	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// Result is the outcome of probing one target on one protocol.
type Result struct {
	Addr     ip6.Addr
	Proto    wire.Proto
	OK       bool
	HopLimit uint8
	TCP      *wire.TCPInfo
	SentAt   wire.Time
}

// Scanner is a reusable scanning engine. The zero value is not usable;
// construct with New.
type Scanner struct {
	responder wire.Responder
	rate      int // probes per virtual second
	workers   int
	retries   int // additional attempts for unanswered probes
	seed      uint64
	// tcp interns SYN-ACK fingerprints for all columnar scans through
	// this scanner (see TCPTable).
	tcp *wire.TCPTable
	// invPool recycles inverse-permutation buffers (*[]uint32) across
	// columnar scans for callers without their own scratch; permPool does
	// the same for materialized permutation caches, whose lifetime on the
	// columnar paths ends once the inverse is built. Recycling matters
	// beyond allocator throughput: multi-day runs allocate these columns
	// every (protocol, day), and transient columns marked live during the
	// GC's concurrent mark phase inflate the next heap goal — on big
	// worlds that ratchet dominated peak RSS.
	invPool  sync.Pool
	permPool sync.Pool
}

// Option configures a Scanner.
type Option func(*Scanner)

// WithRate sets the probe rate in packets per virtual second (default
// 100k, the paper's conservative ZMapv6 speed).
func WithRate(pps int) Option {
	return func(s *Scanner) {
		if pps > 0 {
			s.rate = pps
		}
	}
}

// WithWorkers sets the number of concurrent senders (default 8).
func WithWorkers(n int) Option {
	return func(s *Scanner) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithRetries sets how many times an unanswered probe is retried
// (default 0 — ZMap sends a single stateless probe).
func WithRetries(n int) Option {
	return func(s *Scanner) {
		if n >= 0 {
			s.retries = n
		}
	}
}

// WithSeed sets the permutation seed (default 1).
func WithSeed(seed uint64) Option {
	return func(s *Scanner) { s.seed = seed }
}

// New creates a Scanner probing via r.
func New(r wire.Responder, opts ...Option) *Scanner {
	s := &Scanner{responder: r, rate: 100_000, workers: 8, retries: 0, seed: 1, tcp: new(wire.TCPTable)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// interval returns the virtual microseconds between consecutive probes.
func (s *Scanner) interval() wire.Time {
	iv := wire.Time(1_000_000 / s.rate)
	if iv == 0 {
		iv = 1
	}
	return iv
}

// shard splits the sequence positions [0,n) into s.workers contiguous
// chunks and runs fn(lo,hi) for each on its own goroutine, returning once
// all chunks finish. Virtual send times are a pure function of sequence
// position, so sharding never changes what goes on the (simulated) wire —
// only how many goroutines walk the sequence.
func (s *Scanner) shard(n int, fn func(lo, hi int)) {
	chunk := (n + s.workers - 1) / s.workers
	if chunk == 0 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Scan probes every target once (plus retries) on the given protocol
// during the given day. Results are returned in target order; the probe
// ORDER over the wire follows a pseudo-random permutation, like ZMap's
// address randomization, so bursts never hammer one prefix.
//
// Scan is safe for concurrent use: the Scanner carries no per-scan state,
// so callers (e.g. Sweep and the APD detector) may run several Scans in
// parallel against the same Scanner as long as the Responder honors the
// concurrency contract documented in netsim.
func (s *Scanner) Scan(targets []ip6.Addr, proto wire.Proto, day int) []Result {
	return s.ScanSeq(ip6.Addrs(targets), proto, day)
}

// ScanSeq is Scan over an indexed target view. Sweeping a ShardSet's
// cached sorted view (or any other columnar representation) through here
// avoids the per-consumer flatten-copy into a fresh []Addr.
func (s *Scanner) ScanSeq(targets ip6.AddrSeq, proto wire.Proto, day int) []Result {
	n := targets.Len()
	results := make([]Result, n)
	perm := NewPermutation(n, s.seed^uint64(proto)<<32^uint64(day))
	iv := s.interval()

	s.shard(n, func(lo, hi int) {
		// Each worker walks its slice of the *permuted* sequence;
		// the sequence position fixes the virtual send time, so
		// results are identical regardless of worker count.
		for seq := lo; seq < hi; seq++ {
			idx := perm.At(seq)
			addr := targets.At(idx)
			at := wire.Time(seq) * iv
			r := s.probeOnce(addr, proto, day, at)
			for a := 0; !r.OK && a < s.retries; a++ {
				at += wire.Time(n) * iv // retry pass later
				r = s.probeOnce(addr, proto, day, at)
			}
			results[idx] = r
		}
	})
	return results
}

func (s *Scanner) probeOnce(addr ip6.Addr, proto wire.Proto, day int, at wire.Time) Result {
	resp := s.responder.Probe(addr, proto, day, at)
	return Result{
		Addr: addr, Proto: proto,
		OK: resp.OK, HopLimit: resp.HopLimit, TCP: resp.TCP,
		SentAt: at,
	}
}

// Sweep probes every target on all five protocols and aggregates a
// responsiveness mask per target (the paper's daily responsiveness scan).
//
// The five protocol scans run concurrently, each fanned out over the
// scanner's worker shards (protocols × shards goroutines in flight).
// Every protocol keeps its own permutation and virtual send-time line, so
// the result is bit-identical to running the protocols one after another
// at any worker count; only the mask fold happens after the barrier.
func (s *Scanner) Sweep(targets []ip6.Addr, day int) []wire.RespMask {
	return s.SweepSeq(ip6.Addrs(targets), day)
}

// SweepSeq is Sweep over an indexed target view (see ScanSeq). It runs on
// the batched columnar path: each protocol writes an OK bitset through
// ScanColumns and the five bitsets fold into the masks word-by-word — no
// per-protocol []Result is ever materialized (see columns.go).
func (s *Scanner) SweepSeq(targets ip6.AddrSeq, day int) []wire.RespMask {
	return s.SweepSeqInto(targets, day, nil)
}

// SweepSeqInto is SweepSeq writing into a caller-owned mask column:
// masks is resized to targets.Len() (reallocating only when capacity is
// short), fully overwritten, and returned. This is the per-day column
// handoff of the epoch pipeline — each published day keeps its own mask
// column while the scan scratch (per-protocol OK bitsets, inverse
// permutations) stays internal to the call. Safe for concurrent use:
// mask-only sweeps share no scanner state beyond the pooled inverse
// buffers, so overlapping days may sweep in parallel.
func (s *Scanner) SweepSeqInto(targets ip6.AddrSeq, day int, masks []wire.RespMask) []wire.RespMask {
	n := targets.Len()
	if cap(masks) < n {
		masks = make([]wire.RespMask, n)
	} else {
		masks = masks[:n]
	}
	var bufs sweepBufs
	s.sweepInto(targets, day, &bufs, masks)
	return masks
}

// Pair holds the two consecutive fingerprint probes of §5.4.
type Pair struct {
	First, Second Result
}

// ProbePairs sends two back-to-back TCP probes with the options module to
// every target, for fingerprint consistency analysis.
func (s *Scanner) ProbePairs(targets []ip6.Addr, proto wire.Proto, day int) []Pair {
	return s.ProbePairsSeq(ip6.Addrs(targets), proto, day)
}

// ProbePairsSeq is ProbePairs over an indexed target view, so columnar
// callers (the ShardSet's cached sorted view, zero-copy SeqSlice windows)
// need no flatten-copy. This is the per-probe reference path; the batched
// twin is ProbePairColumns in columns.go.
func (s *Scanner) ProbePairsSeq(targets ip6.AddrSeq, proto wire.Proto, day int) []Pair {
	n := targets.Len()
	out := make([]Pair, n)
	iv := s.interval()
	perm := NewPermutation(n, s.seed^0xfb^uint64(day))
	s.shard(n, func(lo, hi int) {
		for seq := lo; seq < hi; seq++ {
			idx := perm.At(seq)
			addr := targets.At(idx)
			at := wire.Time(seq) * iv * 2
			out[idx] = Pair{
				First:  s.probeOnce(addr, proto, day, at),
				Second: s.probeOnce(addr, proto, day, at+iv),
			}
		}
	})
	return out
}

// Permutation is a pseudo-random permutation of [0,n), the ZMap-style
// address randomizer: it visits every index exactly once in an order
// uncorrelated with numeric target order, using an affine walk over the
// next power of two with out-of-range skipping.
type Permutation struct {
	n     int
	mask  uint64
	mul   uint64
	add   uint64
	cache []uint32 // materialized order (n is bounded by target lists)
}

// NewPermutation builds the permutation for n elements from a seed.
func NewPermutation(n int, seed uint64) *Permutation {
	return NewPermutationInto(nil, n, seed)
}

// NewPermutationInto is NewPermutation with a caller-provided cache
// buffer, reused when its capacity suffices. The materialized order is
// a pure function of (n, seed) — identical whatever buf held before.
func NewPermutationInto(buf []uint32, n int, seed uint64) *Permutation {
	p := &Permutation{n: n}
	size := uint64(1)
	for size < uint64(n) {
		size <<= 1
	}
	p.mask = size - 1
	h := seed
	h = h*0x9e3779b97f4a7c15 + 0x85ebca6b
	p.mul = h<<1 | 1 // odd ⇒ bijective over 2^k
	p.add = h >> 17
	// Materialize: the affine walk visits each slot of [0,2^k) once;
	// indices >= n are skipped. Materializing keeps At() O(1) for the
	// concurrent workers.
	if cap(buf) >= n {
		p.cache = buf[:0]
	} else {
		p.cache = make([]uint32, 0, n)
	}
	for i := uint64(0); i <= p.mask && len(p.cache) < n; i++ {
		v := (i*p.mul + p.add) & p.mask
		if v < uint64(n) {
			p.cache = append(p.cache, uint32(v))
		}
	}
	return p
}

// Cache exposes the materialized order's backing array for recycling.
// The permutation must not be used after its cache is handed elsewhere.
func (p *Permutation) Cache() []uint32 { return p.cache }

// At returns the target index at sequence position seq.
func (p *Permutation) At(seq int) int { return int(p.cache[seq]) }

// Inverse returns inv with inv[idx] = seq such that At(seq) == idx,
// reusing buf's backing array when it is large enough. The batched scan
// engine walks targets in index order — sorted views then present the
// responder with sorted runs — and recovers each probe's virtual send
// time from its permutation position through this inverse.
func (p *Permutation) Inverse(buf []uint32) []uint32 {
	if cap(buf) < p.n {
		buf = make([]uint32, p.n)
	} else {
		buf = buf[:p.n]
	}
	for seq, idx := range p.cache {
		buf[idx] = uint32(seq)
	}
	return buf
}

// Len returns the number of elements.
func (p *Permutation) Len() int { return p.n }
