package probe

import (
	"sync"

	"expanse/internal/ip6"
	"expanse/internal/wire"
)

// This file is the batched, structure-of-arrays side of the scan engine.
// Where Scan/ScanSeq call the responder once per probe and materialize a
// []Result, ScanColumns walks each worker's shard in TARGET-INDEX order —
// so a sorted target view presents the responder with sorted runs it can
// resolve once per run — and hands the responder whole batches that write
// straight into wire.ResultColumns. Virtual send times are unchanged: a
// probe's time is fixed by its position in the per-protocol permutation,
// recovered through the inverse permutation, so the batched engine is
// probe-for-probe identical to the per-probe reference at any worker
// count and chunk size (pinned by test).

// batchLen is the inner batch size handed to the responder: large enough
// to amortize the call, small enough to keep gather scratch cache-warm.
const batchLen = 512

// shardAligned is shard with chunk boundaries aligned to 64 indices, so
// concurrent workers never share a word of the OK bitset.
func (s *Scanner) shardAligned(n int, fn func(lo, hi int)) {
	chunk := (n + s.workers - 1) / s.workers
	chunk = (chunk + 63) &^ 63
	if chunk == 0 {
		chunk = 64
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// TCPTable returns the scanner's fingerprint interning table. All columnar
// scans through this scanner intern into it, so refs are comparable across
// scans and days.
func (s *Scanner) TCPTable() *wire.TCPTable { return s.tcp }

// ScanColumns probes every target once (plus retries) on the given
// protocol during the given day, writing results into out, which must
// have been Reset (or ResetOK, for mask-only consumers) for exactly
// targets.Len() targets. Column i describes target i; probe order over
// the wire and virtual send times are identical to Scan's.
func (s *Scanner) ScanColumns(targets ip6.AddrSeq, proto wire.Proto, day int, out *wire.ResultColumns) {
	s.scanColumns(targets, proto, day, out, nil)
}

func (s *Scanner) scanColumns(targets ip6.AddrSeq, proto wire.Proto, day int, out *wire.ResultColumns, invBuf *[]uint32) {
	n := targets.Len()
	perm, permBuf := s.pooledPermutation(n, s.seed^uint64(proto)<<32^uint64(day))
	if invBuf == nil {
		// Callers without their own scratch (the APD detector probes
		// millions of fan-out targets per day) share pooled buffers.
		invBuf = s.pooledInv()
		defer s.invPool.Put(invBuf)
	}
	*invBuf = perm.Inverse(*invBuf)
	inv := *invBuf
	// The batched engine walks targets in index order through inv; the
	// forward cache's job ends here, so recycle it before the scan.
	s.recyclePermutation(perm, permBuf)
	iv := s.interval()
	s.shardAligned(n, func(lo, hi int) {
		s.scanChunk(targets, proto, day, lo, hi, inv, iv, out)
	})
}

// pooledInv returns a reusable inverse-permutation buffer.
func (s *Scanner) pooledInv() *[]uint32 {
	if buf, ok := s.invPool.Get().(*[]uint32); ok {
		return buf
	}
	return new([]uint32)
}

// pooledPermutation builds the (proto, day) permutation over a recycled
// cache buffer. Return the cache with recyclePermutation once the
// permutation is no longer needed.
func (s *Scanner) pooledPermutation(n int, seed uint64) (*Permutation, *[]uint32) {
	buf, ok := s.permPool.Get().(*[]uint32)
	if !ok {
		buf = new([]uint32)
	}
	perm := NewPermutationInto(*buf, n, seed)
	*buf = perm.Cache()
	return perm, buf
}

func (s *Scanner) recyclePermutation(p *Permutation, buf *[]uint32) {
	s.permPool.Put(buf)
}

// forEachBatch slices [lo,hi) into batchLen windows and materializes each
// as a []ip6.Addr for the responder — zero-copy for plain ip6.Addrs
// views, through a reused gather scratch otherwise — calling fn with the
// window and its index range.
func forEachBatch(targets ip6.AddrSeq, lo, hi int, fn func(dsts []ip6.Addr, b, e int)) {
	as, fast := targets.(ip6.Addrs)
	var gather []ip6.Addr
	for b := lo; b < hi; b += batchLen {
		e := b + batchLen
		if e > hi {
			e = hi
		}
		var dsts []ip6.Addr
		if fast {
			dsts = as[b:e]
		} else {
			if gather == nil {
				gather = make([]ip6.Addr, batchLen)
			}
			dsts = gather[:e-b]
			for i := b; i < e; i++ {
				dsts[i-b] = targets.At(i)
			}
		}
		fn(dsts, b, e)
	}
}

// scanChunk probes targets [lo,hi) in index order: gather a batch, fix
// each probe's send time from its permutation position, let the responder
// answer the whole batch, then retry the unanswered subset in place.
func (s *Scanner) scanChunk(targets ip6.AddrSeq, proto wire.Proto, day int, lo, hi int, inv []uint32, iv wire.Time, out *wire.ResultColumns) {
	ats := make([]wire.Time, 0, batchLen)
	var retry retryState
	forEachBatch(targets, lo, hi, func(dsts []ip6.Addr, b, e int) {
		ats = ats[:0]
		for i := b; i < e; i++ {
			at := wire.Time(inv[i]) * iv
			ats = append(ats, at)
			if out.SentAt != nil {
				out.SentAt[i] = at
			}
		}
		wire.ProbeBatchInto(s.responder, dsts, proto, day, ats, out, b)
		if s.retries > 0 {
			retry.run(s, targets, proto, day, b, e, inv, iv, out)
		}
	})
}

// retryState holds the scratch of the in-chunk retry passes: the failed
// subset is re-batched with each attempt's send time shifted one full
// scan length later, exactly like the per-probe engine's retry loop.
type retryState struct {
	idx  []int
	dsts []ip6.Addr
	ats  []wire.Time
	cols wire.ResultColumns
}

func (r *retryState) run(s *Scanner, targets ip6.AddrSeq, proto wire.Proto, day int, b, e int, inv []uint32, iv wire.Time, out *wire.ResultColumns) {
	n := len(inv)
	r.idx = r.idx[:0]
	for i := b; i < e; i++ {
		if !out.OK.Get(i) {
			r.idx = append(r.idx, i)
		}
	}
	for a := 0; len(r.idx) > 0 && a < s.retries; a++ {
		r.dsts = r.dsts[:0]
		r.ats = r.ats[:0]
		for _, i := range r.idx {
			r.dsts = append(r.dsts, targets.At(i))
			at := wire.Time(inv[i])*iv + wire.Time(a+1)*wire.Time(n)*iv
			r.ats = append(r.ats, at)
			if out.SentAt != nil {
				out.SentAt[i] = at
			}
		}
		if out.Table != nil {
			r.cols.Reset(len(r.idx), out.Table)
		} else {
			r.cols.ResetOK(len(r.idx))
		}
		wire.ProbeBatchInto(s.responder, r.dsts, proto, day, r.ats, &r.cols, 0)
		kept := r.idx[:0]
		for k, i := range r.idx {
			if !r.cols.OK.Get(k) {
				kept = append(kept, i)
				continue
			}
			out.OK.Set(i)
			if out.HopLimit != nil {
				out.HopLimit[i] = r.cols.HopLimit[k]
			}
			if out.TCPRef != nil {
				out.TCPRef[i] = r.cols.TCPRef[k]
				out.TSVal[i] = r.cols.TSVal[k]
			}
		}
		r.idx = kept
	}
}

// sweepBufs is the reusable buffer set of a five-protocol sweep: one
// mask-only column set and one inverse-permutation scratch per protocol.
type sweepBufs struct {
	cols [wire.NumProtos]wire.ResultColumns
	inv  [wire.NumProtos][]uint32
}

// sweepInto runs one day's five-protocol sweep into masks (len ==
// targets.Len(), fully overwritten). The five scans run concurrently,
// each fanned out over the scanner's worker shards and writing only its
// OK bitset; the masks fold the five bitsets word-by-word after the
// barrier — no per-protocol []Result is ever materialized.
func (s *Scanner) sweepInto(targets ip6.AddrSeq, day int, bufs *sweepBufs, masks []wire.RespMask) {
	n := targets.Len()
	var wg sync.WaitGroup
	for pi, p := range wire.Protos {
		wg.Add(1)
		go func(pi int, p wire.Proto) {
			defer wg.Done()
			bufs.cols[pi].ResetOK(n)
			s.scanColumns(targets, p, day, &bufs.cols[pi], &bufs.inv[pi])
		}(pi, p)
	}
	wg.Wait()
	// Fold: protocol pi's OK bit is exactly mask bit pi (Protos is the
	// canonical order), so each 64-target block folds five words.
	s.shardAligned(n, func(lo, hi int) {
		for w := lo >> 6; w<<6 < hi; w++ {
			base := w << 6
			end := base + 64
			if end > hi {
				end = hi
			}
			var words [wire.NumProtos]uint64
			for pi := range words {
				words[pi] = bufs.cols[pi].OK[w]
			}
			for i := base; i < end; i++ {
				sh := uint(i - base)
				masks[i] = wire.RespMask(
					words[0]>>sh&1 |
						words[1]>>sh&1<<1 |
						words[2]>>sh&1<<2 |
						words[3]>>sh&1<<3 |
						words[4]>>sh&1<<4)
			}
		}
	})
}

// SweepDays streams a multi-day sweep over one target list: days
// consecutive daily sweeps starting at day0, reusing one set of column
// and mask buffers throughout. fn receives each day's masks, which are
// only valid during the call — consumers fold them into their own state
// (the longitudinal study of Fig 8 keeps one counter per day). A
// days-day sweep allocates like a single sweep instead of days of them.
func (s *Scanner) SweepDays(targets ip6.AddrSeq, day0, days int, fn func(day int, masks []wire.RespMask)) {
	var bufs sweepBufs
	masks := make([]wire.RespMask, targets.Len())
	for d := 0; d < days; d++ {
		s.sweepInto(targets, day0+d, &bufs, masks)
		fn(day0+d, masks)
	}
}

// PairColumns is the structure-of-arrays form of the §5.4 fingerprint
// pair probing: column i of First/Second describes the two back-to-back
// probes of target i, with SYN-ACK fingerprints interned in the
// scanner's table.
type PairColumns struct {
	First, Second wire.ResultColumns
}

// ProbePairColumns is the batched ProbePairsSeq: two back-to-back probes
// per target written into pair columns, probe-for-probe identical to the
// per-probe path (same permutation, same send times).
func (s *Scanner) ProbePairColumns(targets ip6.AddrSeq, proto wire.Proto, day int, out *PairColumns) {
	n := targets.Len()
	out.First.Reset(n, s.tcp)
	out.Second.Reset(n, s.tcp)
	perm, permBuf := s.pooledPermutation(n, s.seed^0xfb^uint64(day))
	invBuf := s.pooledInv()
	defer s.invPool.Put(invBuf)
	*invBuf = perm.Inverse(*invBuf)
	inv := *invBuf
	s.recyclePermutation(perm, permBuf)
	iv := s.interval()
	s.shardAligned(n, func(lo, hi int) {
		ats1 := make([]wire.Time, 0, batchLen)
		ats2 := make([]wire.Time, 0, batchLen)
		forEachBatch(targets, lo, hi, func(dsts []ip6.Addr, b, e int) {
			ats1 = ats1[:0]
			ats2 = ats2[:0]
			for i := b; i < e; i++ {
				at := wire.Time(inv[i]) * iv * 2
				ats1 = append(ats1, at)
				ats2 = append(ats2, at+iv)
				out.First.SentAt[i] = at
				out.Second.SentAt[i] = at + iv
			}
			wire.ProbeBatchInto(s.responder, dsts, proto, day, ats1, &out.First, b)
			wire.ProbeBatchInto(s.responder, dsts, proto, day, ats2, &out.Second, b)
		})
	})
}
