package probe

import (
	"sort"
	"testing"

	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/wire"
)

// checkColumnsMatchScan asserts that a columnar scan equals the per-probe
// reference result-for-result: OK, hop limit, send time, and the
// materialized SYN-ACK fingerprint.
func checkColumnsMatchScan(t *testing.T, ref []Result, cols *wire.ResultColumns) {
	t.Helper()
	for i, r := range ref {
		if cols.OK.Get(i) != r.OK {
			t.Fatalf("result %d: OK=%v want %v", i, cols.OK.Get(i), r.OK)
		}
		if cols.SentAt[i] != r.SentAt {
			t.Fatalf("result %d: sentAt=%d want %d", i, cols.SentAt[i], r.SentAt)
		}
		if !r.OK {
			continue
		}
		if cols.HopLimit[i] != r.HopLimit {
			t.Fatalf("result %d: hop=%d want %d", i, cols.HopLimit[i], r.HopLimit)
		}
		got := cols.TCPInfoAt(i)
		if (got == nil) != (r.TCP == nil) {
			t.Fatalf("result %d: TCP presence mismatch", i)
		}
		if got != nil && *got != *r.TCP {
			t.Fatalf("result %d: fingerprint %+v want %+v", i, *got, *r.TCP)
		}
	}
}

// TestScanColumnsMatchesScanSeq pins the batched engine against the
// per-probe reference across target counts (straddling bitset-word
// boundaries), worker counts, and retry settings, through the generic
// per-probe fallback responder.
func TestScanColumnsMatchesScanSeq(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 500, 1000} {
		targets := addrs(n)
		f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}, failBefore: 40_000}
		for i, a := range targets {
			var m wire.RespMask
			if i%3 == 0 {
				m.Set(wire.TCP80)
			}
			if i%4 == 0 {
				m.Set(wire.ICMPv6)
			}
			if m.Any() {
				f.up[a] = m
			}
		}
		for _, workers := range []int{1, 3, 16} {
			for _, retries := range []int{0, 3} {
				s := New(f, WithWorkers(workers), WithRetries(retries), WithRate(1000))
				ref := s.ScanSeq(ip6.Addrs(targets), wire.TCP80, 2)
				var cols wire.ResultColumns
				cols.Reset(n, s.TCPTable())
				s.ScanColumns(ip6.Addrs(targets), wire.TCP80, 2, &cols)
				checkColumnsMatchScan(t, ref, &cols)
			}
		}
	}
}

// TestScanColumnsSeqView runs the columnar scan through a non-slice
// AddrSeq view, exercising the gather path.
func TestScanColumnsSeqView(t *testing.T) {
	targets := addrs(700)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	for i, a := range targets {
		if i%2 == 0 {
			var m wire.RespMask
			m.Set(wire.ICMPv6)
			f.up[a] = m
		}
	}
	s := New(f, WithWorkers(4))
	ref := s.ScanSeq(ip6.Addrs(targets), wire.ICMPv6, 1)
	var cols wire.ResultColumns
	cols.Reset(len(targets), s.TCPTable())
	s.ScanColumns(view{targets}, wire.ICMPv6, 1, &cols)
	checkColumnsMatchScan(t, ref, &cols)
}

// view wraps a slice in an opaque AddrSeq so type switches cannot take
// the ip6.Addrs fast path.
type view struct{ a []ip6.Addr }

func (v view) Len() int          { return len(v.a) }
func (v view) At(i int) ip6.Addr { return v.a[i] }

// legacySweepSeq is the pre-columnar sweep: five per-probe scans folded
// into masks through full []Result slices. Kept as the semantic reference
// and benchmark baseline for the batched sweep.
func legacySweepSeq(s *Scanner, targets ip6.AddrSeq, day int) []wire.RespMask {
	masks := make([]wire.RespMask, targets.Len())
	for _, p := range wire.Protos {
		for i, r := range s.ScanSeq(targets, p, day) {
			if r.OK {
				masks[i].Set(p)
			}
		}
	}
	return masks
}

// TestSweepSeqMatchesLegacy pins the bitset-folded sweep against the
// legacy per-probe fold at several worker counts.
func TestSweepSeqMatchesLegacy(t *testing.T) {
	targets := addrs(333)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	for i, a := range targets {
		var m wire.RespMask
		if i%3 == 0 {
			m.Set(wire.TCP80)
		}
		if i%4 == 0 {
			m.Set(wire.ICMPv6)
			m.Set(wire.UDP53)
		}
		if i%7 == 0 {
			m.Set(wire.UDP443)
		}
		if m.Any() {
			f.up[a] = m
		}
	}
	for _, workers := range []int{1, 4, 16} {
		s := New(f, WithWorkers(workers))
		want := legacySweepSeq(s, ip6.Addrs(targets), 2)
		got := s.SweepSeq(ip6.Addrs(targets), 2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: mask %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSweepDaysMatchesSweep pins the streaming multi-day sweep (one
// reused buffer set) against independent per-day sweeps.
func TestSweepDaysMatchesSweep(t *testing.T) {
	targets := addrs(200)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	for i, a := range targets {
		if i%2 == 0 {
			var m wire.RespMask
			m.Set(wire.ICMPv6)
			m.Set(wire.TCP443)
			f.up[a] = m
		}
	}
	s := New(f, WithWorkers(3))
	days := 0
	s.SweepDays(ip6.Addrs(targets), 4, 5, func(day int, masks []wire.RespMask) {
		days++
		want := s.SweepSeq(ip6.Addrs(targets), day)
		for i := range want {
			if masks[i] != want[i] {
				t.Fatalf("day %d: mask %d = %v, want %v", day, i, masks[i], want[i])
			}
		}
	})
	if days != 5 {
		t.Fatalf("fn called %d times, want 5", days)
	}
}

// TestProbePairColumnsMatchesPairs pins the batched pair probing against
// the per-probe ProbePairsSeq.
func TestProbePairColumnsMatchesPairs(t *testing.T) {
	targets := addrs(90)
	f := &fakeResponder{up: map[ip6.Addr]wire.RespMask{}}
	for i, a := range targets {
		if i%3 != 2 {
			var m wire.RespMask
			m.Set(wire.TCP80)
			f.up[a] = m
		}
	}
	for _, workers := range []int{1, 4, 16} {
		s := New(f, WithWorkers(workers))
		ref := s.ProbePairsSeq(ip6.Addrs(targets), wire.TCP80, 3)
		var cols PairColumns
		s.ProbePairColumns(ip6.Addrs(targets), wire.TCP80, 3, &cols)
		first := make([]Result, len(ref))
		second := make([]Result, len(ref))
		for i, pr := range ref {
			first[i], second[i] = pr.First, pr.Second
		}
		checkColumnsMatchScan(t, first, &cols.First)
		checkColumnsMatchScan(t, second, &cols.Second)
	}
}

// netsimScanner builds a scanner over a small simulated world plus its
// sorted hitlist-shaped target list — the end-to-end shape the batched
// engine is optimized for (sorted runs through aliased regions).
func netsimScanner(workers int) (*Scanner, []ip6.Addr) {
	world := netsim.New(netsim.Config{Seed: 42, Scale: 0.05, EpochDays: 7, Epochs: 6})
	var targets []ip6.Addr
	for _, h := range world.Hosts() {
		targets = append(targets, h.Addr)
	}
	for _, rec := range world.AliasRecords() {
		targets = append(targets, rec.Addr)
	}
	for _, rec := range world.StaleRecords() {
		targets = append(targets, rec.Addr)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })
	return New(world, WithWorkers(workers)), targets
}

// TestScanColumnsNetsimAcrossWorkers runs the real batched responder
// through the engine and pins it against the per-probe reference for
// several worker counts (64-alignment, batch boundaries, interval-run
// caching all under test at once).
func TestScanColumnsNetsimAcrossWorkers(t *testing.T) {
	sRef, targets := netsimScanner(1)
	day := 42
	for _, proto := range []wire.Proto{wire.ICMPv6, wire.TCP80} {
		ref := sRef.ScanSeq(ip6.Addrs(targets), proto, day)
		for _, workers := range []int{1, 4, 16} {
			s, _ := netsimScanner(workers)
			var cols wire.ResultColumns
			cols.Reset(len(targets), s.TCPTable())
			s.ScanColumns(ip6.Addrs(targets), proto, day, &cols)
			checkColumnsMatchScan(t, ref, &cols)
		}
	}
}

// BenchmarkSweep measures the batched five-protocol sweep over a sorted
// netsim hitlist — the engine's daily-scan hot path.
func BenchmarkSweep(b *testing.B) {
	s, targets := netsimScanner(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SweepSeq(ip6.Addrs(targets), 42)
	}
}

// BenchmarkSweepLegacy is the same sweep on the pre-columnar per-probe
// path: five []Result slices materialized and folded.
func BenchmarkSweepLegacy(b *testing.B) {
	s, targets := netsimScanner(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacySweepSeq(s, ip6.Addrs(targets), 42)
	}
}

// BenchmarkProbeBatch measures a single-protocol columnar scan through
// the batched responder.
func BenchmarkProbeBatch(b *testing.B) {
	s, targets := netsimScanner(8)
	var cols wire.ResultColumns
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols.Reset(len(targets), s.TCPTable())
		s.ScanColumns(ip6.Addrs(targets), wire.TCP80, 42, &cols)
	}
}

// BenchmarkProbeBatchLegacy is the same scan via per-probe Scan.
func BenchmarkProbeBatchLegacy(b *testing.B) {
	s, targets := netsimScanner(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScanSeq(ip6.Addrs(targets), wire.TCP80, 42)
	}
}
