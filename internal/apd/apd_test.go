package apd

import (
	"math/rand"
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
	"expanse/internal/wire"
)

func testWorld() *netsim.Internet {
	return netsim.New(netsim.Config{
		Seed:      42,
		Registry:  bgp.RegistryConfig{ASes: 250, PrefixesPerAS: 3.5, Seed: 7},
		Scale:     0.08,
		EpochDays: 7,
		Epochs:    6,
	})
}

var world = testWorld()

func TestFanOutTable3(t *testing.T) {
	// The paper's Table 3 example: /64 fans out into /68 subprefixes
	// 2001:db8:407:8000:[0-f]…
	p := ip6.MustParsePrefix("2001:db8:407:8000::/64")
	fo := FanOut(p)
	seen := map[byte]bool{}
	for i, a := range fo {
		if !p.Contains(a) {
			t.Fatalf("target %d outside prefix: %v", i, a)
		}
		nyb := a.Nybble(16) // first nybble below /64
		if nyb != byte(i) {
			t.Errorf("target %d in branch %x, want %x", i, nyb, i)
		}
		seen[nyb] = true
	}
	if len(seen) != 16 {
		t.Errorf("only %d distinct branches", len(seen))
	}
	// Deterministic across calls (required for the sliding window).
	fo2 := FanOut(p)
	if fo != fo2 {
		t.Error("FanOut not deterministic")
	}
}

func TestFanOutNonAlignedPrefix(t *testing.T) {
	// BGP prefixes are probed as announced, including non-nybble-aligned
	// lengths like /29.
	p := ip6.MustParsePrefix("2a00::/29")
	fo := FanOut(p)
	branches := map[ip6.Prefix]bool{}
	for _, a := range fo {
		if !p.Contains(a) {
			t.Fatalf("target outside /29: %v", a)
		}
		branches[ip6.PrefixFrom(a, 33)] = true
	}
	if len(branches) != 16 {
		t.Errorf("%d distinct /33 branches, want 16", len(branches))
	}
	// /128 candidates degenerate gracefully.
	host := ip6.MustParsePrefix("2001:db8::1/128")
	for _, a := range FanOut(host) {
		if a != host.Addr() {
			t.Errorf("host-prefix fan-out produced %v", a)
		}
	}
}

func TestHitlistCandidates(t *testing.T) {
	var addrs []ip6.Addr
	// 150 addresses in one /64 (dense) and 5 in another (sparse).
	dense := ip6.MustParsePrefix("2001:db8:1:2::/64")
	sparse := ip6.MustParsePrefix("2001:db8:9:9::/64")
	for i := uint64(0); i < 150; i++ {
		addrs = append(addrs, dense.NthAddr(i))
	}
	for i := uint64(0); i < 5; i++ {
		addrs = append(addrs, sparse.NthAddr(i<<32))
	}
	set := ip6.NewShardSet(len(addrs))
	set.AddSlice(addrs)
	cands := HitlistCandidates(set, 100)
	byPrefix := map[ip6.Prefix]int{}
	for _, c := range cands {
		byPrefix[c.Prefix] = c.Targets
	}
	// Both /64s present (exempt from the threshold).
	if byPrefix[dense] != 150 {
		t.Errorf("dense /64 targets = %d", byPrefix[dense])
	}
	if byPrefix[sparse] != 5 {
		t.Errorf("sparse /64 targets = %d", byPrefix[sparse])
	}
	// The dense counter block concentrates in one /68, /72 … /124 chain;
	// levels with > 100 targets must appear.
	if _, ok := byPrefix[ip6.PrefixFrom(dense.Addr(), 120)]; !ok {
		t.Error("dense /120 level missing")
	}
	// No candidate below the sparse /64 (threshold).
	for p := range byPrefix {
		if p.Bits() > 64 && sparse.ContainsPrefix(p) {
			t.Errorf("sparse sub-candidate %v should not exist", p)
		}
	}
}

func TestDetectAliasedRegion(t *testing.T) {
	// Pick a clean aliased /48 region from the world and a server /64,
	// then verify classification.
	var region ip6.Prefix
	for _, r := range world.AliasedRegions() {
		if r.Prefix.Bits() == 48 && r.Quirks == 0 && r.Loss < 0.02 {
			region = r.Prefix
			break
		}
	}
	if region.IsZero() {
		t.Fatal("no clean aliased /48 in world")
	}
	var server64 ip6.Prefix
	for _, h := range world.Hosts(netsim.ClassWebServer) {
		if !world.GroundTruthAliased(h.Addr) {
			server64 = ip6.PrefixFrom(h.Addr, 64)
			break
		}
	}
	if server64.IsZero() {
		t.Fatal("no non-aliased server")
	}

	det := NewDetector(world)
	masks := det.ProbeDay([]Candidate{{Prefix: region}, {Prefix: server64}}, 1)
	if m := masks[region]; m != AllBranches {
		t.Errorf("aliased region mask = %016b (%d branches)", m, m.Count())
	}
	if m := masks[server64]; m == AllBranches {
		t.Errorf("server /64 classified aliased")
	}
	if det.ProbesSent != 2*2*Branches {
		t.Errorf("probes sent = %d, want %d", det.ProbesSent, 2*2*Branches)
	}
}

func TestCrossProtocolMergingHelps(t *testing.T) {
	// An ICMP-rate-limited aliased region answers TCP more reliably;
	// merged detection should classify it aliased more often than
	// ICMP-only detection over several days.
	var region ip6.Prefix
	for _, r := range world.AliasedRegions() {
		if r.Quirks&netsim.QuirkRateLimit != 0 {
			region = r.Prefix
			break
		}
	}
	if region.IsZero() {
		t.Fatal("no rate-limited region")
	}
	cands := []Candidate{{Prefix: region}}
	merged := NewDetector(world) // ICMP + TCP80
	icmpOnly := NewDetector(world, wire.ICMPv6)
	mergedHits, icmpHits := 0, 0
	for day := 0; day < 8; day++ {
		if merged.ProbeDay(cands, day)[region] == AllBranches {
			mergedHits++
		}
		if icmpOnly.ProbeDay(cands, day)[region] == AllBranches {
			icmpHits++
		}
	}
	if mergedHits < icmpHits {
		t.Errorf("merging hurt: merged %d vs icmp %d", mergedHits, icmpHits)
	}
}

func TestSlidingWindowReducesInstability(t *testing.T) {
	// Probe high-loss aliased regions daily; larger windows must yield
	// (weakly) fewer unstable prefixes — the shape of Table 4.
	var cands []Candidate
	for _, r := range world.AliasedRegions() {
		cands = append(cands, Candidate{Prefix: r.Prefix})
	}
	det := NewDetector(world)
	var hist History
	for day := 0; day < 10; day++ {
		hist.Add(det.ProbeDay(cands, day))
	}
	prev := -1
	for w := 0; w <= 5; w++ {
		u := hist.UnstablePrefixes(w)
		if prev >= 0 && u > prev+2 { // weak monotonicity with small slack
			t.Errorf("window %d: unstable %d > window %d: %d", w, u, w-1, prev)
		}
		prev = u
	}
	if hist.UnstablePrefixes(0) <= hist.UnstablePrefixes(3) {
		// The whole point: window 3 strictly better than none, unless
		// the world is perfectly stable already.
		if hist.UnstablePrefixes(0) != 0 {
			t.Errorf("window 3 (%d) not better than window 0 (%d)",
				hist.UnstablePrefixes(3), hist.UnstablePrefixes(0))
		}
	}
}

func TestHistoryMerging(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db8::/64")
	var h History
	h.Add(map[ip6.Prefix]BranchMask{p: 0x00ff})
	h.Add(map[ip6.Prefix]BranchMask{p: 0xff00})
	h.Add(map[ip6.Prefix]BranchMask{p: 0x0001})
	if m := h.MergedAt(p, 2, 1); m != 0x0001 {
		t.Errorf("window 1 mask = %04x", m)
	}
	if m := h.MergedAt(p, 2, 2); m != 0xff01 {
		t.Errorf("window 2 mask = %04x", m)
	}
	if m := h.MergedAt(p, 2, 3); m != AllBranches {
		t.Errorf("window 3 mask = %04x", m)
	}
	// Window < 1 clamps to the single-day window.
	if m := h.MergedAt(p, 2, 0); m != 0x0001 {
		t.Errorf("window 0 mask = %04x", m)
	}
	al := h.AliasedAt(2, 3)
	if !al[p] {
		t.Error("prefix should be aliased with window 3")
	}
	if len(h.AliasedAt(2, 1)) != 0 {
		t.Error("window 1 should not alias")
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
}

// TestWindowLengthRegression pins the sliding-window semantics: a window
// of w merges exactly w days, no more. The original implementation merged
// w+1 days (di-w .. di inclusive), so the paper's 3-day window (§5.2)
// silently evaluated a 4-day merge.
func TestWindowLengthRegression(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db8::/64")
	var h History
	// Day i contributes only bit i: the merged mask's popcount IS the
	// number of days merged.
	const days = 10
	for i := 0; i < days; i++ {
		h.Add(map[ip6.Prefix]BranchMask{p: 1 << i})
	}
	for w := 1; w <= 5; w++ {
		if got := h.MergedAt(p, days-1, w).Count(); got != w {
			t.Errorf("window %d merged %d days, want exactly %d", w, got, w)
		}
	}
	// Near the start of history the window truncates, never extends.
	if got := h.MergedAt(p, 1, 3).Count(); got != 2 {
		t.Errorf("day 1, window 3 merged %d days, want 2", got)
	}
	if got := h.MergedAt(p, 0, 3).Count(); got != 1 {
		t.Errorf("day 0, window 3 merged %d days, want 1", got)
	}
}

func TestFilterLPMSemantics(t *testing.T) {
	// Aliased /96 with a non-aliased /100 inside: addresses in the /100
	// are rescued (§5.1's case 3 handling).
	p96 := ip6.MustParsePrefix("2001:db8:1::/96")
	p100 := ip6.MustParsePrefix("2001:db8:1::/100")
	f := NewFilter(map[ip6.Prefix]bool{p96: true, p100: false})
	inside100 := ip6.MustParseAddr("2001:db8:1::123")
	outside100 := ip6.MustParseAddr("2001:db8:1::f000:1")
	if f.IsAliased(inside100) {
		t.Error("address in non-aliased /100 not rescued")
	}
	if !f.IsAliased(outside100) {
		t.Error("address in aliased /96 not filtered")
	}
	if f.IsAliased(ip6.MustParseAddr("2001:db9::1")) {
		t.Error("uncovered address filtered")
	}
	clean, aliased := f.Split([]ip6.Addr{inside100, outside100})
	if len(clean) != 1 || len(aliased) != 1 {
		t.Errorf("Split: %d clean, %d aliased", len(clean), len(aliased))
	}
	if got := f.AliasedPrefixes(); len(got) != 1 || got[0] != p96 {
		t.Errorf("AliasedPrefixes = %v", got)
	}
}

func TestCaseCounts(t *testing.T) {
	verdicts := map[ip6.Prefix]bool{
		ip6.MustParsePrefix("2001:db8::/64"):     true,
		ip6.MustParsePrefix("2001:db8::/68"):     true, // case 1
		ip6.MustParsePrefix("2001:db8:0:1::/64"): false,
		ip6.MustParsePrefix("2001:db8:0:1::/68"): false, // case 2
		ip6.MustParsePrefix("2001:db8:0:2::/64"): false,
		ip6.MustParsePrefix("2001:db8:0:2::/68"): true, // case 3
		ip6.MustParsePrefix("2001:db8:0:3::/64"): true,
		ip6.MustParsePrefix("2001:db8:0:3::/68"): false, // case 4 (anomaly)
	}
	counts := CaseCounts(verdicts)
	if counts[CaseBothAliased] != 1 || counts[CaseBothNonAliased] != 1 ||
		counts[CaseMoreAliasedLessNot] != 1 || counts[CaseMoreNotLessAliased] != 1 {
		t.Errorf("case counts = %v", counts)
	}
}

func TestMurdockBaseline(t *testing.T) {
	// Murdock detects /96s inside big aliased regions but misses
	// aliasing confined below /96 (e.g. an aliased /112).
	var big, small ip6.Prefix
	for _, r := range world.AliasedRegions() {
		if r.Prefix.Bits() == 48 && r.Quirks == 0 && r.Loss < 0.02 && big.IsZero() {
			big = r.Prefix
		}
		if r.Prefix.Bits() == 112 && r.Quirks == 0 && small.IsZero() {
			small = r.Prefix
		}
	}
	if big.IsZero() || small.IsZero() {
		t.Fatal("world lacks required regions")
	}
	rng := rand.New(rand.NewSource(3))
	// Hitlist addresses: a few inside the big region, and enough inside
	// the /112 that deep multi-level candidates exist (>100 targets).
	var addrs []ip6.Addr
	for i := 0; i < 5; i++ {
		addrs = append(addrs, big.RandomAddr(rng))
	}
	smallAddrs := make([]ip6.Addr, 0, 120)
	for i := 0; i < 120; i++ {
		smallAddrs = append(smallAddrs, small.RandomAddr(rng))
	}
	addrs = append(addrs, smallAddrs...)
	md := NewMurdockDetector(world)
	cands := md.Candidates(addrs)
	verdicts := md.Detect(cands, 1)
	f := MurdockFilter(verdicts)
	bigDetected, smallDetected := 0, 0
	for _, a := range addrs {
		if big.Contains(a) && f.IsAliased(a) {
			bigDetected++
		}
		if small.Contains(a) && f.IsAliased(a) {
			smallDetected++
		}
	}
	if bigDetected < 4 {
		t.Errorf("Murdock missed big-region addresses: %d/5", bigDetected)
	}
	if smallDetected > len(smallAddrs)/10 {
		t.Errorf("Murdock should miss sub-/96 aliasing, detected %d/%d", smallDetected, len(smallAddrs))
	}
	if md.ProbesSent == 0 {
		t.Error("probe accounting broken")
	}
	// Multi-level APD catches the /112 via hitlist candidates.
	det := NewDetector(world)
	hlCands := HitlistCandidatesAddrs(addrs, 100)
	masks := det.ProbeDay(hlCands, 1)
	found := false
	for p, m := range masks {
		if small.ContainsPrefix(p) && m == AllBranches {
			found = true
		}
	}
	if !found {
		t.Error("multi-level APD missed the aliased /112 region")
	}
}

// TestHitlistCandidatesSetMatchesSlice pins that bucketing directly over
// ShardSet shards yields exactly the candidates of the slice-chunked
// path, for a hitlist with dense and sparse regions.
func TestHitlistCandidatesSetMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var addrs []ip6.Addr
	for _, r := range world.AliasedRegions() {
		for i := 0; i < 40; i++ {
			addrs = append(addrs, r.Prefix.RandomAddr(rng))
		}
	}
	dense := ip6.MustParsePrefix("2001:db8:77::/64")
	for i := uint64(0); i < 300; i++ {
		addrs = append(addrs, dense.NthAddr(i))
	}
	set := ip6.NewShardSet(len(addrs))
	set.AddSlice(addrs)
	// The slice path must dedup like the set does to compare counts.
	fromSlice := HitlistCandidatesAddrs(set.Sorted(), 100)
	fromSet := HitlistCandidates(set, 100)
	if len(fromSet) != len(fromSlice) {
		t.Fatalf("set path %d candidates, slice path %d", len(fromSet), len(fromSlice))
	}
	for i := range fromSet {
		if fromSet[i] != fromSlice[i] {
			t.Errorf("candidate %d differs: %+v vs %+v", i, fromSet[i], fromSlice[i])
		}
	}
}

func TestBGPCandidates(t *testing.T) {
	cands := BGPCandidates(world.Table)
	if len(cands) != world.Table.NumPrefixes() {
		t.Errorf("candidates = %d, want %d", len(cands), world.Table.NumPrefixes())
	}
}

// TestFanOutSeedCollision pins the seed-derivation fix: two distinct
// prefixes of the same length whose Hi^Lo folds are equal must still fan
// out to different targets (the old seed was int64(Hi^Lo)^bits<<56, so
// such pairs probed identical pseudo-random addresses).
func TestFanOutSeedCollision(t *testing.T) {
	hi := ip6.MustParseAddr("2001:db8::").Hi()
	const lo1, d = uint64(5) << 32, uint64(1) << 40
	p1 := ip6.PrefixFrom(ip6.AddrFromUint64(hi, lo1), 96)
	p2 := ip6.PrefixFrom(ip6.AddrFromUint64(hi^d, lo1^d), 96)
	if p1 == p2 {
		t.Fatal("test prefixes not distinct")
	}
	if p1.Addr().Hi()^p1.Addr().Lo() != p2.Addr().Hi()^p2.Addr().Lo() {
		t.Fatal("test prefixes do not collide under Hi^Lo")
	}
	fo1, fo2 := FanOut(p1), FanOut(p2)
	same := 0
	for i := range fo1 {
		// Compare the within-branch random suffixes (the branch nybbles
		// and prefix bits differ by construction).
		if fo1[i].Lo()&0xffffffff == fo2[i].Lo()&0xffffffff {
			same++
		}
	}
	if same == len(fo1) {
		t.Error("colliding prefixes produced identical fan-out suffixes")
	}
}

// TestDetectorWorkers pins the worker plumbing and the engine contract at
// the detector level: ProbeDay results are identical for any worker count.
func TestDetectorWorkers(t *testing.T) {
	if NewDetectorWorkers(world, 3).Workers() != 3 {
		t.Error("explicit worker count not plumbed through")
	}
	if NewDetector(world).Workers() != 8 {
		t.Error("default worker count changed")
	}
	var cands []Candidate
	for _, r := range world.AliasedRegions() {
		cands = append(cands, Candidate{Prefix: r.Prefix})
	}
	ref := NewDetectorWorkers(world, 1).ProbeDay(cands, 2)
	for _, workers := range []int{4, 16} {
		got := NewDetectorWorkers(world, workers).ProbeDay(cands, 2)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d masks, want %d", workers, len(got), len(ref))
		}
		for p, m := range ref {
			if got[p] != m {
				t.Errorf("workers=%d: mask for %v = %016b, want %016b", workers, p, got[p], m)
			}
		}
	}
}

func TestBranchMaskCount(t *testing.T) {
	if AllBranches.Count() != 16 {
		t.Error("AllBranches count")
	}
	if BranchMask(0).Count() != 0 || BranchMask(0b101).Count() != 2 {
		t.Error("Count wrong")
	}
}

func BenchmarkProbeDay(b *testing.B) {
	var cands []Candidate
	for _, r := range world.AliasedRegions() {
		cands = append(cands, Candidate{Prefix: r.Prefix})
	}
	det := NewDetector(world)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.ProbeDay(cands, i)
	}
}
