package apd

import (
	"testing"

	"expanse/internal/ip6"
)

// TestAblationFanOutVsRandom quantifies the §5.1 design argument: with 9
// of 16 subprefixes aliased, purely random 3-probe detection (the
// Murdock scheme) misclassifies the prefix as aliased (9/16)³ ≈ 18% of
// the time; 16 random probes still occasionally miss all dark branches;
// nybble-enforced fan-out never does.
func TestAblationFanOutVsRandom(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db8:42::/96")
	resp := PartialAliasResponder{Responding: 9, Level: 24} // nybble after /96
	const trials = 4000

	fanout := MisclassificationRate(p, resp, trials, func(int) []ip6.Addr {
		fo := FanOut(p)
		return fo[:]
	})
	random16 := MisclassificationRate(p, resp, trials, func(tr int) []ip6.Addr {
		return RandomTargets(p, 16, int64(tr))
	})
	random3 := MisclassificationRate(p, resp, trials, func(tr int) []ip6.Addr {
		return RandomTargets(p, 3, int64(tr))
	})

	if fanout != 0 {
		t.Errorf("fan-out misclassified %.4f of trials, want 0", fanout)
	}
	// (9/16)^3 = 0.178; allow sampling slack.
	if random3 < 0.12 || random3 > 0.24 {
		t.Errorf("random-3 misclassification = %.4f, want ≈ 0.178", random3)
	}
	// (9/16)^16 ≈ 1e-4 — strictly better than random-3, worse than fan-out.
	if random16 >= random3 {
		t.Errorf("random-16 (%.4f) should beat random-3 (%.4f)", random16, random3)
	}
	t.Logf("misclassification: fanout=%.4f random16=%.5f random3=%.4f", fanout, random16, random3)
}

func TestRandomTargetsInsidePrefix(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db8::/64")
	for _, a := range RandomTargets(p, 50, 1) {
		if !p.Contains(a) {
			t.Fatalf("target %v escaped prefix", a)
		}
	}
	// Deterministic per salt.
	a := RandomTargets(p, 5, 7)
	b := RandomTargets(p, 5, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomTargets not deterministic")
		}
	}
}

func TestPartialAliasResponder(t *testing.T) {
	r := PartialAliasResponder{Responding: 9, Level: 24}
	low := ip6.MustParseAddr("2001:db8:42::") // nybble 24 = 0
	if !r.Answers(low) {
		t.Error("branch 0 should answer")
	}
	high := low.WithNybble(24, 0xf)
	if r.Answers(high) {
		t.Error("branch f should be dark")
	}
}

func BenchmarkAblation_FanOutVsRandom(b *testing.B) {
	p := ip6.MustParsePrefix("2001:db8:42::/96")
	resp := PartialAliasResponder{Responding: 9, Level: 24}
	for i := 0; i < b.N; i++ {
		MisclassificationRate(p, resp, 100, func(tr int) []ip6.Addr {
			return RandomTargets(p, 3, int64(tr))
		})
	}
}
