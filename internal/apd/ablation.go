package apd

import (
	"math/rand"

	"expanse/internal/ip6"
)

// Ablation support for the §5.1 design argument: fan-out probing places
// one pseudo-random target in each 4-bit subprefix, so a prefix whose
// subprefixes are only PARTIALLY aliased can never be misclassified as
// fully aliased. Purely random target selection — especially with few
// probes, as in Murdock et al.'s 3-address scheme — can land all probes
// inside the responding portion by chance.

// RandomTargets returns n purely random addresses inside p (no branch
// enforcement), deterministically derived from the prefix and salt.
func RandomTargets(p ip6.Prefix, n int, salt int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(int64(p.Addr().Hi()^p.Addr().Lo()) ^ salt))
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = p.RandomAddr(rng)
	}
	return out
}

// PartialAliasResponder simulates the §5.1 case-3 phenomenon for the
// ablation: within each probed prefix, only the subprefixes whose first
// branch nybble is below Responding answer (e.g. Responding=9 → the 0x0-
// 0x8 branches are aliased, 0x9-0xf are dark).
type PartialAliasResponder struct {
	// Responding is how many of the 16 branches answer (1..15).
	Responding byte
	// Level is the nybble index (0-based) that decides the branch; set
	// it to Prefix.Bits()/4 of the probed prefix.
	Level int
}

// Answers reports whether the responder answers the given address.
func (r PartialAliasResponder) Answers(a ip6.Addr) bool {
	return a.Nybble(r.Level) < r.Responding
}

// MisclassificationRate measures how often a detection scheme labels a
// partially-aliased prefix as fully aliased: targetsFn generates the
// probe targets per trial; every probe into a responding branch answers.
// The fan-out scheme always sees the dark branches; random schemes can
// miss them.
func MisclassificationRate(p ip6.Prefix, r PartialAliasResponder, trials int,
	targetsFn func(trial int) []ip6.Addr) float64 {
	wrong := 0
	for t := 0; t < trials; t++ {
		all := true
		for _, a := range targetsFn(t) {
			if !r.Answers(a) {
				all = false
				break
			}
		}
		if all {
			wrong++
		}
	}
	return float64(wrong) / float64(trials)
}
