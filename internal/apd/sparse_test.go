package apd

import (
	"math/rand"
	"testing"

	"expanse/internal/ip6"
)

// buildHistories drives a sparse-enabled and a forced-dense history
// through an identical observation sequence: day 0 probes the whole ID
// space, later days random narrowed subsets (some far below the sparse
// threshold, some above), with duplicate IDs sprinkled in to exercise
// the OR-merge.
func buildHistories(t *testing.T, seed int64, nIDs, days int) (h, ref *History) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cands := make([]Candidate, nIDs)
	for i := range cands {
		cands[i] = Candidate{Prefix: ip6.PrefixFrom(ip6.AddrFromUint64(uint64(i)<<40, 0), 64)}
	}
	table := NewCandidateTable(cands)
	h, ref = &History{}, &History{}
	ref.SetDenseColumns(true)
	h.Bind(table)
	ref.Bind(table)
	for d := 0; d < days; d++ {
		var ids []int32
		if d == 0 {
			for i := 0; i < nIDs; i++ {
				ids = append(ids, int32(i))
			}
		} else {
			n := rng.Intn(nIDs/2) + 1
			if d%3 == 0 {
				n = rng.Intn(nIDs/20+1) + 1 // far below the sparse threshold
			}
			for i := 0; i < n; i++ {
				ids = append(ids, int32(rng.Intn(nIDs)))
			}
			// Duplicates must OR-merge identically in both layouts.
			ids = append(ids, ids[0], ids[len(ids)/2])
		}
		masks := make([]BranchMask, len(ids))
		for i := range masks {
			masks[i] = BranchMask(rng.Intn(1 << 16))
		}
		h.AddIDs(ids, masks)
		ref.AddIDs(ids, masks)
	}
	return h, ref
}

// TestSparseColumnsMatchDense pins that the sparse day-column layout is
// observation-equivalent to the dense reference across the whole History
// API: per-ID masks and presence, window merges at several widths and
// worker counts, aliased sets, and the Table 4 instability metric.
func TestSparseColumnsMatchDense(t *testing.T) {
	const nIDs, days = 700, 9
	h, ref := buildHistories(t, 101, nIDs, days)

	sparseSeen := false
	for d := 0; d < days; d++ {
		if _, ids, _ := h.Column(d).Export(); len(ids)*4 <= nIDs {
			sparseSeen = true
		}
	}
	if !sparseSeen {
		t.Fatal("workload never produced a sparse column; test is vacuous")
	}

	for d := 0; d < days; d++ {
		hc, rc := h.Column(d), ref.Column(d)
		if hc.Width() != rc.Width() || hc.ProbedCount() != rc.ProbedCount() {
			t.Fatalf("day %d: width/count diverge: (%d,%d) vs (%d,%d)",
				d, hc.Width(), hc.ProbedCount(), rc.Width(), rc.ProbedCount())
		}
		for id := int32(0); id < int32(nIDs); id++ {
			if hc.Mask(id) != rc.Mask(id) || hc.Probed(id) != rc.Probed(id) {
				t.Fatalf("day %d id %d: sparse (%04x,%v) vs dense (%04x,%v)",
					d, id, hc.Mask(id), hc.Probed(id), rc.Mask(id), rc.Probed(id))
			}
		}
	}

	for _, window := range []int{1, 3, 5} {
		for _, workers := range []int{1, 4, 16} {
			for d := 0; d < days; d++ {
				got := h.MergedColumn(d, window, workers)
				want := ref.MergedColumn(d, window, 1)
				for id := range got {
					if got[id] != want[id] {
						t.Fatalf("MergedColumn(d=%d w=%d workers=%d)[%d]: %04x vs %04x",
							d, window, workers, id, got[id], want[id])
					}
				}
				ga, wa := h.AliasedAtWorkers(d, window, workers), ref.AliasedAtWorkers(d, window, 1)
				if len(ga) != len(wa) {
					t.Fatalf("AliasedAt(d=%d w=%d): %d vs %d prefixes", d, window, len(ga), len(wa))
				}
				for p := range wa {
					if !ga[p] {
						t.Fatalf("AliasedAt(d=%d w=%d): missing %v", d, window, p)
					}
				}
			}
			if g, w := h.UnstablePrefixesWorkers(window, workers), ref.UnstablePrefixesWorkers(window, 1); g != w {
				t.Fatalf("UnstablePrefixes(w=%d workers=%d): %d vs %d", window, workers, g, w)
			}
		}
	}

	// ORDayInto equivalence — the pipeline's running near-mask update.
	for _, workers := range []int{1, 8} {
		got := make([]BranchMask, nIDs)
		want := make([]BranchMask, nIDs)
		for d := 0; d < days; d++ {
			h.ORDayInto(d, got, workers)
			ref.ORDayInto(d, want, 1)
		}
		for id := range got {
			if got[id] != want[id] {
				t.Fatalf("ORDayInto workers=%d id=%d: %04x vs %04x", workers, id, got[id], want[id])
			}
		}
	}
}

// TestDayColumnExportImport pins the snapshot codec contract: Export →
// ImportDayColumn must reproduce a column observation-for-observation,
// for both layouts.
func TestDayColumnExportImport(t *testing.T) {
	h, ref := buildHistories(t, 313, 500, 7)
	for _, src := range []*History{h, ref} {
		for d := 0; d < src.Len(); d++ {
			orig := src.Column(d)
			width, ids, masks := orig.Export()
			for i := 1; i < len(ids); i++ {
				if ids[i-1] >= ids[i] {
					t.Fatalf("day %d: exported ids not strictly ascending at %d", d, i)
				}
			}
			back := ImportDayColumn(width, ids, masks)
			if back.Width() != orig.Width() || back.ProbedCount() != orig.ProbedCount() {
				t.Fatalf("day %d: round-trip width/count diverge", d)
			}
			for id := int32(0); id < int32(width); id++ {
				if back.Mask(id) != orig.Mask(id) || back.Probed(id) != orig.Probed(id) {
					t.Fatalf("day %d id %d: round-trip diverged", d, id)
				}
			}
		}
	}
}

// TestHistoryRestore pins the resume path: a history rebuilt from a
// table plus exported column snapshots answers every query like the
// original.
func TestHistoryRestore(t *testing.T) {
	const nIDs, days = 400, 6
	h, _ := buildHistories(t, 77, nIDs, days)
	cands := make([]Candidate, nIDs)
	for i := range cands {
		cands[i] = Candidate{Prefix: ip6.PrefixFrom(ip6.AddrFromUint64(uint64(i)<<40, 0), 64)}
	}
	table := NewCandidateTable(cands)

	cols := make([]DayColumn, h.Len())
	for d := range cols {
		width, ids, masks := h.Column(d).Export()
		cols[d] = ImportDayColumn(width, ids, masks)
	}
	var re History
	re.Restore(table, cols)
	if re.Len() != h.Len() {
		t.Fatalf("restored Len = %d, want %d", re.Len(), h.Len())
	}
	for _, window := range []int{1, 3} {
		for d := 0; d < days; d++ {
			got := re.MergedColumn(d, window, 4)
			want := h.MergedColumn(d, window, 1)
			for id := range want {
				if got[id] != want[id] {
					t.Fatalf("restored MergedColumn(d=%d w=%d)[%d] diverged", d, window, id)
				}
			}
		}
		if g, w := re.UnstablePrefixesWorkers(window, 4), h.UnstablePrefixesWorkers(window, 1); g != w {
			t.Fatalf("restored UnstablePrefixes(w=%d): %d vs %d", window, g, w)
		}
	}
}
