package apd

// The retired map/trie alias-plane implementations, kept verbatim as
// property-test references and benchmark baselines: candidate derivation
// by per-level map bucketing, the per-day map history, and the trie-
// walking LPM filter. The live implementations (run-boundary scan,
// columnar day history, compiled interval table) are pinned against these
// on random inputs.

import (
	"sort"

	"expanse/internal/ip6"
)

// legacyHitlistCandidates is the retired map-bucketing candidate
// derivation: every level materializes a map[prefix][]addr of full
// address slices, refining lists above the threshold.
func legacyHitlistCandidates(addrs []ip6.Addr, minTargets int) []Candidate {
	if minTargets <= 0 {
		minTargets = DefaultMinTargets
	}
	bucket := func(lists [][]ip6.Addr, depth int) map[ip6.Prefix][]ip6.Addr {
		m := map[ip6.Prefix][]ip6.Addr{}
		for _, list := range lists {
			for _, a := range list {
				p := ip6.PrefixFrom(a, depth)
				m[p] = append(m[p], a)
			}
		}
		return m
	}
	level := bucket([][]ip6.Addr{addrs}, 64)
	var out []Candidate
	for p, list := range level {
		out = append(out, Candidate{Prefix: p, Targets: len(list)})
	}
	for depth := 68; depth <= 124; depth += 4 {
		var work [][]ip6.Addr
		for _, list := range level {
			if len(list) > minTargets {
				work = append(work, list)
			}
		}
		next := bucket(work, depth)
		for p, list := range next {
			if len(list) > minTargets {
				out = append(out, Candidate{Prefix: p, Targets: len(list)})
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		return ip6.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0
	})
	return out
}

// legacyHistory is the retired sliding-window store: one
// map[prefix]mask per day, probed per prefix per day.
type legacyHistory struct {
	days []map[ip6.Prefix]BranchMask
}

func (h *legacyHistory) Add(day map[ip6.Prefix]BranchMask) {
	h.days = append(h.days, day)
}

func (h *legacyHistory) Len() int { return len(h.days) }

func (h *legacyHistory) MergedAt(p ip6.Prefix, di, window int) BranchMask {
	if window < 1 {
		window = 1
	}
	var m BranchMask
	lo := di - window + 1
	if lo < 0 {
		lo = 0
	}
	for i := lo; i <= di && i < len(h.days); i++ {
		m |= h.days[i][p]
	}
	return m
}

// legacyAliasedAt keeps the retired per-day iteration, INCLUDING its bug:
// only prefixes present in day di's (possibly narrowed) probe set are
// considered, dropping prefixes responsive earlier in the window.
func (h *legacyHistory) legacyAliasedAt(di, window int) map[ip6.Prefix]bool {
	out := make(map[ip6.Prefix]bool)
	if di >= len(h.days) || di < 0 {
		return out
	}
	for p := range h.days[di] {
		if h.MergedAt(p, di, window) == AllBranches {
			out[p] = true
		}
	}
	return out
}

// aliasedAtUnion is the corrected reference: evaluate every prefix probed
// anywhere in the window.
func (h *legacyHistory) aliasedAtUnion(di, window int) map[ip6.Prefix]bool {
	out := make(map[ip6.Prefix]bool)
	if di >= len(h.days) || di < 0 {
		return out
	}
	if window < 1 {
		window = 1
	}
	lo := di - window + 1
	if lo < 0 {
		lo = 0
	}
	for i := lo; i <= di; i++ {
		for p := range h.days[i] {
			if h.MergedAt(p, di, window) == AllBranches {
				out[p] = true
			}
		}
	}
	return out
}

func (h *legacyHistory) Prefixes() []ip6.Prefix {
	seen := map[ip6.Prefix]bool{}
	for _, d := range h.days {
		for p := range d {
			seen[p] = true
		}
	}
	out := make([]ip6.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

func (h *legacyHistory) UnstablePrefixes(window int) int {
	if window < 1 {
		window = 1
	}
	start := window - 1
	unstable := 0
	for _, p := range h.Prefixes() {
		var prev, cur bool
		flips := 0
		for di := start; di < len(h.days); di++ {
			cur = h.MergedAt(p, di, window) == AllBranches
			if di > start && cur != prev {
				flips++
			}
			prev = cur
		}
		if flips > 0 {
			unstable++
		}
	}
	return unstable
}

// legacyTrieFilter is the retired LPM filter: one radix-trie walk per
// classified address.
type legacyTrieFilter struct {
	trie ip6.Trie[bool]
}

func newLegacyTrieFilter(verdicts map[ip6.Prefix]bool) *legacyTrieFilter {
	f := &legacyTrieFilter{}
	for p, aliased := range verdicts {
		f.trie.Insert(p, aliased)
	}
	return f
}

func (f *legacyTrieFilter) IsAliased(addr ip6.Addr) bool {
	_, aliased, ok := f.trie.Lookup(addr)
	return ok && aliased
}

func (f *legacyTrieFilter) AliasedPrefixes() []ip6.Prefix {
	var out []ip6.Prefix
	f.trie.Walk(func(p ip6.Prefix, aliased bool) bool {
		if aliased {
			out = append(out, p)
		}
		return true
	})
	return out
}

func (f *legacyTrieFilter) Split(addrs []ip6.Addr) (clean, aliased []ip6.Addr) {
	for _, a := range addrs {
		if f.IsAliased(a) {
			aliased = append(aliased, a)
		} else {
			clean = append(clean, a)
		}
	}
	return clean, aliased
}
