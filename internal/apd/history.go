package apd

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"expanse/internal/ip6"
)

// History accumulates daily branch masks for the sliding window (§5.2) in
// columnar form: every distinct prefix has a stable integer ID, and each
// day stores one []BranchMask column indexed by ID plus a presence bitmap
// marking the IDs actually probed that day (later days are narrowed to
// near-aliased candidates). Window evaluation — MergedAt, MergedColumn,
// AliasedAt, UnstablePrefixes — is therefore array OR-scans over the day
// columns instead of per-prefix map probes, and the whole-window metrics
// fan out over chunk-parallel workers.
//
// IDs are assigned by Bind (adopting a CandidateTable's ID space) or
// lazily by Add, which registers a day's unseen prefixes in sorted order
// so the assignment never depends on map iteration. The zero value is an
// empty history ready to use.
type History struct {
	ids      map[ip6.Prefix]int32
	prefixes []ip6.Prefix
	days     []dayColumn
}

// dayColumn is one day's observation: masks[id] is the branch mask of
// prefix id (zero when absent), present marks the probed IDs. Columns
// are sized to the ID space at the time of recording; IDs registered
// later read as absent via the bounds checks in the scans.
type dayColumn struct {
	masks   []BranchMask
	present bitset
}

// Bind adopts the table's prefix-ID assignment, so day columns recorded
// via AddIDs index directly by candidate ID. Bind must be called before
// any day is added and at most once.
func (h *History) Bind(t *CandidateTable) {
	if len(h.days) > 0 || h.ids != nil {
		panic("apd: History.Bind on a non-empty history")
	}
	h.prefixes = append([]ip6.Prefix(nil), t.prefixes...)
	h.ids = make(map[ip6.Prefix]int32, len(t.prefixes))
	for p, id := range t.ids {
		h.ids[p] = id
	}
}

// Add appends one day's observation from a per-prefix mask map. Unseen
// prefixes are registered in ComparePrefix order, keeping ID assignment a
// pure function of the observation sequence.
func (h *History) Add(day map[ip6.Prefix]BranchMask) {
	var fresh []ip6.Prefix
	for p := range day {
		if _, ok := h.ids[p]; !ok {
			fresh = append(fresh, p)
		}
	}
	if len(fresh) > 0 {
		sort.Slice(fresh, func(i, j int) bool { return ip6.ComparePrefix(fresh[i], fresh[j]) < 0 })
		if h.ids == nil {
			h.ids = make(map[ip6.Prefix]int32, len(fresh))
		}
		for _, p := range fresh {
			if _, ok := h.ids[p]; !ok {
				h.ids[p] = int32(len(h.prefixes))
				h.prefixes = append(h.prefixes, p)
			}
		}
	}
	col := dayColumn{masks: make([]BranchMask, len(h.prefixes)), present: newBitset(len(h.prefixes))}
	for p, m := range day {
		id := h.ids[p]
		col.masks[id] |= m
		col.present.set(int(id))
	}
	h.days = append(h.days, col)
}

// AddIDs appends one day's observation given pre-resolved prefix IDs:
// masks[i] is the branch mask observed for ids[i]. Entries sharing an ID
// (duplicate candidate prefixes) OR-merge, exactly like the map form.
func (h *History) AddIDs(ids []int32, masks []BranchMask) {
	if len(ids) != len(masks) {
		panic("apd: History.AddIDs length mismatch")
	}
	col := dayColumn{masks: make([]BranchMask, len(h.prefixes)), present: newBitset(len(h.prefixes))}
	for i, id := range ids {
		col.masks[id] |= masks[i]
		col.present.set(int(id))
	}
	h.days = append(h.days, col)
}

// Len returns the number of recorded days.
func (h *History) Len() int { return len(h.days) }

// DayColumn is an immutable snapshot of one recorded day's observation
// column: the per-ID branch masks and the presence bitmap of the probed
// IDs. A day's column is write-once — AddIDs/Add fill it completely
// before appending and nothing mutates it afterwards — so the snapshot
// is a pair of shared slice headers (copy-on-publish without the copy),
// safe to read from any goroutine while later days are still being
// appended to the live history. This is the per-day handoff unit of the
// epoch pipeline: a published epoch pins its day's column (and the
// window's columns) without holding a reference to the mutable history.
type DayColumn struct {
	masks   []BranchMask
	present bitset
}

// Width returns the ID-space width the column was recorded at. IDs
// registered after the day read as absent.
func (c DayColumn) Width() int { return len(c.masks) }

// Mask returns id's branch mask that day (zero when absent).
func (c DayColumn) Mask(id int32) BranchMask {
	if int(id) < len(c.masks) {
		return c.masks[id]
	}
	return 0
}

// Probed reports whether id was probed that day.
func (c DayColumn) Probed(id int32) bool { return c.present.get(int(id)) }

// Column returns day di's immutable column snapshot.
func (h *History) Column(di int) DayColumn {
	d := h.days[di]
	return DayColumn{masks: d.masks, present: d.present}
}

// WindowColumns returns the column snapshots of the sliding window of
// `window` days TOTAL ending at di (window below 1 clamps to 1), oldest
// first. Together with MergeColumns this makes the window merge a pure
// function of immutable snapshots, so a pipeline can evaluate day N-1's
// window while day N is being probed and appended.
func (h *History) WindowColumns(di, window int) []DayColumn {
	if window < 1 {
		window = 1
	}
	lo := windowStart(di, window)
	out := make([]DayColumn, 0, di-lo+1)
	for i := lo; i <= di && i < len(h.days); i++ {
		out = append(out, h.Column(i))
	}
	return out
}

// MergeColumns OR-merges day-column snapshots into a width-nIDs mask
// array — mask[id] is the union of id's branch masks over the columns —
// as a chunk-parallel array scan. MergedColumn is this applied to the
// live history's window; epoch sealing applies it to a draft's pinned
// window columns. The result is identical for every worker count.
func MergeColumns(cols []DayColumn, nIDs, workers int) []BranchMask {
	out := make([]BranchMask, nIDs)
	chunks(nIDs, workers, func(clo, chi int) {
		for _, c := range cols {
			masks := c.masks
			hi := chi
			if hi > len(masks) {
				hi = len(masks)
			}
			for id := clo; id < hi; id++ {
				out[id] |= masks[id]
			}
		}
	})
	return out
}

// windowStart returns the first day index of the window ending at di
// (window already clamped to >= 1).
func windowStart(di, window int) int {
	lo := di - window + 1
	if lo < 0 {
		lo = 0
	}
	return lo
}

// MergedAt returns the branch mask of prefix p at day index di, OR-merged
// over a sliding window of `window` days TOTAL ending at di (window 1 =
// that day only; values below 1 are clamped to 1): a branch counts as
// responsive if its address answered any protocol on any day in the
// window (§5.2). The paper's 3-day window therefore merges exactly days
// di-2 .. di — an earlier version merged window+1 days, silently turning
// the §5.2 evaluation into a 4-day merge.
func (h *History) MergedAt(p ip6.Prefix, di, window int) BranchMask {
	if window < 1 {
		window = 1
	}
	id, ok := h.ids[p]
	if !ok {
		return 0
	}
	var m BranchMask
	for i := windowStart(di, window); i <= di && i < len(h.days); i++ {
		if int(id) < len(h.days[i].masks) {
			m |= h.days[i].masks[id]
		}
	}
	return m
}

// MergedColumn returns the whole ID space's window-merged masks at day
// index di — mask[id] OR-merged over the `window` days ending at di — as
// a chunk-parallel array OR-scan over the day columns. The result is
// indexed by prefix ID (CandidateTable IDs when the history is bound).
func (h *History) MergedColumn(di, window, workers int) []BranchMask {
	return MergeColumns(h.WindowColumns(di, window), len(h.prefixes), workers)
}

// ORDayInto ORs day di's column into dst (indexed by prefix ID), the
// running-mask update of the pipeline's candidate narrowing, chunk-
// parallel over disjoint ID ranges.
func (h *History) ORDayInto(di int, dst []BranchMask, workers int) {
	masks := h.days[di].masks
	n := len(masks)
	if n > len(dst) {
		n = len(dst)
	}
	chunks(n, workers, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			dst[id] |= masks[id]
		}
	})
}

// presentUnion returns the union of the presence bitmaps over the window
// ending at di.
func (h *History) presentUnion(di, window int) bitset {
	u := newBitset(len(h.prefixes))
	for i := windowStart(di, window); i <= di && i < len(h.days); i++ {
		u.or(h.days[i].present)
	}
	return u
}

// AliasedAt returns the set of prefixes classified aliased at day index
// di under the given sliding window, scanning with all available CPUs.
// A prefix participates if it was probed on ANY day of the window, not
// just day di — later days narrow the probe set to near-aliased
// candidates, and the old per-day iteration silently dropped prefixes
// responsive earlier in the window but absent from day di's narrowed
// probe set.
func (h *History) AliasedAt(di, window int) map[ip6.Prefix]bool {
	return h.AliasedAtWorkers(di, window, runtime.GOMAXPROCS(0))
}

// AliasedAtWorkers is AliasedAt with an explicit worker cap for the
// column scan (the pipeline's Config.Workers plumbing; the result is
// identical for every value).
func (h *History) AliasedAtWorkers(di, window, workers int) map[ip6.Prefix]bool {
	out := make(map[ip6.Prefix]bool)
	if di >= len(h.days) || di < 0 {
		return out
	}
	if window < 1 {
		window = 1
	}
	present := h.presentUnion(di, window)
	merged := h.MergedColumn(di, window, workers)
	for id, m := range merged {
		if m == AllBranches && present.get(id) {
			out[h.prefixes[id]] = true
		}
	}
	return out
}

// Prefixes returns every prefix ever observed, sorted.
func (h *History) Prefixes() []ip6.Prefix {
	seen := h.presentUnion(len(h.days)-1, len(h.days))
	out := make([]ip6.Prefix, 0, len(h.prefixes))
	for id, p := range h.prefixes {
		if seen.get(id) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// UnstablePrefixes counts prefixes whose aliased classification changes
// across the recorded days when using the given sliding window — the
// metric of Table 4 — scanning with all available CPUs. Evaluation
// starts once the window is full, i.e. at day index window-1 (window < 1
// is clamped to 1, a single-day window).
func (h *History) UnstablePrefixes(window int) int {
	return h.UnstablePrefixesWorkers(window, runtime.GOMAXPROCS(0))
}

// UnstablePrefixesWorkers is UnstablePrefixes with an explicit worker
// cap (the pipeline's Config.Workers plumbing). The scan is
// chunk-parallel over the ID space: each prefix's flip count is an
// independent walk down its mask column, and the per-chunk counts sum
// to the same total for every worker count.
func (h *History) UnstablePrefixesWorkers(window, workers int) int {
	if window < 1 {
		window = 1
	}
	start := window - 1
	var total atomic.Int64
	chunks(len(h.prefixes), workers, func(lo, hi int) {
		unstable := 0
		for id := lo; id < hi; id++ {
			var prev, cur bool
			flips := 0
			for di := start; di < len(h.days); di++ {
				var m BranchMask
				for i := windowStart(di, window); i <= di; i++ {
					if id < len(h.days[i].masks) {
						m |= h.days[i].masks[id]
					}
				}
				cur = m == AllBranches
				if di > start && cur != prev {
					flips++
				}
				prev = cur
			}
			if flips > 0 {
				unstable++
			}
		}
		total.Add(int64(unstable))
	})
	return int(total.Load())
}

// chunkFloor is the minimum per-worker chunk size of the columnar scans:
// below this, goroutine fan-out costs more than the scan itself.
const chunkFloor = 1024

// chunks splits [0,n) into up to `workers` contiguous ranges (at least
// chunkFloor wide) and runs fn on each concurrently; with one range it
// runs inline. Used for scans whose per-chunk work is order-independent.
func chunks(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if max := (n + chunkFloor - 1) / chunkFloor; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// bitset is a fixed-width presence bitmap.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) get(i int) bool { return i>>6 < len(b) && b[i>>6]&(1<<(i&63)) != 0 }

// or merges another bitmap (possibly narrower) into b.
func (b bitset) or(o bitset) {
	for i := range o {
		b[i] |= o[i]
	}
}
