package apd

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"expanse/internal/ip6"
)

// History accumulates daily branch masks for the sliding window (§5.2) in
// columnar form: every distinct prefix has a stable integer ID, and each
// day stores one []BranchMask column indexed by ID plus a presence bitmap
// marking the IDs actually probed that day (later days are narrowed to
// near-aliased candidates). Window evaluation — MergedAt, MergedColumn,
// AliasedAt, UnstablePrefixes — is therefore array OR-scans over the day
// columns instead of per-prefix map probes, and the whole-window metrics
// fan out over chunk-parallel workers.
//
// IDs are assigned by Bind (adopting a CandidateTable's ID space) or
// lazily by Add, which registers a day's unseen prefixes in sorted order
// so the assignment never depends on map iteration. The zero value is an
// empty history ready to use.
type History struct {
	ids      map[ip6.Prefix]int32
	prefixes []ip6.Prefix
	days     []dayColumn

	// forceDense disables the sparse column representation — the memory-
	// audit baseline knob of the scale benchmarks, and the reference the
	// sparse/dense equivalence tests compare against. Results are
	// identical either way; only the footprint differs.
	forceDense bool
}

// dayColumn is one day's observation in one of two layouts, chosen per
// day by how much of the ID space was probed:
//
//   - dense (masks != nil): masks[id] is the branch mask of prefix id
//     (zero when absent), present marks the probed IDs. Day 0 probes the
//     whole candidate universe, so its column is dense.
//   - sparse (masks == nil): ids lists the probed IDs ascending with
//     their masks in sm. Narrowed days probe a few near-aliased
//     candidates out of a candidate universe that grows with the
//     hitlist, so a dense 2-byte-per-ID column per day dominated the
//     alias plane's footprint at scale — the sparse form costs 6 bytes
//     per PROBED id instead of 2.125 bytes per REGISTERED id.
//
// Columns are sized to the ID space at the time of recording (width);
// IDs registered later read as absent via the bounds checks in the
// scans. Both layouts are immutable once appended.
type dayColumn struct {
	masks   []BranchMask
	present bitset
	ids     []int32
	sm      []BranchMask
	width   int
}

// sparseWorthIt decides the layout: sparse entries cost 6 bytes against
// a dense column's ~2.125 bytes per ID; the ×4 margin keeps the scans'
// binary searches off columns that are only moderately narrowed.
func sparseWorthIt(probed, width int) bool { return probed*4 <= width }

// mask returns id's branch mask that day (zero when absent).
func (c *dayColumn) mask(id int32) BranchMask {
	if c.masks != nil {
		if int(id) < len(c.masks) {
			return c.masks[id]
		}
		return 0
	}
	i := sort.Search(len(c.ids), func(k int) bool { return c.ids[k] >= id })
	if i < len(c.ids) && c.ids[i] == id {
		return c.sm[i]
	}
	return 0
}

// probed reports whether id was probed that day.
func (c *dayColumn) probed(id int32) bool {
	if c.masks != nil {
		return c.present.get(int(id))
	}
	i := sort.Search(len(c.ids), func(k int) bool { return c.ids[k] >= id })
	return i < len(c.ids) && c.ids[i] == id
}

// orInto ORs the column's masks into dst for the ID range [lo, hi).
func (c *dayColumn) orInto(dst []BranchMask, lo, hi int) {
	if c.masks != nil {
		m := c.masks
		if hi > len(m) {
			hi = len(m)
		}
		for id := lo; id < hi; id++ {
			dst[id] |= m[id]
		}
		return
	}
	k := sort.Search(len(c.ids), func(i int) bool { return int(c.ids[i]) >= lo })
	for ; k < len(c.ids) && int(c.ids[k]) < hi; k++ {
		dst[c.ids[k]] |= c.sm[k]
	}
}

// makeColumn builds a day column from (id, mask) observations, OR-merging
// entries that share an ID (duplicate candidate prefixes), in the layout
// sparseWorthIt picks for the probed count. The result is a pure function
// of the observation multiset — input order never shows.
func makeColumn(ids []int32, masks []BranchMask, width int, forceDense bool) dayColumn {
	if !forceDense && sparseWorthIt(len(ids), width) {
		// Sort (id, mask) pairs by ID and OR-merge duplicates.
		ord := make([]int, len(ids))
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool { return ids[ord[a]] < ids[ord[b]] })
		sids := make([]int32, 0, len(ids))
		sm := make([]BranchMask, 0, len(ids))
		for _, i := range ord {
			if n := len(sids); n > 0 && sids[n-1] == ids[i] {
				sm[n-1] |= masks[i]
				continue
			}
			sids = append(sids, ids[i])
			sm = append(sm, masks[i])
		}
		return dayColumn{ids: sids, sm: sm, width: width}
	}
	col := dayColumn{masks: make([]BranchMask, width), present: newBitset(width), width: width}
	for i, id := range ids {
		col.masks[id] |= masks[i]
		col.present.set(int(id))
	}
	return col
}

// Bind adopts the table's prefix-ID assignment, so day columns recorded
// via AddIDs index directly by candidate ID. Bind must be called before
// any day is added and at most once.
func (h *History) Bind(t *CandidateTable) {
	if len(h.days) > 0 || h.ids != nil {
		panic("apd: History.Bind on a non-empty history")
	}
	h.prefixes = append([]ip6.Prefix(nil), t.prefixes...)
	h.ids = make(map[ip6.Prefix]int32, len(t.prefixes))
	for p, id := range t.ids {
		h.ids[p] = id
	}
}

// Add appends one day's observation from a per-prefix mask map. Unseen
// prefixes are registered in ComparePrefix order, keeping ID assignment a
// pure function of the observation sequence.
func (h *History) Add(day map[ip6.Prefix]BranchMask) {
	var fresh []ip6.Prefix
	for p := range day {
		if _, ok := h.ids[p]; !ok {
			fresh = append(fresh, p)
		}
	}
	if len(fresh) > 0 {
		sort.Slice(fresh, func(i, j int) bool { return ip6.ComparePrefix(fresh[i], fresh[j]) < 0 })
		if h.ids == nil {
			h.ids = make(map[ip6.Prefix]int32, len(fresh))
		}
		for _, p := range fresh {
			if _, ok := h.ids[p]; !ok {
				h.ids[p] = int32(len(h.prefixes))
				h.prefixes = append(h.prefixes, p)
			}
		}
	}
	ids := make([]int32, 0, len(day))
	masks := make([]BranchMask, 0, len(day))
	// makeColumn OR-merges per ID either way, but feeding it in sorted
	// prefix order keeps the column build independent of map iteration
	// (and matches the AddIDs pipeline path, which probes in
	// ComparePrefix order).
	for _, p := range ip6.SortedKeys(day) {
		ids = append(ids, h.ids[p])
		masks = append(masks, day[p])
	}
	h.days = append(h.days, makeColumn(ids, masks, len(h.prefixes), h.forceDense))
}

// AddIDs appends one day's observation given pre-resolved prefix IDs:
// masks[i] is the branch mask observed for ids[i]. Entries sharing an ID
// (duplicate candidate prefixes) OR-merge, exactly like the map form.
func (h *History) AddIDs(ids []int32, masks []BranchMask) {
	if len(ids) != len(masks) {
		panic("apd: History.AddIDs length mismatch")
	}
	h.days = append(h.days, makeColumn(ids, masks, len(h.prefixes), h.forceDense))
}

// SetDenseColumns pins the history to dense day columns regardless of
// how narrowed a day is — the memory-audit baseline knob (cmd/bench7
// -baseline) and the reference representation of the sparse/dense
// equivalence tests. Affects only days recorded after the call.
func (h *History) SetDenseColumns(dense bool) { h.forceDense = dense }

// Len returns the number of recorded days.
func (h *History) Len() int { return len(h.days) }

// Restore rebuilds a history from a candidate table and previously
// recorded column snapshots (oldest first) — the resume path of the
// snapshot plane. Equivalent to Bind followed by replaying the original
// AddIDs sequence: every scan over the restored history returns exactly
// what it returned over the live one. Must be called on an empty
// history.
func (h *History) Restore(t *CandidateTable, cols []DayColumn) {
	h.Bind(t)
	for _, c := range cols {
		h.days = append(h.days, c.col)
	}
}

// MemBytes estimates the history's resident footprint, split into the
// day columns (dense vs sparse parts) and the prefix index. The split
// drives the alias-plane rows of the bytes-per-address audit.
func (h *History) MemBytes() (total, denseCols, sparseCols, index int64) {
	for i := range h.days {
		d := &h.days[i]
		denseCols += int64(cap(d.masks))*2 + int64(cap(d.present))*8
		sparseCols += int64(cap(d.ids))*4 + int64(cap(d.sm))*2
	}
	// Prefix = Addr (16B) + length byte, padded to 24; the id map costs
	// its 24-byte key + 4-byte value plus bucket overhead (~40B/entry).
	index = int64(cap(h.prefixes))*24 + int64(len(h.ids))*40
	return denseCols + sparseCols + index, denseCols, sparseCols, index
}

// DayColumn is an immutable snapshot of one recorded day's observation
// column — dense (per-ID masks plus presence bitmap) or sparse (probed
// IDs with their masks), matching the live history's layout for that
// day. A day's column is write-once — AddIDs/Add fill it completely
// before appending and nothing mutates it afterwards — so the snapshot
// is a few shared slice headers (copy-on-publish without the copy),
// safe to read from any goroutine while later days are still being
// appended to the live history. This is the per-day handoff unit of the
// epoch pipeline: a published epoch pins its day's column (and the
// window's columns) without holding a reference to the mutable history,
// and the snapshot plane (internal/snap) serializes columns through
// Export/ImportDayColumn.
type DayColumn struct {
	col dayColumn
}

// Width returns the ID-space width the column was recorded at. IDs
// registered after the day read as absent.
func (c DayColumn) Width() int { return c.col.width }

// Mask returns id's branch mask that day (zero when absent).
func (c DayColumn) Mask(id int32) BranchMask { return c.col.mask(id) }

// Probed reports whether id was probed that day.
func (c DayColumn) Probed(id int32) bool { return c.col.probed(id) }

// ProbedCount returns how many distinct IDs were probed that day.
func (c DayColumn) ProbedCount() int {
	if c.col.masks == nil {
		return len(c.col.ids)
	}
	n := 0
	for _, w := range c.col.present {
		n += bits.OnesCount64(w)
	}
	return n
}

// Export returns the column's probed IDs in ascending order with their
// (OR-merged) masks, plus the recorded ID-space width — the canonical
// layout-independent form the snapshot codec writes. Both slices are
// freshly allocated.
func (c DayColumn) Export() (width int, ids []int32, masks []BranchMask) {
	if c.col.masks == nil {
		return c.col.width, append([]int32(nil), c.col.ids...), append([]BranchMask(nil), c.col.sm...)
	}
	n := c.ProbedCount()
	ids = make([]int32, 0, n)
	masks = make([]BranchMask, 0, n)
	for id := 0; id < len(c.col.masks); id++ {
		if c.col.present.get(id) {
			ids = append(ids, int32(id))
			masks = append(masks, c.col.masks[id])
		}
	}
	return c.col.width, ids, masks
}

// ImportDayColumn rebuilds a column snapshot from its exported form,
// picking the layout the live history would have used. Mask, Probed and
// every scan over the imported column behave identically to the
// original — representation is a pure memory decision.
func ImportDayColumn(width int, ids []int32, masks []BranchMask) DayColumn {
	return DayColumn{col: makeColumn(ids, masks, width, false)}
}

// Column returns day di's immutable column snapshot.
func (h *History) Column(di int) DayColumn {
	return DayColumn{col: h.days[di]}
}

// WindowColumns returns the column snapshots of the sliding window of
// `window` days TOTAL ending at di (window below 1 clamps to 1), oldest
// first. Together with MergeColumns this makes the window merge a pure
// function of immutable snapshots, so a pipeline can evaluate day N-1's
// window while day N is being probed and appended.
func (h *History) WindowColumns(di, window int) []DayColumn {
	if window < 1 {
		window = 1
	}
	lo := windowStart(di, window)
	out := make([]DayColumn, 0, di-lo+1)
	for i := lo; i <= di && i < len(h.days); i++ {
		out = append(out, h.Column(i))
	}
	return out
}

// MergeColumns OR-merges day-column snapshots into a width-nIDs mask
// array — mask[id] is the union of id's branch masks over the columns —
// as a chunk-parallel array scan. MergedColumn is this applied to the
// live history's window; epoch sealing applies it to a draft's pinned
// window columns. The result is identical for every worker count.
func MergeColumns(cols []DayColumn, nIDs, workers int) []BranchMask {
	out := make([]BranchMask, nIDs)
	chunks(nIDs, workers, func(clo, chi int) {
		for i := range cols {
			cols[i].col.orInto(out, clo, chi)
		}
	})
	return out
}

// windowStart returns the first day index of the window ending at di
// (window already clamped to >= 1).
func windowStart(di, window int) int {
	lo := di - window + 1
	if lo < 0 {
		lo = 0
	}
	return lo
}

// MergedAt returns the branch mask of prefix p at day index di, OR-merged
// over a sliding window of `window` days TOTAL ending at di (window 1 =
// that day only; values below 1 are clamped to 1): a branch counts as
// responsive if its address answered any protocol on any day in the
// window (§5.2). The paper's 3-day window therefore merges exactly days
// di-2 .. di — an earlier version merged window+1 days, silently turning
// the §5.2 evaluation into a 4-day merge.
func (h *History) MergedAt(p ip6.Prefix, di, window int) BranchMask {
	if window < 1 {
		window = 1
	}
	id, ok := h.ids[p]
	if !ok {
		return 0
	}
	var m BranchMask
	for i := windowStart(di, window); i <= di && i < len(h.days); i++ {
		m |= h.days[i].mask(id)
	}
	return m
}

// MergedColumn returns the whole ID space's window-merged masks at day
// index di — mask[id] OR-merged over the `window` days ending at di — as
// a chunk-parallel array OR-scan over the day columns. The result is
// indexed by prefix ID (CandidateTable IDs when the history is bound).
func (h *History) MergedColumn(di, window, workers int) []BranchMask {
	return MergeColumns(h.WindowColumns(di, window), len(h.prefixes), workers)
}

// ORDayInto ORs day di's column into dst (indexed by prefix ID), the
// running-mask update of the pipeline's candidate narrowing, chunk-
// parallel over disjoint ID ranges.
func (h *History) ORDayInto(di int, dst []BranchMask, workers int) {
	col := &h.days[di]
	n := col.width
	if n > len(dst) {
		n = len(dst)
	}
	chunks(n, workers, func(lo, hi int) {
		col.orInto(dst, lo, hi)
	})
}

// presentUnion returns the union of the presence bitmaps over the window
// ending at di.
func (h *History) presentUnion(di, window int) bitset {
	u := newBitset(len(h.prefixes))
	for i := windowStart(di, window); i <= di && i < len(h.days); i++ {
		if d := &h.days[i]; d.masks != nil {
			u.or(d.present)
		} else {
			for _, id := range d.ids {
				u.set(int(id))
			}
		}
	}
	return u
}

// AliasedAt returns the set of prefixes classified aliased at day index
// di under the given sliding window, scanning with all available CPUs.
// A prefix participates if it was probed on ANY day of the window, not
// just day di — later days narrow the probe set to near-aliased
// candidates, and the old per-day iteration silently dropped prefixes
// responsive earlier in the window but absent from day di's narrowed
// probe set.
func (h *History) AliasedAt(di, window int) map[ip6.Prefix]bool {
	return h.AliasedAtWorkers(di, window, runtime.GOMAXPROCS(0))
}

// AliasedAtWorkers is AliasedAt with an explicit worker cap for the
// column scan (the pipeline's Config.Workers plumbing; the result is
// identical for every value).
func (h *History) AliasedAtWorkers(di, window, workers int) map[ip6.Prefix]bool {
	out := make(map[ip6.Prefix]bool)
	if di >= len(h.days) || di < 0 {
		return out
	}
	if window < 1 {
		window = 1
	}
	present := h.presentUnion(di, window)
	merged := h.MergedColumn(di, window, workers)
	for id, m := range merged {
		if m == AllBranches && present.get(id) {
			out[h.prefixes[id]] = true
		}
	}
	return out
}

// Prefixes returns every prefix ever observed, sorted.
func (h *History) Prefixes() []ip6.Prefix {
	seen := h.presentUnion(len(h.days)-1, len(h.days))
	out := make([]ip6.Prefix, 0, len(h.prefixes))
	for id, p := range h.prefixes {
		if seen.get(id) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// UnstablePrefixes counts prefixes whose aliased classification changes
// across the recorded days when using the given sliding window — the
// metric of Table 4 — scanning with all available CPUs. Evaluation
// starts once the window is full, i.e. at day index window-1 (window < 1
// is clamped to 1, a single-day window).
func (h *History) UnstablePrefixes(window int) int {
	return h.UnstablePrefixesWorkers(window, runtime.GOMAXPROCS(0))
}

// UnstablePrefixesWorkers is UnstablePrefixes with an explicit worker
// cap (the pipeline's Config.Workers plumbing). The scan is
// chunk-parallel over the ID space: each prefix's flip count is an
// independent walk down its mask column, and the per-chunk counts sum
// to the same total for every worker count.
func (h *History) UnstablePrefixesWorkers(window, workers int) int {
	if window < 1 {
		window = 1
	}
	start := window - 1
	var total atomic.Int64
	chunks(len(h.prefixes), workers, func(lo, hi int) {
		unstable := 0
		for id := lo; id < hi; id++ {
			var prev, cur bool
			flips := 0
			for di := start; di < len(h.days); di++ {
				var m BranchMask
				for i := windowStart(di, window); i <= di; i++ {
					m |= h.days[i].mask(int32(id))
				}
				cur = m == AllBranches
				if di > start && cur != prev {
					flips++
				}
				prev = cur
			}
			if flips > 0 {
				unstable++
			}
		}
		total.Add(int64(unstable))
	})
	return int(total.Load())
}

// chunkFloor is the minimum per-worker chunk size of the columnar scans:
// below this, goroutine fan-out costs more than the scan itself.
const chunkFloor = 1024

// chunks splits [0,n) into up to `workers` contiguous ranges (at least
// chunkFloor wide) and runs fn on each concurrently; with one range it
// runs inline. Used for scans whose per-chunk work is order-independent.
func chunks(n, workers int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	if max := (n + chunkFloor - 1) / chunkFloor; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// bitset is a fixed-width presence bitmap.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) get(i int) bool { return i>>6 < len(b) && b[i>>6]&(1<<(i&63)) != 0 }

// or merges another bitmap (possibly narrower) into b.
func (b bitset) or(o bitset) {
	for i := range o {
		b[i] |= o[i]
	}
}
