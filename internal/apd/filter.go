package apd

import (
	"sort"

	"expanse/internal/ip6"
)

// Filter is the longest-prefix-match alias filter of §5.1: it stores the
// verdict of every probed prefix and decides per address using the most
// closely covering probed prefix, so a non-aliased more-specific rescues
// its addresses from an aliased less-specific.
//
// The verdict trie is compiled at construction into a sorted table of
// disjoint (lo, hi, aliased) address intervals (ip6.CompileIntervals)
// with most-specific-wins semantics baked in. Point queries are a binary
// search; classifying a sorted address stream (Classify/SplitSorted) is a
// chunk-parallel linear merge against the table — zero per-address trie
// walks either way. The retired trie-walking filter survives as the
// property-test reference.
type Filter struct {
	tab     []ip6.Interval[bool]
	aliased []ip6.Prefix // aliased-verdict prefixes, (address, length) order
}

// NewFilter builds a filter from per-prefix verdicts.
func NewFilter(verdicts map[ip6.Prefix]bool) *Filter {
	ps := make([]ip6.Prefix, 0, len(verdicts))
	vals := make([]bool, 0, len(verdicts))
	for p := range verdicts {
		ps = append(ps, p)
	}
	// Sort by (address, length) — the trie's walk order — so both the
	// compiled table and AliasedPrefixes are pure functions of the
	// verdict set.
	sort.Slice(ps, func(i, j int) bool {
		if c := ps[i].Addr().Compare(ps[j].Addr()); c != 0 {
			return c < 0
		}
		return ps[i].Bits() < ps[j].Bits()
	})
	f := &Filter{}
	for _, p := range ps {
		v := verdicts[p]
		vals = append(vals, v)
		if v {
			f.aliased = append(f.aliased, p)
		}
	}
	f.tab = ip6.CompileIntervals(ps, vals)
	return f
}

// IsAliased reports whether addr falls under an aliased prefix per the
// most specific probed verdict.
func (f *Filter) IsAliased(addr ip6.Addr) bool {
	v, ok := ip6.LookupInterval(f.tab, addr)
	return ok && v
}

// AliasedPrefixes returns the prefixes with aliased verdicts, in
// (address, length) order.
func (f *Filter) AliasedPrefixes() []ip6.Prefix {
	return append([]ip6.Prefix(nil), f.aliased...)
}

// Intervals exposes the compiled interval table. Read-only.
func (f *Filter) Intervals() []ip6.Interval[bool] { return f.tab }

// Split partitions addresses into non-aliased and aliased per the filter.
// The input may be in any order; each address costs one binary search.
// For the sorted hitlist, SplitSorted is the linear-merge fast path.
func (f *Filter) Split(addrs []ip6.Addr) (clean, aliased []ip6.Addr) {
	for _, a := range addrs {
		if f.IsAliased(a) {
			aliased = append(aliased, a)
		} else {
			clean = append(clean, a)
		}
	}
	return clean, aliased
}

// Classify returns the per-address aliased flag for an ASCENDING address
// sequence (the ShardSet's cached sorted view) by linearly merging the
// sequence against the interval table. The work is chunked across
// workers; each chunk binary-searches its first interval once and then
// advances both cursors monotonically, so the merge costs O(n + table)
// total and the output is identical for every worker count.
func (f *Filter) Classify(sorted ip6.AddrSeq, workers int) []bool {
	n := sorted.Len()
	out := make([]bool, n)
	tab := f.tab
	chunks(n, workers, func(lo, hi int) {
		first := sorted.At(lo)
		ti := sort.Search(len(tab), func(k int) bool { return first.Compare(tab[k].Hi) <= 0 })
		for i := lo; i < hi; i++ {
			a := sorted.At(i)
			for ti < len(tab) && tab[ti].Hi.Less(a) {
				ti++
			}
			if ti < len(tab) && !a.Less(tab[ti].Lo) {
				out[i] = tab[ti].Val
			}
		}
	})
	return out
}

// SplitSorted partitions an ascending address sequence into non-aliased
// and aliased slices via Classify, preserving order, and also returns
// the raw classification aligned with the input (bits[i]: address i is
// aliased) for consumers that need per-address flags alongside the
// partition. The slices are byte-for-byte the result of Split on the
// same input, at linear-merge cost.
func (f *Filter) SplitSorted(sorted ip6.AddrSeq, workers int) (clean, aliased []ip6.Addr, bits []bool) {
	bits = f.Classify(sorted, workers)
	nAliased := 0
	for _, b := range bits {
		if b {
			nAliased++
		}
	}
	clean = make([]ip6.Addr, 0, len(bits)-nAliased)
	aliased = make([]ip6.Addr, 0, nAliased)
	for i, b := range bits {
		if b {
			aliased = append(aliased, sorted.At(i))
		} else {
			clean = append(clean, sorted.At(i))
		}
	}
	return clean, aliased, bits
}
