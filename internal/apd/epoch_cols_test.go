package apd

import (
	"math/rand"
	"testing"

	"expanse/internal/ip6"
)

// TestWindowColumnsPinEpoch pins the epoch pipeline's column-snapshot
// contract: a day's DayColumn agrees with the per-prefix single-day
// merge, MergeColumns over WindowColumns reproduces MergedColumn at any
// worker count, and pinned snapshots stay stable — same merge result —
// after later days are appended to the live history.
func TestWindowColumnsPinEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	verdicts := randomVerdicts(rng, 40)
	prefixes := make([]ip6.Prefix, 0, len(verdicts))
	for p := range verdicts {
		prefixes = append(prefixes, p)
	}
	days := randomDays(rng, prefixes, 6)
	var h History
	for _, d := range days {
		h.Add(d)
	}
	nIDs := len(h.prefixes)

	// Single-day column vs per-prefix window-1 merge.
	di := h.Len() - 1
	col := h.Column(di)
	if col.Width() != nIDs {
		t.Fatalf("Column width %d, want %d", col.Width(), nIDs)
	}
	for _, p := range prefixes {
		id, ok := h.ids[p]
		if !ok {
			continue
		}
		if got, want := col.Mask(id), h.MergedAt(p, di, 1); got != want {
			t.Fatalf("Column(%d).Mask(%v) = %04x, MergedAt = %04x", di, p, got, want)
		}
		// Probed marks presence in the day's probe set regardless of mask.
		if _, in := days[di][p]; col.Probed(id) != in {
			t.Fatalf("Column(%d).Probed(%v) = %v, day map has %v", di, p, col.Probed(id), in)
		}
	}

	// MergeColumns over pinned window snapshots == MergedColumn, any workers.
	type pin struct {
		di, w int
		cols  []DayColumn
		want  []BranchMask
	}
	var pins []pin
	for _, w := range []int{1, 3, 5} {
		for di := 0; di < h.Len(); di++ {
			cols := h.WindowColumns(di, w)
			want := h.MergedColumn(di, w, 1)
			for _, workers := range []int{1, 4, 16} {
				got := MergeColumns(cols, nIDs, workers)
				for id := range want {
					if got[id] != want[id] {
						t.Fatalf("di=%d w=%d workers=%d: MergeColumns[%d] = %04x, MergedColumn %04x",
							di, w, workers, id, got[id], want[id])
					}
				}
			}
			pins = append(pins, pin{di, w, cols, want})
		}
	}

	// Appending later days must not disturb any pinned snapshot.
	for _, d := range randomDays(rng, prefixes, 4) {
		h.Add(d)
	}
	for _, pn := range pins {
		got := MergeColumns(pn.cols, nIDs, 4)
		for id := range pn.want {
			if got[id] != pn.want[id] {
				t.Fatalf("di=%d w=%d: pinned snapshot moved after later Add", pn.di, pn.w)
			}
		}
	}
}
