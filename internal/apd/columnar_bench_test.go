package apd

// Benchmarks of the columnar alias plane against the retained legacy
// baselines (legacy_ref_test.go). Picked up by the CI bench-smoke job;
// before/after numbers are recorded in EXPERIMENTS.md.

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"expanse/internal/ip6"
)

// BenchmarkHitlistCandidates compares candidate derivation: the
// run-boundary scan over the cached sorted view ("runscan"; the sort is
// amortized by the data plane, so the cached variant is the pipeline's
// real cost) vs the retired per-level map bucketing.
func BenchmarkHitlistCandidates(b *testing.B) {
	addrs := randomHitlist(rand.New(rand.NewSource(1)), 1500)
	sorted := append([]ip6.Addr(nil), addrs...)
	sortAddrs(sorted)
	b.Run("runscan-cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CandidatesFromSorted(ip6.Addrs(sorted), 100)
		}
	})
	b.Run("runscan-with-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HitlistCandidatesAddrs(addrs, 100)
		}
	})
	b.Run("legacy-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			legacyHitlistCandidates(addrs, 100)
		}
	})
}

// BenchmarkFilterSplit compares classifying a sorted hitlist: the
// chunk-parallel interval linear merge vs the retired per-address trie
// walk.
func BenchmarkFilterSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	verdicts := randomVerdicts(rng, 5000)
	f := NewFilter(verdicts)
	ref := newLegacyTrieFilter(verdicts)
	sorted := make([]ip6.Addr, 1<<18)
	for i := range sorted {
		// Half inside verdict regions, half uniform.
		if i%2 == 0 {
			sorted[i] = ip6.AddrFromUint64(0x2001<<48|rng.Uint64()&0xff_ffff<<24, rng.Uint64())
		} else {
			sorted[i] = ip6.AddrFromUint64(rng.Uint64(), rng.Uint64())
		}
	}
	sortAddrs(sorted)
	b.Run("interval-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.SplitSorted(ip6.Addrs(sorted), runtime.GOMAXPROCS(0))
		}
	})
	b.Run("interval-merge-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.SplitSorted(ip6.Addrs(sorted), 1)
		}
	})
	b.Run("legacy-trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ref.Split(sorted)
		}
	})
}

// BenchmarkWindowMerge compares the Table 4 whole-window instability
// metric: chunk-parallel column scans vs the retired per-prefix map
// probes.
func BenchmarkWindowMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	verdicts := randomVerdicts(rng, 20000)
	prefixes := make([]ip6.Prefix, 0, len(verdicts))
	for p := range verdicts {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return ip6.ComparePrefix(prefixes[i], prefixes[j]) < 0 })
	days := randomDays(rng, prefixes, 14)
	var h History
	var ref legacyHistory
	for _, d := range days {
		h.Add(d)
		ref.Add(d)
	}
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.UnstablePrefixes(3)
		}
	})
	b.Run("legacy-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ref.UnstablePrefixes(3)
		}
	})
}
