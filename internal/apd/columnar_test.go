package apd

// Property tests pinning the columnar alias plane against the retired
// map/trie implementations (legacy_ref_test.go) on random inputs, plus
// the regression tests the rewrite carries.

import (
	"math/rand"
	"sort"
	"testing"

	"expanse/internal/ip6"
)

// randomHitlist builds an address slice with APD-shaped structure: dense
// counter blocks (deep candidate chains), medium spreads at several
// levels, sparse randoms, and duplicates.
func randomHitlist(rng *rand.Rand, blocks int) []ip6.Addr {
	var addrs []ip6.Addr
	for b := 0; b < blocks; b++ {
		base := ip6.PrefixFrom(ip6.AddrFromUint64(0x2001<<48|rng.Uint64()&0xffff_ffff<<16, 0), 64)
		switch rng.Intn(4) {
		case 0: // dense counter block: one deep chain above threshold
			n := 100 + rng.Intn(300)
			for i := 0; i < n; i++ {
				addrs = append(addrs, base.NthAddr(uint64(i)))
			}
		case 1: // spread across a middle level
			n := 50 + rng.Intn(200)
			for i := 0; i < n; i++ {
				addrs = append(addrs, base.NthAddr(uint64(rng.Intn(1<<24))))
			}
		case 2: // sparse
			for i := 0; i < 1+rng.Intn(20); i++ {
				addrs = append(addrs, base.RandomAddr(rng))
			}
		case 3: // duplicates of one address
			a := base.RandomAddr(rng)
			for i := 0; i < 1+rng.Intn(5); i++ {
				addrs = append(addrs, a)
			}
		}
	}
	return addrs
}

// TestCandidatesMatchMapReference pins the run-boundary candidate scan
// against the retired per-level map bucketing on random hitlists.
func TestCandidatesMatchMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		addrs := randomHitlist(rng, 1+rng.Intn(40))
		minTargets := []int{0, 20, 100}[trial%3]
		got := HitlistCandidatesAddrs(addrs, minTargets)
		want := legacyHitlistCandidates(addrs, minTargets)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d candidates, legacy %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: candidate %d = %+v, legacy %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// randomVerdicts builds a nested random verdict set like an APD day
// produces: /64s with deeper chains, plus short BGP-style prefixes.
func randomVerdicts(rng *rand.Rand, n int) map[ip6.Prefix]bool {
	out := map[ip6.Prefix]bool{}
	var pool []ip6.Prefix
	for len(out) < n {
		var p ip6.Prefix
		if len(pool) > 0 && rng.Intn(2) == 0 {
			parent := pool[rng.Intn(len(pool))]
			bits := parent.Bits() + 4*(1+rng.Intn(4))
			if bits > 124 {
				bits = 124
			}
			p = ip6.PrefixFrom(parent.RandomAddr(rng), bits)
		} else {
			bits := []int{32, 40, 48, 64, 96}[rng.Intn(5)]
			p = ip6.PrefixFrom(ip6.AddrFromUint64(0x2001<<48|rng.Uint64()&0xff_ffff<<24, rng.Uint64()), bits)
		}
		if _, dup := out[p]; dup {
			continue
		}
		out[p] = rng.Intn(2) == 0
		pool = append(pool, p)
	}
	return out
}

// TestFilterMatchesTrieReference pins the interval-compiled filter
// against the retired trie filter on random verdict sets: point lookups,
// the aliased-prefix list, arbitrary-order Split, and the sorted
// linear-merge classification across worker counts.
func TestFilterMatchesTrieReference(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		verdicts := randomVerdicts(rng, 1+rng.Intn(150))
		f := NewFilter(verdicts)
		ref := newLegacyTrieFilter(verdicts)

		var probes []ip6.Addr
		for p := range verdicts {
			probes = append(probes, p.Addr(), p.Last(), p.RandomAddr(rng))
		}
		for i := 0; i < 200; i++ {
			probes = append(probes, ip6.AddrFromUint64(rng.Uint64(), rng.Uint64()))
		}
		for _, a := range probes {
			if f.IsAliased(a) != ref.IsAliased(a) {
				t.Fatalf("trial %d: IsAliased(%v) = %v, trie %v", trial, a, f.IsAliased(a), ref.IsAliased(a))
			}
		}

		got, want := f.AliasedPrefixes(), ref.AliasedPrefixes()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d aliased prefixes, trie %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: aliased prefix %d = %v, trie %v (walk order)", trial, i, got[i], want[i])
			}
		}

		cg, ag := f.Split(probes)
		cw, aw := ref.Split(probes)
		if len(cg) != len(cw) || len(ag) != len(aw) {
			t.Fatalf("trial %d: Split %d/%d, trie %d/%d", trial, len(cg), len(ag), len(cw), len(aw))
		}

		sorted := append([]ip6.Addr(nil), probes...)
		sortAddrs(sorted)
		wantBits := make([]bool, len(sorted))
		for i, a := range sorted {
			wantBits[i] = ref.IsAliased(a)
		}
		for _, workers := range []int{1, 4, 16} {
			bits := f.Classify(ip6.Addrs(sorted), workers)
			for i := range bits {
				if bits[i] != wantBits[i] {
					t.Fatalf("trial %d workers %d: Classify[%d] (%v) = %v, trie %v",
						trial, workers, i, sorted[i], bits[i], wantBits[i])
				}
			}
			clean, aliased, _ := f.SplitSorted(ip6.Addrs(sorted), workers)
			cr, ar := ref.Split(sorted)
			if !addrsEqual(clean, cr) || !addrsEqual(aliased, ar) {
				t.Fatalf("trial %d workers %d: SplitSorted differs from trie split", trial, workers)
			}
		}
	}
}

func sortAddrs(addrs []ip6.Addr) {
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
}

func addrsEqual(a, b []ip6.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomDays simulates an APD study's observation stream: per-day mask
// maps over a prefix pool, with narrowing-style absences.
func randomDays(rng *rand.Rand, prefixes []ip6.Prefix, days int) []map[ip6.Prefix]BranchMask {
	out := make([]map[ip6.Prefix]BranchMask, days)
	for d := range out {
		m := map[ip6.Prefix]BranchMask{}
		for _, p := range prefixes {
			if d > 0 && rng.Intn(3) == 0 {
				continue // narrowed out this day
			}
			mask := BranchMask(rng.Uint64())
			if rng.Intn(3) == 0 {
				mask = AllBranches
			}
			m[p] = mask
		}
		out[d] = m
	}
	return out
}

// TestHistoryMatchesMapReference pins the columnar history against the
// retired per-day map store: merged masks, the observed-prefix list, the
// Table 4 instability metric, and the (union-corrected) aliased sets.
func TestHistoryMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 10; trial++ {
		verdicts := randomVerdicts(rng, 1+rng.Intn(80))
		prefixes := make([]ip6.Prefix, 0, len(verdicts))
		for p := range verdicts {
			prefixes = append(prefixes, p)
		}
		days := randomDays(rng, prefixes, 2+rng.Intn(10))
		var h History
		var ref legacyHistory
		for _, d := range days {
			h.Add(d)
			ref.Add(d)
		}
		if h.Len() != ref.Len() {
			t.Fatalf("trial %d: Len %d vs %d", trial, h.Len(), ref.Len())
		}
		for w := 0; w <= 5; w++ {
			for di := -1; di <= len(days); di++ {
				for _, p := range prefixes {
					if got, want := h.MergedAt(p, di, w), ref.MergedAt(p, di, w); got != want {
						t.Fatalf("trial %d: MergedAt(%v,%d,%d) = %04x, legacy %04x", trial, p, di, w, got, want)
					}
				}
			}
			if got, want := h.UnstablePrefixes(w), ref.UnstablePrefixes(w); got != want {
				t.Fatalf("trial %d: UnstablePrefixes(%d) = %d, legacy %d", trial, w, got, want)
			}
			for di := 0; di < len(days); di++ {
				got := h.AliasedAt(di, w)
				want := ref.aliasedAtUnion(di, w)
				if len(got) != len(want) {
					t.Fatalf("trial %d: AliasedAt(%d,%d) size %d, union reference %d", trial, di, w, len(got), len(want))
				}
				for p := range want {
					if !got[p] {
						t.Fatalf("trial %d: AliasedAt(%d,%d) missing %v", trial, di, w, p)
					}
				}
			}
		}
		gp, wp := h.Prefixes(), ref.Prefixes()
		if len(gp) != len(wp) {
			t.Fatalf("trial %d: Prefixes %d vs %d", trial, len(gp), len(wp))
		}
		for i := range wp {
			if gp[i] != wp[i] {
				t.Fatalf("trial %d: Prefixes[%d] = %v, legacy %v", trial, i, gp[i], wp[i])
			}
		}
		// MergedColumn must agree with per-prefix MergedAt for any workers.
		for _, workers := range []int{1, 4, 16} {
			di := len(days) - 1
			col := h.MergedColumn(di, 3, workers)
			for _, p := range prefixes {
				id, ok := h.ids[p]
				if !ok {
					continue
				}
				if col[id] != ref.MergedAt(p, di, 3) {
					t.Fatalf("trial %d workers %d: MergedColumn[%v] = %04x, legacy %04x",
						trial, workers, p, col[id], ref.MergedAt(p, di, 3))
				}
			}
		}
	}
}

// TestAliasedAtNarrowedWindowUnion is the regression test for the
// AliasedAt bugfix: a prefix fully responsive earlier in the window but
// absent from day di's narrowed probe set must still be classified
// aliased; the retired implementation silently dropped it.
func TestAliasedAtNarrowedWindowUnion(t *testing.T) {
	p := ip6.MustParsePrefix("2001:db8::/64")
	q := ip6.MustParsePrefix("2001:db8:1::/64")
	day0 := map[ip6.Prefix]BranchMask{p: AllBranches, q: 0x1}
	day1 := map[ip6.Prefix]BranchMask{q: 0x2} // p narrowed out on day 1
	var h History
	h.Add(day0)
	h.Add(day1)
	al := h.AliasedAt(1, 2)
	if !al[p] {
		t.Error("prefix aliased within the window but absent from the narrowed day was dropped")
	}
	if al[q] {
		t.Error("q never reached all branches")
	}
	// A single-day window genuinely excludes the absent prefix.
	if len(h.AliasedAt(1, 1)) != 0 {
		t.Error("single-day window must not see day 0")
	}
	// The retired implementation exhibits the bug (the reason this test
	// exists): p vanishes from the day-1 aliased set.
	var ref legacyHistory
	ref.Add(day0)
	ref.Add(day1)
	if ref.legacyAliasedAt(1, 2)[p] {
		t.Error("legacy reference unexpectedly evaluates the window union")
	}
}

// TestCandidateTable pins ID assignment: first-occurrence order,
// duplicate prefixes sharing an ID, and the entry list surviving as the
// probe order.
func TestCandidateTable(t *testing.T) {
	p1 := ip6.MustParsePrefix("2001:db8::/64")
	p2 := ip6.MustParsePrefix("2001:db8:1::/64")
	p3 := ip6.MustParsePrefix("2001:db8::/48") // BGP-style duplicate region
	cands := []Candidate{{Prefix: p1, Targets: 150}, {Prefix: p2, Targets: 5}, {Prefix: p3}, {Prefix: p1}}
	tab := NewCandidateTable(cands)
	if tab.NumEntries() != 4 || tab.NumIDs() != 3 {
		t.Fatalf("entries=%d ids=%d, want 4/3", tab.NumEntries(), tab.NumIDs())
	}
	if tab.EntryID(0) != tab.EntryID(3) {
		t.Error("duplicate prefix entries must share an ID")
	}
	for i, want := range []ip6.Prefix{p1, p2, p3} {
		if tab.PrefixOf(int32(i)) != want {
			t.Errorf("PrefixOf(%d) = %v, want %v", i, tab.PrefixOf(int32(i)), want)
		}
		if id, ok := tab.ID(want); !ok || id != int32(i) {
			t.Errorf("ID(%v) = %d,%v", want, id, ok)
		}
	}
	if _, ok := tab.ID(ip6.MustParsePrefix("2001:db9::/64")); ok {
		t.Error("unknown prefix resolved")
	}
	if len(tab.Candidates()) != 4 || tab.Candidates()[0].Targets != 150 {
		t.Error("entry list mangled")
	}
}

// TestHistoryBindAddIDs pins the pipeline's columnar day path (Bind +
// AddIDs over narrowed ID subsets) against the map-based Add path.
func TestHistoryBindAddIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	verdicts := randomVerdicts(rng, 60)
	var cands []Candidate
	for p := range verdicts {
		cands = append(cands, Candidate{Prefix: p})
	}
	// Deterministic probe order, as HitlistCandidates provides.
	sortCandidates(cands)
	cands = append(cands, cands[0]) // duplicate entry, as BGP overlap would
	tab := NewCandidateTable(cands)

	var h History
	h.Bind(tab)
	var ref legacyHistory
	cur := make([]int, len(cands))
	for i := range cur {
		cur[i] = i
	}
	for d := 0; d < 6; d++ {
		ids := make([]int32, 0, len(cur))
		masks := make([]BranchMask, 0, len(cur))
		m := map[ip6.Prefix]BranchMask{}
		for _, ei := range cur {
			mask := BranchMask(rng.Uint64())
			ids = append(ids, tab.EntryID(ei))
			masks = append(masks, mask)
			m[cands[ei].Prefix] |= mask
		}
		h.AddIDs(ids, masks)
		ref.Add(m)
		// Narrow like the pipeline does.
		var next []int
		for _, ei := range cur {
			if rng.Intn(4) > 0 {
				next = append(next, ei)
			}
		}
		if len(next) > 0 {
			cur = next
		}
	}
	for di := 0; di < h.Len(); di++ {
		for _, c := range cands {
			for w := 1; w <= 3; w++ {
				if got, want := h.MergedAt(c.Prefix, di, w), ref.MergedAt(c.Prefix, di, w); got != want {
					t.Fatalf("MergedAt(%v,%d,%d) = %04x, map path %04x", c.Prefix, di, w, got, want)
				}
			}
		}
	}
	if got, want := h.UnstablePrefixes(2), ref.UnstablePrefixes(2); got != want {
		t.Fatalf("UnstablePrefixes = %d, map path %d", got, want)
	}
	// ORDayInto accumulates exactly the per-day OR.
	near := make([]BranchMask, tab.NumIDs())
	for di := 0; di < h.Len(); di++ {
		h.ORDayInto(di, near, 4)
	}
	for _, c := range cands {
		id, _ := tab.ID(c.Prefix)
		want := ref.MergedAt(c.Prefix, h.Len()-1, h.Len())
		if near[id] != want {
			t.Fatalf("near mask for %v = %04x, want %04x", c.Prefix, near[id], want)
		}
	}
}

func sortCandidates(cands []Candidate) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && ip6.ComparePrefix(cands[j].Prefix, cands[j-1].Prefix) < 0; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}
