package apd

import (
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
)

// Candidate is one prefix scheduled for alias detection.
type Candidate struct {
	Prefix ip6.Prefix
	// Targets is the number of hitlist addresses inside the prefix
	// (0 for BGP-derived candidates).
	Targets int
}

// HitlistCandidates maps hitlist addresses to all prefixes from /64 to
// /124 in 4-bit steps and returns those with more than minTargets
// addresses — except /64s, which are all kept ("so as to allow full
// analysis of all known /64 prefixes"). It consumes the ShardSet's cached
// sorted view: candidates are derived by CandidatesFromSorted's
// run-boundary scan, so no per-level prefix maps or address copies are
// ever materialized.
func HitlistCandidates(set *ip6.ShardSet, minTargets int) []Candidate {
	return CandidatesFromSorted(set.SortedSeq(), minTargets)
}

// HitlistCandidatesAddrs is HitlistCandidates over a plain address slice
// (Murdock comparisons, ad-hoc target lists); the slice is copied, sorted
// and fed through the same run-boundary scan. Duplicate addresses count
// once per occurrence, as in the original bucketing path.
func HitlistCandidatesAddrs(addrs []ip6.Addr, minTargets int) []Candidate {
	sorted := make([]ip6.Addr, len(addrs))
	copy(sorted, addrs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	return CandidatesFromSorted(ip6.Addrs(sorted), minTargets)
}

// CandidatesFromSorted derives the multi-level candidate set from an
// ascending address sequence. In sorted order every fixed-length prefix
// group is one contiguous run, so each depth level is a run-boundary scan
// (ip6.PrefixRuns, galloping run ends) refining only above-threshold runs
// through zero-copy ip6.SeqSlice views — the map-bucketing the old
// implementation paid per level survives only as a property-test
// reference. Per-depth runs arrive in ascending address order and depths
// are emitted shallow-to-deep, so the result is already in ComparePrefix
// order (length, then address) without a sort.
func CandidatesFromSorted(sorted ip6.AddrSeq, minTargets int) []Candidate {
	if minTargets <= 0 {
		minTargets = DefaultMinTargets
	}
	const levels = (124-64)/4 + 1
	var perDepth [levels][]Candidate
	var refine func(view ip6.AddrSeq, depth int)
	refine = func(view ip6.AddrSeq, depth int) {
		li := (depth - 64) / 4
		ip6.PrefixRuns(view, depth, func(p ip6.Prefix, lo, hi int) bool {
			n := hi - lo
			if depth > 64 && n <= minTargets {
				return true // below threshold, and /64s only are exempt
			}
			perDepth[li] = append(perDepth[li], Candidate{Prefix: p, Targets: n})
			if n > minTargets && depth < 124 {
				refine(ip6.SeqSlice(view, lo, hi), depth+4)
			}
			return true
		})
	}
	refine(sorted, 64)
	total := 0
	for _, l := range perDepth {
		total += len(l)
	}
	out := make([]Candidate, 0, total)
	for _, l := range perDepth {
		out = append(out, l...)
	}
	return out
}

// BGPCandidates returns every announced prefix as a candidate, probed
// as-is ("without enumerating additional prefixes").
func BGPCandidates(table *bgp.Table) []Candidate {
	anns := table.Announcements()
	out := make([]Candidate, len(anns))
	for i, a := range anns {
		out[i] = Candidate{Prefix: a.Prefix}
	}
	return out
}

// CandidateTable is the frozen candidate universe of an APD study: the
// day-0 candidate list in probe order, with every distinct prefix
// assigned a stable integer ID. The IDs index the columnar day history
// (History) and the pipeline's running near-aliased masks, so daily
// bookkeeping is array scans rather than per-prefix map probes. Entries
// may repeat a prefix (hitlist- and BGP-derived candidates are probed
// independently); such entries share one ID.
type CandidateTable struct {
	cands    []Candidate
	entryID  []int32
	prefixes []ip6.Prefix
	ids      map[ip6.Prefix]int32
}

// NewCandidateTable freezes a candidate list, assigning IDs in first-
// occurrence order (deterministic: the list order is the probe order).
func NewCandidateTable(cands []Candidate) *CandidateTable {
	t := &CandidateTable{
		cands:   cands,
		entryID: make([]int32, len(cands)),
		ids:     make(map[ip6.Prefix]int32, len(cands)),
	}
	for i, c := range cands {
		id, ok := t.ids[c.Prefix]
		if !ok {
			id = int32(len(t.prefixes))
			t.ids[c.Prefix] = id
			t.prefixes = append(t.prefixes, c.Prefix)
		}
		t.entryID[i] = id
	}
	return t
}

// Candidates returns the full entry list in probe order. Read-only.
func (t *CandidateTable) Candidates() []Candidate { return t.cands }

// NumEntries returns the number of candidate entries.
func (t *CandidateTable) NumEntries() int { return len(t.cands) }

// NumIDs returns the number of distinct prefixes (the ID space width).
func (t *CandidateTable) NumIDs() int { return len(t.prefixes) }

// EntryID returns the prefix ID of entry i.
func (t *CandidateTable) EntryID(i int) int32 { return t.entryID[i] }

// ID returns the ID of a prefix, or ok=false if it is not in the table.
func (t *CandidateTable) ID(p ip6.Prefix) (int32, bool) {
	id, ok := t.ids[p]
	return id, ok
}

// PrefixOf returns the prefix assigned the given ID.
func (t *CandidateTable) PrefixOf(id int32) ip6.Prefix { return t.prefixes[id] }
