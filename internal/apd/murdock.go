package apd

import (
	"math/rand"
	"sort"

	"expanse/internal/ip6"
	"expanse/internal/probe"
	"expanse/internal/wire"
)

// Murdock et al.'s aliased prefix detection (IMC 2017), the baseline of
// §5.5: map addresses to static /96 prefixes, send three probes to each
// of three random addresses per prefix, and classify the prefix as
// aliased when all three addresses reply.

// MurdockDetector runs the static-/96 baseline.
type MurdockDetector struct {
	scanner *probe.Scanner
	// ProbesSent counts probe packets for the bandwidth comparison.
	ProbesSent int
}

// NewMurdockDetector builds the baseline detector.
func NewMurdockDetector(r wire.Responder) *MurdockDetector {
	return &MurdockDetector{
		scanner: probe.New(r, probe.WithWorkers(8), probe.WithSeed(0x96)),
	}
}

// Candidates maps hitlist addresses to their static /96 prefixes.
func (d *MurdockDetector) Candidates(addrs []ip6.Addr) []ip6.Prefix {
	seen := map[ip6.Prefix]bool{}
	for _, a := range addrs {
		seen[ip6.PrefixFrom(a, 96)] = true
	}
	out := make([]ip6.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// Detect probes the /96 candidates on one day and returns the set
// classified aliased. Three random addresses per prefix, three probes
// each (TCP/80, as in the original tool), aliased when all three
// addresses answered at least once.
func (d *MurdockDetector) Detect(prefixes []ip6.Prefix, day int) map[ip6.Prefix]bool {
	const perPrefix = 3
	targets := make([]ip6.Addr, 0, len(prefixes)*perPrefix)
	for _, p := range prefixes {
		rng := rand.New(rand.NewSource(int64(p.Addr().Hi() ^ p.Addr().Lo() ^ 0x96)))
		for i := 0; i < perPrefix; i++ {
			targets = append(targets, p.RandomAddr(rng))
		}
	}
	answered := make([]bool, len(targets))
	for attempt := 0; attempt < 3; attempt++ {
		res := d.scanner.Scan(targets, wire.TCP80, day)
		d.ProbesSent += len(targets)
		for i, r := range res {
			if r.OK {
				answered[i] = true
			}
		}
	}
	out := make(map[ip6.Prefix]bool, len(prefixes))
	for pi, p := range prefixes {
		all := true
		for i := 0; i < perPrefix; i++ {
			if !answered[pi*perPrefix+i] {
				all = false
				break
			}
		}
		if all {
			out[p] = true
		}
	}
	return out
}

// MurdockFilter builds an LPM filter from the /96 verdicts (every /96 is
// the same length, so LPM degenerates to exact covering).
func MurdockFilter(aliased map[ip6.Prefix]bool) *Filter {
	return NewFilter(aliased)
}
