// Package apd implements the paper's multi-level aliased prefix detection
// (§5): probing 16 pseudo-random addresses per candidate prefix — one in
// each 4-bit subprefix (the "fan-out" of Table 3) — on ICMPv6 and TCP/80,
// classifying a prefix as aliased when all 16 respond, with cross-protocol
// response merging and a multi-day sliding window for loss resilience
// (§5.2), and a longest-prefix-match filter applied to the hitlist (§5.1).
//
// The static-/96 detection of Murdock et al., which the paper compares
// against in §5.5, is implemented in murdock.go.
package apd

import (
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/probe"
	"expanse/internal/wire"
)

// Branches is the fan-out width: one probe per 4-bit subprefix.
const Branches = 16

// DefaultMinTargets is the paper's candidate threshold: prefixes with
// more than 100 hitlist targets are probed (plus all /64s regardless).
const DefaultMinTargets = 100

// DefaultProtocols are the probe protocols of §5.1 (32 probes/prefix).
var DefaultProtocols = []wire.Proto{wire.ICMPv6, wire.TCP80}

// Candidate is one prefix scheduled for alias detection.
type Candidate struct {
	Prefix ip6.Prefix
	// Targets is the number of hitlist addresses inside the prefix
	// (0 for BGP-derived candidates).
	Targets int
}

// HitlistCandidates maps hitlist addresses to all prefixes from /64 to
// /124 in 4-bit steps and returns those with more than minTargets
// addresses — except /64s, which are all kept ("so as to allow full
// analysis of all known /64 prefixes"). Candidates are refined level by
// level, so only populated branches are expanded. The /64 level buckets
// the ShardSet's columnar shards directly — one goroutine per shard view,
// no flatten-copy or re-sharding of the hitlist.
func HitlistCandidates(set *ip6.ShardSet, minTargets int) []Candidate {
	views := set.ShardSeqs()
	shards := make([]ip6.AddrSeq, len(views))
	for i, v := range views {
		shards[i] = v
	}
	return candidatesFromShards(shards, minTargets)
}

// HitlistCandidatesAddrs is HitlistCandidates over a plain address slice
// (Murdock comparisons, ad-hoc target lists); the slice is cut into
// per-CPU chunks for the /64 level.
func HitlistCandidatesAddrs(addrs []ip6.Addr, minTargets int) []Candidate {
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(addrs) + workers - 1) / workers
	var shards []ip6.AddrSeq
	if chunk > 0 {
		for lo := 0; lo < len(addrs); lo += chunk {
			hi := lo + chunk
			if hi > len(addrs) {
				hi = len(addrs)
			}
			shards = append(shards, ip6.Addrs(addrs[lo:hi]))
		}
	}
	return candidatesFromShards(shards, minTargets)
}

func candidatesFromShards(shards []ip6.AddrSeq, minTargets int) []Candidate {
	if minTargets <= 0 {
		minTargets = DefaultMinTargets
	}
	// Level /64: bucket everything, sharded over the hitlist.
	level := bucketShards(shards, 64)
	var out []Candidate
	for p, list := range level {
		out = append(out, Candidate{Prefix: p, Targets: len(list)})
	}
	// Deeper levels: only prefixes that can still exceed the threshold.
	for depth := 68; depth <= 124; depth += 4 {
		var work []ip6.AddrSeq
		for _, list := range level {
			if len(list) > minTargets {
				work = append(work, ip6.Addrs(list))
			}
		}
		next := bucketShards(work, depth)
		for p, list := range next {
			if len(list) > minTargets {
				out = append(out, Candidate{Prefix: p, Targets: len(list)})
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		return ip6.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0
	})
	return out
}

// bucketShards buckets every address of every input shard by its
// enclosing prefix of the given length. Each shard is bucketed into a
// private map on its own goroutine; the shard maps are then merged in
// shard order, so the per-prefix counts and address lists are identical
// to a serial single-map pass.
func bucketShards(shards []ip6.AddrSeq, depth int) map[ip6.Prefix][]ip6.Addr {
	if len(shards) == 0 {
		return map[ip6.Prefix][]ip6.Addr{}
	}
	local := make([]map[ip6.Prefix][]ip6.Addr, len(shards))
	var wg sync.WaitGroup
	for si, shard := range shards {
		wg.Add(1)
		go func(si int, shard ip6.AddrSeq) {
			defer wg.Done()
			m := make(map[ip6.Prefix][]ip6.Addr)
			for i := 0; i < shard.Len(); i++ {
				a := shard.At(i)
				p := ip6.PrefixFrom(a, depth)
				m[p] = append(m[p], a)
			}
			local[si] = m
		}(si, shard)
	}
	wg.Wait()
	merged := local[0]
	for _, m := range local[1:] {
		for p, list := range m {
			merged[p] = append(merged[p], list...)
		}
	}
	return merged
}

// BGPCandidates returns every announced prefix as a candidate, probed
// as-is ("without enumerating additional prefixes").
func BGPCandidates(table *bgp.Table) []Candidate {
	anns := table.Announcements()
	out := make([]Candidate, len(anns))
	for i, a := range anns {
		out[i] = Candidate{Prefix: a.Prefix}
	}
	return out
}

// FanOut generates the 16 probe targets of a prefix: one pseudo-random
// address inside each of its 16 next-level subprefixes (Table 3). The
// addresses are deterministic per prefix, so the same targets are probed
// every day — the sliding window of §5.2 tracks per-address responses.
func FanOut(p ip6.Prefix) [Branches]ip6.Addr {
	var out [Branches]ip6.Addr
	sub := p.Bits() + 4
	if sub > 128 {
		sub = 128
	}
	rng := rand.New(rand.NewSource(fanSeed(p)))
	for i := 0; i < Branches; i++ {
		out[i] = p.Subprefix(sub, uint64(i)).RandomAddr(rng)
	}
	return out
}

// fanSeed derives the fan-out RNG seed from a prefix. Hi and Lo are mixed
// into the seed separately (splitmix64 finalizer between absorptions), so
// distinct prefixes whose Hi^Lo happen to collide at the same length
// still fan out to different targets — a plain XOR fold would probe the
// same pseudo-random addresses for both.
func fanSeed(p ip6.Prefix) int64 {
	h := fanMix(p.Addr().Hi() ^ 0x9e3779b97f4a7c15)
	h = fanMix(h ^ p.Addr().Lo())
	h = fanMix(h ^ uint64(p.Bits()))
	return int64(h)
}

// fanMix is the splitmix64 finalizer.
func fanMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BranchMask records which of the 16 fan-out branches responded (bit i =
// branch i).
type BranchMask uint16

// AllBranches is the fully-responsive mask — the aliased verdict.
const AllBranches BranchMask = 1<<Branches - 1

// Count returns the number of responding branches.
func (m BranchMask) Count() int { return bits.OnesCount16(uint16(m)) }

// Detector runs APD probing rounds. A Detector is not safe for
// concurrent ProbeDay calls (it accumulates ProbesSent and a fan-out
// cache); each call parallelizes internally across protocols × worker
// shards.
type Detector struct {
	scanner   *probe.Scanner
	protocols []wire.Proto
	workers   int
	// fanCache memoizes per-prefix fan-out targets: candidates are
	// re-probed daily with the same deterministic targets (§5.2), so the
	// 16 RNG draws per prefix are paid once, not once per day.
	fanCache map[ip6.Prefix][Branches]ip6.Addr
	// ProbesSent accumulates the number of probe packets sent, for the
	// bandwidth comparison of §5.5.
	ProbesSent int
}

// NewDetector builds a detector over a responder with the default worker
// count. Protocols defaults to ICMPv6+TCP/80.
func NewDetector(r wire.Responder, protocols ...wire.Proto) *Detector {
	return NewDetectorWorkers(r, 0, protocols...)
}

// NewDetectorWorkers builds a detector with an explicit per-protocol
// worker-shard count (<= 0 selects the default of 8). This is how the
// pipeline plumbs its configured concurrency through; NewDetector exists
// for callers that don't care.
func NewDetectorWorkers(r wire.Responder, workers int, protocols ...wire.Proto) *Detector {
	if len(protocols) == 0 {
		protocols = DefaultProtocols
	}
	if workers <= 0 {
		workers = 8
	}
	return &Detector{
		scanner:   probe.New(r, probe.WithWorkers(workers), probe.WithSeed(0xa9d)),
		protocols: protocols,
		workers:   workers,
	}
}

// Workers returns the configured per-protocol worker-shard count.
func (d *Detector) Workers() int { return d.workers }

// ProbeDay probes every candidate's fan-out targets on all protocols for
// one day and returns the per-prefix branch masks with cross-protocol
// merging already applied ("we treat an address as responsive even if it
// replies to only the ICMPv6 or the TCP/80 probe").
//
// All protocols are scanned concurrently (each scan fans out over worker
// shards), and the branch masks are merged by candidate shards into a
// flat per-candidate slice before the single map assembly — results are
// identical to the serial protocol-by-protocol merge.
func (d *Detector) ProbeDay(cands []Candidate, day int) map[ip6.Prefix]BranchMask {
	// Flatten: 16 targets per candidate, probe once per protocol.
	if d.fanCache == nil {
		d.fanCache = make(map[ip6.Prefix][Branches]ip6.Addr, len(cands))
	}
	targets := make([]ip6.Addr, 0, len(cands)*Branches)
	for _, c := range cands {
		fo, ok := d.fanCache[c.Prefix]
		if !ok {
			fo = FanOut(c.Prefix)
			d.fanCache[c.Prefix] = fo
		}
		targets = append(targets, fo[:]...)
	}

	results := make([][]probe.Result, len(d.protocols))
	var wg sync.WaitGroup
	for pi, proto := range d.protocols {
		wg.Add(1)
		go func(pi int, proto wire.Proto) {
			defer wg.Done()
			results[pi] = d.scanner.Scan(targets, proto, day)
		}(pi, proto)
	}
	wg.Wait()
	d.ProbesSent += len(d.protocols) * len(targets)

	// Sharded merge: each worker folds all protocols' responses for its
	// candidate range into the flat mask slice; the map is built once.
	flat := make([]BranchMask, len(cands))
	chunk := (len(cands) + d.workers - 1) / d.workers
	if chunk > 0 {
		for lo := 0; lo < len(cands); lo += chunk {
			hi := lo + chunk
			if hi > len(cands) {
				hi = len(cands)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for ci := lo; ci < hi; ci++ {
					var m BranchMask
					for _, res := range results {
						for b := 0; b < Branches; b++ {
							if res[ci*Branches+b].OK {
								m |= 1 << b
							}
						}
					}
					flat[ci] = m
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	masks := make(map[ip6.Prefix]BranchMask, len(cands))
	for ci, c := range cands {
		masks[c.Prefix] |= flat[ci]
	}
	return masks
}

// History accumulates daily branch masks for the sliding window.
type History struct {
	days []map[ip6.Prefix]BranchMask
}

// Add appends one day's observation.
func (h *History) Add(day map[ip6.Prefix]BranchMask) {
	h.days = append(h.days, day)
}

// Len returns the number of recorded days.
func (h *History) Len() int { return len(h.days) }

// MergedAt returns the branch mask of prefix p at day index di, OR-merged
// over a sliding window of `window` days TOTAL ending at di (window 1 =
// that day only; values below 1 are clamped to 1): a branch counts as
// responsive if its address answered any protocol on any day in the
// window (§5.2). The paper's 3-day window therefore merges exactly days
// di-2 .. di — an earlier version merged window+1 days, silently turning
// the §5.2 evaluation into a 4-day merge.
func (h *History) MergedAt(p ip6.Prefix, di, window int) BranchMask {
	if window < 1 {
		window = 1
	}
	var m BranchMask
	lo := di - window + 1
	if lo < 0 {
		lo = 0
	}
	for i := lo; i <= di && i < len(h.days); i++ {
		m |= h.days[i][p]
	}
	return m
}

// AliasedAt returns the set of prefixes classified aliased at day index
// di under the given sliding window.
func (h *History) AliasedAt(di, window int) map[ip6.Prefix]bool {
	out := make(map[ip6.Prefix]bool)
	if di >= len(h.days) || di < 0 {
		return out
	}
	for p := range h.days[di] {
		if h.MergedAt(p, di, window) == AllBranches {
			out[p] = true
		}
	}
	return out
}

// Prefixes returns every prefix ever observed.
func (h *History) Prefixes() []ip6.Prefix {
	seen := map[ip6.Prefix]bool{}
	for _, d := range h.days {
		for p := range d {
			seen[p] = true
		}
	}
	out := make([]ip6.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// UnstablePrefixes counts prefixes whose aliased classification changes
// across the recorded days when using the given sliding window — the
// metric of Table 4. Evaluation starts once the window is full, i.e. at
// day index window-1 (window < 1 is clamped to 1, a single-day window).
func (h *History) UnstablePrefixes(window int) int {
	if window < 1 {
		window = 1
	}
	start := window - 1
	unstable := 0
	for _, p := range h.Prefixes() {
		var prev, cur bool
		flips := 0
		for di := start; di < len(h.days); di++ {
			cur = h.MergedAt(p, di, window) == AllBranches
			if di > start && cur != prev {
				flips++
			}
			prev = cur
		}
		if flips > 0 {
			unstable++
		}
	}
	return unstable
}

// Filter is the longest-prefix-match alias filter of §5.1: it stores the
// verdict of every probed prefix and decides per address using the most
// closely covering probed prefix, so a non-aliased more-specific rescues
// its addresses from an aliased less-specific.
type Filter struct {
	trie ip6.Trie[bool]
}

// NewFilter builds a filter from per-prefix verdicts.
func NewFilter(verdicts map[ip6.Prefix]bool) *Filter {
	f := &Filter{}
	for p, aliased := range verdicts {
		f.trie.Insert(p, aliased)
	}
	return f
}

// IsAliased reports whether addr falls under an aliased prefix per the
// most specific probed verdict.
func (f *Filter) IsAliased(addr ip6.Addr) bool {
	_, aliased, ok := f.trie.Lookup(addr)
	return ok && aliased
}

// AliasedPrefixes returns the prefixes with aliased verdicts.
func (f *Filter) AliasedPrefixes() []ip6.Prefix {
	var out []ip6.Prefix
	f.trie.Walk(func(p ip6.Prefix, aliased bool) bool {
		if aliased {
			out = append(out, p)
		}
		return true
	})
	return out
}

// Split partitions addresses into non-aliased and aliased per the filter.
func (f *Filter) Split(addrs []ip6.Addr) (clean, aliased []ip6.Addr) {
	for _, a := range addrs {
		if f.IsAliased(a) {
			aliased = append(aliased, a)
		} else {
			clean = append(clean, a)
		}
	}
	return clean, aliased
}

// NestedCase classifies a (more specific, less specific) candidate pair
// per the four-case taxonomy of §5.1.
type NestedCase int

// The four §5.1 cases.
const (
	CaseBothAliased NestedCase = iota + 1
	CaseBothNonAliased
	CaseMoreAliasedLessNot
	CaseMoreNotLessAliased // the anomaly case
)

// CaseCounts tallies the §5.1 taxonomy over all nested candidate pairs
// (comparing each prefix against its closest probed ancestor).
func CaseCounts(verdicts map[ip6.Prefix]bool) map[NestedCase]int {
	var t ip6.Trie[bool]
	for p, v := range verdicts {
		t.Insert(p, v)
	}
	counts := map[NestedCase]int{}
	for p, more := range verdicts {
		if p.Bits() == 0 {
			continue
		}
		// Closest probed ancestor: LPM on the address with a shorter
		// maximum depth — walk the trie to bits-1 by looking up the
		// parent prefix levels.
		found := false
		var less bool
		for bits := p.Bits() - 1; bits >= 0 && !found; bits-- {
			if v, ok := t.Get(ip6.PrefixFrom(p.Addr(), bits)); ok {
				less, found = v, true
			}
		}
		if !found {
			continue
		}
		switch {
		case more && less:
			counts[CaseBothAliased]++
		case !more && !less:
			counts[CaseBothNonAliased]++
		case more && !less:
			counts[CaseMoreAliasedLessNot]++
		default:
			counts[CaseMoreNotLessAliased]++
		}
	}
	return counts
}
