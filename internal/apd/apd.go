// Package apd implements the paper's multi-level aliased prefix detection
// (§5): probing 16 pseudo-random addresses per candidate prefix — one in
// each 4-bit subprefix (the "fan-out" of Table 3) — on ICMPv6 and TCP/80,
// classifying a prefix as aliased when all 16 respond, with cross-protocol
// response merging and a multi-day sliding window for loss resilience
// (§5.2), and a longest-prefix-match filter applied to the hitlist (§5.1).
//
// The static-/96 detection of Murdock et al., which the paper compares
// against in §5.5, is implemented in murdock.go.
package apd

import (
	"math/rand"
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/probe"
	"expanse/internal/wire"
)

// Branches is the fan-out width: one probe per 4-bit subprefix.
const Branches = 16

// DefaultMinTargets is the paper's candidate threshold: prefixes with
// more than 100 hitlist targets are probed (plus all /64s regardless).
const DefaultMinTargets = 100

// DefaultProtocols are the probe protocols of §5.1 (32 probes/prefix).
var DefaultProtocols = []wire.Proto{wire.ICMPv6, wire.TCP80}

// Candidate is one prefix scheduled for alias detection.
type Candidate struct {
	Prefix ip6.Prefix
	// Targets is the number of hitlist addresses inside the prefix
	// (0 for BGP-derived candidates).
	Targets int
}

// HitlistCandidates maps hitlist addresses to all prefixes from /64 to
// /124 in 4-bit steps and returns those with more than minTargets
// addresses — except /64s, which are all kept ("so as to allow full
// analysis of all known /64 prefixes"). Candidates are refined level by
// level, so only populated branches are expanded.
func HitlistCandidates(addrs []ip6.Addr, minTargets int) []Candidate {
	if minTargets <= 0 {
		minTargets = DefaultMinTargets
	}
	// Level /64: bucket everything.
	level := make(map[ip6.Prefix][]ip6.Addr)
	for _, a := range addrs {
		p := ip6.PrefixFrom(a, 64)
		level[p] = append(level[p], a)
	}
	var out []Candidate
	for p, list := range level {
		out = append(out, Candidate{Prefix: p, Targets: len(list)})
	}
	// Deeper levels: only prefixes that can still exceed the threshold.
	for bits := 68; bits <= 124; bits += 4 {
		next := make(map[ip6.Prefix][]ip6.Addr)
		for _, list := range level {
			if len(list) <= minTargets {
				continue
			}
			for _, a := range list {
				p := ip6.PrefixFrom(a, bits)
				next[p] = append(next[p], a)
			}
		}
		for p, list := range next {
			if len(list) > minTargets {
				out = append(out, Candidate{Prefix: p, Targets: len(list)})
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		return ip6.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0
	})
	return out
}

// BGPCandidates returns every announced prefix as a candidate, probed
// as-is ("without enumerating additional prefixes").
func BGPCandidates(table *bgp.Table) []Candidate {
	anns := table.Announcements()
	out := make([]Candidate, len(anns))
	for i, a := range anns {
		out[i] = Candidate{Prefix: a.Prefix}
	}
	return out
}

// FanOut generates the 16 probe targets of a prefix: one pseudo-random
// address inside each of its 16 next-level subprefixes (Table 3). The
// addresses are deterministic per prefix, so the same targets are probed
// every day — the sliding window of §5.2 tracks per-address responses.
func FanOut(p ip6.Prefix) [Branches]ip6.Addr {
	var out [Branches]ip6.Addr
	sub := p.Bits() + 4
	if sub > 128 {
		sub = 128
	}
	seed := int64(p.Addr().Hi()^p.Addr().Lo()) ^ int64(p.Bits())<<56
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < Branches; i++ {
		out[i] = p.Subprefix(sub, uint64(i)).RandomAddr(rng)
	}
	return out
}

// BranchMask records which of the 16 fan-out branches responded (bit i =
// branch i).
type BranchMask uint16

// AllBranches is the fully-responsive mask — the aliased verdict.
const AllBranches BranchMask = 1<<Branches - 1

// Count returns the number of responding branches.
func (m BranchMask) Count() int {
	n := 0
	for i := 0; i < Branches; i++ {
		if m&(1<<i) != 0 {
			n++
		}
	}
	return n
}

// Detector runs APD probing rounds.
type Detector struct {
	scanner   *probe.Scanner
	protocols []wire.Proto
	// ProbesSent accumulates the number of probe packets sent, for the
	// bandwidth comparison of §5.5.
	ProbesSent int
}

// NewDetector builds a detector over a responder. Protocols defaults to
// ICMPv6+TCP/80.
func NewDetector(r wire.Responder, protocols ...wire.Proto) *Detector {
	if len(protocols) == 0 {
		protocols = DefaultProtocols
	}
	return &Detector{
		scanner:   probe.New(r, probe.WithWorkers(8), probe.WithSeed(0xa9d)),
		protocols: protocols,
	}
}

// ProbeDay probes every candidate's fan-out targets on all protocols for
// one day and returns the per-prefix branch masks with cross-protocol
// merging already applied ("we treat an address as responsive even if it
// replies to only the ICMPv6 or the TCP/80 probe").
func (d *Detector) ProbeDay(cands []Candidate, day int) map[ip6.Prefix]BranchMask {
	// Flatten: 16 targets per candidate, probe once per protocol.
	targets := make([]ip6.Addr, 0, len(cands)*Branches)
	for _, c := range cands {
		fo := FanOut(c.Prefix)
		targets = append(targets, fo[:]...)
	}
	masks := make(map[ip6.Prefix]BranchMask, len(cands))
	for _, proto := range d.protocols {
		res := d.scanner.Scan(targets, proto, day)
		d.ProbesSent += len(targets)
		for ci, c := range cands {
			m := masks[c.Prefix]
			for b := 0; b < Branches; b++ {
				if res[ci*Branches+b].OK {
					m |= 1 << b
				}
			}
			masks[c.Prefix] = m
		}
	}
	return masks
}

// History accumulates daily branch masks for the sliding window.
type History struct {
	days []map[ip6.Prefix]BranchMask
}

// Add appends one day's observation.
func (h *History) Add(day map[ip6.Prefix]BranchMask) {
	h.days = append(h.days, day)
}

// Len returns the number of recorded days.
func (h *History) Len() int { return len(h.days) }

// MergedAt returns the branch mask of prefix p at day index di, OR-merged
// over a sliding window of the previous `window` days (window 0 = that
// day only): a branch counts as responsive if its address answered any
// protocol on any day in the window (§5.2).
func (h *History) MergedAt(p ip6.Prefix, di, window int) BranchMask {
	var m BranchMask
	lo := di - window
	if lo < 0 {
		lo = 0
	}
	for i := lo; i <= di && i < len(h.days); i++ {
		m |= h.days[i][p]
	}
	return m
}

// AliasedAt returns the set of prefixes classified aliased at day index
// di under the given sliding window.
func (h *History) AliasedAt(di, window int) map[ip6.Prefix]bool {
	out := make(map[ip6.Prefix]bool)
	if di >= len(h.days) || di < 0 {
		return out
	}
	for p := range h.days[di] {
		if h.MergedAt(p, di, window) == AllBranches {
			out[p] = true
		}
	}
	return out
}

// Prefixes returns every prefix ever observed.
func (h *History) Prefixes() []ip6.Prefix {
	seen := map[ip6.Prefix]bool{}
	for _, d := range h.days {
		for p := range d {
			seen[p] = true
		}
	}
	out := make([]ip6.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return ip6.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// UnstablePrefixes counts prefixes whose aliased classification changes
// across the recorded days when using the given sliding window — the
// metric of Table 4. Evaluation starts once the window is full.
func (h *History) UnstablePrefixes(window int) int {
	unstable := 0
	for _, p := range h.Prefixes() {
		var prev, cur bool
		flips := 0
		for di := window; di < len(h.days); di++ {
			cur = h.MergedAt(p, di, window) == AllBranches
			if di > window && cur != prev {
				flips++
			}
			prev = cur
		}
		if flips > 0 {
			unstable++
		}
	}
	return unstable
}

// Filter is the longest-prefix-match alias filter of §5.1: it stores the
// verdict of every probed prefix and decides per address using the most
// closely covering probed prefix, so a non-aliased more-specific rescues
// its addresses from an aliased less-specific.
type Filter struct {
	trie ip6.Trie[bool]
}

// NewFilter builds a filter from per-prefix verdicts.
func NewFilter(verdicts map[ip6.Prefix]bool) *Filter {
	f := &Filter{}
	for p, aliased := range verdicts {
		f.trie.Insert(p, aliased)
	}
	return f
}

// IsAliased reports whether addr falls under an aliased prefix per the
// most specific probed verdict.
func (f *Filter) IsAliased(addr ip6.Addr) bool {
	_, aliased, ok := f.trie.Lookup(addr)
	return ok && aliased
}

// AliasedPrefixes returns the prefixes with aliased verdicts.
func (f *Filter) AliasedPrefixes() []ip6.Prefix {
	var out []ip6.Prefix
	f.trie.Walk(func(p ip6.Prefix, aliased bool) bool {
		if aliased {
			out = append(out, p)
		}
		return true
	})
	return out
}

// Split partitions addresses into non-aliased and aliased per the filter.
func (f *Filter) Split(addrs []ip6.Addr) (clean, aliased []ip6.Addr) {
	for _, a := range addrs {
		if f.IsAliased(a) {
			aliased = append(aliased, a)
		} else {
			clean = append(clean, a)
		}
	}
	return clean, aliased
}

// NestedCase classifies a (more specific, less specific) candidate pair
// per the four-case taxonomy of §5.1.
type NestedCase int

// The four §5.1 cases.
const (
	CaseBothAliased NestedCase = iota + 1
	CaseBothNonAliased
	CaseMoreAliasedLessNot
	CaseMoreNotLessAliased // the anomaly case
)

// CaseCounts tallies the §5.1 taxonomy over all nested candidate pairs
// (comparing each prefix against its closest probed ancestor).
func CaseCounts(verdicts map[ip6.Prefix]bool) map[NestedCase]int {
	var t ip6.Trie[bool]
	for p, v := range verdicts {
		t.Insert(p, v)
	}
	counts := map[NestedCase]int{}
	for p, more := range verdicts {
		if p.Bits() == 0 {
			continue
		}
		// Closest probed ancestor: LPM on the address with a shorter
		// maximum depth — walk the trie to bits-1 by looking up the
		// parent prefix levels.
		found := false
		var less bool
		for bits := p.Bits() - 1; bits >= 0 && !found; bits-- {
			if v, ok := t.Get(ip6.PrefixFrom(p.Addr(), bits)); ok {
				less, found = v, true
			}
		}
		if !found {
			continue
		}
		switch {
		case more && less:
			counts[CaseBothAliased]++
		case !more && !less:
			counts[CaseBothNonAliased]++
		case more && !less:
			counts[CaseMoreAliasedLessNot]++
		default:
			counts[CaseMoreNotLessAliased]++
		}
	}
	return counts
}
