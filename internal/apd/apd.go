// Package apd implements the paper's multi-level aliased prefix detection
// (§5): probing 16 pseudo-random addresses per candidate prefix — one in
// each 4-bit subprefix (the "fan-out" of Table 3) — on ICMPv6 and TCP/80,
// classifying a prefix as aliased when all 16 respond, with cross-protocol
// response merging and a multi-day sliding window for loss resilience
// (§5.2), and a longest-prefix-match filter applied to the hitlist (§5.1).
//
// The package is organized around the columnar alias plane:
// candidates.go derives the candidate set from the hitlist's cached
// sorted view by run-boundary scanning and freezes it into a
// CandidateTable with stable prefix IDs; history.go keeps the sliding-
// window observations as per-day mask columns indexed by those IDs;
// filter.go compiles the per-prefix verdicts into a sorted interval
// table merged linearly against sorted address streams. This file holds
// the probing machinery (fan-out, branch masks, the Detector) and the
// §5.1 nested-pair taxonomy.
//
// The static-/96 detection of Murdock et al., which the paper compares
// against in §5.5, is implemented in murdock.go.
package apd

import (
	"math/bits"
	"math/rand"
	"sync"

	"expanse/internal/ip6"
	"expanse/internal/probe"
	"expanse/internal/wire"
)

// Branches is the fan-out width: one probe per 4-bit subprefix.
const Branches = 16

// DefaultMinTargets is the paper's candidate threshold: prefixes with
// more than 100 hitlist targets are probed (plus all /64s regardless).
const DefaultMinTargets = 100

// DefaultProtocols are the probe protocols of §5.1 (32 probes/prefix).
var DefaultProtocols = []wire.Proto{wire.ICMPv6, wire.TCP80}

// FanOut generates the 16 probe targets of a prefix: one pseudo-random
// address inside each of its 16 next-level subprefixes (Table 3). The
// addresses are deterministic per prefix, so the same targets are probed
// every day — the sliding window of §5.2 tracks per-address responses.
func FanOut(p ip6.Prefix) [Branches]ip6.Addr {
	return fanOutWith(rand.New(rand.NewSource(fanSeed(p))), p)
}

// fanOutWith is FanOut over a caller-owned generator, reseeded in place.
// Seeding math/rand fills a 607-word state array; deriving millions of
// day-0 candidates through fresh sources churned gigabytes of garbage,
// while reseeding rewrites one array. Output is identical: a reseeded
// generator is state-for-state a freshly constructed one.
func fanOutWith(rng *rand.Rand, p ip6.Prefix) [Branches]ip6.Addr {
	rng.Seed(fanSeed(p))
	var out [Branches]ip6.Addr
	sub := p.Bits() + 4
	if sub > 128 {
		sub = 128
	}
	for i := 0; i < Branches; i++ {
		out[i] = p.Subprefix(sub, uint64(i)).RandomAddr(rng)
	}
	return out
}

// fanSeed derives the fan-out RNG seed from a prefix. Hi and Lo are mixed
// into the seed separately (splitmix64 finalizer between absorptions), so
// distinct prefixes whose Hi^Lo happen to collide at the same length
// still fan out to different targets — a plain XOR fold would probe the
// same pseudo-random addresses for both.
func fanSeed(p ip6.Prefix) int64 {
	h := fanMix(p.Addr().Hi() ^ 0x9e3779b97f4a7c15)
	h = fanMix(h ^ p.Addr().Lo())
	h = fanMix(h ^ uint64(p.Bits()))
	return int64(h)
}

// fanMix is the splitmix64 finalizer.
func fanMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BranchMask records which of the 16 fan-out branches responded (bit i =
// branch i).
type BranchMask uint16

// AllBranches is the fully-responsive mask — the aliased verdict.
const AllBranches BranchMask = 1<<Branches - 1

// Count returns the number of responding branches.
func (m BranchMask) Count() int { return bits.OnesCount16(uint16(m)) }

// Detector runs APD probing rounds. A Detector is not safe for
// concurrent ProbeDay calls (it accumulates ProbesSent and a fan-out
// cache); each call parallelizes internally across protocols × worker
// shards.
type Detector struct {
	scanner   *probe.Scanner
	protocols []wire.Proto
	workers   int
	// fanCache memoizes per-prefix fan-out targets: candidates are
	// re-probed daily with the same deterministic targets (§5.2), so the
	// 16 RNG draws per prefix are paid once, not once per day.
	fanCache map[ip6.Prefix][Branches]ip6.Addr
	// cols are the per-protocol mask-only result columns of ProbeDayFlat,
	// reused across probing days (an OK bit per fan-out target is all the
	// branch merge needs).
	cols []wire.ResultColumns
	// fanRNG is the reseeded-per-prefix generator behind fanCache fills;
	// targets is the flattened fan-out target scratch, reused across days
	// (day 0 sizes it at the full candidate set; narrowed days reslice).
	fanRNG  *rand.Rand
	targets []ip6.Addr
	// ProbesSent accumulates the number of probe packets sent, for the
	// bandwidth comparison of §5.5.
	ProbesSent int
}

// NewDetector builds a detector over a responder with the default worker
// count. Protocols defaults to ICMPv6+TCP/80.
func NewDetector(r wire.Responder, protocols ...wire.Proto) *Detector {
	return NewDetectorWorkers(r, 0, protocols...)
}

// NewDetectorWorkers builds a detector with an explicit per-protocol
// worker-shard count (<= 0 selects the default of 8). This is how the
// pipeline plumbs its configured concurrency through; NewDetector exists
// for callers that don't care.
func NewDetectorWorkers(r wire.Responder, workers int, protocols ...wire.Proto) *Detector {
	if len(protocols) == 0 {
		protocols = DefaultProtocols
	}
	if workers <= 0 {
		workers = 8
	}
	return &Detector{
		scanner:   probe.New(r, probe.WithWorkers(workers), probe.WithSeed(0xa9d)),
		protocols: protocols,
		workers:   workers,
	}
}

// Workers returns the configured per-protocol worker-shard count.
func (d *Detector) Workers() int { return d.workers }

// ProbeDayFlat probes every candidate's fan-out targets on all protocols
// for one day and returns the per-candidate branch masks in input order,
// with cross-protocol merging already applied ("we treat an address as
// responsive even if it replies to only the ICMPv6 or the TCP/80 probe").
// The flat slice is the columnar form the candidate table and day history
// consume directly; entries sharing a prefix get independent masks here
// and OR-merge at the history layer.
//
// Probing runs on the batched columnar path: each protocol's scan writes
// only an OK bitset (16 × candidates bits, reused across days), and a
// candidate's branch mask is its 16-bit window of that column ORed across
// protocols — no per-protocol []Result is materialized. Candidates arrive
// in ComparePrefix order and a prefix's 16 fan-out targets sit inside the
// prefix, so the batch responder resolves long runs of targets against one
// aliased region instead of walking a trie per probe. All protocols scan
// concurrently; the mask fold is sharded over candidates after the
// barrier. Results are identical to the per-probe protocol-by-protocol
// merge.
func (d *Detector) ProbeDayFlat(cands []Candidate, day int) []BranchMask {
	// Flatten: 16 targets per candidate, probe once per protocol.
	if d.fanCache == nil {
		d.fanCache = make(map[ip6.Prefix][Branches]ip6.Addr, len(cands))
		d.fanRNG = rand.New(rand.NewSource(0))
	}
	if want := len(cands) * Branches; cap(d.targets) < want {
		d.targets = make([]ip6.Addr, 0, want)
	}
	targets := d.targets[:0]
	for _, c := range cands {
		fo, ok := d.fanCache[c.Prefix]
		if !ok {
			fo = fanOutWith(d.fanRNG, c.Prefix)
			d.fanCache[c.Prefix] = fo
		}
		targets = append(targets, fo[:]...)
	}
	d.targets = targets

	if d.cols == nil {
		d.cols = make([]wire.ResultColumns, len(d.protocols))
	}
	var wg sync.WaitGroup
	for pi, proto := range d.protocols {
		wg.Add(1)
		go func(pi int, proto wire.Proto) {
			defer wg.Done()
			d.cols[pi].ResetOK(len(targets))
			d.scanner.ScanColumns(ip6.Addrs(targets), proto, day, &d.cols[pi])
		}(pi, proto)
	}
	wg.Wait()
	d.ProbesSent += len(d.protocols) * len(targets)

	// Sharded fold: each worker extracts its candidates' 16-bit branch
	// windows from the protocol bitsets.
	flat := make([]BranchMask, len(cands))
	chunk := (len(cands) + d.workers - 1) / d.workers
	if chunk > 0 {
		for lo := 0; lo < len(cands); lo += chunk {
			hi := lo + chunk
			if hi > len(cands) {
				hi = len(cands)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for ci := lo; ci < hi; ci++ {
					var m BranchMask
					for pi := range d.cols {
						m |= BranchMask(d.cols[pi].OK.Extract16(ci * Branches))
					}
					flat[ci] = m
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	return flat
}

// ProbeDay is ProbeDayFlat with the masks assembled into a per-prefix
// map, duplicate candidate prefixes OR-merged.
func (d *Detector) ProbeDay(cands []Candidate, day int) map[ip6.Prefix]BranchMask {
	flat := d.ProbeDayFlat(cands, day)
	masks := make(map[ip6.Prefix]BranchMask, len(cands))
	for ci, c := range cands {
		masks[c.Prefix] |= flat[ci]
	}
	return masks
}

// NestedCase classifies a (more specific, less specific) candidate pair
// per the four-case taxonomy of §5.1.
type NestedCase int

// The four §5.1 cases.
const (
	CaseBothAliased NestedCase = iota + 1
	CaseBothNonAliased
	CaseMoreAliasedLessNot
	CaseMoreNotLessAliased // the anomaly case
)

// CaseCounts tallies the §5.1 taxonomy over all nested candidate pairs,
// comparing each prefix against its closest probed ancestor — a single
// depth-capped LPM walk per prefix (Trie.LookupMax below the prefix's own
// length), not one exact-match probe per bit length.
func CaseCounts(verdicts map[ip6.Prefix]bool) map[NestedCase]int {
	var t ip6.Trie[bool]
	for p, v := range verdicts {
		t.Insert(p, v)
	}
	counts := map[NestedCase]int{}
	for p, more := range verdicts {
		if p.Bits() == 0 {
			continue
		}
		_, less, ok := t.LookupMax(p.Addr(), p.Bits()-1)
		if !ok {
			continue
		}
		switch {
		case more && less:
			counts[CaseBothAliased]++
		case !more && !less:
			counts[CaseBothNonAliased]++
		case more && !less:
			counts[CaseMoreAliasedLessNot]++
		default:
			counts[CaseMoreNotLessAliased]++
		}
	}
	return counts
}
