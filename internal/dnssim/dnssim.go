// Package dnssim is the DNS substrate of the simulation: forward zones
// whose AAAA records point at simulated hosts (including dynamic-DNS
// names that follow renumbering subscriber lines), visibility tags that
// model which collection channel can see a domain (zone files, CT logs,
// Rapid7 FDNS, AXFR, blacklists), and a reverse ip6.arpa tree with
// NXDOMAIN semantics for the rDNS walking study (§8).
package dnssim

import (
	"fmt"
	"strings"

	"expanse/internal/ip6"
	"expanse/internal/netsim"
)

// Vis is a bitmask of collection channels a domain is visible to.
type Vis uint8

// Visibility channels, mirroring the paper's sources (§3).
const (
	VisZoneFile  Vis = 1 << iota // zone files + toplists → the DL source
	VisCT                        // TLS certificate logged in CT
	VisFDNS                      // appears in Rapid7 FDNS ANY data
	VisAXFR                      // zone allows AXFR (TLDR-style transfer)
	VisBlacklist                 // listed by Spamhaus/APWG/Phishtank
)

// Has reports whether channel c is in the mask.
func (v Vis) Has(c Vis) bool { return v&c != 0 }

// Domain is one name with its resolution target.
type Domain struct {
	Name string
	Vis  Vis
	// Static is the fixed AAAA target (zero when Line is used).
	Static ip6.Addr
	// line, when non-nil, resolves dynamically per day.
	line *netsim.LineHost
}

// Resolve returns the domain's AAAA record on the given day.
func (d *Domain) Resolve(day int) ip6.Addr {
	if d.line != nil {
		return d.line.Addr(day)
	}
	return d.Static
}

// Dynamic reports whether the domain re-resolves over time.
func (d *Domain) Dynamic() bool { return d.line != nil }

// Server is the simulated DNS view of a world.
type Server struct {
	domains []Domain
	rtree   *RTree
}

// hashString is FNV-1a, for deterministic per-domain decisions.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func visFor(name string, class string) Vis {
	h := hashString(name)
	p := func(bit uint, prob float64) Vis {
		if float64(h>>(bit*8)&0xff)/256 < prob {
			return 1 << bit
		}
		return 0
	}
	switch class {
	case "farm": // hosted servers: zone files + CT dominate
		return p(0, 0.55) | p(1, 0.50) | p(2, 0.25) | p(3, 0.04) | p(4, 0.015)
	case "alias": // CDN customer names: CT-heavy (certificates per customer)
		return p(0, 0.40) | p(1, 0.75) | p(2, 0.10) | p(3, 0.01) | p(4, 0.02)
	case "nas": // dyndns self-hosting: FDNS ANY lookups see them
		return p(0, 0.10) | p(1, 0.06) | p(2, 0.80) | p(3, 0.02)
	case "stale":
		return p(0, 0.50) | p(1, 0.35) | p(2, 0.30) | p(3, 0.03) | p(4, 0.01)
	}
	return 0
}

// New builds the DNS view of a world: every domain-carrying host, alias
// record, stale record, and line-hosted NAS gets a name; the reverse tree
// covers the world's rDNS population.
func New(world *netsim.Internet) *Server {
	s := &Server{}

	for _, h := range world.Hosts() {
		if h.Domain == 0 {
			continue
		}
		name := fmt.Sprintf("host%d.as%d.example.", h.Domain, h.ASN)
		s.domains = append(s.domains, Domain{
			Name: name, Vis: visFor(name, "farm"), Static: h.Addr,
		})
	}
	for _, r := range world.AliasRecords() {
		name := fmt.Sprintf("cust%d.cdn%d.example.", r.Domain, r.ASN)
		s.domains = append(s.domains, Domain{
			Name: name, Vis: visFor(name, "alias"), Static: r.Addr,
		})
	}
	for _, r := range world.StaleRecords() {
		name := fmt.Sprintf("old%d.as%d.example.", r.Domain, r.ASN)
		s.domains = append(s.domains, Domain{
			Name: name, Vis: visFor(name, "stale"), Static: r.Addr,
		})
	}
	lines := world.LineHosts()
	for i := range lines {
		lh := lines[i]
		name := fmt.Sprintf("nas-%d.as%d.dyn-example.", lh.Line, lh.ASN)
		s.domains = append(s.domains, Domain{
			Name: name, Vis: visFor(name, "nas"), line: &lines[i],
		})
	}
	s.rtree = NewRTree(world.RDNSAddrs())
	return s
}

// Domains returns all domains (shared slice; callers must not modify).
func (s *Server) Domains() []Domain { return s.domains }

// Reverse returns the ip6.arpa tree.
func (s *Server) Reverse() *RTree { return s.rtree }

// ReverseName renders the ip6.arpa name of an address, e.g.
// "1.0.0.0.….8.b.d.0.1.0.0.2.ip6.arpa." — the walker's query format.
func ReverseName(a ip6.Addr) string {
	var b strings.Builder
	n := a.Nybbles()
	for i := 31; i >= 0; i-- {
		b.WriteByte(hexDigit(n[i]))
		b.WriteByte('.')
	}
	b.WriteString("ip6.arpa.")
	return b.String()
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

// RCode is a DNS response code subset for tree walking.
type RCode int

// Walk-relevant response codes: NXDOMAIN prunes a whole subtree, NOERROR
// (empty non-terminal) means descend, PTR is a terminal record.
const (
	NXDomain RCode = iota
	NoErrorEmpty
	HasPTR
)

// RTree is the ip6.arpa reverse tree: a nybble trie addressed by
// REVERSED nybble paths, exactly as DNS names under ip6.arpa are formed.
type RTree struct {
	root    *rnode
	queries int
}

type rnode struct {
	children [16]*rnode
	ptr      bool
}

// NewRTree indexes the given addresses.
func NewRTree(addrs []ip6.Addr) *RTree {
	t := &RTree{root: &rnode{}}
	for _, a := range addrs {
		n := t.root
		nyb := a.Nybbles()
		for i := 0; i < 32; i++ {
			d := nyb[i] // MSB-first in the trie; reversal happens in naming
			if n.children[d] == nil {
				n.children[d] = &rnode{}
			}
			n = n.children[d]
		}
		n.ptr = true
	}
	return t
}

// Query resolves a partial path of nybbles (MSB-first, up to 32 deep) and
// returns the walking-relevant rcode. Every call counts one DNS query —
// the §8 "strain on infrastructure" metric.
func (t *RTree) Query(path []byte) RCode {
	t.queries++
	n := t.root
	for _, d := range path {
		if d > 15 {
			return NXDomain
		}
		n = n.children[d]
		if n == nil {
			return NXDomain
		}
	}
	if len(path) == 32 {
		if n.ptr {
			return HasPTR
		}
		return NXDomain
	}
	return NoErrorEmpty
}

// Queries returns the number of queries served so far.
func (t *RTree) Queries() int { return t.queries }

// ResetQueries zeroes the query counter.
func (t *RTree) ResetQueries() { t.queries = 0 }
