package dnssim

import (
	"strings"
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
)

func testWorld() *netsim.Internet {
	return netsim.New(netsim.Config{
		Seed:      42,
		Registry:  bgp.RegistryConfig{ASes: 250, PrefixesPerAS: 3.5, Seed: 7},
		Scale:     0.08,
		EpochDays: 7,
		Epochs:    6,
	})
}

var world = testWorld()
var server = New(world)

func TestDomainsBuilt(t *testing.T) {
	doms := server.Domains()
	if len(doms) == 0 {
		t.Fatal("no domains")
	}
	classes := map[string]int{}
	for _, d := range doms {
		switch {
		case strings.HasPrefix(d.Name, "host"):
			classes["farm"]++
		case strings.HasPrefix(d.Name, "cust"):
			classes["alias"]++
		case strings.HasPrefix(d.Name, "old"):
			classes["stale"]++
		case strings.HasPrefix(d.Name, "nas-"):
			classes["nas"]++
		}
	}
	for _, c := range []string{"farm", "alias", "stale", "nas"} {
		if classes[c] == 0 {
			t.Errorf("no %s domains", c)
		}
	}
}

func TestStaticResolution(t *testing.T) {
	for _, d := range server.Domains() {
		if d.Dynamic() {
			continue
		}
		if d.Resolve(0) != d.Resolve(30) {
			t.Fatalf("static domain %s changed resolution", d.Name)
		}
		if d.Resolve(0).IsZero() {
			t.Fatalf("static domain %s resolves to ::", d.Name)
		}
		return
	}
	t.Fatal("no static domains")
}

func TestDynamicResolutionFollowsRotation(t *testing.T) {
	changed := false
	for _, d := range server.Domains() {
		if !d.Dynamic() {
			continue
		}
		if d.Resolve(0) != d.Resolve(45) {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("no dynamic domain ever changed address over 45 days")
	}
}

func TestVisibilityChannels(t *testing.T) {
	counts := map[Vis]int{}
	for _, d := range server.Domains() {
		for _, v := range []Vis{VisZoneFile, VisCT, VisFDNS, VisAXFR, VisBlacklist} {
			if d.Vis.Has(v) {
				counts[v]++
			}
		}
	}
	for _, v := range []Vis{VisZoneFile, VisCT, VisFDNS, VisAXFR, VisBlacklist} {
		if counts[v] == 0 {
			t.Errorf("no domains visible to channel %b", v)
		}
	}
	// NAS (dyndns) domains should be FDNS-dominated.
	nasFDNS, nasTotal := 0, 0
	for _, d := range server.Domains() {
		if strings.HasPrefix(d.Name, "nas-") {
			nasTotal++
			if d.Vis.Has(VisFDNS) {
				nasFDNS++
			}
		}
	}
	if nasTotal > 20 && float64(nasFDNS)/float64(nasTotal) < 0.5 {
		t.Errorf("NAS FDNS share = %d/%d, want dominant", nasFDNS, nasTotal)
	}
}

func TestReverseName(t *testing.T) {
	a := ip6.MustParseAddr("2001:db8::1")
	got := ReverseName(a)
	want := "1.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6.arpa."
	if got != want {
		t.Errorf("ReverseName = %q, want %q", got, want)
	}
}

func TestRTreeQueries(t *testing.T) {
	addrs := []ip6.Addr{
		ip6.MustParseAddr("2001:db8::1"),
		ip6.MustParseAddr("2001:db8::2"),
		ip6.MustParseAddr("2001:dead:beef::5"),
	}
	tr := NewRTree(addrs)
	// Root is an empty non-terminal.
	if rc := tr.Query(nil); rc != NoErrorEmpty {
		t.Errorf("root rcode = %v", rc)
	}
	// The 2001: branch exists.
	if rc := tr.Query([]byte{2, 0, 0, 1}); rc != NoErrorEmpty {
		t.Errorf("2001 branch rcode = %v", rc)
	}
	// A dead branch is NXDOMAIN.
	if rc := tr.Query([]byte{3}); rc != NXDomain {
		t.Errorf("dead branch rcode = %v", rc)
	}
	// Full paths hit PTRs.
	full := addrs[0].Nybbles()
	if rc := tr.Query(full[:]); rc != HasPTR {
		t.Errorf("full path rcode = %v", rc)
	}
	// Full path without PTR is NXDOMAIN.
	other := ip6.MustParseAddr("2001:db8::3").Nybbles()
	if rc := tr.Query(other[:]); rc != NXDomain {
		t.Errorf("missing PTR rcode = %v", rc)
	}
	// Invalid digit.
	if rc := tr.Query([]byte{99}); rc != NXDomain {
		t.Errorf("invalid digit rcode = %v", rc)
	}
	if tr.Queries() != 6 {
		t.Errorf("query count = %d", tr.Queries())
	}
	tr.ResetQueries()
	if tr.Queries() != 0 {
		t.Error("reset failed")
	}
}

func TestRTreeWorldPopulation(t *testing.T) {
	tr := server.Reverse()
	// Every world rDNS address must be reachable.
	for i, a := range world.RDNSAddrs() {
		if i >= 50 {
			break
		}
		n := a.Nybbles()
		if rc := tr.Query(n[:]); rc != HasPTR {
			t.Fatalf("rDNS address %v not in tree", a)
		}
	}
}

func TestVisDeterministic(t *testing.T) {
	if visFor("host1.as5.example.", "farm") != visFor("host1.as5.example.", "farm") {
		t.Error("visibility not deterministic")
	}
}
