// Package sources implements the seven hitlist collectors of §3 — domain
// lists (DL), Rapid7 forward DNS (FDNS), Certificate Transparency (CT),
// zone transfers (AXFR), Bitnodes (BIT), RIPE Atlas (RA), and scamper
// traceroutes — plus the accumulating hitlist store with per-epoch runup
// tracking (Figure 1a) and per-source statistics (Table 2).
package sources

import (
	"sort"

	"expanse/internal/bgp"
	"expanse/internal/dnssim"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
)

// Canonical source names, in the paper's table order.
const (
	DL      = "Domainlists"
	FDNS    = "FDNS"
	CT      = "CT"
	AXFR    = "AXFR"
	BIT     = "Bitnodes"
	RA      = "RIPE Atlas"
	Scamper = "Scamper"
)

// Names lists all sources in display order.
var Names = []string{DL, FDNS, CT, AXFR, BIT, RA, Scamper}

// Source produces addresses on collection days.
type Source interface {
	Name() string
	// Collect returns the addresses visible to this source on the given
	// day. hitlist is the current accumulated hitlist (used by scamper,
	// which traceroutes all known targets).
	Collect(day int, hitlist *ip6.Set) []ip6.Addr
}

func hashStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// firstEpoch deterministically assigns the collection epoch at which a
// name becomes visible to a source — this produces the cumulative runup
// of Figure 1a.
func firstEpoch(key string, salt string, epochs int) int {
	if epochs <= 1 {
		return 0
	}
	return int(hashStr(key+"|"+salt) % uint64(epochs))
}

// dnsSource is a generic forward-DNS-based collector.
type dnsSource struct {
	name    string
	domains []dnssim.Domain
	epochs  int
	perDay  int
}

func (s *dnsSource) Name() string { return s.name }

func (s *dnsSource) Collect(day int, _ *ip6.Set) []ip6.Addr {
	epoch := day / s.perDay
	var out []ip6.Addr
	for i := range s.domains {
		d := &s.domains[i]
		if firstEpoch(d.Name, s.name, s.epochs) > epoch {
			continue
		}
		out = append(out, d.Resolve(day))
	}
	return out
}

// NewDL builds the domain-lists source: zone files, toplists, blacklists.
func NewDL(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(DL, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisZoneFile) || d.Vis.Has(dnssim.VisBlacklist)
	})
}

// NewFDNS builds the Rapid7 forward-DNS ANY source.
func NewFDNS(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(FDNS, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisFDNS)
	})
}

// NewCT builds the Certificate Transparency source. Per the paper, names
// already covered by the domain lists are excluded.
func NewCT(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(CT, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisCT) && !d.Vis.Has(dnssim.VisZoneFile)
	})
}

// NewAXFR builds the zone-transfer source (TLDR-style).
func NewAXFR(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(AXFR, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisAXFR)
	})
}

func newDNSSource(name string, dns *dnssim.Server, cfg netsim.Config, keep func(*dnssim.Domain) bool) Source {
	s := &dnsSource{name: name, epochs: cfg.Epochs, perDay: cfg.EpochDays}
	for _, d := range dns.Domains() {
		if keep(&d) {
			s.domains = append(s.domains, d)
		}
	}
	return s
}

// bitnodesSource returns current Bitcoin peers (client addresses).
type bitnodesSource struct {
	hosts  []netsim.Host
	epochs int
	perDay int
}

// NewBitnodes builds the Bitnodes API source.
func NewBitnodes(world *netsim.Internet) Source {
	cfg := world.Config()
	return &bitnodesSource{
		hosts:  world.Hosts(netsim.ClassBitnode),
		epochs: cfg.Epochs,
		perDay: cfg.EpochDays,
	}
}

func (s *bitnodesSource) Name() string { return BIT }

func (s *bitnodesSource) Collect(day int, _ *ip6.Set) []ip6.Addr {
	epoch := day / s.perDay
	var out []ip6.Addr
	for _, h := range s.hosts {
		if firstEpoch(h.Addr.String(), BIT, s.epochs) > epoch {
			continue
		}
		// The API only lists currently connected peers.
		if h.DeathDay >= 0 && day >= int(h.DeathDay) {
			continue
		}
		out = append(out, h.Addr)
	}
	return out
}

// atlasSource returns RIPE Atlas probe addresses and ipmap data.
type atlasSource struct {
	hosts  []netsim.Host
	epochs int
	perDay int
}

// NewAtlas builds the RIPE Atlas source (probes + traceroute/ipmap data).
func NewAtlas(world *netsim.Internet) Source {
	cfg := world.Config()
	hosts := world.Hosts(netsim.ClassAtlas)
	// Atlas's built-in traceroutes also surface some core routers.
	routers := world.Hosts(netsim.ClassRouter)
	for _, r := range routers {
		if hashStr(r.Addr.String())%10 < 3 {
			hosts = append(hosts, r)
		}
	}
	return &atlasSource{hosts: hosts, epochs: cfg.Epochs, perDay: cfg.EpochDays}
}

func (s *atlasSource) Name() string { return RA }

func (s *atlasSource) Collect(day int, _ *ip6.Set) []ip6.Addr {
	epoch := day / s.perDay
	var out []ip6.Addr
	for _, h := range s.hosts {
		if firstEpoch(h.Addr.String(), RA, s.epochs) <= epoch {
			out = append(out, h.Addr)
		}
	}
	return out
}

// scamperSource traceroutes all known targets and harvests router hops.
type scamperSource struct {
	world *netsim.Internet
}

// NewScamper builds the traceroute source.
func NewScamper(world *netsim.Internet) Source {
	return &scamperSource{world: world}
}

func (s *scamperSource) Name() string { return Scamper }

func (s *scamperSource) Collect(day int, hitlist *ip6.Set) []ip6.Addr {
	if hitlist == nil {
		return nil
	}
	seen := ip6.NewSet(1024)
	hitlist.Each(func(a ip6.Addr) bool {
		// The paper traceroutes every known address daily. Paths into
		// datacenter space repeat the same few transit/core hops for
		// thousands of targets, so tracing a deterministic 1-in-16
		// sample there loses no router addresses in practice; subscriber
		// space is always traced in full because each target can reveal
		// a distinct CPE hop (performance substitution, see DESIGN.md).
		if !s.world.InSubscriberSpace(a) && hashStr(a.String())%16 != 0 {
			return true
		}
		for _, hop := range s.world.TraceroutePath(a, day) {
			seen.Add(hop.Addr)
		}
		return true
	})
	return seen.Sorted()
}

// Store accumulates source output over collection epochs: addresses stay
// on the hitlist indefinitely (§3: "IP addresses will stay indefinitely
// in our scanning list").
type Store struct {
	sources []Source
	perSrc  map[string]*ip6.Set // all addresses a source ever produced
	newSrc  map[string]*ip6.Set // addresses first contributed by a source
	all     *ip6.Set
	runup   []RunupPoint
}

// RunupPoint is one epoch snapshot of cumulative source sizes (Fig. 1a).
type RunupPoint struct {
	Day        int
	Cumulative map[string]int // per source: len(perSrc)
	Total      int
}

// NewStore creates a store over the given sources (order = priority for
// "new address" attribution, mirroring Table 2's source order).
func NewStore(srcs ...Source) *Store {
	st := &Store{
		sources: srcs,
		perSrc:  map[string]*ip6.Set{},
		newSrc:  map[string]*ip6.Set{},
		all:     ip6.NewSet(4096),
	}
	for _, s := range srcs {
		st.perSrc[s.Name()] = ip6.NewSet(1024)
		st.newSrc[s.Name()] = ip6.NewSet(1024)
	}
	return st
}

// CollectDay runs every source for one collection day and accumulates.
func (st *Store) CollectDay(day int) {
	for _, s := range st.sources {
		addrs := s.Collect(day, st.all)
		per := st.perSrc[s.Name()]
		nw := st.newSrc[s.Name()]
		for _, a := range addrs {
			per.Add(a)
			if st.all.Add(a) {
				nw.Add(a)
			}
		}
	}
	pt := RunupPoint{Day: day, Cumulative: map[string]int{}, Total: st.all.Len()}
	for name, set := range st.perSrc {
		pt.Cumulative[name] = set.Len()
	}
	st.runup = append(st.runup, pt)
}

// All returns the accumulated hitlist.
func (st *Store) All() *ip6.Set { return st.all }

// PerSource returns a source's accumulated address set.
func (st *Store) PerSource(name string) *ip6.Set { return st.perSrc[name] }

// NewPerSource returns the addresses first contributed by the source.
func (st *Store) NewPerSource(name string) *ip6.Set { return st.newSrc[name] }

// Runup returns the epoch snapshots.
func (st *Store) Runup() []RunupPoint { return st.runup }

// SourceStat is one row of Table 2.
type SourceStat struct {
	Name     string
	IPs      int
	NewIPs   int
	ASes     int
	Prefixes int
	// TopAS are the top-3 AS shares of the source's addresses.
	TopAS []ASShare
}

// ASShare is an AS with its share of a source's addresses.
type ASShare struct {
	ASN   bgp.ASN
	Name  string
	Share float64
}

// Stats computes Table 2 for the current store contents.
func (st *Store) Stats(table *bgp.Table) []SourceStat {
	var out []SourceStat
	for _, s := range st.sources {
		set := st.perSrc[s.Name()]
		stat := SourceStat{
			Name:   s.Name(),
			IPs:    set.Len(),
			NewIPs: st.newSrc[s.Name()].Len(),
		}
		asCount := map[bgp.ASN]int{}
		pfxCount := map[ip6.Prefix]int{}
		set.Each(func(a ip6.Addr) bool {
			if p, asn, ok := table.Lookup(a); ok {
				asCount[asn]++
				pfxCount[p]++
			}
			return true
		})
		stat.ASes = len(asCount)
		stat.Prefixes = len(pfxCount)
		stat.TopAS = topShares(asCount, table, 3, set.Len())
		out = append(out, stat)
	}
	return out
}

// TotalStat computes the "Total" row of Table 2.
func (st *Store) TotalStat(table *bgp.Table) SourceStat {
	stat := SourceStat{Name: "Total", IPs: st.all.Len(), NewIPs: st.all.Len()}
	asCount := map[bgp.ASN]int{}
	pfxCount := map[ip6.Prefix]int{}
	st.all.Each(func(a ip6.Addr) bool {
		if p, asn, ok := table.Lookup(a); ok {
			asCount[asn]++
			pfxCount[p]++
		}
		return true
	})
	stat.ASes = len(asCount)
	stat.Prefixes = len(pfxCount)
	stat.TopAS = topShares(asCount, table, 3, st.all.Len())
	return stat
}

func topShares(counts map[bgp.ASN]int, table *bgp.Table, n, total int) []ASShare {
	type kv struct {
		asn bgp.ASN
		c   int
	}
	var all []kv
	for a, c := range counts {
		all = append(all, kv{a, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].asn < all[j].asn
	})
	if len(all) > n {
		all = all[:n]
	}
	var out []ASShare
	for _, e := range all {
		out = append(out, ASShare{
			ASN:   e.asn,
			Name:  table.AS(e.asn).Name,
			Share: float64(e.c) / float64(total),
		})
	}
	return out
}
