// Package sources implements the seven hitlist collectors of §3 — domain
// lists (DL), Rapid7 forward DNS (FDNS), Certificate Transparency (CT),
// zone transfers (AXFR), Bitnodes (BIT), RIPE Atlas (RA), and scamper
// traceroutes — plus the accumulating hitlist store with per-epoch runup
// tracking (Figure 1a) and per-source statistics (Table 2).
package sources

import (
	"runtime"
	"sort"
	"sync"

	"expanse/internal/bgp"
	"expanse/internal/dnssim"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
)

// Canonical source names, in the paper's table order.
const (
	DL      = "Domainlists"
	FDNS    = "FDNS"
	CT      = "CT"
	AXFR    = "AXFR"
	BIT     = "Bitnodes"
	RA      = "RIPE Atlas"
	Scamper = "Scamper"
)

// Names lists all sources in display order.
var Names = []string{DL, FDNS, CT, AXFR, BIT, RA, Scamper}

// Source produces addresses on collection days.
type Source interface {
	Name() string
	// Collect returns the addresses visible to this source on the given
	// day. hitlist is the current accumulated hitlist (used by scamper,
	// which traceroutes all known targets).
	Collect(day int, hitlist *ip6.ShardSet) []ip6.Addr
}

func hashStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// firstEpoch deterministically assigns the collection epoch at which a
// name becomes visible to a source — this produces the cumulative runup
// of Figure 1a.
func firstEpoch(key string, salt string, epochs int) int {
	if epochs <= 1 {
		return 0
	}
	return int(hashStr(key+"|"+salt) % uint64(epochs))
}

// addrEpoch is firstEpoch for address-keyed sources. It draws from
// Addr.Hash64 mixed with the salt hash instead of formatting the address
// to text — hashStr(a.String()) cost an allocation plus an RFC 5952
// format per address per collection day on the Bitnodes/Atlas/scamper
// hot paths. The XOR is re-finalized through mix64: several consumers
// reduce the same Hash64 by small moduli (the Atlas router filter, this
// epoch draw), and without the extra mix those draws share parity and
// correlate instead of being independent.
func addrEpoch(a ip6.Addr, salt string, epochs int) int {
	if epochs <= 1 {
		return 0
	}
	return int(mix64(a.Hash64()^hashStr(salt)) % uint64(epochs))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// dnsSource is a generic forward-DNS-based collector.
type dnsSource struct {
	name    string
	domains []dnssim.Domain
	epochs  []int // firstEpoch per domain, precomputed at construction
	perDay  int
}

func (s *dnsSource) Name() string { return s.name }

func (s *dnsSource) Collect(day int, _ *ip6.ShardSet) []ip6.Addr {
	epoch := day / s.perDay
	var out []ip6.Addr
	for i := range s.domains {
		if s.epochs[i] > epoch {
			continue
		}
		out = append(out, s.domains[i].Resolve(day))
	}
	return out
}

// NewDL builds the domain-lists source: zone files, toplists, blacklists.
func NewDL(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(DL, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisZoneFile) || d.Vis.Has(dnssim.VisBlacklist)
	})
}

// NewFDNS builds the Rapid7 forward-DNS ANY source.
func NewFDNS(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(FDNS, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisFDNS)
	})
}

// NewCT builds the Certificate Transparency source. Per the paper, names
// already covered by the domain lists are excluded.
func NewCT(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(CT, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisCT) && !d.Vis.Has(dnssim.VisZoneFile)
	})
}

// NewAXFR builds the zone-transfer source (TLDR-style).
func NewAXFR(dns *dnssim.Server, cfg netsim.Config) Source {
	return newDNSSource(AXFR, dns, cfg, func(d *dnssim.Domain) bool {
		return d.Vis.Has(dnssim.VisAXFR)
	})
}

func newDNSSource(name string, dns *dnssim.Server, cfg netsim.Config, keep func(*dnssim.Domain) bool) Source {
	s := &dnsSource{name: name, perDay: cfg.EpochDays}
	for _, d := range dns.Domains() {
		if keep(&d) {
			s.domains = append(s.domains, d)
			s.epochs = append(s.epochs, firstEpoch(d.Name, name, cfg.Epochs))
		}
	}
	return s
}

// bitnodesSource returns current Bitcoin peers (client addresses). It
// keeps parallel columns of just the two host fields Collect reads —
// address and death day — instead of retaining full Host records for the
// world's lifetime.
type bitnodesSource struct {
	addrs  []ip6.Addr
	death  []int16 // DeathDay per peer (-1: beyond horizon)
	epochs []int16 // firstEpoch per peer, precomputed at construction
	perDay int
}

// NewBitnodes builds the Bitnodes API source.
func NewBitnodes(world *netsim.Internet) Source {
	cfg := world.Config()
	hosts := world.Hosts(netsim.ClassBitnode)
	s := &bitnodesSource{
		addrs:  make([]ip6.Addr, 0, len(hosts)),
		death:  make([]int16, 0, len(hosts)),
		epochs: make([]int16, 0, len(hosts)),
		perDay: cfg.EpochDays,
	}
	for _, h := range hosts {
		s.addrs = append(s.addrs, h.Addr)
		s.death = append(s.death, h.DeathDay)
		s.epochs = append(s.epochs, int16(addrEpoch(h.Addr, BIT, cfg.Epochs)))
	}
	return s
}

func (s *bitnodesSource) Name() string { return BIT }

func (s *bitnodesSource) Collect(day int, _ *ip6.ShardSet) []ip6.Addr {
	epoch := int16(day / s.perDay)
	var out []ip6.Addr
	for i, a := range s.addrs {
		if s.epochs[i] > epoch {
			continue
		}
		// The API only lists currently connected peers.
		if s.death[i] >= 0 && day >= int(s.death[i]) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// atlasSource returns RIPE Atlas probe addresses and ipmap data. Like
// bitnodesSource it retains only the address column.
type atlasSource struct {
	addrs  []ip6.Addr
	epochs []int16 // firstEpoch per address, precomputed at construction
	perDay int
}

// NewAtlas builds the RIPE Atlas source (probes + traceroute/ipmap data).
func NewAtlas(world *netsim.Internet) Source {
	cfg := world.Config()
	hosts := world.Hosts(netsim.ClassAtlas)
	// Atlas's built-in traceroutes also surface some core routers.
	routers := world.Hosts(netsim.ClassRouter)
	for _, r := range routers {
		if r.Addr.Hash64()%10 < 3 {
			hosts = append(hosts, r)
		}
	}
	s := &atlasSource{
		addrs:  make([]ip6.Addr, 0, len(hosts)),
		epochs: make([]int16, 0, len(hosts)),
		perDay: cfg.EpochDays,
	}
	for _, h := range hosts {
		s.addrs = append(s.addrs, h.Addr)
		s.epochs = append(s.epochs, int16(addrEpoch(h.Addr, RA, cfg.Epochs)))
	}
	return s
}

func (s *atlasSource) Name() string { return RA }

func (s *atlasSource) Collect(day int, _ *ip6.ShardSet) []ip6.Addr {
	epoch := int16(day / s.perDay)
	var out []ip6.Addr
	for i, a := range s.addrs {
		if s.epochs[i] <= epoch {
			out = append(out, a)
		}
	}
	return out
}

// scamperSource traceroutes all known targets and harvests router hops.
type scamperSource struct {
	world *netsim.Internet
}

// NewScamper builds the traceroute source.
func NewScamper(world *netsim.Internet) Source {
	return &scamperSource{world: world}
}

func (s *scamperSource) Name() string { return Scamper }

func (s *scamperSource) Collect(day int, hitlist *ip6.ShardSet) []ip6.Addr {
	if hitlist == nil {
		return nil
	}
	seen := ip6.NewSet(1024)
	hitlist.Each(func(a ip6.Addr) bool {
		// The paper traceroutes every known address daily. Paths into
		// datacenter space repeat the same few transit/core hops for
		// thousands of targets, so tracing a deterministic 1-in-16
		// sample there loses no router addresses in practice; subscriber
		// space is always traced in full because each target can reveal
		// a distinct CPE hop (performance substitution, see DESIGN.md).
		if !s.world.InSubscriberSpace(a) && a.Hash64()%16 != 0 {
			return true
		}
		for _, hop := range s.world.TraceroutePath(a, day) {
			seen.Add(hop.Addr)
		}
		return true
	})
	return seen.Sorted()
}

// Store accumulates source output over collection epochs: addresses stay
// on the hitlist indefinitely (§3: "IP addresses will stay indefinitely
// in our scanning list"). All address sets are hash-sharded columnar
// ShardSets — the hitlist data plane — so per-day dedup, sorted-view
// construction and attribution fan out over shards.
type Store struct {
	sources  []Source
	workers  int
	perSrc   map[string]*ip6.ShardSet // all addresses a source ever produced
	newCount map[string]int           // addresses first contributed by a source
	all      *ip6.ShardSet
	runup    []RunupPoint
}

// RunupPoint is one epoch snapshot of cumulative source sizes (Fig. 1a).
type RunupPoint struct {
	Day        int
	Cumulative map[string]int // per source: len(perSrc)
	Total      int
}

// NewStore creates a store over the given sources (order = priority for
// "new address" attribution, mirroring Table 2's source order), using all
// available CPUs for batch set operations.
func NewStore(srcs ...Source) *Store { return NewStoreWorkers(0, srcs...) }

// NewStoreWorkers creates a store with an explicit data-plane worker
// count (<= 0 selects GOMAXPROCS). Purely a throughput knob: store
// contents, statistics and iteration order are identical for every value.
func NewStoreWorkers(workers int, srcs ...Source) *Store {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := &Store{
		sources:  srcs,
		workers:  workers,
		perSrc:   map[string]*ip6.ShardSet{},
		newCount: map[string]int{},
		all:      ip6.NewShardSetWorkers(4096, workers),
	}
	for _, s := range srcs {
		st.perSrc[s.Name()] = ip6.NewShardSetWorkers(1024, workers)
	}
	return st
}

// CollectDay runs every source for one collection day and accumulates.
// Sources run in priority order (new-address attribution depends on it);
// within a source, per-set dedup fans out over shards.
//
// New-address attribution is a counter, not a set: an address new to the
// accumulated hitlist can never become new again (the hitlist is
// append-only), so the per-source "first contributed" tally needs only
// AddSlice's new-count — the old per-source ShardSet retained a second
// full copy of columns and membership map per source for a number that
// Table 2 reads once.
func (st *Store) CollectDay(day int) {
	for _, s := range st.sources {
		addrs := s.Collect(day, st.all)
		st.perSrc[s.Name()].AddSlice(addrs)
		st.newCount[s.Name()] += st.all.AddSlice(addrs)
	}
	pt := RunupPoint{Day: day, Cumulative: map[string]int{}, Total: st.all.Len()}
	for name, set := range st.perSrc {
		pt.Cumulative[name] = set.Len()
	}
	st.runup = append(st.runup, pt)
}

// All returns the accumulated hitlist.
func (st *Store) All() *ip6.ShardSet { return st.all }

// PerSource returns a source's accumulated address set.
func (st *Store) PerSource(name string) *ip6.ShardSet { return st.perSrc[name] }

// NewCount returns how many addresses the source was the first to
// contribute (Table 2's "new" column).
func (st *Store) NewCount(name string) int { return st.newCount[name] }

// Runup returns the epoch snapshots.
func (st *Store) Runup() []RunupPoint { return st.runup }

// Compact drops the membership maps and append slack of the accumulated
// hitlist and every per-source set — after the collection epochs finish,
// all downstream consumers read sorted views, shard columns, or do point
// lookups that a binary search serves (see ip6.ShardSet.Compact). The
// per-source sets use the columnar flavor (CompactCols): their remaining
// readers are Each/ShardSeqs attribution passes, so building sorted
// views for them would add 16 bytes per address nobody consults. A
// later CollectDay transparently rebuilds the maps it touches, so
// calling Compact between collection and the probing phases is always
// safe.
func (st *Store) Compact() {
	st.all.Compact()
	for _, set := range st.perSrc {
		set.CompactCols()
	}
}

// MemBytes estimates the store's resident footprint: the accumulated
// hitlist and the per-source sets, with the membership-map share broken
// out (the component Compact removes).
func (st *Store) MemBytes() (total, maps int64) {
	t, m, _, _ := st.all.MemBytes()
	total, maps = t, m
	for _, set := range st.perSrc {
		t, m, _, _ = set.MemBytes()
		total += t
		maps += m
	}
	return total, maps
}

// SourceStat is one row of Table 2.
type SourceStat struct {
	Name     string
	IPs      int
	NewIPs   int
	ASes     int
	Prefixes int
	// TopAS are the top-3 AS shares of the source's addresses.
	TopAS []ASShare
}

// ASShare is an AS with its share of a source's addresses.
type ASShare struct {
	ASN   bgp.ASN
	Name  string
	Share float64
}

// attribution maps a set's addresses onto origin ASes and announced
// prefixes, fanning the table lookups out over the set's shards. Each
// worker fills private count maps for its shard range; the merges happen
// in shard order. Counts are sums, so the result is identical to the old
// serial walk for any worker count.
func attribution(set *ip6.ShardSet, table *bgp.Table, workers int) (map[bgp.ASN]int, map[ip6.Prefix]int) {
	shards := set.ShardSeqs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers < 1 {
		workers = 1
	}
	type local struct {
		as  map[bgp.ASN]int
		pfx map[ip6.Prefix]int
	}
	locals := make([]local, workers)
	chunk := (len(shards) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := local{as: map[bgp.ASN]int{}, pfx: map[ip6.Prefix]int{}}
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(shards) {
				hi = len(shards)
			}
			for si := lo; si < hi; si++ {
				v := shards[si]
				for i := 0; i < v.Len(); i++ {
					if p, asn, ok := table.Lookup(v.At(i)); ok {
						l.as[asn]++
						l.pfx[p]++
					}
				}
			}
			locals[w] = l
		}(w)
	}
	wg.Wait()
	asCount := map[bgp.ASN]int{}
	pfxCount := map[ip6.Prefix]int{}
	for _, l := range locals {
		for a, c := range l.as {
			asCount[a] += c
		}
		for p, c := range l.pfx {
			pfxCount[p] += c
		}
	}
	return asCount, pfxCount
}

// Stats computes Table 2 for the current store contents. AS and prefix
// attribution runs shard-parallel per source.
func (st *Store) Stats(table *bgp.Table) []SourceStat {
	var out []SourceStat
	for _, s := range st.sources {
		set := st.perSrc[s.Name()]
		stat := SourceStat{
			Name:   s.Name(),
			IPs:    set.Len(),
			NewIPs: st.newCount[s.Name()],
		}
		asCount, pfxCount := attribution(set, table, st.workers)
		stat.ASes = len(asCount)
		stat.Prefixes = len(pfxCount)
		stat.TopAS = topShares(asCount, table, 3, set.Len())
		out = append(out, stat)
	}
	return out
}

// TotalStat computes the "Total" row of Table 2.
func (st *Store) TotalStat(table *bgp.Table) SourceStat {
	stat := SourceStat{Name: "Total", IPs: st.all.Len(), NewIPs: st.all.Len()}
	asCount, pfxCount := attribution(st.all, table, st.workers)
	stat.ASes = len(asCount)
	stat.Prefixes = len(pfxCount)
	stat.TopAS = topShares(asCount, table, 3, st.all.Len())
	return stat
}

func topShares(counts map[bgp.ASN]int, table *bgp.Table, n, total int) []ASShare {
	type kv struct {
		asn bgp.ASN
		c   int
	}
	var all []kv
	for a, c := range counts {
		all = append(all, kv{a, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].asn < all[j].asn
	})
	if len(all) > n {
		all = all[:n]
	}
	var out []ASShare
	for _, e := range all {
		out = append(out, ASShare{
			ASN:   e.asn,
			Name:  table.AS(e.asn).Name,
			Share: float64(e.c) / float64(total),
		})
	}
	return out
}
