package sources

import (
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/dnssim"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
)

func testWorld() *netsim.Internet {
	return netsim.New(netsim.Config{
		Seed:      42,
		Registry:  bgp.RegistryConfig{ASes: 250, PrefixesPerAS: 3.5, Seed: 7},
		Scale:     0.08,
		EpochDays: 7,
		Epochs:    6,
	})
}

var world = testWorld()
var dns = dnssim.New(world)

func allSources() []Source {
	cfg := world.Config()
	return []Source{
		NewDL(dns, cfg),
		NewFDNS(dns, cfg),
		NewCT(dns, cfg),
		NewAXFR(dns, cfg),
		NewBitnodes(world),
		NewAtlas(world),
		NewScamper(world),
	}
}

func TestAllSourcesProduce(t *testing.T) {
	st := NewStore(allSources()...)
	st.CollectDay(0)
	st.CollectDay(world.Config().EpochDays * (world.Config().Epochs - 1))
	for _, name := range Names {
		if st.PerSource(name).Len() == 0 {
			t.Errorf("source %s produced nothing", name)
		}
	}
	if st.All().Len() == 0 {
		t.Fatal("empty hitlist")
	}
}

func TestRunupGrows(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	runup := st.Runup()
	if len(runup) != cfg.Epochs {
		t.Fatalf("runup points = %d", len(runup))
	}
	for i := 1; i < len(runup); i++ {
		if runup[i].Total < runup[i-1].Total {
			t.Fatalf("hitlist shrank at epoch %d", i)
		}
	}
	if runup[len(runup)-1].Total <= runup[0].Total {
		t.Error("no growth over epochs")
	}
	// Scamper must grow across epochs (rotating CPE discovery).
	first := runup[0].Cumulative[Scamper]
	last := runup[len(runup)-1].Cumulative[Scamper]
	if last <= first {
		t.Errorf("scamper did not grow: %d -> %d", first, last)
	}
}

func TestCTExcludesDL(t *testing.T) {
	cfg := world.Config()
	ct := NewCT(dns, cfg)
	dl := NewDL(dns, cfg)
	lastDay := cfg.EpochDays * (cfg.Epochs - 1)
	dlSet := ip6.NewSet(1024)
	for _, a := range dl.Collect(lastDay, nil) {
		dlSet.Add(a)
	}
	ctAddrs := ct.Collect(lastDay, nil)
	overlap := 0
	for _, a := range ctAddrs {
		if dlSet.Contains(a) {
			overlap++
		}
	}
	// Domain-level exclusion keeps address overlap low (addresses can
	// still coincide when several domains point at one host).
	if len(ctAddrs) > 0 && float64(overlap)/float64(len(ctAddrs)) > 0.35 {
		t.Errorf("CT/DL overlap = %d/%d, exclusion not working", overlap, len(ctAddrs))
	}
}

func TestScamperFindsSLAACRouters(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	// SLAAC dominance builds up over epochs: every renumbering period the
	// rotating lines' CPEs appear under fresh addresses (§3).
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	sc := st.PerSource(Scamper)
	slaac := 0
	sc.Each(func(a ip6.Addr) bool {
		if a.IsSLAAC() {
			slaac++
		}
		return true
	})
	if sc.Len() == 0 {
		t.Fatal("scamper empty")
	}
	share := float64(slaac) / float64(sc.Len())
	// The paper reports 90.7% SLAAC among scamper addresses; at our small
	// test scale expect a clear majority once CPE discovery kicks in.
	if share < 0.3 {
		t.Errorf("scamper SLAAC share = %.2f, want significant", share)
	}
}

func TestStatsShape(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	stats := st.Stats(world.Table)
	if len(stats) != len(Names) {
		t.Fatalf("stats rows = %d", len(stats))
	}
	totalNew := 0
	for _, s := range stats {
		if s.IPs < s.NewIPs {
			t.Errorf("%s: new (%d) exceeds total (%d)", s.Name, s.NewIPs, s.IPs)
		}
		if s.IPs > 0 && (s.ASes == 0 || s.Prefixes == 0) {
			t.Errorf("%s: no AS/prefix attribution", s.Name)
		}
		if len(s.TopAS) > 3 {
			t.Errorf("%s: too many top ASes", s.Name)
		}
		for _, ts := range s.TopAS {
			if ts.Share < 0 || ts.Share > 1 {
				t.Errorf("%s: share %v out of range", s.Name, ts.Share)
			}
		}
		totalNew += s.NewIPs
	}
	tot := st.TotalStat(world.Table)
	if tot.IPs != st.All().Len() {
		t.Errorf("total = %d, want %d", tot.IPs, st.All().Len())
	}
	// New-address attribution partitions the hitlist.
	if totalNew != tot.IPs {
		t.Errorf("sum of new per source = %d, total = %d", totalNew, tot.IPs)
	}
}

func TestDLIsCDNHeavy(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	stats := st.Stats(world.Table)
	for _, s := range stats {
		if s.Name != DL && s.Name != CT {
			continue
		}
		if len(s.TopAS) == 0 {
			t.Fatalf("%s has no top AS", s.Name)
		}
		// The top AS of the DNS-derived sources must hold a large share
		// (paper: 89.7% and 92.3%, Amazon). Our scale softens it.
		if s.TopAS[0].Share < 0.25 {
			t.Errorf("%s top AS share = %.2f, want CDN-heavy", s.Name, s.TopAS[0].Share)
		}
	}
}

func TestAccumulationKeepsOldAddresses(t *testing.T) {
	st := NewStore(allSources()...)
	st.CollectDay(0)
	before := st.All().Len()
	st.CollectDay(7)
	st.CollectDay(14)
	// Nothing ever leaves.
	after := st.All().Len()
	if after < before {
		t.Error("store dropped addresses")
	}
}

func TestFirstEpochDeterministic(t *testing.T) {
	if firstEpoch("x.example.", DL, 10) != firstEpoch("x.example.", DL, 10) {
		t.Error("firstEpoch not deterministic")
	}
	spread := map[int]bool{}
	for i := 0; i < 200; i++ {
		spread[firstEpoch(string(rune('a'+i%26))+string(rune('0'+i/26))+".example.", DL, 10)] = true
	}
	if len(spread) < 8 {
		t.Errorf("firstEpoch only hits %d epochs of 10", len(spread))
	}
}
