package sources

import (
	"fmt"
	"testing"

	"expanse/internal/bgp"
	"expanse/internal/dnssim"
	"expanse/internal/ip6"
	"expanse/internal/netsim"
)

func testWorld() *netsim.Internet {
	return netsim.New(netsim.Config{
		Seed:      42,
		Registry:  bgp.RegistryConfig{ASes: 250, PrefixesPerAS: 3.5, Seed: 7},
		Scale:     0.08,
		EpochDays: 7,
		Epochs:    6,
	})
}

var world = testWorld()
var dns = dnssim.New(world)

func allSources() []Source {
	cfg := world.Config()
	return []Source{
		NewDL(dns, cfg),
		NewFDNS(dns, cfg),
		NewCT(dns, cfg),
		NewAXFR(dns, cfg),
		NewBitnodes(world),
		NewAtlas(world),
		NewScamper(world),
	}
}

func TestAllSourcesProduce(t *testing.T) {
	st := NewStore(allSources()...)
	st.CollectDay(0)
	st.CollectDay(world.Config().EpochDays * (world.Config().Epochs - 1))
	for _, name := range Names {
		if st.PerSource(name).Len() == 0 {
			t.Errorf("source %s produced nothing", name)
		}
	}
	if st.All().Len() == 0 {
		t.Fatal("empty hitlist")
	}
}

func TestRunupGrows(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	runup := st.Runup()
	if len(runup) != cfg.Epochs {
		t.Fatalf("runup points = %d", len(runup))
	}
	for i := 1; i < len(runup); i++ {
		if runup[i].Total < runup[i-1].Total {
			t.Fatalf("hitlist shrank at epoch %d", i)
		}
	}
	if runup[len(runup)-1].Total <= runup[0].Total {
		t.Error("no growth over epochs")
	}
	// Scamper must grow across epochs (rotating CPE discovery).
	first := runup[0].Cumulative[Scamper]
	last := runup[len(runup)-1].Cumulative[Scamper]
	if last <= first {
		t.Errorf("scamper did not grow: %d -> %d", first, last)
	}
}

func TestCTExcludesDL(t *testing.T) {
	cfg := world.Config()
	ct := NewCT(dns, cfg)
	dl := NewDL(dns, cfg)
	lastDay := cfg.EpochDays * (cfg.Epochs - 1)
	dlSet := ip6.NewSet(1024)
	for _, a := range dl.Collect(lastDay, nil) {
		dlSet.Add(a)
	}
	ctAddrs := ct.Collect(lastDay, nil)
	overlap := 0
	for _, a := range ctAddrs {
		if dlSet.Contains(a) {
			overlap++
		}
	}
	// Domain-level exclusion keeps address overlap low (addresses can
	// still coincide when several domains point at one host).
	if len(ctAddrs) > 0 && float64(overlap)/float64(len(ctAddrs)) > 0.35 {
		t.Errorf("CT/DL overlap = %d/%d, exclusion not working", overlap, len(ctAddrs))
	}
}

func TestScamperFindsSLAACRouters(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	// SLAAC dominance builds up over epochs: every renumbering period the
	// rotating lines' CPEs appear under fresh addresses (§3).
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	sc := st.PerSource(Scamper)
	slaac := 0
	sc.Each(func(a ip6.Addr) bool {
		if a.IsSLAAC() {
			slaac++
		}
		return true
	})
	if sc.Len() == 0 {
		t.Fatal("scamper empty")
	}
	share := float64(slaac) / float64(sc.Len())
	// The paper reports 90.7% SLAAC among scamper addresses; at our small
	// test scale expect a clear majority once CPE discovery kicks in.
	if share < 0.3 {
		t.Errorf("scamper SLAAC share = %.2f, want significant", share)
	}
}

func TestStatsShape(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	stats := st.Stats(world.Table)
	if len(stats) != len(Names) {
		t.Fatalf("stats rows = %d", len(stats))
	}
	totalNew := 0
	for _, s := range stats {
		if s.IPs < s.NewIPs {
			t.Errorf("%s: new (%d) exceeds total (%d)", s.Name, s.NewIPs, s.IPs)
		}
		if s.IPs > 0 && (s.ASes == 0 || s.Prefixes == 0) {
			t.Errorf("%s: no AS/prefix attribution", s.Name)
		}
		if len(s.TopAS) > 3 {
			t.Errorf("%s: too many top ASes", s.Name)
		}
		for _, ts := range s.TopAS {
			if ts.Share < 0 || ts.Share > 1 {
				t.Errorf("%s: share %v out of range", s.Name, ts.Share)
			}
		}
		totalNew += s.NewIPs
	}
	tot := st.TotalStat(world.Table)
	if tot.IPs != st.All().Len() {
		t.Errorf("total = %d, want %d", tot.IPs, st.All().Len())
	}
	// New-address attribution partitions the hitlist.
	if totalNew != tot.IPs {
		t.Errorf("sum of new per source = %d, total = %d", totalNew, tot.IPs)
	}
}

func TestDLIsCDNHeavy(t *testing.T) {
	st := NewStore(allSources()...)
	cfg := world.Config()
	for e := 0; e < cfg.Epochs; e++ {
		st.CollectDay(e * cfg.EpochDays)
	}
	stats := st.Stats(world.Table)
	for _, s := range stats {
		if s.Name != DL && s.Name != CT {
			continue
		}
		if len(s.TopAS) == 0 {
			t.Fatalf("%s has no top AS", s.Name)
		}
		// The top AS of the DNS-derived sources must hold a large share
		// (paper: 89.7% and 92.3%, Amazon). Our scale softens it.
		if s.TopAS[0].Share < 0.25 {
			t.Errorf("%s top AS share = %.2f, want CDN-heavy", s.Name, s.TopAS[0].Share)
		}
	}
}

func TestAccumulationKeepsOldAddresses(t *testing.T) {
	st := NewStore(allSources()...)
	st.CollectDay(0)
	before := st.All().Len()
	st.CollectDay(7)
	st.CollectDay(14)
	// Nothing ever leaves.
	after := st.All().Len()
	if after < before {
		t.Error("store dropped addresses")
	}
}

// TestStoreMatchesMapReference pins the data-plane refactor: the sharded
// columnar Store must accumulate byte-for-byte the same state as the
// pre-refactor map-based implementation (serial ip6.Set, per-address
// Add/attribution) fed the same source outputs.
func TestStoreMatchesMapReference(t *testing.T) {
	cfg := world.Config()
	st := NewStore(allSources()...)

	// Reference: the old CollectDay loop over plain sets. The reference
	// keeps its own hitlist mirror to feed scamper, built with serial
	// single adds.
	refSrcs := allSources()
	refAll := ip6.NewSet(0)
	refMirror := ip6.NewShardSetWorkers(0, 1)
	refPer := map[string]*ip6.Set{}
	refNew := map[string]*ip6.Set{}
	for _, s := range refSrcs {
		refPer[s.Name()] = ip6.NewSet(0)
		refNew[s.Name()] = ip6.NewSet(0)
	}
	var refRunup []RunupPoint

	setsEqual := func(got *ip6.ShardSet, want *ip6.Set) bool {
		if got.Len() != want.Len() {
			return false
		}
		ok := true
		got.Each(func(a ip6.Addr) bool {
			if !want.Contains(a) {
				ok = false
			}
			return ok
		})
		return ok
	}

	for e := 0; e < cfg.Epochs; e++ {
		day := e * cfg.EpochDays
		st.CollectDay(day)

		for _, s := range refSrcs {
			addrs := s.Collect(day, refMirror)
			per, nw := refPer[s.Name()], refNew[s.Name()]
			for _, a := range addrs {
				per.Add(a)
				if refAll.Add(a) {
					nw.Add(a)
				}
				refMirror.Add(a)
			}
		}
		pt := RunupPoint{Day: day, Cumulative: map[string]int{}, Total: refAll.Len()}
		for name, set := range refPer {
			pt.Cumulative[name] = set.Len()
		}
		refRunup = append(refRunup, pt)

		if !setsEqual(st.All(), refAll) {
			t.Fatalf("epoch %d: hitlist diverged from map reference (%d vs %d)",
				e, st.All().Len(), refAll.Len())
		}
	}
	for _, name := range Names {
		if !setsEqual(st.PerSource(name), refPer[name]) {
			t.Errorf("per-source set %q diverged", name)
		}
		if st.NewCount(name) != refNew[name].Len() {
			t.Errorf("new-address attribution for %q = %d, want %d",
				name, st.NewCount(name), refNew[name].Len())
		}
	}
	for i, pt := range st.Runup() {
		want := refRunup[i]
		if pt.Day != want.Day || pt.Total != want.Total {
			t.Errorf("runup point %d = %+v, want %+v", i, pt, want)
		}
		for name, c := range want.Cumulative {
			if pt.Cumulative[name] != c {
				t.Errorf("runup point %d source %q = %d, want %d", i, name, pt.Cumulative[name], c)
			}
		}
	}
	// The sorted hitlist view must equal the reference sort.
	got, want := st.All().Sorted(), refAll.Sorted()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted view differs at %d", i)
		}
	}
}

// TestStoreDeterministicAcrossWorkers pins the data plane's throughput
// knob: store contents, statistics, runup and iteration order must be
// identical for every worker count.
func TestStoreDeterministicAcrossWorkers(t *testing.T) {
	cfg := world.Config()
	build := func(workers int) *Store {
		st := NewStoreWorkers(workers, allSources()...)
		for e := 0; e < cfg.Epochs; e++ {
			st.CollectDay(e * cfg.EpochDays)
		}
		return st
	}
	ref := build(1)
	refSorted := ref.All().Sorted()
	refStats := ref.Stats(world.Table)
	refTotal := ref.TotalStat(world.Table)
	for _, workers := range []int{4, 16} {
		st := build(workers)
		got := st.All().Sorted()
		if len(got) != len(refSorted) {
			t.Fatalf("workers=%d: hitlist %d addrs, want %d", workers, len(got), len(refSorted))
		}
		for i := range refSorted {
			if got[i] != refSorted[i] {
				t.Fatalf("workers=%d: sorted hitlist differs at %d", workers, i)
			}
		}
		// Each order (shard-major) must match too — report code iterates it.
		var order []ip6.Addr
		st.All().Each(func(a ip6.Addr) bool { order = append(order, a); return true })
		var refOrder []ip6.Addr
		ref.All().Each(func(a ip6.Addr) bool { refOrder = append(refOrder, a); return true })
		for i := range refOrder {
			if order[i] != refOrder[i] {
				t.Fatalf("workers=%d: Each order differs at %d", workers, i)
			}
		}
		stats := st.Stats(world.Table)
		for i, s := range stats {
			r := refStats[i]
			if s.Name != r.Name || s.IPs != r.IPs || s.NewIPs != r.NewIPs ||
				s.ASes != r.ASes || s.Prefixes != r.Prefixes || len(s.TopAS) != len(r.TopAS) {
				t.Errorf("workers=%d: stats row %q differs: %+v vs %+v", workers, s.Name, s, r)
			}
			for j := range s.TopAS {
				if s.TopAS[j] != r.TopAS[j] {
					t.Errorf("workers=%d: %q top-AS %d differs", workers, s.Name, j)
				}
			}
		}
		if tot := st.TotalStat(world.Table); tot.IPs != refTotal.IPs || tot.ASes != refTotal.ASes ||
			tot.Prefixes != refTotal.Prefixes {
			t.Errorf("workers=%d: total stat differs: %+v vs %+v", workers, tot, refTotal)
		}
	}
}

// synthSource feeds a per-day synthetic address batch — the ≥10⁶-address
// hitlist for the collection benchmark.
type synthSource struct {
	name  string
	byDay map[int][]ip6.Addr
}

func (s *synthSource) Name() string { return s.name }
func (s *synthSource) Collect(day int, _ *ip6.ShardSet) []ip6.Addr {
	return s.byDay[day]
}

func synthAddrs(n int, seed uint64) []ip6.Addr {
	out := make([]ip6.Addr, n)
	x := seed
	next := func() uint64 { // splitmix64
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		return z ^ z>>31
	}
	for i := range out {
		v := next()
		out[i] = ip6.AddrFromUint64(0x2001_0db8_0000_0000|v>>40, next())
	}
	return out
}

// BenchmarkStoreCollect measures two CollectDay rounds over a
// 2^20-address synthetic hitlist: day 0 is all-new insertion, day 1
// re-offers the full batch (pure dedup) plus a fresh 25% tail — the
// accumulate-forever pattern of §3 — at several data-plane worker
// counts.
func BenchmarkStoreCollect(b *testing.B) {
	const n = 1 << 20
	base := synthAddrs(n, 0x16c18)
	extra := synthAddrs(n/4, 0x9d)
	day1 := append(append([]ip6.Addr{}, base...), extra...)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := NewStoreWorkers(workers,
					&synthSource{name: "synth", byDay: map[int][]ip6.Addr{0: base, 1: day1}},
				)
				st.CollectDay(0)
				st.CollectDay(1)
				if st.All().Len() != n+len(extra) {
					b.Fatal("bad dedup")
				}
			}
		})
	}
}

func TestFirstEpochDeterministic(t *testing.T) {
	if firstEpoch("x.example.", DL, 10) != firstEpoch("x.example.", DL, 10) {
		t.Error("firstEpoch not deterministic")
	}
	spread := map[int]bool{}
	for i := 0; i < 200; i++ {
		spread[firstEpoch(string(rune('a'+i%26))+string(rune('0'+i/26))+".example.", DL, 10)] = true
	}
	if len(spread) < 8 {
		t.Errorf("firstEpoch only hits %d epochs of 10", len(spread))
	}
}
