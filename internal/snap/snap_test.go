package snap

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"expanse/internal/ip6"
)

func randAddrs(rng *rand.Rand, n int) []ip6.Addr {
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = ip6.AddrFromUint64(rng.Uint64(), rng.Uint64())
	}
	return out
}

// writeSample builds a two-section snapshot exercising every codec.
func writeSample(t *testing.T, rng *rand.Rand) ([]byte, []ip6.Addr, []ip6.Prefix) {
	t.Helper()
	addrs := randAddrs(rng, rng.Intn(200))
	prefixes := make([]ip6.Prefix, rng.Intn(100))
	for i := range prefixes {
		prefixes[i] = ip6.PrefixFrom(ip6.AddrFromUint64(rng.Uint64(), 0), 16+rng.Intn(48))
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("META")
	w.U64(12345)
	w.Int(63)
	w.F64(16.0)
	w.Bool(true)
	w.U16(0xbeef)
	w.U8(7)
	w.Bytes([]byte("pipeline"))
	w.Section("COLS")
	w.AddrCols(addrs)
	w.PrefixCols(prefixes)
	w.U64s([]uint64{1, 1 << 40, 0})
	w.U16s([]uint16{0xffff, 0, 42})
	w.I32s([]int32{-1, 0, 1 << 20})
	w.Bits([]bool{true, false, true, true, false, false, false, true, true})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), addrs, prefixes
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		raw, addrs, prefixes := writeSample(t, rng)
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		if tag, err := r.Next(); err != nil || tag != "META" {
			t.Fatalf("first section = %q, %v", tag, err)
		}
		if v := r.U64(); v != 12345 {
			t.Fatalf("U64 = %d", v)
		}
		if v := r.Int(); v != 63 {
			t.Fatalf("Int = %d", v)
		}
		if v := r.F64(); v != 16.0 {
			t.Fatalf("F64 = %v", v)
		}
		if !r.Bool() {
			t.Fatal("Bool = false")
		}
		if v := r.U16(); v != 0xbeef {
			t.Fatalf("U16 = %04x", v)
		}
		if v := r.U8(); v != 7 {
			t.Fatalf("U8 = %d", v)
		}
		if s := r.Bytes(); string(s) != "pipeline" {
			t.Fatalf("Bytes = %q", s)
		}
		if r.Remaining() != 0 {
			t.Fatalf("META has %d stray bytes", r.Remaining())
		}
		if tag, err := r.Next(); err != nil || tag != "COLS" {
			t.Fatalf("second section = %q, %v", tag, err)
		}
		gotAddrs := r.AddrCols()
		if len(gotAddrs) != len(addrs) {
			t.Fatalf("AddrCols len %d, want %d", len(gotAddrs), len(addrs))
		}
		for i := range addrs {
			if gotAddrs[i] != addrs[i] {
				t.Fatalf("addr %d diverged", i)
			}
		}
		gotPfx := r.PrefixCols()
		if len(gotPfx) != len(prefixes) {
			t.Fatalf("PrefixCols len %d, want %d", len(gotPfx), len(prefixes))
		}
		for i := range prefixes {
			if gotPfx[i] != prefixes[i] {
				t.Fatalf("prefix %d diverged", i)
			}
		}
		u64s := r.U64s()
		if len(u64s) != 3 || u64s[1] != 1<<40 {
			t.Fatalf("U64s = %v", u64s)
		}
		u16s := r.U16s()
		if len(u16s) != 3 || u16s[2] != 42 {
			t.Fatalf("U16s = %v", u16s)
		}
		i32s := r.I32s()
		if len(i32s) != 3 || i32s[0] != -1 {
			t.Fatalf("I32s = %v", i32s)
		}
		bits := r.Bits()
		want := []bool{true, false, true, true, false, false, false, true, true}
		if len(bits) != len(want) {
			t.Fatalf("Bits len %d", len(bits))
		}
		for i := range want {
			if bits[i] != want[i] {
				t.Fatalf("bit %d diverged", i)
			}
		}
		if tag, err := r.Next(); !errors.Is(err, io.EOF) || tag != EndTag {
			t.Fatalf("end marker = %q, %v", tag, err)
		}
		if r.Err() != nil {
			t.Fatalf("Err = %v", r.Err())
		}
	}
}

// TestSkipUnknownSection pins the compatibility contract: readers
// iterate by tag and skip sections they don't know.
func TestSkipUnknownSection(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("NEWX")
	w.U64s(make([]uint64, 100))
	w.Section("WANT")
	w.U64(99)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		tag, err := r.Next()
		if err != nil {
			t.Fatalf("never found WANT: %v", err)
		}
		if tag != "WANT" {
			continue // skip without reading payload
		}
		if v := r.U64(); v != 99 {
			t.Fatalf("WANT payload = %d", v)
		}
		break
	}
}

func TestBadMagic(t *testing.T) {
	raw, _, _ := writeSample(t, rand.New(rand.NewSource(2)))
	mut := append([]byte(nil), raw...)
	mut[0] ^= 0xff
	if _, err := NewReader(bytes.NewReader(mut)); !errors.Is(err, ErrMagic) {
		t.Fatalf("err = %v, want ErrMagic", err)
	}
	if _, err := NewReader(bytes.NewReader(raw[:5])); !errors.Is(err, ErrMagic) {
		t.Fatalf("short header err = %v, want ErrMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	raw, _, _ := writeSample(t, rand.New(rand.NewSource(3)))
	mut := append([]byte(nil), raw...)
	mut[9] ^= 0x40 // flip a major-version bit
	if _, err := NewReader(bytes.NewReader(mut)); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestChecksumMismatch(t *testing.T) {
	raw, _, _ := writeSample(t, rand.New(rand.NewSource(4)))
	// Flip one payload byte inside the first section (header is 10
	// bytes, frame 12, so offset 30 is mid-payload).
	mut := append([]byte(nil), raw...)
	mut[30] ^= 1
	r, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// TestTruncation decodes every strict prefix of a valid snapshot; all
// must error (never panic, never succeed silently past the cut).
func TestTruncation(t *testing.T) {
	raw, _, _ := writeSample(t, rand.New(rand.NewSource(5)))
	for cut := 0; cut < len(raw); cut++ {
		r, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue // header already unreadable
		}
		sawErr := false
		for i := 0; i < 100; i++ {
			tag, err := r.Next()
			if errors.Is(err, io.EOF) && tag == EndTag {
				t.Fatalf("cut=%d: truncated file reached a clean end marker", cut)
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Fatalf("cut=%d: no error surfaced", cut)
		}
	}
}

// TestHugeLengthRejected pins that a corrupted length prefix cannot
// drive a giant allocation: both section frames and column length
// prefixes are validated before use.
func TestHugeLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("COLS")
	w.U64(1 << 50) // forged column length with no payload behind it
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if got := r.U64s(); got != nil {
		t.Fatalf("U64s returned %d elements from forged length", len(got))
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}

	// A forged section frame length is rejected before allocation too.
	raw := buf.Bytes()
	mut := append([]byte(nil), raw...)
	putU64(mut[14:], 1<<60) // section payload length field
	r2, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged frame err = %v, want ErrCorrupt", err)
	}
}

// TestStickyErrors pins that reads after an error are inert zero-value
// no-ops rather than panics.
func TestStickyErrors(t *testing.T) {
	r, err := NewReader(bytes.NewReader(mustSample(t)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.U64s() // overruns the META section quickly
	}
	if r.Err() == nil {
		t.Fatal("overrun did not surface an error")
	}
	if v := r.U64(); v != 0 {
		t.Fatalf("post-error U64 = %d", v)
	}
	if s := r.AddrCols(); s != nil {
		t.Fatalf("post-error AddrCols = %v", s)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("post-error Next succeeded")
	}
}

func mustSample(t *testing.T) []byte {
	t.Helper()
	raw, _, _ := writeSample(t, rand.New(rand.NewSource(6)))
	return raw
}

// FuzzReader hammers the decoder with mutated snapshots; the contract
// under fuzz is "errors, never panics", plus bounded allocation.
func FuzzReader(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	var tt testing.T
	raw, _, _ := writeSample(&tt, rng)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte("EXPSNAP\x00\x00\x01"))
	f.Add([]byte{})
	short := append([]byte(nil), raw...)
	short[20] ^= 0xff
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 64; i++ {
			tag, err := r.Next()
			if err != nil {
				return
			}
			_ = tag
			// Drain with a representative mix of field reads.
			r.U64()
			r.AddrCols()
			r.PrefixCols()
			r.U16s()
			r.I32s()
			r.Bits()
			r.Bytes()
			if r.Err() != nil {
				return
			}
		}
	})
}
