// Package snap is the versioned binary snapshot format of the
// persistence plane: a magic/version header followed by tagged,
// length-prefixed, checksummed sections of little-endian column dumps.
// It is deliberately low-level — the package knows how to frame and
// checksum sections and how to encode primitive columns ([]uint64,
// []int32, []uint16, address and prefix columns), while the composition
// into pipeline checkpoints lives in internal/core (checkpoint.go),
// keeping the dependency arrow pointing one way.
//
// # Wire layout
//
//	header   := magic[8] version:u16
//	section  := tag[4] payloadLen:u64 payload[payloadLen] crc64:u64
//	file     := header section* endSection
//
// The end marker is a section with tag "END\x00" and empty payload. All
// integers are little-endian; the checksum is CRC-64/ECMA over the
// payload bytes. Sections are self-describing enough to skip (tag +
// length), so formats can add sections without breaking old readers
// that iterate by tag.
//
// # Versioning policy
//
// Version bumps only on layout changes a reader cannot skip past:
// reordering or re-typing fields inside an existing section. Adding new
// section tags is NOT a version bump — readers ignore unknown tags.
// Readers reject files whose major version byte differs.
//
// # Error model
//
// Decoding never panics on corrupt input: truncation, bad magic, bad
// checksums, and implausible lengths all surface as errors (checked by
// the corruption tests and the fuzz harness). Reads after an error are
// no-ops returning zero values; check Err (or the error returns of
// NewReader/Next) at the boundaries.
package snap

import (
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"expanse/internal/ip6"
)

// Version is the current format version. The low byte is the minor
// version (compatible additions), the high byte the major (breaking).
const Version uint16 = 0x0100

var magic = [8]byte{'E', 'X', 'P', 'S', 'N', 'A', 'P', 0}

// EndTag terminates a snapshot file.
const EndTag = "END\x00"

// maxSection bounds a section payload (and any single decoded slice) so
// a corrupted length cannot ask the decoder to allocate the address
// space. 16 GiB comfortably holds a scale-100 hitlist column dump.
const maxSection = 1 << 34

var (
	// ErrMagic reports a file that does not start with the snapshot magic.
	ErrMagic = errors.New("snap: bad magic")
	// ErrVersion reports a major-version mismatch.
	ErrVersion = errors.New("snap: unsupported version")
	// ErrChecksum reports a section whose payload fails its CRC.
	ErrChecksum = errors.New("snap: section checksum mismatch")
	// ErrCorrupt reports a structurally implausible section or field.
	ErrCorrupt = errors.New("snap: corrupt section")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Writer encodes a snapshot file section by section. Encoding methods
// append to the current section's payload; Section seals the previous
// section (framing + checksum) and starts the next. Errors are sticky:
// the first write error is kept and every later call is a no-op.
type Writer struct {
	w   io.Writer
	tag string
	buf []byte
	err error
}

// NewWriter starts a snapshot on w by emitting the header.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	var hdr [10]byte
	copy(hdr[:8], magic[:])
	putU16(hdr[8:10], Version)
	_, sw.err = w.Write(hdr[:])
	return sw
}

// Section seals the in-progress section, if any, and opens a new one
// with the given 4-byte tag.
func (w *Writer) Section(tag string) {
	if w.err != nil {
		return
	}
	if len(tag) != 4 {
		w.err = fmt.Errorf("snap: section tag %q is not 4 bytes", tag)
		return
	}
	w.flush()
	w.tag = tag
	w.buf = w.buf[:0]
}

// flush writes the sealed form of the current section.
func (w *Writer) flush() {
	if w.err != nil || w.tag == "" {
		return
	}
	var frame [12]byte
	copy(frame[:4], w.tag)
	putU64(frame[4:12], uint64(len(w.buf)))
	if _, w.err = w.w.Write(frame[:]); w.err != nil {
		return
	}
	if _, w.err = w.w.Write(w.buf); w.err != nil {
		return
	}
	var sum [8]byte
	putU64(sum[:], crc64.Checksum(w.buf, crcTable))
	_, w.err = w.w.Write(sum[:])
	w.tag = ""
}

// Close seals the last section and writes the end marker. The Writer
// must not be used afterwards.
func (w *Writer) Close() error {
	w.Section(EndTag)
	w.flush()
	return w.err
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

func (w *Writer) grow(n int) []byte {
	if w.err != nil {
		return nil
	}
	old := len(w.buf)
	if old+n > maxSection {
		w.err = fmt.Errorf("snap: section %q exceeds %d bytes", w.tag, int64(maxSection))
		return nil
	}
	w.buf = append(w.buf, make([]byte, n)...)
	return w.buf[old:]
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) {
	if b := w.grow(1); b != nil {
		b[0] = v
	}
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	if b := w.grow(2); b != nil {
		putU16(b, v)
	}
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	if b := w.grow(8); b != nil {
		putU64(b, v)
	}
}

// Int appends an int as a uint64 (values must be non-negative).
func (w *Writer) Int(v int) {
	if v < 0 {
		if w.err == nil {
			w.err = fmt.Errorf("snap: negative Int %d", v)
		}
		return
	}
	w.U64(uint64(v))
}

// F64 appends a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	var b uint8
	if v {
		b = 1
	}
	w.U8(b)
}

// U64s appends a length-prefixed []uint64 column.
func (w *Writer) U64s(vs []uint64) {
	w.Int(len(vs))
	b := w.grow(8 * len(vs))
	for i, v := range vs {
		putU64(b[8*i:], v)
	}
}

// U16s appends a length-prefixed []uint16 column.
func (w *Writer) U16s(vs []uint16) {
	w.Int(len(vs))
	b := w.grow(2 * len(vs))
	for i, v := range vs {
		putU16(b[2*i:], v)
	}
}

// I32s appends a length-prefixed []int32 column (two's-complement LE).
func (w *Writer) I32s(vs []int32) {
	w.Int(len(vs))
	b := w.grow(4 * len(vs))
	for i, v := range vs {
		putU32(b[4*i:], uint32(v))
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(p []byte) {
	w.Int(len(p))
	copy(w.grow(len(p)), p)
}

// Bits appends a length-prefixed bool column packed 8 per byte.
func (w *Writer) Bits(vs []bool) {
	w.Int(len(vs))
	b := w.grow((len(vs) + 7) / 8)
	for i, v := range vs {
		if v {
			b[i>>3] |= 1 << (i & 7)
		}
	}
}

// AddrCols appends a length-prefixed address column as separate hi and
// lo little-endian u64 dumps — the ShardSet's native columnar layout.
func (w *Writer) AddrCols(addrs []ip6.Addr) {
	w.Int(len(addrs))
	b := w.grow(16 * len(addrs))
	if b == nil {
		return
	}
	n := len(addrs)
	for i, a := range addrs {
		putU64(b[8*i:], a.Hi())
	}
	for i, a := range addrs {
		putU64(b[8*(n+i):], a.Lo())
	}
}

// PrefixCols appends a length-prefixed prefix column: hi dump, lo dump,
// then one length byte per prefix.
func (w *Writer) PrefixCols(ps []ip6.Prefix) {
	w.Int(len(ps))
	n := len(ps)
	b := w.grow(17 * n)
	if b == nil {
		return
	}
	for i, p := range ps {
		putU64(b[8*i:], p.Addr().Hi())
	}
	for i, p := range ps {
		putU64(b[8*(n+i):], p.Addr().Lo())
	}
	for i, p := range ps {
		b[16*n+i] = uint8(p.Bits())
	}
}

// Reader decodes a snapshot file. Next loads and verifies one section
// at a time; the field methods then consume the section payload in
// order. Errors are sticky and reads after an error return zero values.
type Reader struct {
	r   io.Reader
	buf []byte
	pos int
	err error
}

// NewReader checks the header and positions the reader before the first
// section.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMagic, err)
	}
	for i := range magic {
		if hdr[i] != magic[i] {
			return nil, ErrMagic
		}
	}
	v := getU16(hdr[8:10])
	if v>>8 != Version>>8 {
		return nil, fmt.Errorf("%w: file 0x%04x, reader 0x%04x", ErrVersion, v, Version)
	}
	return &Reader{r: r}, nil
}

// Next reads the next section into memory, verifies its checksum, and
// returns its tag. It returns io.EOF (as the error, tag EndTag) at the
// end marker. Unread bytes of the previous section are discarded, which
// is what lets readers skip unknown tags.
func (r *Reader) Next() (string, error) {
	if r.err != nil {
		return "", r.err
	}
	var frame [12]byte
	if _, err := io.ReadFull(r.r, frame[:]); err != nil {
		r.err = fmt.Errorf("%w: truncated section frame: %v", ErrCorrupt, err)
		return "", r.err
	}
	tag := string(frame[:4])
	n := getU64(frame[4:12])
	if n > maxSection {
		r.err = fmt.Errorf("%w: section %q claims %d bytes", ErrCorrupt, tag, n)
		return "", r.err
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	r.pos = 0
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		r.err = fmt.Errorf("%w: truncated section %q: %v", ErrCorrupt, tag, err)
		return "", r.err
	}
	var sum [8]byte
	if _, err := io.ReadFull(r.r, sum[:]); err != nil {
		r.err = fmt.Errorf("%w: truncated checksum of %q: %v", ErrCorrupt, tag, err)
		return "", r.err
	}
	if getU64(sum[:]) != crc64.Checksum(r.buf, crcTable) {
		r.err = fmt.Errorf("%w: section %q", ErrChecksum, tag)
		return "", r.err
	}
	if tag == EndTag {
		return tag, io.EOF
	}
	return tag, nil
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count of the current section.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: field overruns section (%d bytes needed, %d left)",
			ErrCorrupt, n, len(r.buf)-r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// length reads a length prefix and validates it against the bytes the
// section can still provide at the given element width.
func (r *Reader) length(elemBytes int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if elemBytes > 0 && n > uint64(r.Remaining()/elemBytes) {
		r.err = fmt.Errorf("%w: length %d exceeds section payload", ErrCorrupt, n)
		return 0
	}
	return int(n)
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if b := r.take(2); b != nil {
		return getU16(b)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if b := r.take(8); b != nil {
		return getU64(b)
	}
	return 0
}

// Int reads a uint64 and validates it fits an int.
func (r *Reader) Int() int {
	v := r.U64()
	if r.err == nil && v > math.MaxInt64/2 {
		r.err = fmt.Errorf("%w: implausible integer %d", ErrCorrupt, v)
		return 0
	}
	return int(v)
}

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U64s reads a length-prefixed []uint64 column.
func (r *Reader) U64s() []uint64 {
	n := r.length(8)
	b := r.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = getU64(b[8*i:])
	}
	return out
}

// U16s reads a length-prefixed []uint16 column.
func (r *Reader) U16s() []uint16 {
	n := r.length(2)
	b := r.take(2 * n)
	if b == nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = getU16(b[2*i:])
	}
	return out
}

// I32s reads a length-prefixed []int32 column.
func (r *Reader) I32s() []int32 {
	n := r.length(4)
	b := r.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(getU32(b[4*i:]))
	}
	return out
}

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	n := r.length(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Bits reads a length-prefixed packed bool column.
func (r *Reader) Bits() []bool {
	n := r.length(0)
	if r.err == nil && (n+7)/8 > r.Remaining() {
		r.err = fmt.Errorf("%w: bit column length %d exceeds section payload", ErrCorrupt, n)
		return nil
	}
	b := r.take((n + 7) / 8)
	if b == nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = b[i>>3]&(1<<(i&7)) != 0
	}
	return out
}

// AddrCols reads a length-prefixed address column.
func (r *Reader) AddrCols() []ip6.Addr {
	n := r.length(16)
	b := r.take(16 * n)
	if b == nil {
		return nil
	}
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = ip6.AddrFromUint64(getU64(b[8*i:]), getU64(b[8*(n+i):]))
	}
	return out
}

// PrefixCols reads a length-prefixed prefix column.
func (r *Reader) PrefixCols() []ip6.Prefix {
	n := r.length(17)
	b := r.take(17 * n)
	if b == nil {
		return nil
	}
	out := make([]ip6.Prefix, n)
	for i := range out {
		a := ip6.AddrFromUint64(getU64(b[8*i:]), getU64(b[8*(n+i):]))
		out[i] = ip6.PrefixFrom(a, int(b[16*n+i]))
	}
	return out
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
