// Package cluster implements k-means clustering with k-means++ seeding,
// the elbow method for choosing k, and the median-entropy cluster
// summaries of the paper's Figure 2 (§4: "we run the k-means algorithm on
// the obtained dataset … we use the well-known elbow method to find the
// number of clusters").
//
// Two independent axes parallelize without changing a single byte of
// output: the elbow sweep runs its k = 1..kmax k-means instances
// concurrently (each instance derives its randomness from the same
// per-run seed, so the runs never share state), and within one k-means
// run the assignment step chunks points across workers (each point's
// nearest centroid is a pure function of the centroids, and the
// per-chunk changed flags merge by OR). Centroid accumulation and SSE
// stay serial so float summation order is fixed.
package cluster

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"expanse/internal/stats"
)

// Result of one k-means run.
type Result struct {
	K         int
	Assign    []int       // cluster id per point, in input order
	Centroids [][]float64 // k centroid vectors
	SSE       float64     // sum of squared distances to assigned centroid
}

// assignParallelMin is the point count below which the assignment step is
// not worth fanning out.
const assignParallelMin = 1 << 10

// KMeans clusters points into k groups. Deterministic for a given seed.
// Points must all have equal dimension. Empty input or k <= 0 yields an
// empty result; k > len(points) is clamped.
func KMeans(points [][]float64, k int, seed int64) Result {
	return KMeansWorkers(points, k, seed, 1)
}

// KMeansWorkers is KMeans with the assignment step chunked over up to
// workers goroutines. The worker count is purely a throughput knob: the
// result is byte-identical for every value.
//
// Ties in the assignment step keep the incumbent cluster (a point moves
// only on strict improvement). Empty clusters are repaired by reseeding
// the centroid on the farthest point whose current cluster can spare it
// (owns more than one point) and moving that point into the repaired
// cluster immediately, so every returned cluster owns at least one point
// and the assignment stays consistent with the centroids even if the
// iteration cap stops the loop right after a repair. (An earlier version
// reseeded the centroid after the convergence flag was computed, so the
// loop could terminate with the repaired centroid owning no points and
// the final SSE measured against a centroid no point was assigned to.)
func KMeansWorkers(points [][]float64, k int, seed int64, workers int) Result {
	n := len(points)
	if n == 0 || k <= 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	dim := len(points[0])
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		changed := assignStep(points, centroids, assign, workers)
		// Recompute centroids. Serial accumulation: float sums depend on
		// addition order, and byte-identical results across worker counts
		// matter more than parallelizing an O(n·dim) pass dominated by the
		// O(n·k·dim) assignment above.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		// Repair empty clusters BEFORE computing any means, while sums are
		// still raw: re-seed on the farthest point whose cluster owns more
		// than one point (never emptying a singleton, which would
		// oscillate the hole between clusters) and move that point over,
		// updating sums and counts on both sides. The mean pass below then
		// yields centroids consistent with the final assignment even if
		// the iteration cap stops the loop right after a repair.
		for c := range centroids {
			if counts[c] != 0 {
				continue
			}
			far, fd := -1, -1.0
			for i, p := range points {
				if counts[assign[i]] < 2 {
					continue
				}
				if d := sqDist(p, centroids[assign[i]]); d > fd {
					far, fd = i, d
				}
			}
			if far < 0 {
				// Unreachable while k <= n (an empty cluster then implies
				// some cluster owns two points); kept as a guard so a
				// future invariant change degrades to an un-repaired
				// cluster instead of corrupting counts.
				continue
			}
			donor := assign[far]
			for d, v := range points[far] {
				sums[donor][d] -= v
				sums[c][d] = v
			}
			counts[donor]--
			counts[c] = 1
			assign[far] = c
			changed = true
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // un-repaired (see guard above): keep the old centroid
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
		if !changed && iter > 0 {
			break
		}
	}
	sse := 0.0
	for i, p := range points {
		sse += sqDist(p, centroids[assign[i]])
	}
	return Result{K: k, Assign: assign, Centroids: centroids, SSE: sse}
}

// assignStep assigns every point to its nearest centroid (keeping the
// incumbent on exact ties) and reports whether anything moved. Each
// point's new assignment is a pure function of the centroids, so chunking
// points across workers is byte-identical to the serial pass; the changed
// flags merge by OR.
func assignStep(points [][]float64, centroids [][]float64, assign []int, workers int) bool {
	n := len(points)
	span := func(lo, hi int) bool {
		changed := false
		for i := lo; i < hi; i++ {
			p := points[i]
			best := assign[i]
			bd := sqDist(p, centroids[best])
			for c, cen := range centroids {
				if c == best {
					continue
				}
				if d := sqDist(p, cen); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		return changed
	}
	if workers <= 1 || n < assignParallelMin {
		return span(0, n)
	}
	w := workers
	if w > n/assignParallelMin+1 {
		w = n/assignParallelMin + 1
	}
	chunk := (n + w - 1) / w
	flags := make([]bool, w)
	var wg sync.WaitGroup
	for c := 0; c < w; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			flags[c] = span(lo, hi)
		}(c)
	}
	wg.Wait()
	for _, f := range flags {
		if f {
			return true
		}
	}
	return false
}

// seedPlusPlus is k-means++ initialization: the first centroid uniform,
// each next chosen with probability proportional to squared distance to
// the closest existing centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ElbowResults runs KMeans for every k = 1..kmax, fanning the runs out
// over up to workers goroutines. Every run derives its randomness from
// the same seed independently (exactly as the serial sweep did), so the
// sweep is byte-identical for every worker count. When there are spare
// workers beyond the number of k values, the surplus fans out inside each
// run's assignment step.
func ElbowResults(points [][]float64, kmax int, seed int64, workers int) []Result {
	if kmax > len(points) {
		kmax = len(points)
	}
	if kmax <= 0 {
		return nil
	}
	out := make([]Result, kmax)
	w := workers
	if w <= 0 {
		w = 1
	}
	if w > kmax {
		w = kmax
	}
	inner := 1
	if workers > kmax {
		inner = (workers + kmax - 1) / kmax
	}
	if w <= 1 {
		for i := 0; i < kmax; i++ {
			out[i] = KMeansWorkers(points, i+1, seed, inner)
		}
		return out
	}
	// Large k runs cost far more than small ones, so hand k values to
	// workers from a shared queue rather than in contiguous chunks, and
	// dispatch the largest k first (LPT scheduling: the costliest run
	// must not start last). out is indexed, so scheduling order cannot
	// affect the result.
	var next sync.Mutex
	nextK := 0
	var wg sync.WaitGroup
	for c := 0; c < w; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := kmax - 1 - nextK
				nextK++
				next.Unlock()
				if i < 0 {
					return
				}
				out[i] = KMeansWorkers(points, i+1, seed, inner)
			}
		}()
	}
	wg.Wait()
	return out
}

// ElbowCurve returns SSE(k) for k = 1..kmax (equation (6)), computed by
// the concurrent sweep.
func ElbowCurve(points [][]float64, kmax int, seed int64, workers int) []float64 {
	results := ElbowResults(points, kmax, seed, workers)
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.SSE
	}
	return out
}

// Elbow picks the k at the "elbow" of the SSE curve: the point with
// maximum distance to the chord between the first and last curve points
// (the standard geometric formalization of the paper's visual method).
func Elbow(sse []float64) int {
	n := len(sse)
	if n <= 2 {
		return n
	}
	x1, y1 := 1.0, sse[0]
	x2, y2 := float64(n), sse[n-1]
	den := math.Hypot(x2-x1, y2-y1)
	if den == 0 {
		return 1
	}
	bestK, bestD := 1, -1.0
	for k := 1; k <= n; k++ {
		// Distance from (k, sse[k-1]) to the chord.
		d := math.Abs((y2-y1)*float64(k)-(x2-x1)*sse[k-1]+x2*y1-y2*x1) / den
		if d > bestD {
			bestK, bestD = k, d
		}
	}
	return bestK
}

// ChooseK runs the elbow method end to end and returns the winning
// k-means Result (the sweep's run at the elbow k) along with the SSE
// curve, so callers never re-run KMeans at the chosen k.
func ChooseK(points [][]float64, kmax int, seed int64, workers int) (Result, []float64) {
	results := ElbowResults(points, kmax, seed, workers)
	curve := make([]float64, len(results))
	for i, r := range results {
		curve[i] = r.SSE
	}
	k := Elbow(curve)
	if k == 0 {
		return Result{}, curve
	}
	return results[k-1], curve
}

// Summary describes one cluster as the paper plots it: its share of
// networks and the median entropy of each nybble.
type Summary struct {
	ID            int // 1-based, ordered by popularity
	Size          int
	Share         float64
	MedianEntropy []float64
}

// Summarize produces popularity-ordered cluster summaries from a k-means
// result over the given points.
func Summarize(points [][]float64, res Result) []Summary {
	if len(points) == 0 || res.K == 0 {
		return nil
	}
	dim := len(points[0])
	byCluster := make([][][]float64, res.K)
	for i, p := range points {
		c := res.Assign[i]
		byCluster[c] = append(byCluster[c], p)
	}
	sums := make([]Summary, 0, res.K)
	for c := 0; c < res.K; c++ {
		pts := byCluster[c]
		if len(pts) == 0 {
			continue
		}
		med := make([]float64, dim)
		col := make([]float64, len(pts))
		for d := 0; d < dim; d++ {
			for i, p := range pts {
				col[i] = p[d]
			}
			med[d] = stats.Median(col)
		}
		sums = append(sums, Summary{
			Size:          len(pts),
			Share:         float64(len(pts)) / float64(len(points)),
			MedianEntropy: med,
		})
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].Size > sums[j].Size })
	for i := range sums {
		sums[i].ID = i + 1
	}
	return sums
}
