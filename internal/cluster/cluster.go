// Package cluster implements k-means clustering with k-means++ seeding,
// the elbow method for choosing k, and the median-entropy cluster
// summaries of the paper's Figure 2 (§4: "we run the k-means algorithm on
// the obtained dataset … we use the well-known elbow method to find the
// number of clusters").
package cluster

import (
	"math"
	"math/rand"
	"sort"

	"expanse/internal/stats"
)

// Result of one k-means run.
type Result struct {
	K         int
	Assign    []int       // cluster id per point, in input order
	Centroids [][]float64 // k centroid vectors
	SSE       float64     // sum of squared distances to assigned centroid
}

// KMeans clusters points into k groups. Deterministic for a given seed.
// Points must all have equal dimension. Empty input or k <= 0 yields an
// empty result; k > len(points) is clamped.
func KMeans(points [][]float64, k int, seed int64) Result {
	n := len(points)
	if n == 0 || k <= 0 {
		return Result{}
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		dim := len(points[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the point farthest from
				// its centroid, a standard k-means repair.
				far, fd := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > fd {
						far, fd = i, d
					}
				}
				centroids[c] = append([]float64(nil), points[far]...)
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
		if !changed && iter > 0 {
			break
		}
	}
	sse := 0.0
	for i, p := range points {
		sse += sqDist(p, centroids[assign[i]])
	}
	return Result{K: k, Assign: assign, Centroids: centroids, SSE: sse}
}

// seedPlusPlus is k-means++ initialization: the first centroid uniform,
// each next chosen with probability proportional to squared distance to
// the closest existing centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ElbowCurve returns SSE(k) for k = 1..kmax (equation (6)).
func ElbowCurve(points [][]float64, kmax int, seed int64) []float64 {
	if kmax > len(points) {
		kmax = len(points)
	}
	out := make([]float64, kmax)
	for k := 1; k <= kmax; k++ {
		out[k-1] = KMeans(points, k, seed).SSE
	}
	return out
}

// Elbow picks the k at the "elbow" of the SSE curve: the point with
// maximum distance to the chord between the first and last curve points
// (the standard geometric formalization of the paper's visual method).
func Elbow(sse []float64) int {
	n := len(sse)
	if n <= 2 {
		return n
	}
	x1, y1 := 1.0, sse[0]
	x2, y2 := float64(n), sse[n-1]
	den := math.Hypot(x2-x1, y2-y1)
	if den == 0 {
		return 1
	}
	bestK, bestD := 1, -1.0
	for k := 1; k <= n; k++ {
		// Distance from (k, sse[k-1]) to the chord.
		d := math.Abs((y2-y1)*float64(k)-(x2-x1)*sse[k-1]+x2*y1-y2*x1) / den
		if d > bestD {
			bestK, bestD = k, d
		}
	}
	return bestK
}

// ChooseK runs the elbow method end to end.
func ChooseK(points [][]float64, kmax int, seed int64) (k int, curve []float64) {
	curve = ElbowCurve(points, kmax, seed)
	return Elbow(curve), curve
}

// Summary describes one cluster as the paper plots it: its share of
// networks and the median entropy of each nybble.
type Summary struct {
	ID            int // 1-based, ordered by popularity
	Size          int
	Share         float64
	MedianEntropy []float64
}

// Summarize produces popularity-ordered cluster summaries from a k-means
// result over the given points.
func Summarize(points [][]float64, res Result) []Summary {
	if len(points) == 0 || res.K == 0 {
		return nil
	}
	dim := len(points[0])
	byCluster := make([][][]float64, res.K)
	for i, p := range points {
		c := res.Assign[i]
		byCluster[c] = append(byCluster[c], p)
	}
	sums := make([]Summary, 0, res.K)
	for c := 0; c < res.K; c++ {
		pts := byCluster[c]
		if len(pts) == 0 {
			continue
		}
		med := make([]float64, dim)
		col := make([]float64, len(pts))
		for d := 0; d < dim; d++ {
			for i, p := range pts {
				col[i] = p[d]
			}
			med[d] = stats.Median(col)
		}
		sums = append(sums, Summary{
			Size:          len(pts),
			Share:         float64(len(pts)) / float64(len(points)),
			MedianEntropy: med,
		})
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].Size > sums[j].Size })
	for i := range sums {
		sums[i].ID = i + 1
	}
	return sums
}
