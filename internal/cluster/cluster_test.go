package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates n points around each given center with the given spread.
func blobs(centers [][]float64, n int, spread float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var pts [][]float64
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for d := range c {
				p[d] = c[d] + rng.NormFloat64()*spread
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {0, 10}}
	pts := blobs(centers, 50, 0.5, 1)
	res := KMeans(pts, 3, 7)
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// All points of one blob must share an assignment.
	for b := 0; b < 3; b++ {
		want := res.Assign[b*50]
		for i := 0; i < 50; i++ {
			if res.Assign[b*50+i] != want {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	// And the three blobs must be in three different clusters.
	if res.Assign[0] == res.Assign[50] || res.Assign[50] == res.Assign[100] || res.Assign[0] == res.Assign[100] {
		t.Error("blobs merged")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {5, 5}}, 100, 1, 2)
	a := KMeans(pts, 2, 9)
	b := KMeans(pts, 2, 9)
	if a.SSE != b.SSE {
		t.Error("SSE differs between identical runs")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignment differs between identical runs")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if r := KMeans(nil, 3, 1); r.K != 0 || r.Assign != nil {
		t.Error("empty input should give empty result")
	}
	if r := KMeans([][]float64{{1}}, 0, 1); r.K != 0 {
		t.Error("k=0 should give empty result")
	}
	// k > n clamps.
	r := KMeans([][]float64{{1}, {2}}, 10, 1)
	if r.K != 2 {
		t.Errorf("K = %d, want clamp to 2", r.K)
	}
	// Identical points: SSE 0, single effective cluster fine.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	r = KMeans(same, 2, 1)
	if r.SSE != 0 {
		t.Errorf("identical points SSE = %v", r.SSE)
	}
}

// Property: SSE decreases (weakly) as k grows.
func TestSSEMonotoneInK(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {8, 0}, {0, 8}, {8, 8}}, 30, 1.0, 3)
	curve := ElbowCurve(pts, 8, 11)
	for i := 1; i < len(curve); i++ {
		// Allow tiny increases from local minima; k-means is a heuristic.
		if curve[i] > curve[i-1]*1.10+1e-9 {
			t.Errorf("SSE rose sharply at k=%d: %v -> %v", i+1, curve[i-1], curve[i])
		}
	}
}

func TestElbowFindsTrueK(t *testing.T) {
	// Four well-separated blobs: elbow should be at (or adjacent to) 4.
	pts := blobs([][]float64{{0, 0}, {20, 0}, {0, 20}, {20, 20}}, 40, 0.5, 4)
	k, curve := ChooseK(pts, 10, 5)
	if len(curve) != 10 {
		t.Fatalf("curve length %d", len(curve))
	}
	if k < 3 || k > 5 {
		t.Errorf("elbow k = %d, want ~4", k)
	}
}

func TestElbowDegenerate(t *testing.T) {
	if k := Elbow(nil); k != 0 {
		t.Errorf("empty curve k = %d", k)
	}
	if k := Elbow([]float64{5}); k != 1 {
		t.Errorf("single point k = %d", k)
	}
	if k := Elbow([]float64{5, 5, 5}); k != 1 {
		t.Errorf("flat curve k = %d", k)
	}
}

func TestSummarize(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {10, 10}}, 30, 0.3, 6)
	// Make blob sizes unequal: drop 10 points of the second blob.
	pts = pts[:50]
	res := KMeans(pts, 2, 7)
	sums := Summarize(pts, res)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Size < sums[1].Size {
		t.Error("summaries not popularity ordered")
	}
	if sums[0].ID != 1 || sums[1].ID != 2 {
		t.Error("IDs not 1-based popularity ranks")
	}
	if math.Abs(sums[0].Share+sums[1].Share-1) > 1e-9 {
		t.Error("shares must sum to 1")
	}
	// Median entropy of the big blob (~(0,0)) close to 0 per dim.
	big := sums[0]
	if math.Abs(big.MedianEntropy[0]) > 0.5 {
		t.Errorf("big blob median = %v", big.MedianEntropy)
	}
	if s := Summarize(nil, Result{}); s != nil {
		t.Error("empty summarize should be nil")
	}
}

// Property: every k-means assignment is a valid cluster index and every
// point is assigned to its nearest centroid (local optimality).
func TestAssignmentsNearest(t *testing.T) {
	f := func(seed int64) bool {
		pts := blobs([][]float64{{0, 0}, {6, 6}}, 25, 1.2, seed)
		res := KMeans(pts, 3, seed)
		for i, p := range pts {
			a := res.Assign[i]
			if a < 0 || a >= res.K {
				return false
			}
			da := sqDist(p, res.Centroids[a])
			for _, c := range res.Centroids {
				if sqDist(p, c) < da-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	pts := blobs([][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}, {15, 15}}, 300, 1, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(pts, 6, 9)
	}
}
