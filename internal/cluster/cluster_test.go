package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// blobs generates n points around each given center with the given spread.
func blobs(centers [][]float64, n int, spread float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var pts [][]float64
	for _, c := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(c))
			for d := range c {
				p[d] = c[d] + rng.NormFloat64()*spread
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {0, 10}}
	pts := blobs(centers, 50, 0.5, 1)
	res := KMeans(pts, 3, 7)
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// All points of one blob must share an assignment.
	for b := 0; b < 3; b++ {
		want := res.Assign[b*50]
		for i := 0; i < 50; i++ {
			if res.Assign[b*50+i] != want {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	// And the three blobs must be in three different clusters.
	if res.Assign[0] == res.Assign[50] || res.Assign[50] == res.Assign[100] || res.Assign[0] == res.Assign[100] {
		t.Error("blobs merged")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {5, 5}}, 100, 1, 2)
	a := KMeans(pts, 2, 9)
	b := KMeans(pts, 2, 9)
	if a.SSE != b.SSE {
		t.Error("SSE differs between identical runs")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("assignment differs between identical runs")
		}
	}
}

// TestKMeansWorkersIdentical pins the chunked assignment step: results
// are byte-identical across worker counts 1/4/16, above and below the
// parallel threshold.
func TestKMeansWorkersIdentical(t *testing.T) {
	for _, n := range []int{50, assignParallelMin + 37} {
		pts := blobs([][]float64{{0, 0}, {8, 0}, {0, 8}}, n, 1.1, 13)
		ref := KMeansWorkers(pts, 4, 9, 1)
		for _, w := range []int{4, 16} {
			got := KMeansWorkers(pts, 4, 9, w)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("n=%d workers=%d: result differs from serial", n, w)
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if r := KMeans(nil, 3, 1); r.K != 0 || r.Assign != nil {
		t.Error("empty input should give empty result")
	}
	if r := KMeans([][]float64{{1}}, 0, 1); r.K != 0 {
		t.Error("k=0 should give empty result")
	}
	// k > n clamps.
	r := KMeans([][]float64{{1}, {2}}, 10, 1)
	if r.K != 2 {
		t.Errorf("K = %d, want clamp to 2", r.K)
	}
	// Identical points: SSE 0, single effective cluster fine.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	r = KMeans(same, 2, 1)
	if r.SSE != 0 {
		t.Errorf("identical points SSE = %v", r.SSE)
	}
}

// TestKMeansEmptyClusterRepair is the regression test for the stale
// empty-cluster repair. Two distinct values with k=3 force k-means++ to
// duplicate a centroid (its d² weights are all zero after two picks), so
// the duplicate's cluster comes up empty and must be repaired on the
// iteration the loop would otherwise terminate on. The old code reseeded
// the centroid after the convergence flag was computed and broke out
// without ever reassigning, returning a Result whose repaired centroid
// owned no points and whose SSE was measured against stale assignments.
func TestKMeansEmptyClusterRepair(t *testing.T) {
	cases := [][][]float64{
		{{0, 0}, {0, 0}, {0, 0}, {9, 9}, {9, 9}, {9, 9}},
		// A singleton cluster plus a duplicate pair: the repair must
		// donate from the pair, never empty the singleton (which would
		// oscillate the hole between clusters until the iteration cap).
		{{0, 0}, {9, 9}, {9, 9}},
	}
	for ci, pts := range cases {
		for seed := int64(0); seed < 50; seed++ {
			res := KMeans(pts, 3, seed)
			if res.K != 3 {
				t.Fatalf("case %d seed %d: K = %d", ci, seed, res.K)
			}
			owned := make([]int, res.K)
			for _, c := range res.Assign {
				owned[c]++
			}
			for c, n := range owned {
				if n == 0 {
					t.Fatalf("case %d seed %d: cluster %d owns no points after repair (assign=%v)", ci, seed, c, res.Assign)
				}
			}
			// SSE must be measured against the returned assignment/centroids.
			sse := 0.0
			for i, p := range pts {
				sse += sqDist(p, res.Centroids[res.Assign[i]])
			}
			if math.Abs(sse-res.SSE) > 1e-12 {
				t.Fatalf("case %d seed %d: reported SSE %v != recomputed %v", ci, seed, res.SSE, sse)
			}
			// And every point must sit on a nearest centroid (ties allowed).
			for i, p := range pts {
				da := sqDist(p, res.Centroids[res.Assign[i]])
				for _, c := range res.Centroids {
					if sqDist(p, c) < da-1e-12 {
						t.Fatalf("case %d seed %d: point %d not assigned to a nearest centroid", ci, seed, i)
					}
				}
			}
		}
	}
	// k == n with fewer distinct values: the repair splits the duplicate
	// pair across clusters, so every cluster owns its own point exactly.
	res := KMeans([][]float64{{1}, {1}, {5}}, 3, 3)
	if res.SSE != 0 {
		t.Errorf("k==n with duplicates: SSE = %v, want 0", res.SSE)
	}
	seen := map[int]bool{}
	for _, c := range res.Assign {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Errorf("k==n with duplicates: %d clusters own points, want 3 (assign=%v)", len(seen), res.Assign)
	}
}

// Property: SSE decreases (weakly) as k grows.
func TestSSEMonotoneInK(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {8, 0}, {0, 8}, {8, 8}}, 30, 1.0, 3)
	curve := ElbowCurve(pts, 8, 11, 1)
	for i := 1; i < len(curve); i++ {
		// Allow tiny increases from local minima; k-means is a heuristic.
		if curve[i] > curve[i-1]*1.10+1e-9 {
			t.Errorf("SSE rose sharply at k=%d: %v -> %v", i+1, curve[i-1], curve[i])
		}
	}
}

func TestElbowFindsTrueK(t *testing.T) {
	// Four well-separated blobs: elbow should be at (or adjacent to) 4.
	pts := blobs([][]float64{{0, 0}, {20, 0}, {0, 20}, {20, 20}}, 40, 0.5, 4)
	res, curve := ChooseK(pts, 10, 5, 1)
	if len(curve) != 10 {
		t.Fatalf("curve length %d", len(curve))
	}
	if res.K < 3 || res.K > 5 {
		t.Errorf("elbow k = %d, want ~4", res.K)
	}
}

// TestChooseKReturnsSweepResult pins the single-run contract: the Result
// ChooseK returns IS the sweep's run at the elbow k — byte-identical to
// an independent KMeans at that k — so report paths never pay a second
// k-means run for the chosen k.
func TestChooseKReturnsSweepResult(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {12, 0}, {0, 12}}, 40, 0.8, 6)
	res, curve := ChooseK(pts, 8, 17, 1)
	if res.K == 0 {
		t.Fatal("no result chosen")
	}
	if res.SSE != curve[res.K-1] {
		t.Errorf("result SSE %v != curve[%d] %v", res.SSE, res.K-1, curve[res.K-1])
	}
	if want := KMeans(pts, res.K, 17); !reflect.DeepEqual(res, want) {
		t.Error("ChooseK result differs from a fresh KMeans at the chosen k")
	}
}

// TestElbowSweepAcrossWorkers pins the concurrent sweep: every per-k
// Result — assignments, centroids, SSE — is byte-identical across worker
// counts 1/4/16 (each run seeds its own generator, so runs share no
// state no matter how they are scheduled).
func TestElbowSweepAcrossWorkers(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {9, 0}, {0, 9}, {9, 9}}, 35, 1.0, 8)
	ref := ElbowResults(pts, 12, 0x16c18, 1)
	for _, w := range []int{4, 16} {
		got := ElbowResults(pts, 12, 0x16c18, w)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: sweep differs from serial", w)
		}
	}
}

func TestElbowDegenerate(t *testing.T) {
	if k := Elbow(nil); k != 0 {
		t.Errorf("empty curve k = %d", k)
	}
	if k := Elbow([]float64{5}); k != 1 {
		t.Errorf("single point k = %d", k)
	}
	if k := Elbow([]float64{5, 5, 5}); k != 1 {
		t.Errorf("flat curve k = %d", k)
	}
	if res, curve := ChooseK(nil, 5, 1, 4); res.K != 0 || len(curve) != 0 {
		t.Error("ChooseK on empty input should give empty result and curve")
	}
}

func TestSummarize(t *testing.T) {
	pts := blobs([][]float64{{0, 0}, {10, 10}}, 30, 0.3, 6)
	// Make blob sizes unequal: drop 10 points of the second blob.
	pts = pts[:50]
	res := KMeans(pts, 2, 7)
	sums := Summarize(pts, res)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Size < sums[1].Size {
		t.Error("summaries not popularity ordered")
	}
	if sums[0].ID != 1 || sums[1].ID != 2 {
		t.Error("IDs not 1-based popularity ranks")
	}
	if math.Abs(sums[0].Share+sums[1].Share-1) > 1e-9 {
		t.Error("shares must sum to 1")
	}
	// Median entropy of the big blob (~(0,0)) close to 0 per dim.
	big := sums[0]
	if math.Abs(big.MedianEntropy[0]) > 0.5 {
		t.Errorf("big blob median = %v", big.MedianEntropy)
	}
	if s := Summarize(nil, Result{}); s != nil {
		t.Error("empty summarize should be nil")
	}
}

// Property: every k-means assignment is a valid cluster index and every
// point is assigned to its nearest centroid (local optimality).
func TestAssignmentsNearest(t *testing.T) {
	f := func(seed int64) bool {
		pts := blobs([][]float64{{0, 0}, {6, 6}}, 25, 1.2, seed)
		res := KMeans(pts, 3, seed)
		for i, p := range pts {
			a := res.Assign[i]
			if a < 0 || a >= res.K {
				return false
			}
			da := sqDist(p, res.Centroids[a])
			for _, c := range res.Centroids {
				if sqDist(p, c) < da-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKMeans(b *testing.B) {
	pts := blobs([][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}, {15, 15}}, 300, 1, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(pts, 6, 9)
	}
}

// elbowBenchPoints approximates the clustering input of Fig 2: a few
// hundred 24-dimensional fingerprint-like vectors.
func elbowBenchPoints() [][]float64 {
	centers := make([][]float64, 6)
	rng := rand.New(rand.NewSource(15))
	for i := range centers {
		centers[i] = make([]float64, 24)
		for d := range centers[i] {
			centers[i][d] = rng.Float64()
		}
	}
	return blobs(centers, 80, 0.05, 16)
}

func BenchmarkElbowSweep(b *testing.B) {
	pts := elbowBenchPoints()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ChooseK(pts, 20, 0x16c18, w)
			}
		})
	}
}

// BenchmarkLegacyElbowSweep measures the pre-refactor report path: a
// serial k = 1..kmax sweep followed by a second KMeans run at the chosen
// k (the double-work pattern ChooseK now eliminates).
func BenchmarkLegacyElbowSweep(b *testing.B) {
	pts := elbowBenchPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := make([]float64, 20)
		for k := 1; k <= 20; k++ {
			curve[k-1] = KMeans(pts, k, 0x16c18).SSE
		}
		KMeans(pts, Elbow(curve), 0x16c18)
	}
}
