// Package rdns implements reverse-DNS tree walking (§8): a depth-first
// enumeration of the ip6.arpa tree that relies on NXDOMAIN semantics to
// prune empty subtrees, the technique of Fiebig et al. that the paper
// evaluates as an additional hitlist source.
package rdns

import (
	"expanse/internal/dnssim"
	"expanse/internal/ip6"
)

// Result summarizes one walk.
type Result struct {
	// Addrs are the addresses with PTR records, in discovery order.
	Addrs []ip6.Addr
	// Queries is the number of DNS queries issued — the "strain on
	// important Internet infrastructure" that makes this source
	// semi-public (§8).
	Queries int
}

// Walk enumerates the whole tree.
func Walk(t *dnssim.RTree) Result {
	return WalkUnder(t, nil)
}

// WalkUnder enumerates the subtree beneath the given nybble path prefix
// (MSB-first). A nil prefix walks from the root.
func WalkUnder(t *dnssim.RTree, prefix []byte) Result {
	t.ResetQueries()
	var res Result
	path := make([]byte, len(prefix), 32)
	copy(path, prefix)
	// Confirm the starting point exists (as a real walker would).
	switch t.Query(path) {
	case dnssim.NXDomain:
		res.Queries = t.Queries()
		return res
	case dnssim.HasPTR:
		if len(path) == 32 {
			res.Addrs = append(res.Addrs, addrFromNybbles(path))
			res.Queries = t.Queries()
			return res
		}
	}
	walk(t, path, &res)
	res.Queries = t.Queries()
	return res
}

func walk(t *dnssim.RTree, path []byte, res *Result) {
	for d := byte(0); d < 16; d++ {
		child := append(path, d)
		switch t.Query(child) {
		case dnssim.NXDomain:
			// Prune: nothing anywhere below this label.
		case dnssim.HasPTR:
			res.Addrs = append(res.Addrs, addrFromNybbles(child))
		case dnssim.NoErrorEmpty:
			walk(t, child, res)
		}
	}
}

func addrFromNybbles(path []byte) ip6.Addr {
	var n [32]byte
	copy(n[:], path)
	return ip6.AddrFromNybbles(n)
}
