package rdns

import (
	"testing"

	"expanse/internal/dnssim"
	"expanse/internal/ip6"
)

func TestWalkRecoversAll(t *testing.T) {
	addrs := []ip6.Addr{
		ip6.MustParseAddr("2001:db8::1"),
		ip6.MustParseAddr("2001:db8::2"),
		ip6.MustParseAddr("2001:db8:0:1::9"),
		ip6.MustParseAddr("2001:dead::5"),
		ip6.MustParseAddr("fe80::1234"),
	}
	tr := dnssim.NewRTree(addrs)
	res := Walk(tr)
	if len(res.Addrs) != len(addrs) {
		t.Fatalf("recovered %d addresses, want %d", len(res.Addrs), len(addrs))
	}
	want := map[ip6.Addr]bool{}
	for _, a := range addrs {
		want[a] = true
	}
	for _, a := range res.Addrs {
		if !want[a] {
			t.Errorf("unexpected address %v", a)
		}
	}
	if res.Queries == 0 {
		t.Error("no queries counted")
	}
	// Pruning bound: far fewer queries than brute force (16^32), and
	// linear-ish in entries: <= entries * 32 * 16 + slack.
	if res.Queries > len(addrs)*32*16+16 {
		t.Errorf("walk issued %d queries, pruning broken", res.Queries)
	}
}

func TestWalkEmptyTree(t *testing.T) {
	tr := dnssim.NewRTree(nil)
	res := Walk(tr)
	if len(res.Addrs) != 0 {
		t.Error("empty tree yielded addresses")
	}
}

func TestWalkUnderSubtree(t *testing.T) {
	addrs := []ip6.Addr{
		ip6.MustParseAddr("2001:db8::1"),
		ip6.MustParseAddr("3001:db8::1"),
	}
	tr := dnssim.NewRTree(addrs)
	// Walk only under 2xxx.
	res := WalkUnder(tr, []byte{2})
	if len(res.Addrs) != 1 || res.Addrs[0] != addrs[0] {
		t.Errorf("subtree walk = %v", res.Addrs)
	}
	// Walking under a dead branch returns nothing quickly.
	res = WalkUnder(tr, []byte{4})
	if len(res.Addrs) != 0 || res.Queries != 1 {
		t.Errorf("dead subtree: %d addrs, %d queries", len(res.Addrs), res.Queries)
	}
}

func TestWalkDense(t *testing.T) {
	// A dense /124-style block: all 16 leaves under one node.
	base := ip6.MustParsePrefix("2001:db8::/124")
	var addrs []ip6.Addr
	for i := uint64(0); i < 16; i++ {
		addrs = append(addrs, base.NthAddr(i))
	}
	tr := dnssim.NewRTree(addrs)
	res := Walk(tr)
	if len(res.Addrs) != 16 {
		t.Errorf("dense walk found %d", len(res.Addrs))
	}
}

func BenchmarkWalk(b *testing.B) {
	var addrs []ip6.Addr
	base := ip6.MustParsePrefix("2001:db8::/32")
	rng := ip6.MustParsePrefix("2001:db9::/32")
	_ = rng
	for i := uint64(0); i < 2000; i++ {
		addrs = append(addrs, base.NthAddr(i*7919))
	}
	tr := dnssim.NewRTree(addrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Walk(tr)
	}
}
